// Gap reports — the measured half of the adversary's closed loop.
//
// replay() streams a synthesised trace through monitor::MonitorEngine in
// pre-attributed mode and folds the monitor's observations back onto the
// plan: per contract class, how many packets the plan aimed there vs how
// many the monitor attributed there, how much of the contract bound the
// measured p99 actually consumed (headroom quantiles from the monitor's
// sketches), and which classes the trace failed to reach at all. A
// mismatch — a packet the shadow attributed to class A that the monitor
// put in class B — means the synthesiser's model of the NF diverged from
// the real thing and is always a bug worth investigating; the count is
// front and centre.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "monitor/monitor.h"
#include "monitor/report.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::adversary {

/// Per-class coverage + bound-consumption summary.
struct ClassGap {
  std::string input_class;
  std::uint64_t planned = 0;   ///< trace packets pre-attributed here
  std::uint64_t observed = 0;  ///< packets the monitor attributed here
  bool reached = false;        ///< observed > 0
  std::uint64_t violations = 0;
  /// p99 of measured/bound in per-mille, per metric (monitor sketch).
  std::array<std::uint64_t, 3> p99_util_pm{};
  /// max over metrics of p99_util_pm — "how much of the bound the trace
  /// provably consumes" (>= 800 means the p99 ate 80% of the bound).
  std::uint64_t best_p99_util_pm = 0;
  std::string note;  ///< synthesis note (unreached reason etc.)
};

struct GapReport {
  std::string nf;
  std::uint64_t packets = 0;
  /// Packets whose monitor attribution differs from the plan's (0 on a
  /// healthy loop; any other value is a synthesiser/monitor divergence).
  std::uint64_t mismatched = 0;
  std::uint64_t first_mismatch = 0;  ///< valid when mismatched > 0
  std::size_t classes_total = 0;
  std::size_t classes_reached = 0;
  std::vector<ClassGap> classes;  ///< contract entry order
  /// The full underlying monitor report (violations, sketches, offenders).
  monitor::MonitorReport monitor;

  std::vector<std::string> unreached_classes() const;
  /// Aligned text rendering (the CLI's default output).
  std::string str() const;
};

/// JSON rendering of the gap summary (schema version 1; the monitor report
/// has its own schema and is written separately when wanted).
std::string gap_report_to_json(const GapReport& report);

/// Replays `trace` through the monitor against `contract` and measures the
/// gap. `options.partitions` and `options.epoch_ns` are overridden from the
/// trace (they are part of the plan's semantics); shards/threads/grouping
/// remain free execution knobs — the report is byte-identical under all of
/// them.
GapReport replay(const AdversarialTrace& trace, const perf::Contract& contract,
                 const perf::PcvRegistry& reg,
                 monitor::MonitorOptions options = {});

}  // namespace bolt::adversary
