#include "adversary/report.h"

#include <algorithm>
#include <unordered_map>

#include "support/assert.h"
#include "support/strings.h"

namespace bolt::adversary {

namespace {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;

}  // namespace

std::vector<std::string> GapReport::unreached_classes() const {
  std::vector<std::string> out;
  for (const ClassGap& g : classes) {
    if (!g.reached) out.push_back(g.input_class);
  }
  return out;
}

std::string GapReport::str() const {
  std::string out = "adversarial gap report: " + nf + "\n";
  out += "  packets " + std::to_string(packets) + "   classes reached " +
         std::to_string(classes_reached) + "/" +
         std::to_string(classes_total) + "   attribution mismatches " +
         std::to_string(mismatched);
  if (mismatched > 0) {
    out += " (first at packet " + std::to_string(first_mismatch) + ")";
  }
  out += "   violations " + std::to_string(monitor.violations) + "\n\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", "Planned", "Observed", "Viol",
                  "p99 bound use (IC/MA/cyc)", "Note"});
  for (const ClassGap& g : classes) {
    std::string util;
    for (std::size_t m = 0; m < 3; ++m) {
      if (m != 0) util += " / ";
      util += std::to_string(g.p99_util_pm[m] / 10) + "." +
              std::to_string(g.p99_util_pm[m] % 10) + "%";
    }
    rows.push_back({g.input_class,
                    support::with_commas(static_cast<std::int64_t>(g.planned)),
                    support::with_commas(static_cast<std::int64_t>(g.observed)),
                    std::to_string(g.violations), util,
                    g.reached ? g.note : ("UNREACHED: " + g.note)});
  }
  out += support::render_table(rows);
  return out;
}

std::string gap_report_to_json(const GapReport& report) {
  using support::json_quote_into;
  std::string out = "{\"version\":1,\"nf\":";
  json_quote_into(out, report.nf);
  out += ",\"packets\":" + std::to_string(report.packets);
  out += ",\"mismatched\":" + std::to_string(report.mismatched);
  out += ",\"first_mismatch\":" + std::to_string(report.first_mismatch);
  out += ",\"classes_total\":" + std::to_string(report.classes_total);
  out += ",\"classes_reached\":" + std::to_string(report.classes_reached);
  out += ",\"violations\":" + std::to_string(report.monitor.violations);
  out += ",\"classes\":[";
  bool first = true;
  for (const ClassGap& g : report.classes) {
    if (!first) out += ',';
    first = false;
    out += "{\"input_class\":";
    json_quote_into(out, g.input_class);
    out += ",\"planned\":" + std::to_string(g.planned);
    out += ",\"observed\":" + std::to_string(g.observed);
    out += ",\"reached\":" + std::string(g.reached ? "true" : "false");
    out += ",\"violations\":" + std::to_string(g.violations);
    out += ",\"p99_util_pm\":[" + std::to_string(g.p99_util_pm[0]) + ',' +
           std::to_string(g.p99_util_pm[1]) + ',' +
           std::to_string(g.p99_util_pm[2]) + ']';
    out += ",\"note\":";
    json_quote_into(out, g.note);
    out += '}';
  }
  out += "]}";
  return out;
}

GapReport replay(const AdversarialTrace& trace, const perf::Contract& contract,
                 const perf::PcvRegistry& reg,
                 monitor::MonitorOptions options) {
  BOLT_CHECK(trace.plans.size() == trace.packets.size(),
             "adversary: trace plans and packets disagree");
  BOLT_CHECK(trace.contract_nf == contract.nf_name(),
             "adversary: trace was synthesised against contract '" +
                 trace.contract_nf + "', not '" + contract.nf_name() + "'");
  // Partition count and epoch clock are part of the plan's semantics — the
  // shadow evolved its state under them.
  options.partitions = trace.partitions;
  options.epoch_ns = trace.epoch_ns;

  monitor::MonitorEngine engine(contract, reg, options);
  std::vector<std::uint32_t> attribution;
  GapReport gap;
  gap.monitor = engine.run(trace.packets,
                           monitor::MonitorEngine::named_factory(trace.nf),
                           &attribution);
  gap.nf = trace.nf;
  gap.packets = trace.packets.size();
  gap.classes_total = contract.entries().size();

  // Close the loop packet-by-packet: the plan's attribution must be what
  // the monitor observed (kNoEntry and kUnattributedEntry share a value).
  static_assert(kNoEntry == monitor::kUnattributedEntry,
                "plan and monitor sentinel values must agree");
  for (std::size_t i = 0; i < trace.plans.size(); ++i) {
    if (trace.plans[i].entry != attribution[i]) {
      if (gap.mismatched == 0) gap.first_mismatch = i;
      ++gap.mismatched;
    }
  }

  std::unordered_map<std::string, const monitor::ClassReport*> observed;
  for (const monitor::ClassReport& cr : gap.monitor.classes) {
    observed.emplace(cr.input_class, &cr);
  }
  gap.classes.reserve(contract.entries().size());
  for (std::size_t e = 0; e < contract.entries().size(); ++e) {
    ClassGap g;
    g.input_class = contract.entries()[e].input_class;
    if (e < trace.classes.size()) {
      g.planned = trace.classes[e].packets;
      g.note = trace.classes[e].note;
    }
    const auto it = observed.find(g.input_class);
    if (it != observed.end()) {
      const monitor::ClassReport& cr = *it->second;
      g.observed = cr.packets;
      g.reached = cr.packets > 0;
      for (const Metric m : kAllMetrics) {
        const std::size_t mi = metric_index(m);
        g.violations += cr.metrics[mi].violations;
        g.p99_util_pm[mi] = cr.metrics[mi].headroom_pm.p99;
        g.best_p99_util_pm = std::max(g.best_p99_util_pm, g.p99_util_pm[mi]);
      }
    }
    if (g.reached) ++gap.classes_reached;
    gap.classes.push_back(std::move(g));
  }
  return gap;
}

}  // namespace bolt::adversary
