// Adversarial workload synthesis — running a performance contract
// *backwards* (paper §5.1's unconstrained/adversarial traffic, mechanised).
//
// A contract says: for input class K, cost is bounded by f_K(PCVs). This
// subsystem inverts that statement into traffic: for every contract class
// it (a) takes the class's solved symbolic witness (the concrete packet the
// generator's solver produced for one of the class's paths) and
// materialises it into well-formed frames through net::PacketBuilder, and
// (b) wraps it in the *state history* the class's stateful cases demand —
// flow/MAC occupancy ramps up to table capacity, hash-collision chains
// against the (public or leaked) table key, deepest-walk LPM destinations,
// heartbeat-miss storms that kill every Maglev backend — so the probe
// packet actually lands in the class it targets.
//
// The synthesiser drives a *shadow* of the monitor's measurement side: one
// NF instance per flow-affine partition, advanced packet by packet with the
// same deterministic epoch clock MonitorEngine uses. Every emitted packet
// is committed to the shadow, so its attribution (the class the monitor
// will observe) and its predicted per-metric bound (the contract evaluated
// at the shadow-observed PCVs) are *facts about the replay*, not hopes:
// replaying the trace through MonitorEngine must reproduce the plan's
// attribution packet-for-packet (adversary/report.h closes that loop and
// reports the gaps).
//
// Everything is deterministic in AdversaryOptions::seed: the same options
// produce byte-identical traces, and replay reports are byte-identical at
// any shard x thread combination (the monitor's standing guarantee).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/bolt.h"
#include "net/packet.h"
#include "nf/framework.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::adversary {

/// Attribution slot for packets whose observed class has no contract entry
/// (possible only against a stored artifact missing generated classes).
inline constexpr std::uint32_t kNoEntry = ~0u;

struct AdversaryOptions {
  /// Scatters the synthesised flows/MACs through key space. The trace is a
  /// pure function of (target, contract, options).
  std::uint64_t seed = 1;
  /// Flow-affine state partitions the replay will use — part of the plan's
  /// semantics: stateful sequences are confined to single partitions (the
  /// attacker's version of hitting one RSS queue), so the partition count
  /// decides which flows can share history.
  std::size_t partitions = 8;
  /// Deterministic epoch clock mirrored into the shadow (must match the
  /// replay's MonitorOptions::epoch_ns).
  std::uint64_t epoch_ns = 1'000'000'000;
  /// Measurement-side framework costs (mirrors MonitorOptions::framework).
  nf::FrameworkCosts framework = nf::framework_full();
  /// Steady-state probe packets emitted per targeted class on top of the
  /// packets that set its state up.
  std::size_t probes_per_class = 12;
  net::TimestampNs start_ns = 1'000'000'000;
  std::uint64_t gap_ns = 10'000;  ///< inter-packet spacing (100kpps)
  /// Worker threads for the in-process witness generation (0 = auto).
  std::size_t threads = 0;
};

/// Per-packet plan entry: where the packet will land and what the contract
/// permits it to cost there. Parallel to AdversarialTrace::packets.
struct PacketPlan {
  /// Contract entry (index into the contract's entry vector) the shadow
  /// attributed this packet to. kNoEntry if the observed class has no
  /// contract entry.
  std::uint32_t entry = kNoEntry;
  /// Contract bound per metric, evaluated at the shadow-observed PCVs
  /// (indexed by perf::metric_index).
  std::array<std::int64_t, 3> predicted{};
};

/// Per-class synthesis summary. Parallel to the contract's entries.
struct ClassPlan {
  std::string input_class;
  std::uint64_t packets = 0;  ///< trace packets attributed to this class
  bool reached = false;
  std::string note;  ///< why unreached, or how the state was driven
};

struct AdversarialTrace {
  std::string nf;           ///< registry target name ("nat", "bridge", ...)
  std::string contract_nf;  ///< the contract's nf_name (artifact cross-check)
  std::uint64_t seed = 0;
  std::size_t partitions = 0;
  std::uint64_t epoch_ns = 0;
  std::vector<net::Packet> packets;
  std::vector<PacketPlan> plans;    ///< parallel to `packets`
  std::vector<ClassPlan> classes;   ///< parallel to the contract's entries

  std::size_t classes_reached() const;
  /// Input classes with no attributed packet, in contract order.
  std::vector<std::string> unreached_classes() const;
};

/// Synthesises the adversarial trace for a registered target
/// (core::make_named_target name). `contract`/`reg` are what the replay
/// will validate against — freshly generated or a stored artifact loaded
/// through perf::load_contract. Witnesses come from `path_reports` when
/// the caller already ran the generator (avoids a second symbex pass);
/// with nullptr they are (re)generated in-process. Stored-contract classes
/// the generator no longer produces are reported as unreached with a note.
AdversarialTrace adversarial_traffic(
    const std::string& nf_name, const perf::Contract& contract,
    const perf::PcvRegistry& reg, const AdversaryOptions& options = {},
    const std::vector<core::PathReport>* path_reports = nullptr);

/// Re-plans an arbitrary packet sequence through a fresh shadow: rebuilds
/// the plans (attribution + predicted bounds at the shadow-observed PCVs)
/// and per-class summaries for `packets` exactly as the replay will observe
/// them. Packets are taken verbatim — timestamps and in_ports included —
/// so the caller owns clock discipline (per-partition timestamps must be
/// non-decreasing, the standing replay assumption). This is the primitive
/// the hunter and the trace minimizer are built on: a mutated or subsetted
/// packet sequence invalidates its old plans (state histories shift, so
/// attributions and bounds move), and adversary::replay demands plans
/// parallel to packets.
AdversarialTrace plan_packets(
    const std::string& nf_name, const perf::Contract& contract,
    const perf::PcvRegistry& reg, std::vector<net::Packet> packets,
    const AdversaryOptions& options = {});

}  // namespace bolt::adversary
