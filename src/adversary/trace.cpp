#include "adversary/trace.h"

#include <cstdio>

#include "net/pcap.h"
#include "support/assert.h"
#include "support/io.h"
#include "support/json.h"
#include "support/strings.h"

namespace bolt::adversary {

namespace {

std::string plan_to_json(const AdversarialTrace& trace) {
  using support::json_quote_into;
  std::string out =
      "{\"version\":" + std::to_string(kTraceSchemaVersion) + ",\"nf\":";
  json_quote_into(out, trace.nf);
  out += ",\"contract_nf\":";
  json_quote_into(out, trace.contract_nf);
  out += ",\"seed\":" + std::to_string(trace.seed);
  out += ",\"partitions\":" + std::to_string(trace.partitions);
  out += ",\"epoch_ns\":" + std::to_string(trace.epoch_ns);
  out += ",\"classes\":[";
  bool first = true;
  for (const ClassPlan& cp : trace.classes) {
    if (!first) out += ',';
    first = false;
    out += "{\"input_class\":";
    json_quote_into(out, cp.input_class);
    out += ",\"packets\":" + std::to_string(cp.packets);
    out += ",\"reached\":" + std::string(cp.reached ? "true" : "false");
    out += ",\"note\":";
    json_quote_into(out, cp.note);
    out += '}';
  }
  out += "],\"packets\":[";
  first = true;
  for (std::size_t i = 0; i < trace.plans.size(); ++i) {
    const PacketPlan& plan = trace.plans[i];
    if (!first) out += ',';
    first = false;
    // kNoEntry serialises as -1 (the sidecar is signed-friendly JSON).
    const std::int64_t entry =
        plan.entry == kNoEntry ? -1 : static_cast<std::int64_t>(plan.entry);
    out += "{\"entry\":" + std::to_string(entry);
    out += ",\"in_port\":" + std::to_string(trace.packets[i].in_port());
    out += ",\"predicted\":[" + std::to_string(plan.predicted[0]) + ',' +
           std::to_string(plan.predicted[1]) + ',' +
           std::to_string(plan.predicted[2]) + "]}";
  }
  out += "]}";
  return out;
}

}  // namespace

bool save_trace(const std::string& prefix, const AdversarialTrace& trace) {
  const std::string pcap_path = prefix + ".pcap";
  const std::string json_path = prefix + ".json";
  if (!support::write_file(json_path, plan_to_json(trace) + "\n")) {
    return false;
  }
  // Serialise in memory and write through the same graceful path — a full
  // disk must not abort the process, and must not leave a dangling
  // sidecar next to a missing/truncated pcap.
  const std::vector<std::uint8_t> pcap = net::serialize_pcap(trace.packets);
  if (!support::write_file(
          pcap_path, std::string(pcap.begin(), pcap.end()))) {
    std::remove(json_path.c_str());
    return false;
  }
  return true;
}

AdversarialTrace load_trace(const std::string& prefix) {
  AdversarialTrace trace;
  trace.packets = net::read_pcap(prefix + ".pcap");

  const std::string json =
      support::read_file_or_die(prefix + ".json", "adversarial trace");
  support::JsonReader r(json, "adversary trace json");
  r.expect('{');
  r.key("version");
  if (r.integer() != kTraceSchemaVersion) {
    r.fail("unsupported trace schema version");
  }
  r.expect(',');
  r.key("nf");
  trace.nf = r.string();
  r.expect(',');
  r.key("contract_nf");
  trace.contract_nf = r.string();
  r.expect(',');
  r.key("seed");
  trace.seed = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("partitions");
  const std::int64_t partitions = r.integer();
  if (partitions < 1) r.fail("partitions must be positive");
  trace.partitions = static_cast<std::size_t>(partitions);
  r.expect(',');
  r.key("epoch_ns");
  const std::int64_t epoch_ns = r.integer();
  if (epoch_ns < 0) r.fail("epoch_ns must be non-negative");
  trace.epoch_ns = static_cast<std::uint64_t>(epoch_ns);
  r.expect(',');
  r.key("classes");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      ClassPlan cp;
      r.key("input_class");
      cp.input_class = r.string();
      r.expect(',');
      r.key("packets");
      cp.packets = static_cast<std::uint64_t>(r.integer());
      r.expect(',');
      r.key("reached");
      cp.reached = r.boolean();
      r.expect(',');
      r.key("note");
      cp.note = r.string();
      r.expect('}');
      trace.classes.push_back(std::move(cp));
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect(',');
  r.key("packets");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      PacketPlan plan;
      r.key("entry");
      const std::int64_t entry = r.integer();
      // -1 is the explicit "no contract entry" marker; anything else must
      // index the class table this very sidecar declared above.
      if (entry < -1) r.fail("packet plan entry below -1");
      if (entry >= 0 &&
          static_cast<std::uint64_t>(entry) >= trace.classes.size()) {
        r.fail("packet plan entry " + std::to_string(entry) +
               " out of range (sidecar declares " +
               std::to_string(trace.classes.size()) + " classes)");
      }
      plan.entry = entry < 0 ? kNoEntry : static_cast<std::uint32_t>(entry);
      r.expect(',');
      r.key("in_port");
      const std::int64_t in_port = r.integer();
      if (in_port < 0 || in_port > 0xffff) {
        r.fail("in_port " + std::to_string(in_port) +
               " outside the 16-bit port range");
      }
      r.expect(',');
      r.key("predicted");
      r.expect('[');
      plan.predicted[0] = r.integer();
      r.expect(',');
      plan.predicted[1] = r.integer();
      r.expect(',');
      plan.predicted[2] = r.integer();
      r.expect(']');
      r.expect('}');
      // Every plan must have its packet: a sidecar that outruns the pcap
      // is a mismatched pair, reported at the offending plan's offset
      // rather than silently dropping in_ports on the floor.
      if (trace.plans.size() >= trace.packets.size()) {
        r.fail("sidecar plan " + std::to_string(trace.plans.size()) +
               " has no pcap packet (pcap carries " +
               std::to_string(trace.packets.size()) + ")");
      }
      // PCAP carries no ingress-port column; restore it from the sidecar.
      trace.packets[trace.plans.size()].set_in_port(
          static_cast<std::uint16_t>(in_port));
      trace.plans.push_back(plan);
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect('}');
  r.end();
  // The converse truncation: fewer plans than packets (a cut-off plan
  // array still closing its brackets cleanly, or a sidecar paired with the
  // wrong pcap).
  if (trace.plans.size() != trace.packets.size()) {
    r.fail("sidecar carries " + std::to_string(trace.plans.size()) +
           " packet plans but the pcap carries " +
           std::to_string(trace.packets.size()) + " packets");
  }
  return trace;
}

}  // namespace bolt::adversary
