// Delta-debugging trace minimisation — from a ~4k-packet violating trace
// to an actionable witness.
//
// A hunter find is only useful if a human can read it: the violating
// packet plus the minimal state history that sets it up. minimize() shrinks
// a violating packet sequence in three phases, re-planning (plan_packets)
// and re-replaying through the *real* monitor at every step — the
// reproduction oracle is always the production measurement path, never a
// model of it:
//
//   1. Prefix truncation. A packet's measured cost depends only on packets
//      before it in its partition, so "prefix [0, n) violates" is monotone
//      in n; binary search finds the shortest violating prefix in O(log N)
//      replays. The last packet of that prefix is the violating packet.
//   2. ddmin (Zeller's delta debugging) over the prefix's interior:
//      partition the kept packets into chunks at increasing granularity,
//      try dropping each chunk (complement test), restart coarse after
//      every successful reduction. Packets keep their original timestamps
//      when others are dropped — a subsequence, not a re-synthesis — so
//      epoch geometry survives minimisation.
//   3. 1-minimality sweep: drop each remaining packet individually; any
//      drop that still reproduces is taken (and the sweep restarts). The
//      result is 1-minimal by construction: removing ANY single packet
//      loses the violation.
//
// Deterministic end to end: no randomness anywhere, so the minimised trace
// is a pure function of (input sequence, contract, options) — the property
// tests in tests/test_hunter.cpp pin reproduction, 1-minimality, and
// byte-determinism.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/report.h"
#include "monitor/monitor.h"
#include "net/packet.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::adversary {

struct MinimizeOptions {
  /// Shadow re-planning parameters (partitions/epoch must match the ones
  /// the violating trace was planned with).
  AdversaryOptions adversary;
  /// Replay knobs, inject_straddle_bug included when minimising a seeded
  /// find (the oracle must keep seeing the bug it is isolating).
  monitor::MonitorOptions monitor;
  /// Hard cap on reproduction replays (0 = no cap). ddmin is O(n^2) in the
  /// worst case; the cap turns a pathological input into a coarser — still
  /// violating — witness instead of an endless run.
  std::size_t max_replays = 0;
};

struct MinimizeResult {
  /// The input reproduced under the oracle. When false, nothing was
  /// minimised: `trace` is the re-planned input, and the caller's
  /// "violating trace" claim was wrong.
  bool reproduced = false;
  /// Verified by the final sweep: dropping any single packet of `trace`
  /// loses the violation.
  bool one_minimal = false;
  std::size_t original_packets = 0;
  std::size_t minimized_packets = 0;
  std::uint64_t replays = 0;  ///< oracle invocations spent
  /// The minimised trace, re-planned through the shadow (fresh plans +
  /// class summaries), ready for save_trace / regression check-in.
  AdversarialTrace trace;
  /// Replay report of the minimised trace (violations > 0 iff reproduced).
  GapReport report;
};

/// Minimises `packets` (a violating sequence, e.g. HunterResult::best's
/// packets) against the reproduction oracle "replay shows at least one
/// monitor violation or plan mismatch". See the file comment for phases.
MinimizeResult minimize(const std::string& nf_name,
                        const perf::Contract& contract,
                        const perf::PcvRegistry& reg,
                        const std::vector<net::Packet>& packets,
                        MinimizeOptions options = {});

}  // namespace bolt::adversary
