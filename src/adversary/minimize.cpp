#include "adversary/minimize.h"

#include <algorithm>
#include <utility>

namespace bolt::adversary {

namespace {

/// The reproduction oracle: re-plan a candidate subsequence through a
/// fresh shadow, replay it through the real monitor, and call it violating
/// when the replay shows a broken bound (or a plan/attribution divergence
/// — when minimising a divergence find, the oracle must keep chasing it).
class Oracle {
 public:
  Oracle(const std::string& nf, const perf::Contract& contract,
         const perf::PcvRegistry& reg, const MinimizeOptions& opts)
      : nf_(nf), contract_(contract), reg_(reg), opts_(opts) {}

  bool spent() const {
    return opts_.max_replays > 0 && replays_ >= opts_.max_replays;
  }
  std::uint64_t replays() const { return replays_; }

  bool violates(std::vector<net::Packet> pkts) {
    ++replays_;
    const AdversarialTrace trace = plan_packets(
        nf_, contract_, reg_, std::move(pkts), opts_.adversary);
    const GapReport report = replay(trace, contract_, reg_, opts_.monitor);
    return report.monitor.violations > 0 || report.mismatched > 0;
  }

 private:
  const std::string& nf_;
  const perf::Contract& contract_;
  const perf::PcvRegistry& reg_;
  const MinimizeOptions& opts_;
  std::uint64_t replays_ = 0;
};

std::vector<net::Packet> prefix_of(const std::vector<net::Packet>& pkts,
                                   std::size_t n) {
  return std::vector<net::Packet>(pkts.begin(), pkts.begin() + n);
}

/// cur minus the index range [from, to).
std::vector<net::Packet> without_range(const std::vector<net::Packet>& cur,
                                       std::size_t from, std::size_t to) {
  std::vector<net::Packet> out;
  out.reserve(cur.size() - (to - from));
  out.insert(out.end(), cur.begin(), cur.begin() + from);
  out.insert(out.end(), cur.begin() + to, cur.end());
  return out;
}

}  // namespace

MinimizeResult minimize(const std::string& nf_name,
                        const perf::Contract& contract,
                        const perf::PcvRegistry& reg,
                        const std::vector<net::Packet>& packets,
                        MinimizeOptions options) {
  MinimizeResult result;
  result.original_packets = packets.size();

  Oracle oracle(nf_name, contract, reg, options);

  // Phase 0: the input must reproduce, or there is nothing to minimise.
  result.reproduced = !packets.empty() && oracle.violates(packets);
  if (!result.reproduced) {
    result.trace = plan_packets(nf_name, contract, reg, packets,
                                options.adversary);
    result.report = replay(result.trace, contract, reg, options.monitor);
    result.minimized_packets = packets.size();
    result.replays = oracle.replays();
    return result;
  }

  // Phase 1: shortest violating prefix, by binary search. Soundness leans
  // on the streaming measurement model: a packet's cost depends only on
  // earlier packets of its partition, so prefix violation is monotone in
  // the prefix length. `hi` is violating at every step.
  std::size_t lo = 1, hi = packets.size();
  while (lo < hi && !oracle.spent()) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (oracle.violates(prefix_of(packets, mid))) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  std::vector<net::Packet> cur = prefix_of(packets, hi);

  // Phase 2: ddmin over the prefix. Try dropping chunks at increasing
  // granularity (complement tests); every successful drop restarts one
  // level coarser. Timestamps travel with their packets — candidates are
  // subsequences, so the epoch geometry of the survivors is untouched.
  std::size_t chunks = 2;
  while (cur.size() >= 2 && !oracle.spent()) {
    const std::size_t chunk_len = std::max<std::size_t>(1, cur.size() / chunks);
    bool reduced = false;
    for (std::size_t from = 0; from < cur.size() && !oracle.spent();
         from += chunk_len) {
      const std::size_t to = std::min(cur.size(), from + chunk_len);
      if (to - from == cur.size()) continue;  // never test the empty trace
      std::vector<net::Packet> candidate = without_range(cur, from, to);
      if (oracle.violates(candidate)) {
        cur = std::move(candidate);
        chunks = std::max<std::size_t>(2, chunks - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= cur.size()) break;  // singleton drops all failed
      chunks = std::min(cur.size(), chunks * 2);
    }
  }

  // Phase 3: 1-minimality sweep — the explicit verification that dropping
  // ANY single packet loses the violation (and the safety net when the
  // replay cap truncated ddmin mid-granularity). one_minimal is only
  // claimed for a COMPLETE clean pass; a pass cut short by the replay cap
  // leaves it false, never vacuously true.
  bool verified = cur.size() == 1;  // the empty trace cannot violate
  while (cur.size() >= 2) {
    bool reduced = false;
    bool complete = true;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (oracle.spent()) {
        complete = false;
        break;
      }
      std::vector<net::Packet> candidate = without_range(cur, i, i + 1);
      if (oracle.violates(candidate)) {
        cur = std::move(candidate);
        reduced = true;
        break;
      }
    }
    if (reduced) continue;
    verified = complete;
    break;
  }
  result.one_minimal = verified || cur.size() == 1;

  result.trace =
      plan_packets(nf_name, contract, reg, std::move(cur), options.adversary);
  result.report = replay(result.trace, contract, reg, options.monitor);
  result.minimized_packets = result.trace.packets.size();
  result.replays = oracle.replays();
  return result;
}

}  // namespace bolt::adversary
