#include "adversary/hunter.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "net/mutate.h"
#include "support/random.h"

namespace bolt::adversary {

bool operator<(const HunterFitness& a, const HunterFitness& b) {
  return std::tie(a.violations, a.margin_p99_pm, a.worst_util_pm,
                  a.total_util_pm) < std::tie(b.violations, b.margin_p99_pm,
                                              b.worst_util_pm,
                                              b.total_util_pm);
}

bool operator==(const HunterFitness& a, const HunterFitness& b) {
  return std::tie(a.violations, a.margin_p99_pm, a.worst_util_pm,
                  a.total_util_pm) == std::tie(b.violations, b.margin_p99_pm,
                                               b.worst_util_pm,
                                               b.total_util_pm);
}

HunterFitness fitness_of(const GapReport& report) {
  HunterFitness f;
  f.violations = report.monitor.violations;
  for (const monitor::ClassReport& c : report.monitor.classes) {
    f.margin_p99_pm = std::max(f.margin_p99_pm, c.violation_margin_pm.p99);
  }
  for (const ClassGap& c : report.classes) {
    f.worst_util_pm = std::max(f.worst_util_pm, c.best_p99_util_pm);
    f.total_util_pm += c.best_p99_util_pm;
  }
  return f;
}

namespace {

/// One mutation from the move set, drawn deterministically from `rng`.
/// Weighted toward the epoch-boundary moves — the straddle is the bug
/// class the synthesiser structurally cannot produce (its clock ticks in
/// gap_ns strides from start_ns, so it never lands on a sweep edge).
/// Failed moves (out-of-range picks, growth cap) are deliberate no-ops:
/// the rng stream stays aligned, so the hunt is reproducible either way.
void mutate_once(std::vector<net::Packet>& pkts, support::Rng& rng,
                 std::uint64_t epoch_ns, std::size_t max_packets) {
  if (pkts.empty()) return;
  const std::size_t n = pkts.size();
  std::uint64_t move = rng.below(8);
  if (epoch_ns == 0 && move <= 3) move = 4 + (move & 3);  // no epoch clock
  switch (move) {
    case 0:
    case 1:
    case 2:  // straddle: land a packet exactly on a sweep edge
      net::snap_to_boundary(pkts, rng.below(n), epoch_ns);
      break;
    case 3: {  // idle gap: push the tail across extra boundaries
      const std::uint64_t delta = epoch_ns / 4 + rng.below(2 * epoch_ns);
      net::stretch_gap(pkts, rng.below(n), delta);
      break;
    }
    case 4:
    case 5:  // cross-class interleaving against a fixed clock
      net::swap_contents(pkts, rng.below(n), rng.below(n));
      break;
    case 6:  // localised reordering storm
      net::rotate_window(pkts, rng.below(n), 2 + rng.below(6));
      break;
    default:  // burst doubling, capped so the trace cannot balloon
      if (n < max_packets) net::duplicate_at(pkts, rng.below(n));
      break;
  }
}

std::string fitness_str(const HunterFitness& f) {
  return std::to_string(f.violations) + "/" + std::to_string(f.margin_p99_pm) +
         "/" + std::to_string(f.worst_util_pm) + "/" +
         std::to_string(f.total_util_pm);
}

}  // namespace

HunterResult hunt(const std::string& nf_name, const perf::Contract& contract,
                  const perf::PcvRegistry& reg, HunterOptions options,
                  const std::vector<core::PathReport>* path_reports) {
  HunterOptions opts = options;
  if (opts.population == 0) opts.population = 1;
  if (opts.mutations_per_child == 0) opts.mutations_per_child = 1;
  const std::size_t budget =
      opts.budget > 0 ? opts.budget
                      : opts.generations * opts.population + 1;

  HunterResult result;

  // Generation 0: the synthesised seed trace, replayed as-is. A violation
  // here means the contract (or the monitor) is broken before any search.
  AdversarialTrace incumbent =
      adversarial_traffic(nf_name, contract, reg, opts.adversary, path_reports);
  GapReport incumbent_report = replay(incumbent, contract, reg, opts.monitor);
  ++result.replays;
  HunterFitness incumbent_fit = fitness_of(incumbent_report);
  result.divergence_found = incumbent_report.mismatched > 0;
  result.history.push_back("gen 0: fitness " + fitness_str(incumbent_fit) +
                           " packets " +
                           std::to_string(incumbent.packets.size()));

  const std::size_t max_packets = incumbent.packets.size() * 2;
  support::Rng rng(opts.seed);

  bool done = incumbent_fit.violations > 0 || result.divergence_found ||
              result.replays >= budget;
  for (std::size_t gen = 1; gen <= opts.generations && !done; ++gen) {
    for (std::size_t child = 0; child < opts.population; ++child) {
      if (result.replays >= budget) {
        done = true;
        break;
      }
      std::vector<net::Packet> pkts = incumbent.packets;
      for (std::size_t m = 0; m < opts.mutations_per_child; ++m) {
        mutate_once(pkts, rng, opts.adversary.epoch_ns, max_packets);
      }
      AdversarialTrace candidate =
          plan_packets(nf_name, contract, reg, std::move(pkts), opts.adversary);
      GapReport report = replay(candidate, contract, reg, opts.monitor);
      ++result.replays;
      const HunterFitness fit = fitness_of(report);
      if (report.mismatched > 0) {
        // Shadow/monitor divergence: the fitness signal is meaningless past
        // this point, and the trace itself is the finding. Surface it.
        result.divergence_found = true;
        incumbent = std::move(candidate);
        incumbent_report = std::move(report);
        incumbent_fit = fit;
        result.violation_generation = gen;
        done = true;
        break;
      }
      if (incumbent_fit < fit) {
        incumbent = std::move(candidate);
        incumbent_report = std::move(report);
        incumbent_fit = fit;
        if (fit.violations > 0) {
          result.violation_generation = gen;
          done = true;
          break;
        }
      }
    }
    result.history.push_back("gen " + std::to_string(gen) + ": fitness " +
                             fitness_str(incumbent_fit) + " replays " +
                             std::to_string(result.replays));
  }

  result.violation_found = incumbent_fit.violations > 0;
  result.fitness = incumbent_fit;
  result.best = std::move(incumbent);
  result.report = std::move(incumbent_report);
  return result;
}

}  // namespace bolt::adversary
