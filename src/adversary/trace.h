// Adversarial trace serialisation.
//
// A trace is two artifacts under one path prefix:
//   <prefix>.pcap — the packets (nanosecond PCAP, replayable by any tool),
//   <prefix>.json — the plan sidecar: per-packet target class + predicted
//                   bounds + ingress port (PCAP has no port column), plus
//                   the per-class synthesis summary and the replay
//                   parameters (partitions, epoch) the plan assumed.
// Together they make "the contract says this traffic is worst-case" a
// shippable, replayable claim: `bolt_cli adversary <nf> --out t` writes
// them, and a later monitor/CI run can re-measure the same bytes.
#pragma once

#include <string>

#include "adversary/adversary.h"

namespace bolt::adversary {

/// Plan sidecar schema version.
inline constexpr std::int64_t kTraceSchemaVersion = 1;

/// Writes <prefix>.pcap + <prefix>.json. Returns false on I/O failure
/// (never leaves a truncated pair behind).
bool save_trace(const std::string& prefix, const AdversarialTrace& trace);

/// Loads a trace pair back. Aborts loudly on missing files, malformed
/// JSON, a schema-version mismatch, or a pcap/sidecar packet-count
/// disagreement.
AdversarialTrace load_trace(const std::string& prefix);

}  // namespace bolt::adversary
