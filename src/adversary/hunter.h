// Violation hunter — feedback-directed search *past* the contract edge.
//
// The synthesiser (adversary.h) proves bounds are reachable: it lands
// traffic exactly at each class's predicted worst case, so by construction
// it can never find a bound that is *wrong*. The hunter closes that blind
// spot. Starting from the synthesised seed trace it runs a deterministic
// (1+λ) evolution strategy: each generation spawns λ children by mutating
// the incumbent's packet sequence with the net/mutate.h move set —
// epoch-boundary straddles (packets snapped exactly onto sweep edges),
// idle-gap stretches that force extra sweeps, cross-class content
// interleavings, reorder windows, burst duplications — re-plans every
// child through a fresh shadow (plan_packets) and replays it through the
// real monitor.
//
// Fitness is read off the replay gap report, compared lexicographically:
//   1. monitor violations (the prize),
//   2. violation-margin p99 per-mille (deeper breaks are better witnesses),
//   3. worst per-class p99 bound-utilization per-mille,
//   4. the sum of per-class p99 utilizations (aggregate pressure).
// Children that do not beat the incumbent are discarded; ties keep the
// incumbent (first-found wins, so the search is reproducible). The hunt
// stops at the first violating child — minimize.h takes over from there —
// or when the replay budget runs out.
//
// Everything is a pure function of (target, contract, options): same seed,
// byte-identical hunt. A clean contract must yield zero violations at any
// budget; a seeded measurement bug (MonitorOptions::inject_straddle_bug)
// must be found. tests/test_hunter.cpp pins both directions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "adversary/adversary.h"
#include "adversary/report.h"
#include "monitor/monitor.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::adversary {

/// Lexicographic fitness extracted from a replay gap report.
struct HunterFitness {
  std::uint64_t violations = 0;        ///< monitor violations (primary)
  std::uint64_t margin_p99_pm = 0;     ///< worst class violation-margin p99
  std::uint64_t worst_util_pm = 0;     ///< max class p99 bound-utilization
  std::uint64_t total_util_pm = 0;     ///< sum of class p99 utilizations
};

bool operator<(const HunterFitness& a, const HunterFitness& b);
bool operator==(const HunterFitness& a, const HunterFitness& b);

/// Reads the fitness signal off a gap report (exposed for tests).
HunterFitness fitness_of(const GapReport& report);

struct HunterOptions {
  /// Master seed: drives the synthesised seed trace AND the mutation
  /// stream. The entire hunt is a pure function of it.
  std::uint64_t seed = 1;
  std::size_t generations = 6;  ///< search rounds
  std::size_t population = 4;   ///< mutated children per round (λ)
  /// Mutations applied per child (each drawn from the move set).
  std::size_t mutations_per_child = 3;
  /// Hard cap on monitor replays, seed replay included (0 = derived from
  /// generations * population + 1). The hunt stops when it is spent.
  std::size_t budget = 0;
  /// Seed-trace synthesis + shadow re-planning parameters.
  AdversaryOptions adversary;
  /// Replay knobs. partitions/epoch_ns are overridden per trace (they are
  /// plan semantics); shards/threads/grouping/batch stay free, and the
  /// test-only inject_straddle_bug flag rides here for the seeded hunt.
  monitor::MonitorOptions monitor;
};

struct HunterResult {
  /// A replayed child (or the seed) broke a contract bound.
  bool violation_found = false;
  /// A replay disagreed with its plan's attribution (shadow/monitor model
  /// divergence — always a bug worth a look; fails the CLI gate too).
  bool divergence_found = false;
  std::size_t violation_generation = 0;  ///< 0 = the seed trace itself
  std::uint64_t replays = 0;             ///< monitor replays spent
  HunterFitness fitness;                 ///< of `best`
  /// Best trace found: the first violating trace when violation_found,
  /// otherwise the highest-fitness trace seen. Plans are fresh (re-planned
  /// through the shadow), so the trace round-trips through save_trace.
  AdversarialTrace best;
  GapReport report;  ///< replay report of `best`
  /// One line per generation: "gen 3: fitness 0/0/998/5400 replays 13".
  std::vector<std::string> history;
};

/// Runs the hunt for a registered target against `contract`/`reg` (same
/// artifact conventions as adversarial_traffic; `path_reports` reuses the
/// caller's generator output for seed-trace witnesses).
HunterResult hunt(const std::string& nf_name, const perf::Contract& contract,
                  const perf::PcvRegistry& reg, HunterOptions options = {},
                  const std::vector<core::PathReport>* path_reports = nullptr);

}  // namespace bolt::adversary
