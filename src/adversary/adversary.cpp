#include "adversary/adversary.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "core/bolt.h"
#include "core/classkey.h"
#include "core/scenarios.h"
#include "core/targets.h"
#include "dslib/bridge_state.h"
#include "dslib/lb_state.h"
#include "dslib/nat_state.h"
#include "monitor/monitor.h"
#include "net/flow.h"
#include "net/headers.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "nf/framework.h"
#include "support/assert.h"

namespace bolt::adversary {

namespace {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;

/// Hard cap on any brute-force key/tuple search. The constraints we search
/// under (partition residue x hash bucket) have density >= 1/2^16 for every
/// shipped configuration, so tripping this means a driver bug, not bad
/// luck.
constexpr std::uint64_t kSearchBudget = 64'000'000;

// ---------------------------------------------------------------------------
// Shadow: a bit-exact model of the monitor's measurement side. One NF
// instance per flow-affine partition, advanced in emission order with the
// same deterministic epoch clock MonitorEngine::run_partition uses, so the
// class key and PCVs observed here are exactly what the replay will see.
// ---------------------------------------------------------------------------
class Shadow {
 public:
  static constexpr std::uint32_t kUnmapped = ~0u;

  Shadow(const std::string& nf, const perf::Contract& contract,
         const perf::PcvRegistry& reg, const AdversaryOptions& opts)
      : opts_(opts) {
    for (std::size_t e = 0; e < contract.entries().size(); ++e) {
      entry_index_.emplace(contract.entries()[e].input_class, e);
    }
    partitions_.reserve(opts.partitions);
    for (std::size_t p = 0; p < opts.partitions; ++p) {
      auto part = std::make_unique<Partition>();
      BOLT_CHECK(core::make_named_target(nf, part->local_reg, part->target),
                 "adversary: unknown target '" + nf + "'");
      part->pcv_slot.assign(part->local_reg.size(), kUnmapped);
      for (const perf::PcvId id : part->local_reg.all()) {
        const std::string& name = part->local_reg.name(id);
        if (reg.contains(name)) part->pcv_slot[id] = reg.require(name);
      }
      part->runner = part->target.make_runner(opts.framework, nullptr);
      // Flat loop slot -> contract slot of the PCV named after the loop.
      ir::RunLabels& labels = part->runner->labels();
      part->loop_slot.assign(labels.loop_count(), kUnmapped);
      for (std::size_t flat = 0; flat < labels.loop_count(); ++flat) {
        const std::string& name = labels.loop_name(flat);
        if (reg.contains(name)) part->loop_slot[flat] = reg.require(name);
      }
      partitions_.push_back(std::move(part));
    }
  }

  struct Outcome {
    std::uint32_t entry = kNoEntry;
    std::string class_key;
    perf::PcvBinding pcvs;   ///< contract-registry ids
    net::Packet processed;   ///< post-NF bytes (rewrites readable)
    net::NfVerdict verdict = net::NfVerdict::kDrop;
    std::uint64_t out_port = 0;
  };

  std::size_t partition_of(const net::Packet& p) const {
    return monitor::partition_of(p, opts_.partitions);
  }

  /// Processes `p` in its partition and COMMITS the state change — every
  /// committed packet must become part of the trace, or shadow and replay
  /// state histories diverge.
  Outcome commit(const net::Packet& p) {
    Partition& part = *partitions_[partition_of(p)];
    if (opts_.epoch_ns > 0 && part.target.has_state_observers()) {
      const std::uint64_t epoch = p.timestamp_ns() / opts_.epoch_ns;
      if (!part.have_epoch) {
        part.have_epoch = true;
        part.epoch = epoch;
      } else if (epoch > part.epoch) {
        part.target.expire_state(epoch * opts_.epoch_ns);
        part.epoch = epoch;
      }
    }

    Outcome out;
    out.processed = p;
    const ir::RunResult run = part.runner->process(out.processed);
    out.verdict = run.verdict;
    out.out_port = run.out_port;

    out.class_key = core::class_key_of(run, &part.target.methods());
    const auto entry_it = entry_index_.find(out.class_key);
    if (entry_it != entry_index_.end()) {
      out.entry = static_cast<std::uint32_t>(entry_it->second);
    }

    for (const auto& [id, value] : run.pcvs.values()) {
      if (id < part.pcv_slot.size() && part.pcv_slot[id] != kUnmapped) {
        out.pcvs.set(part.pcv_slot[id], value);
      }
    }
    for (std::size_t flat = 0; flat < run.loop_trips.size(); ++flat) {
      const std::uint64_t trips = run.loop_trips[flat];
      if (trips != 0 && part.loop_slot[flat] != kUnmapped) {
        out.pcvs.set(part.loop_slot[flat], trips);
      }
    }
    return out;
  }

  core::NfTarget& target(std::size_t partition) {
    return partitions_[partition]->target;
  }

 private:
  struct Partition {
    perf::PcvRegistry local_reg;
    core::NfTarget target;
    std::vector<std::uint32_t> pcv_slot;
    std::vector<std::uint32_t> loop_slot;  ///< by flat loop index
    std::unique_ptr<core::NfRunner> runner;
    bool have_epoch = false;
    std::uint64_t epoch = 0;
  };

  AdversaryOptions opts_;
  std::vector<std::unique_ptr<Partition>> partitions_;
  std::unordered_map<std::string, std::size_t> entry_index_;
};

// ---------------------------------------------------------------------------
// Emitter: owns the trace under construction, the packet clock, and the
// per-class bookkeeping. emit() = commit to the shadow + append to the
// trace + record the observed attribution and the bound at the observed
// PCVs. There is deliberately no "try without committing": every processed
// packet ships.
// ---------------------------------------------------------------------------
class Emitter {
 public:
  Emitter(Shadow& shadow, const perf::Contract& contract,
          AdversarialTrace& trace, const AdversaryOptions& opts)
      : shadow_(shadow),
        contract_(contract),
        trace_(trace),
        opts_(opts),
        clock_(opts.start_ns) {}

  Shadow::Outcome emit(net::Packet p) {
    p.set_timestamp_ns(clock_);
    clock_ += opts_.gap_ns;
    Shadow::Outcome out = shadow_.commit(p);
    PacketPlan plan;
    plan.entry = out.entry;
    if (out.entry != kNoEntry) {
      const perf::ContractEntry& entry = contract_.entries()[out.entry];
      for (const Metric m : kAllMetrics) {
        plan.predicted[metric_index(m)] = entry.perf.get(m).eval(out.pcvs);
      }
      ClassPlan& cp = trace_.classes[out.entry];
      ++cp.packets;
      cp.reached = true;
    }
    trace_.packets.push_back(std::move(p));
    trace_.plans.push_back(plan);
    return out;
  }

  /// Jumps the packet clock forward (heartbeat-silence gaps etc.). Time
  /// only moves forward — the replay partitions assume monotone stamps.
  void advance_clock(std::uint64_t ns) { clock_ += ns; }

  void note(std::uint32_t entry, const std::string& text) {
    if (entry < trace_.classes.size() && trace_.classes[entry].note.empty()) {
      trace_.classes[entry].note = text;
    }
  }
  void note_class(const std::string& input_class, const std::string& text) {
    for (ClassPlan& cp : trace_.classes) {
      if (cp.input_class == input_class && cp.note.empty()) cp.note = text;
    }
  }

  std::size_t probes() const { return opts_.probes_per_class; }
  Shadow& shadow() { return shadow_; }

 private:
  Shadow& shadow_;
  const perf::Contract& contract_;
  AdversarialTrace& trace_;
  AdversaryOptions opts_;
  net::TimestampNs clock_;
};

// ---------------------------------------------------------------------------
// Witness materialisation: turn the solver's raw byte-level witness into a
// well-formed frame through PacketBuilder (correct lengths and checksums,
// minimum frame size) whenever the witness parses as plain Ethernet/IPv4/
// {UDP,TCP} without options; anything else — non-IP frames, IP options,
// exotic protocols — replays the solver's bytes verbatim, because those
// bytes *are* the class membership proof.
// ---------------------------------------------------------------------------
net::Packet materialize_witness(const net::Packet& witness) {
  const auto eth = net::parse_ethernet(witness.bytes());
  if (!eth || eth->ether_type != net::kEtherTypeIpv4) return witness;
  const auto ip = net::parse_ipv4(witness.bytes(), net::kEthernetHeaderSize);
  if (!ip || ip->has_options()) return witness;
  if (ip->protocol != net::kIpProtoUdp && ip->protocol != net::kIpProtoTcp) {
    return witness;
  }
  const std::size_t l4_off = net::kEthernetHeaderSize + ip->header_size();
  net::PacketBuilder b;
  b.eth(eth->src, eth->dst).ipv4(ip->src, ip->dst, ip->protocol, ip->ttl);
  if (ip->protocol == net::kIpProtoUdp) {
    const auto udp = net::parse_udp(witness.bytes(), l4_off);
    if (!udp) return witness;
    b.udp(udp->src_port, udp->dst_port);
  } else {
    const auto tcp = net::parse_tcp(witness.bytes(), l4_off);
    if (!tcp) return witness;
    b.tcp(tcp->src_port, tcp->dst_port);
  }
  b.in_port(witness.in_port());
  return b.build();
}

/// class_key -> pristine witness packet for every solved path (first path
/// in canonical order wins; coalesced classes share the key).
std::unordered_map<std::string, net::Packet> witness_map(
    const std::vector<core::PathReport>& paths) {
  std::unordered_map<std::string, net::Packet> out;
  for (const core::PathReport& r : paths) {
    if (r.solved) out.emplace(r.class_key, r.input);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Search helpers. All deterministic scans with an explicit budget.
// ---------------------------------------------------------------------------

/// First candidate c >= *cursor for which pred(c); advances *cursor past it.
template <typename Pred>
std::uint64_t scan(std::uint64_t* cursor, const char* what, Pred pred) {
  for (std::uint64_t tries = 0; tries < kSearchBudget; ++tries) {
    const std::uint64_t c = (*cursor)++;
    if (pred(c)) return c;
  }
  BOLT_CHECK(false, std::string("adversary: search budget exhausted for ") +
                        what);
  return 0;
}

// --- bridge ---------------------------------------------------------------

net::Packet bridge_frame(std::uint64_t src_mac, std::uint64_t dst_mac,
                         std::uint16_t in_port = 2) {
  net::PacketBuilder b;
  b.eth(net::MacAddress::from_u64(src_mac), net::MacAddress::from_u64(dst_mac))
      .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
            net::Ipv4Address::from_octets(10, 0, 0, 2))
      .udp(4000, 4001)
      .in_port(in_port);
  return b.build();
}

constexpr std::uint64_t kBcastMac = 0xffffffffffffULL;

/// The MAC-learning bridge. Stateful sequences live in one "home"
/// partition — the attacker's version of pinning one RSS queue — so table
/// fills and collision chains actually accumulate in the state instance
/// the probe packet will hit.
void drive_bridge(Emitter& em, const AdversaryOptions& opts) {
  Shadow& sh = em.shadow();
  const std::size_t home = 0;
  auto& bridge = em.shadow()
                     .target(home)
                     .instance.state_as<dslib::BridgeState>();
  auto& table = bridge.mac_table();

  // Locally administered MAC pool, offset by the seed.
  std::uint64_t cursor = 0x020000300000ULL + (opts.seed % 0xffff) * 0x10000ULL;
  const auto src_for_dst = [&](std::uint64_t dst) {
    return scan(&cursor, "bridge src MAC in home partition", [&](std::uint64_t c) {
      return sh.partition_of(bridge_frame(c, dst)) == home;
    });
  };

  // A destination never learned as a source: lookups on it always miss.
  const std::uint64_t kMissDst = 0x020000200001ULL;

  // learn=new / learn=known, against all three stateless tags.
  const std::uint64_t a = src_for_dst(kMissDst);
  em.emit(bridge_frame(a, kMissDst));  // unicast_miss | learn=new
  for (std::size_t i = 0; i < em.probes(); ++i) {
    em.emit(bridge_frame(a, kMissDst));  // unicast_miss | learn=known
  }
  const std::uint64_t b = src_for_dst(a);
  em.emit(bridge_frame(b, a));  // unicast | learn=new, lookup=hit
  for (std::size_t i = 0; i < em.probes(); ++i) {
    em.emit(bridge_frame(b, a));  // unicast | learn=known, lookup=hit
  }
  const std::uint64_t c = src_for_dst(kBcastMac);
  em.emit(bridge_frame(c, kBcastMac));  // broadcast | learn=new
  for (std::size_t i = 0; i < em.probes(); ++i) {
    em.emit(bridge_frame(c, kBcastMac));  // broadcast | learn=known
  }

  // learn=rehash for each tag: build a bucket chain longer than the rehash
  // threshold under the table's *current* hash key (initially the paper's
  // leaked-key setup; after each rehash we simply read the renewed key back
  // from the shadow — the synthesiser is a white-box tool), then trip the
  // defence with one more colliding source aimed at the right destination.
  for (const std::uint64_t trigger_dst : {kMissDst, a, kBcastMac}) {
    const std::uint64_t key = table.hash_key();
    auto& raw = table.raw_table();
    const std::uint64_t buckets = raw.bucket_count();
    const std::uint64_t threshold = table.config().rehash_threshold;
    const std::uint64_t target_bucket = 0;
    const auto chain_mac = [&](std::uint64_t dst) {
      return scan(&cursor, "bridge collision-chain MAC", [&](std::uint64_t m) {
        if ((net::mix64(m ^ key) & (buckets - 1)) != target_bucket) return false;
        return sh.partition_of(bridge_frame(m, dst)) == home;
      });
    };
    for (std::uint64_t i = 0; i <= threshold; ++i) {
      em.emit(bridge_frame(chain_mac(kMissDst), kMissDst));  // chain: learn=new
    }
    // The (threshold+2)'th colliding learn walks threshold+1 nodes and
    // trips the defence: learn=rehash, with the tag the destination picks.
    em.emit(bridge_frame(chain_mac(trigger_dst), trigger_dst));
  }

  // learn=full x all tags: occupancy ramp to capacity, then fresh-source
  // probes. The ramp itself is more learn=new traffic.
  while (table.occupancy() < table.capacity()) {
    em.emit(bridge_frame(src_for_dst(kMissDst), kMissDst));
  }
  for (std::size_t i = 0; i <= em.probes(); ++i) {
    em.emit(bridge_frame(src_for_dst(kMissDst), kMissDst));  // miss | full
    em.emit(bridge_frame(src_for_dst(a), a));                // hit  | full
    em.emit(bridge_frame(src_for_dst(kBcastMac), kBcastMac));  // bcast | full
  }
}

// --- NAT ------------------------------------------------------------------

void drive_nat(Emitter& em, const AdversaryOptions& opts,
               const std::unordered_map<std::string, net::Packet>& witnesses) {
  Shadow& sh = em.shadow();
  const std::size_t home = 0;
  auto& nat = sh.target(home).instance.state_as<dslib::NatState>();
  auto& table = nat.internal_table();
  const std::uint32_t external_ip = nat.config().external_ip;

  // invalid: replay the solver's witness (a malformed frame) verbatim.
  const auto invalid_it = witnesses.find("invalid");
  const net::Packet invalid = invalid_it != witnesses.end()
                                  ? invalid_it->second
                                  : net::invalid_packet();
  for (std::size_t i = 0; i <= em.probes(); ++i) em.emit(invalid);

  std::uint64_t cursor = opts.seed * 1'000'003ULL;
  const auto internal_packet = [&](std::uint64_t index) {
    return net::packet_for_tuple(net::tuple_for_index(index, true), 0,
                                 /*in_port=*/0);
  };
  const auto reverse_packet = [&](const net::FiveTuple& fwd,
                                  std::uint16_t ext_port) {
    const net::FiveTuple rev{fwd.dst_ip, net::Ipv4Address{external_ip},
                             fwd.dst_port, ext_port, fwd.protocol};
    return net::packet_for_tuple(rev, 0, /*in_port=*/1);
  };

  // Forward/reverse pair pinned to the home partition: the reverse packet
  // must hash to the partition holding the forward mapping, and its dst
  // port is the mapping's external port — predictable because ports
  // allocate sequentially and nothing frees inside the synthesis window.
  const std::uint64_t pair_index = scan(
      &cursor, "NAT forward/reverse tuple pair", [&](std::uint64_t i) {
        if (sh.partition_of(internal_packet(i)) != home) return false;
        const std::uint16_t predicted_port = static_cast<std::uint16_t>(
            nat.config().first_external_port + nat.allocator().in_use());
        return sh.partition_of(reverse_packet(net::tuple_for_index(i, true),
                                              predicted_port)) == home;
      });
  const net::FiveTuple fwd_tuple = net::tuple_for_index(pair_index, true);
  const auto fwd_out = em.emit(internal_packet(pair_index));  // internal_new
  for (std::size_t i = 0; i < em.probes(); ++i) {
    em.emit(internal_packet(pair_index));  // internal_known
  }
  // Read the allocated external port off the translated packet itself.
  if (fwd_out.verdict == net::NfVerdict::kForward) {
    const std::uint16_t ext_port =
        net::load_be16(fwd_out.processed.bytes(), nf::kOffL4Src);
    const net::Packet rev = reverse_packet(fwd_tuple, ext_port);
    if (sh.partition_of(rev) == home) {
      for (std::size_t i = 0; i <= em.probes(); ++i) {
        em.emit(rev);  // external_known
      }
    } else {
      em.note_class("external_known | nat.expire=expire,nat.lookup_ext=hit",
                    "reverse partition diverged from prediction");
    }
  }

  // external_drop: reverse-side traffic at a port outside the allocator's
  // range — no mapping in any partition.
  const net::Packet stray = reverse_packet(net::tuple_for_index(7, true), 60000);
  for (std::size_t i = 0; i <= em.probes(); ++i) em.emit(stray);

  // Collision-chain amplification: internal flows whose keys share one
  // bucket of the home partition's table (leaked/public hash key). The
  // first flow of the chain ends up deepest (entries insert at the head),
  // so probing it walks the whole chain — internal_known with worst-case
  // traversals.
  const std::size_t chain_len = 8;
  std::vector<net::FiveTuple> chain;
  const auto batch = net::colliding_tuples(
      chain_len * std::max<std::size_t>(16, 8 * opts.partitions),
      /*bucket=*/0, table.bucket_count(), table.hash_key(),
      /*internal=*/true, /*start=*/opts.seed * 2'000'003ULL);
  for (const net::FiveTuple& t : batch) {
    if (chain.size() < chain_len &&
        sh.partition_of(net::packet_for_tuple(t, 0, 0)) == home) {
      chain.push_back(t);
    }
  }
  BOLT_CHECK(chain.size() == chain_len,
             "adversary: NAT collision chain search came up short");
  for (const net::FiveTuple& t : chain) {
    em.emit(net::packet_for_tuple(t, 0, 0));  // internal_new, chain grows
  }
  for (std::size_t i = 0; i < em.probes(); ++i) {
    em.emit(net::packet_for_tuple(chain.front(), 0, 0));  // deepest walk
  }

  // internal_table_full: occupancy ramp to capacity in the home partition,
  // then fresh flows bounce off the occupancy check.
  while (table.occupancy() < table.capacity()) {
    const std::uint64_t i = scan(&cursor, "NAT fill tuple", [&](std::uint64_t c) {
      return sh.partition_of(internal_packet(c)) == home;
    });
    em.emit(internal_packet(i));  // internal_new
  }
  for (std::size_t i = 0; i <= em.probes(); ++i) {
    const std::uint64_t j = scan(&cursor, "NAT full-probe tuple",
                                 [&](std::uint64_t c) {
                                   return sh.partition_of(internal_packet(c)) ==
                                          home;
                                 });
    em.emit(internal_packet(j));  // internal_table_full
  }
}

// --- load balancer --------------------------------------------------------

void drive_lb(Emitter& em, const AdversaryOptions& opts,
              const std::unordered_map<std::string, net::Packet>& witnesses) {
  Shadow& sh = em.shadow();
  const std::size_t home = 0;
  auto& lb = sh.target(home).instance.state_as<dslib::LbState>();
  const auto& cfg = lb.config();
  const std::size_t backends = cfg.ring.backend_count;

  const auto invalid_it = witnesses.find("invalid");
  const net::Packet invalid = invalid_it != witnesses.end()
                                  ? invalid_it->second
                                  : net::invalid_packet();
  for (std::size_t i = 0; i <= em.probes(); ++i) em.emit(invalid);

  // Heartbeat for backend k, steered into the home partition via the
  // source port (the LB only looks at src IP subnet + dst port).
  std::uint64_t hb_cursor = 20'000 + (opts.seed % 1000);
  const auto heartbeat = [&](std::size_t backend) {
    net::Packet probe;
    scan(&hb_cursor, "LB heartbeat source port", [&](std::uint64_t sp) {
      net::PacketBuilder b;
      b.ipv4(net::Ipv4Address{0xac100000u |
                              static_cast<std::uint32_t>(backend + 1)},
             net::Ipv4Address::from_octets(10, 0, 0, 100))
          .udp(static_cast<std::uint16_t>(sp % 65536), cfg.heartbeat_port)
          .in_port(1);
      net::Packet p = b.build();
      if (sh.partition_of(p) != home) return false;
      probe = std::move(p);
      return true;
    });
    return probe;
  };
  const auto all_alive = [&] {
    for (std::size_t k = 0; k < backends; ++k) em.emit(heartbeat(k));
  };
  all_alive();  // heartbeat class + revives the home partition's ring

  std::uint64_t cursor = opts.seed * 3'000'017ULL;
  const auto flow_packet = [&](std::uint64_t index) {
    return net::packet_for_tuple(net::tuple_for_index(index, false), 0,
                                 /*in_port=*/0);
  };
  const auto home_flow = [&] {
    return scan(&cursor, "LB flow tuple in home partition",
                [&](std::uint64_t c) {
                  return sh.partition_of(flow_packet(c)) == home;
                });
  };

  // new_flow (ring_select=ok) + existing_live (cached backend responsive).
  const std::uint64_t pinned = home_flow();
  em.emit(flow_packet(pinned));  // new_flow | ring_select=ok
  for (std::size_t i = 0; i < em.probes(); ++i) {
    em.emit(flow_packet(pinned));  // existing_live
  }

  // Heartbeat-miss storm: silence every backend past the health timeout
  // (the flow-table TTL is longer, so the pinned flow survives), then keep
  // hammering the pinned flow — each packet finds its cached backend dead
  // and walks the entire Maglev ring past dead backends before falling
  // back. This is the LB's contract-predicted worst case.
  const std::uint64_t silence = cfg.ring.heartbeat_timeout_ns + 1'000'000'000;
  BOLT_CHECK(silence < cfg.flow.ttl_ns,
             "adversary: heartbeat silence would expire the pinned flow");
  em.advance_clock(silence);
  for (std::size_t i = 0; i <= em.probes(); ++i) {
    em.emit(flow_packet(pinned));  // existing_unresponsive (full ring walk)
  }

  // Revive the ring, then ramp the home partition's flow table to capacity
  // for new_flow | ring_select=full.
  all_alive();
  auto& table = lb.flow_table();
  while (table.occupancy() < table.capacity()) {
    em.emit(flow_packet(home_flow()));  // new_flow | ring_select=ok
  }
  for (std::size_t i = 0; i <= em.probes(); ++i) {
    em.emit(flow_packet(home_flow()));  // new_flow | ring_select=full
  }
}

// --- DIR-24-8 LPM router --------------------------------------------------

void drive_lpm(Emitter& em,
               const std::unordered_map<std::string, net::Packet>& witnesses) {
  // Stateless per-packet behaviour (the route table is static config), so
  // no partition pinning: the class is decided entirely by the destination
  // address against the canonical route set.
  const auto invalid_it = witnesses.find("invalid");
  const net::Packet invalid = invalid_it != witnesses.end()
                                  ? invalid_it->second
                                  : net::invalid_packet();
  for (std::size_t i = 0; i <= em.probes(); ++i) em.emit(invalid);

  // Split the canonical routes by *lookup tier*, which in DIR-24-8 is a
  // property of the destination's /24 block, not just the matched route: a
  // single >24-bit prefix flips its whole /24's tbl24 slot to indirect, so
  // every address in that block costs two lookups. A one-lookup probe must
  // therefore aim at a /24 block containing no long prefix at all.
  std::vector<std::uint32_t> one_dsts, two_dsts;
  for (const core::DirLpmRoute& r : core::dir_lpm_routes()) {
    const std::uint32_t span = r.length == 32 ? 1u : 1u << (32 - r.length);
    const std::uint32_t dst = r.prefix + span - 1;  // last address of range
    bool indirect_block = false;
    for (const core::DirLpmRoute& other : core::dir_lpm_routes()) {
      if (other.length > 24 && (dst >> 8) == (other.prefix >> 8)) {
        indirect_block = true;
      }
    }
    (indirect_block || r.length > 24 ? two_dsts : one_dsts).push_back(dst);
  }

  const auto probe = [&](std::uint32_t dst) {
    net::PacketBuilder b;
    b.ipv4(net::Ipv4Address::from_octets(192, 0, 2, 1), net::Ipv4Address{dst})
        .udp(5000, 5001);
    return b.build();
  };
  for (std::size_t i = 0; i <= em.probes(); ++i) {
    em.emit(probe(one_dsts[i % one_dsts.size()]));  // ipv4 | one_lookup
    em.emit(probe(two_dsts[i % two_dsts.size()]));  // ipv4 | two_lookups
  }
}

// --- generic fallback -----------------------------------------------------

/// Witness replay for targets whose classes are decided by the packet
/// alone (stateless chains, the trie router): every solved class's witness,
/// materialised through PacketBuilder, emitted 1 + probes times.
void drive_generic(Emitter& em, const perf::Contract& contract,
                   const std::unordered_map<std::string, net::Packet>&
                       witnesses) {
  for (std::size_t e = 0; e < contract.entries().size(); ++e) {
    const auto it = witnesses.find(contract.entries()[e].input_class);
    if (it == witnesses.end()) {
      em.note(static_cast<std::uint32_t>(e), "no solved witness");
      continue;
    }
    const net::Packet probe = materialize_witness(it->second);
    for (std::size_t i = 0; i <= em.probes(); ++i) em.emit(probe);
  }
}

}  // namespace

std::size_t AdversarialTrace::classes_reached() const {
  std::size_t reached = 0;
  for (const ClassPlan& cp : classes) {
    if (cp.reached) ++reached;
  }
  return reached;
}

std::vector<std::string> AdversarialTrace::unreached_classes() const {
  std::vector<std::string> out;
  for (const ClassPlan& cp : classes) {
    if (!cp.reached) out.push_back(cp.input_class);
  }
  return out;
}

AdversarialTrace adversarial_traffic(
    const std::string& nf_name, const perf::Contract& contract,
    const perf::PcvRegistry& reg, const AdversaryOptions& options,
    const std::vector<core::PathReport>* path_reports) {
  AdversaryOptions opts = options;
  if (opts.partitions == 0) opts.partitions = 1;

  AdversarialTrace trace;
  trace.nf = nf_name;
  trace.contract_nf = contract.nf_name();
  trace.seed = opts.seed;
  trace.partitions = opts.partitions;
  trace.epoch_ns = opts.epoch_ns;
  trace.classes.reserve(contract.entries().size());
  for (const perf::ContractEntry& entry : contract.entries()) {
    ClassPlan cp;
    cp.input_class = entry.input_class;
    trace.classes.push_back(std::move(cp));
  }

  // Witness side: reuse the caller's path reports when it already ran the
  // generator, else (re)generate in-process — the stored artifact carries
  // bounds, not witnesses. Either way, cross-check that the contract names
  // the live target.
  perf::PcvRegistry gen_reg;
  core::NfTarget gen_target;
  BOLT_CHECK(core::make_named_target(nf_name, gen_reg, gen_target),
             "adversary: unknown target '" + nf_name + "'");
  BOLT_CHECK(gen_target.contract_name() == contract.nf_name(),
             "adversary: contract was generated for nf '" +
                 contract.nf_name() + "', not '" +
                 gen_target.contract_name() + "'");
  core::GenerationResult generated;
  if (path_reports == nullptr) {
    core::BoltOptions gen_options;
    gen_options.threads = opts.threads;
    core::ContractGenerator generator(gen_reg, gen_options);
    generated = generator.generate(gen_target.analysis());
    path_reports = &generated.path_reports;
  }
  const auto witnesses = witness_map(*path_reports);

  Shadow shadow(nf_name, contract, reg, opts);
  Emitter emitter(shadow, contract, trace, opts);

  if (nf_name == "bridge") {
    drive_bridge(emitter, opts);
  } else if (nf_name == "nat" || nf_name == "nat-b") {
    drive_nat(emitter, opts, witnesses);
  } else if (nf_name == "lb") {
    drive_lb(emitter, opts, witnesses);
  } else if (nf_name == "lpm") {
    drive_lpm(emitter, witnesses);
  } else {
    drive_generic(emitter, contract, witnesses);
  }

  for (ClassPlan& cp : trace.classes) {
    if (!cp.reached && cp.note.empty()) {
      cp.note = witnesses.count(cp.input_class)
                    ? "witness available but state driver never landed here"
                    : "no generated witness (stored-contract-only class?)";
    }
  }
  return trace;
}

AdversarialTrace plan_packets(const std::string& nf_name,
                              const perf::Contract& contract,
                              const perf::PcvRegistry& reg,
                              std::vector<net::Packet> packets,
                              const AdversaryOptions& options) {
  AdversaryOptions opts = options;
  if (opts.partitions == 0) opts.partitions = 1;

  AdversarialTrace trace;
  trace.nf = nf_name;
  trace.contract_nf = contract.nf_name();
  trace.seed = opts.seed;
  trace.partitions = opts.partitions;
  trace.epoch_ns = opts.epoch_ns;
  trace.classes.reserve(contract.entries().size());
  for (const perf::ContractEntry& entry : contract.entries()) {
    ClassPlan cp;
    cp.input_class = entry.input_class;
    trace.classes.push_back(std::move(cp));
  }

  Shadow shadow(nf_name, contract, reg, opts);
  trace.packets = std::move(packets);
  trace.plans.reserve(trace.packets.size());
  for (const net::Packet& p : trace.packets) {
    const Shadow::Outcome out = shadow.commit(p);
    PacketPlan plan;
    plan.entry = out.entry;
    if (out.entry != kNoEntry) {
      const perf::ContractEntry& entry = contract.entries()[out.entry];
      for (const Metric m : kAllMetrics) {
        plan.predicted[metric_index(m)] = entry.perf.get(m).eval(out.pcvs);
      }
      ClassPlan& cp = trace.classes[out.entry];
      ++cp.packets;
      cp.reached = true;
    }
    trace.plans.push_back(plan);
  }
  for (ClassPlan& cp : trace.classes) {
    if (!cp.reached && cp.note.empty()) cp.note = "not exercised by this trace";
  }
  return trace;
}

}  // namespace bolt::adversary
