#include "ir/builder.h"

#include "support/assert.h"

namespace bolt::ir {

IrBuilder::IrBuilder(std::string program_name) {
  program_.name = std::move(program_name);
}

Reg IrBuilder::reg() { return program_.num_regs++; }

std::int32_t IrBuilder::emit(Instr ins) {
  BOLT_CHECK(!finished_, "builder already finished");
  program_.code.push_back(std::move(ins));
  pending_t_.push_back(-1);
  pending_f_.push_back(-1);
  return static_cast<std::int32_t>(program_.code.size()) - 1;
}

Reg IrBuilder::imm(std::uint64_t value, std::string comment) {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kConst;
  ins.dst = d;
  ins.imm = static_cast<std::int64_t>(value);
  ins.comment = std::move(comment);
  emit(std::move(ins));
  return d;
}

Reg IrBuilder::binary(Op op, Reg a, Reg b) {
  const Reg d = reg();
  Instr ins;
  ins.op = op;
  ins.dst = d;
  ins.a = a;
  ins.b = b;
  emit(std::move(ins));
  return d;
}

Reg IrBuilder::add(Reg a, Reg b) { return binary(Op::kAdd, a, b); }
Reg IrBuilder::sub(Reg a, Reg b) { return binary(Op::kSub, a, b); }
Reg IrBuilder::mul(Reg a, Reg b) { return binary(Op::kMul, a, b); }
Reg IrBuilder::band(Reg a, Reg b) { return binary(Op::kAnd, a, b); }
Reg IrBuilder::bor(Reg a, Reg b) { return binary(Op::kOr, a, b); }
Reg IrBuilder::bxor(Reg a, Reg b) { return binary(Op::kXor, a, b); }
Reg IrBuilder::shl(Reg a, Reg b) { return binary(Op::kShl, a, b); }
Reg IrBuilder::shr(Reg a, Reg b) { return binary(Op::kShr, a, b); }

Reg IrBuilder::bnot(Reg a) {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kNot;
  ins.dst = d;
  ins.a = a;
  emit(std::move(ins));
  return d;
}

Reg IrBuilder::mov(Reg a) {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kMov;
  ins.dst = d;
  ins.a = a;
  emit(std::move(ins));
  return d;
}

void IrBuilder::assign(Reg dst, Reg src) {
  Instr ins;
  ins.op = Op::kMov;
  ins.dst = dst;
  ins.a = src;
  emit(std::move(ins));
}

Reg IrBuilder::eq(Reg a, Reg b) { return binary(Op::kEq, a, b); }
Reg IrBuilder::ne(Reg a, Reg b) { return binary(Op::kNe, a, b); }
Reg IrBuilder::ltu(Reg a, Reg b) { return binary(Op::kLtU, a, b); }
Reg IrBuilder::leu(Reg a, Reg b) { return binary(Op::kLeU, a, b); }
Reg IrBuilder::gtu(Reg a, Reg b) { return binary(Op::kGtU, a, b); }
Reg IrBuilder::geu(Reg a, Reg b) { return binary(Op::kGeU, a, b); }

Reg IrBuilder::eq_imm(Reg a, std::uint64_t v) { return eq(a, imm(v)); }
Reg IrBuilder::ne_imm(Reg a, std::uint64_t v) { return ne(a, imm(v)); }
Reg IrBuilder::add_imm(Reg a, std::uint64_t v) { return add(a, imm(v)); }
Reg IrBuilder::and_imm(Reg a, std::uint64_t v) { return band(a, imm(v)); }
Reg IrBuilder::shr_imm(Reg a, unsigned bits) { return shr(a, imm(bits)); }
Reg IrBuilder::shl_imm(Reg a, unsigned bits) { return shl(a, imm(bits)); }

Reg IrBuilder::load_pkt(Reg offset, std::uint8_t width, std::string comment) {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kLoadPkt;
  ins.dst = d;
  ins.a = offset;
  ins.width = width;
  ins.comment = std::move(comment);
  emit(std::move(ins));
  return d;
}

Reg IrBuilder::load_pkt_at(std::uint64_t offset, std::uint8_t width,
                           std::string comment) {
  return load_pkt(imm(offset), width, std::move(comment));
}

void IrBuilder::store_pkt(Reg offset, Reg value, std::uint8_t width) {
  Instr ins;
  ins.op = Op::kStorePkt;
  ins.a = offset;
  ins.b = value;
  ins.width = width;
  emit(std::move(ins));
}

void IrBuilder::store_pkt_at(std::uint64_t offset, Reg value, std::uint8_t width) {
  store_pkt(imm(offset), value, width);
}

Reg IrBuilder::pkt_len() {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kPktLen;
  ins.dst = d;
  emit(std::move(ins));
  return d;
}

Reg IrBuilder::pkt_port() {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kPktPort;
  ins.dst = d;
  emit(std::move(ins));
  return d;
}

Reg IrBuilder::pkt_time() {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kPktTime;
  ins.dst = d;
  emit(std::move(ins));
  return d;
}

std::int32_t IrBuilder::local(std::string name) {
  (void)name;
  return program_.num_locals++;
}

Reg IrBuilder::load_local(std::int32_t slot) {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kLoadLocal;
  ins.dst = d;
  ins.imm = slot;
  emit(std::move(ins));
  return d;
}

void IrBuilder::store_local(std::int32_t slot, Reg value) {
  Instr ins;
  ins.op = Op::kStoreLocal;
  ins.a = value;
  ins.imm = slot;
  emit(std::move(ins));
}

void IrBuilder::set_scratch_slots(std::size_t slots) {
  program_.scratch_slots = slots;
}

Reg IrBuilder::load_mem(Reg slot_index) {
  const Reg d = reg();
  Instr ins;
  ins.op = Op::kLoadMem;
  ins.dst = d;
  ins.a = slot_index;
  ins.width = 8;
  emit(std::move(ins));
  return d;
}

void IrBuilder::store_mem(Reg slot_index, Reg value) {
  Instr ins;
  ins.op = Op::kStoreMem;
  ins.a = slot_index;
  ins.b = value;
  ins.width = 8;
  emit(std::move(ins));
}

std::pair<Reg, Reg> IrBuilder::call(std::int64_t method, Reg arg0, Reg arg1,
                                    std::string comment) {
  const Reg d0 = reg();
  const Reg d1 = reg();
  Instr ins;
  ins.op = Op::kCall;
  ins.dst = d0;
  ins.dst2 = d1;
  ins.a = arg0;
  ins.b = arg1;
  ins.imm = method;
  ins.comment = std::move(comment);
  emit(std::move(ins));
  return {d0, d1};
}

Label IrBuilder::make_label() {
  Label l;
  l.id = static_cast<std::int32_t>(label_pc_.size());
  label_pc_.push_back(-1);
  return l;
}

void IrBuilder::bind(Label label) {
  BOLT_CHECK(label.id >= 0 && label.id < static_cast<std::int32_t>(label_pc_.size()),
             "bad label");
  BOLT_CHECK(label_pc_[label.id] == -1, "label bound twice");
  label_pc_[label.id] = static_cast<std::int32_t>(program_.code.size());
}

void IrBuilder::br(Reg cond, Label if_true, Label if_false) {
  Instr ins;
  ins.op = Op::kBr;
  ins.a = cond;
  const std::int32_t pc = emit(std::move(ins));
  pending_t_[pc] = if_true.id;
  pending_f_[pc] = if_false.id;
}

void IrBuilder::br_true(Reg cond, Label if_true) {
  Label fall = make_label();
  br(cond, if_true, fall);
  bind(fall);
}

void IrBuilder::br_false(Reg cond, Label if_false) {
  Label fall = make_label();
  br(cond, fall, if_false);
  bind(fall);
}

void IrBuilder::jmp(Label target) {
  Instr ins;
  ins.op = Op::kJmp;
  const std::int32_t pc = emit(std::move(ins));
  pending_t_[pc] = target.id;
}

void IrBuilder::forward(Reg port) {
  Instr ins;
  ins.op = Op::kForward;
  ins.a = port;
  emit(std::move(ins));
}

void IrBuilder::forward_imm(std::uint64_t port) { forward(imm(port)); }

void IrBuilder::drop() {
  Instr ins;
  ins.op = Op::kDrop;
  emit(std::move(ins));
}

void IrBuilder::class_tag(const std::string& name) {
  Instr ins;
  ins.op = Op::kClassTag;
  ins.imm = static_cast<std::int64_t>(program_.class_tags.size());
  program_.class_tags.push_back(name);
  emit(std::move(ins));
}

std::int64_t IrBuilder::loop_head(const std::string& name) {
  const std::int64_t id = static_cast<std::int64_t>(program_.loops.size());
  program_.loops.push_back(name);
  loop_head_here(id);
  return id;
}

void IrBuilder::loop_head_here(std::int64_t loop_id) {
  Instr ins;
  ins.op = Op::kLoopHead;
  ins.imm = loop_id;
  emit(std::move(ins));
}

Program IrBuilder::finish() {
  BOLT_CHECK(!finished_, "builder already finished");
  finished_ = true;
  for (std::size_t pc = 0; pc < program_.code.size(); ++pc) {
    if (pending_t_[pc] >= 0) {
      const std::int32_t target = label_pc_[pending_t_[pc]];
      BOLT_CHECK(target >= 0, program_.name + ": unbound label (t)");
      program_.code[pc].t = target;
    }
    if (pending_f_[pc] >= 0) {
      const std::int32_t target = label_pc_[pending_f_[pc]];
      BOLT_CHECK(target >= 0, program_.name + ": unbound label (f)");
      program_.code[pc].f = target;
    }
  }
  program_.validate();
  return std::move(program_);
}

}  // namespace bolt::ir
