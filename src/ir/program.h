// The BOLT-repro intermediate representation (IR).
//
// The paper analyses NFs at the level of x86 machine code: KLEE enumerates
// paths through the stateless logic, Pin replays them instruction by
// instruction. Our reproduction substitutes a small register IR with exactly
// the features that analysis depends on:
//   * straight-line ALU work over 64-bit registers,
//   * packet byte loads/stores (the only interaction with the input),
//   * loads/stores to NF-local scratch memory (for per-NF arrays),
//   * conditional branches (the source of path multiplicity),
//   * calls into *stateful* data-structure methods (opaque to symbex,
//     modelled + contracted separately, per the Vigor split), and
//   * terminal actions: forward or drop.
//
// Stateless NF logic is written against this IR via `IrBuilder`; the same
// program is executed concretely (`Interpreter`) and symbolically
// (`symbex::Executor`).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bolt::ir {

using Reg = std::int32_t;
inline constexpr Reg kNoReg = -1;

enum class Op : std::uint8_t {
  // data movement / ALU (dst = a <op> b unless noted)
  kConst,   ///< dst = imm
  kMov,     ///< dst = a
  kAdd, kSub, kMul,
  kAnd, kOr, kXor,
  kShl, kShr,        ///< logical shifts; shift amount in b (mod 64)
  kNot,              ///< dst = ~a
  // comparisons produce 0/1 (unsigned)
  kEq, kNe, kLtU, kLeU, kGtU, kGeU,
  // packet interaction
  kLoadPkt,   ///< dst = big-endian load of `width` bytes at offset reg a
  kStorePkt,  ///< store low `width` bytes of b (big-endian) at offset reg a
  kPktLen,    ///< dst = packet length in bytes
  kPktPort,   ///< dst = ingress port
  kPktTime,   ///< dst = packet timestamp (ns); NF time source
  // NF-local scratch
  kLoadLocal,   ///< dst = locals[imm]          (one memory access)
  kStoreLocal,  ///< locals[imm] = a            (one memory access)
  kLoadMem,     ///< dst = scratch[a]  8-byte slot index in reg a
  kStoreMem,    ///< scratch[a] = b
  // stateful library
  kCall,  ///< (dst, dst2) = method imm(args a, b); see StatefulEnv
  // control flow
  kBr,   ///< if a != 0 goto t else goto f
  kJmp,  ///< goto t
  // terminal actions
  kForward,  ///< forward to port in a; ends processing
  kDrop,     ///< drop; ends processing
  // zero-cost annotations (not counted in any metric)
  kClassTag,  ///< tags the current path with input-class id imm
  kLoopHead,  ///< marks loop header imm; symbex counts trips per path
};

const char* op_name(Op op);

/// True for the annotation opcodes that carry no performance cost.
constexpr bool is_annotation(Op op) {
  return op == Op::kClassTag || op == Op::kLoopHead;
}

/// True for opcodes that perform exactly one memory access.
constexpr bool is_memory_op(Op op) {
  switch (op) {
    case Op::kLoadPkt: case Op::kStorePkt:
    case Op::kLoadLocal: case Op::kStoreLocal:
    case Op::kLoadMem: case Op::kStoreMem:
      return true;
    default:
      return false;
  }
}

struct Instr {
  Op op{};
  Reg dst = kNoReg;
  Reg dst2 = kNoReg;   ///< second result of kCall
  Reg a = kNoReg;
  Reg b = kNoReg;
  std::int64_t imm = 0;
  std::int32_t t = -1;  ///< branch target (instruction index)
  std::int32_t f = -1;  ///< branch fall-through target
  std::uint8_t width = 0;  ///< byte width for packet/scratch accesses
  std::string comment;     ///< for disassembly / debugging
};

/// A complete stateless NF program.
struct Program {
  std::string name;
  std::int32_t num_regs = 0;
  std::int32_t num_locals = 0;
  std::size_t scratch_slots = 0;  ///< 8-byte slots of NF-local scratch memory
  std::vector<Instr> code;
  /// Input-class tag names, indexed by the imm of kClassTag.
  std::vector<std::string> class_tags;
  /// Loop names, indexed by the imm of kLoopHead.
  std::vector<std::string> loops;

  /// Validates internal consistency (register/target ranges); aborts on error.
  void validate() const;

  /// Human-readable disassembly.
  std::string disassemble() const;
};

}  // namespace bolt::ir
