#include "ir/interp.h"

#include <algorithm>

#include "support/assert.h"

namespace bolt::ir {

std::string RunResult::class_label() const {
  std::string out;
  for (const std::uint32_t tag : class_tags) {
    if (!out.empty()) out += '/';
    out += labels != nullptr ? labels->tag_name(tag) : std::to_string(tag);
  }
  return out.empty() ? "(untagged)" : out;
}

std::vector<std::string> RunResult::class_tag_names() const {
  std::vector<std::string> out;
  out.reserve(class_tags.size());
  for (const std::uint32_t tag : class_tags) {
    out.push_back(labels != nullptr ? labels->tag_name(tag)
                                    : std::to_string(tag));
  }
  return out;
}

const std::string& RunResult::case_label_of(const CallRec& call) const {
  BOLT_CHECK(labels != nullptr, "RunResult has no label table");
  return labels->case_name(call.method, call.case_id);
}

std::map<std::int64_t, std::uint64_t> RunResult::loop_trips_map() const {
  std::map<std::int64_t, std::uint64_t> out;
  for (std::size_t flat = 0; flat < loop_trips.size(); ++flat) {
    if (loop_trips[flat] == 0) continue;  // a map only held visited loops
    const std::int64_t key =
        labels != nullptr ? labels->loop_key(flat)
                          : static_cast<std::int64_t>(flat);
    out[key] += loop_trips[flat];
  }
  return out;
}

void RunResult::clear() {
  verdict = net::NfVerdict::kDrop;
  out_port = 0;
  instructions = 0;
  mem_accesses = 0;
  stateless_instructions = 0;
  stateless_accesses = 0;
  pcvs.clear();
  calls.clear();
  class_tags.clear();
  loop_trips.clear();
  labels = nullptr;
}

Interpreter::Interpreter(const Program& program, StatefulEnv* env,
                         InterpreterOptions options, LabelBinding binding)
    : program_(program), env_(env), options_(std::move(options)) {
  program_.validate();
  if (binding.labels != nullptr) {
    labels_ = binding.labels;
    tag_base_ = binding.tag_base;
    loop_base_ = binding.loop_base;
  } else {
    owned_labels_ = std::make_shared<RunLabels>(
        std::vector<const Program*>{&program_});
    labels_ = owned_labels_.get();
  }
  regs_.resize(static_cast<std::size_t>(program_.num_regs), 0);
  locals_.resize(static_cast<std::size_t>(program_.num_locals), 0);
  scratch_.resize(program_.scratch_slots, 0);
  from_load_.resize(regs_.size(), false);
  site_memo_.resize(program_.code.size());
  for (std::size_t i = 0;
       i < std::min(options_.scratch_init.size(), scratch_.size()); ++i) {
    scratch_[i] = options_.scratch_init[i];
  }
}

RunResult Interpreter::run(net::Packet& packet) {
  RunResult result;
  run_into(packet, result);
  return result;
}

void Interpreter::run_into(net::Packet& packet, RunResult& result) {
  result.clear();
  result.labels = labels_;
  result.loop_trips.resize(labels_->loop_count(), 0);
  CostMeter meter(options_.sink);

  // Framework rx cost (our DPDK/driver substitute): fixed instruction and
  // access budget spent before the NF sees the packet.
  // rx metadata (mbuf + descriptor) clusters on a few cache lines, like a
  // real driver's: the conservative model can prove the repeats.
  meter.metered_instructions(options_.rx_instructions);
  for (std::uint64_t i = 0; i < options_.rx_accesses; ++i) {
    meter.mem_read(kMbufBase + (i * 16) % 192, 8);
  }

  const auto pkt = packet.bytes();
  std::uint64_t steps = 0;
  std::size_t pc = 0;
  bool done = false;

  // Load-taint per register: true if the value (transitively) derives from
  // a memory load. Loads at tainted addresses are pointer chases — the
  // realistic hardware model cannot overlap their misses (no MLP).
  std::fill(from_load_.begin(), from_load_.end(), false);
  auto& from_load = from_load_;
  auto taint2 = [&](Reg dst, Reg a, Reg b) {
    from_load[static_cast<std::size_t>(dst)] =
        (a != kNoReg && from_load[static_cast<std::size_t>(a)]) ||
        (b != kNoReg && from_load[static_cast<std::size_t>(b)]);
  };

  auto pkt_load = [&](std::uint64_t offset, std::uint8_t width,
                      bool dependent) {
    BOLT_CHECK(offset + width <= pkt.size(),
               program_.name + ": packet load out of bounds");
    std::uint64_t v = 0;
    for (std::uint8_t i = 0; i < width; ++i) v = (v << 8) | pkt[offset + i];
    meter.stateless_mem_read(kPacketBase + offset, width, dependent);
    return v;
  };
  auto pkt_store = [&](std::uint64_t offset, std::uint64_t value,
                       std::uint8_t width) {
    auto mut = packet.mutable_bytes();
    BOLT_CHECK(offset + width <= mut.size(),
               program_.name + ": packet store out of bounds");
    for (int i = width - 1; i >= 0; --i) {
      mut[offset + std::size_t(i)] = static_cast<std::uint8_t>(value & 0xff);
      value >>= 8;
    }
    meter.stateless_mem_write(kPacketBase + offset, width);
  };

  while (!done) {
    BOLT_CHECK(pc < program_.code.size(), program_.name + ": pc out of range");
    BOLT_CHECK(++steps <= options_.max_steps,
               program_.name + ": step budget exceeded (infinite loop?)");
    const Instr& ins = program_.code[pc];
    std::size_t next = pc + 1;

    if (!is_annotation(ins.op)) meter.stateless_instruction(ins.op);

    switch (ins.op) {
      case Op::kConst:
        regs_[ins.dst] = static_cast<std::uint64_t>(ins.imm);
        from_load[static_cast<std::size_t>(ins.dst)] = false;
        break;
      case Op::kMov: regs_[ins.dst] = regs_[ins.a]; taint2(ins.dst, ins.a, kNoReg); break;
      case Op::kAdd: regs_[ins.dst] = regs_[ins.a] + regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kSub: regs_[ins.dst] = regs_[ins.a] - regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kMul: regs_[ins.dst] = regs_[ins.a] * regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kAnd: regs_[ins.dst] = regs_[ins.a] & regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kOr: regs_[ins.dst] = regs_[ins.a] | regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kXor: regs_[ins.dst] = regs_[ins.a] ^ regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kShl: regs_[ins.dst] = regs_[ins.a] << (regs_[ins.b] & 63); taint2(ins.dst, ins.a, ins.b); break;
      case Op::kShr: regs_[ins.dst] = regs_[ins.a] >> (regs_[ins.b] & 63); taint2(ins.dst, ins.a, ins.b); break;
      case Op::kNot: regs_[ins.dst] = ~regs_[ins.a]; taint2(ins.dst, ins.a, kNoReg); break;
      case Op::kEq: regs_[ins.dst] = regs_[ins.a] == regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kNe: regs_[ins.dst] = regs_[ins.a] != regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kLtU: regs_[ins.dst] = regs_[ins.a] < regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kLeU: regs_[ins.dst] = regs_[ins.a] <= regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kGtU: regs_[ins.dst] = regs_[ins.a] > regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kGeU: regs_[ins.dst] = regs_[ins.a] >= regs_[ins.b]; taint2(ins.dst, ins.a, ins.b); break;
      case Op::kLoadPkt:
        regs_[ins.dst] = pkt_load(regs_[ins.a], ins.width,
                                  from_load[static_cast<std::size_t>(ins.a)]);
        from_load[static_cast<std::size_t>(ins.dst)] = true;
        break;
      case Op::kStorePkt:
        pkt_store(regs_[ins.a], regs_[ins.b], ins.width);
        break;
      case Op::kPktLen: regs_[ins.dst] = pkt.size(); break;
      case Op::kPktPort: regs_[ins.dst] = packet.in_port(); break;
      case Op::kPktTime: regs_[ins.dst] = packet.timestamp_ns(); break;
      case Op::kLoadLocal:
        regs_[ins.dst] = locals_[static_cast<std::size_t>(ins.imm)];
        meter.stateless_mem_read(kLocalsBase + 8 * std::uint64_t(ins.imm), 8);
        from_load[static_cast<std::size_t>(ins.dst)] = true;
        break;
      case Op::kStoreLocal:
        locals_[static_cast<std::size_t>(ins.imm)] = regs_[ins.a];
        meter.stateless_mem_write(kLocalsBase + 8 * std::uint64_t(ins.imm), 8);
        break;
      case Op::kLoadMem: {
        const std::uint64_t slot = regs_[ins.a];
        BOLT_CHECK(slot < scratch_.size(),
                   program_.name + ": scratch load out of range");
        regs_[ins.dst] = scratch_[slot];
        meter.stateless_mem_read(kScratchBase + 8 * slot, 8,
                                 from_load[static_cast<std::size_t>(ins.a)]);
        from_load[static_cast<std::size_t>(ins.dst)] = true;
        break;
      }
      case Op::kStoreMem: {
        const std::uint64_t slot = regs_[ins.a];
        BOLT_CHECK(slot < scratch_.size(),
                   program_.name + ": scratch store out of range");
        scratch_[slot] = regs_[ins.b];
        meter.stateless_mem_write(kScratchBase + 8 * slot, 8);
        break;
      }
      case Op::kCall: {
        BOLT_CHECK(env_ != nullptr, program_.name + ": kCall with no env");
        const std::uint64_t a0 = ins.a != kNoReg ? regs_[ins.a] : 0;
        const std::uint64_t a1 = ins.b != kNoReg ? regs_[ins.b] : 0;
        CallOutcome outcome = env_->call(ins.imm, a0, a1, packet, meter);
        if (ins.dst != kNoReg) {
          regs_[ins.dst] = outcome.v0;
          from_load[static_cast<std::size_t>(ins.dst)] = true;
        }
        if (ins.dst2 != kNoReg) {
          regs_[ins.dst2] = outcome.v1;
          from_load[static_cast<std::size_t>(ins.dst2)] = true;
        }
        // Per-packet PCV binding: keep the max value seen per PCV.
        for (const auto& [id, v] : outcome.pcvs.values()) {
          if (v > result.pcvs.get(id)) result.pcvs.set(id, v);
        }
        CallRec rec;
        rec.method = ins.imm;
        SiteMemo& memo = site_memo_[pc];
        if (memo.ptr != nullptr && memo.ptr == outcome.case_label) {
          rec.case_id = memo.case_id;
          rec.token = memo.token;
        } else {
          rec.case_id = labels_->intern_case(ins.imm, outcome.case_label);
          rec.token = labels_->case_token(ins.imm, rec.case_id);
          memo = SiteMemo{outcome.case_label, rec.case_id, rec.token};
        }
        result.calls.push_back(rec);
        break;
      }
      case Op::kBr:
        next = regs_[ins.a] != 0 ? static_cast<std::size_t>(ins.t)
                                 : static_cast<std::size_t>(ins.f);
        break;
      case Op::kJmp:
        next = static_cast<std::size_t>(ins.t);
        break;
      case Op::kForward:
        result.verdict = net::NfVerdict::kForward;
        result.out_port = regs_[ins.a];
        done = true;
        break;
      case Op::kDrop:
        result.verdict = net::NfVerdict::kDrop;
        done = true;
        break;
      case Op::kClassTag:
        result.class_tags.push_back(tag_base_ +
                                    static_cast<std::uint32_t>(ins.imm));
        break;
      case Op::kLoopHead:
        ++result.loop_trips[loop_base_ + static_cast<std::size_t>(ins.imm)];
        break;
    }
    pc = next;
  }

  // Framework tx/drop cost.
  if (result.verdict == net::NfVerdict::kForward) {
    meter.metered_instructions(options_.tx_instructions);
    for (std::uint64_t i = 0; i < options_.tx_accesses; ++i) {
      meter.mem_write(kMbufBase + 192 + (i * 16) % 128, 8);
    }
  } else {
    meter.metered_instructions(options_.drop_instructions);
    for (std::uint64_t i = 0; i < options_.drop_accesses; ++i) {
      meter.mem_write(kMbufBase + 320 + (i * 16) % 64, 8);
    }
  }

  result.instructions = meter.instructions();
  result.mem_accesses = meter.accesses();
  result.stateless_instructions = meter.stateless_instructions();
  result.stateless_accesses = meter.stateless_accesses();
}

}  // namespace bolt::ir
