// Pre-decoded execution form + direct-threaded interpreter (the tentpole
// of the execution fast path).
//
// The reference Interpreter re-derives everything per instruction: it
// switches on a loosely packed Instr, rebuilds branch targets from
// signed fields, and pays three virtual TraceSink calls per instruction
// for cost accounting. DecodedProgram flattens a Program once, ahead of
// time, into dense operand records with:
//
//   * resolved branch targets (decoded-index space, unsigned),
//   * superinstructions for the dominant static pairs/triples/quads
//     (compare+branch, const+ALU, const+load/store/forward, and the
//     const+load+const+and header-field idiom), and
//   * per-record cost metadata (stateless instruction count, mul count)
//     so accounting is table adds instead of per-op virtual dispatch.
//
// DecodedInterpreter executes that form with computed-goto direct
// threading (portable switch fallback behind BOLT_NO_COMPUTED_GOTO) and
// drives the conservative cycle meter inline via TraceSink::fast_meter().
// It is byte-result-identical to the reference engine — enforced by
// tests/test_decoded.cpp — but does no string work, no map work, and no
// virtual dispatch on the per-packet path.
//
// Fusion safety: a record may only absorb follow-on instructions that are
// not branch targets (verified against the program's in-degree), and every
// fused record replays the member writes in original order (const writes
// first), so register aliasing between members cannot change results. The
// single extra constraint is kLoadPktMaskI, which caches the loaded value
// across the second const and therefore requires the load destination and
// the mask register to differ.
//
// The decoded engine does not track load-taint ("dependent" flags):
// nothing it reports consumes them. Sinks that do (hw::RealisticSim) have
// no fast_meter() and are automatically routed to the reference engine by
// NfRunner.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ir/interp.h"
#include "ir/program.h"

namespace bolt::ir {

/// Decoded opcodes: the 33 base ops (same order as ir::Op, so decode of an
/// unfused instruction is a cast) followed by the superinstructions.
enum class DOp : std::uint8_t {
  // --- base ops, mirroring ir::Op ---
  kConst, kMov,
  kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShr, kNot,
  kEq, kNe, kLtU, kLeU, kGtU, kGeU,
  kLoadPkt, kStorePkt, kPktLen, kPktPort, kPktTime,
  kLoadLocal, kStoreLocal, kLoadMem, kStoreMem,
  kCall, kBr, kJmp, kForward, kDrop, kClassTag, kLoopHead,
  // --- const + ALU pairs: dst = a <op> imm (const register still written) ---
  kAddI, kSubI, kMulI, kAndI, kOrI, kXorI, kShlI, kShrI,
  kEqI, kNeI, kLtUI, kLeUI, kGtUI, kGeUI,
  // --- compare + branch pairs: dst = a <op> b, then branch on it ---
  kEqBr, kNeBr, kLtUBr, kLeUBr, kGtUBr, kGeUBr,
  // --- const + compare + branch triples: dst = a <op> imm, branch ---
  kEqIBr, kNeIBr, kLtUIBr, kLeUIBr, kGtUIBr, kGeUIBr,
  // --- packet / terminal fusions ---
  kLoadPktI,     ///< const off; load: dst = pkt[imm .. imm+width)
  kStorePktI,    ///< const off; store: pkt[imm ..] = b
  kForwardI,     ///< const port; forward(imm)
  kLoadPktMaskI, ///< const off; load; const mask; and: dst2 = pkt[imm] & imm2
};

inline constexpr std::size_t kNumDOps =
    static_cast<std::size_t>(DOp::kLoadPktMaskI) + 1;

const char* dop_name(DOp op);

/// One decoded record. Wider than Instr (it can hold up to four fused
/// members' operands) but fixed-size and dense; targets are decoded
/// indices.
struct DInstr {
  DOp op{};
  std::uint8_t width = 0;
  std::uint8_t n_instr = 0;  ///< stateless instructions this record covers
  std::uint8_t n_mul = 0;    ///< how many of those are kMul
  Reg dst = kNoReg;
  Reg dst2 = kNoReg;  ///< kCall's second result; fusions' const register
  Reg a = kNoReg;
  Reg b = kNoReg;
  std::uint32_t t = 0;  ///< branch target (decoded index)
  std::uint32_t f = 0;  ///< branch fall-through (decoded index)
  std::int64_t imm = 0;
  std::int64_t imm2 = 0;  ///< kLoadPktMaskI's mask
};

/// A Program flattened for execution, plus decode statistics.
struct DecodedProgram {
  std::vector<DInstr> code;
  /// Original instructions absorbed into superinstructions (members beyond
  /// each fused record's head).
  std::size_t fused_away = 0;

  /// Decodes `program` (which must outlive the result only through this
  /// call — the decoded form holds no references into it).
  static DecodedProgram decode(const Program& program);
};

/// The direct-threaded engine. Same construction surface and observable
/// behaviour as ir::Interpreter; see file comment for what it skips.
class DecodedInterpreter final : public PacketEngine {
 public:
  /// `options.sink` must be null or expose a fast_meter() — callers that
  /// hold an order-sensitive sink must use the reference engine (NfRunner
  /// makes that routing decision; this constructor checks it).
  DecodedInterpreter(const Program& program, StatefulEnv* env,
                     InterpreterOptions options = {}, LabelBinding binding = {});

  RunResult run(net::Packet& packet);

  void run_into(net::Packet& packet, RunResult& result) override;
  std::vector<std::uint64_t>& scratch() override { return scratch_; }
  RunLabels& labels() override { return *labels_; }

  const DecodedProgram& decoded() const { return dprog_; }

 private:
  template <bool kMeter>
  void exec(net::Packet& packet, RunResult& result);

  std::string name_;  ///< program name, for diagnostics
  StatefulEnv* env_;
  InterpreterOptions options_;
  DecodedProgram dprog_;
  ConservativeCycleMeter* fast_meter_ = nullptr;  ///< from options_.sink
  /// Per-record conservative cycles ((n_instr - n_mul)·alu + n_mul·mul),
  /// precomputed from the meter's costs; empty when there is no meter.
  std::vector<std::uint32_t> record_cycles_;
  std::shared_ptr<RunLabels> owned_labels_;  ///< when standalone
  RunLabels* labels_;
  std::uint32_t tag_base_ = 0;
  std::uint32_t loop_base_ = 0;
  std::vector<std::uint64_t> regs_;
  std::vector<std::uint64_t> locals_;
  std::vector<std::uint64_t> scratch_;
  /// Per-call-site case memo, indexed by decoded pc of the kCall.
  struct SiteMemo {
    const char* ptr = nullptr;
    std::uint32_t case_id = 0;
    std::uint32_t token = 0;
  };
  std::vector<SiteMemo> site_memo_;
};

}  // namespace bolt::ir
