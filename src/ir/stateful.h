// Interface between stateless IR programs and the stateful library.
//
// Mirrors the Vigor/BOLT split (paper §3.1): the stateless NF logic calls
// into pre-analysed stateful methods through an opaque boundary. During
// concrete execution the boundary is implemented by real dslib structures;
// during symbolic execution by their symbolic models.
#pragma once

#include <cstdint>

#include "ir/cost.h"
#include "net/packet.h"
#include "perf/pcv.h"

namespace bolt::ir {

/// Result of a concrete stateful call. Besides the return values the
/// structure reports *which contract case* the call took (e.g. "hit" vs
/// "miss") and the PCV values it induced (collisions, traversals, expired
/// entries, ...). The Distiller and the accuracy experiments feed on these.
///
/// `case_label` is a borrowed pointer, not an owned string: every dslib
/// implementation labels its cases with string literals, and the replay
/// environment points into path data that outlives the call. The pointee
/// must stay valid until the interpreter interns it (immediately after the
/// call returns) — which also makes the common repeat-case fast path a
/// single pointer compare per call instead of a string allocation.
struct CallOutcome {
  std::uint64_t v0 = 0;
  std::uint64_t v1 = 0;
  const char* case_label = "";
  perf::PcvBinding pcvs;
};

/// Concrete implementation of the stateful boundary: maps method ids to
/// real data-structure operations. The packet is passed through because
/// stateful methods (like VigNAT's flow manager) parse flow identity
/// themselves; `meter` must receive every instruction and memory access the
/// method performs.
class StatefulEnv {
 public:
  virtual ~StatefulEnv() = default;
  virtual CallOutcome call(std::int64_t method, std::uint64_t arg0,
                           std::uint64_t arg1, const net::Packet& packet,
                           CostMeter& meter) = 0;
};

}  // namespace bolt::ir
