// Fluent construction of IR programs with automatic register allocation
// and label resolution. All NFs in src/nf are written against this API.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"

namespace bolt::ir {

/// Forward-referencing jump label.
struct Label {
  std::int32_t id = -1;
};

class IrBuilder {
 public:
  explicit IrBuilder(std::string program_name);

  // --- registers / constants
  Reg reg();                       ///< fresh register
  Reg imm(std::uint64_t value, std::string comment = "");

  // --- ALU (each returns a fresh destination register)
  Reg add(Reg a, Reg b);
  Reg sub(Reg a, Reg b);
  Reg mul(Reg a, Reg b);
  Reg band(Reg a, Reg b);
  Reg bor(Reg a, Reg b);
  Reg bxor(Reg a, Reg b);
  Reg shl(Reg a, Reg b);
  Reg shr(Reg a, Reg b);
  Reg bnot(Reg a);
  Reg mov(Reg a);
  /// Writes `src` into the *existing* register `dst` (loop-carried state).
  void assign(Reg dst, Reg src);

  // --- comparisons (0/1 results)
  Reg eq(Reg a, Reg b);
  Reg ne(Reg a, Reg b);
  Reg ltu(Reg a, Reg b);
  Reg leu(Reg a, Reg b);
  Reg gtu(Reg a, Reg b);
  Reg geu(Reg a, Reg b);

  // convenience: compare against an immediate
  Reg eq_imm(Reg a, std::uint64_t v);
  Reg ne_imm(Reg a, std::uint64_t v);
  Reg add_imm(Reg a, std::uint64_t v);
  Reg and_imm(Reg a, std::uint64_t v);
  Reg shr_imm(Reg a, unsigned bits);
  Reg shl_imm(Reg a, unsigned bits);

  // --- packet access
  Reg load_pkt(Reg offset, std::uint8_t width, std::string comment = "");
  Reg load_pkt_at(std::uint64_t offset, std::uint8_t width,
                  std::string comment = "");
  void store_pkt(Reg offset, Reg value, std::uint8_t width);
  void store_pkt_at(std::uint64_t offset, Reg value, std::uint8_t width);
  Reg pkt_len();
  Reg pkt_port();
  Reg pkt_time();

  // --- locals / scratch
  std::int32_t local(std::string name = "");  ///< allocate a local slot
  Reg load_local(std::int32_t slot);
  void store_local(std::int32_t slot, Reg value);
  void set_scratch_slots(std::size_t slots);
  Reg load_mem(Reg slot_index);
  void store_mem(Reg slot_index, Reg value);

  // --- stateful calls: returns (v0, v1)
  std::pair<Reg, Reg> call(std::int64_t method, Reg arg0 = kNoReg,
                           Reg arg1 = kNoReg, std::string comment = "");

  // --- control flow
  Label make_label();
  void bind(Label label);
  void br(Reg cond, Label if_true, Label if_false);
  /// Branch where the false edge falls through to the next instruction.
  void br_true(Reg cond, Label if_true);
  /// Branch where the true edge falls through to the next instruction.
  void br_false(Reg cond, Label if_false);
  void jmp(Label target);

  // --- terminals / annotations
  void forward(Reg port);
  void forward_imm(std::uint64_t port);
  void drop();
  /// Tags the current path with a named input class (zero cost).
  void class_tag(const std::string& name);
  /// Marks a loop header (zero cost); symbex counts trips per path.
  std::int64_t loop_head(const std::string& name);
  void loop_head_here(std::int64_t loop_id);

  /// Finalises: resolves labels, validates, and returns the program.
  Program finish();

 private:
  Reg binary(Op op, Reg a, Reg b);
  std::int32_t emit(Instr ins);

  Program program_;
  std::vector<std::int32_t> label_pc_;   // label id -> bound pc, or -1
  // Pending label references, patched at finish():
  std::vector<std::int32_t> pending_t_;  // per instruction: label id for .t
  std::vector<std::int32_t> pending_f_;  // per instruction: label id for .f
  bool finished_ = false;
};

}  // namespace bolt::ir
