// Label interning for concrete execution results.
//
// The execution engines record *ids* while a packet runs — class-tag ids,
// per-method case ids, flat loop indices — and this table is what the ids
// mean: the boundary where a report, a test, or an attribution miss needs
// the actual strings. One RunLabels instance serves one NfRunner (one NF or
// chain); chains get their tag names pre-prefixed ("prog:tag") and their
// loop keys pre-namespaced (prog_index * 1000 + loop), so materialised
// labels are byte-identical to the strings the symbolic executor and the
// legacy string-carrying RunResult produced.
//
// It also interns class *paths*: the sequence of tag tokens and call-case
// tokens a packet takes folds, through a lazily grown transition trie, into
// a single integer. Two packets take the same class path iff they fold to
// the same id, so the monitor's attribution memo is one integer compare
// instead of a string build + compare per packet.
//
// Not thread-safe: one instance per runner, used from that runner's thread
// (the same discipline every per-partition structure in the monitor obeys).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/program.h"

namespace bolt::ir {

struct RunResult;  // ir/interp.h

class RunLabels {
 public:
  /// `programs` is the chain in execution order (one element for a single
  /// NF). Tag names and loop keys are chain-qualified iff the chain has
  /// more than one program, matching symbex::Executor.
  explicit RunLabels(const std::vector<const Program*>& programs);

  // --- class tags (static: defined by the programs) ---
  std::uint32_t num_tags() const {
    return static_cast<std::uint32_t>(tag_names_.size());
  }
  const std::string& tag_name(std::uint32_t tag) const {
    return tag_names_[tag];
  }
  /// First global tag id of chain position `prog`.
  std::uint32_t tag_base(std::size_t prog) const { return tag_base_[prog]; }

  // --- loops (static) ---
  std::size_t loop_count() const { return loop_keys_.size(); }
  /// Chain-namespaced loop key of flat loop index `flat`
  /// (prog_index * 1000 + loop id; the raw loop id for single programs).
  std::int64_t loop_key(std::size_t flat) const { return loop_keys_[flat]; }
  const std::string& loop_name(std::size_t flat) const {
    return loop_names_[flat];
  }
  std::uint32_t loop_base(std::size_t prog) const { return loop_base_[prog]; }

  // --- call cases (discovered as execution observes them) ---
  /// Interns `label` as a case of `method`; returns the per-method case id.
  /// Execution order is deterministic, so two engines fed the same traffic
  /// assign identical ids. `label` may be null (treated as "").
  std::uint32_t intern_case(std::int64_t method, const char* label);
  const std::string& case_name(std::int64_t method, std::uint32_t case_id) const;
  /// The path-trie token for a (method, case) pair.
  std::uint32_t case_token(std::int64_t method, std::uint32_t case_id) const;

  // --- class paths ---
  /// Folds the result's tag sequence and call-case sequence into one path
  /// id (state of the transition trie). Ids are stable within this
  /// instance; the root (empty path) is 0.
  std::uint32_t path_of(const RunResult& result);

  /// Trie transition: the state reached from `state` on `token` (a tag id
  /// or a case_token). Grows the trie on first traversal.
  std::uint32_t advance(std::uint32_t state, std::uint32_t token);

 private:
  std::uint32_t new_token();

  std::vector<std::string> tag_names_;
  std::vector<std::uint32_t> tag_base_;
  std::vector<std::int64_t> loop_keys_;
  std::vector<std::string> loop_names_;
  std::vector<std::uint32_t> loop_base_;

  struct CaseTable {
    std::int64_t method = 0;
    std::vector<std::string> names;    ///< case_id -> label
    std::vector<std::uint32_t> tokens; ///< case_id -> trie token
  };
  std::vector<CaseTable> cases_;  ///< few methods; linear scan by id

  // Transition trie: row per state, one slot per token. Slot 0 in a row
  // means "no transition yet" (no edge ever returns to the root, so state
  // id 0 doubles as the sentinel).
  std::uint32_t width_ = 0;       ///< tokens currently representable
  std::uint32_t num_tokens_ = 0;  ///< tokens actually allocated
  std::vector<std::uint32_t> trie_;  ///< (num_states) x width_
};

}  // namespace bolt::ir
