// Cost metering interfaces shared by the interpreter and the stateful
// data-structure library.
//
// Real BOLT instruments replayed executions with Intel Pin, logging every
// x86 instruction and memory address. Here, the interpreter logs stateless
// IR instructions itself, and dslib implementations *meter* their own work
// through `CostMeter` (they are the "pre-analysed" code whose cost the
// manual contracts describe). Hardware models subscribe to the combined
// stream through `TraceSink`.
#pragma once

#include <cstdint>

#include "ir/program.h"

namespace bolt::ir {

/// Synthetic address-space bases. Packet buffers and NF locals live at fixed
/// virtual addresses (a run-to-completion NF reuses the same mbuf), and each
/// dslib object gets a deterministic arena so cache simulations are
/// reproducible run-to-run.
inline constexpr std::uint64_t kPacketBase = 0x1000'0000ULL;
inline constexpr std::uint64_t kMbufBase = 0x0f00'0000ULL;  // rx/tx metadata
inline constexpr std::uint64_t kLocalsBase = 0x2000'0000ULL;
inline constexpr std::uint64_t kScratchBase = 0x3000'0000ULL;
inline constexpr std::uint64_t kArenaBase = 0x4000'0000ULL;
inline constexpr std::uint64_t kArenaStride = 0x0100'0000ULL;  // 16 MiB each

class ConservativeCycleMeter;  // ir/cycle_meter.h

/// Receives the low-level event stream of one execution; implemented by the
/// hardware models (conservative and realistic).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// A stateless IR instruction executed.
  virtual void on_instruction(Op op) = 0;
  /// `n` generic (metered, data-structure-internal) instructions executed.
  virtual void on_metered_instructions(std::uint64_t n) = 0;
  /// A memory access. `dependent` marks loads whose address derives from a
  /// previous load (pointer chases) — such misses cannot be overlapped by
  /// memory-level parallelism, which the realistic model cares about.
  virtual void on_access(std::uint64_t addr, std::uint32_t size, bool is_write,
                         bool dependent) = 0;
  /// Devirtualization escape hatch for the decoded interpreter: a sink
  /// whose cycle accounting is exactly the conservative meter's (order-
  /// independent per-op sums + in-order must-hit access stream) returns its
  /// meter here and the decoded engine drives it inline, bypassing the
  /// three virtual calls per instruction. Sinks with richer semantics
  /// (e.g. hw::RealisticSim's event-order-sensitive prefetch model) return
  /// nullptr and keep the exact event stream via the reference interpreter.
  virtual ConservativeCycleMeter* fast_meter() { return nullptr; }
};

/// Accumulates instruction and memory-access counts; forwards to an optional
/// TraceSink. Passed into every dslib method so the structures can report
/// the work they actually performed.
class CostMeter {
 public:
  explicit CostMeter(TraceSink* sink = nullptr) : sink_(sink) {}

  void metered_instructions(std::uint64_t n) {
    instructions_ += n;
    if (sink_ != nullptr) sink_->on_metered_instructions(n);
  }

  void stateless_instruction(Op op) {
    ++instructions_;
    ++stateless_instructions_;
    if (sink_ != nullptr) sink_->on_instruction(op);
  }

  void mem_read(std::uint64_t addr, std::uint32_t size, bool dependent = false) {
    ++accesses_;
    if (sink_ != nullptr) sink_->on_access(addr, size, false, dependent);
  }

  void mem_write(std::uint64_t addr, std::uint32_t size) {
    ++accesses_;
    if (sink_ != nullptr) sink_->on_access(addr, size, true, false);
  }

  void stateless_mem_read(std::uint64_t addr, std::uint32_t size,
                          bool dependent = false) {
    ++stateless_accesses_;
    mem_read(addr, size, dependent);
  }

  void stateless_mem_write(std::uint64_t addr, std::uint32_t size) {
    ++stateless_accesses_;
    mem_write(addr, size);
  }

  std::uint64_t instructions() const { return instructions_; }
  std::uint64_t accesses() const { return accesses_; }
  std::uint64_t stateless_instructions() const { return stateless_instructions_; }
  std::uint64_t stateless_accesses() const { return stateless_accesses_; }

  void reset() {
    instructions_ = accesses_ = 0;
    stateless_instructions_ = stateless_accesses_ = 0;
  }

  TraceSink* sink() const { return sink_; }

 private:
  TraceSink* sink_ = nullptr;
  std::uint64_t instructions_ = 0;
  std::uint64_t accesses_ = 0;
  std::uint64_t stateless_instructions_ = 0;
  std::uint64_t stateless_accesses_ = 0;
};

/// Deterministic arena-address allocator for dslib objects.
///
/// The counter is thread-local (parallel pipelines construct dslib objects
/// concurrently) and NF-instance factories reset it to a fixed per-NF-kind
/// *bank*, so a given NF always occupies the same address space no matter
/// which worker built it, while instances of *different* kinds stay
/// disjoint when composed into one simulated address space (e.g. a future
/// stateful chain). Two live instances of the same kind do overlap — give
/// the second one its own bank if that composition ever arises.
class ArenaAllocator {
 public:
  /// Returns the base address for the next arena (16 MiB apart).
  static std::uint64_t next_base();
  /// Resets numbering to the start of `bank` (banks are 8 arenas wide).
  static void reset(std::uint64_t bank = 0);
};

}  // namespace bolt::ir
