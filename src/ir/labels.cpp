#include "ir/labels.h"

#include "ir/interp.h"
#include "support/assert.h"

namespace bolt::ir {

RunLabels::RunLabels(const std::vector<const Program*>& programs) {
  BOLT_CHECK(!programs.empty(), "RunLabels needs at least one program");
  const bool chain = programs.size() > 1;
  for (std::size_t p = 0; p < programs.size(); ++p) {
    const Program& prog = *programs[p];
    tag_base_.push_back(static_cast<std::uint32_t>(tag_names_.size()));
    for (const std::string& tag : prog.class_tags) {
      tag_names_.push_back(chain ? prog.name + ":" + tag : tag);
    }
    loop_base_.push_back(static_cast<std::uint32_t>(loop_keys_.size()));
    for (std::size_t l = 0; l < prog.loops.size(); ++l) {
      loop_keys_.push_back(static_cast<std::int64_t>(p) * 1000 +
                           static_cast<std::int64_t>(l));
      loop_names_.push_back(prog.loops[l]);
    }
  }
  // Tag tokens are the tag ids themselves; case tokens allocate above them.
  num_tokens_ = static_cast<std::uint32_t>(tag_names_.size());
  width_ = num_tokens_ + 8;  // headroom so early case tokens avoid a regrow
  trie_.assign(width_, 0);   // state 0 = root
}

std::uint32_t RunLabels::new_token() {
  const std::uint32_t token = num_tokens_++;
  if (token >= width_) {
    // Widen every state's row. States keep their numbering; only the row
    // stride changes. Rare: happens when a method reveals more distinct
    // cases than the current headroom.
    const std::uint32_t new_width = width_ * 2 + 8;
    const std::size_t states = trie_.size() / width_;
    std::vector<std::uint32_t> wider(states * new_width, 0);
    for (std::size_t s = 0; s < states; ++s) {
      for (std::uint32_t t = 0; t < width_; ++t) {
        wider[s * new_width + t] = trie_[s * width_ + t];
      }
    }
    trie_ = std::move(wider);
    width_ = new_width;
  }
  return token;
}

std::uint32_t RunLabels::intern_case(std::int64_t method, const char* label) {
  if (label == nullptr) label = "";
  CaseTable* table = nullptr;
  for (CaseTable& t : cases_) {
    if (t.method == method) {
      table = &t;
      break;
    }
  }
  if (table == nullptr) {
    cases_.emplace_back();
    table = &cases_.back();
    table->method = method;
  }
  for (std::size_t i = 0; i < table->names.size(); ++i) {
    if (table->names[i] == label) return static_cast<std::uint32_t>(i);
  }
  table->names.emplace_back(label);
  table->tokens.push_back(new_token());
  return static_cast<std::uint32_t>(table->names.size() - 1);
}

const std::string& RunLabels::case_name(std::int64_t method,
                                        std::uint32_t case_id) const {
  for (const CaseTable& t : cases_) {
    if (t.method == method) {
      BOLT_CHECK(case_id < t.names.size(), "case id out of range");
      return t.names[case_id];
    }
  }
  BOLT_CHECK(false, "case_name: unknown method");
  static const std::string kEmpty;
  return kEmpty;
}

std::uint32_t RunLabels::case_token(std::int64_t method,
                                    std::uint32_t case_id) const {
  for (const CaseTable& t : cases_) {
    if (t.method == method) {
      BOLT_CHECK(case_id < t.tokens.size(), "case id out of range");
      return t.tokens[case_id];
    }
  }
  BOLT_CHECK(false, "case_token: unknown method");
  return 0;
}

std::uint32_t RunLabels::advance(std::uint32_t state, std::uint32_t token) {
  BOLT_CHECK(token < num_tokens_, "path token out of range");
  std::uint32_t& slot = trie_[static_cast<std::size_t>(state) * width_ + token];
  if (slot == 0) {
    const std::uint32_t next =
        static_cast<std::uint32_t>(trie_.size() / width_);
    trie_.resize(trie_.size() + width_, 0);
    // resize can reallocate; re-derive the slot reference.
    trie_[static_cast<std::size_t>(state) * width_ + token] = next;
    return next;
  }
  return slot;
}

std::uint32_t RunLabels::path_of(const RunResult& result) {
  std::uint32_t state = 0;
  for (const std::uint32_t tag : result.class_tags) {
    state = advance(state, tag);
  }
  for (const CallRec& call : result.calls) {
    state = advance(state, call.token);
  }
  return state;
}

}  // namespace bolt::ir
