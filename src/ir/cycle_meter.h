// Inline conservative-cycle meter — the devirtualized core of the
// conservative hardware model.
//
// The contract-grade cycle metric is a pure function of (a) how many
// instructions ran, weighted by worst-case per-op costs, and (b) the
// per-packet must-hit L1D analysis over the access stream, in order.
// hw::ConservativeModel exposes exactly that arithmetic behind the virtual
// TraceSink interface; the decoded interpreter instead drives this meter
// directly (TraceSink::fast_meter() hands it over), so the hot loop pays an
// inline cache probe per access and a single add per instruction batch
// rather than three virtual calls per instruction.
//
// Instruction cycles are order-independent sums, so they may be batched;
// access costs depend on L1 state and MUST be issued in execution order.
// hw::ConservativeModel delegates to this meter, so both paths share one
// implementation and cannot drift apart.
#pragma once

#include <cstdint>

#include "support/cache.h"

namespace bolt::ir {

class ConservativeCycleMeter {
 public:
  /// Worst-case per-instruction costs; mirrors the conservative fields of
  /// hw::CycleCosts (which constructs this meter from them).
  struct Costs {
    std::uint64_t alu = 2;    ///< worst-case cycles per instruction
    std::uint64_t mul = 5;    ///< imul worst case
    std::uint64_t l1 = 4;     ///< proven-L1 access
    std::uint64_t dram = 200; ///< any unproven access
  };

  explicit ConservativeCycleMeter(const Costs& costs)
      : costs_(costs), l1_(32 * 1024, 8) {}

  /// The contract may assume nothing about state left by earlier packets:
  /// the must-hit analysis starts cold every packet.
  void begin_packet() {
    l1_.clear();
    packet_start_ = cycles_;
  }

  void add_cycles(std::uint64_t n) { cycles_ += n; }

  /// One memory access: per touched line, L1 cost if this packet provably
  /// keeps the line resident (LRU simulation), DRAM cost otherwise.
  void access(std::uint64_t addr, std::uint32_t size) {
    const std::uint64_t first = support::line_of(addr);
    const std::uint64_t last =
        support::line_of(addr + (size == 0 ? 0 : size - 1));
    for (std::uint64_t line = first; line <= last; ++line) {
      cycles_ += l1_.access(line) ? costs_.l1 : costs_.dram;
    }
  }

  std::uint64_t total_cycles() const { return cycles_; }
  std::uint64_t packet_cycles() const { return cycles_ - packet_start_; }
  const Costs& costs() const { return costs_; }

 private:
  Costs costs_;
  support::Cache l1_;  ///< must-hit analysis state, cleared per packet
  std::uint64_t cycles_ = 0;
  std::uint64_t packet_start_ = 0;
};

}  // namespace bolt::ir
