// Concrete IR execution — the reproduction's replay + instrumentation
// engine (the role Intel Pin plays in the paper, §3.5).
//
// Two engines execute the same programs and produce the same RunResult:
//
//  * Interpreter — the reference oracle: a per-instruction switch over the
//    undecoded Instr vector that streams every event (instruction, memory
//    access, load-taint "dependent" flags) to an arbitrary TraceSink. Every
//    other engine is validated against it (tests/test_decoded.cpp).
//
//  * DecodedInterpreter (ir/decoded.h) — the hot-path engine: executes a
//    pre-decoded, superinstruction-fused form of the program via
//    direct-threaded dispatch, with cost accounting folded into per-opcode
//    tables. Byte-identical results, several times faster.
//
// Results carry interned ids (class-tag ids, per-method case ids, flat loop
// indices) instead of strings; RunLabels materialises names only at report
// boundaries.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/cost.h"
#include "ir/labels.h"
#include "ir/program.h"
#include "ir/stateful.h"
#include "net/packet.h"
#include "perf/pcv.h"

namespace bolt::ir {

/// A stateful call observed during one packet's execution. Trivially
/// copyable: the case label lives in RunLabels as (method, case_id), and
/// `token` is the label table's path-trie token for that pair (so class-
/// path folding needs no per-call lookup).
struct CallRec {
  std::int64_t method = 0;
  std::uint32_t case_id = 0;
  std::uint32_t token = 0;

  bool operator==(const CallRec& o) const {
    return method == o.method && case_id == o.case_id && token == o.token;
  }
};

/// Everything an engine observed while processing one packet.
///
/// Hot-loop friendly: every container is reusable (clear() keeps capacity),
/// tags/cases are small ids, and loop trips are a dense vector indexed by
/// the chain-flat loop index. String views of any of it go through
/// `labels`, which the engine that produced the result points here.
struct RunResult {
  net::NfVerdict verdict = net::NfVerdict::kDrop;
  std::uint64_t out_port = 0;

  std::uint64_t instructions = 0;       ///< total IC (stateless + metered)
  std::uint64_t mem_accesses = 0;       ///< total MA
  std::uint64_t stateless_instructions = 0;
  std::uint64_t stateless_accesses = 0;

  /// PCVs induced by this packet (per-PCV max across the packet's calls).
  perf::PcvBinding pcvs;
  std::vector<CallRec> calls;
  std::vector<std::uint32_t> class_tags;  ///< kClassTag hits: label tag ids
  /// Header visits per loop, indexed by flat loop index (see
  /// RunLabels::loop_key for the chain-namespaced key of each slot).
  std::vector<std::uint64_t> loop_trips;
  /// The label table of the engine/runner that produced this result (owned
  /// there; valid while that engine lives).
  const RunLabels* labels = nullptr;

  /// Joined class tags, e.g. "ipv4/flow_hit" — the path's input-class label.
  std::string class_label() const;

  /// Tag names in hit order (chain-prefixed), as the legacy string-carrying
  /// result stored them. Boundary/diagnostic use.
  std::vector<std::string> class_tag_names() const;

  /// Case label of one recorded call.
  const std::string& case_label_of(const CallRec& call) const;

  /// Loop trips as the legacy chain-namespaced map (visited loops only —
  /// zero-trip slots are omitted, matching what a map accumulated).
  std::map<std::int64_t, std::uint64_t> loop_trips_map() const;

  /// Resets to the default state while keeping container capacity, so a
  /// caller streaming millions of packets can reuse one RunResult instead
  /// of reallocating per packet (the monitor's hot loop does).
  void clear();
};

/// Which execution engine a runner should build. The reference interpreter
/// remains the oracle; consumers that need the exact per-event trace (e.g.
/// hw::RealisticSim) are routed to it automatically regardless of this
/// knob, because only sinks exposing a fast_meter() can be driven by the
/// decoded engine without changing semantics.
enum class EngineKind : std::uint8_t {
  kDecoded = 0,   ///< pre-decoded direct-threaded engine (default)
  kReference = 1, ///< per-instruction switch over the undecoded program
};

struct InterpreterOptions {
  std::uint64_t max_steps = 50'000'000;  ///< hard stop for runaway programs
  TraceSink* sink = nullptr;             ///< optional hardware-model consumer
  /// Engine selection for NfRunner (ignored by a directly constructed
  /// Interpreter, which is always the reference engine).
  EngineKind engine = EngineKind::kDecoded;
  /// Initial scratch-memory image (configuration, e.g. the P1/P2/P3 list
  /// layouts). Must match what the symbolic executor analysed.
  std::vector<std::uint64_t> scratch_init;
  /// Per-packet framing cost of the packet-I/O framework (our DPDK+driver
  /// substitute): added to the counters for rx and for tx/drop respectively.
  std::uint64_t rx_instructions = 0, rx_accesses = 0;
  std::uint64_t tx_instructions = 0, tx_accesses = 0;
  std::uint64_t drop_instructions = 0, drop_accesses = 0;
};

/// Where an engine sits inside a chain: the shared label table plus this
/// program's tag/loop offsets. Default-constructed = standalone single
/// program (the engine creates and owns a private RunLabels).
struct LabelBinding {
  RunLabels* labels = nullptr;
  std::uint32_t tag_base = 0;
  std::uint32_t loop_base = 0;
};

/// Common surface of the two engines, so NfRunner can hold either.
class PacketEngine {
 public:
  virtual ~PacketEngine() = default;

  /// Clears `result` (keeping capacity) and runs the program to completion
  /// on `packet` (which may be mutated by kStorePkt, e.g. NAT rewriting).
  virtual void run_into(net::Packet& packet, RunResult& result) = 0;

  /// NF-local scratch memory (persists across packets); exposed so
  /// microbenchmark programs (P1/P2/P3) can be pre-initialised.
  virtual std::vector<std::uint64_t>& scratch() = 0;

  /// The engine's label table (shared across a chain).
  virtual RunLabels& labels() = 0;
};

/// The reference interpreter (oracle).
class Interpreter final : public PacketEngine {
 public:
  /// `env` may be null only for programs with no kCall instructions.
  Interpreter(const Program& program, StatefulEnv* env,
              InterpreterOptions options = {}, LabelBinding binding = {});

  /// Runs the program to completion on `packet`; thin wrapper over
  /// run_into.
  RunResult run(net::Packet& packet);

  void run_into(net::Packet& packet, RunResult& result) override;
  std::vector<std::uint64_t>& scratch() override { return scratch_; }
  RunLabels& labels() override { return *labels_; }

 private:
  const Program& program_;
  StatefulEnv* env_;
  InterpreterOptions options_;
  std::shared_ptr<RunLabels> owned_labels_;  ///< when standalone
  RunLabels* labels_;
  std::uint32_t tag_base_ = 0;
  std::uint32_t loop_base_ = 0;
  std::vector<std::uint64_t> regs_;
  std::vector<std::uint64_t> locals_;
  std::vector<std::uint64_t> scratch_;
  std::vector<bool> from_load_;  ///< per-register load taint, reused per run
  /// Per-call-site case memo: repeat labels resolve by pointer identity.
  struct SiteMemo {
    const char* ptr = nullptr;
    std::uint32_t case_id = 0;
    std::uint32_t token = 0;
  };
  std::vector<SiteMemo> site_memo_;  ///< indexed by pc of the kCall
};

}  // namespace bolt::ir
