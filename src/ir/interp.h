// Concrete IR interpreter — the reproduction's replay + instrumentation
// engine (the role Intel Pin plays in the paper, §3.5).
//
// Executes a Program against a packet and a StatefulEnv, counting every
// instruction and memory access, optionally streaming the low-level trace
// to a hardware model via TraceSink.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/cost.h"
#include "ir/program.h"
#include "ir/stateful.h"
#include "net/packet.h"
#include "perf/pcv.h"

namespace bolt::ir {

/// A stateful call observed during one packet's execution.
struct CallSite {
  std::int64_t method = 0;
  std::string case_label;
  perf::PcvBinding pcvs;
};

/// Everything the interpreter observed while processing one packet.
struct RunResult {
  net::NfVerdict verdict = net::NfVerdict::kDrop;
  std::uint64_t out_port = 0;

  std::uint64_t instructions = 0;       ///< total IC (stateless + metered)
  std::uint64_t mem_accesses = 0;       ///< total MA
  std::uint64_t stateless_instructions = 0;
  std::uint64_t stateless_accesses = 0;

  /// PCVs induced by this packet (per-PCV max across the packet's calls).
  perf::PcvBinding pcvs;
  std::vector<CallSite> calls;
  std::vector<std::string> class_tags;  ///< names of kClassTag hits, in order
  std::map<std::int64_t, std::uint64_t> loop_trips;  ///< loop id -> header visits

  /// Joined class tags, e.g. "ipv4/flow_hit" — the path's input-class label.
  std::string class_label() const;

  /// Resets to the default state while keeping container capacity, so a
  /// caller streaming millions of packets can reuse one RunResult instead
  /// of reallocating its vectors per packet (the monitor's hot loop does).
  void clear();
};

struct InterpreterOptions {
  std::uint64_t max_steps = 50'000'000;  ///< hard stop for runaway programs
  TraceSink* sink = nullptr;             ///< optional hardware-model consumer
  /// Initial scratch-memory image (configuration, e.g. the P1/P2/P3 list
  /// layouts). Must match what the symbolic executor analysed.
  std::vector<std::uint64_t> scratch_init;
  /// Per-packet framing cost of the packet-I/O framework (our DPDK+driver
  /// substitute): added to the counters for rx and for tx/drop respectively.
  std::uint64_t rx_instructions = 0, rx_accesses = 0;
  std::uint64_t tx_instructions = 0, tx_accesses = 0;
  std::uint64_t drop_instructions = 0, drop_accesses = 0;
};

class Interpreter {
 public:
  /// `env` may be null only for programs with no kCall instructions.
  Interpreter(const Program& program, StatefulEnv* env,
              InterpreterOptions options = {});

  /// Runs the program to completion on `packet` (which may be mutated by
  /// kStorePkt, e.g. NAT header rewriting).
  RunResult run(net::Packet& packet);

  /// Allocation-reusing variant: clears `result` (keeping capacity) and
  /// runs into it. `run` is a thin wrapper over this.
  void run_into(net::Packet& packet, RunResult& result);

  /// NF-local scratch memory (persists across packets); exposed so
  /// microbenchmark programs (P1/P2/P3) can be pre-initialised.
  std::vector<std::uint64_t>& scratch() { return scratch_; }

 private:
  const Program& program_;
  StatefulEnv* env_;
  InterpreterOptions options_;
  std::vector<std::uint64_t> regs_;
  std::vector<std::uint64_t> locals_;
  std::vector<std::uint64_t> scratch_;
  std::vector<bool> from_load_;  ///< per-register load taint, reused per run
};

}  // namespace bolt::ir
