#include "ir/program.h"

#include "support/assert.h"

namespace bolt::ir {

const char* op_name(Op op) {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kNot: return "not";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLtU: return "ltu";
    case Op::kLeU: return "leu";
    case Op::kGtU: return "gtu";
    case Op::kGeU: return "geu";
    case Op::kLoadPkt: return "loadpkt";
    case Op::kStorePkt: return "storepkt";
    case Op::kPktLen: return "pktlen";
    case Op::kPktPort: return "pktport";
    case Op::kPktTime: return "pkttime";
    case Op::kLoadLocal: return "loadloc";
    case Op::kStoreLocal: return "storeloc";
    case Op::kLoadMem: return "loadmem";
    case Op::kStoreMem: return "storemem";
    case Op::kCall: return "call";
    case Op::kBr: return "br";
    case Op::kJmp: return "jmp";
    case Op::kForward: return "forward";
    case Op::kDrop: return "drop";
    case Op::kClassTag: return "classtag";
    case Op::kLoopHead: return "loophead";
  }
  return "?";
}

void Program::validate() const {
  auto check_reg = [&](Reg r, bool allow_none) {
    if (r == kNoReg) {
      BOLT_CHECK(allow_none, name + ": missing required register operand");
      return;
    }
    BOLT_CHECK(r >= 0 && r < num_regs, name + ": register out of range");
  };
  auto check_target = [&](std::int32_t target) {
    BOLT_CHECK(target >= 0 && target < static_cast<std::int32_t>(code.size()),
               name + ": branch target out of range");
  };

  BOLT_CHECK(!code.empty(), name + ": empty program");
  for (const Instr& ins : code) {
    switch (ins.op) {
      case Op::kConst:
        check_reg(ins.dst, false);
        break;
      case Op::kMov:
      case Op::kNot:
        check_reg(ins.dst, false);
        check_reg(ins.a, false);
        break;
      case Op::kAdd: case Op::kSub: case Op::kMul:
      case Op::kAnd: case Op::kOr: case Op::kXor:
      case Op::kShl: case Op::kShr:
      case Op::kEq: case Op::kNe:
      case Op::kLtU: case Op::kLeU: case Op::kGtU: case Op::kGeU:
        check_reg(ins.dst, false);
        check_reg(ins.a, false);
        check_reg(ins.b, false);
        break;
      case Op::kLoadPkt:
        check_reg(ins.dst, false);
        check_reg(ins.a, false);
        BOLT_CHECK(ins.width == 1 || ins.width == 2 || ins.width == 4 ||
                       ins.width == 6 || ins.width == 8,
                   name + ": bad packet load width");
        break;
      case Op::kStorePkt:
        check_reg(ins.a, false);
        check_reg(ins.b, false);
        BOLT_CHECK(ins.width == 1 || ins.width == 2 || ins.width == 4 ||
                       ins.width == 6 || ins.width == 8,
                   name + ": bad packet store width");
        break;
      case Op::kPktLen: case Op::kPktPort: case Op::kPktTime:
        check_reg(ins.dst, false);
        break;
      case Op::kLoadLocal:
        check_reg(ins.dst, false);
        BOLT_CHECK(ins.imm >= 0 && ins.imm < num_locals,
                   name + ": local index out of range");
        break;
      case Op::kStoreLocal:
        check_reg(ins.a, false);
        BOLT_CHECK(ins.imm >= 0 && ins.imm < num_locals,
                   name + ": local index out of range");
        break;
      case Op::kLoadMem:
        check_reg(ins.dst, false);
        check_reg(ins.a, false);
        break;
      case Op::kStoreMem:
        check_reg(ins.a, false);
        check_reg(ins.b, false);
        break;
      case Op::kCall:
        check_reg(ins.dst, true);
        check_reg(ins.dst2, true);
        check_reg(ins.a, true);
        check_reg(ins.b, true);
        break;
      case Op::kBr:
        check_reg(ins.a, false);
        check_target(ins.t);
        check_target(ins.f);
        break;
      case Op::kJmp:
        check_target(ins.t);
        break;
      case Op::kForward:
        check_reg(ins.a, false);
        break;
      case Op::kDrop:
        break;
      case Op::kClassTag:
        BOLT_CHECK(ins.imm >= 0 &&
                       ins.imm < static_cast<std::int64_t>(class_tags.size()),
                   name + ": class tag out of range");
        break;
      case Op::kLoopHead:
        BOLT_CHECK(ins.imm >= 0 && ins.imm < static_cast<std::int64_t>(loops.size()),
                   name + ": loop id out of range");
        break;
    }
  }
}

std::string Program::disassemble() const {
  std::string out = "program " + name + " (regs=" + std::to_string(num_regs) +
                    ", locals=" + std::to_string(num_locals) + ")\n";
  for (std::size_t i = 0; i < code.size(); ++i) {
    const Instr& ins = code[i];
    out += "  " + std::to_string(i) + ": " + op_name(ins.op);
    if (ins.dst != kNoReg) out += " r" + std::to_string(ins.dst);
    if (ins.dst2 != kNoReg) out += ", r" + std::to_string(ins.dst2);
    if (ins.a != kNoReg) out += " <- r" + std::to_string(ins.a);
    if (ins.b != kNoReg) out += ", r" + std::to_string(ins.b);
    if (ins.op == Op::kConst || ins.op == Op::kCall ||
        ins.op == Op::kLoadLocal || ins.op == Op::kStoreLocal ||
        ins.op == Op::kClassTag || ins.op == Op::kLoopHead) {
      out += " imm=" + std::to_string(ins.imm);
    }
    if (ins.op == Op::kBr) {
      out += " ? " + std::to_string(ins.t) + " : " + std::to_string(ins.f);
    }
    if (ins.op == Op::kJmp) out += " -> " + std::to_string(ins.t);
    if (ins.width != 0) out += " w" + std::to_string(ins.width);
    if (!ins.comment.empty()) out += "   ; " + ins.comment;
    out += '\n';
  }
  return out;
}

}  // namespace bolt::ir
