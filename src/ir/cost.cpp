#include "ir/cost.h"

namespace bolt::ir {
namespace {
// Thread-local: parallel pipelines (scenario sweeps, per-path replays)
// construct dslib objects concurrently, and a shared counter would both
// race and hand out scheduling-dependent addresses. See the class comment
// in cost.h for the banking scheme.
thread_local std::uint64_t t_next_arena = 0;
constexpr std::uint64_t kArenasPerBank = 8;
}  // namespace

std::uint64_t ArenaAllocator::next_base() {
  return kArenaBase + (t_next_arena++) * kArenaStride;
}

void ArenaAllocator::reset(std::uint64_t bank) {
  t_next_arena = bank * kArenasPerBank;
}

}  // namespace bolt::ir
