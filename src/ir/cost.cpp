#include "ir/cost.h"

namespace bolt::ir {
namespace {
std::uint64_t g_next_arena = 0;
}  // namespace

std::uint64_t ArenaAllocator::next_base() {
  return kArenaBase + (g_next_arena++) * kArenaStride;
}

void ArenaAllocator::reset() { g_next_arena = 0; }

}  // namespace bolt::ir
