#include "ir/decoded.h"

#include <algorithm>

#include "ir/cycle_meter.h"
#include "support/assert.h"

// Direct threading needs GNU computed goto; everything else falls back to
// a dense switch over the same handler bodies (see BOLT_OP below).
#if defined(__GNUC__) && !defined(BOLT_NO_COMPUTED_GOTO)
#define BOLT_DIRECT_THREADED 1
#endif

namespace bolt::ir {

namespace {

constexpr const char* kDOpNames[kNumDOps] = {
    "const", "mov",
    "add", "sub", "mul", "and", "or", "xor", "shl", "shr", "not",
    "eq", "ne", "ltu", "leu", "gtu", "geu",
    "loadpkt", "storepkt", "pktlen", "pktport", "pkttime",
    "loadlocal", "storelocal", "loadmem", "storemem",
    "call", "br", "jmp", "forward", "drop", "classtag", "loophead",
    "addi", "subi", "muli", "andi", "ori", "xori", "shli", "shri",
    "eqi", "nei", "ltui", "leui", "gtui", "geui",
    "eq.br", "ne.br", "ltu.br", "leu.br", "gtu.br", "geu.br",
    "eqi.br", "nei.br", "ltui.br", "leui.br", "gtui.br", "geui.br",
    "loadpkt.i", "storepkt.i", "forward.i", "loadpkt.mask.i",
};

/// Distance of a comparison op from kEq, or -1 if not a comparison.
int cmp_index(Op op) {
  const int i = static_cast<int>(op) - static_cast<int>(Op::kEq);
  return (i >= 0 && i <= 5) ? i : -1;
}

DOp offset_dop(DOp base, int index) {
  return static_cast<DOp>(static_cast<int>(base) + index);
}

/// const+ALU fusion target for binary ops whose b operand is the const,
/// or DOp-count (invalid) if the op has no immediate form.
DOp alu_imm_dop(Op op) {
  switch (op) {
    case Op::kAdd: return DOp::kAddI;
    case Op::kSub: return DOp::kSubI;
    case Op::kMul: return DOp::kMulI;
    case Op::kAnd: return DOp::kAndI;
    case Op::kOr:  return DOp::kOrI;
    case Op::kXor: return DOp::kXorI;
    case Op::kShl: return DOp::kShlI;
    case Op::kShr: return DOp::kShrI;
    case Op::kEq:  return DOp::kEqI;
    case Op::kNe:  return DOp::kNeI;
    case Op::kLtU: return DOp::kLtUI;
    case Op::kLeU: return DOp::kLeUI;
    case Op::kGtU: return DOp::kGtUI;
    case Op::kGeU: return DOp::kGeUI;
    default: return static_cast<DOp>(kNumDOps);
  }
}

bool has_branch_targets(DOp op) {
  if (op == DOp::kBr || op == DOp::kJmp) return true;
  const int i = static_cast<int>(op);
  return i >= static_cast<int>(DOp::kEqBr) &&
         i <= static_cast<int>(DOp::kGeUIBr);
}

}  // namespace

const char* dop_name(DOp op) {
  return kDOpNames[static_cast<std::size_t>(op)];
}

DecodedProgram DecodedProgram::decode(const Program& program) {
  program.validate();
  const std::vector<Instr>& code = program.code;
  const std::size_t n = code.size();

  // In-degree analysis: an instruction that is a branch target must start
  // its own record (a jump into the middle of a superinstruction would
  // skip the fused members before it).
  std::vector<char> targeted(n, 0);
  for (const Instr& ins : code) {
    if (ins.t >= 0) targeted[static_cast<std::size_t>(ins.t)] = 1;
    if (ins.f >= 0) targeted[static_cast<std::size_t>(ins.f)] = 1;
  }
  const auto fusable = [&](std::size_t k) { return k < n && !targeted[k]; };

  DecodedProgram out;
  out.code.reserve(n);
  std::vector<std::uint32_t> orig2dec(n, 0);

  std::size_t pc = 0;
  while (pc < n) {
    orig2dec[pc] = static_cast<std::uint32_t>(out.code.size());
    const Instr& i0 = code[pc];
    DInstr d{};
    d.width = i0.width;
    std::size_t len = 1;

    // Longest pattern first. Every fused record replays member register
    // writes in original order, so only kLoadPktMaskI (which caches the
    // loaded value across the mask const) needs an aliasing constraint.
    if (i0.op == Op::kConst && fusable(pc + 1) && fusable(pc + 2) &&
        fusable(pc + 3) && code[pc + 1].op == Op::kLoadPkt &&
        code[pc + 1].a == i0.dst && code[pc + 2].op == Op::kConst &&
        code[pc + 3].op == Op::kAnd && code[pc + 3].a == code[pc + 1].dst &&
        code[pc + 3].b == code[pc + 2].dst &&
        code[pc + 1].dst != code[pc + 2].dst) {
      // const off; loadpkt; const mask; and — the header-field idiom.
      d.op = DOp::kLoadPktMaskI;
      d.a = i0.dst;                // off register
      d.imm = i0.imm;              // offset
      d.dst = code[pc + 1].dst;    // loaded value
      d.width = code[pc + 1].width;
      d.b = code[pc + 2].dst;      // mask register
      d.imm2 = code[pc + 2].imm;   // mask
      d.dst2 = code[pc + 3].dst;   // masked field
      d.n_instr = 4;
      len = 4;
    } else if (i0.op == Op::kConst && fusable(pc + 1) && fusable(pc + 2) &&
               cmp_index(code[pc + 1].op) >= 0 && code[pc + 1].b == i0.dst &&
               code[pc + 2].op == Op::kBr &&
               code[pc + 2].a == code[pc + 1].dst) {
      // const; cmp; br — the guard idiom.
      d.op = offset_dop(DOp::kEqIBr, cmp_index(code[pc + 1].op));
      d.dst2 = i0.dst;
      d.imm = i0.imm;
      d.dst = code[pc + 1].dst;
      d.a = code[pc + 1].a;
      d.t = static_cast<std::uint32_t>(code[pc + 2].t);
      d.f = static_cast<std::uint32_t>(code[pc + 2].f);
      d.n_instr = 3;
      len = 3;
    } else if (i0.op == Op::kConst && fusable(pc + 1) &&
               alu_imm_dop(code[pc + 1].op) != static_cast<DOp>(kNumDOps) &&
               code[pc + 1].b == i0.dst) {
      d.op = alu_imm_dop(code[pc + 1].op);
      d.dst2 = i0.dst;
      d.imm = i0.imm;
      d.dst = code[pc + 1].dst;
      d.a = code[pc + 1].a;
      d.n_instr = 2;
      d.n_mul = code[pc + 1].op == Op::kMul ? 1 : 0;
      len = 2;
    } else if (i0.op == Op::kConst && fusable(pc + 1) &&
               code[pc + 1].op == Op::kLoadPkt && code[pc + 1].a == i0.dst) {
      d.op = DOp::kLoadPktI;
      d.dst2 = i0.dst;
      d.imm = i0.imm;
      d.dst = code[pc + 1].dst;
      d.width = code[pc + 1].width;
      d.n_instr = 2;
      len = 2;
    } else if (i0.op == Op::kConst && fusable(pc + 1) &&
               code[pc + 1].op == Op::kStorePkt && code[pc + 1].a == i0.dst) {
      d.op = DOp::kStorePktI;
      d.dst2 = i0.dst;
      d.imm = i0.imm;
      d.b = code[pc + 1].b;
      d.width = code[pc + 1].width;
      d.n_instr = 2;
      len = 2;
    } else if (i0.op == Op::kConst && fusable(pc + 1) &&
               code[pc + 1].op == Op::kForward && code[pc + 1].a == i0.dst) {
      d.op = DOp::kForwardI;
      d.dst2 = i0.dst;
      d.imm = i0.imm;
      d.n_instr = 2;
      len = 2;
    } else if (cmp_index(i0.op) >= 0 && fusable(pc + 1) &&
               code[pc + 1].op == Op::kBr && code[pc + 1].a == i0.dst) {
      d.op = offset_dop(DOp::kEqBr, cmp_index(i0.op));
      d.dst = i0.dst;
      d.a = i0.a;
      d.b = i0.b;
      d.t = static_cast<std::uint32_t>(code[pc + 1].t);
      d.f = static_cast<std::uint32_t>(code[pc + 1].f);
      d.n_instr = 2;
      len = 2;
    } else {
      // Unfused: the first 33 DOps mirror Op, so decode is a cast.
      d.op = static_cast<DOp>(static_cast<std::uint8_t>(i0.op));
      d.dst = i0.dst;
      d.dst2 = i0.dst2;
      d.a = i0.a;
      d.b = i0.b;
      d.imm = i0.imm;
      if (i0.t >= 0) d.t = static_cast<std::uint32_t>(i0.t);
      if (i0.f >= 0) d.f = static_cast<std::uint32_t>(i0.f);
      d.n_instr = is_annotation(i0.op) ? 0 : 1;
      d.n_mul = i0.op == Op::kMul ? 1 : 0;
    }

    out.code.push_back(d);
    out.fused_away += len - 1;
    pc += len;
  }

  // Branch targets currently hold original indices; rewrite them into
  // decoded-index space. Fusion never absorbed a targeted instruction, so
  // every target is a record head and has a mapping.
  for (DInstr& d : out.code) {
    if (!has_branch_targets(d.op)) continue;
    d.t = orig2dec[d.t];
    if (d.op != DOp::kJmp) d.f = orig2dec[d.f];
  }
  return out;
}

DecodedInterpreter::DecodedInterpreter(const Program& program, StatefulEnv* env,
                                       InterpreterOptions options,
                                       LabelBinding binding)
    : name_(program.name),
      env_(env),
      options_(std::move(options)),
      dprog_(DecodedProgram::decode(program)) {
  if (options_.sink != nullptr) {
    fast_meter_ = options_.sink->fast_meter();
    BOLT_CHECK(fast_meter_ != nullptr,
               name_ + ": decoded engine requires a sink with fast_meter(); "
                       "use the reference engine for order-sensitive sinks");
  }
  if (binding.labels != nullptr) {
    labels_ = binding.labels;
    tag_base_ = binding.tag_base;
    loop_base_ = binding.loop_base;
  } else {
    owned_labels_ = std::make_shared<RunLabels>(
        std::vector<const Program*>{&program});
    labels_ = owned_labels_.get();
  }
  regs_.resize(static_cast<std::size_t>(program.num_regs), 0);
  locals_.resize(static_cast<std::size_t>(program.num_locals), 0);
  scratch_.resize(program.scratch_slots, 0);
  site_memo_.resize(dprog_.code.size());
  for (std::size_t i = 0;
       i < std::min(options_.scratch_init.size(), scratch_.size()); ++i) {
    scratch_[i] = options_.scratch_init[i];
  }
  if (fast_meter_ != nullptr) {
    const ConservativeCycleMeter::Costs& c = fast_meter_->costs();
    record_cycles_.reserve(dprog_.code.size());
    for (const DInstr& d : dprog_.code) {
      record_cycles_.push_back(static_cast<std::uint32_t>(
          (d.n_instr - d.n_mul) * c.alu + d.n_mul * c.mul));
    }
  }
}

RunResult DecodedInterpreter::run(net::Packet& packet) {
  RunResult result;
  run_into(packet, result);
  return result;
}

void DecodedInterpreter::run_into(net::Packet& packet, RunResult& result) {
  if (fast_meter_ != nullptr) {
    exec<true>(packet, result);
  } else {
    exec<false>(packet, result);
  }
}

template <bool kMeter>
void DecodedInterpreter::exec(net::Packet& packet, RunResult& result) {
  result.clear();
  result.labels = labels_;
  result.loop_trips.resize(labels_->loop_count(), 0);

  // Stateless counters live in registers; metered work (framing + dslib)
  // still flows through a CostMeter so data structures see the interface
  // they were written against — that path is per-call, not per-instruction.
  std::uint64_t sic = 0;   // stateless instructions
  std::uint64_t sacc = 0;  // stateless accesses
  CostMeter call_meter(options_.sink);
  [[maybe_unused]] ConservativeCycleMeter* const fm = fast_meter_;
  [[maybe_unused]] const std::uint32_t* const cyc = record_cycles_.data();

  // Framework rx cost: identical event stream to the reference engine
  // (constant per packet, so the virtual path costs nothing that scales).
  call_meter.metered_instructions(options_.rx_instructions);
  for (std::uint64_t i = 0; i < options_.rx_accesses; ++i) {
    call_meter.mem_read(kMbufBase + (i * 16) % 192, 8);
  }

  const auto pkt = packet.bytes();
  std::uint64_t* const regs = regs_.data();
  std::uint64_t* const locals = locals_.data();
  std::uint64_t* const scratch = scratch_.data();
  const std::size_t scratch_size = scratch_.size();
  const DInstr* const code = dprog_.code.data();

  const auto pkt_load = [&](std::uint64_t offset,
                            std::uint8_t width) -> std::uint64_t {
    BOLT_CHECK(offset + width <= pkt.size(),
               name_ + ": packet load out of bounds");
    std::uint64_t v = 0;
    for (std::uint8_t i = 0; i < width; ++i) v = (v << 8) | pkt[offset + i];
    ++sacc;
    if constexpr (kMeter) fm->access(kPacketBase + offset, width);
    return v;
  };
  const auto pkt_store = [&](std::uint64_t offset, std::uint64_t value,
                             std::uint8_t width) {
    auto mut = packet.mutable_bytes();
    BOLT_CHECK(offset + width <= mut.size(),
               name_ + ": packet store out of bounds");
    for (int i = width - 1; i >= 0; --i) {
      mut[offset + std::size_t(i)] = static_cast<std::uint8_t>(value & 0xff);
      value >>= 8;
    }
    ++sacc;
    if constexpr (kMeter) fm->access(kPacketBase + offset, width);
  };

  std::uint64_t steps = 0;
  std::uint32_t pc = 0;
  const DInstr* I;

// One set of handler bodies serves both dispatch strategies: BOLT_OP
// expands to a computed-goto label or a switch case; BOLT_NEXT_AT always
// jumps back to `dispatch`, which re-dispatches either way.
#ifdef BOLT_DIRECT_THREADED
#define BOLT_OP(name) H_##name:
  static const void* const kLabels[kNumDOps] = {
      &&H_kConst, &&H_kMov,
      &&H_kAdd, &&H_kSub, &&H_kMul, &&H_kAnd, &&H_kOr, &&H_kXor,
      &&H_kShl, &&H_kShr, &&H_kNot,
      &&H_kEq, &&H_kNe, &&H_kLtU, &&H_kLeU, &&H_kGtU, &&H_kGeU,
      &&H_kLoadPkt, &&H_kStorePkt, &&H_kPktLen, &&H_kPktPort, &&H_kPktTime,
      &&H_kLoadLocal, &&H_kStoreLocal, &&H_kLoadMem, &&H_kStoreMem,
      &&H_kCall, &&H_kBr, &&H_kJmp, &&H_kForward, &&H_kDrop,
      &&H_kClassTag, &&H_kLoopHead,
      &&H_kAddI, &&H_kSubI, &&H_kMulI, &&H_kAndI, &&H_kOrI, &&H_kXorI,
      &&H_kShlI, &&H_kShrI,
      &&H_kEqI, &&H_kNeI, &&H_kLtUI, &&H_kLeUI, &&H_kGtUI, &&H_kGeUI,
      &&H_kEqBr, &&H_kNeBr, &&H_kLtUBr, &&H_kLeUBr, &&H_kGtUBr, &&H_kGeUBr,
      &&H_kEqIBr, &&H_kNeIBr, &&H_kLtUIBr, &&H_kLeUIBr, &&H_kGtUIBr,
      &&H_kGeUIBr,
      &&H_kLoadPktI, &&H_kStorePktI, &&H_kForwardI, &&H_kLoadPktMaskI,
  };
#else
#define BOLT_OP(name) case DOp::name:
#endif
#define BOLT_NEXT_AT(target) \
  do {                       \
    pc = (target);           \
    goto dispatch;           \
  } while (0)
#define BOLT_NEXT() BOLT_NEXT_AT(pc + 1)

dispatch:
  BOLT_CHECK(++steps <= options_.max_steps,
             name_ + ": step budget exceeded (infinite loop?)");
  I = &code[pc];
  sic += I->n_instr;
  if constexpr (kMeter) fm->add_cycles(cyc[pc]);
#ifdef BOLT_DIRECT_THREADED
  goto *kLabels[static_cast<std::size_t>(I->op)];
#else
  switch (I->op) {
#endif

  BOLT_OP(kConst) {
    regs[I->dst] = static_cast<std::uint64_t>(I->imm);
    BOLT_NEXT();
  }
  BOLT_OP(kMov) {
    regs[I->dst] = regs[I->a];
    BOLT_NEXT();
  }

#define BOLT_ALU(name, expr)                \
  BOLT_OP(name) {                           \
    const std::uint64_t av = regs[I->a];    \
    const std::uint64_t bv = regs[I->b];    \
    regs[I->dst] = (expr);                  \
    BOLT_NEXT();                            \
  }
  BOLT_ALU(kAdd, av + bv)
  BOLT_ALU(kSub, av - bv)
  BOLT_ALU(kMul, av * bv)
  BOLT_ALU(kAnd, av & bv)
  BOLT_ALU(kOr, av | bv)
  BOLT_ALU(kXor, av ^ bv)
  BOLT_ALU(kShl, av << (bv & 63))
  BOLT_ALU(kShr, av >> (bv & 63))
  BOLT_ALU(kEq, av == bv)
  BOLT_ALU(kNe, av != bv)
  BOLT_ALU(kLtU, av < bv)
  BOLT_ALU(kLeU, av <= bv)
  BOLT_ALU(kGtU, av > bv)
  BOLT_ALU(kGeU, av >= bv)
#undef BOLT_ALU

  BOLT_OP(kNot) {
    regs[I->dst] = ~regs[I->a];
    BOLT_NEXT();
  }
  BOLT_OP(kLoadPkt) {
    regs[I->dst] = pkt_load(regs[I->a], I->width);
    BOLT_NEXT();
  }
  BOLT_OP(kStorePkt) {
    pkt_store(regs[I->a], regs[I->b], I->width);
    BOLT_NEXT();
  }
  BOLT_OP(kPktLen) {
    regs[I->dst] = pkt.size();
    BOLT_NEXT();
  }
  BOLT_OP(kPktPort) {
    regs[I->dst] = packet.in_port();
    BOLT_NEXT();
  }
  BOLT_OP(kPktTime) {
    regs[I->dst] = packet.timestamp_ns();
    BOLT_NEXT();
  }
  BOLT_OP(kLoadLocal) {
    regs[I->dst] = locals[static_cast<std::size_t>(I->imm)];
    ++sacc;
    if constexpr (kMeter) {
      fm->access(kLocalsBase + 8 * static_cast<std::uint64_t>(I->imm), 8);
    }
    BOLT_NEXT();
  }
  BOLT_OP(kStoreLocal) {
    locals[static_cast<std::size_t>(I->imm)] = regs[I->a];
    ++sacc;
    if constexpr (kMeter) {
      fm->access(kLocalsBase + 8 * static_cast<std::uint64_t>(I->imm), 8);
    }
    BOLT_NEXT();
  }
  BOLT_OP(kLoadMem) {
    const std::uint64_t slot = regs[I->a];
    BOLT_CHECK(slot < scratch_size, name_ + ": scratch load out of range");
    regs[I->dst] = scratch[slot];
    ++sacc;
    if constexpr (kMeter) fm->access(kScratchBase + 8 * slot, 8);
    BOLT_NEXT();
  }
  BOLT_OP(kStoreMem) {
    const std::uint64_t slot = regs[I->a];
    BOLT_CHECK(slot < scratch_size, name_ + ": scratch store out of range");
    scratch[slot] = regs[I->b];
    ++sacc;
    if constexpr (kMeter) fm->access(kScratchBase + 8 * slot, 8);
    BOLT_NEXT();
  }
  BOLT_OP(kCall) {
    BOLT_CHECK(env_ != nullptr, name_ + ": kCall with no env");
    const std::uint64_t a0 = I->a != kNoReg ? regs[I->a] : 0;
    const std::uint64_t a1 = I->b != kNoReg ? regs[I->b] : 0;
    CallOutcome outcome = env_->call(I->imm, a0, a1, packet, call_meter);
    if (I->dst != kNoReg) regs[I->dst] = outcome.v0;
    if (I->dst2 != kNoReg) regs[I->dst2] = outcome.v1;
    for (const auto& [id, v] : outcome.pcvs.values()) {
      if (v > result.pcvs.get(id)) result.pcvs.set(id, v);
    }
    CallRec rec;
    rec.method = I->imm;
    SiteMemo& memo = site_memo_[pc];
    if (memo.ptr != nullptr && memo.ptr == outcome.case_label) {
      rec.case_id = memo.case_id;
      rec.token = memo.token;
    } else {
      rec.case_id = labels_->intern_case(I->imm, outcome.case_label);
      rec.token = labels_->case_token(I->imm, rec.case_id);
      memo = SiteMemo{outcome.case_label, rec.case_id, rec.token};
    }
    result.calls.push_back(rec);
    BOLT_NEXT();
  }
  BOLT_OP(kBr) { BOLT_NEXT_AT(regs[I->a] != 0 ? I->t : I->f); }
  BOLT_OP(kJmp) { BOLT_NEXT_AT(I->t); }
  BOLT_OP(kForward) {
    result.verdict = net::NfVerdict::kForward;
    result.out_port = regs[I->a];
    goto done;
  }
  BOLT_OP(kDrop) {
    result.verdict = net::NfVerdict::kDrop;
    goto done;
  }
  BOLT_OP(kClassTag) {
    result.class_tags.push_back(tag_base_ + static_cast<std::uint32_t>(I->imm));
    BOLT_NEXT();
  }
  BOLT_OP(kLoopHead) {
    ++result.loop_trips[loop_base_ + static_cast<std::size_t>(I->imm)];
    BOLT_NEXT();
  }

// Fused const+ALU: the const register (dst2) is written first, exactly as
// the reference executed it, so member aliasing cannot change results.
#define BOLT_ALU_I(name, expr)                                \
  BOLT_OP(name) {                                             \
    regs[I->dst2] = static_cast<std::uint64_t>(I->imm);       \
    const std::uint64_t av = regs[I->a];                      \
    const std::uint64_t bv = static_cast<std::uint64_t>(I->imm); \
    regs[I->dst] = (expr);                                    \
    BOLT_NEXT();                                              \
  }
  BOLT_ALU_I(kAddI, av + bv)
  BOLT_ALU_I(kSubI, av - bv)
  BOLT_ALU_I(kMulI, av * bv)
  BOLT_ALU_I(kAndI, av & bv)
  BOLT_ALU_I(kOrI, av | bv)
  BOLT_ALU_I(kXorI, av ^ bv)
  BOLT_ALU_I(kShlI, av << (bv & 63))
  BOLT_ALU_I(kShrI, av >> (bv & 63))
  BOLT_ALU_I(kEqI, av == bv)
  BOLT_ALU_I(kNeI, av != bv)
  BOLT_ALU_I(kLtUI, av < bv)
  BOLT_ALU_I(kLeUI, av <= bv)
  BOLT_ALU_I(kGtUI, av > bv)
  BOLT_ALU_I(kGeUI, av >= bv)
#undef BOLT_ALU_I

#define BOLT_CMP_BR(name, expr)                 \
  BOLT_OP(name) {                               \
    const std::uint64_t av = regs[I->a];        \
    const std::uint64_t bv = regs[I->b];        \
    const std::uint64_t v = (expr);             \
    regs[I->dst] = v;                           \
    BOLT_NEXT_AT(v ? I->t : I->f);              \
  }
  BOLT_CMP_BR(kEqBr, av == bv)
  BOLT_CMP_BR(kNeBr, av != bv)
  BOLT_CMP_BR(kLtUBr, av < bv)
  BOLT_CMP_BR(kLeUBr, av <= bv)
  BOLT_CMP_BR(kGtUBr, av > bv)
  BOLT_CMP_BR(kGeUBr, av >= bv)
#undef BOLT_CMP_BR

#define BOLT_CMP_I_BR(name, expr)                             \
  BOLT_OP(name) {                                             \
    regs[I->dst2] = static_cast<std::uint64_t>(I->imm);       \
    const std::uint64_t av = regs[I->a];                      \
    const std::uint64_t bv = static_cast<std::uint64_t>(I->imm); \
    const std::uint64_t v = (expr);                           \
    regs[I->dst] = v;                                         \
    BOLT_NEXT_AT(v ? I->t : I->f);                            \
  }
  BOLT_CMP_I_BR(kEqIBr, av == bv)
  BOLT_CMP_I_BR(kNeIBr, av != bv)
  BOLT_CMP_I_BR(kLtUIBr, av < bv)
  BOLT_CMP_I_BR(kLeUIBr, av <= bv)
  BOLT_CMP_I_BR(kGtUIBr, av > bv)
  BOLT_CMP_I_BR(kGeUIBr, av >= bv)
#undef BOLT_CMP_I_BR

  BOLT_OP(kLoadPktI) {
    regs[I->dst2] = static_cast<std::uint64_t>(I->imm);
    regs[I->dst] = pkt_load(static_cast<std::uint64_t>(I->imm), I->width);
    BOLT_NEXT();
  }
  BOLT_OP(kStorePktI) {
    regs[I->dst2] = static_cast<std::uint64_t>(I->imm);
    pkt_store(static_cast<std::uint64_t>(I->imm), regs[I->b], I->width);
    BOLT_NEXT();
  }
  BOLT_OP(kForwardI) {
    regs[I->dst2] = static_cast<std::uint64_t>(I->imm);
    result.verdict = net::NfVerdict::kForward;
    result.out_port = static_cast<std::uint64_t>(I->imm);
    goto done;
  }
  BOLT_OP(kLoadPktMaskI) {
    regs[I->a] = static_cast<std::uint64_t>(I->imm);  // offset const
    const std::uint64_t v =
        pkt_load(static_cast<std::uint64_t>(I->imm), I->width);
    regs[I->dst] = v;
    regs[I->b] = static_cast<std::uint64_t>(I->imm2);  // mask const
    regs[I->dst2] = v & static_cast<std::uint64_t>(I->imm2);
    BOLT_NEXT();
  }

#ifndef BOLT_DIRECT_THREADED
  }
  BOLT_UNREACHABLE(name_ + ": bad decoded opcode");
#endif
#undef BOLT_OP
#undef BOLT_NEXT
#undef BOLT_NEXT_AT

done:
  // Framework tx/drop cost — same event stream as the reference engine.
  if (result.verdict == net::NfVerdict::kForward) {
    call_meter.metered_instructions(options_.tx_instructions);
    for (std::uint64_t i = 0; i < options_.tx_accesses; ++i) {
      call_meter.mem_write(kMbufBase + 192 + (i * 16) % 128, 8);
    }
  } else {
    call_meter.metered_instructions(options_.drop_instructions);
    for (std::uint64_t i = 0; i < options_.drop_accesses; ++i) {
      call_meter.mem_write(kMbufBase + 320 + (i * 16) % 64, 8);
    }
  }

  result.instructions = sic + call_meter.instructions();
  result.mem_accesses = sacc + call_meter.accesses();
  result.stateless_instructions = sic;
  result.stateless_accesses = sacc;
}

template void DecodedInterpreter::exec<true>(net::Packet&, RunResult&);
template void DecodedInterpreter::exec<false>(net::Packet&, RunResult&);

}  // namespace bolt::ir
