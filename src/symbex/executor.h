// Symbolic executor over the IR (the reproduction's KLEE).
//
// Explores every feasible path through one stateless NF program — or a
// *chain* of programs executed back to back, which implements the paper's
// joint chain analysis (§3.4) — forking at symbolic branches and at each
// modelled stateful call's abstract-state cases. Loop headers are trip-
// counted per path so the contract generator can fold unrolled loop
// families back into closed forms.
//
// Hot-path architecture (the "recompute the contract after an NF change"
// inner loop):
//   * expressions are hash-consed (symbex/expr.h), so forking a state
//     copies raw pointers, and feasibility machinery compares and hashes
//     constraints in O(1);
//   * each exploration state carries the solver's propagated interval
//     domains (solver::DomainStore), so a fork's feasibility check only
//     propagates the one new branch constraint instead of re-deriving the
//     whole path's domains;
//   * exploration runs on per-worker deques with randomized work stealing
//     (owner pops newest — DFS-like memory use; thieves steal oldest —
//     the biggest subtrees), not a single mutex+condvar queue.
// Completed paths are canonicalized after exploration, so contracts stay
// bit-identical at any thread count.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ir/program.h"
#include "symbex/expr.h"
#include "symbex/model.h"
#include "symbex/path.h"
#include "symbex/solver.h"

namespace bolt::symbex {

struct ExecutorOptions {
  /// Path budget. Truncation is *canonical*: when exploration completes
  /// more paths than this, the paths with the smallest structural
  /// signatures are kept (the canonical prefix of the sorted path set),
  /// the rest are counted in `ExecutorStats::truncated_paths`. A tight
  /// budget therefore bounds memory and output size, not exploration
  /// time — every path is still visited once.
  std::size_t max_paths = 4096;
  std::uint64_t max_steps_per_path = 100'000;
  std::uint64_t max_loop_trips = 64;     ///< per loop header per path
  bool prune_infeasible = true;          ///< solver-check each fork
  /// Worker threads for exploration and solving (0 = one per hardware
  /// thread). Results are canonicalized after exploration, so contracts
  /// are bit-identical at any thread count, including under max_paths
  /// truncation.
  std::size_t threads = 0;
  SolverOptions solver;
  /// Initial contents of NF-local scratch memory. Scratch is configuration,
  /// not input, so the executor treats it concretely (the P1/P2/P3
  /// microprograms chase pointers through it).
  std::vector<std::uint64_t> scratch_init;
};

struct ExecutorStats {
  std::size_t completed_paths = 0;   ///< paths returned (post-truncation)
  std::size_t truncated_paths = 0;   ///< completed but evicted by max_paths
  std::size_t pruned_branches = 0;   ///< forks proved infeasible
  std::size_t abandoned_paths = 0;   ///< loop/step budget exceeded
  std::size_t solver_unknowns = 0;   ///< feasibility checks that timed out
  // Hot-path instrumentation. solver_calls and the cache split are
  // deterministic — probes and the witness/verified-prefix cache are pure
  // functions of the (deterministic) exploration tree; only steal_count
  // depends on scheduling.
  std::size_t solver_calls = 0;      ///< feasibility probes issued
  std::size_t feas_cache_hits = 0;   ///< settled by the carried witness
  std::size_t feas_cache_misses = 0; ///< required an actual bounded search
  std::size_t steal_count = 0;       ///< states stolen between workers
};

class Executor {
 public:
  /// `programs` is a chain executed in order while each forwards; a single
  /// NF is a chain of length one. `models` maps method id -> symbolic model
  /// and is shared by all programs in the chain.
  Executor(std::vector<const ir::Program*> programs,
           std::map<std::int64_t, SymbolicModel> models,
           ExecutorOptions options = {});

  /// Exhaustively executes and returns all completed paths (unsolved;
  /// run `solve_inputs` afterwards or let the bolt pipeline do it).
  ///
  /// Exploration fans out across `options.threads` workers, each owning a
  /// deque (newest-first for the owner) and stealing from random victims
  /// when its own deque drains; each worker runs its own Solver (with its
  /// own feasibility memo) for pruning. Completed paths are then
  /// *canonicalized*: sorted by a scheduling-independent structural
  /// signature and their symbols renumbered in first-use order over that
  /// ordering, so the returned paths (and the symbol table) are
  /// bit-identical at 1, 2, or N threads. Call run() at most once per
  /// Executor instance (canonicalization rebuilds the symbol table).
  std::vector<PathResult> run();

  /// Solves each path's constraints for a concrete input (paper Alg. 2,
  /// GetInputsForPath), fanning the independent per-path solves across the
  /// thread pool. Marks paths `solved` and fills `model`.
  void solve_inputs(std::vector<PathResult>& paths) const;

  const ExecutorStats& stats() const { return stats_; }
  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

 private:
  struct State;      // defined in executor.cpp
  struct Explore;    // deques + result sink + termination, in executor.cpp
  struct WorkerCtx;  // per-worker solver/deque-index/rng, in executor.cpp

  void enter_program(State& s, std::size_t index) const;
  /// Runs one state to completion (fork points push siblings onto the
  /// worker's own deque; completed paths land in the shared result sink).
  void execute_state(State s, WorkerCtx& ctx, Explore& sh);
  /// Worker loop: pop own deque (newest first), steal from random victims
  /// when empty, exit when no state is queued or executing anywhere.
  void explore_worker(Explore& sh, std::size_t self);
  /// Deterministic post-pass over paths *already in canonical signature
  /// order* (run()'s result sink maintains that order): renumbers symbols
  /// in first-use order and rewrites every expression (see run()).
  void canonicalize(std::vector<PathResult>& paths);

  std::vector<const ir::Program*> programs_;
  std::map<std::int64_t, SymbolicModel> models_;
  ExecutorOptions options_;
  SymbolTable symbols_;
  ExecutorStats stats_;
};

}  // namespace bolt::symbex
