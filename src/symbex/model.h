// Symbolic models of stateful data-structure methods (paper §3.3, Alg. 3).
//
// During symbolic execution, calls into the stateful library are replaced
// by models. A model does two things:
//   * returns fresh symbols for the method's outputs (Algorithm 3), and
//   * enumerates the *abstract-state cases* the method can be in (flow
//     present/absent, table full/not, rehash triggered/not). Each case
//     forks the current path, is labelled (the label selects the matching
//     branch of the method's manually written performance contract), and
//     may constrain the returned symbols.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "symbex/expr.h"

namespace bolt::symbex {

/// One forked outcome of a modelled stateful call.
struct ModelOutcome {
  std::string case_label;            ///< contract case, e.g. "hit" / "miss"
  ExprPtr ret0 = nullptr;            ///< v0 (null = constant 0)
  ExprPtr ret1 = nullptr;            ///< v1 (null = constant 0)
  std::vector<ExprPtr> constraints;  ///< extra path constraints for this case
};

/// A symbolic model: given the symbolic arguments, produce all outcomes.
/// Models may mint fresh symbols through the provided SymbolTable.
using SymbolicModel = std::function<std::vector<ModelOutcome>(
    SymbolTable& symbols, const ExprPtr& arg0, const ExprPtr& arg1)>;

/// Convenience: an outcome that returns a fresh unconstrained symbol as v0
/// (Algorithm 3's `return <new symbol>`).
ModelOutcome fresh_value_outcome(SymbolTable& symbols, const std::string& label,
                                 const std::string& sym_name, int width_bits);

}  // namespace bolt::symbex
