#include "symbex/solver.h"

#include <algorithm>
#include <map>
#include <string>

#include "support/assert.h"
#include "support/random.h"

namespace bolt::symbex {

Solver::Solver(const SymbolTable& symbols, SolverOptions options)
    : symbols_(symbols), options_(options) {}

bool Solver::constrain(const ExprPtr& e, std::uint64_t lo, std::uint64_t hi,
                       std::vector<Domain>& domains) const {
  if (lo > hi) return false;
  switch (e->kind()) {
    case ExprKind::kConst:
      return e->const_value() >= lo && e->const_value() <= hi;
    case ExprKind::kSym: {
      Domain& d = domains[e->sym_id()];
      d.lo = std::max(d.lo, lo);
      d.hi = std::min(d.hi, hi);
      return !d.empty();
    }
    case ExprKind::kUnary:
      // ~x in [lo,hi]  <=>  x in [~hi,~lo]
      return constrain(e->lhs(), ~hi, ~lo, domains);
    case ExprKind::kBinary:
      break;
  }
  // Binary: propagate through op with a constant on one side where the
  // inversion is exact. Anything else is left to the search phase.
  const ExprPtr& a0 = e->lhs();
  const ExprPtr& b0 = e->rhs();
  // Commutative ops with the constant on the left: swap.
  const bool swap = a0->is_const() && !b0->is_const() &&
                    (e->op() == ExprOp::kAdd || e->op() == ExprOp::kMul ||
                     e->op() == ExprOp::kAnd || e->op() == ExprOp::kOr ||
                     e->op() == ExprOp::kXor);
  const ExprPtr& a = swap ? b0 : a0;
  const ExprPtr& b = swap ? a0 : b0;
  if (b->is_const()) {
    const std::uint64_t c = b->const_value();
    switch (e->op()) {
      case ExprOp::kAdd: {
        // x + c in [lo,hi]: exact when the window doesn't wrap.
        const std::uint64_t nlo = lo - c;
        const std::uint64_t nhi = hi - c;
        if (nlo <= nhi) return constrain(a, nlo, nhi, domains);
        return true;  // wrapped: imprecise, defer to search
      }
      case ExprOp::kSub: {
        const std::uint64_t nlo = lo + c;
        const std::uint64_t nhi = hi + c;
        if (nlo <= nhi) return constrain(a, nlo, nhi, domains);
        return true;
      }
      case ExprOp::kShr: {
        // (x >> c) in [lo,hi] => x in [lo<<c, (hi<<c)|ones(c)] when no overflow.
        const std::uint64_t shift = c & 63;
        if (shift == 0) return constrain(a, lo, hi, domains);
        if (hi <= (~0ULL >> shift)) {
          const std::uint64_t ones = (1ULL << shift) - 1;
          return constrain(a, lo << shift, (hi << shift) | ones, domains);
        }
        return true;
      }
      case ExprOp::kShl: {
        const std::uint64_t shift = c & 63;
        if (shift == 0) return constrain(a, lo, hi, domains);
        // (x << s) in [lo,hi] => x in [ceil(lo / 2^s), hi >> s].
        // Exact for the small header-arithmetic shifts NF constraints use
        // (wraparound would need x near 2^64, which field widths exclude).
        const std::uint64_t nlo = (lo + (1ULL << shift) - 1) >> shift;
        const std::uint64_t nhi = hi >> shift;
        if (nlo > nhi) return false;
        return constrain(a, nlo, nhi, domains);
      }
      case ExprOp::kAnd:
        // The masked value can never exceed the mask.
        if (lo > c) return false;
        return true;  // exact bit pinning is left to the search phase
      default:
        return true;
    }
  }
  return true;
}

bool Solver::propagate(support::Span<const ExprPtr> constraints,
                       std::vector<Domain>& domains) const {
  // Expression-view domains: comparisons against constants are intersected
  // per *structurally identical* left-hand expression. This catches
  // contradictions the per-symbol pass cannot invert — e.g. a chained NF
  // re-deriving (x & 0xf) and branching the other way, or a loop whose
  // continuation bound conflicts with an earlier exit bound.
  std::map<std::string, Domain> views;
  auto view_constrain = [&](const ExprPtr& expr, ExprOp op, std::uint64_t k) {
    if (expr->is_const()) return true;  // folded elsewhere
    Domain& d = views[expr->str(nullptr)];
    switch (op) {
      case ExprOp::kEq:
        d.lo = std::max(d.lo, k);
        d.hi = std::min(d.hi, k);
        break;
      case ExprOp::kNe:
        d.excluded.push_back(k);
        break;
      case ExprOp::kLtU:
        if (k == 0) return false;
        d.hi = std::min(d.hi, k - 1);
        break;
      case ExprOp::kLeU:
        d.hi = std::min(d.hi, k);
        break;
      case ExprOp::kGtU:
        if (k == ~0ULL) return false;
        d.lo = std::max(d.lo, k + 1);
        break;
      case ExprOp::kGeU:
        d.lo = std::max(d.lo, k);
        break;
      default:
        return true;
    }
    if (d.empty()) return false;
    if (d.lo == d.hi) {
      for (const std::uint64_t x : d.excluded) {
        if (x == d.lo) return false;
      }
    }
    return true;
  };

  for (const ExprPtr& c : constraints) {
    if (c->is_const()) {
      if (c->const_value() == 0) return false;
      continue;
    }
    if (c->kind() != ExprKind::kBinary) continue;
    const ExprPtr& a = c->lhs();
    const ExprPtr& b = c->rhs();
    // Normalise to have the constant on the right where possible.
    const bool const_right = b->is_const();
    const bool const_left = a->is_const();
    if (!const_right && !const_left) continue;
    const ExprPtr& var = const_right ? a : b;
    const std::uint64_t k = (const_right ? b : a)->const_value();
    // Mirror the operator if the constant is on the left.
    ExprOp op = c->op();
    if (const_left) {
      switch (op) {
        case ExprOp::kLtU: op = ExprOp::kGtU; break;
        case ExprOp::kLeU: op = ExprOp::kGeU; break;
        case ExprOp::kGtU: op = ExprOp::kLtU; break;
        case ExprOp::kGeU: op = ExprOp::kLeU; break;
        default: break;  // kEq/kNe are symmetric
      }
    }
    if (!view_constrain(var, op, k)) return false;
    switch (op) {
      case ExprOp::kEq:
        if (!constrain(var, k, k, domains)) return false;
        break;
      case ExprOp::kNe:
        if (var->is_sym()) {
          Domain& d = domains[var->sym_id()];
          d.excluded.push_back(k);
          if (d.lo == d.hi && d.lo == k) return false;
        }
        break;
      case ExprOp::kLtU:
        if (k == 0) return false;
        if (!constrain(var, 0, k - 1, domains)) return false;
        break;
      case ExprOp::kLeU:
        if (!constrain(var, 0, k, domains)) return false;
        break;
      case ExprOp::kGtU:
        if (k == ~0ULL) return false;
        if (!constrain(var, k + 1, ~0ULL, domains)) return false;
        break;
      case ExprOp::kGeU:
        if (!constrain(var, k, ~0ULL, domains)) return false;
        break;
      default:
        break;
    }
  }
  return true;
}

bool Solver::invert_assign(const ExprPtr& e, std::uint64_t target,
                           Assignment& model, support::Rng& rng) const {
  switch (e->kind()) {
    case ExprKind::kConst:
      return e->const_value() == target;
    case ExprKind::kSym: {
      const SymId id = e->sym_id();
      model[id] = target & symbols_.max_value(id);
      return true;
    }
    case ExprKind::kUnary:
      return invert_assign(e->lhs(), ~target, model, rng);
    case ExprKind::kBinary:
      break;
  }
  const ExprPtr& a0 = e->lhs();
  const ExprPtr& b0 = e->rhs();
  const bool const_left = a0->is_const() && !b0->is_const();
  const ExprPtr& var = const_left ? b0 : a0;
  const ExprPtr& konst = const_left ? a0 : b0;
  if (!konst->is_const()) {
    // Two variable sides: fix one at its current value, solve the other.
    const ExprPtr& hold = rng.chance(0.5) ? a0 : b0;
    const ExprPtr& move = hold.get() == a0.get() ? b0 : a0;
    const std::uint64_t held = hold->eval(model);
    std::uint64_t sub_target;
    switch (e->op()) {
      case ExprOp::kAdd: sub_target = target - held; break;
      case ExprOp::kXor: sub_target = target ^ held; break;
      case ExprOp::kSub:
        sub_target = move.get() == a0.get() ? target + held : held - target;
        break;
      default:
        return false;
    }
    return invert_assign(move, sub_target, model, rng);
  }
  const std::uint64_t c = konst->const_value();
  const std::uint64_t current = var->eval(model);
  switch (e->op()) {
    case ExprOp::kAdd:
      return invert_assign(var, target - c, model, rng);
    case ExprOp::kSub:
      return invert_assign(var, const_left ? c - target : target + c, model, rng);
    case ExprOp::kXor:
      return invert_assign(var, target ^ c, model, rng);
    case ExprOp::kShl: {
      const std::uint64_t s = c & 63;
      // Preserve the low bits the shift discards.
      const std::uint64_t low = s == 0 ? 0 : current & ((1ULL << s) - 1);
      return invert_assign(var, (target >> s) | low, model, rng);
    }
    case ExprOp::kShr: {
      const std::uint64_t s = c & 63;
      const std::uint64_t low = s == 0 ? 0 : current & ((1ULL << s) - 1);
      return invert_assign(var, (target << s) | low, model, rng);
    }
    case ExprOp::kAnd:
      // Set the masked bits to the target, keep the rest.
      if ((target & ~c) != 0) return false;  // impossible under this mask
      return invert_assign(var, (current & ~c) | (target & c), model, rng);
    case ExprOp::kOr:
      if ((target & c) != c) return false;  // the const bits are always set
      return invert_assign(var, (current & c) | (target & ~c), model, rng);
    case ExprOp::kMul:
      if (c != 0 && target % c == 0) {
        return invert_assign(var, target / c, model, rng);
      }
      return false;
    default:
      return false;
  }
}

bool Solver::repair(const ExprPtr& constraint, Assignment& model,
                    support::Rng& rng) const {
  // Make `constraint` truthy under `model`.
  if (constraint->kind() == ExprKind::kBinary) {
    const ExprOp op = constraint->op();
    const ExprPtr& a = constraint->lhs();
    const ExprPtr& b = constraint->rhs();
    switch (op) {
      case ExprOp::kOr: {
        // Satisfy one branch (comparisons yield 0/1, so truthy | works).
        const ExprPtr& pick = rng.chance(0.5) ? a : b;
        return repair(pick, model, rng);
      }
      case ExprOp::kAnd: {
        // Both sides must be truthy; fix a failing one.
        if (a->eval(model) == 0) return repair(a, model, rng);
        if (b->eval(model) == 0) return repair(b, model, rng);
        return true;
      }
      case ExprOp::kEq: case ExprOp::kNe: case ExprOp::kLtU:
      case ExprOp::kLeU: case ExprOp::kGtU: case ExprOp::kGeU: {
        const bool const_left = a->is_const() && !b->is_const();
        const ExprPtr& var = const_left ? b : a;
        const ExprPtr& other = const_left ? a : b;
        const std::uint64_t k = other->eval(model);
        ExprOp norm = op;
        if (const_left) {
          switch (op) {
            case ExprOp::kLtU: norm = ExprOp::kGtU; break;
            case ExprOp::kLeU: norm = ExprOp::kGeU; break;
            case ExprOp::kGtU: norm = ExprOp::kLtU; break;
            case ExprOp::kGeU: norm = ExprOp::kLeU; break;
            default: break;
          }
        }
        std::uint64_t target = k;
        switch (norm) {
          case ExprOp::kEq: target = k; break;
          case ExprOp::kNe: target = k + 1 + rng.below(7); break;
          case ExprOp::kLtU:
            if (k == 0) return false;
            target = rng.below(k);
            break;
          case ExprOp::kLeU: target = rng.below(k + 1); break;
          case ExprOp::kGtU:
            if (k == ~0ULL) return false;
            target = k + 1 + rng.below(16);
            break;
          case ExprOp::kGeU: target = k + rng.below(16); break;
          default: break;
        }
        return invert_assign(var, target, model, rng);
      }
      default:
        break;
    }
  }
  // Fallback: the constraint itself must evaluate non-zero.
  return invert_assign(constraint, 1, model, rng);
}

bool Solver::search(support::Span<const ExprPtr> constraints,
                    const std::vector<Domain>& domains, int probes,
                    Assignment& model) const {
  // Gather the symbols that actually appear.
  std::vector<SymId> syms;
  for (const ExprPtr& c : constraints) c->collect_symbols(syms);
  std::sort(syms.begin(), syms.end());
  syms.erase(std::unique(syms.begin(), syms.end()), syms.end());

  // Candidate values per symbol: interval endpoints, harvested constants
  // (and neighbours), and a few fixed favourites.
  std::vector<std::uint64_t> harvested;
  for (const ExprPtr& c : constraints) c->collect_constants(harvested);
  std::sort(harvested.begin(), harvested.end());
  harvested.erase(std::unique(harvested.begin(), harvested.end()),
                  harvested.end());

  std::vector<std::vector<std::uint64_t>> candidates(syms.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    const Domain& d = domains[syms[i]];
    auto& cand = candidates[i];
    auto push = [&](std::uint64_t v) {
      if (v >= d.lo && v <= d.hi &&
          std::find(d.excluded.begin(), d.excluded.end(), v) ==
              d.excluded.end() &&
          static_cast<int>(cand.size()) < options_.per_symbol_candidates) {
        cand.push_back(v);
      }
    };
    push(d.lo);
    push(d.hi);
    push(0);
    push(1);
    for (std::uint64_t h : harvested) {
      push(h);
      push(h + 1);
      push(h - 1);
    }
    if (cand.empty()) {
      // Domain may consist entirely of excluded endpoints; probe inward.
      for (std::uint64_t v = d.lo; v <= d.hi && cand.size() < 8; ++v) push(v);
    }
    if (cand.empty()) return false;
  }

  auto satisfied = [&](const Assignment& a) {
    for (const ExprPtr& c : constraints) {
      if (c->eval(a) == 0) return false;
    }
    return true;
  };

  // Initial assignment: first candidate of each symbol.
  for (std::size_t i = 0; i < syms.size(); ++i) {
    model[syms[i]] = candidates[i].front();
  }
  if (satisfied(model)) return true;

  // Guided search: enumerate candidate combinations for small systems,
  // then fall back to random probing.
  support::Rng rng(options_.seed);
  std::uint64_t combo_budget = 1;
  for (const auto& cand : candidates) {
    combo_budget *= cand.size();
    if (combo_budget > 4096) break;
  }
  if (!syms.empty() && combo_budget <= 4096) {
    std::vector<std::size_t> idx(syms.size(), 0);
    while (true) {
      for (std::size_t i = 0; i < syms.size(); ++i) {
        model[syms[i]] = candidates[i][idx[i]];
      }
      if (satisfied(model)) return true;
      // Odometer increment.
      std::size_t k = 0;
      while (k < idx.size() && ++idx[k] == candidates[k].size()) {
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size()) break;
    }
  }

  // WalkSAT-style repair: pick a failing constraint and invert its
  // expression chain to satisfy it, occasionally randomising to escape
  // cycles. This is what cracks bit-level disjunctions (port allowlists,
  // bogon prefixes) that blind probing cannot hit.
  for (int round = 0; round < probes; ++round) {
    std::vector<const ExprPtr*> failing;
    for (const ExprPtr& c : constraints) {
      if (c->eval(model) == 0) failing.push_back(&c);
    }
    if (failing.empty()) return true;
    const ExprPtr& target = *failing[rng.below(failing.size())];
    if (!repair(target, model, rng) || rng.chance(0.05)) {
      // Escape: randomise one involved symbol within its domain.
      std::vector<SymId> involved;
      target.get()->collect_symbols(involved);
      if (!involved.empty()) {
        const SymId id = involved[rng.below(involved.size())];
        const Domain& d = domains[id];
        model[id] = d.hi - d.lo == ~0ULL
                        ? rng.next()
                        : d.lo + rng.below(d.hi - d.lo + 1);
      }
    }
  }

  // Last resort: blind random probing.
  for (int probe = 0; probe < probes; ++probe) {
    for (std::size_t i = 0; i < syms.size(); ++i) {
      const Domain& d = domains[syms[i]];
      std::uint64_t v;
      if (rng.chance(0.5) && !candidates[i].empty()) {
        v = candidates[i][rng.below(candidates[i].size())];
      } else if (d.hi - d.lo == ~0ULL) {
        v = rng.next();
      } else {
        v = d.lo + rng.below(d.hi - d.lo + 1);
      }
      model[syms[i]] = v;
    }
    if (satisfied(model)) return true;
  }
  return false;
}

SolveResult Solver::solve(support::Span<const ExprPtr> constraints) const {
  SolveResult result;
  // Snapshot the size once: during parallel exploration other workers mint
  // symbols concurrently, and re-reading size() in the loop bound would
  // index past the vector constructed above. The constraints only mention
  // symbols minted before this call, so the snapshot always covers them.
  const std::size_t num_symbols = symbols_.size();
  std::vector<Domain> domains(num_symbols);
  for (SymId id = 0; id < num_symbols; ++id) {
    domains[id].hi = symbols_.max_value(id);
  }
  if (!propagate(constraints, domains)) {
    result.status = SolveStatus::kUnsat;
    return result;
  }
  if (search(constraints, domains, options_.random_probes, result.model)) {
    result.status = SolveStatus::kSat;
    return result;
  }
  result.status = SolveStatus::kUnknown;
  return result;
}

SolveStatus Solver::quick_check(support::Span<const ExprPtr> constraints) const {
  const std::size_t num_symbols = symbols_.size();  // snapshot: see solve()
  std::vector<Domain> domains(num_symbols);
  for (SymId id = 0; id < num_symbols; ++id) {
    domains[id].hi = symbols_.max_value(id);
  }
  if (!propagate(constraints, domains)) return SolveStatus::kUnsat;
  Assignment model;
  if (search(constraints, domains, options_.random_probes / 8, model)) {
    return SolveStatus::kSat;
  }
  return SolveStatus::kUnknown;
}

}  // namespace bolt::symbex
