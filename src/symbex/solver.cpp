#include "symbex/solver.h"

#include <algorithm>

#include "support/assert.h"
#include "support/hash.h"
#include "support/random.h"

namespace bolt::symbex {

using support::mix64;

namespace {

/// Structural-hash key of a constraint set (order-sensitive; constraint
/// vectors are built deterministically along a path, so sibling paths that
/// re-derive the same guard sequence produce the same key).
std::uint64_t constraint_set_key(support::Span<const ExprPtr> constraints) {
  std::uint64_t key = 0xcbf29ce484222325ULL ^ constraints.size();
  for (const ExprPtr& c : constraints) {
    key = mix64(key * 0x100000001b3ULL ^ c->hash());
  }
  return key;
}

}  // namespace

Solver::Solver(const SymbolTable& symbols, SolverOptions options)
    : symbols_(symbols), options_(options) {}

std::uint64_t Solver::max_value(SymId id) const {
  if (id >= snap_.size()) snap_ = symbols_.snapshot();
  return snap_.max_value(id);
}

void Solver::read_domain(const DomainStore& store, SymId id, std::uint64_t& lo,
                         std::uint64_t& hi,
                         const std::vector<std::uint64_t>** excluded) const {
  const std::uint64_t width_max = max_value(id);
  if (id < store.by_sym.size()) {
    const Domain& d = store.by_sym[id];
    lo = d.lo;
    hi = std::min(d.hi, width_max);
    if (excluded != nullptr) *excluded = &d.excluded;
  } else {
    lo = 0;
    hi = width_max;
    if (excluded != nullptr) *excluded = nullptr;
  }
}

bool Solver::constrain(ExprPtr e, std::uint64_t lo, std::uint64_t hi,
                       DomainStore& store) const {
  if (lo > hi) return false;
  switch (e->kind()) {
    case ExprKind::kConst:
      return e->const_value() >= lo && e->const_value() <= hi;
    case ExprKind::kSym: {
      const SymId id = e->sym_id();
      if (id >= store.by_sym.size()) store.by_sym.resize(id + 1);
      Domain& d = store.by_sym[id];
      d.hi = std::min(d.hi, max_value(id));  // width clamp, idempotent
      d.lo = std::max(d.lo, lo);
      d.hi = std::min(d.hi, hi);
      return !d.empty();
    }
    case ExprKind::kUnary:
      // ~x in [lo,hi]  <=>  x in [~hi,~lo]
      return constrain(e->lhs(), ~hi, ~lo, store);
    case ExprKind::kBinary:
      break;
  }
  // Binary: propagate through op with a constant on one side where the
  // inversion is exact. Anything else is left to the search phase.
  ExprPtr a0 = e->lhs();
  ExprPtr b0 = e->rhs();
  // Commutative ops with the constant on the left: swap.
  const bool swap = a0->is_const() && !b0->is_const() &&
                    (e->op() == ExprOp::kAdd || e->op() == ExprOp::kMul ||
                     e->op() == ExprOp::kAnd || e->op() == ExprOp::kOr ||
                     e->op() == ExprOp::kXor);
  ExprPtr a = swap ? b0 : a0;
  ExprPtr b = swap ? a0 : b0;
  if (b->is_const()) {
    const std::uint64_t c = b->const_value();
    switch (e->op()) {
      case ExprOp::kAdd: {
        // x + c in [lo,hi]: exact when the window doesn't wrap.
        const std::uint64_t nlo = lo - c;
        const std::uint64_t nhi = hi - c;
        if (nlo <= nhi) return constrain(a, nlo, nhi, store);
        return true;  // wrapped: imprecise, defer to search
      }
      case ExprOp::kSub: {
        const std::uint64_t nlo = lo + c;
        const std::uint64_t nhi = hi + c;
        if (nlo <= nhi) return constrain(a, nlo, nhi, store);
        return true;
      }
      case ExprOp::kShr: {
        // (x >> c) in [lo,hi] => x in [lo<<c, (hi<<c)|ones(c)] when no overflow.
        const std::uint64_t shift = c & 63;
        if (shift == 0) return constrain(a, lo, hi, store);
        if (hi <= (~0ULL >> shift)) {
          const std::uint64_t ones = (1ULL << shift) - 1;
          return constrain(a, lo << shift, (hi << shift) | ones, store);
        }
        return true;
      }
      case ExprOp::kShl: {
        const std::uint64_t shift = c & 63;
        if (shift == 0) return constrain(a, lo, hi, store);
        // (x << s) in [lo,hi] => x in [ceil(lo / 2^s), hi >> s].
        // Exact for the small header-arithmetic shifts NF constraints use
        // (wraparound would need x near 2^64, which field widths exclude).
        const std::uint64_t nlo = (lo + (1ULL << shift) - 1) >> shift;
        const std::uint64_t nhi = hi >> shift;
        if (nlo > nhi) return false;
        return constrain(a, nlo, nhi, store);
      }
      case ExprOp::kAnd:
        // The masked value can never exceed the mask.
        if (lo > c) return false;
        return true;  // exact bit pinning is left to the search phase
      default:
        return true;
    }
  }
  return true;
}

void Solver::propagate_into(DomainStore& store, ExprPtr c) const {
  if (store.infeasible) return;  // empty stays empty under intersection
  if (c->is_const()) {
    if (c->const_value() == 0) {
      store.const_false = true;
      store.infeasible = true;
    }
    return;
  }
  // Fold the constraint's symbols into the store's sorted symbol set once,
  // at add time, so feasibility checks never re-walk the whole set.
  sym_scratch_.clear();
  c->collect_symbols(sym_scratch_);
  for (const SymId id : sym_scratch_) {
    auto it = std::lower_bound(store.syms.begin(), store.syms.end(), id);
    if (it == store.syms.end() || *it != id) store.syms.insert(it, id);
  }
  if (c->kind() != ExprKind::kBinary) return;

  // Derived-expression view domains: comparisons against constants are
  // intersected per *interned* left-hand expression (pointer identity ==
  // structural identity). This catches contradictions the per-symbol pass
  // cannot invert — e.g. a chained NF re-deriving (x & 0xf) and branching
  // the other way, or a loop whose continuation bound conflicts with an
  // earlier exit bound.
  auto view_constrain = [&](ExprPtr expr, ExprOp op, std::uint64_t k) {
    if (expr->is_const()) return true;  // folded elsewhere
    Domain* d = nullptr;
    for (auto& [ve, vd] : store.views) {
      if (ve == expr) {
        d = &vd;
        break;
      }
    }
    if (d == nullptr) {
      store.views.emplace_back(expr, Domain{});
      d = &store.views.back().second;
    }
    switch (op) {
      case ExprOp::kEq:
        d->lo = std::max(d->lo, k);
        d->hi = std::min(d->hi, k);
        break;
      case ExprOp::kNe:
        d->excluded.push_back(k);
        break;
      case ExprOp::kLtU:
        if (k == 0) return false;
        d->hi = std::min(d->hi, k - 1);
        break;
      case ExprOp::kLeU:
        d->hi = std::min(d->hi, k);
        break;
      case ExprOp::kGtU:
        if (k == ~0ULL) return false;
        d->lo = std::max(d->lo, k + 1);
        break;
      case ExprOp::kGeU:
        d->lo = std::max(d->lo, k);
        break;
      default:
        return true;
    }
    if (d->empty()) return false;
    if (d->lo == d->hi) {
      for (const std::uint64_t x : d->excluded) {
        if (x == d->lo) return false;
      }
    }
    return true;
  };

  // Truthiness of the asserted constraint itself: `c` holds, so its value
  // is non-zero, i.e. >= 1 unsigned. Recorded as a view on c's own interned
  // node so that a later negation of the same guard — the executor emits
  // `(guard) == 0` for the false arm of a compound disjunction it cannot
  // mirror into a single comparison — contradicts it by pointer identity.
  // The per-symbol pass cannot catch this pair: a disjunction pins no
  // individual symbol's interval, so X ∧ (X == 0) used to survive all the
  // way to the bounded search and come back kUnknown (the fw→NAT
  // firewall:no_options/nat:invalid path).
  if (!view_constrain(c, ExprOp::kGeU, 1)) {
    store.infeasible = true;
    return;
  }

  ExprPtr a = c->lhs();
  ExprPtr b = c->rhs();
  // Normalise to have the constant on the right where possible.
  const bool const_right = b->is_const();
  const bool const_left = a->is_const();
  if (!const_right && !const_left) return;
  ExprPtr var = const_right ? a : b;
  const std::uint64_t k = (const_right ? b : a)->const_value();
  // Mirror the operator if the constant is on the left.
  ExprOp op = c->op();
  if (const_left) {
    switch (op) {
      case ExprOp::kLtU: op = ExprOp::kGtU; break;
      case ExprOp::kLeU: op = ExprOp::kGeU; break;
      case ExprOp::kGtU: op = ExprOp::kLtU; break;
      case ExprOp::kGeU: op = ExprOp::kLeU; break;
      default: break;  // kEq/kNe are symmetric
    }
  }
  if (!view_constrain(var, op, k)) {
    store.infeasible = true;
    return;
  }
  bool ok = true;
  switch (op) {
    case ExprOp::kEq:
      ok = constrain(var, k, k, store);
      break;
    case ExprOp::kNe:
      if (var->is_sym()) {
        const SymId id = var->sym_id();
        if (id >= store.by_sym.size()) store.by_sym.resize(id + 1);
        Domain& d = store.by_sym[id];
        d.hi = std::min(d.hi, max_value(id));
        d.excluded.push_back(k);
        if (d.lo == d.hi && d.lo == k) ok = false;
      }
      break;
    case ExprOp::kLtU:
      ok = k != 0 && constrain(var, 0, k - 1, store);
      break;
    case ExprOp::kLeU:
      ok = constrain(var, 0, k, store);
      break;
    case ExprOp::kGtU:
      ok = k != ~0ULL && constrain(var, k + 1, ~0ULL, store);
      break;
    case ExprOp::kGeU:
      ok = constrain(var, k, ~0ULL, store);
      break;
    default:
      break;
  }
  if (!ok) store.infeasible = true;
}

bool Solver::propagate(support::Span<const ExprPtr> constraints,
                       DomainStore& store) const {
  for (const ExprPtr& c : constraints) {
    propagate_into(store, c);
    if (store.infeasible) return false;
  }
  return true;
}

bool Solver::invert_assign(ExprPtr e, std::uint64_t target,
                           std::uint64_t* model, support::Rng& rng) const {
  switch (e->kind()) {
    case ExprKind::kConst:
      return e->const_value() == target;
    case ExprKind::kSym: {
      const SymId id = e->sym_id();
      model[id] = target & max_value(id);
      return true;
    }
    case ExprKind::kUnary:
      return invert_assign(e->lhs(), ~target, model, rng);
    case ExprKind::kBinary:
      break;
  }
  ExprPtr a0 = e->lhs();
  ExprPtr b0 = e->rhs();
  const bool const_left = a0->is_const() && !b0->is_const();
  ExprPtr var = const_left ? b0 : a0;
  ExprPtr konst = const_left ? a0 : b0;
  if (!konst->is_const()) {
    // Two variable sides: fix one at its current value, solve the other.
    ExprPtr hold = rng.chance(0.5) ? a0 : b0;
    ExprPtr move = hold == a0 ? b0 : a0;
    const std::uint64_t held = hold->eval_flat(model);
    std::uint64_t sub_target;
    switch (e->op()) {
      case ExprOp::kAdd: sub_target = target - held; break;
      case ExprOp::kXor: sub_target = target ^ held; break;
      case ExprOp::kSub:
        sub_target = move == a0 ? target + held : held - target;
        break;
      default:
        return false;
    }
    return invert_assign(move, sub_target, model, rng);
  }
  const std::uint64_t c = konst->const_value();
  const std::uint64_t current = var->eval_flat(model);
  switch (e->op()) {
    case ExprOp::kAdd:
      return invert_assign(var, target - c, model, rng);
    case ExprOp::kSub:
      return invert_assign(var, const_left ? c - target : target + c, model, rng);
    case ExprOp::kXor:
      return invert_assign(var, target ^ c, model, rng);
    case ExprOp::kShl: {
      const std::uint64_t s = c & 63;
      // Preserve the low bits the shift discards.
      const std::uint64_t low = s == 0 ? 0 : current & ((1ULL << s) - 1);
      return invert_assign(var, (target >> s) | low, model, rng);
    }
    case ExprOp::kShr: {
      const std::uint64_t s = c & 63;
      const std::uint64_t low = s == 0 ? 0 : current & ((1ULL << s) - 1);
      return invert_assign(var, (target << s) | low, model, rng);
    }
    case ExprOp::kAnd:
      // Set the masked bits to the target, keep the rest.
      if ((target & ~c) != 0) return false;  // impossible under this mask
      return invert_assign(var, (current & ~c) | (target & c), model, rng);
    case ExprOp::kOr:
      if ((target & c) != c) return false;  // the const bits are always set
      return invert_assign(var, (current & c) | (target & ~c), model, rng);
    case ExprOp::kMul:
      if (c != 0 && target % c == 0) {
        return invert_assign(var, target / c, model, rng);
      }
      return false;
    default:
      return false;
  }
}

bool Solver::repair(ExprPtr constraint, std::uint64_t* model,
                    support::Rng& rng) const {
  // Make `constraint` truthy under `model`.
  if (constraint->kind() == ExprKind::kBinary) {
    const ExprOp op = constraint->op();
    ExprPtr a = constraint->lhs();
    ExprPtr b = constraint->rhs();
    switch (op) {
      case ExprOp::kOr: {
        // Satisfy one branch (comparisons yield 0/1, so truthy | works).
        ExprPtr pick = rng.chance(0.5) ? a : b;
        return repair(pick, model, rng);
      }
      case ExprOp::kAnd: {
        // Both sides must be truthy; fix a failing one.
        if (a->eval_flat(model) == 0) return repair(a, model, rng);
        if (b->eval_flat(model) == 0) return repair(b, model, rng);
        return true;
      }
      case ExprOp::kEq: case ExprOp::kNe: case ExprOp::kLtU:
      case ExprOp::kLeU: case ExprOp::kGtU: case ExprOp::kGeU: {
        const bool const_left = a->is_const() && !b->is_const();
        ExprPtr var = const_left ? b : a;
        ExprPtr other = const_left ? a : b;
        const std::uint64_t k = other->eval_flat(model);
        ExprOp norm = op;
        if (const_left) {
          switch (op) {
            case ExprOp::kLtU: norm = ExprOp::kGtU; break;
            case ExprOp::kLeU: norm = ExprOp::kGeU; break;
            case ExprOp::kGtU: norm = ExprOp::kLtU; break;
            case ExprOp::kGeU: norm = ExprOp::kLeU; break;
            default: break;
          }
        }
        std::uint64_t target = k;
        switch (norm) {
          case ExprOp::kEq: target = k; break;
          case ExprOp::kNe: target = k + 1 + rng.below(7); break;
          case ExprOp::kLtU:
            if (k == 0) return false;
            target = rng.below(k);
            break;
          case ExprOp::kLeU: target = rng.below(k + 1); break;
          case ExprOp::kGtU:
            if (k == ~0ULL) return false;
            target = k + 1 + rng.below(16);
            break;
          case ExprOp::kGeU: target = k + rng.below(16); break;
          default: break;
        }
        return invert_assign(var, target, model, rng);
      }
      default:
        break;
    }
  }
  // Fallback: the constraint itself must evaluate non-zero.
  return invert_assign(constraint, 1, model, rng);
}

bool Solver::search(support::Span<const ExprPtr> constraints,
                    const DomainStore& store, int probes, Assignment* model_out,
                    const Witness* hint, Witness* witness_out,
                    bool repair_first, const std::vector<SymId>* syms_hint) const {
  // The symbols that actually appear: precomputed by propagate_into when
  // the caller maintained a DomainStore, collected here otherwise.
  std::vector<SymId> syms_local;
  if (syms_hint == nullptr) {
    for (const ExprPtr& c : constraints) c->collect_symbols(syms_local);
    std::sort(syms_local.begin(), syms_local.end());
    syms_local.erase(std::unique(syms_local.begin(), syms_local.end()),
                     syms_local.end());
  }
  const std::vector<SymId>& syms = syms_hint != nullptr ? *syms_hint : syms_local;

  // The search/repair inner loop runs on a flat SymId-indexed array — a
  // std::map lookup per symbol per eval was the single hottest line of the
  // whole generation pipeline.
  const SymId max_id = syms.empty() ? 0 : syms.back();
  if (flat_.size() < static_cast<std::size_t>(max_id) + 1) {
    flat_.resize(static_cast<std::size_t>(max_id) + 1, 0);
  }
  std::uint64_t* model = flat_.data();

  std::vector<std::uint64_t> dom_lo(syms.size()), dom_hi(syms.size());
  std::vector<const std::vector<std::uint64_t>*> dom_excl(syms.size());
  for (std::size_t i = 0; i < syms.size(); ++i) {
    read_domain(store, syms[i], dom_lo[i], dom_hi[i], &dom_excl[i]);
  }
  auto admissible = [&](std::size_t i, std::uint64_t v) {
    return v >= dom_lo[i] && v <= dom_hi[i] &&
           (dom_excl[i] == nullptr ||
            std::find(dom_excl[i]->begin(), dom_excl[i]->end(), v) ==
                dom_excl[i]->end());
  };

  // Candidate values per symbol: interval endpoints, harvested constants
  // (and neighbours), and a few fixed favourites. Built LAZILY — when a
  // warm-started initial assignment already satisfies the set (the common
  // case on the executor's fork hot path), none of this machinery runs.
  std::vector<std::uint64_t> harvested;
  bool harvested_built = false;
  auto ensure_harvested = [&] {
    if (harvested_built) return;
    harvested_built = true;
    for (const ExprPtr& c : constraints) c->collect_constants(harvested);
    std::sort(harvested.begin(), harvested.end());
    harvested.erase(std::unique(harvested.begin(), harvested.end()),
                    harvested.end());
  };
  /// First admissible value in the legacy candidate order (what
  /// candidates[i].front() used to be).
  auto front_value = [&](std::size_t i, bool& ok) -> std::uint64_t {
    ok = true;
    for (const std::uint64_t v :
         {dom_lo[i], dom_hi[i], std::uint64_t{0}, std::uint64_t{1}}) {
      if (admissible(i, v)) return v;
    }
    ensure_harvested();
    for (const std::uint64_t h : harvested) {
      if (admissible(i, h)) return h;
      if (admissible(i, h + 1)) return h + 1;
      if (admissible(i, h - 1)) return h - 1;
    }
    for (std::uint64_t v = dom_lo[i]; v <= dom_hi[i]; ++v) {
      if (admissible(i, v)) return v;
    }
    ok = false;
    return 0;
  };
  std::vector<std::vector<std::uint64_t>> candidates;
  auto build_candidates = [&]() -> bool {
    ensure_harvested();
    candidates.resize(syms.size());
    for (std::size_t i = 0; i < syms.size(); ++i) {
      auto& cand = candidates[i];
      auto push = [&](std::uint64_t v) {
        if (admissible(i, v) &&
            static_cast<int>(cand.size()) < options_.per_symbol_candidates) {
          cand.push_back(v);
        }
      };
      push(dom_lo[i]);
      push(dom_hi[i]);
      push(0);
      push(1);
      for (std::uint64_t h : harvested) {
        push(h);
        push(h + 1);
        push(h - 1);
      }
      if (cand.empty()) {
        // Domain may consist entirely of excluded endpoints; probe inward.
        for (std::uint64_t v = dom_lo[i]; v <= dom_hi[i] && cand.size() < 8;
             ++v) {
          push(v);
        }
      }
      if (cand.empty()) return false;
    }
    return true;
  };

  auto satisfied = [&] {
    for (const ExprPtr& c : constraints) {
      if (c->eval_flat(model) == 0) return false;
    }
    return true;
  };
  auto emit = [&] {
    if (model_out != nullptr) {
      for (const SymId id : syms) (*model_out)[id] = model[id];
    }
    if (witness_out != nullptr) {
      witness_out->clear();
      witness_out->reserve(syms.size());
      for (const SymId id : syms) witness_out->emplace_back(id, model[id]);
    }
    return true;
  };

  // Initial assignment: the caller's witness hint where it covers a
  // symbol, first candidate otherwise. A fork's hint is the parent path's
  // satisfying assignment, so this one evaluation usually settles it.
  {
    std::size_t hp = 0;  // hint and syms are both sorted: two-pointer merge
    for (std::size_t i = 0; i < syms.size(); ++i) {
      const SymId id = syms[i];
      if (hint != nullptr) {
        while (hp < hint->size() && (*hint)[hp].first < id) ++hp;
        if (hp < hint->size() && (*hint)[hp].first == id) {
          model[id] = (*hint)[hp].second;
          continue;
        }
      }
      bool ok = false;
      const std::uint64_t v = front_value(i, ok);
      if (!ok) return false;
      model[id] = v;
    }
  }
  if (satisfied()) return emit();

  support::Rng rng(options_.seed);

  // WalkSAT-style repair: pick a failing constraint and invert its
  // expression chain to satisfy it, occasionally randomising to escape
  // cycles. This is what cracks bit-level disjunctions (port allowlists,
  // bogon prefixes) that blind probing cannot hit — and, run first on a
  // warm-started assignment, what repairs the single new branch
  // constraint a fork added.
  auto repair_rounds = [&](int rounds) {
    for (int round = 0; round < rounds; ++round) {
      std::vector<ExprPtr> failing;
      for (const ExprPtr& c : constraints) {
        if (c->eval_flat(model) == 0) failing.push_back(c);
      }
      if (failing.empty()) return true;
      ExprPtr target = failing[rng.below(failing.size())];
      if (!repair(target, model, rng) || rng.chance(0.05)) {
        // Escape: randomise one involved symbol within its domain (picked
        // uniformly over symbol *occurrences*, the historical distribution).
        std::vector<SymId> involved;
        visit_symbol_occurrences(
            target, [&involved](SymId id) { involved.push_back(id); });
        if (!involved.empty()) {
          const SymId id = involved[rng.below(involved.size())];
          std::uint64_t lo, hi;
          read_domain(store, id, lo, hi, nullptr);
          model[id] =
              hi - lo == ~0ULL ? rng.next() : lo + rng.below(hi - lo + 1);
        }
      }
    }
    return false;
  };

  // Guided search: enumerate candidate combinations for small systems.
  auto odometer = [&] {
    std::uint64_t combo_budget = 1;
    for (const auto& cand : candidates) {
      combo_budget *= cand.size();
      if (combo_budget > 4096) break;
    }
    if (syms.empty() || combo_budget > 4096) return false;
    std::vector<std::size_t> idx(syms.size(), 0);
    while (true) {
      for (std::size_t i = 0; i < syms.size(); ++i) {
        model[syms[i]] = candidates[i][idx[i]];
      }
      if (satisfied()) return true;
      // Odometer increment.
      std::size_t k = 0;
      while (k < idx.size() && ++idx[k] == candidates[k].size()) {
        idx[k] = 0;
        ++k;
      }
      if (k == idx.size()) break;
    }
    return false;
  };

  if (repair_first) {
    // Quick-check ordering: the warm-started assignment broke on (usually)
    // one new constraint; targeted inversion beats candidate enumeration.
    if (repair_rounds(probes)) return emit();
    if (!build_candidates()) return false;
    if (odometer()) return emit();
  } else {
    if (!build_candidates()) return false;
    if (odometer()) return emit();
    if (repair_rounds(probes)) return emit();
  }

  // Last resort: blind random probing.
  for (int probe = 0; probe < probes; ++probe) {
    for (std::size_t i = 0; i < syms.size(); ++i) {
      std::uint64_t v;
      if (rng.chance(0.5) && !candidates[i].empty()) {
        v = candidates[i][rng.below(candidates[i].size())];
      } else if (dom_hi[i] - dom_lo[i] == ~0ULL) {
        v = rng.next();
      } else {
        v = dom_lo[i] + rng.below(dom_hi[i] - dom_lo[i] + 1);
      }
      model[syms[i]] = v;
    }
    if (satisfied()) return emit();
  }
  return false;
}

SolveStatus Solver::checked_search(support::Span<const ExprPtr> constraints,
                                   const DomainStore& store, int probes,
                                   const std::vector<SymId>* syms_hint) const {
  std::uint64_t key = 0;
  if (options_.memoize) {
    key = constraint_set_key(constraints);
    auto it = feas_memo_.find(key);
    if (it != feas_memo_.end()) {
      ++counters_.memo_hits;
      return it->second;
    }
    ++counters_.memo_misses;
  }
  const SolveStatus status =
      search(constraints, store, probes, nullptr, nullptr, nullptr,
             /*repair_first=*/false, syms_hint)
          ? SolveStatus::kSat
          : SolveStatus::kUnknown;
  if (options_.memoize) {
    if (feas_memo_.empty()) feas_memo_.reserve(64);  // skip early rehashes
    feas_memo_.emplace(key, status);
  }
  return status;
}

SolveResult Solver::solve(support::Span<const ExprPtr> constraints,
                          const Witness* hint) const {
  SolveResult result;
  DomainStore store;
  if (!propagate(constraints, store)) {
    result.status = SolveStatus::kUnsat;
    return result;
  }
  if (search(constraints, store, options_.random_probes, &result.model, hint,
             nullptr, /*repair_first=*/false, &store.syms)) {
    result.status = SolveStatus::kSat;
    return result;
  }
  result.status = SolveStatus::kUnknown;
  return result;
}

SolveStatus Solver::quick_check(support::Span<const ExprPtr> constraints) const {
  ++counters_.quick_checks;
  DomainStore store;
  if (!propagate(constraints, store)) return SolveStatus::kUnsat;
  return checked_search(constraints, store, options_.random_probes / 8,
                        &store.syms);
}

SolveStatus Solver::quick_check_incremental(
    DomainStore& store, support::Span<const ExprPtr> constraints) const {
  ++counters_.quick_checks;
  if (store.infeasible) return SolveStatus::kUnsat;

  // Verified-prefix fast path: the witness is known to satisfy
  // constraints [0, checked_upto), so only the appended suffix needs an
  // evaluation (new symbols the suffix introduced default to 0, which is
  // sound — any total assignment that satisfies everything proves sat).
  if (store.checked_upto > 0 && store.checked_upto <= constraints.size() &&
      !store.witness.empty() && !store.syms.empty()) {
    const SymId max_id = store.syms.back();
    if (flat_.size() < static_cast<std::size_t>(max_id) + 1) {
      flat_.resize(static_cast<std::size_t>(max_id) + 1, 0);
    }
    std::uint64_t* flat = flat_.data();
    {  // witness and syms are sorted: merge-assign, zero-default the rest
      std::size_t wp = 0;
      for (const SymId id : store.syms) {
        while (wp < store.witness.size() && store.witness[wp].first < id) ++wp;
        flat[id] = (wp < store.witness.size() && store.witness[wp].first == id)
                       ? store.witness[wp].second
                       : 0;
      }
    }
    bool suffix_ok = true;
    for (std::size_t i = store.checked_upto; i < constraints.size(); ++i) {
      if (constraints[i]->eval_flat(flat) == 0) {
        suffix_ok = false;
        break;
      }
    }
    if (suffix_ok) {
      ++counters_.witness_hits;
      store.witness.clear();
      store.witness.reserve(store.syms.size());
      for (const SymId id : store.syms) store.witness.emplace_back(id, flat[id]);
      store.checked_upto = constraints.size();
      return SolveStatus::kSat;
    }
  }

  // Warm start: the inherited witness satisfied every constraint but the
  // ones this fork just added; one evaluation plus targeted repair of the
  // new constraint settles the overwhelming majority of checks without
  // touching the candidate machinery. No constraint-set memo here — see
  // the header: the witness chain must be a pure function of the path.
  ++counters_.witness_searches;
  const Witness hint = store.witness;  // search rewrites store.witness
  const bool sat =
      search(constraints, store, options_.random_probes / 8, nullptr,
             hint.empty() ? nullptr : &hint, &store.witness,
             /*repair_first=*/!hint.empty(), &store.syms);
  if (sat) {
    store.checked_upto = constraints.size();
    return SolveStatus::kSat;
  }
  return SolveStatus::kUnknown;
}

}  // namespace bolt::symbex
