#include "symbex/executor.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <iterator>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "support/assert.h"
#include "support/random.h"
#include "support/thread_pool.h"

namespace bolt::symbex {

std::string PathResult::class_label() const {
  std::string out;
  for (const auto& tag : class_tags) {
    if (!out.empty()) out += '/';
    out += tag;
  }
  return out.empty() ? "(untagged)" : out;
}

ModelOutcome fresh_value_outcome(SymbolTable& symbols, const std::string& label,
                                 const std::string& sym_name, int width_bits) {
  ModelOutcome outcome;
  outcome.case_label = label;
  outcome.ret0 = Expr::symbol(symbols.fresh(sym_name, width_bits));
  return outcome;
}

struct Executor::State {
  std::size_t prog_index = 0;
  std::size_t pc = 0;
  std::uint64_t steps = 0;
  std::vector<ExprPtr> regs;
  std::vector<ExprPtr> locals;
  std::vector<ExprPtr> scratch;  // shared layout, copied on fork
  PathResult path;
  /// The solver's propagated domains over path.constraints, maintained
  /// incrementally: every constraint pushed onto the path is folded in at
  /// push time, so feasibility checks never re-propagate the whole set.
  DomainStore inc;
  // Packet field symbols (shared packet across a chain).
  std::map<std::pair<std::uint64_t, std::uint8_t>, SymId> field_syms;
  // Packet writes, newest last.
  std::vector<std::tuple<std::uint64_t, std::uint8_t, ExprPtr>> writes;
};

// Shared state of one exploration run.
//
// Work distribution is per-worker deques with randomized stealing
// (Chase-Lev-style discipline under a per-deque mutex: the owner pushes
// and pops at the back — DFS-like memory use — while thieves take from
// the front, which holds the oldest forks and therefore the biggest
// unexplored subtrees). `in_flight` counts states that are queued or
// currently executing; exploration terminates exactly when it reaches
// zero. Workers spawn on demand: the calling thread explores inline, and
// extra workers are only started when a push leaves backlog behind. An NF
// with two paths never pays for a 64-thread team; a big chain ramps up to
// the configured width within a few forks.
struct Executor::Explore {
  struct alignas(64) WorkerQueue {
    std::mutex mutex;
    std::deque<State> deque;
  };

  std::vector<std::unique_ptr<WorkerQueue>> queues;  // max_workers entries
  std::atomic<std::size_t> in_flight{0};  // queued + executing states
  std::atomic<std::size_t> total_workers{1};  // spawned + inline caller
  std::size_t max_workers = 1;
  std::mutex spawn_mutex;
  std::vector<std::thread> spawned;
  Executor* owner = nullptr;

  // Starved workers block here until a push or termination wakes them —
  // no polling. `push_gen` ticks on every push; a worker snapshots it
  // BEFORE scanning the deques, so a push it raced with either shows up
  // in the scan or flips the wait predicate. Pushers only take the sleep
  // mutex when `sleepers` says someone is actually parked (the seq_cst
  // ordering of sleepers/push_gen closes the pred-vs-notify window).
  std::mutex sleep_mutex;
  std::condition_variable cv;
  std::atomic<std::uint64_t> push_gen{0};
  std::atomic<std::size_t> sleepers{0};  // mutated under sleep_mutex

  // Completed paths keyed by their scheduling-independent structural
  // signature. When max_paths truncates, the *largest* signatures are
  // evicted, so the surviving set is the canonical prefix of the full
  // sorted path set — identical at any thread count (exploration still
  // visits every path; only memory is bounded by the budget).
  std::mutex results_mutex;
  std::multimap<std::string, PathResult> results;
  std::size_t truncated = 0;  // completed paths evicted by the budget
  std::atomic<std::size_t> pruned{0};
  std::atomic<std::size_t> abandoned{0};
  std::atomic<std::size_t> unknowns{0};
  std::atomic<std::size_t> steals{0};
  std::atomic<std::uint64_t> solver_calls{0};
  std::atomic<std::uint64_t> memo_hits{0};
  std::atomic<std::uint64_t> memo_misses{0};

  void push(std::size_t self, State s) {
    in_flight.fetch_add(1, std::memory_order_acq_rel);
    if (max_workers == 1) {
      // Serial exploration (the developer edit-compile loop): no other
      // worker can exist, so skip the deque lock and the wakeup.
      queues[self]->deque.push_back(std::move(s));
      return;
    }
    bool backlog;
    {
      WorkerQueue& q = *queues[self];
      std::lock_guard<std::mutex> lock(q.mutex);
      q.deque.push_back(std::move(s));
      backlog = q.deque.size() > 1;
    }
    push_gen.fetch_add(1);
    // Backlog beyond what this pusher will pop itself: grow the team.
    if (backlog && total_workers.load(std::memory_order_relaxed) < max_workers) {
      std::lock_guard<std::mutex> lock(spawn_mutex);
      const std::size_t idx = total_workers.load(std::memory_order_relaxed);
      if (idx < max_workers) {
        total_workers.store(idx + 1, std::memory_order_relaxed);
        Executor* exec = owner;
        spawned.emplace_back([exec, this, idx] { exec->explore_worker(*this, idx); });
      }
    }
    if (sleepers.load() > 0) {
      std::lock_guard<std::mutex> lock(sleep_mutex);
      cv.notify_one();
    }
  }

  bool pop_own(std::size_t self, State& out) {
    WorkerQueue& q = *queues[self];
    if (max_workers == 1) {
      if (q.deque.empty()) return false;
      out = std::move(q.deque.back());
      q.deque.pop_back();
      return true;
    }
    std::lock_guard<std::mutex> lock(q.mutex);
    if (q.deque.empty()) return false;
    out = std::move(q.deque.back());
    q.deque.pop_back();
    return true;
  }

  bool steal(std::size_t self, support::Rng& rng, State& out) {
    const std::size_t n = total_workers.load(std::memory_order_acquire);
    if (n <= 1) return false;
    // Randomized victim selection: one full sweep from a random start.
    const std::size_t start = rng.below(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t victim = (start + i) % n;
      if (victim == self) continue;
      WorkerQueue& q = *queues[victim];
      std::lock_guard<std::mutex> lock(q.mutex);
      if (q.deque.empty()) continue;
      out = std::move(q.deque.front());
      q.deque.pop_front();
      steals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    return false;
  }
};

/// Per-worker context: the deque index, a private Solver (whose
/// feasibility memo therefore never needs a lock), and the steal rng.
struct Executor::WorkerCtx {
  std::size_t index;
  Solver solver;
  support::Rng rng;
};

namespace {

/// Visits every symbol a path references (via the canonical occurrence
/// traversal in expr.h), in a deterministic order that depends only on
/// the path's structure (never on global symbol ids).
template <typename Fn>
void visit_path_symbols(const PathResult& p, const Fn& fn) {
  for (const PacketField& f : p.fields) fn(f.sym);
  if (p.has_len_sym) fn(p.len_sym);
  if (p.has_port_sym) fn(p.port_sym);
  if (p.has_time_sym) fn(p.time_sym);
  for (const ExprPtr& c : p.constraints) visit_symbol_occurrences(c, fn);
  for (const PathCall& c : p.calls) {
    visit_symbol_occurrences(c.arg0, fn);
    visit_symbol_occurrences(c.arg1, fn);
    visit_symbol_occurrences(c.ret0, fn);
    visit_symbol_occurrences(c.ret1, fn);
  }
  visit_symbol_occurrences(p.out_port, fn);
}

/// First-use local symbol numbering for path signatures. Paths reference a
/// handful of symbols, so a flat vector beats a std::map.
struct LocalNamer {
  std::vector<SymId> order;  // index == local number
  std::size_t local_of(SymId id) {
    for (std::size_t i = 0; i < order.size(); ++i) {
      if (order[i] == id) return i;
    }
    order.push_back(id);
    return order.size() - 1;
  }
};

/// Appends exactly what Expr::str would produce (with symbols named
/// "s<local#>") without building any intermediate strings — signatures are
/// computed once per completed path and were the hottest string code in
/// exploration.
void append_sig_expr(ExprPtr e, LocalNamer& names, std::string& out) {
  switch (e->kind()) {
    case ExprKind::kConst:
      out += std::to_string(e->const_value());
      return;
    case ExprKind::kSym:
      out += 's';
      out += std::to_string(names.local_of(e->sym_id()));
      return;
    case ExprKind::kUnary:
      out += "~(";
      append_sig_expr(e->lhs(), names, out);
      out += ')';
      return;
    case ExprKind::kBinary:
      out += '(';
      append_sig_expr(e->lhs(), names, out);
      out += ' ';
      out += expr_op_name(e->op());
      out += ' ';
      append_sig_expr(e->rhs(), names, out);
      out += ')';
      return;
  }
}

/// A scheduling-independent structural key for a path: every symbol is
/// named by its first-use index *within this path*, so two runs that
/// explored the same path under different interleavings (and therefore
/// minted different global symbol ids) produce identical signatures.
std::string path_signature(const PathResult& p) {
  LocalNamer names;

  std::string sig;
  sig.reserve(256);
  sig += p.action == PathAction::kForward ? 'F' : 'D';
  for (const std::string& tag : p.class_tags) {
    sig += '|';
    sig += tag;
  }
  for (const auto& [loop, trips] : p.loop_trips) {
    sig += ";L" + std::to_string(loop) + "=" + std::to_string(trips);
  }
  for (const PacketField& f : p.fields) {
    sig += ";f" + std::to_string(f.offset) + ":" + std::to_string(f.width);
  }
  // Register input symbols first so local numbering matches the canonical
  // visit order exactly.
  visit_path_symbols(p, [&names](SymId id) { (void)names.local_of(id); });
  for (const ExprPtr& c : p.constraints) {
    sig += ";c";
    append_sig_expr(c, names, sig);
  }
  for (const PathCall& c : p.calls) {
    sig += ";m" + std::to_string(c.method) + "=" + c.case_label;
    if (c.arg0 != nullptr) { sig += ",a0:"; append_sig_expr(c.arg0, names, sig); }
    if (c.arg1 != nullptr) { sig += ",a1:"; append_sig_expr(c.arg1, names, sig); }
    if (c.ret0 != nullptr) { sig += ",r0:"; append_sig_expr(c.ret0, names, sig); }
    if (c.ret1 != nullptr) { sig += ",r1:"; append_sig_expr(c.ret1, names, sig); }
  }
  if (p.out_port != nullptr) {
    sig += ";o";
    append_sig_expr(p.out_port, names, sig);
  }
  return sig;
}

}  // namespace

Executor::Executor(std::vector<const ir::Program*> programs,
                   std::map<std::int64_t, SymbolicModel> models,
                   ExecutorOptions options)
    : programs_(std::move(programs)),
      models_(std::move(models)),
      options_(std::move(options)) {
  BOLT_CHECK(!programs_.empty(), "executor needs at least one program");
  for (const ir::Program* p : programs_) p->validate();
}

void Executor::enter_program(State& s, std::size_t index) const {
  s.prog_index = index;
  s.pc = 0;
  const ir::Program& p = *programs_[index];
  s.regs.assign(static_cast<std::size_t>(p.num_regs), nullptr);
  s.locals.assign(static_cast<std::size_t>(p.num_locals), Expr::constant(0));
  if (p.scratch_slots > 0 && s.scratch.empty()) {
    s.scratch.resize(p.scratch_slots, Expr::constant(0));
    for (std::size_t i = 0;
         i < std::min(options_.scratch_init.size(), p.scratch_slots); ++i) {
      s.scratch[i] = Expr::constant(options_.scratch_init[i]);
    }
  }
}

void Executor::execute_state(State s, WorkerCtx& ctx, Explore& sh) {
  // Appends a constraint to a state's path AND folds it into the state's
  // cached solver domains, keeping the two in lockstep. Propagating here —
  // once, where the constraint is born — is what makes every later
  // feasibility check O(new constraint) instead of O(whole path).
  auto add_constraint = [&](State& st, ExprPtr c) {
    st.path.constraints.push_back(c);
    if (options_.prune_infeasible) ctx.solver.propagate_into(st.inc, c);
  };

  auto ensure_len_sym = [&](State& st) {
    if (!st.path.has_len_sym) {
      st.path.len_sym = symbols_.fresh("pkt.len", 16);
      st.path.has_len_sym = true;
      const ExprPtr len = Expr::symbol(st.path.len_sym);
      add_constraint(st, Expr::binary(ExprOp::kGeU, len, Expr::constant(60)));
      add_constraint(st, Expr::binary(ExprOp::kLeU, len, Expr::constant(1514)));
    }
  };

  // Feasibility probe for a candidate extension of a path: the new
  // constraints were already folded into st.inc by add_constraint, so
  // propagation contradictions are already known, and the bounded
  // sat-search is memoized per constraint-set hash inside the solver.
  auto feasible = [&](State& st) {
    if (!options_.prune_infeasible) return true;
    if (st.inc.const_false) return false;  // constant-false fast path
    if (st.inc.infeasible) {
      sh.pruned.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const SolveStatus status =
        ctx.solver.quick_check_incremental(st.inc, st.path.constraints);
    if (status == SolveStatus::kUnknown) {
      sh.unknowns.fetch_add(1, std::memory_order_relaxed);
    }
    return true;  // kSat and kUnknown both keep the path alive
  };

  // Sinks a completed path into the signature-ordered result set. The
  // max_paths budget truncates *canonically*: the set keeps the
  // `max_paths` smallest signatures seen so far and evicts the largest,
  // so the final set is the same canonical prefix no matter which worker
  // finished which path first (the signature is computed outside the lock;
  // it only depends on the path's structure).
  auto complete = [&](PathResult path) {
    std::string sig = path_signature(path);
    std::lock_guard<std::mutex> lock(sh.results_mutex);
    if (sh.results.size() >= options_.max_paths) {
      ++sh.truncated;
      if (sh.results.empty()) return;  // a zero budget keeps nothing
      auto last = std::prev(sh.results.end());
      if (sig >= last->first) return;  // beyond the canonical prefix
      sh.results.erase(last);
    }
    sh.results.emplace(std::move(sig), std::move(path));
  };

  bool alive = true;
  while (alive) {
    const ir::Program& prog = *programs_[s.prog_index];
    BOLT_CHECK(s.pc < prog.code.size(), prog.name + ": symbolic pc escape");
    if (++s.steps > options_.max_steps_per_path) {
      sh.abandoned.fetch_add(1, std::memory_order_relaxed);
      alive = false;
      break;
    }
    const ir::Instr& ins = prog.code[s.pc];
    std::size_t next = s.pc + 1;

    if (!ir::is_annotation(ins.op)) {
      ++s.path.symbex_instructions;
      if (ir::is_memory_op(ins.op)) ++s.path.symbex_accesses;
    }

    auto R = [&](ir::Reg r) -> const ExprPtr& {
      BOLT_CHECK(r >= 0 && s.regs[static_cast<std::size_t>(r)] != nullptr,
                 prog.name + ": read of undefined register");
      return s.regs[static_cast<std::size_t>(r)];
    };
    auto setR = [&](ir::Reg r, ExprPtr v) {
      s.regs[static_cast<std::size_t>(r)] = v;
    };
    auto concrete_u64 = [&](const ExprPtr& e, const char* what) {
      BOLT_CHECK(e->is_const(), prog.name + ": symbolic " + what +
                                    " not supported by the executor");
      return e->const_value();
    };

    switch (ins.op) {
      case ir::Op::kConst:
        setR(ins.dst, Expr::constant(static_cast<std::uint64_t>(ins.imm)));
        break;
      case ir::Op::kMov:
        setR(ins.dst, R(ins.a));
        break;
      case ir::Op::kNot:
        setR(ins.dst, Expr::unary(ExprOp::kNot, R(ins.a)));
        break;
      case ir::Op::kAdd: setR(ins.dst, Expr::binary(ExprOp::kAdd, R(ins.a), R(ins.b))); break;
      case ir::Op::kSub: setR(ins.dst, Expr::binary(ExprOp::kSub, R(ins.a), R(ins.b))); break;
      case ir::Op::kMul: setR(ins.dst, Expr::binary(ExprOp::kMul, R(ins.a), R(ins.b))); break;
      case ir::Op::kAnd: setR(ins.dst, Expr::binary(ExprOp::kAnd, R(ins.a), R(ins.b))); break;
      case ir::Op::kOr:  setR(ins.dst, Expr::binary(ExprOp::kOr, R(ins.a), R(ins.b))); break;
      case ir::Op::kXor: setR(ins.dst, Expr::binary(ExprOp::kXor, R(ins.a), R(ins.b))); break;
      case ir::Op::kShl: setR(ins.dst, Expr::binary(ExprOp::kShl, R(ins.a), R(ins.b))); break;
      case ir::Op::kShr: setR(ins.dst, Expr::binary(ExprOp::kShr, R(ins.a), R(ins.b))); break;
      case ir::Op::kEq:  setR(ins.dst, Expr::binary(ExprOp::kEq, R(ins.a), R(ins.b))); break;
      case ir::Op::kNe:  setR(ins.dst, Expr::binary(ExprOp::kNe, R(ins.a), R(ins.b))); break;
      case ir::Op::kLtU: setR(ins.dst, Expr::binary(ExprOp::kLtU, R(ins.a), R(ins.b))); break;
      case ir::Op::kLeU: setR(ins.dst, Expr::binary(ExprOp::kLeU, R(ins.a), R(ins.b))); break;
      case ir::Op::kGtU: setR(ins.dst, Expr::binary(ExprOp::kGtU, R(ins.a), R(ins.b))); break;
      case ir::Op::kGeU: setR(ins.dst, Expr::binary(ExprOp::kGeU, R(ins.a), R(ins.b))); break;

      case ir::Op::kLoadPkt: {
        const std::uint64_t offset = concrete_u64(R(ins.a), "packet offset");
        const std::uint8_t width = ins.width;
        // Most recent overlapping write wins; require exact ranges.
        ExprPtr from_write = nullptr;
        for (auto it = s.writes.rbegin(); it != s.writes.rend(); ++it) {
          const auto& [woff, wwidth, wexpr] = *it;
          const bool overlap =
              offset < woff + wwidth && woff < offset + width;
          if (!overlap) continue;
          BOLT_CHECK(woff == offset && wwidth == width,
                     prog.name + ": partially overlapping packet access");
          from_write = wexpr;
          break;
        }
        if (from_write != nullptr) {
          setR(ins.dst, from_write);
          break;
        }
        const auto key = std::make_pair(offset, width);
        auto it = s.field_syms.find(key);
        SymId sym;
        if (it != s.field_syms.end()) {
          sym = it->second;
        } else {
          for (const auto& [k, v] : s.field_syms) {
            const bool overlap =
                offset < k.first + k.second && k.first < offset + width;
            BOLT_CHECK(!overlap || (k.first == offset && k.second == width),
                       prog.name + ": partially overlapping packet fields");
          }
          sym = symbols_.fresh("pkt[" + std::to_string(offset) + ":" +
                                   std::to_string(width) + "]",
                               8 * width);
          s.field_syms.emplace(key, sym);
          s.path.fields.push_back(PacketField{offset, width, sym});
          if (offset + width > 60) {
            ensure_len_sym(s);
            add_constraint(
                s, Expr::binary(ExprOp::kGeU, Expr::symbol(s.path.len_sym),
                                Expr::constant(offset + width)));
          }
        }
        setR(ins.dst, Expr::symbol(sym));
        break;
      }
      case ir::Op::kStorePkt: {
        const std::uint64_t offset = concrete_u64(R(ins.a), "packet offset");
        s.writes.emplace_back(offset, ins.width, R(ins.b));
        break;
      }
      case ir::Op::kPktLen: {
        ensure_len_sym(s);
        setR(ins.dst, Expr::symbol(s.path.len_sym));
        break;
      }
      case ir::Op::kPktPort: {
        if (!s.path.has_port_sym) {
          s.path.port_sym = symbols_.fresh("pkt.port", 16);
          s.path.has_port_sym = true;
        }
        setR(ins.dst, Expr::symbol(s.path.port_sym));
        break;
      }
      case ir::Op::kPktTime: {
        if (!s.path.has_time_sym) {
          s.path.time_sym = symbols_.fresh("pkt.time", 64);
          s.path.has_time_sym = true;
        }
        setR(ins.dst, Expr::symbol(s.path.time_sym));
        break;
      }
      case ir::Op::kLoadLocal:
        setR(ins.dst, s.locals[static_cast<std::size_t>(ins.imm)]);
        break;
      case ir::Op::kStoreLocal:
        s.locals[static_cast<std::size_t>(ins.imm)] = R(ins.a);
        break;
      case ir::Op::kLoadMem: {
        const std::uint64_t slot = concrete_u64(R(ins.a), "scratch index");
        BOLT_CHECK(slot < s.scratch.size(),
                   prog.name + ": scratch load out of range");
        setR(ins.dst, s.scratch[slot]);
        break;
      }
      case ir::Op::kStoreMem: {
        const std::uint64_t slot = concrete_u64(R(ins.a), "scratch index");
        BOLT_CHECK(slot < s.scratch.size(),
                   prog.name + ": scratch store out of range");
        s.scratch[slot] = R(ins.b);
        break;
      }

      case ir::Op::kCall: {
        auto mit = models_.find(ins.imm);
        BOLT_CHECK(mit != models_.end(),
                   prog.name + ": no symbolic model for method " +
                       std::to_string(ins.imm));
        const ExprPtr arg0 = ins.a != ir::kNoReg ? R(ins.a) : nullptr;
        const ExprPtr arg1 = ins.b != ir::kNoReg ? R(ins.b) : nullptr;
        std::vector<ModelOutcome> outcomes = mit->second(symbols_, arg0, arg1);
        BOLT_CHECK(!outcomes.empty(), "model produced no outcomes");

        // Fork one state per feasible outcome onto this worker's deque.
        bool continued = false;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
          ModelOutcome& outcome = outcomes[i];
          State candidate = (i + 1 == outcomes.size() && !continued)
                                ? std::move(s)
                                : s;  // last reuse avoids one copy
          for (const ExprPtr& c : outcome.constraints) {
            add_constraint(candidate, c);
          }
          if (!outcome.constraints.empty() && !feasible(candidate)) {
            continue;
          }
          PathCall call;
          call.method = ins.imm;
          call.case_label = outcome.case_label;
          call.arg0 = arg0;
          call.arg1 = arg1;
          call.ret0 = outcome.ret0 != nullptr ? outcome.ret0 : Expr::constant(0);
          call.ret1 = outcome.ret1 != nullptr ? outcome.ret1 : Expr::constant(0);
          candidate.path.calls.push_back(call);
          if (ins.dst != ir::kNoReg) {
            candidate.regs[static_cast<std::size_t>(ins.dst)] = call.ret0;
          }
          if (ins.dst2 != ir::kNoReg) {
            candidate.regs[static_cast<std::size_t>(ins.dst2)] = call.ret1;
          }
          candidate.pc = next;
          sh.push(ctx.index, std::move(candidate));
          continued = true;
        }
        // All outcomes pushed onto the deque; current state is done.
        alive = false;
        break;
      }

      case ir::Op::kBr: {
        const ExprPtr cond = R(ins.a);
        if (cond->is_const()) {
          next = cond->const_value() != 0 ? static_cast<std::size_t>(ins.t)
                                          : static_cast<std::size_t>(ins.f);
          break;
        }
        // Fork: true branch continues in place, false branch is pushed.
        State false_state = s;
        add_constraint(false_state, logical_not(cond));
        false_state.pc = static_cast<std::size_t>(ins.f);
        if (feasible(false_state)) {
          sh.push(ctx.index, std::move(false_state));
        }
        add_constraint(s, cond);
        if (!feasible(s)) {
          alive = false;
          break;
        }
        next = static_cast<std::size_t>(ins.t);
        break;
      }
      case ir::Op::kJmp:
        next = static_cast<std::size_t>(ins.t);
        break;

      case ir::Op::kForward: {
        if (s.prog_index + 1 < programs_.size()) {
          // Chain hand-off: next NF sees the (possibly rewritten) packet.
          enter_program(s, s.prog_index + 1);
          next = 0;
          break;
        }
        s.path.action = PathAction::kForward;
        s.path.out_port = R(ins.a);
        s.path.witness = std::move(s.inc.witness);
        complete(std::move(s.path));
        alive = false;
        break;
      }
      case ir::Op::kDrop: {
        s.path.action = PathAction::kDrop;
        s.path.witness = std::move(s.inc.witness);
        complete(std::move(s.path));
        alive = false;
        break;
      }

      case ir::Op::kClassTag: {
        std::string tag = prog.class_tags[static_cast<std::size_t>(ins.imm)];
        if (programs_.size() > 1) tag = prog.name + ":" + tag;
        s.path.class_tags.push_back(std::move(tag));
        break;
      }
      case ir::Op::kLoopHead: {
        // Loop ids are namespaced per program within a chain.
        const std::int64_t loop_key =
            static_cast<std::int64_t>(s.prog_index) * 1000 + ins.imm;
        const std::uint64_t trips = ++s.path.loop_trips[loop_key];
        if (trips > options_.max_loop_trips) {
          sh.abandoned.fetch_add(1, std::memory_order_relaxed);
          alive = false;
        }
        break;
      }
    }
    if (alive && ins.op != ir::Op::kCall) s.pc = next;
    if (ins.op == ir::Op::kCall) break;  // state consumed by forks
  }
}

void Executor::explore_worker(Explore& sh, std::size_t self) {
  WorkerCtx ctx{self, Solver(symbols_, options_.solver),
                support::Rng(options_.solver.seed ^
                             (0x9e3779b97f4a7c15ULL * (self + 1)))};
  for (;;) {
    // Snapshot the push generation BEFORE scanning: any state enqueued
    // earlier is visible to the scan, any state enqueued later bumps the
    // generation and flips the wait predicate below.
    const std::uint64_t gen = sh.push_gen.load();
    State s;
    if (sh.pop_own(self, s) || sh.steal(self, ctx.rng, s)) {
      execute_state(std::move(s), ctx, sh);
      // The state (and everything it forked) is accounted; if this was the
      // last in-flight state anywhere, wake the sleepers so they exit.
      if (sh.in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(sh.sleep_mutex);
        sh.cv.notify_all();
      }
      continue;
    }
    if (sh.in_flight.load(std::memory_order_acquire) == 0) break;
    // Starved but exploration is still running somewhere: park until a
    // push or termination pokes us (no polling — an idle worker costs
    // nothing while a sibling grinds through a deep serial tail).
    std::unique_lock<std::mutex> lock(sh.sleep_mutex);
    sh.sleepers.fetch_add(1);
    sh.cv.wait(lock, [&] {
      return sh.push_gen.load() != gen || sh.in_flight.load() == 0;
    });
    sh.sleepers.fetch_sub(1);
  }
  // Fold this worker's solver instrumentation into the shared totals. The
  // feasibility cache on the exploration path is the witness/verified-
  // prefix cache (deterministic — the constraint-set memo is bypassed
  // there precisely so results cannot depend on scheduling).
  const Solver::Counters& c = ctx.solver.counters();
  sh.solver_calls.fetch_add(c.quick_checks, std::memory_order_relaxed);
  sh.memo_hits.fetch_add(c.witness_hits, std::memory_order_relaxed);
  sh.memo_misses.fetch_add(c.witness_searches, std::memory_order_relaxed);
}

std::vector<PathResult> Executor::run() {
  Explore sh;
  sh.owner = this;
  sh.max_workers = support::resolve_threads(options_.threads);
  sh.queues.reserve(sh.max_workers);
  for (std::size_t i = 0; i < sh.max_workers; ++i) {
    sh.queues.push_back(std::make_unique<Explore::WorkerQueue>());
  }
  {
    State init;
    enter_program(init, 0);
    sh.in_flight.store(1, std::memory_order_relaxed);
    sh.queues[0]->deque.push_back(std::move(init));
  }

  explore_worker(sh, 0);
  // Join demand-spawned workers; a straggler can spawn more while we join,
  // so drain in batches until none remain.
  for (;;) {
    std::vector<std::thread> batch;
    {
      std::lock_guard<std::mutex> lock(sh.spawn_mutex);
      batch.swap(sh.spawned);
    }
    if (batch.empty()) break;
    for (std::thread& t : batch) t.join();
  }

  stats_.completed_paths = sh.results.size();
  stats_.truncated_paths = sh.truncated;
  stats_.pruned_branches = sh.pruned.load();
  stats_.abandoned_paths = sh.abandoned.load();
  stats_.solver_unknowns = sh.unknowns.load();
  stats_.steal_count = sh.steals.load();
  stats_.solver_calls = sh.solver_calls.load();
  stats_.feas_cache_hits = sh.memo_hits.load();
  stats_.feas_cache_misses = sh.memo_misses.load();

  // The result sink already holds the paths in canonical signature order;
  // all that remains is the canonical symbol renumbering over that order.
  std::vector<PathResult> paths;
  paths.reserve(sh.results.size());
  for (auto& [sig, path] : sh.results) paths.push_back(std::move(path));
  canonicalize(paths);
  return paths;
}

void Executor::canonicalize(std::vector<PathResult>& paths) {
  if (paths.empty()) return;

  // The caller (run()'s result sink) already ordered the paths by their
  // scheduling-independent structural signature; recomputing signatures
  // and re-sorting here would be pure waste on the generation hot path.

  // 1) Renumber symbols in first-use order over the sorted paths. Shared
  //    prefix symbols keep one id (the first path that uses them wins).
  std::map<SymId, SymId> remap;
  std::vector<std::pair<std::string, int>> entries;
  auto assign = [&](SymId old_id) {
    if (remap.emplace(old_id, static_cast<SymId>(entries.size())).second) {
      entries.emplace_back(symbols_.name(old_id), symbols_.width_bits(old_id));
    }
  };
  for (const PathResult& p : paths) visit_path_symbols(p, assign);

  // Single-worker exploration (the developer edit-compile loop) mints
  // symbols in exactly first-use order, so the remap is the identity: the
  // rewrite below would rebuild every node to itself. An identity remap
  // also means the used symbols are the dense prefix [0, n) of the table,
  // so rebuilding the (identical, possibly truncated) entry list is all
  // that canonicalization requires.
  bool identity = true;
  for (const auto& [old_id, new_id] : remap) {
    if (old_id != new_id) {
      identity = false;
      break;
    }
  }
  if (identity) {
    symbols_.rebuild(std::move(entries));
    return;
  }

  // 2) Rewrite every expression. Interning preserves DAG sharing by
  //    construction; the memo only avoids re-walking shared subgraphs.
  std::map<ExprPtr, ExprPtr> memo;
  std::function<ExprPtr(ExprPtr)> rewrite = [&](ExprPtr e) -> ExprPtr {
    if (e == nullptr) return nullptr;
    auto it = memo.find(e);
    if (it != memo.end()) return it->second;
    ExprPtr out = nullptr;
    switch (e->kind()) {
      case ExprKind::kConst:
        out = e;
        break;
      case ExprKind::kSym: {
        auto rit = remap.find(e->sym_id());
        BOLT_CHECK(rit != remap.end(), "canonicalize: unmapped symbol");
        out = Expr::symbol(rit->second);
        break;
      }
      case ExprKind::kUnary:
        out = Expr::unary(e->op(), rewrite(e->lhs()));
        break;
      case ExprKind::kBinary:
        out = Expr::binary(e->op(), rewrite(e->lhs()), rewrite(e->rhs()));
        break;
    }
    memo.emplace(e, out);
    return out;
  };

  for (PathResult& p : paths) {
    for (ExprPtr& c : p.constraints) c = rewrite(c);
    for (PathCall& c : p.calls) {
      c.arg0 = rewrite(c.arg0);
      c.arg1 = rewrite(c.arg1);
      c.ret0 = rewrite(c.ret0);
      c.ret1 = rewrite(c.ret1);
    }
    p.out_port = rewrite(p.out_port);
    for (auto& w : p.witness) w.first = remap.at(w.first);
    std::sort(p.witness.begin(), p.witness.end());
    for (PacketField& f : p.fields) f.sym = remap.at(f.sym);
    if (p.has_len_sym) p.len_sym = remap.at(p.len_sym);
    if (p.has_port_sym) p.port_sym = remap.at(p.port_sym);
    if (p.has_time_sym) p.time_sym = remap.at(p.time_sym);
  }
  symbols_.rebuild(std::move(entries));
}

void Executor::solve_inputs(std::vector<PathResult>& paths) const {
  // A pool wider than the number of paths is pure spawn/teardown cost.
  support::ThreadPool pool(std::min(support::resolve_threads(options_.threads),
                                    std::max<std::size_t>(paths.size(), 1)));
  pool.parallel_for(0, paths.size(), [&](std::size_t i) {
    PathResult& path = paths[i];
    const Solver solver(symbols_, options_.solver);
    SolveResult solved = solver.solve(
        path.constraints, path.witness.empty() ? nullptr : &path.witness);
    if (solved.status != SolveStatus::kSat) {
      path.solved = false;
      return;
    }
    path.model = std::move(solved.model);
    path.solved = true;
    // Fill in symbols the constraints never mentioned.
    auto ensure = [&](SymId id, std::uint64_t fallback) {
      if (path.model.find(id) == path.model.end()) path.model[id] = fallback;
    };
    std::uint64_t min_len = 60;
    for (const PacketField& f : path.fields) {
      ensure(f.sym, 0);
      min_len = std::max(min_len, f.offset + f.width);
    }
    if (path.has_len_sym) {
      ensure(path.len_sym, min_len);
      path.model[path.len_sym] = std::max(path.model[path.len_sym], min_len);
    }
    if (path.has_port_sym) ensure(path.port_sym, 0);
    if (path.has_time_sym) ensure(path.time_sym, 1'000'000'000ULL);
    for (const PathCall& call : path.calls) {
      std::vector<SymId> syms;
      if (call.ret0 != nullptr) call.ret0->collect_symbols(syms);
      if (call.ret1 != nullptr) call.ret1->collect_symbols(syms);
      for (SymId id : syms) ensure(id, 0);
    }
  });
}

}  // namespace bolt::symbex
