// PathResult — one feasible execution path through the stateless NF code.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "symbex/expr.h"
#include "symbex/solver.h"

namespace bolt::symbex {

/// Terminal action of a path.
enum class PathAction : std::uint8_t { kDrop, kForward };

/// A stateful call observed along a path.
struct PathCall {
  std::int64_t method = 0;
  std::string case_label;
  ExprPtr arg0 = nullptr, arg1 = nullptr;  ///< symbolic arguments (may be null)
  ExprPtr ret0 = nullptr, ret1 = nullptr;  ///< symbolic return values (may be null)
};

/// A symbolic packet-field access: `width` bytes at concrete `offset`,
/// represented by symbol `sym`.
struct PacketField {
  std::uint64_t offset = 0;
  std::uint8_t width = 0;
  SymId sym = 0;
};

struct PathResult {
  std::vector<ExprPtr> constraints;  ///< conjunction; each means "expr != 0"
  std::vector<PathCall> calls;
  PathAction action = PathAction::kDrop;
  ExprPtr out_port = nullptr;        ///< for kForward
  std::vector<std::string> class_tags;
  std::map<std::int64_t, std::uint64_t> loop_trips;  ///< loop id -> trips
  /// IR instructions executed along this path during symbolic execution
  /// (annotation ops excluded). The concrete replay recomputes this; the two
  /// must agree, which the pipeline checks.
  std::uint64_t symbex_instructions = 0;
  std::uint64_t symbex_accesses = 0;

  // Input reconstruction data:
  std::vector<PacketField> fields;   ///< packet-field symbols
  SymId len_sym = 0;
  bool has_len_sym = false;
  SymId port_sym = 0;
  bool has_port_sym = false;
  SymId time_sym = 0;
  bool has_time_sym = false;

  /// The satisfying assignment the last exploration-time feasibility check
  /// found (symbol ids canonicalized with the rest of the path). Seeds the
  /// final input solve, which then usually costs one evaluation.
  Witness witness;

  /// Concrete model satisfying `constraints` (filled by the pipeline after
  /// solving); empty if the solver returned unknown.
  Assignment model;
  bool solved = false;

  /// Joined class tags (the input-class label this path belongs to).
  std::string class_label() const;
};

}  // namespace bolt::symbex
