// Constraint solver for path constraints (the reproduction's Z3/STP).
//
// NF path constraints are shallow: equalities and unsigned comparisons over
// packet-field symbols, often through a few arithmetic/masking steps. The
// solver therefore combines three techniques, cheapest first:
//   1. constant folding (done already by Expr's smart constructors),
//   2. interval + exclusion propagation per symbol, with backward
//      propagation through invertible unary chains (+c, -c, <<c, >>c,
//      & contiguous-mask), which decides most constraints outright, and
//   3. guided concrete search: candidate values harvested from the
//      constraint DAG (constants, interval endpoints) plus bounded random
//      probing, re-evaluating all constraints concretely.
//
// The result is three-valued: kSat (with a model), kUnsat (proved empty by
// propagation), or kUnknown (search exhausted its budget). Callers treat
// kUnknown conservatively: branch feasibility checks keep the path alive.
//
// Hot-path machinery for the symbolic executor:
//   * DomainStore — the propagated interval state, carried *in* each
//     exploration state and extended one constraint at a time
//     (propagate_into), so a fork's feasibility check no longer re-derives
//     the whole path's domains from scratch. Derived-expression "views"
//     are keyed on interned expression pointers (structural equality is
//     pointer equality), not strings.
//   * a per-solver memo of search verdicts keyed on the structural hash of
//     the constraint set — sibling paths across an NF chain re-test
//     identical header-guard sets constantly, and the memo answers those
//     in O(1).
//   * search/repair run on a flat SymId-indexed value array instead of a
//     std::map (the Assignment map survives only at API boundaries).
//
// A Solver instance is cheap to construct and NOT shareable across threads
// (it owns mutable scratch + the memo); the executor builds one per worker.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/random.h"
#include "support/span.h"
#include "symbex/expr.h"

namespace bolt::symbex {

enum class SolveStatus { kSat, kUnsat, kUnknown };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;  ///< valid when status == kSat
};

struct SolverOptions {
  std::uint64_t seed = 0x5eed;
  int random_probes = 4'000;       ///< random assignments tried in search
  int per_symbol_candidates = 64;  ///< cap on harvested candidates per symbol
  bool memoize = true;             ///< cache quick-check search verdicts
};

/// Interval + exclusion domain of one symbol or derived expression.
struct Domain {
  std::uint64_t lo = 0;
  std::uint64_t hi = ~0ULL;
  std::vector<std::uint64_t> excluded;  // small set of != values
  bool empty() const { return lo > hi; }
};

/// Propagated domain state of a constraint set, built one constraint at a
/// time. Copy it when a path forks; the copy is two vector clones.
/// Incrementally folding constraint N+1 into the store yields exactly the
/// state a batch propagation over all N+1 constraints would (propagation
/// is a single pass of commutative interval intersections).
/// Sparse concrete assignment: (symbol, value) pairs, sorted by symbol.
using Witness = std::vector<std::pair<SymId, std::uint64_t>>;

struct DomainStore {
  /// Per-symbol domains, indexed by SymId and grown lazily. Slots start at
  /// the full 64-bit range; readers clamp `hi` by the symbol's width on
  /// access (so untouched slots need no initialization pass).
  std::vector<Domain> by_sym;
  /// Derived-expression domains ("views"), keyed by interned pointer.
  /// Linear scan: constraint sets are shallow and short.
  std::vector<std::pair<ExprPtr, Domain>> views;
  /// The last satisfying assignment a feasibility check found for this
  /// constraint set. Forks inherit it: a child's check warm-starts from
  /// the parent's witness, so it usually costs one evaluation of the set
  /// (old constraints are still satisfied; only the new branch constraint
  /// can fail, and targeted repair fixes that) instead of a candidate
  /// search from scratch.
  Witness witness;
  /// Sorted distinct symbols of the propagated constraints, maintained by
  /// propagate_into so feasibility checks never re-walk the whole set.
  std::vector<SymId> syms;
  /// Constraints [0, checked_upto) are known satisfied by `witness`
  /// (established the last time a check rebuilt the witness). A later
  /// check therefore only needs to evaluate the appended suffix.
  std::size_t checked_upto = 0;
  /// Some propagated constraint emptied a domain: definitely unsat.
  bool infeasible = false;
  /// A literally constant-false constraint was added (the executor's
  /// legacy fast path: reported as infeasible but not counted as a solver
  /// prune).
  bool const_false = false;
};

class Solver {
 public:
  struct Counters {
    std::uint64_t quick_checks = 0;  ///< feasibility probes issued
    /// Constraint-set memo (batch quick_check only — the incremental path
    /// must stay scheduling-independent, see quick_check_incremental).
    std::uint64_t memo_hits = 0;
    std::uint64_t memo_misses = 0;
    /// Incremental probes settled by the verified-prefix witness fast
    /// path vs. probes that had to run the bounded search. Deterministic:
    /// both are pure functions of the (deterministic) exploration tree.
    std::uint64_t witness_hits = 0;
    std::uint64_t witness_searches = 0;
  };

  Solver(const SymbolTable& symbols, SolverOptions options = {});

  /// Full solve: propagation + search. `hint` (optional) seeds the search
  /// with a previously found witness — the executor passes each path's
  /// final exploration witness, which usually satisfies the set outright.
  SolveResult solve(support::Span<const ExprPtr> constraints,
                    const Witness* hint = nullptr) const;

  /// Quick feasibility probe with a reduced search budget (used on every
  /// symbolic branch, so it must be fast).
  SolveStatus quick_check(support::Span<const ExprPtr> constraints) const;

  /// Folds one new constraint into `store` (interval propagation only).
  /// Sets store.infeasible when the constraint empties a domain. No-op on
  /// stores that are already infeasible.
  void propagate_into(DomainStore& store, ExprPtr constraint) const;

  /// quick_check against domains already carried in `store` (propagation
  /// is NOT re-run — the caller kept `store` in sync via propagate_into).
  /// Returns kUnsat if the store is infeasible; otherwise tries the
  /// carried witness (+ targeted repair of the constraints the witness
  /// misses), falling back to the bounded search to distinguish kSat from
  /// kUnknown. Updates store.witness on success.
  ///
  /// Deliberately does NOT consult the constraint-set memo: a memo hit
  /// would skip the witness update, and which checks hit a per-worker
  /// memo depends on scheduling — the witness would then differ across
  /// thread counts, and it seeds the final input solve, which must stay
  /// bit-deterministic. The witness/verified-prefix cache carried in the
  /// store is this path's (deterministic) dedup mechanism instead.
  SolveStatus quick_check_incremental(DomainStore& store,
                                      support::Span<const ExprPtr> constraints) const;

  const Counters& counters() const { return counters_; }

 private:
  /// Batch propagation; returns false if some domain became empty.
  bool propagate(support::Span<const ExprPtr> constraints,
                 DomainStore& store) const;

  /// Constrains `e` (which must reduce to a symbol through an invertible
  /// chain) so that its value lies in [lo, hi]. Returns false on empty.
  bool constrain(ExprPtr e, std::uint64_t lo, std::uint64_t hi,
                 DomainStore& store) const;

  /// Concrete search. `hint` seeds the initial assignment; `witness_out`
  /// (optional) receives the satisfying assignment on success;
  /// `repair_first` runs the targeted repair phase before the candidate
  /// odometer (the quick-check ordering: when a warm-started assignment
  /// fails, usually exactly one constraint is broken and inverting its
  /// chain is far cheaper than enumerating candidate combinations);
  /// `syms_hint` is the precomputed sorted symbol set (DomainStore::syms)
  /// when the caller maintained one. The candidate/harvest machinery is
  /// built lazily — a warm start that satisfies the set outright allocates
  /// nothing.
  bool search(support::Span<const ExprPtr> constraints,
              const DomainStore& store, int probes, Assignment* model,
              const Witness* hint = nullptr, Witness* witness_out = nullptr,
              bool repair_first = false,
              const std::vector<SymId>* syms_hint = nullptr) const;

  /// Memoized search wrapper for batch quick_check: verdicts are cached
  /// per constraint-set hash (sibling batch callers re-test identical
  /// sets). The incremental flavour bypasses this — see
  /// quick_check_incremental.
  SolveStatus checked_search(support::Span<const ExprPtr> constraints,
                             const DomainStore& store, int probes,
                             const std::vector<SymId>* syms_hint = nullptr) const;

  /// WalkSAT-style repair: mutates the flat model so that `constraint`
  /// becomes true, inverting the constraint's expression chain bit-exactly
  /// where possible (through +c, -c, <<, >>, &mask, ^c and one branch of
  /// |/&). Returns false when no repair rule applies.
  bool repair(ExprPtr constraint, std::uint64_t* model,
              support::Rng& rng) const;
  /// Assigns `target` to the symbol at the bottom of expression `e`,
  /// preserving bits that `e` does not observe. Helper of repair().
  bool invert_assign(ExprPtr e, std::uint64_t target, std::uint64_t* model,
                     support::Rng& rng) const;

  /// Width-clamped read of a symbol's domain (lazily defaulted).
  void read_domain(const DomainStore& store, SymId id, std::uint64_t& lo,
                   std::uint64_t& hi,
                   const std::vector<std::uint64_t>** excluded) const;

  std::uint64_t max_value(SymId id) const;  ///< via cached snapshot

  const SymbolTable& symbols_;
  SolverOptions options_;
  mutable SymbolTable::Snapshot snap_;  ///< refreshed when ids outgrow it
  mutable std::unordered_map<std::uint64_t, SolveStatus> feas_memo_;
  mutable std::vector<std::uint64_t> flat_;  ///< search/repair scratch
  mutable std::vector<SymId> sym_scratch_;   ///< propagate_into scratch
  mutable Counters counters_;
};

}  // namespace bolt::symbex
