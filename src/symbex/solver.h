// Constraint solver for path constraints (the reproduction's Z3/STP).
//
// NF path constraints are shallow: equalities and unsigned comparisons over
// packet-field symbols, often through a few arithmetic/masking steps. The
// solver therefore combines three techniques, cheapest first:
//   1. constant folding (done already by Expr's smart constructors),
//   2. interval + exclusion propagation per symbol, with backward
//      propagation through invertible unary chains (+c, -c, <<c, >>c,
//      & contiguous-mask), which decides most constraints outright, and
//   3. guided concrete search: candidate values harvested from the
//      constraint DAG (constants, interval endpoints) plus bounded random
//      probing, re-evaluating all constraints concretely.
//
// The result is three-valued: kSat (with a model), kUnsat (proved empty by
// propagation), or kUnknown (search exhausted its budget). Callers treat
// kUnknown conservatively: branch feasibility checks keep the path alive.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

#include "support/random.h"
#include "symbex/expr.h"

namespace bolt::symbex {

enum class SolveStatus { kSat, kUnsat, kUnknown };

struct SolveResult {
  SolveStatus status = SolveStatus::kUnknown;
  Assignment model;  ///< valid when status == kSat
};

struct SolverOptions {
  std::uint64_t seed = 0x5eed;
  int random_probes = 4'000;       ///< random assignments tried in search
  int per_symbol_candidates = 64;  ///< cap on harvested candidates per symbol
};

class Solver {
 public:
  Solver(const SymbolTable& symbols, SolverOptions options = {});

  /// Full solve: propagation + search.
  SolveResult solve(support::Span<const ExprPtr> constraints) const;

  /// Quick feasibility probe with a reduced search budget (used on every
  /// symbolic branch, so it must be fast).
  SolveStatus quick_check(support::Span<const ExprPtr> constraints) const;

 private:
  struct Domain {
    std::uint64_t lo = 0;
    std::uint64_t hi = ~0ULL;
    std::vector<std::uint64_t> excluded;  // small set of != values
    bool empty() const { return lo > hi; }
  };

  /// Interval propagation; returns false if some domain became empty
  /// (definitely unsat).
  bool propagate(support::Span<const ExprPtr> constraints,
                 std::vector<Domain>& domains) const;

  /// Constrains `e` (which must reduce to a symbol through an invertible
  /// chain) so that its value lies in [lo, hi]. Returns false on empty.
  bool constrain(const ExprPtr& e, std::uint64_t lo, std::uint64_t hi,
                 std::vector<Domain>& domains) const;

  bool search(support::Span<const ExprPtr> constraints,
              const std::vector<Domain>& domains, int probes,
              Assignment& model) const;

  /// WalkSAT-style repair: mutates `model` so that `constraint` becomes
  /// true, inverting the constraint's expression chain bit-exactly where
  /// possible (through +c, -c, <<, >>, &mask, ^c and one branch of |/&).
  /// Returns false when no repair rule applies.
  bool repair(const ExprPtr& constraint, Assignment& model,
              support::Rng& rng) const;
  /// Assigns `target` to the symbol at the bottom of expression `e`,
  /// preserving bits that `e` does not observe. Helper of repair().
  bool invert_assign(const ExprPtr& e, std::uint64_t target, Assignment& model,
                     support::Rng& rng) const;

  const SymbolTable& symbols_;
  SolverOptions options_;
};

}  // namespace bolt::symbex
