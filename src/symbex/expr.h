// Symbolic expressions for the BOLT-repro symbolic execution engine.
//
// Expressions form an immutable, *hash-consed* DAG over 64-bit values:
// constants, symbols (unknown inputs: packet fields, packet length, ingress
// port, timestamp, and values returned by stateful models), and the IR's
// ALU/compare operators. Smart constructors fold constants and apply cheap
// algebraic simplifications so path constraints stay small.
//
// Hash consing: every node is interned in a global sharded arena, so
// structurally equal expressions are POINTER-equal (`a == b` decides
// structural equality in O(1)). Each node carries a precomputed structural
// hash (stable across runs — it depends only on structure, never on
// addresses) and a symbol-set bloom mask. ExprPtr is a plain raw pointer:
// nodes are immortal for the process lifetime, never refcounted, and copies
// are free — which is exactly what the symbolic executor's fork-heavy inner
// loop wants.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/arena.h"

namespace bolt::symbex {

enum class ExprOp : std::uint8_t {
  kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShr, kNot,
  kEq, kNe, kLtU, kLeU, kGtU, kGeU,
};

const char* expr_op_name(ExprOp op);

enum class ExprKind : std::uint8_t { kConst, kSym, kUnary, kBinary };

using SymId = std::uint32_t;

class Expr;
/// Interned: equal structure <=> equal pointer. Never freed, never owned.
using ExprPtr = const Expr*;

using Assignment = std::map<SymId, std::uint64_t>;

class Expr {
 public:
  // Factory functions (the only way to create expressions). Results are
  // interned: calling a factory twice with the same arguments returns the
  // same pointer. Thread-safe.
  static ExprPtr constant(std::uint64_t value);
  static ExprPtr symbol(SymId id);
  static ExprPtr unary(ExprOp op, ExprPtr a);
  static ExprPtr binary(ExprOp op, ExprPtr a, ExprPtr b);

  ExprKind kind() const { return kind_; }
  bool is_const() const { return kind_ == ExprKind::kConst; }
  bool is_sym() const { return kind_ == ExprKind::kSym; }

  std::uint64_t const_value() const;  ///< requires is_const()
  SymId sym_id() const;               ///< requires is_sym()
  ExprOp op() const { return op_; }
  ExprPtr lhs() const { return a_; }
  ExprPtr rhs() const { return b_; }

  /// Precomputed structural hash: depends only on the expression's shape
  /// and values, so it is identical across runs and thread interleavings.
  /// Used for feasibility-memo keys and the intern table itself.
  std::uint64_t hash() const { return hash_; }

  /// Bloom mask of the symbols below this node (bit `id % 64`). A cheap
  /// "which inputs can this depend on" filter: disjoint masks guarantee
  /// disjoint symbol sets.
  std::uint64_t sym_mask() const { return sym_mask_; }
  bool has_symbols() const { return sym_mask_ != 0; }

  /// Evaluates under a concrete assignment; aborts on unassigned symbols.
  std::uint64_t eval(const Assignment& assignment) const;

  /// Evaluates against a flat SymId-indexed value array (the solver's
  /// search/repair hot path; every symbol in the DAG must be covered).
  std::uint64_t eval_flat(const std::uint64_t* values) const;

  /// Collects the distinct symbol ids of the DAG into `out`, each once, in
  /// first-visit (depth-first, left-to-right) order. Shared subgraphs are
  /// visited once.
  void collect_symbols(std::vector<SymId>& out) const;

  /// Collects the distinct constants of the DAG (used by the solver's
  /// candidate-value harvesting). Shared subgraphs are visited once.
  void collect_constants(std::vector<std::uint64_t>& out) const;

  std::string str(
      const std::function<std::string(SymId)>& sym_name = nullptr) const;

 private:
  template <typename, std::size_t>
  friend class support::ChunkArena;
  friend class ExprInterner;

  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  ExprOp op_ = ExprOp::kAdd;
  std::uint64_t value_ = 0;  // const value or symbol id
  ExprPtr a_ = nullptr;
  ExprPtr b_ = nullptr;
  std::uint64_t hash_ = 0;
  std::uint64_t sym_mask_ = 0;
};

/// Depth-first, left-to-right visit of every symbol *occurrence*
/// (duplicates included — shared subgraphs are revisited). This is the
/// canonical traversal order shared by path signatures, the executor's
/// canonical renumbering, and the solver repair loop's escape
/// randomization (which picks uniformly over occurrences); keep them in
/// lockstep by keeping this the only implementation.
template <typename Fn>
void visit_symbol_occurrences(ExprPtr e, const Fn& fn) {
  if (e == nullptr) return;
  switch (e->kind()) {
    case ExprKind::kConst:
      return;
    case ExprKind::kSym:
      fn(e->sym_id());
      return;
    case ExprKind::kUnary:
      visit_symbol_occurrences(e->lhs(), fn);
      return;
    case ExprKind::kBinary:
      visit_symbol_occurrences(e->lhs(), fn);
      visit_symbol_occurrences(e->rhs(), fn);
      return;
  }
}

/// Truthiness helpers: a *constraint* is an expression meaning "e != 0".
ExprPtr logical_not(ExprPtr e);  ///< (e == 0)
/// Applies the comparison/ALU semantics concretely (shared by the expression
/// folder, the interpreter cross-checks, and the solver).
std::uint64_t apply_op(ExprOp op, std::uint64_t a, std::uint64_t b);

/// Number of distinct expression nodes interned so far (diagnostic).
std::size_t interned_expr_count();

/// Registry of symbols with names and bit widths (domain [0, 2^width)).
///
/// Thread-safe: the parallel executor mints symbols from many worker
/// threads while per-thread solvers concurrently read names and widths.
/// Entries are append-only (stored in a deque so references stay stable
/// across concurrent fresh() calls); rebuild() replaces the whole table
/// and must only be called from a single thread between pipeline phases
/// (the executor's canonical renumbering pass).
///
/// Hot-path readers should take a Snapshot once per solve instead of
/// paying a shared_mutex acquisition per name()/width_bits() lookup.
class SymbolTable {
 public:
  /// An immutable view of the table at snapshot time. Lock-free to read;
  /// symbols minted after the snapshot are not visible (re-snapshot when
  /// an id is out of range).
  class Snapshot {
   public:
    Snapshot() = default;
    std::size_t size() const { return entries_ ? entries_->size() : 0; }
    const std::string& name(SymId id) const;
    int width_bits(SymId id) const;
    std::uint64_t max_value(SymId id) const;

   private:
    friend class SymbolTable;
    struct Entry {
      std::string name;
      int width_bits = 0;
    };
    std::shared_ptr<const std::vector<Entry>> entries_;
  };

  SymId fresh(const std::string& name, int width_bits);
  const std::string& name(SymId id) const;
  int width_bits(SymId id) const;
  std::uint64_t max_value(SymId id) const;
  std::size_t size() const;

  /// Takes (or reuses) an immutable snapshot: one lock acquisition, O(1)
  /// when the table has not changed since the last snapshot.
  Snapshot snapshot() const;

  /// Replaces the table contents with `entries` (name, width pairs).
  /// Single-threaded use only; invalidates previously returned ids.
  void rebuild(std::vector<std::pair<std::string, int>> entries);

 private:
  struct Entry {
    std::string name;
    int width_bits = 0;
  };
  mutable std::shared_mutex mutex_;
  std::deque<Entry> entries_;
  std::uint64_t version_ = 0;  // bumped by fresh()/rebuild()
  mutable std::uint64_t snapshot_version_ = ~0ULL;
  mutable std::shared_ptr<const std::vector<Snapshot::Entry>> snapshot_cache_;
};

}  // namespace bolt::symbex
