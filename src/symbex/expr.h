// Symbolic expressions for the BOLT-repro symbolic execution engine.
//
// Expressions form an immutable DAG over 64-bit values: constants, symbols
// (unknown inputs: packet fields, packet length, ingress port, timestamp,
// and values returned by stateful models), and the IR's ALU/compare
// operators. Smart constructors fold constants and apply cheap algebraic
// simplifications so path constraints stay small.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

namespace bolt::symbex {

enum class ExprOp : std::uint8_t {
  kAdd, kSub, kMul, kAnd, kOr, kXor, kShl, kShr, kNot,
  kEq, kNe, kLtU, kLeU, kGtU, kGeU,
};

const char* expr_op_name(ExprOp op);

enum class ExprKind : std::uint8_t { kConst, kSym, kUnary, kBinary };

using SymId = std::uint32_t;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

class Expr {
 public:
  // Factory functions (the only way to create expressions).
  static ExprPtr constant(std::uint64_t value);
  static ExprPtr symbol(SymId id);
  static ExprPtr unary(ExprOp op, ExprPtr a);
  static ExprPtr binary(ExprOp op, ExprPtr a, ExprPtr b);

  ExprKind kind() const { return kind_; }
  bool is_const() const { return kind_ == ExprKind::kConst; }
  bool is_sym() const { return kind_ == ExprKind::kSym; }

  std::uint64_t const_value() const;  ///< requires is_const()
  SymId sym_id() const;               ///< requires is_sym()
  ExprOp op() const { return op_; }
  const ExprPtr& lhs() const { return a_; }
  const ExprPtr& rhs() const { return b_; }

  /// Evaluates under a concrete assignment; aborts on unassigned symbols.
  std::uint64_t eval(const std::map<SymId, std::uint64_t>& assignment) const;

  /// Collects all symbol ids into `out` (deduplicated by the caller's set
  /// semantics: out is a sorted unique vector on return).
  void collect_symbols(std::vector<SymId>& out) const;

  /// Collects constants appearing in the DAG (used by the solver's
  /// candidate-value harvesting).
  void collect_constants(std::vector<std::uint64_t>& out) const;

  std::string str(
      const std::function<std::string(SymId)>& sym_name = nullptr) const;

 private:
  Expr() = default;

  ExprKind kind_ = ExprKind::kConst;
  ExprOp op_ = ExprOp::kAdd;
  std::uint64_t value_ = 0;  // const value or symbol id
  ExprPtr a_;
  ExprPtr b_;
};

/// Truthiness helpers: a *constraint* is an expression meaning "e != 0".
ExprPtr logical_not(const ExprPtr& e);  ///< (e == 0)
/// Applies the comparison/ALU semantics concretely (shared by the expression
/// folder, the interpreter cross-checks, and the solver).
std::uint64_t apply_op(ExprOp op, std::uint64_t a, std::uint64_t b);

/// Registry of symbols with names and bit widths (domain [0, 2^width)).
///
/// Thread-safe: the parallel executor mints symbols from many worker
/// threads while per-thread solvers concurrently read names and widths.
/// Entries are append-only (stored in a deque so references stay stable
/// across concurrent fresh() calls); rebuild() replaces the whole table
/// and must only be called from a single thread between pipeline phases
/// (the executor's canonical renumbering pass).
class SymbolTable {
 public:
  SymId fresh(const std::string& name, int width_bits);
  const std::string& name(SymId id) const;
  int width_bits(SymId id) const;
  std::uint64_t max_value(SymId id) const;
  std::size_t size() const;

  /// Replaces the table contents with `entries` (name, width pairs).
  /// Single-threaded use only; invalidates previously returned ids.
  void rebuild(std::vector<std::pair<std::string, int>> entries);

 private:
  struct Entry {
    std::string name;
    int width_bits = 0;
  };
  mutable std::shared_mutex mutex_;
  std::deque<Entry> entries_;
};

using Assignment = std::map<SymId, std::uint64_t>;

}  // namespace bolt::symbex
