#include "symbex/expr.h"

#include <algorithm>
#include <mutex>
#include <unordered_map>

#include "support/assert.h"
#include "support/hash.h"

namespace bolt::symbex {

using support::mix64;

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kAnd: return "&";
    case ExprOp::kOr: return "|";
    case ExprOp::kXor: return "^";
    case ExprOp::kShl: return "<<";
    case ExprOp::kShr: return ">>";
    case ExprOp::kNot: return "~";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLtU: return "<";
    case ExprOp::kLeU: return "<=";
    case ExprOp::kGtU: return ">";
    case ExprOp::kGeU: return ">=";
  }
  return "?";
}

std::uint64_t apply_op(ExprOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kMul: return a * b;
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return a << (b & 63);
    case ExprOp::kShr: return a >> (b & 63);
    case ExprOp::kNot: return ~a;
    case ExprOp::kEq: return a == b ? 1 : 0;
    case ExprOp::kNe: return a != b ? 1 : 0;
    case ExprOp::kLtU: return a < b ? 1 : 0;
    case ExprOp::kLeU: return a <= b ? 1 : 0;
    case ExprOp::kGtU: return a > b ? 1 : 0;
    case ExprOp::kGeU: return a >= b ? 1 : 0;
  }
  BOLT_UNREACHABLE("bad ExprOp");
}

// ------------------------------------------------------------ interner --

namespace {

/// Structural hash of a prospective node; children are already interned so
/// their hashes are final. Order-sensitive in (a, b).
inline std::uint64_t node_hash(ExprKind kind, ExprOp op, std::uint64_t value,
                               ExprPtr a, ExprPtr b) {
  std::uint64_t h = static_cast<std::uint64_t>(kind) * 0x9e3779b97f4a7c15ULL +
                    static_cast<std::uint64_t>(op) * 0xc2b2ae3d27d4eb4fULL;
  h = mix64(h ^ value);
  if (a != nullptr) h = mix64(h + 0x165667b19e3779f9ULL + a->hash());
  if (b != nullptr) h = mix64(h ^ (b->hash() * 0x27d4eb2f165667c5ULL));
  return h;
}

}  // namespace

/// Global sharded hash-consing table. Nodes live in per-shard chunk arenas
/// and are immortal; the table maps structural identity -> node. Sharded by
/// structural hash so concurrent workers rarely contend on a mutex.
class ExprInterner {
 public:
  static ExprInterner& instance() {
    static ExprInterner interner;
    return interner;
  }

  ExprPtr intern(ExprKind kind, ExprOp op, std::uint64_t value, ExprPtr a,
                 ExprPtr b) {
    const std::uint64_t h = node_hash(kind, op, value, a, b);
    Shard& shard = shards_[h & (kShards - 1)];
    const Key key{value, a, b, kind, op};
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.table.emplace(key, nullptr);
    if (!inserted) return it->second;
    Expr* e = shard.arena.create();
    e->kind_ = kind;
    e->op_ = op;
    e->value_ = value;
    e->a_ = a;
    e->b_ = b;
    e->hash_ = h;
    switch (kind) {
      case ExprKind::kConst:
        break;
      case ExprKind::kSym:
        e->sym_mask_ = 1ULL << (value & 63);
        break;
      case ExprKind::kUnary:
        e->sym_mask_ = a->sym_mask();
        break;
      case ExprKind::kBinary:
        e->sym_mask_ = a->sym_mask() | b->sym_mask();
        break;
    }
    it->second = e;
    return e;
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      total += s.arena.size();
    }
    return total;
  }

 private:
  struct Key {
    std::uint64_t value;
    ExprPtr a;
    ExprPtr b;
    ExprKind kind;
    ExprOp op;
    bool operator==(const Key& o) const {
      // Children are interned, so pointer comparison IS structural
      // comparison — the whole point of hash consing.
      return value == o.value && a == o.a && b == o.b && kind == o.kind &&
             op == o.op;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return static_cast<std::size_t>(
          node_hash(k.kind, k.op, k.value, k.a, k.b));
    }
  };
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Key, ExprPtr, KeyHash> table;
    support::ChunkArena<Expr> arena;
  };

  static constexpr std::size_t kShards = 32;  // power of two
  Shard shards_[kShards];
};

std::size_t interned_expr_count() { return ExprInterner::instance().size(); }

// ------------------------------------------------- smart constructors --

ExprPtr Expr::constant(std::uint64_t value) {
  return ExprInterner::instance().intern(ExprKind::kConst, ExprOp::kAdd, value,
                                         nullptr, nullptr);
}

ExprPtr Expr::symbol(SymId id) {
  return ExprInterner::instance().intern(ExprKind::kSym, ExprOp::kAdd, id,
                                         nullptr, nullptr);
}

ExprPtr Expr::unary(ExprOp op, ExprPtr a) {
  BOLT_CHECK(op == ExprOp::kNot, "only kNot is unary");
  if (a->is_const()) return constant(~a->const_value());
  return ExprInterner::instance().intern(ExprKind::kUnary, op, 0, a, nullptr);
}

ExprPtr Expr::binary(ExprOp op, ExprPtr a, ExprPtr b) {
  BOLT_CHECK(op != ExprOp::kNot, "kNot is not binary");
  if (a->is_const() && b->is_const()) {
    return constant(apply_op(op, a->const_value(), b->const_value()));
  }
  // Cheap algebraic identities. These keep path constraints readable and
  // help the solver's pattern matcher; they are not meant to be exhaustive.
  if (b->is_const()) {
    const std::uint64_t c = b->const_value();
    if (c == 0) {
      switch (op) {
        case ExprOp::kAdd: case ExprOp::kSub: case ExprOp::kOr:
        case ExprOp::kXor: case ExprOp::kShl: case ExprOp::kShr:
          return a;
        case ExprOp::kMul: case ExprOp::kAnd:
          return constant(0);
        default: break;
      }
    }
    if (c == 1 && op == ExprOp::kMul) return a;
    if (c == ~0ULL && op == ExprOp::kAnd) return a;
  }
  if (a->is_const()) {
    const std::uint64_t c = a->const_value();
    if (c == 0) {
      switch (op) {
        case ExprOp::kAdd: case ExprOp::kOr: case ExprOp::kXor:
          return b;
        case ExprOp::kMul: case ExprOp::kAnd:
          return constant(0);
        default: break;
      }
    }
    if (c == 1 && op == ExprOp::kMul) return b;
  }
  // Interning makes structural equality pointer equality, so this single
  // comparison covers the seed's pointer *and* same-symbol checks (and
  // reaches any structurally shared subexpression).
  if (a == b) {
    switch (op) {
      case ExprOp::kSub: case ExprOp::kXor: return constant(0);
      case ExprOp::kAnd: case ExprOp::kOr: return a;
      case ExprOp::kEq: case ExprOp::kLeU: case ExprOp::kGeU: return constant(1);
      case ExprOp::kNe: case ExprOp::kLtU: case ExprOp::kGtU: return constant(0);
      default: break;
    }
  }
  return ExprInterner::instance().intern(ExprKind::kBinary, op, 0, a, b);
}

std::uint64_t Expr::const_value() const {
  BOLT_CHECK(is_const(), "not a constant expression");
  return value_;
}

SymId Expr::sym_id() const {
  BOLT_CHECK(is_sym(), "not a symbol");
  return static_cast<SymId>(value_);
}

std::uint64_t Expr::eval(const Assignment& assignment) const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_;
    case ExprKind::kSym: {
      auto it = assignment.find(static_cast<SymId>(value_));
      BOLT_CHECK(it != assignment.end(), "eval: unassigned symbol");
      return it->second;
    }
    case ExprKind::kUnary:
      return ~a_->eval(assignment);
    case ExprKind::kBinary:
      return apply_op(op_, a_->eval(assignment), b_->eval(assignment));
  }
  BOLT_UNREACHABLE("bad ExprKind");
}

std::uint64_t Expr::eval_flat(const std::uint64_t* values) const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_;
    case ExprKind::kSym:
      return values[value_];
    case ExprKind::kUnary:
      return ~a_->eval_flat(values);
    case ExprKind::kBinary:
      return apply_op(op_, a_->eval_flat(values), b_->eval_flat(values));
  }
  BOLT_UNREACHABLE("bad ExprKind");
}

namespace {

/// Small visited set for shared-subgraph-aware DAG walks: inline storage
/// for the common (tiny) constraint DAGs, heap overflow for pathological
/// ones. Linear scan — constraint DAGs rarely exceed a dozen nodes.
struct VisitedSet {
  static constexpr std::size_t kInline = 32;
  ExprPtr inline_slots[kInline];
  std::size_t count = 0;
  std::vector<ExprPtr> overflow;

  bool insert(ExprPtr p) {
    const std::size_t n = count < kInline ? count : kInline;
    for (std::size_t i = 0; i < n; ++i) {
      if (inline_slots[i] == p) return false;
    }
    for (const ExprPtr q : overflow) {
      if (q == p) return false;
    }
    if (count < kInline) {
      inline_slots[count++] = p;
    } else {
      overflow.push_back(p);
    }
    return true;
  }
};

/// Shared-subgraph-aware DAG walk: visits each node once (interning makes
/// shared subexpressions pointer-identical, so revisits are pure waste).
template <typename Fn>
void walk_once(ExprPtr root, VisitedSet& visited, const Fn& fn) {
  if (root == nullptr || !visited.insert(root)) return;
  fn(root);
  walk_once(root->lhs(), visited, fn);
  walk_once(root->rhs(), visited, fn);
}

}  // namespace

void Expr::collect_symbols(std::vector<SymId>& out) const {
  if (!has_symbols()) return;
  VisitedSet visited;
  walk_once(this, visited, [&out](ExprPtr e) {
    if (e->is_sym()) out.push_back(e->sym_id());
  });
}

void Expr::collect_constants(std::vector<std::uint64_t>& out) const {
  VisitedSet visited;
  walk_once(this, visited, [&out](ExprPtr e) {
    if (e->is_const()) out.push_back(e->const_value());
  });
}

std::string Expr::str(const std::function<std::string(SymId)>& sym_name) const {
  switch (kind_) {
    case ExprKind::kConst:
      return std::to_string(value_);
    case ExprKind::kSym:
      return sym_name ? sym_name(static_cast<SymId>(value_))
                      : "s" + std::to_string(value_);
    case ExprKind::kUnary:
      return "~(" + a_->str(sym_name) + ")";
    case ExprKind::kBinary:
      return "(" + a_->str(sym_name) + " " + expr_op_name(op_) + " " +
             b_->str(sym_name) + ")";
  }
  BOLT_UNREACHABLE("bad ExprKind");
}

ExprPtr logical_not(ExprPtr e) {
  // Negate comparisons structurally when possible (keeps solver patterns).
  if (e->kind() == ExprKind::kBinary) {
    switch (e->op()) {
      case ExprOp::kEq: return Expr::binary(ExprOp::kNe, e->lhs(), e->rhs());
      case ExprOp::kNe: return Expr::binary(ExprOp::kEq, e->lhs(), e->rhs());
      case ExprOp::kLtU: return Expr::binary(ExprOp::kGeU, e->lhs(), e->rhs());
      case ExprOp::kLeU: return Expr::binary(ExprOp::kGtU, e->lhs(), e->rhs());
      case ExprOp::kGtU: return Expr::binary(ExprOp::kLeU, e->lhs(), e->rhs());
      case ExprOp::kGeU: return Expr::binary(ExprOp::kLtU, e->lhs(), e->rhs());
      default: break;
    }
  }
  return Expr::binary(ExprOp::kEq, e, Expr::constant(0));
}

// --------------------------------------------------------- SymbolTable --

SymId SymbolTable::fresh(const std::string& name, int width_bits) {
  BOLT_CHECK(width_bits >= 1 && width_bits <= 64, "bad symbol width");
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const SymId id = static_cast<SymId>(entries_.size());
  entries_.push_back(Entry{name, width_bits});
  ++version_;
  return id;
}

const std::string& SymbolTable::name(SymId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  BOLT_CHECK(id < entries_.size(), "symbol id out of range");
  // Safe to return a reference: entries are append-only (deque elements do
  // not move) except under rebuild(), which is single-threaded by contract.
  return entries_[id].name;
}

int SymbolTable::width_bits(SymId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  BOLT_CHECK(id < entries_.size(), "symbol id out of range");
  return entries_[id].width_bits;
}

std::uint64_t SymbolTable::max_value(SymId id) const {
  const int w = width_bits(id);
  return w == 64 ? ~0ULL : ((1ULL << w) - 1);
}

std::size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

SymbolTable::Snapshot SymbolTable::snapshot() const {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  if (snapshot_version_ != version_ || snapshot_cache_ == nullptr) {
    auto entries = std::make_shared<std::vector<Snapshot::Entry>>();
    entries->reserve(entries_.size());
    for (const Entry& e : entries_) {
      entries->push_back(Snapshot::Entry{e.name, e.width_bits});
    }
    snapshot_cache_ = std::move(entries);
    snapshot_version_ = version_;
  }
  Snapshot snap;
  snap.entries_ = snapshot_cache_;
  return snap;
}

void SymbolTable::rebuild(std::vector<std::pair<std::string, int>> entries) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  for (auto& [name, width] : entries) {
    entries_.push_back(Entry{std::move(name), width});
  }
  ++version_;
  snapshot_cache_ = nullptr;
  snapshot_version_ = ~0ULL;
}

const std::string& SymbolTable::Snapshot::name(SymId id) const {
  BOLT_CHECK(entries_ != nullptr && id < entries_->size(),
             "snapshot: symbol id out of range");
  return (*entries_)[id].name;
}

int SymbolTable::Snapshot::width_bits(SymId id) const {
  BOLT_CHECK(entries_ != nullptr && id < entries_->size(),
             "snapshot: symbol id out of range");
  return (*entries_)[id].width_bits;
}

std::uint64_t SymbolTable::Snapshot::max_value(SymId id) const {
  const int w = width_bits(id);
  return w == 64 ? ~0ULL : ((1ULL << w) - 1);
}

}  // namespace bolt::symbex
