#include "symbex/expr.h"

#include <algorithm>
#include <mutex>

#include "support/assert.h"

namespace bolt::symbex {

const char* expr_op_name(ExprOp op) {
  switch (op) {
    case ExprOp::kAdd: return "+";
    case ExprOp::kSub: return "-";
    case ExprOp::kMul: return "*";
    case ExprOp::kAnd: return "&";
    case ExprOp::kOr: return "|";
    case ExprOp::kXor: return "^";
    case ExprOp::kShl: return "<<";
    case ExprOp::kShr: return ">>";
    case ExprOp::kNot: return "~";
    case ExprOp::kEq: return "==";
    case ExprOp::kNe: return "!=";
    case ExprOp::kLtU: return "<";
    case ExprOp::kLeU: return "<=";
    case ExprOp::kGtU: return ">";
    case ExprOp::kGeU: return ">=";
  }
  return "?";
}

std::uint64_t apply_op(ExprOp op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case ExprOp::kAdd: return a + b;
    case ExprOp::kSub: return a - b;
    case ExprOp::kMul: return a * b;
    case ExprOp::kAnd: return a & b;
    case ExprOp::kOr: return a | b;
    case ExprOp::kXor: return a ^ b;
    case ExprOp::kShl: return a << (b & 63);
    case ExprOp::kShr: return a >> (b & 63);
    case ExprOp::kNot: return ~a;
    case ExprOp::kEq: return a == b ? 1 : 0;
    case ExprOp::kNe: return a != b ? 1 : 0;
    case ExprOp::kLtU: return a < b ? 1 : 0;
    case ExprOp::kLeU: return a <= b ? 1 : 0;
    case ExprOp::kGtU: return a > b ? 1 : 0;
    case ExprOp::kGeU: return a >= b ? 1 : 0;
  }
  BOLT_UNREACHABLE("bad ExprOp");
}

ExprPtr Expr::constant(std::uint64_t value) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kConst;
  e->value_ = value;
  return e;
}

ExprPtr Expr::symbol(SymId id) {
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kSym;
  e->value_ = id;
  return e;
}

ExprPtr Expr::unary(ExprOp op, ExprPtr a) {
  BOLT_CHECK(op == ExprOp::kNot, "only kNot is unary");
  if (a->is_const()) return constant(~a->const_value());
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kUnary;
  e->op_ = op;
  e->a_ = std::move(a);
  return e;
}

ExprPtr Expr::binary(ExprOp op, ExprPtr a, ExprPtr b) {
  BOLT_CHECK(op != ExprOp::kNot, "kNot is not binary");
  if (a->is_const() && b->is_const()) {
    return constant(apply_op(op, a->const_value(), b->const_value()));
  }
  // Cheap algebraic identities. These keep path constraints readable and
  // help the solver's pattern matcher; they are not meant to be exhaustive.
  if (b->is_const()) {
    const std::uint64_t c = b->const_value();
    if (c == 0) {
      switch (op) {
        case ExprOp::kAdd: case ExprOp::kSub: case ExprOp::kOr:
        case ExprOp::kXor: case ExprOp::kShl: case ExprOp::kShr:
          return a;
        case ExprOp::kMul: case ExprOp::kAnd:
          return constant(0);
        default: break;
      }
    }
    if (c == 1 && op == ExprOp::kMul) return a;
    if (c == ~0ULL && op == ExprOp::kAnd) return a;
  }
  if (a->is_const()) {
    const std::uint64_t c = a->const_value();
    if (c == 0) {
      switch (op) {
        case ExprOp::kAdd: case ExprOp::kOr: case ExprOp::kXor:
          return b;
        case ExprOp::kMul: case ExprOp::kAnd:
          return constant(0);
        default: break;
      }
    }
    if (c == 1 && op == ExprOp::kMul) return b;
  }
  const bool same_value =
      a.get() == b.get() ||
      (a->is_sym() && b->is_sym() && a->sym_id() == b->sym_id());
  if (same_value) {
    switch (op) {
      case ExprOp::kSub: case ExprOp::kXor: return constant(0);
      case ExprOp::kAnd: case ExprOp::kOr: return a;
      case ExprOp::kEq: case ExprOp::kLeU: case ExprOp::kGeU: return constant(1);
      case ExprOp::kNe: case ExprOp::kLtU: case ExprOp::kGtU: return constant(0);
      default: break;
    }
  }
  auto e = std::shared_ptr<Expr>(new Expr());
  e->kind_ = ExprKind::kBinary;
  e->op_ = op;
  e->a_ = std::move(a);
  e->b_ = std::move(b);
  return e;
}

std::uint64_t Expr::const_value() const {
  BOLT_CHECK(is_const(), "not a constant expression");
  return value_;
}

SymId Expr::sym_id() const {
  BOLT_CHECK(is_sym(), "not a symbol");
  return static_cast<SymId>(value_);
}

std::uint64_t Expr::eval(const Assignment& assignment) const {
  switch (kind_) {
    case ExprKind::kConst:
      return value_;
    case ExprKind::kSym: {
      auto it = assignment.find(static_cast<SymId>(value_));
      BOLT_CHECK(it != assignment.end(), "eval: unassigned symbol");
      return it->second;
    }
    case ExprKind::kUnary:
      return ~a_->eval(assignment);
    case ExprKind::kBinary:
      return apply_op(op_, a_->eval(assignment), b_->eval(assignment));
  }
  BOLT_UNREACHABLE("bad ExprKind");
}

void Expr::collect_symbols(std::vector<SymId>& out) const {
  switch (kind_) {
    case ExprKind::kConst:
      return;
    case ExprKind::kSym:
      out.push_back(static_cast<SymId>(value_));
      return;
    case ExprKind::kUnary:
      a_->collect_symbols(out);
      return;
    case ExprKind::kBinary:
      a_->collect_symbols(out);
      b_->collect_symbols(out);
      return;
  }
}

void Expr::collect_constants(std::vector<std::uint64_t>& out) const {
  switch (kind_) {
    case ExprKind::kConst:
      out.push_back(value_);
      return;
    case ExprKind::kSym:
      return;
    case ExprKind::kUnary:
      a_->collect_constants(out);
      return;
    case ExprKind::kBinary:
      a_->collect_constants(out);
      b_->collect_constants(out);
      return;
  }
}

std::string Expr::str(const std::function<std::string(SymId)>& sym_name) const {
  switch (kind_) {
    case ExprKind::kConst:
      return std::to_string(value_);
    case ExprKind::kSym:
      return sym_name ? sym_name(static_cast<SymId>(value_))
                      : "s" + std::to_string(value_);
    case ExprKind::kUnary:
      return "~(" + a_->str(sym_name) + ")";
    case ExprKind::kBinary:
      return "(" + a_->str(sym_name) + " " + expr_op_name(op_) + " " +
             b_->str(sym_name) + ")";
  }
  BOLT_UNREACHABLE("bad ExprKind");
}

ExprPtr logical_not(const ExprPtr& e) {
  // Negate comparisons structurally when possible (keeps solver patterns).
  if (e->kind() == ExprKind::kBinary) {
    switch (e->op()) {
      case ExprOp::kEq: return Expr::binary(ExprOp::kNe, e->lhs(), e->rhs());
      case ExprOp::kNe: return Expr::binary(ExprOp::kEq, e->lhs(), e->rhs());
      case ExprOp::kLtU: return Expr::binary(ExprOp::kGeU, e->lhs(), e->rhs());
      case ExprOp::kLeU: return Expr::binary(ExprOp::kGtU, e->lhs(), e->rhs());
      case ExprOp::kGtU: return Expr::binary(ExprOp::kLeU, e->lhs(), e->rhs());
      case ExprOp::kGeU: return Expr::binary(ExprOp::kLtU, e->lhs(), e->rhs());
      default: break;
    }
  }
  return Expr::binary(ExprOp::kEq, e, Expr::constant(0));
}

SymId SymbolTable::fresh(const std::string& name, int width_bits) {
  BOLT_CHECK(width_bits >= 1 && width_bits <= 64, "bad symbol width");
  std::unique_lock<std::shared_mutex> lock(mutex_);
  const SymId id = static_cast<SymId>(entries_.size());
  entries_.push_back(Entry{name, width_bits});
  return id;
}

const std::string& SymbolTable::name(SymId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  BOLT_CHECK(id < entries_.size(), "symbol id out of range");
  // Safe to return a reference: entries are append-only (deque elements do
  // not move) except under rebuild(), which is single-threaded by contract.
  return entries_[id].name;
}

int SymbolTable::width_bits(SymId id) const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  BOLT_CHECK(id < entries_.size(), "symbol id out of range");
  return entries_[id].width_bits;
}

std::uint64_t SymbolTable::max_value(SymId id) const {
  const int w = width_bits(id);
  return w == 64 ? ~0ULL : ((1ULL << w) - 1);
}

std::size_t SymbolTable::size() const {
  std::shared_lock<std::shared_mutex> lock(mutex_);
  return entries_.size();
}

void SymbolTable::rebuild(std::vector<std::pair<std::string, int>> entries) {
  std::unique_lock<std::shared_mutex> lock(mutex_);
  entries_.clear();
  for (auto& [name, width] : entries) {
    entries_.push_back(Entry{std::move(name), width});
  }
}

}  // namespace bolt::symbex
