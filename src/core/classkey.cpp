#include "core/classkey.h"

namespace bolt::core {

std::string class_key(const std::vector<std::string>& tags,
                      const std::vector<std::pair<std::string, std::string>>&
                          call_cases) {
  std::string key;
  for (const auto& tag : tags) {
    if (!key.empty()) key += '/';
    key += tag;
  }
  if (key.empty()) key = "(untagged)";
  std::string calls;
  for (const auto& [method, case_label] : call_cases) {
    if (!calls.empty()) calls += ',';
    calls += method + "=" + case_label;
  }
  if (!calls.empty()) key += " | " + calls;
  return key;
}

}  // namespace bolt::core
