#include "core/classkey.h"

namespace bolt::core {

std::string class_key(const std::vector<std::string>& tags,
                      const std::vector<std::pair<std::string, std::string>>&
                          call_cases) {
  std::string key;
  for (const auto& tag : tags) {
    if (!key.empty()) key += '/';
    key += tag;
  }
  if (key.empty()) key = "(untagged)";
  std::string calls;
  for (const auto& [method, case_label] : call_cases) {
    if (!calls.empty()) calls += ',';
    calls += method + "=" + case_label;
  }
  if (!calls.empty()) key += " | " + calls;
  return key;
}

std::string class_key_of(const ir::RunResult& run,
                         const dslib::MethodTable* methods) {
  std::vector<std::pair<std::string, std::string>> cases;
  cases.reserve(run.calls.size());
  for (const ir::CallRec& c : run.calls) {
    std::string name = "m" + std::to_string(c.method);
    if (methods != nullptr) {
      auto it = methods->find(c.method);
      if (it != methods->end()) name = it->second.name;
    }
    cases.emplace_back(std::move(name), run.case_label_of(c));
  }
  return class_key(run.class_tag_names(), cases);
}

}  // namespace bolt::core
