// Input-class keys.
//
// A path's input class is identified by (a) the stateless class tags it
// crossed and (b) the abstract-state case of every stateful call it made
// ("learn=known", "lookup=miss", ...). The contract generator groups paths
// by this key, and the Distiller/benches rebuild the same key from concrete
// runs to find the matching contract entry.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace bolt::core {

std::string class_key(const std::vector<std::string>& tags,
                      const std::vector<std::pair<std::string, std::string>>&
                          call_cases);

}  // namespace bolt::core
