// Input-class keys.
//
// A path's input class is identified by (a) the stateless class tags it
// crossed and (b) the abstract-state case of every stateful call it made
// ("learn=known", "lookup=miss", ...). The contract generator groups paths
// by this key, and the Distiller/benches rebuild the same key from concrete
// runs to find the matching contract entry.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "dslib/method.h"
#include "ir/interp.h"

namespace bolt::core {

std::string class_key(const std::vector<std::string>& tags,
                      const std::vector<std::pair<std::string, std::string>>&
                          call_cases);

/// Materialises the class key of a concrete run from its interned ids
/// (through run.labels). `methods` maps call ids to names; unknown/absent
/// ids render as "m<id>". This is the boundary where id-carrying results
/// become strings — nothing on the per-packet fast path calls it.
std::string class_key_of(const ir::RunResult& run,
                         const dslib::MethodTable* methods);

}  // namespace bolt::core
