#include "core/runner.h"

#include "ir/decoded.h"
#include "support/assert.h"

namespace bolt::core {

NfRunner::NfRunner(std::vector<const ir::Program*> programs,
                   ir::StatefulEnv* env, ir::InterpreterOptions options)
    : programs_(std::move(programs)) {
  BOLT_CHECK(!programs_.empty(), "NfRunner needs at least one program");
  labels_ = std::make_unique<ir::RunLabels>(programs_);
  // The decoded engine folds conservative cycle accounting into per-record
  // tables; a sink without a fast_meter() needs the exact per-event trace
  // and silently falls back to the reference interpreter.
  decoded_ = options.engine == ir::EngineKind::kDecoded &&
             (options.sink == nullptr ||
              options.sink->fast_meter() != nullptr);
  engines_.reserve(programs_.size());
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    ir::LabelBinding binding{labels_.get(), labels_->tag_base(i),
                             labels_->loop_base(i)};
    if (decoded_) {
      engines_.push_back(std::make_unique<ir::DecodedInterpreter>(
          *programs_[i], env, options, binding));
    } else {
      engines_.push_back(std::make_unique<ir::Interpreter>(
          *programs_[i], env, options, binding));
    }
  }
}

ir::RunResult NfRunner::process(net::Packet& packet) {
  ir::RunResult merged;
  process_into(packet, merged);
  return merged;
}

void NfRunner::process_into(net::Packet& packet, ir::RunResult& out) {
  // Single program (the common case): run straight into the caller's
  // buffer — no merge, no intermediate result.
  if (programs_.size() == 1) {
    engines_[0]->run_into(packet, out);
    return;
  }
  out.clear();
  out.labels = labels_.get();
  out.loop_trips.assign(labels_->loop_count(), 0);
  ir::RunResult& r = chain_scratch_;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    engines_[i]->run_into(packet, r);
    out.instructions += r.instructions;
    out.mem_accesses += r.mem_accesses;
    out.stateless_instructions += r.stateless_instructions;
    out.stateless_accesses += r.stateless_accesses;
    for (const auto& [id, v] : r.pcvs.values()) {
      if (v > out.pcvs.get(id)) out.pcvs.set(id, v);
    }
    out.calls.insert(out.calls.end(), r.calls.begin(), r.calls.end());
    // Tags and loop slots are already chain-global (each engine is bound
    // to the shared label table at its own base offsets).
    out.class_tags.insert(out.class_tags.end(), r.class_tags.begin(),
                          r.class_tags.end());
    for (std::size_t l = 0; l < r.loop_trips.size(); ++l) {
      out.loop_trips[l] += r.loop_trips[l];
    }
    out.verdict = r.verdict;
    out.out_port = r.out_port;
    if (r.verdict == net::NfVerdict::kDrop) break;
  }
}

void NfRunner::process_trace(std::vector<net::Packet>& packets,
                             hw::CycleModel* sink) {
  for (net::Packet& p : packets) {
    if (sink != nullptr) sink->begin_packet();
    process(p);
  }
}

}  // namespace bolt::core
