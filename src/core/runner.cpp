#include "core/runner.h"

#include "support/assert.h"

namespace bolt::core {

NfRunner::NfRunner(std::vector<const ir::Program*> programs,
                   ir::StatefulEnv* env, ir::InterpreterOptions options)
    : programs_(std::move(programs)) {
  BOLT_CHECK(!programs_.empty(), "NfRunner needs at least one program");
  interps_.reserve(programs_.size());
  for (const ir::Program* p : programs_) {
    interps_.emplace_back(*p, env, options);
  }
}

ir::RunResult NfRunner::process(net::Packet& packet) {
  ir::RunResult merged;
  process_into(packet, merged);
  return merged;
}

void NfRunner::process_into(net::Packet& packet, ir::RunResult& out) {
  // Single program (the common case): run straight into the caller's
  // buffer — no merge, no intermediate result.
  if (programs_.size() == 1) {
    interps_[0].run_into(packet, out);
    return;
  }
  out.clear();
  ir::RunResult& r = chain_scratch_;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    interps_[i].run_into(packet, r);
    out.instructions += r.instructions;
    out.mem_accesses += r.mem_accesses;
    out.stateless_instructions += r.stateless_instructions;
    out.stateless_accesses += r.stateless_accesses;
    for (const auto& [id, v] : r.pcvs.values()) {
      if (v > out.pcvs.get(id)) out.pcvs.set(id, v);
    }
    for (auto& call : r.calls) out.calls.push_back(std::move(call));
    for (auto& tag : r.class_tags) {
      out.class_tags.push_back(programs_[i]->name + ":" + tag);
    }
    for (const auto& [loop, trips] : r.loop_trips) {
      out.loop_trips[static_cast<std::int64_t>(i) * 1000 + loop] += trips;
    }
    out.verdict = r.verdict;
    out.out_port = r.out_port;
    if (r.verdict == net::NfVerdict::kDrop) break;
  }
}

void NfRunner::process_trace(std::vector<net::Packet>& packets,
                             hw::CycleModel* sink) {
  for (net::Packet& p : packets) {
    if (sink != nullptr) sink->begin_packet();
    process(p);
  }
}

}  // namespace bolt::core
