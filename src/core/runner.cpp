#include "core/runner.h"

#include "support/assert.h"

namespace bolt::core {

NfRunner::NfRunner(std::vector<const ir::Program*> programs,
                   ir::StatefulEnv* env, ir::InterpreterOptions options)
    : programs_(std::move(programs)) {
  BOLT_CHECK(!programs_.empty(), "NfRunner needs at least one program");
  interps_.reserve(programs_.size());
  for (const ir::Program* p : programs_) {
    interps_.emplace_back(*p, env, options);
  }
}

ir::RunResult NfRunner::process(net::Packet& packet) {
  ir::RunResult merged;
  const bool chain = programs_.size() > 1;
  for (std::size_t i = 0; i < programs_.size(); ++i) {
    ir::RunResult r = interps_[i].run(packet);
    merged.instructions += r.instructions;
    merged.mem_accesses += r.mem_accesses;
    merged.stateless_instructions += r.stateless_instructions;
    merged.stateless_accesses += r.stateless_accesses;
    for (const auto& [id, v] : r.pcvs.values()) {
      if (v > merged.pcvs.get(id)) merged.pcvs.set(id, v);
    }
    for (auto& call : r.calls) merged.calls.push_back(std::move(call));
    for (auto& tag : r.class_tags) {
      merged.class_tags.push_back(chain ? programs_[i]->name + ":" + tag
                                        : std::move(tag));
    }
    for (const auto& [loop, trips] : r.loop_trips) {
      merged.loop_trips[static_cast<std::int64_t>(i) * 1000 + loop] += trips;
    }
    merged.verdict = r.verdict;
    merged.out_port = r.out_port;
    if (r.verdict == net::NfVerdict::kDrop) break;
  }
  return merged;
}

void NfRunner::process_trace(std::vector<net::Packet>& packets,
                             hw::CycleModel* sink) {
  for (net::Packet& p : packets) {
    if (sink != nullptr) sink->begin_packet();
    process(p);
  }
}

}  // namespace bolt::core
