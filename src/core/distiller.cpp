#include "core/distiller.h"

#include <algorithm>

#include "core/classkey.h"
#include "support/assert.h"
#include "support/strings.h"

namespace bolt::core {

DistillerReport Distiller::run(std::vector<net::Packet>& packets) {
  DistillerReport report;
  report.records.reserve(packets.size());
  for (net::Packet& packet : packets) {
    if (sink_ != nullptr) sink_->begin_packet();
    const ir::RunResult run = runner_.process(packet);

    PacketRecord rec;
    rec.class_key = class_key_of(run, methods_);
    rec.pcvs = run.pcvs;
    rec.instructions = run.instructions;
    rec.mem_accesses = run.mem_accesses;
    rec.cycles = sink_ != nullptr ? sink_->packet_cycles() : 0;
    rec.verdict = run.verdict;
    report.records.push_back(std::move(rec));
  }
  return report;
}

std::map<std::uint64_t, std::uint64_t> DistillerReport::histogram(
    perf::PcvId pcv) const {
  std::map<std::uint64_t, std::uint64_t> out;
  for (const PacketRecord& r : records) ++out[r.pcvs.get(pcv)];
  return out;
}

std::vector<std::pair<std::uint64_t, double>> DistillerReport::density(
    perf::PcvId pcv) const {
  const auto hist = histogram(pcv);
  std::vector<std::pair<std::uint64_t, double>> out;
  const double total = static_cast<double>(records.size());
  out.reserve(hist.size());
  for (const auto& [value, count] : hist) {
    out.emplace_back(value, 100.0 * static_cast<double>(count) / total);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> DistillerReport::ccdf(
    perf::PcvId pcv) const {
  const auto hist = histogram(pcv);
  std::vector<std::pair<std::uint64_t, double>> out;
  const double total = static_cast<double>(records.size());
  std::uint64_t at_most = 0;
  for (const auto& [value, count] : hist) {
    at_most += count;
    out.emplace_back(value, 1.0 - static_cast<double>(at_most) / total);
  }
  return out;
}

std::vector<std::pair<std::uint64_t, double>> DistillerReport::ccdf_of(
    const std::string& field) const {
  std::vector<std::uint64_t> values;
  values.reserve(records.size());
  for (const PacketRecord& r : records) {
    if (field == "cycles") values.push_back(r.cycles);
    else if (field == "instructions") values.push_back(r.instructions);
    else if (field == "mem_accesses") values.push_back(r.mem_accesses);
    else BOLT_UNREACHABLE("unknown field: " + field);
  }
  std::sort(values.begin(), values.end());
  std::vector<std::pair<std::uint64_t, double>> out;
  const double total = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i + 1 < values.size() && values[i + 1] == values[i]) continue;
    out.emplace_back(values[i], 1.0 - static_cast<double>(i + 1) / total);
  }
  return out;
}

perf::PcvBinding DistillerReport::worst_binding() const {
  return worst_binding_for("");
}

perf::PcvBinding DistillerReport::worst_binding_for(
    const std::string& class_substr) const {
  perf::PcvBinding out;
  for (const PacketRecord& r : records) {
    if (!class_substr.empty() &&
        r.class_key.find(class_substr) == std::string::npos) {
      continue;
    }
    for (const auto& [id, v] : r.pcvs.values()) {
      if (v > out.get(id)) out.set(id, v);
    }
  }
  return out;
}

std::uint64_t DistillerReport::worst_measured(
    const std::string& field, const std::string& class_substr) const {
  std::uint64_t worst = 0;
  for (const PacketRecord& r : records) {
    if (!class_substr.empty() &&
        r.class_key.find(class_substr) == std::string::npos) {
      continue;
    }
    std::uint64_t v = 0;
    if (field == "cycles") v = r.cycles;
    else if (field == "instructions") v = r.instructions;
    else if (field == "mem_accesses") v = r.mem_accesses;
    else BOLT_UNREACHABLE("unknown field: " + field);
    worst = std::max(worst, v);
  }
  return worst;
}

std::string DistillerReport::density_table(perf::PcvId pcv,
                                           const perf::PcvRegistry& reg) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Number of " + reg.description(pcv), "Probability Density (%)"});
  for (const auto& [value, pct] : density(pcv)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.4g", pct);
    rows.push_back({std::to_string(value), buf});
  }
  return support::render_table(rows);
}

}  // namespace bolt::core
