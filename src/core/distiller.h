// The BOLT Distiller (paper §4).
//
// Feeds a traffic sample (typically read from a PCAP) through the real NF
// and logs, per packet, the input class taken, the PCV values induced, and
// the measured costs. The report supports the paper's workflows: PCV
// distributions (Tables 7/8), CCDFs (Figures 2/4), and binding PCVs into a
// contract to compare predicted vs measured (Figure 1 methodology).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/runner.h"
#include "dslib/method.h"
#include "hw/models.h"
#include "net/packet.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::core {

struct PacketRecord {
  std::string class_key;
  perf::PcvBinding pcvs;
  std::uint64_t instructions = 0;
  std::uint64_t mem_accesses = 0;
  std::uint64_t cycles = 0;  ///< realistic-simulator cycles (0 if no sink)
  net::NfVerdict verdict = net::NfVerdict::kDrop;
};

class DistillerReport {
 public:
  std::vector<PacketRecord> records;

  /// Histogram of a PCV across all packets: value -> packet count.
  std::map<std::uint64_t, std::uint64_t> histogram(perf::PcvId pcv) const;

  /// Probability-density table like the paper's Tables 7/8 (value, %).
  std::vector<std::pair<std::uint64_t, double>> density(perf::PcvId pcv) const;

  /// CCDF points for a PCV: fraction of packets with value > x.
  std::vector<std::pair<std::uint64_t, double>> ccdf(perf::PcvId pcv) const;

  /// CCDF over a per-packet measured quantity selected by `field`:
  /// "cycles", "instructions" or "mem_accesses".
  std::vector<std::pair<std::uint64_t, double>> ccdf_of(
      const std::string& field) const;

  /// The worst observed binding (per-PCV max) — what operators feed into a
  /// contract to get a concrete prediction for the sampled workload.
  perf::PcvBinding worst_binding() const;
  /// Worst binding restricted to packets of one class key.
  perf::PcvBinding worst_binding_for(const std::string& class_substr) const;

  /// Worst measured value for packets of one class ("" = all).
  std::uint64_t worst_measured(const std::string& field,
                               const std::string& class_substr = "") const;

  std::string density_table(perf::PcvId pcv, const perf::PcvRegistry& reg) const;
};

class Distiller {
 public:
  /// `sink` (optional) supplies the measured-cycles column; pass a
  /// RealisticSim to emulate the testbed, or nullptr to skip cycles.
  /// `methods` (optional) lets records carry the same method names the
  /// contract generator uses, so record class keys match contract entries.
  Distiller(NfRunner& runner, hw::CycleModel* sink = nullptr,
            const dslib::MethodTable* methods = nullptr)
      : runner_(runner), sink_(sink), methods_(methods) {}

  /// Processes the packets in order (mutating them, as the NF would).
  DistillerReport run(std::vector<net::Packet>& packets);

 private:
  NfRunner& runner_;
  hw::CycleModel* sink_;
  const dslib::MethodTable* methods_;
};

}  // namespace bolt::core
