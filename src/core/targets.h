// Named analysis/measurement targets — one registry of "the NFs this
// artifact ships", shared by the CLI, the contract monitor, and the bench
// harnesses, so a contract generated for "nat" and a monitor shard
// validating "nat" are guaranteed to wire the very same configuration.
//
// A target is either instance-backed (stateful NF behind the dispatcher)
// or a chain of stateless programs (firewall, static router, fw+router).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/bolt.h"
#include "core/runner.h"
#include "core/scenarios.h"
#include "dslib/method.h"
#include "ir/program.h"
#include "nf/framework.h"
#include "perf/pcv.h"

namespace bolt::core {

/// One analysable + runnable NF (or chain). Move-only (owns live state).
struct NfTarget {
  std::string name;
  NfInstance instance;                 ///< when stateful
  std::vector<ir::Program> stateless;  ///< when a stateless program/chain
  dslib::MethodTable no_methods;       ///< empty table for stateless chains
  bool is_stateless = false;

  /// View for the contract generator.
  NfAnalysis analysis() const;

  /// The chain's programs, in execution order.
  std::vector<const ir::Program*> programs() const;

  /// Method table used for class-key construction (empty when stateless).
  const dslib::MethodTable& methods() const {
    return is_stateless ? no_methods : instance.methods;
  }

  /// Concrete runner (measurement side). `sink` may be null. `engine`
  /// selects the execution fast path (see ir::EngineKind).
  std::unique_ptr<NfRunner> make_runner(
      const nf::FrameworkCosts& fw = nf::framework_full(),
      ir::TraceSink* sink = nullptr,
      ir::EngineKind engine = ir::EngineKind::kDecoded) const;

  /// The name contracts generated for this target carry (the analysis
  /// name; differs from the registry name for the LPM targets). Used to
  /// cross-check stored contract artifacts against the monitored target.
  std::string contract_name() const {
    return is_stateless ? name : instance.name;
  }

  /// Long-running-operation observers (see NfInstance); no-ops for
  /// stateless chains and static-state NFs.
  std::size_t state_occupancy() const {
    return !is_stateless && instance.state_occupancy
               ? instance.state_occupancy()
               : 0;
  }
  std::uint64_t expire_state(net::TimestampNs now_ns) const {
    return !is_stateless && instance.state_expire
               ? instance.state_expire(now_ns)
               : 0;
  }
  bool has_state_observers() const {
    return !is_stateless && static_cast<bool>(instance.state_occupancy);
  }
};

/// Builds the target registered under `name`:
///   bridge | nat | nat-b | lb | lpm | lpm-simple | firewall | router |
///   fw+router
/// PCVs are interned into `reg`. Returns false for unknown names.
bool make_named_target(const std::string& name, perf::PcvRegistry& reg,
                       NfTarget& out);

/// The names make_named_target accepts, for usage strings.
const std::vector<std::string>& named_targets();

}  // namespace bolt::core
