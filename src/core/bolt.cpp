#include "core/bolt.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "core/classkey.h"
#include "core/runner.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace bolt::core {

using perf::Metric;
using perf::MetricExprs;
using perf::PerfExpr;

namespace {

/// Replays a path: stateful calls return the solver-chosen concrete values
/// in call order, at zero metered cost (the contracts price them instead).
class ReplayEnv final : public ir::StatefulEnv {
 public:
  explicit ReplayEnv(const symbex::PathResult& path) : path_(path) {}

  ir::CallOutcome call(std::int64_t method, std::uint64_t, std::uint64_t,
                       const net::Packet&, ir::CostMeter&) override {
    BOLT_CHECK(next_ < path_.calls.size(), "replay: extra stateful call");
    const symbex::PathCall& c = path_.calls[next_++];
    BOLT_CHECK(c.method == method, "replay: stateful call order diverged");
    ir::CallOutcome out;
    out.v0 = c.ret0->eval(path_.model);
    out.v1 = c.ret1->eval(path_.model);
    out.case_label = c.case_label.c_str();  // path_ outlives the interning
    return out;
  }

  std::size_t calls_made() const { return next_; }

 private:
  const symbex::PathResult& path_;
  std::size_t next_ = 0;
};

std::vector<std::pair<std::string, std::string>> call_cases_of(
    const symbex::PathResult& path, const dslib::MethodTable& methods) {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(path.calls.size());
  for (const symbex::PathCall& c : path.calls) {
    auto it = methods.find(c.method);
    BOLT_CHECK(it != methods.end(), "path calls unknown method");
    out.emplace_back(it->second.name, c.case_label);
  }
  return out;
}

}  // namespace

net::Packet packet_from_path(const symbex::PathResult& path) {
  BOLT_CHECK(path.solved, "cannot build a packet for an unsolved path");
  std::uint64_t len = 60;
  for (const symbex::PacketField& f : path.fields) {
    len = std::max(len, f.offset + f.width);
  }
  if (path.has_len_sym) {
    auto it = path.model.find(path.len_sym);
    if (it != path.model.end()) len = std::max(len, it->second);
  }
  std::vector<std::uint8_t> bytes(len, 0);
  for (const symbex::PacketField& f : path.fields) {
    auto it = path.model.find(f.sym);
    std::uint64_t v = it != path.model.end() ? it->second : 0;
    for (int i = f.width - 1; i >= 0; --i) {
      bytes[f.offset + std::size_t(i)] = static_cast<std::uint8_t>(v & 0xff);
      v >>= 8;
    }
  }
  net::TimestampNs ts = 1'000'000'000ULL;
  if (path.has_time_sym) {
    auto it = path.model.find(path.time_sym);
    if (it != path.model.end()) ts = it->second;
  }
  std::uint16_t port = 0;
  if (path.has_port_sym) {
    auto it = path.model.find(path.port_sym);
    if (it != path.model.end()) port = static_cast<std::uint16_t>(it->second);
  }
  return net::Packet(std::move(bytes), ts, port);
}

ContractGenerator::ContractGenerator(perf::PcvRegistry& reg,
                                     BoltOptions options)
    : reg_(reg), options_(std::move(options)) {}

GenerationResult ContractGenerator::generate(const NfAnalysis& nf) {
  BOLT_CHECK(nf.methods != nullptr, "NfAnalysis needs a method table");
  GenerationResult result;
  result.contract = perf::Contract(nf.name);

  // 1) Substitute models (Alg. 2 line 2) and explore all paths (line 3).
  //    The executor fans exploration out across worker threads and returns
  //    paths canonicalized (sorted, symbols renumbered), so everything
  //    downstream is independent of the thread count.
  std::map<std::int64_t, symbex::SymbolicModel> models;
  for (const auto& [id, spec] : *nf.methods) models.emplace(id, spec.model);
  symbex::ExecutorOptions exec_options = options_.executor;
  if (exec_options.threads == 0) exec_options.threads = options_.threads;
  symbex::Executor executor(nf.programs, std::move(models), exec_options);
  std::vector<symbex::PathResult> paths = executor.run();
  result.executor_stats = executor.stats();
  result.total_paths = paths.size();

  // 2) Solve for concrete inputs (line 6) — one independent solve per path,
  //    fanned out inside solve_inputs.
  executor.solve_inputs(paths);

  // 3) Replay each path and assemble its expressions (lines 7-15). Replays
  //    are independent (each gets its own interpreter + cycle model over
  //    the shared read-only programs), so they fan out across the pool;
  //    report slots are preassigned so the output order stays canonical.
  const hw::CycleCosts& cc = options_.cycle_costs;
  result.path_reports.resize(paths.size());
  std::atomic<std::size_t> unsolved{0};
  // The pipeline-wide knob sizes this pool (executor.threads only governs
  // the exploration/solving stages above), capped at one worker per path.
  support::ThreadPool pool(
      std::min(support::resolve_threads(options_.threads),
               std::max<std::size_t>(paths.size(), 1)));
  pool.parallel_for(0, paths.size(), [&](std::size_t path_index) {
    const symbex::PathResult& path = paths[path_index];
    PathReport& report = result.path_reports[path_index];
    report.action = path.action;
    report.loop_trips = path.loop_trips;
    report.class_key = class_key(path.class_tags, call_cases_of(path, *nf.methods));
    if (!path.solved) {
      unsolved.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    report.solved = true;

    net::Packet packet = packet_from_path(path);
    report.input = packet;  // keep the pristine witness (the replay mutates)
    ReplayEnv env(path);
    // One conservative cycle model per worker thread, reused across paths
    // (and, on persistent threads, across generate() calls): its must-hit
    // L1 array is the single biggest allocation on this path, and
    // begin_packet() resets the analysis per path in O(1) (epoch clear).
    // Indices still come from the pool's dynamic grab, so an expensive
    // path never serializes a stripe of cheap ones behind it.
    struct ModelSlot {
      hw::CycleCosts costs;
      std::unique_ptr<hw::ConservativeModel> model;
    };
    thread_local ModelSlot slot;
    if (slot.model == nullptr || !(slot.costs == cc)) {
      slot.model = std::make_unique<hw::ConservativeModel>(cc);
      slot.costs = cc;
    }
    hw::ConservativeModel& cycles_model = *slot.model;
    ir::InterpreterOptions iopts;
    nf::apply_framework(iopts, options_.framework);
    iopts.sink = &cycles_model;
    iopts.scratch_init = options_.executor.scratch_init;
    NfRunner runner(nf.programs, &env, iopts);
    cycles_model.begin_packet();
    const ir::RunResult run = runner.process(packet);

    // The replay must follow exactly the symbolic path.
    BOLT_CHECK(env.calls_made() == path.calls.size(),
               nf.name + ": replay diverged (call count)");
    BOLT_CHECK(run.class_tag_names() == path.class_tags,
               nf.name + ": replay diverged (class tags)");
    BOLT_CHECK(run.loop_trips_map() == path.loop_trips,
               nf.name + ": replay diverged (loop trips)");

    report.stateless_instructions = run.instructions;
    report.stateless_accesses = run.mem_accesses;
    report.stateless_cycles = cycles_model.packet_cycles();

    PerfExpr instr = PerfExpr::constant(
        static_cast<std::int64_t>(report.stateless_instructions));
    PerfExpr ma = PerfExpr::constant(
        static_cast<std::int64_t>(report.stateless_accesses));
    PerfExpr cycles = PerfExpr::constant(
        static_cast<std::int64_t>(report.stateless_cycles));
    for (const symbex::PathCall& c : path.calls) {
      const perf::MethodContract& mc = nf.methods->at(c.method).contract;
      const MetricExprs& case_exprs = mc.for_case(c.case_label);
      instr += case_exprs.get(Metric::kInstructions);
      ma += case_exprs.get(Metric::kMemoryAccesses);
      // Conservative cycles for stateful code: worst-case ALU cost per
      // instruction; main-memory latency for every *unique-line* access
      // and L1 latency for the same-line repeats the method contract can
      // prove (paper §3.5's spatial/temporal locality tracking).
      const PerfExpr& unique = mc.unique_lines(c.case_label);
      const PerfExpr repeats =
          case_exprs.get(Metric::kMemoryAccesses) + unique.scaled(-1);
      cycles += case_exprs.get(Metric::kInstructions)
                    .scaled(static_cast<std::int64_t>(cc.cons_alu));
      cycles += unique.scaled(static_cast<std::int64_t>(cc.cons_dram));
      cycles += repeats.scaled(static_cast<std::int64_t>(cc.cons_l1));
    }
    report.exprs.set(Metric::kInstructions, std::move(instr));
    report.exprs.set(Metric::kMemoryAccesses, std::move(ma));
    report.exprs.set(Metric::kCycles, std::move(cycles));
  });
  result.unsolved_paths = unsolved.load();

  // 4) Group paths into input classes and coalesce (paper §3.2/§6). This
  //    merge is sequential and deterministic: reports arrive in canonical
  //    path order and groups iterate sorted by class key.
  std::map<std::string, std::vector<const PathReport*>> groups;
  for (const PathReport& r : result.path_reports) {
    if (r.solved) groups[r.class_key].push_back(&r);
  }
  result.contract.reserve(options_.coalesce ? groups.size()
                                            : result.path_reports.size());

  for (const auto& [key, members] : groups) {
    if (!options_.coalesce) {
      std::size_t i = 0;
      for (const PathReport* r : members) {
        perf::ContractEntry entry;
        entry.input_class =
            members.size() == 1 ? key : key + " #" + std::to_string(i++);
        entry.perf = r->exprs;
        entry.paths_coalesced = 1;
        result.contract.add(std::move(entry));
      }
      continue;
    }

    perf::ContractEntry entry;
    entry.input_class = key;
    entry.paths_coalesced = members.size();

    // Loop linearisation: if the group's paths differ in the trip count of
    // exactly one loop, fold them into an expression linear in that count.
    std::int64_t varying_loop = -1;
    bool linearizable = options_.linearize_loops && members.size() >= 2;
    if (linearizable) {
      std::map<std::int64_t, std::vector<std::uint64_t>> trips_by_loop;
      for (const PathReport* r : members) {
        for (const auto& [loop, trips] : r->loop_trips) {
          trips_by_loop[loop].push_back(trips);
        }
      }
      for (const auto& [loop, values] : trips_by_loop) {
        const bool varies = *std::min_element(values.begin(), values.end()) !=
                            *std::max_element(values.begin(), values.end());
        if (varies) {
          if (varying_loop != -1) {
            linearizable = false;  // more than one varying loop: bail out
            break;
          }
          varying_loop = loop;
        }
      }
      if (varying_loop == -1) linearizable = false;
    }

    if (linearizable) {
      // PCV named after the loop (e.g. the static router's "n").
      const std::size_t prog_index =
          static_cast<std::size_t>(varying_loop / 1000);
      const std::size_t loop_imm = static_cast<std::size_t>(varying_loop % 1000);
      const std::string& loop_name = nf.programs[prog_index]->loops[loop_imm];
      const perf::PcvId n =
          reg_.intern(loop_name, "loop trip count (" + loop_name + ")");

      for (Metric m : perf::kAllMetrics) {
        // Points: trips -> worst constant term among paths with that count.
        // The non-constant (stateful) parts are upper-maxed separately.
        std::map<std::uint64_t, std::int64_t> worst_const;
        PerfExpr stateful_part;
        for (const PathReport* r : members) {
          const PerfExpr& e = r->exprs.get(m);
          auto it = r->loop_trips.find(varying_loop);
          const std::uint64_t trips = it == r->loop_trips.end() ? 0 : it->second;
          const std::int64_t c = e.constant_term();
          auto [wit, inserted] = worst_const.emplace(trips, c);
          if (!inserted) wit->second = std::max(wit->second, c);
          PerfExpr rest = e + PerfExpr::constant(-c);
          stateful_part = PerfExpr::upper_max(stateful_part, rest);
        }
        // Conservative affine fit: slope = max forward difference,
        // intercept = max(value - slope * trips).
        std::int64_t slope = 0;
        const auto first = worst_const.begin();
        for (auto it = std::next(first); it != worst_const.end(); ++it) {
          const auto prev = std::prev(it);
          const std::int64_t dv = it->second - prev->second;
          const std::int64_t dn =
              static_cast<std::int64_t>(it->first - prev->first);
          slope = std::max(slope, (dv + dn - 1) / dn);  // ceil division
        }
        std::int64_t intercept = 0;
        for (const auto& [trips, value] : worst_const) {
          intercept = std::max(
              intercept, value - slope * static_cast<std::int64_t>(trips));
        }
        PerfExpr folded = stateful_part +
                          PerfExpr::pcv(n).scaled(slope) +
                          PerfExpr::constant(intercept);
        entry.perf.set(m, std::move(folded));
      }
    } else {
      MetricExprs merged = members.front()->exprs;
      for (std::size_t i = 1; i < members.size(); ++i) {
        merged = MetricExprs::upper_max(merged, members[i]->exprs);
      }
      entry.perf = merged;
    }
    result.contract.add(std::move(entry));
  }

  return result;
}

}  // namespace bolt::core
