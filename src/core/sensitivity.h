// Sensitivity analysis (paper §4): combine a contract with a Distiller
// report to answer "how much does performance change as PCV X grows, and
// how much of my traffic is actually affected?" — the analysis behind
// Figure 2's threshold choice and the paper's 32%-worse-for-1%-of-traffic
// example.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distiller.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::core {

struct SensitivityPoint {
  std::uint64_t pcv_value = 0;
  double traffic_fraction_at = 0.0;     ///< P[PCV == value] in the sample
  double traffic_fraction_above = 0.0;  ///< P[PCV > value] (CCDF)
  std::int64_t predicted = 0;           ///< metric at this PCV value
};

struct SensitivityReport {
  perf::PcvId pcv = 0;
  std::string input_class;
  perf::Metric metric = perf::Metric::kInstructions;
  std::vector<SensitivityPoint> points;

  /// Relative cost growth from the first to the last point (the paper's
  /// "longer prefixes lead to 32% worse performance" style of statement).
  double growth() const;

  std::string table(const perf::PcvRegistry& reg) const;
};

/// Sweeps `pcv` from 0 to the sample's maximum (or `max_value` if larger),
/// evaluating `entry`'s expression with the remaining PCVs pinned at the
/// sample's *median-like* values (the per-class worst binding with `pcv`
/// overridden), and annotating each point with the observed traffic
/// fraction.
SensitivityReport sensitivity(const perf::ContractEntry& entry,
                              perf::Metric metric, perf::PcvId pcv,
                              const DistillerReport& sample,
                              std::uint64_t max_value = 0);

}  // namespace bolt::core
