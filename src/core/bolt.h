// ContractGenerator — BOLT's Algorithm 2, end to end:
//
//   1. substitute symbolic models for stateful methods,
//   2. symbolically execute the stateless NF (or NF chain) exhaustively,
//   3. solve each path's constraints for a concrete input packet,
//   4. replay that input concretely, tracing instructions, memory accesses,
//      and conservative cycles for the stateless code, and
//   5. fold in the manual method contracts at every stateful call site,
//      selecting the case recorded by the model.
//
// Paths are then grouped into input classes (stateless class tags +
// stateful case labels) with conservative coalescing; families of unrolled
// loop paths are folded back into closed forms linear in the loop count
// (how the static router's "79*n + 646" arises).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dslib/method.h"
#include "hw/models.h"
#include "ir/program.h"
#include "nf/framework.h"
#include "perf/contract.h"
#include "perf/pcv.h"
#include "symbex/executor.h"

namespace bolt::core {

struct BoltOptions {
  symbex::ExecutorOptions executor;
  nf::FrameworkCosts framework = nf::framework_full();
  hw::CycleCosts cycle_costs = hw::default_cycle_costs();
  /// Worker threads for the whole pipeline — path exploration, per-path
  /// input solving, and concrete replay all fan out across this many
  /// workers (0 = one per hardware thread). Contracts are bit-identical
  /// at any thread count: paths are canonicalized and sorted by class key
  /// before coalescing. An explicitly set `executor.threads` wins for the
  /// exploration stage.
  std::size_t threads = 0;
  /// Conservative coalescing of paths into classes (ablation: off keeps one
  /// contract entry per path).
  bool coalesce = true;
  /// Fold unrolled-loop path families into expressions linear in the trip
  /// count (PCV named after the loop).
  bool linearize_loops = true;
};

/// What to analyse: a chain of programs plus the stateful method table
/// (models + manual contracts) they call into.
struct NfAnalysis {
  std::string name;
  std::vector<const ir::Program*> programs;
  const dslib::MethodTable* methods = nullptr;
};

/// Per-path detail, kept for inspection and for the experiments.
struct PathReport {
  std::string class_key;
  symbex::PathAction action = symbex::PathAction::kDrop;
  bool solved = false;
  /// The solved witness input (GetInputsForPath materialised): the concrete
  /// packet whose replay produced this path. Valid iff `solved` — this is
  /// what the adversarial workload synthesiser (src/adversary) seeds each
  /// class's traffic from.
  net::Packet input;
  std::uint64_t stateless_instructions = 0;
  std::uint64_t stateless_accesses = 0;
  std::uint64_t stateless_cycles = 0;  ///< conservative, from the replay trace
  std::map<std::int64_t, std::uint64_t> loop_trips;
  perf::MetricExprs exprs;  ///< full path expressions (stateless + stateful)
};

struct GenerationResult {
  perf::Contract contract;
  std::vector<PathReport> path_reports;
  symbex::ExecutorStats executor_stats;
  std::size_t total_paths = 0;
  std::size_t unsolved_paths = 0;
};

class ContractGenerator {
 public:
  ContractGenerator(perf::PcvRegistry& reg, BoltOptions options = {});

  GenerationResult generate(const NfAnalysis& nf);

 private:
  perf::PcvRegistry& reg_;
  BoltOptions options_;
};

/// Reconstructs the concrete input packet for a solved path (paper Alg. 2
/// line 6: GetInputsForPath). Exposed for tests.
net::Packet packet_from_path(const symbex::PathResult& path);

}  // namespace bolt::core
