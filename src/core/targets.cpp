#include "core/targets.h"

#include "nf/firewall.h"

namespace bolt::core {

NfAnalysis NfTarget::analysis() const {
  if (!is_stateless) return instance.analysis();
  NfAnalysis a;
  a.name = name;
  for (const auto& p : stateless) a.programs.push_back(&p);
  a.methods = &no_methods;
  return a;
}

std::vector<const ir::Program*> NfTarget::programs() const {
  if (!is_stateless) return {&instance.program};
  std::vector<const ir::Program*> out;
  for (const auto& p : stateless) out.push_back(&p);
  return out;
}

std::unique_ptr<NfRunner> NfTarget::make_runner(const nf::FrameworkCosts& fw,
                                                ir::TraceSink* sink,
                                                ir::EngineKind engine) const {
  if (!is_stateless) return instance.make_runner(fw, sink, engine);
  ir::InterpreterOptions opts;
  nf::apply_framework(opts, fw);
  opts.sink = sink;
  opts.engine = engine;
  return std::make_unique<NfRunner>(programs(), nullptr, opts);
}

bool make_named_target(const std::string& name, perf::PcvRegistry& reg,
                       NfTarget& out) {
  out.name = name;
  if (name == "bridge") {
    out.instance = make_bridge(reg, default_bridge_config());
  } else if (name == "nat" || name == "nat-b") {
    auto cfg = default_nat_config();
    if (name == "nat-b") cfg.allocator = dslib::NatState::AllocatorKind::kB;
    out.instance = make_nat(reg, cfg);
  } else if (name == "lb") {
    out.instance = make_lb(reg, default_lb_config());
  } else if (name == "lpm") {
    out.instance = make_dir_lpm(reg);
  } else if (name == "lpm-simple") {
    out.instance = make_simple_lpm(reg);
  } else if (name == "firewall") {
    out.stateless.push_back(nf::Firewall::program());
    out.is_stateless = true;
  } else if (name == "router") {
    out.stateless.push_back(nf::StaticRouter::program());
    out.is_stateless = true;
  } else if (name == "fw+router") {
    out.stateless.push_back(nf::Firewall::program());
    out.stateless.push_back(nf::StaticRouter::program());
    out.is_stateless = true;
  } else {
    return false;
  }
  return true;
}

const std::vector<std::string>& named_targets() {
  static const std::vector<std::string> kNames = {
      "bridge", "nat",    "nat-b",  "lb",        "lpm",
      "lpm-simple", "firewall", "router", "fw+router"};
  return kNames;
}

}  // namespace bolt::core
