#include "core/scenarios.h"

#include "ir/cost.h"

#include "nf/bridge.h"
#include "nf/lb.h"
#include "nf/lpm_router.h"
#include "nf/nat.h"

namespace bolt::core {

dslib::MacTable::Config default_bridge_config() {
  dslib::MacTable::Config cfg;
  cfg.capacity = 4096;
  cfg.ttl_ns = 30'000'000'000;
  cfg.stamp_granularity_ns = 1'000'000;
  cfg.rehash_threshold = 6;
  return cfg;
}

dslib::NatState::Config default_nat_config() {
  dslib::NatState::Config cfg;
  cfg.flow.capacity = 4096;
  cfg.flow.ttl_ns = 10'000'000'000;
  cfg.flow.stamp_granularity_ns = 1'000'000;  // the *fixed* VigNAT
  return cfg;
}

dslib::LbState::Config default_lb_config() {
  dslib::LbState::Config cfg;
  cfg.flow.capacity = 4096;
  cfg.flow.ttl_ns = 10'000'000'000;
  cfg.flow.stamp_granularity_ns = 1'000'000;
  cfg.ring.backend_count = 16;
  cfg.ring.table_size = 4099;
  return cfg;
}

NfInstance make_bridge(perf::PcvRegistry& reg,
                       const dslib::MacTable::Config& config) {
  // Deterministic per-kind arena bank: the same NF always occupies the
  // same address space regardless of which thread built it, and different
  // NF kinds stay disjoint if ever composed into one simulated memory.
  ir::ArenaAllocator::reset(0);
  NfInstance nf;
  nf.name = "bridge";
  nf.program = nf::Bridge::program();
  nf.methods = nf::Bridge::methods(reg, config);
  auto state = std::make_shared<dslib::BridgeState>(config, reg);
  nf.env = std::make_unique<dslib::DispatchEnv>();
  state->bind(*nf.env);
  dslib::BridgeState* raw = state.get();
  nf.state_occupancy = [raw] { return raw->mac_table().occupancy(); };
  nf.state_expire = [raw](net::TimestampNs now_ns) {
    ir::CostMeter silent;
    return raw->mac_table().expire(now_ns, silent).expired;
  };
  nf.state = std::move(state);
  return nf;
}

NfInstance make_nat(perf::PcvRegistry& reg,
                    const dslib::NatState::Config& config) {
  // Deterministic per-kind arena bank: the same NF always occupies the
  // same address space regardless of which thread built it, and different
  // NF kinds stay disjoint if ever composed into one simulated memory.
  ir::ArenaAllocator::reset(1);
  NfInstance nf;
  // The allocator variant is part of the contract's identity: a stored
  // "nat" artifact must never be mistaken for allocator-B bounds (the
  // monitor's --contract cross-check relies on this name).
  nf.name = config.allocator == dslib::NatState::AllocatorKind::kB ? "nat-b"
                                                                   : "nat";
  nf.program = nf::Nat::program(config.external_ip);
  nf.methods = nf::Nat::methods(reg, config);
  auto state = std::make_shared<dslib::NatState>(config, reg);
  nf.env = std::make_unique<dslib::DispatchEnv>();
  state->bind(*nf.env);
  dslib::NatState* raw = state.get();
  nf.state_occupancy = [raw] { return raw->internal_table().occupancy(); };
  nf.state_expire = [raw](net::TimestampNs now_ns) {
    ir::CostMeter silent;
    return raw->sweep_expired(now_ns, silent).flow.expired;
  };
  nf.state = std::move(state);
  return nf;
}

NfInstance make_lb(perf::PcvRegistry& reg,
                   const dslib::LbState::Config& config) {
  // Deterministic per-kind arena bank: the same NF always occupies the
  // same address space regardless of which thread built it, and different
  // NF kinds stay disjoint if ever composed into one simulated memory.
  ir::ArenaAllocator::reset(2);
  NfInstance nf;
  nf.name = "lb";
  nf.program = nf::Lb::program(config.heartbeat_port);
  nf.methods = nf::Lb::methods(reg, config);
  auto state = std::make_shared<dslib::LbState>(config, reg);
  nf.env = std::make_unique<dslib::DispatchEnv>();
  state->bind(*nf.env);
  dslib::LbState* raw = state.get();
  nf.state_occupancy = [raw] { return raw->flow_table().occupancy(); };
  nf.state_expire = [raw](net::TimestampNs now_ns) {
    ir::CostMeter silent;
    return raw->flow_table().expire(now_ns, silent).expired;
  };
  nf.state = std::move(state);
  return nf;
}

NfInstance make_simple_lpm(perf::PcvRegistry& reg) {
  // Deterministic per-kind arena bank: the same NF always occupies the
  // same address space regardless of which thread built it, and different
  // NF kinds stay disjoint if ever composed into one simulated memory.
  ir::ArenaAllocator::reset(3);
  NfInstance nf;
  nf.name = "lpm_simple";
  nf.program = nf::SimpleLpmRouter::program();
  nf.methods = nf::SimpleLpmRouter::methods(reg);
  auto state = std::make_shared<dslib::LpmTrieState>(reg);
  nf.env = std::make_unique<dslib::DispatchEnv>();
  state->bind(*nf.env);
  nf.state = std::move(state);
  return nf;
}

const std::vector<DirLpmRoute>& dir_lpm_routes() {
  // 198.18.0.0/15 is where tuple_for_index() aims synthetic traffic; the
  // /28 and /30 nests inside it put tbl8 walks on the workload's own path.
  // 203.0.113.0/24 (TEST-NET-3) carries the out-of-workload tier pair.
  static const std::vector<DirLpmRoute> kRoutes = {
      {0xc6120000u, 15, 1},  // 198.18.0.0/15      -> one lookup
      {0xc6120700u, 28, 4},  // 198.18.7.0/28      -> two lookups
      {0xc6120740u, 30, 5},  // 198.18.7.64/30     -> two lookups (deepest)
      {0xcb007100u, 24, 2},  // 203.0.113.0/24     -> one lookup
      {0xcb007140u, 26, 3},  // 203.0.113.64/26    -> two lookups
  };
  return kRoutes;
}

NfInstance make_dir_lpm(perf::PcvRegistry& reg) {
  // Deterministic per-kind arena bank: the same NF always occupies the
  // same address space regardless of which thread built it, and different
  // NF kinds stay disjoint if ever composed into one simulated memory.
  ir::ArenaAllocator::reset(4);
  NfInstance nf;
  nf.name = "lpm_dir24_8";
  nf.program = nf::DirLpmRouter::program();
  nf.methods = nf::DirLpmRouter::methods(reg);
  auto state = std::make_shared<dslib::LpmDirState>(reg);
  for (const DirLpmRoute& r : dir_lpm_routes()) {
    state->table().insert(r.prefix, r.length, r.port);
  }
  nf.env = std::make_unique<dslib::DispatchEnv>();
  state->bind(*nf.env);
  nf.state = std::move(state);
  return nf;
}

}  // namespace bolt::core
