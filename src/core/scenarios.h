// Ready-made NF instances — program + stateful state + dispatcher + method
// table wired together. Shared by the test suite, the benchmark harnesses,
// and the examples, so every consumer of an "evaluation NF" configures it
// the same way the contracts were generated for.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "core/bolt.h"
#include "core/runner.h"
#include "dslib/bridge_state.h"
#include "dslib/lb_state.h"
#include "dslib/lpm_state.h"
#include "dslib/method.h"
#include "dslib/nat_state.h"
#include "ir/program.h"
#include "nf/framework.h"
#include "perf/pcv.h"

namespace bolt::core {

/// One fully wired NF: the stateless program, the concrete stateful objects
/// (behind the dispatcher), and the models+contracts method table.
struct NfInstance {
  std::string name;
  ir::Program program;
  dslib::MethodTable methods;
  std::unique_ptr<dslib::DispatchEnv> env;
  std::shared_ptr<void> state;  ///< keeps the state object alive

  /// Long-running-operation observers (empty for static-state NFs like the
  /// LPM routers). `state_occupancy` reports live flow/MAC entries;
  /// `state_expire` sweeps entries stale as of `now_ns` off-path (silent
  /// metering — operational maintenance, not attributable to any packet)
  /// and returns how many were evicted. The monitor's deterministic epoch
  /// clock drives both.
  std::function<std::size_t()> state_occupancy;
  std::function<std::uint64_t(net::TimestampNs now_ns)> state_expire;

  /// View for the contract generator.
  NfAnalysis analysis() const {
    NfAnalysis a;
    a.name = name;
    a.programs = {&program};
    a.methods = &methods;
    return a;
  }

  /// Concrete runner (measurement side). `sink` may be null. `engine`
  /// selects the execution fast path (see ir::EngineKind; sinks without a
  /// fast_meter() fall back to the reference engine regardless).
  std::unique_ptr<NfRunner> make_runner(
      const nf::FrameworkCosts& fw = nf::framework_full(),
      ir::TraceSink* sink = nullptr,
      ir::EngineKind engine = ir::EngineKind::kDecoded) const {
    ir::InterpreterOptions opts;
    nf::apply_framework(opts, fw);
    opts.sink = sink;
    opts.engine = engine;
    return std::make_unique<NfRunner>(
        std::vector<const ir::Program*>{&program}, env.get(), opts);
  }

  /// Typed access to the stateful object (BridgeState, NatState, ...).
  template <typename T>
  T& state_as() const {
    return *static_cast<T*>(state.get());
  }
};

/// Canonical evaluation configurations (scaled-down versions of the paper's
/// testbed tables; see DESIGN.md §2 on scaling).
dslib::MacTable::Config default_bridge_config();
dslib::NatState::Config default_nat_config();
dslib::LbState::Config default_lb_config();

/// The canonical route set installed in the named "lpm" target (DIR-24-8).
/// Both lookup tiers must be reachable by traffic — <=24-bit prefixes
/// resolve in one lookup, longer ones in two — so the set spans both, and
/// 198.18.0.0/15 covers the synthetic workload generators' destination
/// space. Deterministic and shared so the adversarial synthesiser and
/// tests can aim packets at specific tiers.
struct DirLpmRoute {
  std::uint32_t prefix = 0;  ///< host order, low bits zero
  int length = 0;
  std::uint16_t port = 0;
};
const std::vector<DirLpmRoute>& dir_lpm_routes();

NfInstance make_bridge(perf::PcvRegistry& reg,
                       const dslib::MacTable::Config& config);
NfInstance make_nat(perf::PcvRegistry& reg,
                    const dslib::NatState::Config& config);
NfInstance make_lb(perf::PcvRegistry& reg, const dslib::LbState::Config& config);
NfInstance make_simple_lpm(perf::PcvRegistry& reg);
NfInstance make_dir_lpm(perf::PcvRegistry& reg);

}  // namespace bolt::core
