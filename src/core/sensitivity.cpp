#include "core/sensitivity.h"

#include <algorithm>

#include "support/strings.h"

namespace bolt::core {

double SensitivityReport::growth() const {
  if (points.size() < 2 || points.front().predicted == 0) return 0.0;
  return static_cast<double>(points.back().predicted) /
             static_cast<double>(points.front().predicted) -
         1.0;
}

std::string SensitivityReport::table(const perf::PcvRegistry& reg) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({reg.name(pcv), "P[=x]", "CCDF P[>x]",
                  std::string(perf::metric_name(metric)) + " predicted"});
  for (const SensitivityPoint& p : points) {
    char at[32], above[32];
    std::snprintf(at, sizeof at, "%.5f", p.traffic_fraction_at);
    std::snprintf(above, sizeof above, "%.5f", p.traffic_fraction_above);
    rows.push_back({std::to_string(p.pcv_value), at, above,
                    support::with_commas(p.predicted)});
  }
  return support::render_table(rows);
}

SensitivityReport sensitivity(const perf::ContractEntry& entry,
                              perf::Metric metric, perf::PcvId pcv,
                              const DistillerReport& sample,
                              std::uint64_t max_value) {
  SensitivityReport report;
  report.pcv = pcv;
  report.input_class = entry.input_class;
  report.metric = metric;

  const auto hist = sample.histogram(pcv);
  std::uint64_t observed_max = 0;
  std::uint64_t total = 0;
  for (const auto& [value, count] : hist) {
    observed_max = std::max(observed_max, value);
    total += count;
  }
  const std::uint64_t sweep_max = std::max(observed_max, max_value);

  // Pin the other PCVs at the class's observed worst (conservative), then
  // override the swept one.
  perf::PcvBinding base = sample.worst_binding_for(entry.input_class);

  std::uint64_t at_most = 0;
  for (std::uint64_t v = 0; v <= sweep_max; ++v) {
    SensitivityPoint point;
    point.pcv_value = v;
    const auto it = hist.find(v);
    const std::uint64_t count = it == hist.end() ? 0 : it->second;
    at_most += count;
    if (total > 0) {
      point.traffic_fraction_at =
          static_cast<double>(count) / static_cast<double>(total);
      point.traffic_fraction_above =
          1.0 - static_cast<double>(at_most) / static_cast<double>(total);
    }
    perf::PcvBinding bind = base;
    bind.set(pcv, v);
    point.predicted = entry.perf.get(metric).eval(bind);
    report.points.push_back(point);
  }
  return report;
}

}  // namespace bolt::core
