#include "core/experiments.h"

#include <algorithm>
#include <map>

#include "dslib/lb_state.h"
#include "dslib/nat_state.h"
#include "net/packet_builder.h"
#include "net/workload.h"
#include "nf/nat.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace bolt::core {
namespace {

constexpr net::TimestampNs kBase = 1'000'000'000ULL;
constexpr std::size_t kMeasureCount = 2'000;

Scenario make_nat_scenario(const std::string& id, perf::PcvRegistry& reg) {
  auto cfg = default_nat_config();
  Scenario s;
  s.id = id;
  s.nf = make_nat(reg, cfg);

  if (id == "NAT1") {
    s.description = "unconstrained traffic (full colliding table, mass expiry)";
    // The probe flow's own entry is synthesised into a full, fully
    // colliding, fully stale table. One probe packet triggers everything.
    const net::FiveTuple probe = net::tuple_for_index(0);
    s.nf.state_as<dslib::NatState>().synthesize_pathological(
        probe.key(), cfg.flow.capacity, kBase);
    net::Packet pkt = net::packet_for_tuple(
        probe, kBase + cfg.flow.ttl_ns + 1'000'000'000, nf::Nat::kInternalPort);
    s.measure = {pkt};
    return s;
  }
  if (id == "NAT2") {
    s.description = "internal packets of new connections";
    net::ChurnSpec spec;
    spec.churn = 1.0;  // every packet starts a fresh flow
    spec.active_flows = 64;
    spec.packet_count = kMeasureCount;
    spec.in_port = nf::Nat::kInternalPort;
    s.measure = net::churn_traffic(spec);
    return s;
  }
  if (id == "NAT3") {
    s.description = "internal packets of established connections";
    net::UniformSpec spec;
    spec.flow_pool = 512;
    spec.packet_count = kMeasureCount;
    spec.in_port = nf::Nat::kInternalPort;
    spec.timing.start_ns = kBase;
    s.warmup = net::uniform_random_traffic(spec);
    net::UniformSpec again = spec;
    again.seed = 2;
    again.timing.start_ns = kBase + 50'000'000;
    s.measure = net::uniform_random_traffic(again);
    return s;
  }
  if (id == "NAT4") {
    s.description = "external packets without a mapping (dropped)";
    net::UniformSpec spec;
    spec.flow_pool = 512;
    spec.packet_count = kMeasureCount;
    spec.internal_side = false;
    spec.in_port = nf::Nat::kExternalPort;
    s.measure = net::uniform_random_traffic(spec);
    return s;
  }
  BOLT_UNREACHABLE("unknown NAT scenario " + id);
}

Scenario make_bridge_scenario(const std::string& id, perf::PcvRegistry& reg) {
  auto cfg = default_bridge_config();
  Scenario s;
  s.id = id;
  s.nf = make_bridge(reg, cfg);

  if (id == "Br1") {
    s.description = "unconstrained traffic (full colliding table, mass expiry)";
    const std::uint64_t probe_mac = 0x02000000aaaaULL;
    s.nf.state_as<dslib::BridgeState>().synthesize_pathological(
        probe_mac, cfg.capacity, kBase);
    net::PacketBuilder b;
    b.eth(net::MacAddress::from_u64(probe_mac),
          net::MacAddress::from_u64(0x02000000bbbbULL))
        .ipv4(net::Ipv4Address::from_octets(10, 0, 0, 1),
              net::Ipv4Address::from_octets(10, 0, 0, 2))
        .udp(1, 2)
        .timestamp_ns(kBase + cfg.ttl_ns + 1'000'000'000);
    s.measure = {b.build()};
    return s;
  }
  if (id == "Br2") {
    s.description = "broadcast traffic";
    net::BridgeSpec spec;
    spec.broadcast_fraction = 1.0;
    spec.stations = 256;
    spec.packet_count = kMeasureCount;
    s.measure = net::bridge_traffic(spec);
    return s;
  }
  if (id == "Br3") {
    s.description = "unicast traffic";
    net::BridgeSpec warm;
    warm.stations = 256;
    warm.packet_count = 2'000;
    warm.timing.start_ns = kBase;
    s.warmup = net::bridge_traffic(warm);
    net::BridgeSpec spec;
    spec.seed = 5;
    spec.stations = 256;
    spec.packet_count = kMeasureCount;
    spec.timing.start_ns = kBase + 50'000'000;
    s.measure = net::bridge_traffic(spec);
    return s;
  }
  BOLT_UNREACHABLE("unknown bridge scenario " + id);
}

Scenario make_lb_scenario(const std::string& id, perf::PcvRegistry& reg) {
  auto cfg = default_lb_config();
  Scenario s;
  s.id = id;
  s.nf = make_lb(reg, cfg);
  auto& state = s.nf.state_as<dslib::LbState>();
  state.ring().all_alive(kBase);

  if (id == "LB1") {
    s.description = "unconstrained traffic (full colliding table, mass expiry)";
    const net::FiveTuple probe = net::tuple_for_index(0, false);
    state.synthesize_pathological(probe.key(), cfg.flow.capacity, kBase);
    state.ring().all_alive(kBase + cfg.flow.ttl_ns + 2'000'000'000);
    net::Packet pkt = net::packet_for_tuple(
        probe, kBase + cfg.flow.ttl_ns + 1'000'000'000, 1);
    s.measure = {pkt};
    return s;
  }
  if (id == "LB2") {
    s.description = "external packets of new flows";
    net::ChurnSpec spec;
    spec.churn = 1.0;
    spec.active_flows = 64;
    spec.packet_count = kMeasureCount;
    spec.in_port = 1;
    s.measure = net::churn_traffic(spec);
    // Keep all backends alive throughout.
    s.post_warmup = [](NfInstance& nf) {
      nf.state_as<dslib::LbState>().ring().all_alive(kBase);
    };
    return s;
  }
  if (id == "LB3" || id == "LB4") {
    net::UniformSpec warm;
    warm.flow_pool = 512;
    warm.packet_count = 2'000;
    warm.timing.start_ns = kBase;
    s.warmup = net::uniform_random_traffic(warm);
    net::UniformSpec spec;
    spec.seed = 2;
    spec.flow_pool = 512;
    spec.packet_count = kMeasureCount;
    spec.timing.start_ns = kBase + 50'000'000;
    s.measure = net::uniform_random_traffic(spec);
    if (id == "LB3") {
      s.description = "existing flows whose backend stopped responding";
      s.post_warmup = [](NfInstance& nf) {
        auto& lb = nf.state_as<dslib::LbState>();
        // A quarter of the backends go silent.
        for (std::uint32_t b = 0; b < lb.ring().backend_count(); b += 4) {
          lb.ring().kill_backend(b);
        }
      };
    } else {
      s.description = "existing flows with live backends";
    }
    return s;
  }
  if (id == "LB5") {
    s.description = "heartbeat packets from backend servers";
    net::HeartbeatSpec spec;
    spec.backends = cfg.ring.backend_count;
    spec.heartbeat_port = cfg.heartbeat_port;
    spec.packet_count = kMeasureCount;
    s.measure = net::heartbeat_traffic(spec);
    return s;
  }
  BOLT_UNREACHABLE("unknown LB scenario " + id);
}

Scenario make_lpm_scenario(const std::string& id, perf::PcvRegistry& reg) {
  Scenario s;
  s.id = id;
  s.nf = make_dir_lpm(reg);
  auto& lpm = s.nf.state_as<dslib::LpmDirState>().table();

  net::LpmSpec spec;
  if (id == "LPM1") {
    s.description = "matched prefixes > 24 bits (two lookups)";
    spec.min_prefix_len = 25;
    spec.max_prefix_len = 32;
  } else if (id == "LPM2") {
    s.description = "matched prefixes <= 24 bits (one lookup)";
    spec.min_prefix_len = 8;
    spec.max_prefix_len = 24;
  } else {
    BOLT_UNREACHABLE("unknown LPM scenario " + id);
  }
  spec.packet_count = kMeasureCount + 200;
  const net::LpmWorkload wl = net::lpm_traffic(spec);
  for (const net::LpmRoute& r : wl.routes) lpm.insert(r.prefix, r.length, r.port);
  s.warmup.assign(wl.packets.begin(), wl.packets.begin() + 200);
  s.measure.assign(wl.packets.begin() + 200, wl.packets.end());
  return s;
}

}  // namespace

std::vector<std::string> all_scenario_ids() {
  return {"NAT1", "NAT2", "NAT3", "NAT4", "Br1", "Br2", "Br3",
          "LB1",  "LB2",  "LB3",  "LB4",  "LB5", "LPM1", "LPM2"};
}

Scenario make_scenario(const std::string& id, perf::PcvRegistry& reg) {
  if (id.rfind("NAT", 0) == 0) return make_nat_scenario(id, reg);
  if (id.rfind("Br", 0) == 0) return make_bridge_scenario(id, reg);
  if (id.rfind("LB", 0) == 0) return make_lb_scenario(id, reg);
  if (id.rfind("LPM", 0) == 0) return make_lpm_scenario(id, reg);
  BOLT_UNREACHABLE("unknown scenario " + id);
}

ScenarioResult run_scenario(Scenario& scenario, perf::PcvRegistry& reg,
                            const BoltOptions& options) {
  ScenarioResult result;
  result.id = scenario.id;

  // 1) Generate the contract (this does not run the NF).
  ContractGenerator generator(reg, options);
  const GenerationResult generated = generator.generate(scenario.nf.analysis());
  BOLT_CHECK(generated.unsolved_paths == 0,
             scenario.id + ": unsolved paths in contract generation");
  result.contract_entries = generated.contract.entries().size();
  result.total_paths = generated.total_paths;

  // 2) Run warm-up + measurement on the concrete NF with the realistic
  //    hardware simulator attached (the "testbed").
  hw::RealisticSim testbed(options.cycle_costs);
  auto runner = scenario.nf.make_runner(options.framework, &testbed);
  runner->process_trace(scenario.warmup, &testbed);
  if (scenario.post_warmup) scenario.post_warmup(scenario.nf);

  Distiller distiller(*runner, &testbed, &scenario.nf.methods);
  const DistillerReport report = distiller.run(scenario.measure);

  // 3) Measured = worst packet in the class; predicted = worst contract
  //    entry among the observed classes, at the distilled PCV bindings.
  result.measured_ic = report.worst_measured("instructions");
  result.measured_ma = report.worst_measured("mem_accesses");
  result.measured_cycles = report.worst_measured("cycles");

  std::map<std::string, bool> seen;
  for (const PacketRecord& rec : report.records) seen[rec.class_key] = true;
  for (const auto& [key, unused] : seen) {
    (void)unused;
    const perf::ContractEntry* entry = generated.contract.find(key);
    BOLT_CHECK(entry != nullptr,
               scenario.id + ": no contract entry for observed class " + key);
    const perf::PcvBinding binding = report.worst_binding_for(key);
    result.predicted_ic = std::max(
        result.predicted_ic,
        entry->perf.get(perf::Metric::kInstructions).eval(binding));
    result.predicted_ma = std::max(
        result.predicted_ma,
        entry->perf.get(perf::Metric::kMemoryAccesses).eval(binding));
    result.predicted_cycles = std::max(
        result.predicted_cycles,
        entry->perf.get(perf::Metric::kCycles).eval(binding));
  }
  return result;
}

std::vector<ScenarioResult> run_scenarios(const std::vector<std::string>& ids,
                                          const BoltOptions& options,
                                          std::size_t threads) {
  // Scenario sweeps are parallel at the scenario level; keep each inner
  // pipeline single-threaded unless the caller explicitly asked for more
  // (an explicit executor.threads still applies to exploration only —
  // without this clamp the auto default would spawn a full-width replay
  // pool inside every concurrent scenario).
  BoltOptions per_scenario = options;
  if (per_scenario.threads == 0) per_scenario.threads = 1;
  std::vector<ScenarioResult> results(ids.size());
  support::ThreadPool pool(support::resolve_threads(threads));
  pool.parallel_for(0, ids.size(), [&](std::size_t i) {
    perf::PcvRegistry reg;
    Scenario scenario = make_scenario(ids[i], reg);
    results[i] = run_scenario(scenario, reg, per_scenario);
  });
  return results;
}

std::vector<ScenarioResult> run_all_scenarios(const BoltOptions& options,
                                              std::size_t threads) {
  return run_scenarios(all_scenario_ids(), options, threads);
}

}  // namespace bolt::core
