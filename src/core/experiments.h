// The paper's evaluation scenarios (§5.1): fourteen (NF, packet-class)
// pairs — NAT1-4, Br1-3, LB1-5, LPM1-2 — each packaged as an NF instance,
// optional synthesised state, a warm-up trace, and a measurement trace.
// The benchmark binaries for Figure 1 and Table 3 iterate these.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/scenarios.h"
#include "net/packet.h"
#include "perf/pcv.h"

namespace bolt::core {

struct Scenario {
  std::string id;           ///< e.g. "NAT2"
  std::string description;  ///< paper wording for the class
  NfInstance nf;
  std::vector<net::Packet> warmup;   ///< processed but not measured
  std::vector<net::Packet> measure;  ///< the evaluated packet class
  /// Runs after warm-up, before measurement (e.g. kill LB backends).
  std::function<void(NfInstance&)> post_warmup;
};

/// All fourteen ids in paper order.
std::vector<std::string> all_scenario_ids();

/// Builds one scenario. Aborts on unknown id.
Scenario make_scenario(const std::string& id, perf::PcvRegistry& reg);

/// Outcome of running a scenario against its generated contract.
struct ScenarioResult {
  std::string id;
  std::int64_t predicted_ic = 0;
  std::uint64_t measured_ic = 0;
  std::int64_t predicted_ma = 0;
  std::uint64_t measured_ma = 0;
  std::int64_t predicted_cycles = 0;
  std::uint64_t measured_cycles = 0;
  std::size_t contract_entries = 0;
  std::size_t total_paths = 0;

  double ic_overestimate() const {
    return measured_ic == 0 ? 0.0
                            : static_cast<double>(predicted_ic) /
                                  static_cast<double>(measured_ic);
  }
  double ma_overestimate() const {
    return measured_ma == 0 ? 0.0
                            : static_cast<double>(predicted_ma) /
                                  static_cast<double>(measured_ma);
  }
  double cycles_ratio() const {
    return measured_cycles == 0 ? 0.0
                                : static_cast<double>(predicted_cycles) /
                                      static_cast<double>(measured_cycles);
  }
};

/// Generates the NF's contract, replays warm-up + measurement traffic on
/// the concrete NF (with the realistic hardware simulator attached), and
/// compares the worst measured costs against the worst contract prediction
/// among the observed input classes at the distilled PCV bindings.
ScenarioResult run_scenario(Scenario& scenario, perf::PcvRegistry& reg,
                            const BoltOptions& options = {});

/// Parallel experiment driver: builds and runs each scenario concurrently
/// (scenarios share nothing — each gets its own PcvRegistry and NF
/// instance) and returns results in `ids` order, so sweeps are
/// deterministic at any thread count. `threads` sizes the sweep pool
/// (0 = one per hardware thread). Unless `options` asks otherwise, each
/// scenario's inner pipeline runs single-threaded — the sweep is the
/// parallelism, and nesting pools oversubscribes.
std::vector<ScenarioResult> run_scenarios(const std::vector<std::string>& ids,
                                          const BoltOptions& options = {},
                                          std::size_t threads = 0);

/// Convenience: the full fourteen-scenario paper sweep, in parallel.
std::vector<ScenarioResult> run_all_scenarios(const BoltOptions& options = {},
                                              std::size_t threads = 0);

}  // namespace bolt::core
