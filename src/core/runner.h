// NfRunner — executes packets through an NF or an NF chain concretely,
// merging per-program results the same way the symbolic executor does
// (chain-prefixed class tags, chain-namespaced loop ids), so measured runs
// and generated contracts speak the same class-key language.
//
// The runner owns one ir::RunLabels for the whole chain and binds every
// engine to it, so the ids each engine records (tag ids, flat loop
// indices, case tokens) are already chain-global: the chain merge is
// integer appends and vector adds, with no string work.
//
// Engine selection: options.engine picks the decoded fast path (default)
// or the reference interpreter. Sinks that need the exact per-event trace
// (no fast_meter(), e.g. hw::RealisticSim) force the reference engine
// regardless of the knob — the decoded engine cannot drive them without
// changing semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/models.h"
#include "ir/interp.h"
#include "ir/labels.h"
#include "ir/program.h"
#include "ir/stateful.h"
#include "net/packet.h"

namespace bolt::core {

class NfRunner {
 public:
  NfRunner(std::vector<const ir::Program*> programs, ir::StatefulEnv* env,
           ir::InterpreterOptions options = {});

  /// Runs the packet through the chain (stopping at the first drop).
  /// Counters/tags/calls/PCVs are merged across the chain.
  ir::RunResult process(net::Packet& packet);

  /// Allocation-reusing variant of process(): clears `out` (keeping its
  /// container capacity) and merges the chain's results into it. The
  /// monitor's batched hot loop calls this with one long-lived RunResult
  /// per partition instead of materialising a fresh one per packet.
  void process_into(net::Packet& packet, ir::RunResult& out);

  /// Replays a whole trace in order (mutating the packets, as the NF
  /// would), marking packet boundaries on `sink` when given. A runner is
  /// inherently sequential (the NF's state is shared across packets), so
  /// parallel drivers — the scenario sweep, the bench harnesses — run one
  /// NfRunner per worker and split the *traces*, not the packets.
  void process_trace(std::vector<net::Packet>& packets,
                     hw::CycleModel* sink = nullptr);

  const std::vector<const ir::Program*>& programs() const { return programs_; }

  /// The chain's label table (what the ids in this runner's RunResults
  /// mean). Stable for the runner's lifetime.
  ir::RunLabels& labels() { return *labels_; }

  /// True if packets execute on the decoded fast path (false when the
  /// engine knob or the sink forced the reference interpreter).
  bool uses_decoded_engine() const { return decoded_; }

  /// Scratch memory of program `index` (for microbenchmark setup).
  std::vector<std::uint64_t>& scratch(std::size_t index) {
    return engines_[index]->scratch();
  }

 private:
  std::vector<const ir::Program*> programs_;
  std::unique_ptr<ir::RunLabels> labels_;  ///< stable address across moves
  std::vector<std::unique_ptr<ir::PacketEngine>> engines_;
  bool decoded_ = false;
  ir::RunResult chain_scratch_;  ///< per-program scratch for process_into
};

}  // namespace bolt::core
