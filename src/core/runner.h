// NfRunner — executes packets through an NF or an NF chain concretely,
// merging per-program results the same way the symbolic executor does
// (chain-prefixed class tags, chain-namespaced loop ids), so measured runs
// and generated contracts speak the same class-key language.
#pragma once

#include <cstdint>
#include <vector>

#include "hw/models.h"
#include "ir/interp.h"
#include "ir/program.h"
#include "ir/stateful.h"
#include "net/packet.h"

namespace bolt::core {

class NfRunner {
 public:
  NfRunner(std::vector<const ir::Program*> programs, ir::StatefulEnv* env,
           ir::InterpreterOptions options = {});

  /// Runs the packet through the chain (stopping at the first drop).
  /// Counters/tags/calls/PCVs are merged across the chain.
  ir::RunResult process(net::Packet& packet);

  /// Allocation-reusing variant of process(): clears `out` (keeping its
  /// container capacity) and merges the chain's results into it. The
  /// monitor's batched hot loop calls this with one long-lived RunResult
  /// per partition instead of materialising a fresh one per packet.
  void process_into(net::Packet& packet, ir::RunResult& out);

  /// Replays a whole trace in order (mutating the packets, as the NF
  /// would), marking packet boundaries on `sink` when given. A runner is
  /// inherently sequential (the NF's state is shared across packets), so
  /// parallel drivers — the scenario sweep, the bench harnesses — run one
  /// NfRunner per worker and split the *traces*, not the packets.
  void process_trace(std::vector<net::Packet>& packets,
                     hw::CycleModel* sink = nullptr);

  const std::vector<const ir::Program*>& programs() const { return programs_; }

  /// Scratch memory of program `index` (for microbenchmark setup).
  std::vector<std::uint64_t>& scratch(std::size_t index) {
    return interps_[index].scratch();
  }

 private:
  std::vector<const ir::Program*> programs_;
  std::vector<ir::Interpreter> interps_;
  ir::RunResult chain_scratch_;  ///< per-program scratch for process_into
};

}  // namespace bolt::core
