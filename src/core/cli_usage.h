// The bolt CLI's usage/help text, exported from the library so the help
// output is testable: tests/test_cli_help.cpp locks it against a golden
// file, which makes "added a knob but not its help line" a test failure
// instead of a docs drift (PR 5 shipped --grouping's enum without a flag
// or a help line; this is the lockdown that keeps that from recurring).
#pragma once

namespace bolt::core {

/// Full usage text of the bolt CLI (`bolt --help`), newline-terminated.
const char* cli_usage_text();

}  // namespace bolt::core
