// Shared structural-hash mixing primitives.
//
// The symbolic-expression interner and the solver's constraint-set memo
// both build 64-bit structural hashes from the same finalizer; keeping the
// mixer in one place keeps their distributions (and any future tweak) in
// lockstep.
#pragma once

#include <cstdint>

namespace bolt::support {

/// splitmix64 finalizer: cheap, well distributed, deterministic.
inline std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace bolt::support
