// A small fixed-size thread pool for the embarrassingly parallel stages of
// the Bolt pipeline (per-path solving, concrete replay, scenario sweeps).
//
// Design constraints, in order:
//   * determinism at the call site — parallel_for hands out disjoint indices
//     and the caller writes results into per-index slots, so the merged
//     output is identical at 1, 2, or N threads;
//   * fail loudly — an exception thrown by any task is captured and
//     rethrown on the submitting thread (BOLT_CHECK aborts outright, which
//     is also fine: a wrong contract is worse than a dead analysis run);
//   * zero dependencies — plain std::thread, usable under TSan.
#pragma once

#include <cstddef>
#include <functional>

namespace bolt::support {

/// Resolves a thread-count knob: 0 means "one per hardware thread",
/// anything else is used as given (clamped to >= 1).
std::size_t resolve_threads(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = hardware_concurrency). The pool is
  /// idle until parallel_for is called.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_; }

  /// Runs body(i) for every i in [begin, end), distributing indices across
  /// the pool dynamically (atomic grab), and blocks until all complete.
  /// The submitting thread participates, so a 1-thread pool degenerates to
  /// a plain loop. The first exception thrown by any body is rethrown here.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body);

 private:
  struct Impl;
  Impl* impl_;
  std::size_t threads_;
};

}  // namespace bolt::support
