// Assertion and fatal-error helpers used across the BOLT reproduction.
//
// These are *always on* (they do not compile away in release builds):
// BOLT is an analysis tool, and a silently wrong contract is far worse
// than an aborted analysis run.
#pragma once

#include <string>

namespace bolt::support {

/// Aborts the process with a formatted message. Marked [[noreturn]] so the
/// compiler understands control flow at call sites.
[[noreturn]] void fatal(const std::string& message, const char* file, int line);

}  // namespace bolt::support

/// Always-on invariant check. Usage: BOLT_CHECK(x > 0, "x must be positive").
#define BOLT_CHECK(cond, msg)                                     \
  do {                                                            \
    if (!(cond)) {                                                \
      ::bolt::support::fatal(std::string("check failed: ") + #cond + \
                                 " — " + (msg),                   \
                             __FILE__, __LINE__);                 \
    }                                                             \
  } while (0)

/// Marks unreachable code paths.
#define BOLT_UNREACHABLE(msg) \
  ::bolt::support::fatal(std::string("unreachable: ") + (msg), __FILE__, __LINE__)
