// Minimal recursive-descent JSON reading, shared by the artifact parsers
// (perf/contract_io, adversary/trace).
//
// This is deliberately not a general JSON library: the schemas we read are
// fixed and key order is part of each format's byte-stability contract, so
// the reader checks keys in place instead of building a DOM. What it *is*
// strict about is failure: every check reports what was expected and the
// byte offset where the input disagreed, truncated input is "unexpected end
// of input" rather than a mis-parse, and integers are accumulated with an
// explicit overflow check (std::stoll would throw an uncaught exception) —
// bound constants must be finite 64-bit integers, so "1.5", "1e9", "NaN"
// and out-of-range values are all rejected with a precise message.
#pragma once

#include <cctype>
#include <cstdint>
#include <string>

#include "support/assert.h"

namespace bolt::support {

class JsonReader {
 public:
  /// `what` names the artifact kind in error messages ("contract json").
  JsonReader(const std::string& text, std::string what)
      : text_(text), what_(std::move(what)) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail(std::string("expected '") + c + "', got unexpected end of input");
    }
    if (text_[pos_] != c) {
      fail(std::string("expected '") + c + "', got '" + text_[pos_] + "'");
    }
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;
        }
      }
      out += c;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string (unexpected end of input)");
    }
    ++pos_;  // closing quote
    return out;
  }

  /// Strict int64: optional sign, digits only. Rejects fractions,
  /// exponents, and non-finite spellings (NaN/Infinity) — the values we
  /// read are bound constants and counts, which must be finite integers —
  /// and overflow, which std::stoll would turn into an uncaught throw.
  std::int64_t integer() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("expected integer, got unexpected end of input");
    }
    bool negative = false;
    if (text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      fail("expected integer (bound constants must be finite integers)");
    }
    std::uint64_t magnitude = 0;
    const std::uint64_t limit =
        negative ? 0x8000000000000000ULL : 0x7fffffffffffffffULL;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      const std::uint64_t digit = std::uint64_t(text_[pos_] - '0');
      if (magnitude > (limit - digit) / 10) {
        fail("integer overflows 64 bits");
      }
      magnitude = magnitude * 10 + digit;
      ++pos_;
    }
    if (pos_ < text_.size() &&
        (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      fail("non-integer constant (bound constants must be finite integers)");
    }
    // Negate in unsigned space: -INT64_MIN is signed-overflow UB, but the
    // unsigned negation of 2^63 converts back to exactly INT64_MIN.
    return static_cast<std::int64_t>(negative ? 0 - magnitude : magnitude);
  }

  bool boolean() {
    skip_ws();
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return false;
    }
    fail("expected boolean");
    return false;
  }

  /// Reads `"key":` and checks the key name.
  void key(const char* name) {
    const std::string k = string();
    if (k != name) {
      fail("expected key '" + std::string(name) + "', got '" + k + "'");
    }
    expect(':');
  }

  /// Call after the top-level value: trailing non-whitespace (a second
  /// object, concatenated artifacts, binary junk) is rejected, and so is an
  /// input that ended before the value completed (the callers' expect()s
  /// catch that earlier with "unexpected end of input").
  void end() {
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing garbage after the top-level value");
    }
  }

  [[noreturn]] void fail(const std::string& message) {
    support::fatal(what_ + ": " + message + " at byte " +
                       std::to_string(pos_),
                   __FILE__, __LINE__);
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::string what_;
  std::size_t pos_ = 0;
};

}  // namespace bolt::support
