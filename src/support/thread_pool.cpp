#include "support/thread_pool.h"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace bolt::support {

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers wait here for a batch
  std::condition_variable done_cv;   // parallel_for waits here for drain

  // Current batch. A new batch is published by bumping `generation`.
  std::uint64_t generation = 0;
  std::size_t end = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t in_flight = 0;  // workers still inside the current batch
  std::exception_ptr first_error;
  bool shutdown = false;

  std::vector<std::thread> workers;

  void run_indices(const std::function<void(std::size_t)>& fn,
                   std::size_t limit) {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= limit) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex);
    while (true) {
      work_cv.wait(lock, [&] { return shutdown || generation != seen; });
      if (shutdown) return;
      seen = generation;
      // The batch may have fully drained (and its body gone out of scope on
      // the submitting thread) before this worker woke: skip it.
      if (body == nullptr) continue;
      const std::function<void(std::size_t)>* fn = body;
      const std::size_t limit = end;
      ++in_flight;
      lock.unlock();
      run_indices(*fn, limit);
      lock.lock();
      if (--in_flight == 0) done_cv.notify_all();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(new Impl), threads_(resolve_threads(threads)) {
  // The submitting thread participates in every batch, so spawn one fewer.
  for (std::size_t i = 1; i < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body) {
  if (end <= begin) return;
  const std::size_t count = end - begin;
  auto shifted = [&body, begin](std::size_t i) { body(begin + i); };
  const std::function<void(std::size_t)> fn = shifted;

  if (impl_->workers.empty() || count == 1) {
    // Degenerate case: run inline (still honouring exception capture).
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->run_indices(fn, count);
  } else {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->next.store(0, std::memory_order_relaxed);
      impl_->end = count;
      impl_->body = &fn;
      ++impl_->generation;
    }
    impl_->work_cv.notify_all();
    impl_->run_indices(fn, count);
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] { return impl_->in_flight == 0; });
    impl_->body = nullptr;
  }

  std::lock_guard<std::mutex> lock(impl_->mutex);
  if (impl_->first_error) {
    std::exception_ptr err = impl_->first_error;
    impl_->first_error = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace bolt::support
