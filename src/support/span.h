// Minimal C++17 stand-in for std::span (the toolchain target is C++17,
// which predates <span>). Non-owning view over a contiguous sequence;
// implicitly constructible from vectors, arrays, and (data, size) pairs,
// with the usual const-qualifying conversion Span<T> -> Span<const T>.
#pragma once

#include <cstddef>
#include <type_traits>

#include "support/assert.h"

namespace bolt::support {

template <typename T>
class Span {
 public:
  using element_type = T;
  using value_type = std::remove_cv_t<T>;

  constexpr Span() noexcept = default;
  constexpr Span(T* data, std::size_t size) noexcept
      : data_(data), size_(size) {}

  /// From any contiguous container exposing data()/size() whose element
  /// pointer converts to T* (std::vector, std::array, std::string, ...).
  template <typename C,
            typename = std::enable_if_t<std::is_convertible_v<
                decltype(std::declval<C&>().data()), T*>>>
  constexpr Span(C& c) noexcept : data_(c.data()), size_(c.size()) {}

  /// Const-qualifying conversion: Span<T> -> Span<const T>.
  template <typename U,
            typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  constexpr Span(const Span<U>& other) noexcept
      : data_(other.data()), size_(other.size()) {}

  constexpr T* data() const noexcept { return data_; }
  constexpr std::size_t size() const noexcept { return size_; }
  constexpr bool empty() const noexcept { return size_ == 0; }

  constexpr T& operator[](std::size_t i) const { return data_[i]; }
  constexpr T& front() const { return data_[0]; }
  constexpr T& back() const { return data_[size_ - 1]; }

  constexpr T* begin() const noexcept { return data_; }
  constexpr T* end() const noexcept { return data_ + size_; }

  Span subspan(std::size_t offset) const {
    BOLT_CHECK(offset <= size_, "Span::subspan offset out of range");
    return Span(data_ + offset, size_ - offset);
  }
  Span subspan(std::size_t offset, std::size_t count) const {
    BOLT_CHECK(offset <= size_ && count <= size_ - offset,
               "Span::subspan range out of range");
    return Span(data_ + offset, count);
  }
  Span first(std::size_t count) const { return subspan(0, count); }
  Span last(std::size_t count) const {
    BOLT_CHECK(count <= size_, "Span::last count out of range");
    return Span(data_ + (size_ - count), count);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace bolt::support
