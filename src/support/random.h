// Deterministic pseudo-random number generation.
//
// All randomness in the reproduction (workload generation, solver search,
// hash seeds) flows through this class so experiments are reproducible
// bit-for-bit given a seed. The generator is xoshiro256**, seeded via
// splitmix64 as its authors recommend.
#pragma once

#include <cstdint>

namespace bolt::support {

/// Fast, high-quality, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform value in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace bolt::support
