#include "support/io.h"

#include <cstdio>

#include "support/assert.h"

namespace bolt::support {

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  // fclose can surface the real write error (buffered I/O, disk full).
  if (std::fclose(f) != 0 || !wrote) {
    std::remove(path.c_str());
    return false;
  }
  return true;
}

std::string read_file_or_die(const std::string& path, const std::string& what) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  BOLT_CHECK(f != nullptr, "cannot open " + what + " '" + path + "'");
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  BOLT_CHECK(!read_error, "I/O error reading " + what + " '" + path + "'");
  BOLT_CHECK(!out.empty(), "empty " + what + " '" + path +
                               "' (truncated write?)");
  return out;
}

}  // namespace bolt::support
