#include "support/assert.h"

#include <cstdio>
#include <cstdlib>

namespace bolt::support {

void fatal(const std::string& message, const char* file, int line) {
  std::fprintf(stderr, "[bolt fatal] %s:%d: %s\n", file, line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace bolt::support
