// Small file I/O helpers shared by the artifact writers (contract JSON,
// monitor reports, adversarial trace pairs).
#pragma once

#include <string>

namespace bolt::support {

/// Writes `content` to `path`, returning false on any failure. A failed or
/// short write removes the file: artifact consumers (CI, a later deploy)
/// must never find a truncated file where a valid one is expected.
bool write_file(const std::string& path, const std::string& content);

/// Reads the whole file. Aborts on a missing file, a read error, or an
/// empty file (`what` names the artifact kind in the message — a zero-byte
/// artifact is always a truncated write, never valid input).
std::string read_file_or_die(const std::string& path, const std::string& what);

}  // namespace bolt::support
