// Set-associative cache model with LRU replacement and O(1) epoch clear.
//
// Lives in support/ (header-only) so both the hardware models in hw/ and
// the decoded interpreter's inline conservative-cycle meter in ir/ can use
// it without a layering inversion: ir/ must not depend on hw/, but both sit
// above support/. Keeping the implementation inline also lets the decoded
// engine's per-access must-hit lookup inline into its dispatch loop instead
// of paying an out-of-line call per memory access.
#pragma once

#include <cstdint>
#include <vector>

#include "support/assert.h"

namespace bolt::support {

inline constexpr std::uint32_t kCacheLineBytes = 64;

inline std::uint64_t line_of(std::uint64_t addr) {
  return addr / kCacheLineBytes;
}

class Cache {
 public:
  /// `size_bytes` total capacity; `ways` associativity; LRU within sets.
  Cache(std::size_t size_bytes, std::size_t ways) : ways_(ways) {
    BOLT_CHECK(ways >= 1, "cache needs at least one way");
    const std::size_t lines = size_bytes / kCacheLineBytes;
    BOLT_CHECK(lines >= ways, "cache too small for its associativity");
    sets_ = lines / ways;
    BOLT_CHECK((sets_ & (sets_ - 1)) == 0,
               "cache set count must be a power of 2");
    slots_.resize(sets_ * ways_);
  }

  /// Looks up (and on miss inserts) the line; returns true on hit.
  bool access(std::uint64_t line) {
    const std::size_t base = set_of(line) * ways_;
    ++tick_;
    std::size_t victim = base;
    std::uint64_t victim_lru = lru_of(slots_[base]);
    for (std::size_t w = 0; w < ways_; ++w) {
      Way& way = slots_[base + w];
      if (way.epoch == epoch_ && way.line == line) {
        way.lru = tick_;
        return true;
      }
      const std::uint64_t lru = lru_of(way);
      if (lru < victim_lru) {
        victim = base + w;
        victim_lru = lru;
      }
    }
    slots_[victim] = Way{line, tick_, epoch_};
    return false;
  }

  /// Inserts without counting as a demand access (prefetch fills).
  void insert(std::uint64_t line) {
    const std::size_t base = set_of(line) * ways_;
    ++tick_;
    std::size_t victim = base;
    std::uint64_t victim_lru = lru_of(slots_[base]);
    for (std::size_t w = 0; w < ways_; ++w) {
      Way& way = slots_[base + w];
      if (way.epoch == epoch_ && way.line == line) {
        return;  // already resident; prefetch is a no-op
      }
      const std::uint64_t lru = lru_of(way);
      if (lru < victim_lru) {
        victim = base + w;
        victim_lru = lru;
      }
    }
    slots_[victim] = Way{line, tick_, epoch_};
  }

  /// True if the line is currently resident (no LRU update).
  bool contains(std::uint64_t line) const {
    const std::size_t base = set_of(line) * ways_;
    for (std::size_t w = 0; w < ways_; ++w) {
      const Way& way = slots_[base + w];
      if (way.epoch == epoch_ && way.line == line) return true;
    }
    return false;
  }

  void clear() {
    // O(1) epoch invalidation: entries stamped with an older epoch read as
    // empty (line ~0, LRU 0), exactly as if the array had been rewritten.
    // The conservative model clears per packet/path, so an eager rewrite
    // of sets*ways slots would be a real per-packet cost.
    ++epoch_;
    tick_ = 0;
  }

  std::size_t sets() const { return sets_; }
  std::size_t ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t line = ~0ULL;
    std::uint64_t lru = 0;    // higher = more recently used
    std::uint64_t epoch = 0;  // valid only when == cache epoch (0 = never)
  };

  std::size_t set_of(std::uint64_t line) const { return line & (sets_ - 1); }
  /// LRU rank with stale (pre-clear) entries reading as empty.
  std::uint64_t lru_of(const Way& w) const {
    return w.epoch == epoch_ ? w.lru : 0;
  }

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t epoch_ = 1;  // bumped by clear(); way.epoch 0 is pre-first-use
  std::vector<Way> slots_;   // sets_ * ways_
};

}  // namespace bolt::support
