#include "support/strings.h"

#include <algorithm>

namespace bolt::support {

std::string with_commas(std::int64_t value) {
  const bool negative = value < 0;
  std::uint64_t magnitude =
      negative ? 0ULL - static_cast<std::uint64_t>(value)
               : static_cast<std::uint64_t>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string render_table(const std::vector<std::vector<std::string>>& rows) {
  if (rows.empty()) return {};
  std::vector<std::size_t> widths;
  for (const auto& row : rows) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      if (c != 0) out += "  ";
      out += pad_right(rows[r][c], widths[c]);
    }
    out += '\n';
    if (r == 0) {
      for (std::size_t c = 0; c < widths.size(); ++c) {
        if (c != 0) out += "  ";
        out += std::string(widths[c], '-');
      }
      out += '\n';
    }
  }
  return out;
}

void json_quote_into(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c; break;
    }
  }
  out += '"';
}

}  // namespace bolt::support
