#include "support/random.h"

namespace bolt::support {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) noexcept {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  for (auto& s : s_) s = splitmix64(seed);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire-style rejection-free mapping is overkill here; modulo bias is
  // negligible for the bounds used in workload generation, but we still use
  // the widening-multiply trick for uniformity.
  const unsigned __int128 product =
      static_cast<unsigned __int128>(next()) * bound;
  return static_cast<std::uint64_t>(product >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace bolt::support
