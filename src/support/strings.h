// Small string/formatting helpers shared by contract printing and reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bolt::support {

/// Formats an integer with thousands separators: 1234567 -> "1,234,567".
std::string with_commas(std::int64_t value);

/// Joins the elements with the given separator.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// Left-pads (or passes through) to the given width.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads (or passes through) to the given width.
std::string pad_right(const std::string& s, std::size_t width);

/// Renders a simple aligned text table (first row is the header).
std::string render_table(const std::vector<std::vector<std::string>>& rows);

/// Appends `s` as a double-quoted JSON string literal (escaping quotes,
/// backslashes, newlines, and tabs). One helper shared by every JSON
/// emitter in the tree so the escaping rules cannot diverge.
void json_quote_into(std::string& out, const std::string& s);

}  // namespace bolt::support
