// Machine-readable bench output for CI perf trajectories.
//
// Each bench binary builds a BenchReport, records named metrics, and on
// destruction writes `BENCH_<name>.json` into the directory named by the
// BOLT_BENCH_JSON environment variable (nothing is written when the
// variable is unset, so interactive runs stay plain-text). CI sets the
// variable, runs tools/bench_runner.sh, and archives the JSON files per
// commit, so performance regressions show up as a trajectory, not an
// anecdote (the ZMap lesson: sustained measurement keeps fast code fast).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bolt::support {

/// Wall-clock stopwatch for bench sections.
class BenchTimer {
 public:
  BenchTimer();
  /// Milliseconds since construction or the last reset().
  double elapsed_ms() const;
  void reset();

 private:
  std::uint64_t start_ns_;
};

class BenchReport {
 public:
  /// `name` becomes the file stem: BENCH_<name>.json.
  explicit BenchReport(std::string name);
  /// Writes the JSON file if BOLT_BENCH_JSON is set (best effort: failure
  /// to write warns on stderr but never kills a bench run).
  ~BenchReport();

  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  /// Records a metric. `gate = false` marks it informational: archived
  /// and shown in trend tables, but never hard-failed by bench_diff. Use
  /// it for measurements whose value depends on host properties the run
  /// can detect (e.g. thread counts above hardware_concurrency, which
  /// measure the scheduler rather than the code).
  void metric(const std::string& metric_name, double value,
              const std::string& unit = "", bool gate = true);

  /// True when BOLT_BENCH_JSON is set (lets benches skip costly extra
  /// instrumentation when nobody will read it).
  static bool json_enabled();

  /// The serialized report (exposed for tests).
  std::string to_json() const;

 private:
  struct Entry {
    std::string name;
    double value = 0.0;
    std::string unit;
    bool gate = true;
  };
  std::string name_;
  std::vector<Entry> metrics_;
};

}  // namespace bolt::support
