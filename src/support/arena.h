// Append-only chunked object arena with stable addresses.
//
// Objects are constructed into fixed-size chunks; addresses never move and
// nothing is freed individually — the arena releases everything wholesale
// when it dies. This is the allocation substrate for hash-consed
// (interned) immutable nodes: the interner guarantees each structurally
// distinct value is constructed exactly once, so per-object lifetime
// tracking (shared_ptr control blocks, refcount traffic) is pure overhead.
//
// Not thread-safe on its own; concurrent users shard and lock (see the
// expression interner in symbex/expr.cpp).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace bolt::support {

template <typename T, std::size_t ChunkSize = 256>
class ChunkArena {
 public:
  ChunkArena() = default;
  ChunkArena(const ChunkArena&) = delete;
  ChunkArena& operator=(const ChunkArena&) = delete;

  ~ChunkArena() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (std::size_t i = 0; i < size_; ++i) at(i)->~T();
    }
  }

  /// Constructs a new T in place; the returned pointer is stable for the
  /// arena's lifetime.
  template <typename... Args>
  T* create(Args&&... args) {
    if (used_ == ChunkSize || chunks_.empty()) {
      chunks_.push_back(std::make_unique<Chunk>());
      used_ = 0;
    }
    T* slot = reinterpret_cast<T*>(chunks_.back()->bytes) + used_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++used_;
    ++size_;
    return slot;
  }

  std::size_t size() const { return size_; }

 private:
  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * ChunkSize];
  };

  T* at(std::size_t i) {
    return reinterpret_cast<T*>(chunks_[i / ChunkSize]->bytes) + i % ChunkSize;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::size_t used_ = ChunkSize;  // forces a chunk on first create()
  std::size_t size_ = 0;
};

}  // namespace bolt::support
