#include "support/bench.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "support/strings.h"

namespace bolt::support {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char* json_dir() { return std::getenv("BOLT_BENCH_JSON"); }

/// Quoted JSON string literal (shared escaping rules).
std::string quoted(const std::string& s) {
  std::string out;
  json_quote_into(out, s);
  return out;
}

}  // namespace

BenchTimer::BenchTimer() : start_ns_(now_ns()) {}

double BenchTimer::elapsed_ms() const {
  return static_cast<double>(now_ns() - start_ns_) / 1e6;
}

void BenchTimer::reset() { start_ns_ = now_ns(); }

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::metric(const std::string& metric_name, double value,
                         const std::string& unit, bool gate) {
  metrics_.push_back(Entry{metric_name, value, unit, gate});
}

bool BenchReport::json_enabled() { return json_dir() != nullptr; }

std::string BenchReport::to_json() const {
  std::string out = "{\n  \"bench\": " + quoted(name_) + ",\n";
  // Machine context, so the CI baseline diff can tell same-hardware
  // comparisons (gate) from cross-hardware ones (informational).
  out += "  \"num_cpus\": " +
         std::to_string(std::thread::hardware_concurrency()) + ",\n";
  out += "  \"metrics\": [";
  for (std::size_t i = 0; i < metrics_.size(); ++i) {
    const Entry& m = metrics_[i];
    char value[64];
    std::snprintf(value, sizeof value, "%.6f", m.value);
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": " + quoted(m.name) + ", \"value\": " + value +
           ", \"unit\": " + quoted(m.unit) +
           (m.gate ? "" : ", \"gate\": false") + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

BenchReport::~BenchReport() {
  const char* dir = json_dir();
  if (dir == nullptr) return;
  const std::string path = std::string(dir) + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] cannot write %s\n", path.c_str());
    return;
  }
  const std::string json = to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

}  // namespace bolt::support
