// Lock-free single-producer/single-consumer ring — the stage connector of
// the monitor's batched pipeline (parse/attribute -> validate), and a
// reusable building block for any two-thread hand-off.
//
// Classic Lamport queue with two refinements from the io-pacing school of
// staged pipelines:
//
//  * cache-line-separated head and tail, each side additionally keeping a
//    *cached* copy of the opposite index, so the fast path (ring neither
//    full nor empty) touches only one shared cache line per operation and
//    the head/tail lines never ping-pong between cores;
//  * a `close()` bit so a finite stream needs no sentinel element: the
//    producer closes, the consumer drains and then observes end-of-stream.
//
// Exactly one thread may push and exactly one may pop; that discipline is
// what makes plain acquire/release loads sufficient (no CAS anywhere).
// The monitor's worker pairs honour it by construction (one ring per
// producer/consumer pair), and tests/test_spsc_ring.cpp exercises the
// claim under TSan.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "support/assert.h"

namespace bolt::support {

/// Producer-side ring instrumentation (attached via SpscRing::set_stats).
/// Plain non-atomic counters: every write happens on the producer thread,
/// off the acquire/release fast path — readers must establish their own
/// happens-before edge (e.g. join the producer) before looking, exactly
/// like the ring's cached indices. `occupancy_high_water` is an upper
/// bound: it is computed against the producer's *cached* consumer index,
/// which may lag the true one, so the estimate can only overstate how full
/// the ring ever was (the conservative direction for a stall diagnosis).
struct SpscRingStats {
  std::uint64_t pushes = 0;  ///< successful try_push calls
  std::uint64_t stalls = 0;  ///< try_push calls that found the ring full
  std::uint64_t occupancy_high_water = 0;  ///< max elements buffered (bound)
};

/// Bounded lock-free SPSC queue of `T`. Capacity is rounded up to a power
/// of two (so index wrap is a mask, not a modulo).
template <typename T>
class SpscRing {
 public:
  /// Creates a ring holding at least `min_capacity` elements (>= 1).
  explicit SpscRing(std::size_t min_capacity) {
    BOLT_CHECK(min_capacity > 0, "spsc_ring: capacity must be positive");
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Usable capacity (power-of-two rounding of the requested minimum).
  std::size_t capacity() const { return buffer_.size(); }

  /// Attaches (or detaches, with nullptr) producer-side stats counters.
  /// Must be called while the producer is quiescent — before it starts, or
  /// with the same happens-before discipline as reading the results. The
  /// pointed-to struct must outlive the producer's last push.
  void set_stats(SpscRingStats* stats) { stats_ = stats; }

  /// Producer side: enqueues `value` if there is room. Returns false on a
  /// full ring (the value is left untouched so the caller can retry).
  bool try_push(T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ == buffer_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ == buffer_.size()) {
        if (stats_ != nullptr) ++stats_->stalls;
        return false;
      }
    }
    buffer_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    if (stats_ != nullptr) {
      ++stats_->pushes;
      // Occupancy after this push, measured against the cached consumer
      // index (an upper bound; see SpscRingStats).
      const std::uint64_t occupancy = tail - cached_head_ + 1;
      stats_->occupancy_high_water =
          std::max(stats_->occupancy_high_water, occupancy);
    }
    return true;
  }

  /// Producer side: enqueues `value`, spinning (with yields) while the
  /// ring is full. Must not be called after close().
  void push(T value) {
    while (!try_push(value)) std::this_thread::yield();
  }

  /// Producer side: marks the stream finished. After the consumer drains
  /// the remaining elements, pop() returns false forever.
  void close() { closed_.store(true, std::memory_order_release); }

  /// Consumer side: dequeues into `out` if an element is ready. Returns
  /// false on an empty ring (which may simply mean "not yet").
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    out = std::move(buffer_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side: blocks (spinning with yields) until an element
  /// arrives — true — or the ring is closed *and* drained — false.
  bool pop(T& out) {
    while (true) {
      if (try_pop(out)) return true;
      if (closed_.load(std::memory_order_acquire)) {
        // Re-check: the producer may have pushed right before closing.
        return try_pop(out);
      }
      std::this_thread::yield();
    }
  }

  /// True when no element is buffered (racy by nature; exact only when
  /// both sides are quiescent — e.g. in tests).
  bool empty() const {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> buffer_;
  std::size_t mask_ = 0;

  /// Consumer index, plus the producer's cached copy of it (and the
  /// producer-owned stats hook, which shares the producer's line).
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::size_t cached_head_ = 0;   // producer-owned
  SpscRingStats* stats_ = nullptr;            // producer-owned
  /// Producer index, plus the consumer's cached copy of it.
  alignas(64) std::atomic<std::size_t> tail_{0};
  alignas(64) std::size_t cached_tail_ = 0;   // consumer-owned
  alignas(64) std::atomic<bool> closed_{false};
};

}  // namespace bolt::support
