// Fleet mode — serialised partial monitor state and the merger that folds
// any number of instances' partials back into one report.
//
// A fleet deployment runs N streaming monitors (monitor/follow.h) over the
// same traffic, each owning a disjoint subset of the flow-affine
// partitions. Every instance spools one *window partial* per closed delta
// window (its per-class accumulators plus the window's run bookkeeping)
// and one *final partial* at drain (stream length, state residents,
// telemetry). `bolt_cli merge` — or merge_partials() directly — folds any
// subset ordering of those files into a fleet-wide delta stream and final
// report that are byte-identical to a single monitor over the concatenated
// traffic:
//
//  * every serialised accumulator is order-independent (monitor/accum.h),
//    so instances and windows can merge in any order;
//  * duplicated partials (a retried upload, a copied spool) deduplicate by
//    (instance, window) before merging;
//  * the merged state renders through the same build_report /
//    build_delta_window paths as the batch engine, and the drift detector
//    replays over the merged window sequence in ascending order — alerts
//    land in the same windows a single instance would have raised them in.
//
// The partial format is schema-versioned JSON (one object per file;
// docs/OBSERVABILITY.md "Fleet partial schema"). Quantile sketches travel
// as their raw sparse bucket state — perf::QuantileSketch::restore()
// validates on the way back in, so a corrupted partial fails loudly
// instead of merging quietly wrong.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "monitor/accum.h"
#include "obs/telemetry.h"

namespace bolt::obs {

/// Fleet partial schema version (bump on any key change).
inline constexpr std::int64_t kFleetSchemaVersion = 1;

/// One instance's view of one closed delta window: per-class accumulators
/// (only classes that saw traffic) plus the window's run bookkeeping.
struct WindowPartial {
  std::string nf;
  std::uint32_t instance = 0;
  std::uint32_t instances = 1;
  std::uint64_t window = 0;
  std::uint64_t window_ns = 0;  ///< 0 when delta mode is off (single window)
  /// Class names parallel to `accums` — only classes with packets > 0.
  std::vector<std::string> classes;
  std::vector<monitor::ClassAccum> accums;
  // Window-scoped run bookkeeping (monitor/follow.h WindowStats).
  std::uint64_t packets = 0;  ///< owned packets that landed in this window
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed = 0;
  bool any_unattributed = false;
  std::uint64_t epoch_sweeps = 0;
  std::uint64_t expired_idle = 0;
  std::uint64_t high_water = 0;
  std::uint64_t late_packets = 0;
};

/// One instance's end-of-stream summary: everything the final report needs
/// that is not per-window (stream length, resident state, telemetry), plus
/// the run configuration the merger validates for consistency.
struct FinalPartial {
  std::string nf;
  std::uint32_t instance = 0;
  std::uint32_t instances = 1;
  /// Full stream length — every instance feeds the same stream, so all
  /// finals agree (the merger takes the max, which tolerates an instance
  /// drained early).
  std::uint64_t stream_packets = 0;
  std::uint64_t partitions = 0;
  bool cycles_checked = true;
  std::uint64_t epoch_ns = 0;  ///< the *option* value (report derives eff.)
  std::uint64_t max_offenders = 0;
  /// Contract entry names in contract order — the merged accumulator
  /// layout. All finals must agree.
  std::vector<std::string> entries;
  std::uint64_t residents = 0;  ///< live state entries in owned partitions
  bool state_tracked = false;
  bool has_telemetry = false;
  MonitorTelemetry telemetry;  ///< valid when has_telemetry
};

/// Canonical JSON (one object, fixed key order — the byte layout is part
/// of the schema, like every other artifact in this repo).
std::string window_partial_to_json(const WindowPartial& p);
std::string final_partial_to_json(const FinalPartial& p);

/// Strict parsers (support::JsonReader; abort with offset on mismatch).
WindowPartial parse_window_partial(const std::string& text);
FinalPartial parse_final_partial(const std::string& text);

/// Spool file naming: `<dir>/<nf>.i<instance>.w<window>.json` and
/// `<dir>/<nf>.i<instance>.final.json`. Re-emitting a window overwrites
/// its file (an idle-flush partial is superseded by the authoritative
/// close), so a spool never holds two generations of one window.
std::string spool_window_path(const std::string& dir, const std::string& nf,
                              std::uint32_t instance, std::uint64_t window);
std::string spool_final_path(const std::string& dir, const std::string& nf,
                             std::uint32_t instance);

/// Reads every partial for `nf` under `dir` (by the naming scheme above,
/// scanned in sorted filename order so the result is deterministic).
/// Aborts on an unparsable file; missing directory or no matching files
/// yields empty vectors.
void read_spool(const std::string& dir, const std::string& nf,
                std::vector<WindowPartial>* windows,
                std::vector<FinalPartial>* finals);

struct FleetMergeResult {
  monitor::MonitorReport report;
  /// Merged delta stream (ascending window order) + alerts + telemetry —
  /// the same bundle a single monitor's run would have produced.
  RunObservations observations;
};

/// Folds partials from any subset of instances, in any order, duplicates
/// included, into the fleet-wide report and delta stream. Requires at
/// least one final partial (the merged layout and stream length come from
/// finals) and aborts on inconsistent configuration across partials
/// (different nf, partitions, window_ns, entry list, ...). The drift
/// detector replays over the merged windows with `drift`'s tuning — pass
/// the same options the instances ran with to reproduce their alerts.
FleetMergeResult merge_partials(const std::vector<WindowPartial>& windows,
                                const std::vector<FinalPartial>& finals,
                                const DriftOptions& drift);

}  // namespace bolt::obs
