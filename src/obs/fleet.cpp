#include "obs/fleet.h"

#include <dirent.h>

#include <algorithm>
#include <map>
#include <unordered_map>
#include <utility>

#include "support/assert.h"
#include "support/io.h"
#include "support/json.h"
#include "support/strings.h"

namespace bolt::obs {

namespace {

using monitor::ClassAccum;
using monitor::MetricAccum;
using monitor::Offender;
using monitor::RunTotals;
using support::JsonReader;
using support::json_quote_into;

void sketch_to_json(std::string& out, const perf::QuantileSketch& s) {
  out += "{\"count\":" + std::to_string(s.count());
  out += ",\"min\":" + std::to_string(s.min());
  out += ",\"max\":" + std::to_string(s.max());
  out += ",\"buckets\":[";
  bool first = true;
  for (const auto& [bucket, count] : s.buckets()) {
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(bucket) + ',' + std::to_string(count) + ']';
  }
  out += "]}";
}

perf::QuantileSketch parse_sketch(JsonReader& r) {
  r.expect('{');
  r.key("count");
  const std::uint64_t count = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("min");
  const std::uint64_t min = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("max");
  const std::uint64_t max = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("buckets");
  r.expect('[');
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets;
  if (!r.try_consume(']')) {
    do {
      r.expect('[');
      const std::int64_t bucket = r.integer();
      r.expect(',');
      const std::int64_t bcount = r.integer();
      r.expect(']');
      if (bucket < 0) r.fail("negative sketch bucket");
      buckets.emplace_back(static_cast<std::uint32_t>(bucket),
                           static_cast<std::uint64_t>(bcount));
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect('}');
  // restore() re-validates the full invariant set (sorted buckets, count
  // sum, min/max placement) and aborts on corruption.
  return perf::QuantileSketch::restore(std::move(buckets), count, min, max);
}

void metric_accum_to_json(std::string& out, const MetricAccum& m) {
  out += "{\"violations\":" + std::to_string(m.violations);
  out += ",\"has_worst\":" + std::string(m.has_worst ? "true" : "false");
  out += ",\"worst_packet\":" + std::to_string(m.worst_packet);
  out += ",\"worst_predicted\":" + std::to_string(m.worst_predicted);
  out += ",\"worst_measured\":" + std::to_string(m.worst_measured);
  out += ",\"histogram\":[";
  for (std::size_t b = 0; b < m.histogram.size(); ++b) {
    if (b > 0) out += ',';
    out += std::to_string(m.histogram[b]);
  }
  out += "],\"headroom\":";
  sketch_to_json(out, m.headroom_pm);
  out += '}';
}

MetricAccum parse_metric_accum(JsonReader& r) {
  MetricAccum m;
  r.expect('{');
  r.key("violations");
  m.violations = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("has_worst");
  m.has_worst = r.boolean();
  r.expect(',');
  r.key("worst_packet");
  m.worst_packet = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("worst_predicted");
  m.worst_predicted = r.integer();
  r.expect(',');
  r.key("worst_measured");
  m.worst_measured = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("histogram");
  r.expect('[');
  for (std::size_t b = 0; b < m.histogram.size(); ++b) {
    if (b > 0) r.expect(',');
    m.histogram[b] = static_cast<std::uint64_t>(r.integer());
  }
  r.expect(']');
  r.expect(',');
  r.key("headroom");
  m.headroom_pm = parse_sketch(r);
  r.expect('}');
  return m;
}

void class_accum_to_json(std::string& out, const std::string& name,
                         const ClassAccum& acc) {
  out += "{\"input_class\":";
  json_quote_into(out, name);
  out += ",\"packets\":" + std::to_string(acc.packets);
  out += ",\"metrics\":[";
  for (std::size_t m = 0; m < acc.metrics.size(); ++m) {
    if (m > 0) out += ',';
    metric_accum_to_json(out, acc.metrics[m]);
  }
  out += "],\"violation_margin\":";
  sketch_to_json(out, acc.violation_margin_pm);
  out += ",\"offenders\":[";
  bool first = true;
  for (const Offender& o : acc.offenders) {
    if (!first) out += ',';
    first = false;
    out += '[' + std::to_string(o.packet_index) + ',' +
           std::to_string(perf::metric_index(o.metric)) + ',' +
           std::to_string(o.predicted) + ',' + std::to_string(o.measured) +
           ']';
  }
  out += "]}";
}

ClassAccum parse_class_accum(JsonReader& r, std::string* name) {
  ClassAccum acc;
  r.expect('{');
  r.key("input_class");
  *name = r.string();
  r.expect(',');
  r.key("packets");
  acc.packets = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("metrics");
  r.expect('[');
  for (std::size_t m = 0; m < acc.metrics.size(); ++m) {
    if (m > 0) r.expect(',');
    acc.metrics[m] = parse_metric_accum(r);
  }
  r.expect(']');
  r.expect(',');
  r.key("violation_margin");
  acc.violation_margin_pm = parse_sketch(r);
  r.expect(',');
  r.key("offenders");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      Offender o;
      r.expect('[');
      o.packet_index = static_cast<std::uint64_t>(r.integer());
      r.expect(',');
      const std::int64_t mi = r.integer();
      if (mi < 0 || mi >= 3) r.fail("offender metric index out of range");
      o.metric = perf::kAllMetrics[static_cast<std::size_t>(mi)];
      r.expect(',');
      o.predicted = r.integer();
      r.expect(',');
      o.measured = static_cast<std::uint64_t>(r.integer());
      r.expect(']');
      acc.offenders.push_back(o);
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect('}');
  return acc;
}

void telemetry_fields_to_json(std::string& out, const MonitorTelemetry& t) {
  out += "{\"packets_executed\":" + std::to_string(t.packets_executed);
  out += ",\"attr_memo_hits\":" + std::to_string(t.attr_memo_hits);
  out += ",\"batches_emitted\":" + std::to_string(t.batches_emitted);
  out += ",\"batch_rows\":" + std::to_string(t.batch_rows);
  out += ",\"batch_fill\":";
  sketch_to_json(out, t.batch_fill);
  out += ",\"ring_pushes\":" + std::to_string(t.ring_pushes);
  out += ",\"ring_stalls\":" + std::to_string(t.ring_stalls);
  out += ",\"ring_occupancy_high_water\":" +
         std::to_string(t.ring_occupancy_high_water);
  out += ",\"recycle_hits\":" + std::to_string(t.recycle_hits);
  out += ",\"recycle_misses\":" + std::to_string(t.recycle_misses);
  out += ",\"vm_batch_evals\":" + std::to_string(t.vm_batch_evals);
  out += ",\"rows_validated\":" + std::to_string(t.rows_validated);
  out += ",\"epoch_sweeps\":" + std::to_string(t.epoch_sweeps);
  out += ",\"state_high_water\":" + std::to_string(t.state_high_water);
  out += ",\"delta_windows\":" + std::to_string(t.delta_windows);
  out += ",\"drift_alerts\":" + std::to_string(t.drift_alerts);
  out += '}';
}

MonitorTelemetry parse_telemetry_fields(JsonReader& r) {
  MonitorTelemetry t;
  const auto u64 = [&](const char* k) {
    r.key(k);
    const std::uint64_t v = static_cast<std::uint64_t>(r.integer());
    return v;
  };
  r.expect('{');
  t.packets_executed = u64("packets_executed");
  r.expect(',');
  t.attr_memo_hits = u64("attr_memo_hits");
  r.expect(',');
  t.batches_emitted = u64("batches_emitted");
  r.expect(',');
  t.batch_rows = u64("batch_rows");
  r.expect(',');
  r.key("batch_fill");
  t.batch_fill = parse_sketch(r);
  r.expect(',');
  t.ring_pushes = u64("ring_pushes");
  r.expect(',');
  t.ring_stalls = u64("ring_stalls");
  r.expect(',');
  t.ring_occupancy_high_water = u64("ring_occupancy_high_water");
  r.expect(',');
  t.recycle_hits = u64("recycle_hits");
  r.expect(',');
  t.recycle_misses = u64("recycle_misses");
  r.expect(',');
  t.vm_batch_evals = u64("vm_batch_evals");
  r.expect(',');
  t.rows_validated = u64("rows_validated");
  r.expect(',');
  t.epoch_sweeps = u64("epoch_sweeps");
  r.expect(',');
  t.state_high_water = u64("state_high_water");
  r.expect(',');
  t.delta_windows = u64("delta_windows");
  r.expect(',');
  t.drift_alerts = u64("drift_alerts");
  r.expect('}');
  return t;
}

void header_to_json(std::string& out, const char* kind, const std::string& nf,
                    std::uint32_t instance, std::uint32_t instances) {
  out += "{\"fleet_schema\":" + std::to_string(kFleetSchemaVersion);
  out += ",\"kind\":\"";
  out += kind;
  out += "\",\"nf\":";
  json_quote_into(out, nf);
  out += ",\"instance\":" + std::to_string(instance);
  out += ",\"instances\":" + std::to_string(instances);
}

void parse_header(JsonReader& r, const char* kind, std::string* nf,
                  std::uint32_t* instance, std::uint32_t* instances) {
  r.expect('{');
  r.key("fleet_schema");
  const std::int64_t schema = r.integer();
  if (schema != kFleetSchemaVersion) {
    r.fail("unsupported fleet partial schema v" + std::to_string(schema));
  }
  r.expect(',');
  r.key("kind");
  const std::string k = r.string();
  if (k != kind) {
    r.fail("expected kind '" + std::string(kind) + "', got '" + k + "'");
  }
  r.expect(',');
  r.key("nf");
  *nf = r.string();
  r.expect(',');
  r.key("instance");
  *instance = static_cast<std::uint32_t>(r.integer());
  r.expect(',');
  r.key("instances");
  *instances = static_cast<std::uint32_t>(r.integer());
}

}  // namespace

std::string window_partial_to_json(const WindowPartial& p) {
  std::string out;
  header_to_json(out, "window", p.nf, p.instance, p.instances);
  out += ",\"window\":" + std::to_string(p.window);
  out += ",\"window_ns\":" + std::to_string(p.window_ns);
  out += ",\"stats\":{\"packets\":" + std::to_string(p.packets);
  out += ",\"unattributed\":" + std::to_string(p.unattributed);
  out += ",\"first_unattributed\":" + std::to_string(p.first_unattributed);
  out += ",\"any_unattributed\":" +
         std::string(p.any_unattributed ? "true" : "false");
  out += ",\"epoch_sweeps\":" + std::to_string(p.epoch_sweeps);
  out += ",\"expired_idle\":" + std::to_string(p.expired_idle);
  out += ",\"high_water\":" + std::to_string(p.high_water);
  out += ",\"late_packets\":" + std::to_string(p.late_packets);
  out += "},\"classes\":[";
  for (std::size_t e = 0; e < p.classes.size(); ++e) {
    if (e > 0) out += ',';
    class_accum_to_json(out, p.classes[e], p.accums[e]);
  }
  out += "]}";
  return out;
}

WindowPartial parse_window_partial(const std::string& text) {
  JsonReader r(text, "fleet window partial");
  WindowPartial p;
  parse_header(r, "window", &p.nf, &p.instance, &p.instances);
  r.expect(',');
  r.key("window");
  p.window = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("window_ns");
  p.window_ns = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("stats");
  r.expect('{');
  r.key("packets");
  p.packets = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("unattributed");
  p.unattributed = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("first_unattributed");
  p.first_unattributed = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("any_unattributed");
  p.any_unattributed = r.boolean();
  r.expect(',');
  r.key("epoch_sweeps");
  p.epoch_sweeps = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("expired_idle");
  p.expired_idle = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("high_water");
  p.high_water = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("late_packets");
  p.late_packets = static_cast<std::uint64_t>(r.integer());
  r.expect('}');
  r.expect(',');
  r.key("classes");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      std::string name;
      ClassAccum acc = parse_class_accum(r, &name);
      p.classes.push_back(std::move(name));
      p.accums.push_back(std::move(acc));
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect('}');
  r.end();
  return p;
}

std::string final_partial_to_json(const FinalPartial& p) {
  std::string out;
  header_to_json(out, "final", p.nf, p.instance, p.instances);
  out += ",\"stream_packets\":" + std::to_string(p.stream_packets);
  out += ",\"partitions\":" + std::to_string(p.partitions);
  out += ",\"cycles_checked\":" +
         std::string(p.cycles_checked ? "true" : "false");
  out += ",\"epoch_ns\":" + std::to_string(p.epoch_ns);
  out += ",\"max_offenders\":" + std::to_string(p.max_offenders);
  out += ",\"entries\":[";
  for (std::size_t e = 0; e < p.entries.size(); ++e) {
    if (e > 0) out += ',';
    json_quote_into(out, p.entries[e]);
  }
  out += "],\"residents\":" + std::to_string(p.residents);
  out += ",\"state_tracked\":" +
         std::string(p.state_tracked ? "true" : "false");
  out += ",\"telemetry\":";
  if (p.has_telemetry) {
    telemetry_fields_to_json(out, p.telemetry);
  } else {
    out += "null";
  }
  out += '}';
  return out;
}

FinalPartial parse_final_partial(const std::string& text) {
  JsonReader r(text, "fleet final partial");
  FinalPartial p;
  parse_header(r, "final", &p.nf, &p.instance, &p.instances);
  r.expect(',');
  r.key("stream_packets");
  p.stream_packets = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("partitions");
  p.partitions = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("cycles_checked");
  p.cycles_checked = r.boolean();
  r.expect(',');
  r.key("epoch_ns");
  p.epoch_ns = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("max_offenders");
  p.max_offenders = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("entries");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      p.entries.push_back(r.string());
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect(',');
  r.key("residents");
  p.residents = static_cast<std::uint64_t>(r.integer());
  r.expect(',');
  r.key("state_tracked");
  p.state_tracked = r.boolean();
  r.expect(',');
  r.key("telemetry");
  if (r.try_consume('n')) {
    // "null" — the reader has consumed 'n'; eat the rest by hand.
    r.expect('u');
    r.expect('l');
    r.expect('l');
    p.has_telemetry = false;
  } else {
    p.telemetry = parse_telemetry_fields(r);
    p.has_telemetry = true;
  }
  r.expect('}');
  r.end();
  return p;
}

std::string spool_window_path(const std::string& dir, const std::string& nf,
                              std::uint32_t instance, std::uint64_t window) {
  return dir + "/" + nf + ".i" + std::to_string(instance) + ".w" +
         std::to_string(window) + ".json";
}

std::string spool_final_path(const std::string& dir, const std::string& nf,
                             std::uint32_t instance) {
  return dir + "/" + nf + ".i" + std::to_string(instance) + ".final.json";
}

void read_spool(const std::string& dir, const std::string& nf,
                std::vector<WindowPartial>* windows,
                std::vector<FinalPartial>* finals) {
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return;  // no spool yet — nothing to merge
  const std::string prefix = nf + ".i";
  std::vector<std::string> names;
  while (const dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= prefix.size() + 5) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(name.size() - 5, 5, ".json") != 0) continue;
    names.push_back(name);
  }
  closedir(d);
  // Sorted scan order: the result is deterministic no matter how the
  // filesystem enumerates.
  std::sort(names.begin(), names.end());
  for (const std::string& name : names) {
    const std::string text =
        support::read_file_or_die(dir + "/" + name, "fleet partial");
    if (name.size() > 11 &&
        name.compare(name.size() - 11, 11, ".final.json") == 0) {
      finals->push_back(parse_final_partial(text));
    } else {
      windows->push_back(parse_window_partial(text));
    }
  }
}

FleetMergeResult merge_partials(const std::vector<WindowPartial>& windows,
                                const std::vector<FinalPartial>& finals,
                                const DriftOptions& drift) {
  BOLT_CHECK(!finals.empty(),
             "fleet merge: no final partials (every instance must drain "
             "before merging)");

  // Deduplicate finals by instance. Duplicates should be byte-identical
  // copies; keep the max (stream_packets, serialised bytes) so the choice
  // is order-independent even if they are not.
  std::map<std::uint32_t, const FinalPartial*> final_by_instance;
  for (const FinalPartial& f : finals) {
    auto [it, inserted] = final_by_instance.emplace(f.instance, &f);
    if (inserted) continue;
    const FinalPartial* kept = it->second;
    if (f.stream_packets > kept->stream_packets ||
        (f.stream_packets == kept->stream_packets &&
         final_partial_to_json(f) > final_partial_to_json(*kept))) {
      it->second = &f;
    }
  }

  const FinalPartial& ref = *final_by_instance.begin()->second;
  for (const auto& [instance, f] : final_by_instance) {
    BOLT_CHECK(f->nf == ref.nf, "fleet merge: partials disagree on nf");
    BOLT_CHECK(f->instances == ref.instances,
               "fleet merge: partials disagree on fleet size");
    BOLT_CHECK(instance < f->instances,
               "fleet merge: instance id out of range");
    BOLT_CHECK(f->partitions == ref.partitions,
               "fleet merge: partials disagree on partitions");
    BOLT_CHECK(f->cycles_checked == ref.cycles_checked,
               "fleet merge: partials disagree on cycles_checked");
    BOLT_CHECK(f->epoch_ns == ref.epoch_ns,
               "fleet merge: partials disagree on epoch_ns");
    BOLT_CHECK(f->max_offenders == ref.max_offenders,
               "fleet merge: partials disagree on max_offenders");
    BOLT_CHECK(f->entries == ref.entries,
               "fleet merge: partials disagree on the contract entry list");
  }

  // Deduplicate window partials by (instance, window), same tie-break.
  std::map<std::pair<std::uint32_t, std::uint64_t>, const WindowPartial*>
      window_by_key;
  for (const WindowPartial& w : windows) {
    BOLT_CHECK(w.nf == ref.nf, "fleet merge: partials disagree on nf");
    BOLT_CHECK(w.instances == ref.instances,
               "fleet merge: partials disagree on fleet size");
    const auto key = std::make_pair(w.instance, w.window);
    auto [it, inserted] = window_by_key.emplace(key, &w);
    if (inserted) continue;
    const WindowPartial* kept = it->second;
    if (w.packets > kept->packets ||
        (w.packets == kept->packets &&
         window_partial_to_json(w) > window_partial_to_json(*kept))) {
      it->second = &w;
    }
  }

  const std::vector<std::string>& entry_names = ref.entries;
  std::unordered_map<std::string, std::size_t> entry_index;
  for (std::size_t e = 0; e < entry_names.size(); ++e) {
    entry_index.emplace(entry_names[e], e);
  }
  const std::size_t cap = static_cast<std::size_t>(ref.max_offenders);

  // Fold instances into per-window merged state (std::map: windows walk in
  // ascending order, which the drift replay requires).
  std::uint64_t window_ns = 0;
  std::map<std::uint64_t, std::vector<ClassAccum>> merged_windows;
  RunTotals totals;
  for (const auto& [key, w] : window_by_key) {
    if (w->window_ns > 0) {
      BOLT_CHECK(window_ns == 0 || window_ns == w->window_ns,
                 "fleet merge: partials disagree on window_ns");
      window_ns = w->window_ns;
    }
    auto [it, inserted] = merged_windows.try_emplace(w->window);
    if (inserted) it->second.assign(entry_names.size(), ClassAccum{});
    for (std::size_t c = 0; c < w->classes.size(); ++c) {
      const auto at = entry_index.find(w->classes[c]);
      BOLT_CHECK(at != entry_index.end(),
                 "fleet merge: window partial names unknown class '" +
                     w->classes[c] + "'");
      it->second[at->second].merge(w->accums[c], cap);
    }
    RunTotals wt;
    wt.unattributed = w->unattributed;
    wt.first_unattributed = w->first_unattributed;
    wt.any_unattributed = w->any_unattributed;
    wt.epoch_sweeps = w->epoch_sweeps;
    wt.expired_idle = w->expired_idle;
    wt.high_water = w->high_water;
    totals.merge(wt);
  }

  FleetMergeResult out;

  // Walk merged windows in ascending order: render the delta line (when
  // the window has attributed traffic and delta mode was on — exactly the
  // windows a single instance's stream would contain) and fold the window
  // into the grand per-class accumulators.
  std::vector<ClassAccum> grand(entry_names.size());
  DriftDetector detector(drift);
  for (auto& [window, accums] : merged_windows) {
    std::uint64_t attributed = 0;
    for (const ClassAccum& acc : accums) attributed += acc.packets;
    if (attributed > 0 && window_ns > 0) {
      std::vector<monitor::DeltaEntryAccum> slices;
      slices.reserve(accums.size());
      for (const ClassAccum& acc : accums) {
        slices.push_back(monitor::delta_slice(acc));
      }
      out.observations.deltas.push_back(
          monitor::build_delta_window(window, window_ns, entry_names, slices,
                                      detector, &out.observations.alerts));
    }
    for (std::size_t e = 0; e < grand.size(); ++e) {
      grand[e].merge(accums[e], cap);
    }
  }

  // Stream length: every instance fed the full stream, so finals agree;
  // max tolerates an instance that was drained early.
  std::uint64_t stream_packets = 0;
  bool any_telemetry = false;
  for (const auto& [instance, f] : final_by_instance) {
    stream_packets = std::max(stream_packets, f->stream_packets);
    totals.residents += f->residents;
    totals.state_tracked = totals.state_tracked || f->state_tracked;
    if (f->has_telemetry) {
      any_telemetry = true;
      out.observations.telemetry.merge(f->telemetry);
    }
  }
  (void)any_telemetry;

  out.report = monitor::build_report(
      ref.nf, stream_packets, static_cast<std::size_t>(ref.partitions),
      ref.cycles_checked, ref.epoch_ns, entry_names, std::move(grand), totals);

  // Mirror the merge-time facts exactly like the engines do.
  out.observations.telemetry.epoch_sweeps = out.report.epoch_sweeps;
  out.observations.telemetry.state_high_water = out.report.state_high_water;
  out.observations.telemetry.delta_windows = out.observations.deltas.size();
  out.observations.telemetry.drift_alerts = out.observations.alerts.size();
  return out;
}

}  // namespace bolt::obs
