// Epoch-aligned report deltas — the monitor's incremental reporting mode.
//
// A long monitoring run used to produce exactly one report blob at
// end-of-run. Delta mode turns it into a time series: packets are bucketed
// into windows of `delta_every` epochs purely by their timestamp
// (window = ts / (epoch_ns * delta_every) — a function of the packet, not
// of scheduling), each window accumulates per-class violation counts and
// headroom sketches, and the per-queue window maps are merged once at end
// of run exactly like the main report's accumulators. Because the window
// key is semantic and every accumulator is merge-order independent, the
// delta stream is byte-deterministic across the execution-only knobs
// (shards x threads x grouping x batch x pipeline), and merging all of a
// run's window sketches reproduces the final report's sketch state —
// tests/test_obs.cpp locks both properties down.
//
// Each window renders as one JSON line (JSONL), so an operator can tail
// the stream (`bolt_cli monitor --watch`), archive it (`--delta-out`), or
// feed it to the drift detector (obs/drift.h), whose alerts are embedded
// in the window where they were raised.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/drift.h"
#include "perf/metric.h"
#include "perf/quantile_sketch.h"

namespace bolt::obs {

/// Delta stream JSON schema version (one object per line, one line per
/// window; see docs/OBSERVABILITY.md "Delta schema").
inline constexpr std::int64_t kDeltaSchemaVersion = 1;

/// Per-window, per-class, per-metric accumulation. The raw sketch is kept
/// (not just its summary) so windows can be re-merged — the determinism
/// tests rebuild the end-of-run sketch state from the stream.
struct DeltaMetric {
  std::uint64_t violations = 0;
  perf::QuantileSketch headroom_pm;  ///< utilization per-mille, this window
};

struct DeltaClass {
  std::string input_class;
  std::uint64_t packets = 0;
  std::array<DeltaMetric, 3> metrics;  ///< indexed by perf::metric_index
};

struct DeltaWindow {
  std::uint64_t window = 0;     ///< ts / window_ns
  std::uint64_t window_ns = 0;  ///< epoch_ns * delta_every
  std::uint64_t packets = 0;    ///< attributed packets in this window
  std::uint64_t violations = 0;
  /// Classes with traffic this window, sorted by input_class.
  std::vector<DeltaClass> classes;
  /// Drift alerts raised at this window (obs/drift.h).
  std::vector<DriftAlert> alerts;
};

/// One JSONL line (no trailing newline). Byte-deterministic given the
/// window contents.
std::string delta_window_to_json(const DeltaWindow& w);

}  // namespace bolt::obs
