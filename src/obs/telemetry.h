// Hot-path telemetry — low-overhead execution counters for the monitor's
// staged pipeline, plus the bundle the engine fills for one run.
//
// The counters answer "what did the machine do" (ring stalls, batch fill,
// buffer recycling, VM dispatches), never "what did the traffic do" — the
// report answers that. The split is a hard invariant: telemetry is
// *execution-only*, collected in per-worker locals along the same
// stage-ownership boundaries that keep the pipeline race-free, folded
// together after the workers join, and provably unable to change report
// bytes (tests/test_obs.cpp compares reports with telemetry on and off,
// byte for byte; bench/monitor_throughput.cpp gates the overhead at 5%).
//
// Unlike the report and the delta stream, a telemetry snapshot is NOT
// deterministic — stalls and recycle hits depend on scheduling. That is
// the point: it is the one place scheduling is allowed to show.
//
// Exposition: JSON (one object) and the Prometheus text format, both
// written by `bolt_cli monitor --metrics-out FILE [--metrics-format
// json|prom]`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/delta.h"
#include "perf/quantile_sketch.h"

namespace bolt::obs {

/// Execution counters for one monitor run (or one worker's share of it —
/// merge() folds worker-locals into the run snapshot).
struct MonitorTelemetry {
  // --- execute/attribute stage ---
  std::uint64_t packets_executed = 0;    ///< packets run through the NF
  std::uint64_t attr_memo_hits = 0;      ///< class-key memo short-circuits
  std::uint64_t batches_emitted = 0;     ///< SoA batches handed to validate
  std::uint64_t batch_rows = 0;          ///< total rows across those batches
  perf::QuantileSketch batch_fill;       ///< rows per emitted batch
  // --- SPSC rings (pipelined mode; support::SpscRingStats) ---
  std::uint64_t ring_pushes = 0;         ///< batches pushed to validate rings
  std::uint64_t ring_stalls = 0;         ///< pushes that found a ring full
  std::uint64_t ring_occupancy_high_water = 0;  ///< max batches in flight
  std::uint64_t recycle_hits = 0;        ///< emits reusing a returned buffer
  std::uint64_t recycle_misses = 0;      ///< emits that had to allocate
  // --- validate stage ---
  std::uint64_t vm_batch_evals = 0;      ///< compiled-expr eval_batch calls
  std::uint64_t rows_validated = 0;
  // --- maintenance + reporting (filled at merge time) ---
  std::uint64_t epoch_sweeps = 0;
  std::uint64_t state_high_water = 0;
  std::uint64_t delta_windows = 0;
  std::uint64_t drift_alerts = 0;

  /// Order-independent fold (sums; maxima for high-water marks).
  void merge(const MonitorTelemetry& other);
};

/// JSON exposition (one object; schema in docs/OBSERVABILITY.md).
std::string telemetry_to_json(const MonitorTelemetry& t, const std::string& nf);

/// Prometheus text exposition format (counters + a summary with the batch
/// fill quantiles), labelled with the NF name.
std::string telemetry_to_prometheus(const MonitorTelemetry& t,
                                    const std::string& nf);

/// Everything one monitor run observes beyond the report: the telemetry
/// snapshot, the delta window stream, and the drift alerts (each alert is
/// also embedded in its window). Pass to MonitorEngine::run() to opt in.
struct RunObservations {
  MonitorTelemetry telemetry;
  std::vector<DeltaWindow> deltas;
  std::vector<DriftAlert> alerts;
};

}  // namespace bolt::obs
