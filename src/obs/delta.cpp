#include "obs/delta.h"

#include "support/strings.h"

namespace bolt::obs {

std::string delta_window_to_json(const DeltaWindow& w) {
  using support::json_quote_into;
  std::string out = "{\"version\":" + std::to_string(kDeltaSchemaVersion);
  out += ",\"window\":" + std::to_string(w.window);
  out += ",\"window_start_ns\":" + std::to_string(w.window * w.window_ns);
  out += ",\"window_ns\":" + std::to_string(w.window_ns);
  out += ",\"packets\":" + std::to_string(w.packets);
  out += ",\"violations\":" + std::to_string(w.violations);
  out += ",\"classes\":[";
  bool first_class = true;
  for (const DeltaClass& c : w.classes) {
    if (!first_class) out += ',';
    first_class = false;
    out += "{\"input_class\":";
    json_quote_into(out, c.input_class);
    out += ",\"packets\":" + std::to_string(c.packets);
    out += ",\"metrics\":{";
    bool first_metric = true;
    for (const perf::Metric m : perf::kAllMetrics) {
      const DeltaMetric& dm = c.metrics[perf::metric_index(m)];
      if (!first_metric) out += ',';
      first_metric = false;
      json_quote_into(out, std::string(perf::metric_name(m)));
      out += ":{\"violations\":" + std::to_string(dm.violations);
      out += ",\"headroom_pm\":";
      perf::summary_to_json(out, perf::summarize(dm.headroom_pm));
      out += '}';
    }
    out += "}}";
  }
  out += "],\"alerts\":[";
  bool first_alert = true;
  for (const DriftAlert& a : w.alerts) {
    if (!first_alert) out += ',';
    first_alert = false;
    out += "{\"input_class\":";
    json_quote_into(out, a.input_class);
    out += ",\"metric\":";
    json_quote_into(out, std::string(perf::metric_name(a.metric)));
    out += ",\"p99_pm\":" + std::to_string(a.p99_pm);
    out += ",\"slope_mpm\":" + std::to_string(a.slope_mpm);
    out += ",\"eta_windows\":" + std::to_string(a.eta_windows);
    out += '}';
  }
  out += "]}";
  return out;
}

}  // namespace bolt::obs
