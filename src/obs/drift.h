// Contract-drift detection — the telemetry layer's early-warning channel.
//
// A violation is the monitor's *last* line of defence: by the time one is
// reported, the bound has already been broken in production. The drift
// detector watches the trend instead: per (input class, metric) it tracks
// the p99 headroom utilization (per-mille of the bound) across the delta
// windows the incremental reporting mode emits (src/obs/delta.h), fits a
// robust slope over a ring of recent windows, and raises a structured
// alert when the trend projects a bound crossing within a configurable
// horizon — before any packet has violated.
//
// The slope estimator is Theil–Sen (the median of all pairwise slopes),
// computed in exact integer/rational arithmetic: it shrugs off a single
// outlier window (a GC-like burst, one anomalous tail) that would drag a
// least-squares fit, and it is a pure function of the point multiset, so
// alerts inherit the delta stream's determinism — a drifting trace alerts
// at the same window on every machine, shard count, and thread count.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "perf/metric.h"

namespace bolt::obs {

/// Tuning knobs for the drift detector. The defaults are validated by
/// tests/test_obs.cpp: they alert on the synthetic headroom-eroding
/// workload (net::drift_traffic) and stay silent on the stationary
/// zipf/longrun workloads.
struct DriftOptions {
  /// Recent windows kept per (class, metric) series.
  std::size_t window_ring = 8;
  /// Minimum points before a slope is computed (no alerts earlier).
  std::size_t min_points = 4;
  /// The bound in the series' unit (utilization per-mille: 1000 = at the
  /// contract bound).
  std::uint64_t bound_pm = 1000;
  /// Alert when the projected crossing is at most this many windows away.
  std::uint64_t horizon_windows = 32;
  /// Ignore slopes below this (milli-per-mille per window): stationary
  /// series jitter around zero and must not page anyone. With the adaptive
  /// baseline (below) this is the *floor* — the warmup threshold while a
  /// series' slope history is still short, and the lower bound the learned
  /// threshold can never drop under.
  std::int64_t min_slope_mpm = 500;
  /// Per-(class, metric) adaptive baseline: each series keeps a rolling
  /// history of its own Theil–Sen slopes (every computed slope, trending
  /// or not — so seasonal swings populate it) and a slope only counts as
  /// trending when it clears the learned band, median(history) +
  /// baseline_mad_k * MAD(history), *strictly*. Seasonal workloads whose
  /// p99 routinely ramps learn their own ramps and go quiet after the
  /// first period; a genuinely novel erosion still trips at the floor
  /// during warmup. Disable to recover the fixed global threshold.
  bool adaptive = true;
  /// Slope-history samples kept per series (the learning window).
  std::size_t baseline_ring = 16;
  /// History needed before the learned band arms; until then only the
  /// min_slope_mpm floor applies (so short-lived series still alert).
  std::size_t baseline_min = 6;
  /// Band width: median + this many MADs (median absolute deviations).
  std::int64_t baseline_mad_k = 4;
};

/// A structured drift alert: "class X's metric M p99 headroom is trending
/// toward the bound". Embedded in the delta window where it was raised and
/// surfaced through the CLI's distinct exit code (3).
struct DriftAlert {
  std::uint64_t window = 0;       ///< delta window id where raised
  std::string input_class;
  perf::Metric metric = perf::Metric::kInstructions;
  std::uint64_t p99_pm = 0;       ///< latest p99 utilization (per-mille)
  std::int64_t slope_mpm = 0;     ///< Theil–Sen slope, milli-pm per window
  std::uint64_t eta_windows = 0;  ///< projected windows until the bound
};

/// Streaming drift detector. Feed one (window, p99) point per series per
/// delta window, in window order; observe() returns true (and fills
/// `alert`) on the window where a series first trips the criteria, and
/// re-arms once the series stops trending (hysteresis — a sustained drift
/// raises one alert, not one per window).
class DriftDetector {
 public:
  explicit DriftDetector(const DriftOptions& opts = {});

  bool observe(const std::string& input_class, perf::Metric metric,
               std::uint64_t window, std::uint64_t p99_pm, DriftAlert* alert);

 private:
  struct Series {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> points;  // (x, y)
    /// Ring of recent Theil–Sen slopes (milli-pm per window, signed) — the
    /// per-series baseline the adaptive band is learned from.
    std::vector<std::int64_t> slope_history;
    bool alerted = false;  ///< hysteresis latch
  };

  DriftOptions opts_;
  /// Ordered map for deterministic iteration in debug dumps; keyed by
  /// (class, metric index).
  std::map<std::pair<std::string, int>, Series> series_;
};

}  // namespace bolt::obs
