#include "obs/drift.h"

#include <algorithm>

namespace bolt::obs {

namespace {

/// One pairwise slope dy/dx as an exact rational (dx > 0 always: points
/// arrive in strictly increasing window order).
struct Slope {
  std::int64_t dy = 0;
  std::uint64_t dx = 1;
};

/// slope a < slope b, by cross-multiplication (no floating point — alerts
/// must be bit-reproducible across compilers and machines).
bool slope_less(const Slope& a, const Slope& b) {
  const __int128 lhs = static_cast<__int128>(a.dy) * static_cast<std::int64_t>(b.dx);
  const __int128 rhs = static_cast<__int128>(b.dy) * static_cast<std::int64_t>(a.dx);
  return lhs < rhs;
}

}  // namespace

DriftDetector::DriftDetector(const DriftOptions& opts) : opts_(opts) {
  if (opts_.window_ring < 2) opts_.window_ring = 2;
  if (opts_.min_points < 2) opts_.min_points = 2;
  if (opts_.baseline_min < 2) opts_.baseline_min = 2;
  if (opts_.baseline_ring < opts_.baseline_min) {
    opts_.baseline_ring = opts_.baseline_min;
  }
}

bool DriftDetector::observe(const std::string& input_class,
                            perf::Metric metric, std::uint64_t window,
                            std::uint64_t p99_pm, DriftAlert* alert) {
  Series& s = series_[{input_class, perf::metric_index(metric)}];
  // Ring of recent points: drop the oldest once full. Same-window repeats
  // (not expected from the delta stream) replace the previous point.
  if (!s.points.empty() && s.points.back().first == window) {
    s.points.back().second = p99_pm;
  } else {
    s.points.emplace_back(window, p99_pm);
    if (s.points.size() > opts_.window_ring) s.points.erase(s.points.begin());
  }
  if (s.points.size() < opts_.min_points) return false;

  // Theil–Sen: median of all pairwise slopes, exact rational arithmetic.
  std::vector<Slope> slopes;
  slopes.reserve(s.points.size() * (s.points.size() - 1) / 2);
  for (std::size_t i = 0; i < s.points.size(); ++i) {
    for (std::size_t j = i + 1; j < s.points.size(); ++j) {
      Slope sl;
      sl.dy = static_cast<std::int64_t>(s.points[j].second) -
              static_cast<std::int64_t>(s.points[i].second);
      sl.dx = s.points[j].first - s.points[i].first;
      slopes.push_back(sl);
    }
  }
  // Lower median (deterministic for even counts); nth_element suffices.
  const std::size_t mid = (slopes.size() - 1) / 2;
  std::nth_element(slopes.begin(), slopes.begin() + mid, slopes.end(),
                   slope_less);
  const Slope med = slopes[mid];

  // The median slope in milli-pm per window, signed (C++ integer division
  // truncates toward zero for either sign): the value the baseline history
  // records for every observation, trending or not, so seasonal descents
  // and plateaus shape the band as much as ascents do.
  const std::int64_t raw_mpm =
      med.dy * 1000 / static_cast<std::int64_t>(med.dx);

  // Adaptive per-series threshold: the learned band (median + k * MAD of
  // the slope history, exact integer arithmetic, lower medians) once
  // enough history exists; only the min_slope_mpm floor during warmup.
  bool banded = false;
  std::int64_t band = 0;
  if (opts_.adaptive && s.slope_history.size() >= opts_.baseline_min) {
    std::vector<std::int64_t> h = s.slope_history;
    const std::size_t hm = (h.size() - 1) / 2;
    std::nth_element(h.begin(), h.begin() + hm, h.end());
    const std::int64_t med_h = h[hm];
    for (std::int64_t& v : h) v = v >= med_h ? v - med_h : med_h - v;
    std::nth_element(h.begin(), h.begin() + hm, h.end());
    band = med_h + opts_.baseline_mad_k * h[hm];
    banded = true;
  }

  const std::uint64_t last_pm = s.points.back().second;
  bool trending = false;
  std::uint64_t eta = 0;
  std::int64_t slope_mpm = 0;
  if (med.dy > 0 && last_pm < opts_.bound_pm) {
    slope_mpm = raw_mpm;
    // Projected windows until the series reaches the bound at the median
    // slope (ceiling division; exact integers throughout).
    const std::uint64_t gap = opts_.bound_pm - last_pm;
    eta = (gap * med.dx + static_cast<std::uint64_t>(med.dy) - 1) /
          static_cast<std::uint64_t>(med.dy);
    // Strictly above the learned band: a slope the series has made normal
    // (band == typical slope) is not drift, it is the season.
    trending = slope_mpm >= opts_.min_slope_mpm &&
               (!banded || slope_mpm > band) && eta <= opts_.horizon_windows;
  }

  // Record the slope *after* the decision — today's slope must not raise
  // the bar it is being judged against.
  s.slope_history.push_back(raw_mpm);
  if (s.slope_history.size() > opts_.baseline_ring) {
    s.slope_history.erase(s.slope_history.begin());
  }

  if (!trending) {
    s.alerted = false;  // re-arm once the trend breaks
    return false;
  }
  if (s.alerted) return false;  // sustained drift: one alert, not N
  s.alerted = true;
  if (alert != nullptr) {
    alert->window = window;
    alert->input_class = input_class;
    alert->metric = metric;
    alert->p99_pm = last_pm;
    alert->slope_mpm = slope_mpm;
    alert->eta_windows = eta;
  }
  return true;
}

}  // namespace bolt::obs
