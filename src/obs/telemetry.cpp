#include "obs/telemetry.h"

#include <algorithm>

#include "support/strings.h"

namespace bolt::obs {

void MonitorTelemetry::merge(const MonitorTelemetry& other) {
  packets_executed += other.packets_executed;
  attr_memo_hits += other.attr_memo_hits;
  batches_emitted += other.batches_emitted;
  batch_rows += other.batch_rows;
  batch_fill.merge(other.batch_fill);
  ring_pushes += other.ring_pushes;
  ring_stalls += other.ring_stalls;
  ring_occupancy_high_water =
      std::max(ring_occupancy_high_water, other.ring_occupancy_high_water);
  recycle_hits += other.recycle_hits;
  recycle_misses += other.recycle_misses;
  vm_batch_evals += other.vm_batch_evals;
  rows_validated += other.rows_validated;
  epoch_sweeps += other.epoch_sweeps;
  state_high_water = std::max(state_high_water, other.state_high_water);
  delta_windows += other.delta_windows;
  drift_alerts += other.drift_alerts;
}

std::string telemetry_to_json(const MonitorTelemetry& t,
                              const std::string& nf) {
  std::string out = "{\"nf\":";
  support::json_quote_into(out, nf);
  const auto field = [&out](const char* name, std::uint64_t value) {
    out += ",\"";
    out += name;
    out += "\":" + std::to_string(value);
  };
  field("packets_executed", t.packets_executed);
  field("attr_memo_hits", t.attr_memo_hits);
  field("batches_emitted", t.batches_emitted);
  field("batch_rows", t.batch_rows);
  out += ",\"batch_fill\":";
  perf::summary_to_json(out, perf::summarize(t.batch_fill));
  field("ring_pushes", t.ring_pushes);
  field("ring_stalls", t.ring_stalls);
  field("ring_occupancy_high_water", t.ring_occupancy_high_water);
  field("recycle_hits", t.recycle_hits);
  field("recycle_misses", t.recycle_misses);
  field("vm_batch_evals", t.vm_batch_evals);
  field("rows_validated", t.rows_validated);
  field("epoch_sweeps", t.epoch_sweeps);
  field("state_high_water", t.state_high_water);
  field("delta_windows", t.delta_windows);
  field("drift_alerts", t.drift_alerts);
  out += '}';
  return out;
}

std::string telemetry_to_prometheus(const MonitorTelemetry& t,
                                    const std::string& nf) {
  std::string out;
  const std::string label = "{nf=\"" + nf + "\"}";
  const auto counter = [&out, &label](const char* name, const char* help,
                                      std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " counter\n";
    out += name;
    out += label + ' ' + std::to_string(value) + '\n';
  };
  const auto gauge = [&out, &label](const char* name, const char* help,
                                    std::uint64_t value) {
    out += "# HELP ";
    out += name;
    out += ' ';
    out += help;
    out += "\n# TYPE ";
    out += name;
    out += " gauge\n";
    out += name;
    out += label + ' ' + std::to_string(value) + '\n';
  };
  counter("bolt_monitor_packets_total", "Packets executed through the NF.",
          t.packets_executed);
  counter("bolt_monitor_attr_memo_hits_total",
          "Attribution class-key memo short-circuits.", t.attr_memo_hits);
  counter("bolt_monitor_batches_total",
          "SoA batches handed from execute to validate.", t.batches_emitted);
  counter("bolt_monitor_ring_pushes_total",
          "Batches pushed onto validate-stage SPSC rings.", t.ring_pushes);
  counter("bolt_monitor_ring_stalls_total",
          "Ring pushes that found the ring full.", t.ring_stalls);
  gauge("bolt_monitor_ring_occupancy_high_water",
        "Maximum batches observed in flight on any ring.",
        t.ring_occupancy_high_water);
  counter("bolt_monitor_recycle_hits_total",
          "Batch emits that reused a recycled buffer.", t.recycle_hits);
  counter("bolt_monitor_recycle_misses_total",
          "Batch emits that had to allocate a fresh buffer.",
          t.recycle_misses);
  counter("bolt_monitor_vm_batch_evals_total",
          "Compiled-expression batch evaluations.", t.vm_batch_evals);
  counter("bolt_monitor_rows_validated_total",
          "Rows checked against contract bounds.", t.rows_validated);
  counter("bolt_monitor_epoch_sweeps_total",
          "Epoch-clock state-expiry sweeps.", t.epoch_sweeps);
  gauge("bolt_monitor_state_high_water",
        "Maximum tracked flow-state entries.", t.state_high_water);
  counter("bolt_monitor_delta_windows_total",
          "Delta report windows emitted.", t.delta_windows);
  counter("bolt_monitor_drift_alerts_total",
          "Contract-drift alerts raised.", t.drift_alerts);
  // Batch fill as a Prometheus summary: quantiles + _sum/_count.
  const perf::QuantileSummary fill = perf::summarize(t.batch_fill);
  out += "# HELP bolt_monitor_batch_fill Rows per emitted SoA batch.\n";
  out += "# TYPE bolt_monitor_batch_fill summary\n";
  const auto quantile = [&out, &nf](const char* q, std::uint64_t value) {
    out += "bolt_monitor_batch_fill{nf=\"" + nf + "\",quantile=\"";
    out += q;
    out += "\"} " + std::to_string(value) + '\n';
  };
  quantile("0.5", fill.p50);
  quantile("0.9", fill.p90);
  quantile("0.99", fill.p99);
  out += "bolt_monitor_batch_fill_sum" + label + ' ' +
         std::to_string(t.batch_rows) + '\n';
  out += "bolt_monitor_batch_fill_count" + label + ' ' +
         std::to_string(t.batches_emitted) + '\n';
  return out;
}

}  // namespace bolt::obs
