#include "monitor/accum.h"

#include <algorithm>

namespace bolt::monitor {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;
using perf::summarize;

int util_cmp(std::uint64_t ma, std::int64_t pa, std::uint64_t mb,
             std::int64_t pb) {
  const bool inf_a = pa <= 0 && ma > 0;
  const bool inf_b = pb <= 0 && mb > 0;
  if (inf_a || inf_b) {
    if (inf_a && inf_b) return ma < mb ? -1 : ma > mb ? 1 : 0;
    return inf_a ? 1 : -1;
  }
  // Both finite; p <= 0 implies m == 0 here, i.e. utilization 0.
  const std::uint64_t na = pa > 0 ? ma : 0;
  const std::uint64_t da = pa > 0 ? static_cast<std::uint64_t>(pa) : 1;
  const std::uint64_t nb = pb > 0 ? mb : 0;
  const std::uint64_t db = pb > 0 ? static_cast<std::uint64_t>(pb) : 1;
  const unsigned __int128 lhs = static_cast<unsigned __int128>(na) * db;
  const unsigned __int128 rhs = static_cast<unsigned __int128>(nb) * da;
  return lhs < rhs ? -1 : lhs > rhs ? 1 : 0;
}

std::size_t util_bucket(std::uint64_t measured, std::int64_t predicted) {
  if (static_cast<std::int64_t>(measured) > predicted) return kViolationBucket;
  if (predicted <= 0 || measured == 0) return 0;
  const std::uint64_t b =
      measured * 10 / static_cast<std::uint64_t>(predicted);
  return std::min<std::uint64_t>(b, kViolationBucket - 1);
}

std::uint64_t util_pm(std::uint64_t measured, std::int64_t predicted) {
  if (predicted <= 0) return measured > 0 ? kDegenerateUtilPm : 0;
  return measured * 1000 / static_cast<std::uint64_t>(predicted);
}

bool offender_before(const Offender& a, const Offender& b) {
  const int cmp = util_cmp(a.measured, a.predicted, b.measured, b.predicted);
  if (cmp != 0) return cmp > 0;
  return a.packet_index < b.packet_index;
}

void MetricAccum::record(std::uint64_t packet, std::uint64_t measured,
                         std::int64_t predicted) {
  if (static_cast<std::int64_t>(measured) > predicted) ++violations;
  ++histogram[util_bucket(measured, predicted)];
  headroom_pm.add(util_pm(measured, predicted));
  const int cmp =
      util_cmp(measured, predicted, worst_measured, worst_predicted);
  if (!has_worst || cmp > 0 || (cmp == 0 && packet < worst_packet)) {
    has_worst = true;
    worst_packet = packet;
    worst_predicted = predicted;
    worst_measured = measured;
  }
}

void MetricAccum::merge(const MetricAccum& other) {
  violations += other.violations;
  for (std::size_t b = 0; b < kUtilizationBuckets; ++b) {
    histogram[b] += other.histogram[b];
  }
  headroom_pm.merge(other.headroom_pm);
  if (!other.has_worst) return;
  const int cmp = util_cmp(other.worst_measured, other.worst_predicted,
                           worst_measured, worst_predicted);
  if (!has_worst || cmp > 0 ||
      (cmp == 0 && other.worst_packet < worst_packet)) {
    has_worst = true;
    worst_packet = other.worst_packet;
    worst_predicted = other.worst_predicted;
    worst_measured = other.worst_measured;
  }
}

void ClassAccum::add_offender(const Offender& o, std::size_t cap) {
  if (cap == 0) return;
  const auto pos =
      std::lower_bound(offenders.begin(), offenders.end(), o, offender_before);
  if (pos == offenders.end() && offenders.size() >= cap) return;
  offenders.insert(pos, o);
  if (offenders.size() > cap) offenders.pop_back();
}

void ClassAccum::merge(const ClassAccum& other, std::size_t cap) {
  packets += other.packets;
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    metrics[m].merge(other.metrics[m]);
  }
  violation_margin_pm.merge(other.violation_margin_pm);
  for (const Offender& o : other.offenders) add_offender(o, cap);
}

void DeltaEntryAccum::merge(const DeltaEntryAccum& other) {
  packets += other.packets;
  for (std::size_t m = 0; m < 3; ++m) {
    violations[m] += other.violations[m];
    headroom_pm[m].merge(other.headroom_pm[m]);
  }
}

DeltaEntryAccum delta_slice(const ClassAccum& acc) {
  DeltaEntryAccum d;
  d.packets = acc.packets;
  for (std::size_t m = 0; m < 3; ++m) {
    d.violations[m] = acc.metrics[m].violations;
    d.headroom_pm[m] = acc.metrics[m].headroom_pm;
  }
  return d;
}

void RunTotals::merge(const RunTotals& other) {
  if (other.unattributed > 0 || other.any_unattributed) {
    unattributed += other.unattributed;
    if (!any_unattributed || other.first_unattributed < first_unattributed) {
      any_unattributed = true;
      first_unattributed = other.first_unattributed;
    }
  }
  epoch_sweeps += other.epoch_sweeps;
  expired_idle += other.expired_idle;
  high_water = std::max(high_water, other.high_water);
  residents += other.residents;
  state_tracked = state_tracked || other.state_tracked;
}

MonitorReport build_report(const std::string& nf, std::uint64_t packets,
                           std::size_t partitions, bool cycles_checked,
                           std::uint64_t epoch_ns_option,
                           const std::vector<std::string>& entry_names,
                           std::vector<ClassAccum>&& merged,
                           const RunTotals& totals) {
  MonitorReport report;
  report.epoch_sweeps = totals.epoch_sweeps;
  report.state_expired_idle = totals.expired_idle;
  report.state_high_water = totals.high_water;
  report.state_residents = totals.residents;
  report.state_tracked = totals.state_tracked;

  report.nf = nf;
  report.packets = packets;
  report.unattributed = totals.unattributed;
  report.first_unattributed_packet = totals.first_unattributed;
  report.attributed = packets - totals.unattributed;
  report.partitions = partitions;
  report.cycles_checked = cycles_checked;
  // A target with no state observers never runs epoch maintenance, no
  // matter what the option says — report the effective value.
  report.epoch_ns = report.state_tracked ? epoch_ns_option : 0;
  report.classes.reserve(merged.size());
  for (std::size_t e = 0; e < merged.size(); ++e) {
    ClassReport cr;
    cr.input_class = entry_names[e];
    cr.packets = merged[e].packets;
    for (std::size_t m = 0; m < 3; ++m) {
      const MetricAccum& acc = merged[e].metrics[m];
      MetricReport& mr = cr.metrics[m];
      mr.violations = acc.violations;
      mr.worst_packet = acc.worst_packet;
      mr.worst_predicted = acc.worst_predicted;
      mr.worst_measured = acc.worst_measured;
      mr.histogram = acc.histogram;
      mr.headroom_pm = summarize(acc.headroom_pm);
      report.violations += acc.violations;
    }
    cr.violation_margin_pm = summarize(merged[e].violation_margin_pm);
    cr.offenders = std::move(merged[e].offenders);
    report.classes.push_back(std::move(cr));
  }
  // Classes sorted by input class for stable human output (contract
  // entries already arrive sorted from the generator; enforce anyway for
  // hand-built contracts).
  std::stable_sort(report.classes.begin(), report.classes.end(),
                   [](const ClassReport& a, const ClassReport& b) {
                     return a.input_class < b.input_class;
                   });
  return report;
}

obs::DeltaWindow build_delta_window(std::uint64_t window,
                                    std::uint64_t window_ns,
                                    const std::vector<std::string>& entry_names,
                                    const std::vector<DeltaEntryAccum>& accums,
                                    obs::DriftDetector& detector,
                                    std::vector<obs::DriftAlert>* alerts_out) {
  obs::DeltaWindow dw;
  dw.window = window;
  dw.window_ns = window_ns;
  for (std::size_t e = 0; e < accums.size(); ++e) {
    const DeltaEntryAccum& ea = accums[e];
    if (ea.packets == 0) continue;
    obs::DeltaClass dc;
    dc.input_class = entry_names[e];
    dc.packets = ea.packets;
    dw.packets += ea.packets;
    for (const Metric m : kAllMetrics) {
      const int mi = metric_index(m);
      dc.metrics[mi].violations = ea.violations[mi];
      dc.metrics[mi].headroom_pm = ea.headroom_pm[mi];
      dw.violations += ea.violations[mi];
    }
    dw.classes.push_back(std::move(dc));
  }
  std::stable_sort(dw.classes.begin(), dw.classes.end(),
                   [](const obs::DeltaClass& a, const obs::DeltaClass& b) {
                     return a.input_class < b.input_class;
                   });
  // Drift detection over exactly the stream the operator sees: one p99
  // point per (class, metric) per window, in window order.
  for (const obs::DeltaClass& dc : dw.classes) {
    for (const Metric m : kAllMetrics) {
      const perf::QuantileSketch& sk = dc.metrics[metric_index(m)].headroom_pm;
      if (sk.count() == 0) continue;
      obs::DriftAlert alert;
      if (detector.observe(dc.input_class, m, window, sk.quantile(0.99),
                           &alert)) {
        dw.alerts.push_back(alert);
        if (alerts_out != nullptr) alerts_out->push_back(std::move(alert));
      }
    }
  }
  return dw;
}

}  // namespace bolt::monitor
