#include "monitor/follow.h"

#include <algorithm>
#include <utility>

#include "core/runner.h"
#include "monitor/attribute.h"
#include "obs/delta.h"
#include "support/assert.h"

namespace bolt::monitor {

namespace {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;

}  // namespace

/// One flow-affine partition's live state: a fresh NF instance, its cycle
/// model, the class resolver bound to it, the PCV/loop slot maps into the
/// contract registry, and the deterministic epoch clock — exactly the
/// per-partition state the batch engine's QueueTask::run_partition keeps
/// on its stack, kept alive here because the stream never ends.
struct StreamMonitor::Partition {
  perf::PcvRegistry local_reg;
  core::NfTarget target;
  hw::ConservativeModel cycles;
  std::unique_ptr<core::NfRunner> runner;
  ClassResolver resolver;
  std::vector<std::uint32_t> pcv_slot;
  std::vector<std::uint32_t> loop_slot;
  bool epochs_on = false;
  bool have_epoch = false;
  std::uint64_t next_boundary = 0;
  net::Packet scratch_pkt;  ///< reused packet copy (the NF mutates headers)
  ir::RunResult run;        ///< reused run result

  Partition(const StreamMonitor& m)
      : cycles(m.options_.cycle_costs), resolver(&m.entry_index_) {
    constexpr std::uint32_t kUnmapped = ~0u;
    target = m.factory_(local_reg);
    pcv_slot.assign(local_reg.size(), kUnmapped);
    for (const perf::PcvId id : local_reg.all()) {
      const std::string& name = local_reg.name(id);
      if (m.reg_.contains(name)) pcv_slot[id] = m.reg_.require(name);
    }
    resolver.bind(target);
    runner = target.make_runner(
        m.options_.framework, m.options_.check_cycles ? &cycles : nullptr,
        m.options_.engine);
    ir::RunLabels& labels = runner->labels();
    loop_slot.assign(labels.loop_count(), kUnmapped);
    for (std::size_t flat = 0; flat < labels.loop_count(); ++flat) {
      const std::string& name = labels.loop_name(flat);
      if (m.reg_.contains(name)) loop_slot[flat] = m.reg_.require(name);
    }
    epochs_on = m.options_.epoch_ns > 0 && target.has_state_observers();
  }
};

struct StreamMonitor::WindowData {
  std::vector<ClassAccum> accums;  ///< per contract entry
  WindowStats stats;
};

StreamMonitor::StreamMonitor(const perf::Contract& contract,
                             const perf::PcvRegistry& reg,
                             const MonitorEngine::TargetFactory& factory,
                             MonitorOptions options, FleetOptions fleet,
                             WindowFn on_window)
    : contract_(contract),
      reg_(reg),
      factory_(factory),
      options_(options),
      fleet_(std::move(fleet)),
      on_window_(std::move(on_window)),
      detector_(options.drift) {
  if (options_.partitions == 0) options_.partitions = 1;
  if (fleet_.instances == 0) fleet_.instances = 1;
  BOLT_CHECK(fleet_.instance < fleet_.instances,
             "stream monitor: instance id out of range");
  BOLT_CHECK(fleet_.owners.empty() || fleet_.owners.size() == options_.partitions,
             "stream monitor: owners map must cover every partition");
  for (const std::uint32_t owner : fleet_.owners) {
    BOLT_CHECK(owner < fleet_.instances,
               "stream monitor: partition owner out of range");
  }
  // Compiled per-entry bounds + slot stride, same construction as
  // MonitorEngine — identical predicted values by construction.
  slot_stride_ = std::max<std::size_t>(reg_.size(), 1);
  vms_.reserve(contract_.entries().size());
  entry_names_.reserve(contract_.entries().size());
  for (std::size_t i = 0; i < contract_.entries().size(); ++i) {
    const perf::ContractEntry& entry = contract_.entries()[i];
    std::array<perf::CompiledExpr, 3> exprs;
    for (const Metric m : kAllMetrics) {
      exprs[metric_index(m)] = perf::CompiledExpr::compile(entry.perf.get(m));
      slot_stride_ = std::max(slot_stride_, exprs[metric_index(m)].slot_count());
    }
    vms_.push_back(std::move(exprs));
    entry_index_.emplace(entry.input_class, i);
    entry_names_.push_back(entry.input_class);
  }
  if (options_.delta_every > 0 && options_.epoch_ns > 0) {
    delta_window_ns_ = options_.epoch_ns * options_.delta_every;
  }
  partitions_.resize(options_.partitions);
  total_accums_.assign(contract_.entries().size(), ClassAccum{});
  row_buf_.assign(slot_stride_, 0);
  // Probe the factory once for the state-observer flag: the batch engine
  // reports state_tracked for every run regardless of traffic, and so
  // must an instance that happened to own only quiet partitions.
  {
    perf::PcvRegistry probe_reg;
    track_state_ = factory_(probe_reg).has_state_observers();
  }
  totals_.state_tracked = track_state_;
}

StreamMonitor::~StreamMonitor() = default;

bool StreamMonitor::owned(std::size_t partition) const {
  const std::uint32_t owner =
      fleet_.owners.empty()
          ? static_cast<std::uint32_t>(partition % fleet_.instances)
          : fleet_.owners[partition];
  return owner == fleet_.instance;
}

void StreamMonitor::validate_row(std::uint64_t index, std::uint64_t window,
                                 std::uint32_t entry, const std::uint64_t* row,
                                 const std::array<std::uint64_t, 3>& measured) {
  (void)window;
  ClassAccum& acc = open_->accums[entry];
  ++acc.packets;
  Offender worst;
  bool has_offender = false;
  std::int64_t predicted = 0;
  for (const Metric m : kAllMetrics) {
    const int mi = metric_index(m);
    if (m == Metric::kCycles && !options_.check_cycles) continue;
    vms_[entry][mi].eval_batch(row, slot_stride_, 1, &predicted, scratch_);
    if (options_.telemetry) ++tel_.vm_batch_evals;
    const std::uint64_t value = measured[mi];
    acc.metrics[mi].record(index, value, predicted);
    if (static_cast<std::int64_t>(value) > predicted) {
      acc.violation_margin_pm.add(
          predicted > 0 ? (value - static_cast<std::uint64_t>(predicted)) *
                              1000 / static_cast<std::uint64_t>(predicted)
                        : kDegenerateUtilPm);
    }
    if (!has_offender ||
        util_cmp(value, predicted, worst.measured, worst.predicted) > 0) {
      has_offender = true;
      worst.packet_index = index;
      worst.metric = m;
      worst.predicted = predicted;
      worst.measured = value;
    }
  }
  if (has_offender) acc.add_offender(worst, options_.max_offenders);
  if (options_.telemetry) ++tel_.rows_validated;
}

void StreamMonitor::feed(const net::Packet& packet) {
  BOLT_CHECK(!finished_, "stream monitor: feed after finish");
  const std::uint64_t index = next_index_++;
  const std::uint64_t ts = packet.timestamp_ns();
  const std::uint64_t w = delta_window_ns_ > 0 ? ts / delta_window_ns_ : 0;

  // The window clock advances on *every* packet of the global stream
  // (owned or not), so all fleet instances close the same windows at the
  // same stream positions.
  if (!have_open_) {
    open_ = std::make_unique<WindowData>();
    open_->accums.assign(contract_.entries().size(), ClassAccum{});
    have_open_ = true;
    open_window_ = w;
  } else if (w > open_window_) {
    close_open(/*provisional=*/false);
    open_->accums.assign(contract_.entries().size(), ClassAccum{});
    open_->stats = WindowStats{};
    open_window_ = w;
  }

  const std::size_t p = partition_of(packet, options_.partitions);
  if (!owned(p)) return;
  if (w < open_window_) ++open_->stats.late_packets;
  ++open_->stats.packets;
  open_dirty_ = true;

  if (partitions_[p] == nullptr) {
    partitions_[p] = std::make_unique<Partition>(*this);
  }
  Partition& part = *partitions_[p];

  std::uint64_t straddle_leak = 0;
  if (part.epochs_on) {
    if (!part.have_epoch) {
      part.have_epoch = true;
      part.next_boundary =
          (ts / options_.epoch_ns + 1) * options_.epoch_ns;
    } else if (ts >= part.next_boundary) {
      const std::uint64_t epoch = ts / options_.epoch_ns;
      open_->stats.expired_idle +=
          part.target.expire_state(epoch * options_.epoch_ns);
      ++open_->stats.epoch_sweeps;
      part.next_boundary = (epoch + 1) * options_.epoch_ns;
      if (options_.inject_straddle_bug && ts == epoch * options_.epoch_ns) {
        straddle_leak = 1;
      }
    }
  }

  part.scratch_pkt = packet;
  if (options_.check_cycles) part.cycles.begin_packet();
  part.runner->process_into(part.scratch_pkt, part.run);
  if (part.target.has_state_observers()) {
    open_->stats.high_water = std::max<std::uint64_t>(
        open_->stats.high_water, part.target.state_occupancy());
  }
  if (options_.telemetry) ++tel_.packets_executed;

  const std::uint32_t entry = part.resolver.resolve(
      part.run, part.runner->labels(), kUnattributedEntry,
      options_.telemetry ? &tel_.attr_memo_hits : nullptr);
  if (entry == kUnattributedEntry) {
    WindowStats& st = open_->stats;
    if (!st.any_unattributed || index < st.first_unattributed) {
      st.any_unattributed = true;
      st.first_unattributed = index;
    }
    ++st.unattributed;
    return;
  }

  constexpr std::uint32_t kUnmapped = ~0u;
  std::fill(row_buf_.begin(), row_buf_.end(), 0);
  for (const auto& [id, value] : part.run.pcvs.values()) {
    if (id < part.pcv_slot.size() && part.pcv_slot[id] != kUnmapped) {
      row_buf_[part.pcv_slot[id]] = value;
    }
  }
  for (std::size_t flat = 0; flat < part.run.loop_trips.size(); ++flat) {
    const std::uint64_t trips = part.run.loop_trips[flat];
    if (trips != 0 && part.loop_slot[flat] != kUnmapped) {
      row_buf_[part.loop_slot[flat]] = trips;
    }
  }
  const std::array<std::uint64_t, 3> measured = {
      part.run.instructions + straddle_leak,
      part.run.mem_accesses,
      options_.check_cycles ? part.cycles.packet_cycles() : 0,
  };
  validate_row(index, w, entry, row_buf_.data(), measured);
}

void StreamMonitor::close_open(bool provisional) {
  if (!have_open_) return;
  if (provisional && !open_dirty_) return;  // nothing new since last flush

  ClosedWindow cw;
  cw.window = open_window_;
  cw.window_ns = delta_window_ns_;
  cw.provisional = provisional;
  cw.accums = &open_->accums;
  cw.stats = &open_->stats;

  // Render a delta window only when there is attributed traffic — the
  // batch stream never contains a window without it.
  std::uint64_t attributed = 0;
  for (const ClassAccum& acc : open_->accums) attributed += acc.packets;
  if (delta_window_ns_ > 0 && attributed > 0) {
    std::vector<DeltaEntryAccum> slices;
    slices.reserve(open_->accums.size());
    for (const ClassAccum& acc : open_->accums) {
      slices.push_back(delta_slice(acc));
    }
    if (provisional) {
      // A provisional emission must not advance the drift detector (the
      // authoritative close will); a throwaway detector with a single
      // window can never reach min_points, so alerts stay empty.
      obs::DriftDetector scratch(options_.drift);
      cw.delta = build_delta_window(open_window_, delta_window_ns_,
                                    entry_names_, slices, scratch, nullptr);
    } else {
      cw.delta = build_delta_window(open_window_, delta_window_ns_,
                                    entry_names_, slices, detector_, &alerts_);
    }
    cw.has_delta = true;
  }

  if (on_window_ != nullptr) on_window_(cw);
  open_dirty_ = false;
  if (provisional) return;  // keep accumulating into the same window

  if (cw.has_delta) ++windows_emitted_;
  for (std::size_t e = 0; e < total_accums_.size(); ++e) {
    total_accums_[e].merge(open_->accums[e], options_.max_offenders);
  }
  RunTotals wt;
  wt.unattributed = open_->stats.unattributed;
  wt.first_unattributed = open_->stats.first_unattributed;
  wt.any_unattributed = open_->stats.any_unattributed;
  wt.epoch_sweeps = open_->stats.epoch_sweeps;
  wt.expired_idle = open_->stats.expired_idle;
  wt.high_water = open_->stats.high_water;
  totals_.merge(wt);
}

obs::MonitorTelemetry StreamMonitor::telemetry_snapshot() const {
  obs::MonitorTelemetry t = tel_;
  t.epoch_sweeps = totals_.epoch_sweeps;
  t.state_high_water = totals_.high_water;
  t.delta_windows = windows_emitted_;
  t.drift_alerts = alerts_.size();
  return t;
}

void StreamMonitor::idle_flush() {
  BOLT_CHECK(!finished_, "stream monitor: idle_flush after finish");
  close_open(/*provisional=*/true);
}

StreamResult StreamMonitor::finish() {
  BOLT_CHECK(!finished_, "stream monitor: finish called twice");
  finished_ = true;
  close_open(/*provisional=*/false);
  have_open_ = false;
  open_.reset();

  // Residents match the batch engine, which instantiates every partition
  // (even traffic-free ones) and sums end-of-run occupancy. An instance
  // only answers for partitions it owns — summed across a fleet, every
  // partition is counted exactly once, same as a single monitor.
  if (track_state_) {
    for (std::size_t p = 0; p < partitions_.size(); ++p) {
      if (!owned(p)) continue;
      if (partitions_[p] == nullptr) {
        partitions_[p] = std::make_unique<Partition>(*this);
      }
      totals_.residents += partitions_[p]->target.state_occupancy();
    }
  }

  StreamResult out;
  std::vector<ClassAccum> merged = std::move(total_accums_);
  total_accums_.assign(contract_.entries().size(), ClassAccum{});
  out.report = build_report(contract_.nf_name(), next_index_,
                            options_.partitions, options_.check_cycles,
                            options_.epoch_ns, entry_names_, std::move(merged),
                            totals_);
  out.observations.alerts = alerts_;
  // Merge-time facts are mirrored whether or not counter collection was on
  // — same as the batch engine (counters stay zero when telemetry is off).
  tel_.epoch_sweeps = out.report.epoch_sweeps;
  tel_.state_high_water = out.report.state_high_water;
  tel_.delta_windows = windows_emitted_;
  tel_.drift_alerts = alerts_.size();
  out.observations.telemetry = tel_;
  return out;
}

}  // namespace bolt::monitor
