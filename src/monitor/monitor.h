// Contract monitor — streaming runtime validation of performance contracts
// (the consumer side of the paper: operators and developers checking that
// an NF under real traffic actually stays inside its predicted bounds).
//
// The engine streams a packet trace through the concrete NfRunner,
// classifies every packet into its contract input class (the same
// class-key language the generator and the Distiller speak), evaluates the
// per-class bound for each metric at the packet's induced PCVs, and
// aggregates per-class statistics: packet counts, violation counts,
// headroom histograms and quantile sketches, and worst offenders with
// reproducer packet indices.
//
// Operator mode: the engine validates against a perf::Contract regardless
// of where it came from — freshly generated, or a *stored* artifact loaded
// through perf/contract_io (`bolt_cli monitor --contract FILE.json`), in
// which case no symbolic execution happens at all.
//
// Three design points make it fast AND deterministic:
//
//  * A batched staged pipeline — packets flow through three stages,
//    execute (run the NF, collect PCVs/counters) -> attribute (resolve the
//    observed class key to a contract entry, allocation-free) ->
//    validate (evaluate the entry's compiled bounds over a whole batch of
//    same-class packets and accumulate statistics). Rows land in
//    structure-of-arrays batch buffers, so dispatch, attribution
//    bookkeeping and expression evaluation are amortised per batch rather
//    than paid per packet. With two or more worker threads the execute and
//    validate stages run on separate threads per worker pair, hand-off by
//    lock-free SPSC ring (support/spsc_ring.h) with batch-buffer recycling
//    on the return path.
//
//  * Compiled expressions — contract polynomials are flattened once into
//    perf::CompiledExpr bytecode and evaluated in batches over dense PCV
//    rows instead of per-packet tree walks (bench/monitor_throughput.cpp
//    measures the difference).
//
//  * Fixed state partitions — the stream is split into `partitions`
//    flow-affine sub-streams (RSS-style: flows hash to partitions, so
//    per-flow state in a partition sees a coherent history), each with a
//    freshly built NF instance. The partition count is part of the
//    *semantics*; `shards` (how partitions are grouped into work queues),
//    `grouping` (the placement policy), `threads` (how many queues run
//    concurrently), `batch` (rows per pipeline batch) and `pipeline`
//    (staged or inline validation) are pure execution knobs. Statistics
//    accumulate per work queue and are merged once at end of run; every
//    accumulation is order-independent (sums, maxima under a total order,
//    merge-order-independent quantile sketches), so reports are
//    byte-identical at any shard x thread x grouping x batch combination —
//    the same determinism contract the PR-1 pipeline enforces
//    (tests/test_monitor.cpp, tests/test_monitor_longrun.cpp).
//
//  * A deterministic epoch clock — driven by packet timestamps, never by
//    wall-clock: when a partition's traffic crosses an `epoch_ns`
//    boundary, the engine sweeps that partition's stale flow/NF state
//    (reusing the dslib::FlowTable expiry substrate, silently metered —
//    maintenance is not attributable to a packet) and tracks the
//    occupancy high-water mark. A simulated week of traffic thus runs in
//    bounded state, and the report says so (state_high_water,
//    state_expired_idle).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/targets.h"
#include "hw/models.h"
#include "monitor/report.h"
#include "net/packet.h"
#include "nf/framework.h"
#include "obs/telemetry.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::monitor {

/// Attribution slot value for packets no contract entry matched.
inline constexpr std::uint32_t kUnattributedEntry = ~0u;

/// How partitions are grouped into work queues. Execution-only — grouping
/// can change wall-clock, never report bytes (partitions compute the same
/// result wherever they run; the merge is in partition order).
enum class ShardGrouping : std::uint8_t {
  /// Partition p joins queue p % shards. Fine for uniform traffic.
  kRoundRobin = 0,
  /// LPT scheduling: partitions sorted by queue length (descending, ties by
  /// lower partition id) are each placed on the currently-lightest queue —
  /// the classic longest-processing-time heuristic. Under skewed traffic
  /// (one hot partition, e.g. an adversarial trace hammering a single RSS
  /// queue) round-robin can lump hot partitions onto one shard; this
  /// spreads them.
  kLongestQueueFirst = 1,
};

struct MonitorOptions {
  /// Flow-affine state partitions, each with its own NF instance. Part of
  /// the monitor's semantics (reports at different partition counts
  /// legitimately differ; reports at different shard or *thread* counts
  /// never do).
  std::size_t partitions = 8;
  /// Work queues the partitions are grouped into. Execution only — it
  /// affects scheduling, never report bytes. 0 = one queue per partition.
  std::size_t shards = 0;
  /// Partition -> queue placement policy (execution only, like `shards`).
  ShardGrouping grouping = ShardGrouping::kRoundRobin;
  /// Worker threads (0 = one per hardware thread). Execution only.
  std::size_t threads = 0;
  /// Deterministic epoch clock granularity (packet-timestamp time). At
  /// every boundary crossing the engine expires the partition's stale
  /// state and samples its occupancy. 0 disables epoch maintenance (state
  /// then only ages out through the NF's own expiry calls).
  std::uint64_t epoch_ns = 1'000'000'000;
  /// Per-packet framework cost applied on the *measurement* side. The
  /// contract was generated for some framework level; measuring with a
  /// different (inflated) one is the canonical violation-injection test.
  nf::FrameworkCosts framework = nf::framework_full();
  hw::CycleCosts cycle_costs = hw::default_cycle_costs();
  /// Check the cycles metric (attaches a conservative, contract-grade
  /// cycle model to every partition; ~2x slower than IC/MA-only
  /// monitoring).
  bool check_cycles = true;
  /// Worst offenders kept per class.
  std::size_t max_offenders = 4;
  /// Rows per staged-pipeline batch: dispatch, attribution bookkeeping and
  /// compiled-expression evaluation are amortised over this many packets
  /// of one input class. Execution-only — like shards/threads/grouping,
  /// the batch size can change wall-clock, never report bytes (rows are
  /// validated independently and accumulation is order-independent).
  std::size_t batch = 64;
  /// Run execute/attribute and validate as two pipeline stages on separate
  /// threads per worker pair, connected by a lock-free SPSC ring
  /// (support/spsc_ring.h). Takes effect when at least two worker threads
  /// are available; execution-only, never changes report bytes.
  bool pipeline = true;
  /// Evaluate bounds through the compiled-expression VM (false = the
  /// per-packet tree walk; exists as the benchmark baseline and as a
  /// cross-check in tests).
  bool use_compiled_exprs = true;
  /// Execution engine for the per-partition runners. Execution-only: the
  /// decoded fast path (default) is report-byte-identical to the reference
  /// interpreter — tests/test_decoded.cpp proves it over the knob grid —
  /// and kReference exists as the oracle baseline for those tests and for
  /// bench's interp_decoded_speedup metric.
  ir::EngineKind engine = ir::EngineKind::kDecoded;
  /// Incremental reporting: emit one delta window every this many epochs
  /// (0 = off; needs epoch_ns > 0). Windows are keyed purely by packet
  /// timestamp (ts / (epoch_ns * delta_every)), so the delta stream is
  /// byte-deterministic across the execution knobs — and the *main* report
  /// is byte-identical at every delta_every setting (tests/test_obs.cpp).
  std::size_t delta_every = 0;
  /// Contract-drift detector tuning; runs over the delta stream whenever
  /// delta_every > 0 (obs/drift.h).
  obs::DriftOptions drift;
  /// Collect hot-path execution telemetry (obs::MonitorTelemetry) into the
  /// RunObservations passed to run(). Execution-only by construction:
  /// report bytes are identical with this on or off, and the overhead is
  /// gated at 5% by bench/monitor_throughput.cpp.
  bool telemetry = false;
  /// TEST ONLY — deliberately mis-measures the epoch-straddle case: when a
  /// partition's sweep fires on a packet whose timestamp lands *exactly* on
  /// the epoch boundary (ts == k * epoch_ns), one instruction of the sweep's
  /// maintenance cost leaks into that packet's measured count. This is the
  /// off-by-one bug class the violation hunter's straddle mutator exists to
  /// catch (epoch maintenance must never be attributable to a packet — see
  /// the epoch-clock contract above); the hunter's end-to-end falsification
  /// proof (tests/test_hunter.cpp, CI smoke) seeds it, hunts it, and
  /// delta-debugs the witness trace. Never set outside tests/CI.
  bool inject_straddle_bug = false;
};

class MonitorEngine {
 public:
  /// Builds a fresh target for one partition. PCVs are interned into the
  /// partition-local registry passed in; the engine maps them back to the
  /// contract's registry by name, so the factory does not need to share
  /// registries with the generation side.
  using TargetFactory = std::function<core::NfTarget(perf::PcvRegistry&)>;

  /// `contract` + `reg` are the contract-side artifacts (the registry the
  /// contract's PCV ids refer to) — generated in-process or loaded via
  /// perf::load_contract. Both must outlive the engine.
  MonitorEngine(const perf::Contract& contract, const perf::PcvRegistry& reg,
                MonitorOptions options = {});
  ~MonitorEngine();  // out of line: EntryVm is incomplete here

  /// Streams `packets` through per-partition instances built by `factory`
  /// and returns the merged report. The input is not mutated (partitions
  /// run on copies, as the NF rewrites headers).
  ///
  /// `attribution` (optional) receives one entry per packet: the contract
  /// entry index the packet was attributed to, or kUnattributedEntry. This
  /// is the pre-attributed replay mode the adversarial synthesiser closes
  /// its loop with: a trace whose every packet carries an *intended* class
  /// can be checked packet-by-packet against what the monitor actually
  /// observed. Deterministic like the report (each partition writes only
  /// its own packet slots).
  ///
  /// `observations` (optional) receives the run's telemetry snapshot
  /// (counters collected when options.telemetry is set), the delta window
  /// stream (when options.delta_every > 0), and any drift alerts. None of
  /// it can change the returned report's bytes.
  MonitorReport run(const std::vector<net::Packet>& packets,
                    const TargetFactory& factory,
                    std::vector<std::uint32_t>* attribution = nullptr,
                    obs::RunObservations* observations = nullptr) const;

  /// Factory for a registered target name (core::make_named_target).
  /// Aborts at call time if the name is unknown.
  static TargetFactory named_factory(std::string name);

  const MonitorOptions& options() const { return options_; }

 private:
  struct EntryVm;      ///< per contract entry: 3 compiled metric bounds
  struct SoaBatch;     ///< one structure-of-arrays batch of attributed rows
  struct QueueResult;  ///< per-work-queue accumulation (merged at end)
  class Validator;     ///< the validate stage (batch eval + accumulation)
  class QueueTask;     ///< the execute+attribute stage for one work queue

  const perf::Contract& contract_;
  const perf::PcvRegistry& reg_;
  MonitorOptions options_;
  std::vector<EntryVm> vms_;       ///< per contract entry, 3 compiled exprs
  std::unordered_map<std::string, std::size_t> entry_index_;
  std::size_t slot_stride_ = 0;    ///< dense PCV row width (registry size)
  std::uint64_t delta_window_ns_ = 0;  ///< epoch_ns * delta_every (0 = off)
};

/// The partition a packet belongs to: a flow-affine hash over the Ethernet
/// pair and the five-tuple (packets of one flow always land in the same
/// partition). Exposed for tests.
std::size_t partition_of(const net::Packet& packet, std::size_t partitions);

}  // namespace bolt::monitor
