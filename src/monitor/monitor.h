// Contract monitor — streaming runtime validation of performance contracts
// (the consumer side of the paper: operators and developers checking that
// an NF under real traffic actually stays inside its predicted bounds).
//
// The engine streams a packet trace through the concrete NfRunner,
// classifies every packet into its contract input class (the same
// class-key language the generator and the Distiller speak), evaluates the
// per-class bound for each metric at the packet's induced PCVs, and
// aggregates per-class statistics: packet counts, violation counts,
// headroom histograms, and worst offenders with reproducer packet indices.
//
// Two design points make it fast AND deterministic:
//
//  * Compiled expressions — contract polynomials are flattened once into
//    perf::CompiledExpr bytecode and evaluated in batches over dense PCV
//    rows instead of per-packet tree walks (bench/monitor_throughput.cpp
//    measures the difference).
//
//  * Fixed sharding — the stream is split into `shards` flow-affine
//    sub-streams (RSS-style: flows hash to shards, so per-flow state in a
//    shard sees a coherent history), each shard runs a freshly built NF
//    instance, and shard reports are merged in shard order. The shard
//    count is part of the *semantics*; the thread count only decides how
//    many shards run concurrently. Reports are therefore byte-identical
//    at 1, 2, or N threads — the same determinism contract the PR-1
//    pipeline enforces (tests/test_monitor.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/targets.h"
#include "hw/models.h"
#include "monitor/report.h"
#include "net/packet.h"
#include "nf/framework.h"
#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::monitor {

struct MonitorOptions {
  /// Flow-affine sub-streams, each with its own NF state. Part of the
  /// monitor's semantics (reports at different shard counts legitimately
  /// differ; reports at different *thread* counts never do).
  std::size_t shards = 8;
  /// Worker threads (0 = one per hardware thread).
  std::size_t threads = 0;
  /// Per-packet framework cost applied on the *measurement* side. The
  /// contract was generated for some framework level; measuring with a
  /// different (inflated) one is the canonical violation-injection test.
  nf::FrameworkCosts framework = nf::framework_full();
  hw::CycleCosts cycle_costs = hw::default_cycle_costs();
  /// Check the cycles metric (attaches a conservative, contract-grade
  /// cycle model to every shard; ~2x slower than IC/MA-only monitoring).
  bool check_cycles = true;
  /// Worst offenders kept per class.
  std::size_t max_offenders = 4;
  /// Rows per compiled-expression batch evaluation.
  std::size_t batch = 64;
  /// Evaluate bounds through the compiled-expression VM (false = the
  /// per-packet tree walk; exists as the benchmark baseline and as a
  /// cross-check in tests).
  bool use_compiled_exprs = true;
};

class MonitorEngine {
 public:
  /// Builds a fresh target for one shard. PCVs are interned into the
  /// shard-local registry passed in; the engine maps them back to the
  /// contract's registry by name, so the factory does not need to share
  /// registries with the generation side.
  using TargetFactory = std::function<core::NfTarget(perf::PcvRegistry&)>;

  /// `contract` + `reg` are the generation-side artifacts (the registry
  /// the contract's PCV ids refer to). Both must outlive the engine.
  MonitorEngine(const perf::Contract& contract, const perf::PcvRegistry& reg,
                MonitorOptions options = {});
  ~MonitorEngine();  // out of line: EntryVm is incomplete here

  /// Streams `packets` through per-shard instances built by `factory` and
  /// returns the merged report. The input is not mutated (shards run on
  /// copies, as the NF rewrites headers).
  MonitorReport run(const std::vector<net::Packet>& packets,
                    const TargetFactory& factory) const;

  /// Factory for a registered target name (core::make_named_target).
  /// Aborts at call time if the name is unknown.
  static TargetFactory named_factory(std::string name);

  const MonitorOptions& options() const { return options_; }

 private:
  struct ShardResult;
  struct EntryVm;

  /// Processes one shard's packets (`indices` into the caller's stream;
  /// each is copied just before processing, as the NF mutates headers).
  void run_shard(const std::vector<std::uint64_t>& indices,
                 const std::vector<net::Packet>& packets,
                 const TargetFactory& factory, ShardResult& out) const;

  const perf::Contract& contract_;
  const perf::PcvRegistry& reg_;
  MonitorOptions options_;
  std::vector<EntryVm> vms_;       ///< per contract entry, 3 compiled exprs
  std::unordered_map<std::string, std::size_t> entry_index_;
  std::size_t slot_stride_ = 0;    ///< dense PCV row width (registry size)
};

/// The shard a packet belongs to: a flow-affine hash over the Ethernet
/// pair and the five-tuple (packets of one flow always land in the same
/// shard). Exposed for tests.
std::size_t shard_of(const net::Packet& packet, std::size_t shards);

}  // namespace bolt::monitor
