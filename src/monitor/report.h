// Monitor reports — what streaming contract validation produces.
//
// Per input class, the monitor aggregates packet counts, per-metric
// violation counts, headroom (utilization = measured / predicted bound)
// histograms, online headroom *distribution* sketches (p50/p90/p99/p999 in
// per-mille of the bound), violation-margin quantiles, and the worst
// offenders with their global packet indices so a violation can be
// replayed from the original trace ("packet 17342 of this pcap broke the
// NAT's internal_new bound").
//
// Long-running-operation fields (epoch sweeps, flow-state high-water mark,
// resident entries) make a week-long monitoring run auditable: an operator
// reads off that state stayed bounded and how much of it idle-epoch expiry
// reclaimed.
//
// Reports are deterministic by construction: every field is derived from
// integer aggregation over fixed flow-affine state partitions, merged in
// partition order — so a report for a given (contract, traffic, partition
// count) is byte-identical no matter how many shards or threads computed
// it. That property is enforced by tests/test_monitor.cpp and
// tests/test_monitor_longrun.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/metric.h"
#include "perf/quantile_sketch.h"

namespace bolt::monitor {

/// Monitor report JSON schema version (bumped to 2 by the operator-mode
/// work: partitions replace shards, state/epoch fields, quantile
/// summaries). Keep in lockstep with README "Monitor report schema".
inline constexpr std::int64_t kReportSchemaVersion = 2;

/// Utilization histogram shape: deciles [0,10%) .. [90,100%] of the bound,
/// plus one overflow bucket for violations (measured > predicted).
inline constexpr std::size_t kUtilizationBuckets = 11;
inline constexpr std::size_t kViolationBucket = kUtilizationBuckets - 1;

/// One packet that came closest to (or broke) its class's bound.
struct Offender {
  std::uint64_t packet_index = 0;  ///< index into the monitored stream
  perf::Metric metric = perf::Metric::kInstructions;  ///< worst metric
  std::int64_t predicted = 0;
  std::uint64_t measured = 0;
};

/// Selected quantiles of a per-mille distribution (utilization or
/// violation margin), extracted from the merged QuantileSketch. Integer
/// fields, so the rendering is byte-deterministic. The type lives in
/// perf/quantile_sketch.h so the telemetry layer's delta stream shares
/// the exact extraction and JSON shape.
using QuantileSummary = perf::QuantileSummary;

/// Per-class, per-metric aggregation.
struct MetricReport {
  std::uint64_t violations = 0;
  /// The packet with the highest measured/predicted ratio for this metric.
  std::uint64_t worst_packet = 0;
  std::int64_t worst_predicted = 0;
  std::uint64_t worst_measured = 0;
  std::array<std::uint64_t, kUtilizationBuckets> histogram{};
  /// Distribution of measured/predicted in per-mille of the bound.
  QuantileSummary headroom_pm;

  /// measured/predicted at the worst packet (0 when the class is empty).
  double max_utilization() const;
};

struct ClassReport {
  std::string input_class;
  std::uint64_t packets = 0;
  std::array<MetricReport, 3> metrics;  ///< indexed by perf::metric_index
  /// Distribution of (measured - predicted) in per-mille of the bound,
  /// across all metrics, violations only (empty on a compliant run).
  QuantileSummary violation_margin_pm;
  /// Worst offenders across metrics, highest utilization first (ties:
  /// lower packet index). Bounded by MonitorOptions::max_offenders.
  std::vector<Offender> offenders;
};

struct MonitorReport {
  std::string nf;
  std::uint64_t packets = 0;
  std::uint64_t attributed = 0;
  /// Packets whose observed class key has no contract entry (a generation
  /// gap or a state divergence — always worth investigating).
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed_packet = 0;  ///< valid when > 0 above
  std::uint64_t violations = 0;  ///< total across classes and metrics
  /// Flow-affine state partitions (semantic; part of the report).
  std::size_t partitions = 0;
  bool cycles_checked = false;

  // --- long-running operation (deterministic epoch clock) ---
  /// False for targets with no observable flow/NF state (stateless chains,
  /// static routers): the state/epoch fields below are then vacuous zeros,
  /// not "maintenance ran and found nothing".
  bool state_tracked = false;
  std::uint64_t epoch_ns = 0;       ///< 0 = epoch maintenance disabled
  std::uint64_t epoch_sweeps = 0;   ///< idle-expiry sweeps run (all partitions)
  std::uint64_t state_expired_idle = 0;  ///< entries reclaimed by those sweeps
  std::uint64_t state_high_water = 0;    ///< max per-partition occupancy seen
  std::uint64_t state_residents = 0;     ///< live entries at end of run (sum)

  std::vector<ClassReport> classes;  ///< sorted by input_class

  /// Aligned text rendering (the CLI's default output).
  std::string str() const;
};

/// JSON serialisation (schema versioned, alongside perf/contract_io's
/// contract schema; see README "Monitor report schema").
std::string report_to_json(const MonitorReport& report);

}  // namespace bolt::monitor
