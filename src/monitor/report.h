// Monitor reports — what streaming contract validation produces.
//
// Per input class, the monitor aggregates packet counts, per-metric
// violation counts, headroom (utilization = measured / predicted bound)
// histograms, and the worst offenders with their global packet indices so
// a violation can be replayed from the original trace ("packet 17342 of
// this pcap broke the NAT's internal_new bound").
//
// Reports are deterministic by construction: every field is derived from
// integer aggregation in a fixed order, so a report for a given (contract,
// traffic, shard count) is byte-identical no matter how many threads
// computed it — that property is enforced by tests/test_monitor.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/metric.h"

namespace bolt::monitor {

/// Utilization histogram shape: deciles [0,10%) .. [90,100%] of the bound,
/// plus one overflow bucket for violations (measured > predicted).
inline constexpr std::size_t kUtilizationBuckets = 11;
inline constexpr std::size_t kViolationBucket = kUtilizationBuckets - 1;

/// One packet that came closest to (or broke) its class's bound.
struct Offender {
  std::uint64_t packet_index = 0;  ///< index into the monitored stream
  perf::Metric metric = perf::Metric::kInstructions;  ///< worst metric
  std::int64_t predicted = 0;
  std::uint64_t measured = 0;
};

/// Per-class, per-metric aggregation.
struct MetricReport {
  std::uint64_t violations = 0;
  /// The packet with the highest measured/predicted ratio for this metric.
  std::uint64_t worst_packet = 0;
  std::int64_t worst_predicted = 0;
  std::uint64_t worst_measured = 0;
  std::array<std::uint64_t, kUtilizationBuckets> histogram{};

  /// measured/predicted at the worst packet (0 when the class is empty).
  double max_utilization() const;
};

struct ClassReport {
  std::string input_class;
  std::uint64_t packets = 0;
  std::array<MetricReport, 3> metrics;  ///< indexed by perf::metric_index
  /// Worst offenders across metrics, highest utilization first (ties:
  /// lower packet index). Bounded by MonitorOptions::max_offenders.
  std::vector<Offender> offenders;
};

struct MonitorReport {
  std::string nf;
  std::uint64_t packets = 0;
  std::uint64_t attributed = 0;
  /// Packets whose observed class key has no contract entry (a generation
  /// gap or a state divergence — always worth investigating).
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed_packet = 0;  ///< valid when > 0 above
  std::uint64_t violations = 0;  ///< total across classes and metrics
  std::size_t shards = 0;
  bool cycles_checked = false;
  std::vector<ClassReport> classes;  ///< sorted by input_class

  /// Aligned text rendering (the CLI's default output).
  std::string str() const;
};

/// JSON serialisation (schema versioned, alongside perf/contract_io's
/// contract schema; see README "Monitor report schema").
std::string report_to_json(const MonitorReport& report);

}  // namespace bolt::monitor
