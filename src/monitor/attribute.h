// Class attribution — resolving an observed run's class key to a contract
// entry, allocation-free. Shared by the batch engine's execute/attribute
// stage (monitor.cpp) and the streaming monitor (follow.cpp): both must
// attribute byte-identically or fleet reports diverge from batch reports.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/targets.h"
#include "ir/interp.h"
#include "ir/labels.h"

namespace bolt::monitor {

/// Resolves run class keys against a contract's entry index. The run's tag
/// and call-case ids fold into a single interned path id
/// (ir::RunLabels::path_of); a path seen before resolves with one vector
/// index. Only the *first* packet of each distinct class materialises the
/// key string (byte-identical to core::class_key) and hashes it against
/// the contract's entry index.
class ClassResolver {
 public:
  /// `entry_index` maps contract input-class keys to entry indices; must
  /// outlive the resolver.
  explicit ClassResolver(
      const std::unordered_map<std::string, std::size_t>* entry_index)
      : entry_index_(entry_index) {}

  /// Re-targets the resolver at a fresh NF instance: caches its method-id
  /// -> name table and clears the path memo (path ids are scoped to one
  /// runner's labels).
  void bind(const core::NfTarget& target);

  /// Returns the contract entry index, or `unattributed` when no entry
  /// matches. Bumps *memo_hits on the interned-path fast path (telemetry;
  /// pass nullptr to skip).
  std::uint32_t resolve(const ir::RunResult& run, ir::RunLabels& labels,
                        std::uint32_t unattributed,
                        std::uint64_t* memo_hits);

 private:
  const std::unordered_map<std::string, std::size_t>* entry_index_;
  std::unordered_map<std::int64_t, std::string> method_names_;
  std::string key_buf_;  ///< reused key buffer (miss path)
  /// Attribution memo: interned path id -> contract entry (or the
  /// unattributed sentinel). Dense — path ids are small and reused.
  static constexpr std::uint32_t kUnresolvedPath = ~0u - 1;
  std::vector<std::uint32_t> path_entry_;
};

}  // namespace bolt::monitor
