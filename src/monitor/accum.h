// Order-independent accumulators shared by the batch monitor engine, the
// streaming (follow-mode) monitor and the fleet merger.
//
// Every accumulator here merges order-independently: counters are sums,
// worsts are maxima under a *total* order (utilization, ties by packet
// index), the bounded offender list is a top-k under the same total order,
// and the sketches are merge-order independent by property test. That is
// what lets statistics accumulate per work queue, per delta window, or per
// fleet instance — whose composition depends on execution-only knobs or on
// deployment shape — and still merge to byte-identical reports.
//
// build_report / build_delta_window are the single rendering paths: the
// batch engine's end-of-run merge, the streaming monitor's finish(), and
// `bolt_cli merge`'s fleet fold all call the same two functions, so
// "byte-identical to the single-instance batch run" is correct by
// construction rather than by parallel maintenance of three copies.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "monitor/report.h"
#include "obs/delta.h"
#include "obs/drift.h"
#include "perf/metric.h"
#include "perf/quantile_sketch.h"

namespace bolt::monitor {

/// Per-mille utilization recorded for a degenerate bound (predicted <= 0
/// with measured work): effectively infinite, clamped so the sketch stays
/// in integer range.
inline constexpr std::uint64_t kDegenerateUtilPm = 1'000'000'000ull;

/// Exact utilization comparison between two (measured, predicted) pairs
/// without floating point: u(m, p) = m/p for p > 0; 0 when m == 0; and
/// +inf when p <= 0 but work was measured (a degenerate bound is an
/// automatic violation). Returns <0, 0, >0 like strcmp.
int util_cmp(std::uint64_t ma, std::int64_t pa, std::uint64_t mb,
             std::int64_t pb);

/// Decile bucket for a compliant packet, kViolationBucket for a violation.
std::size_t util_bucket(std::uint64_t measured, std::int64_t predicted);

/// Utilization in per-mille of the bound (the sketch's unit).
std::uint64_t util_pm(std::uint64_t measured, std::int64_t predicted);

/// Strictly-higher-utilization-first ordering (ties: lower packet index).
bool offender_before(const Offender& a, const Offender& b);

struct MetricAccum {
  std::uint64_t violations = 0;
  bool has_worst = false;
  std::uint64_t worst_packet = 0;
  std::int64_t worst_predicted = 0;
  std::uint64_t worst_measured = 0;
  std::array<std::uint64_t, kUtilizationBuckets> histogram{};
  perf::QuantileSketch headroom_pm;

  void record(std::uint64_t packet, std::uint64_t measured,
              std::int64_t predicted);
  void merge(const MetricAccum& other);
};

struct ClassAccum {
  std::uint64_t packets = 0;
  std::array<MetricAccum, 3> metrics;
  perf::QuantileSketch violation_margin_pm;
  std::vector<Offender> offenders;  ///< sorted by offender_before, bounded

  void add_offender(const Offender& o, std::size_t cap);
  void merge(const ClassAccum& other, std::size_t cap);
};

/// Per-(window, contract entry) accumulation for delta-report mode: the
/// same headroom values the main report's sketches see, bucketed by the
/// semantic window id. Merging every window's sketches reproduces the
/// end-of-run sketch state (tests/test_obs.cpp locks that down).
struct DeltaEntryAccum {
  std::uint64_t packets = 0;
  std::array<std::uint64_t, 3> violations{};
  std::array<perf::QuantileSketch, 3> headroom_pm;

  void merge(const DeltaEntryAccum& other);
};

/// The delta-window view of a full per-class accumulation: a window-level
/// ClassAccum carries strictly more than a DeltaEntryAccum, so the
/// streaming monitor and the fleet merger keep only ClassAccums per window
/// and project them down when rendering the delta stream.
DeltaEntryAccum delta_slice(const ClassAccum& acc);

/// Everything a run accumulates outside the per-class statistics. Sums,
/// minima (first unattributed packet) and maxima (state high water) — all
/// order-independent, so queue results, closed windows and fleet partials
/// fold through the same type.
struct RunTotals {
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed = 0;
  bool any_unattributed = false;
  std::uint64_t epoch_sweeps = 0;
  std::uint64_t expired_idle = 0;
  std::uint64_t high_water = 0;
  std::uint64_t residents = 0;
  bool state_tracked = false;

  void merge(const RunTotals& other);
};

/// Renders the final MonitorReport from fully merged per-entry accumulators
/// (parallel to `entry_names`, the contract entry order) and run totals.
/// `epoch_ns_option` is MonitorOptions::epoch_ns — the report carries the
/// *effective* value (0 when the target tracks no state). Consumes the
/// accumulators (offender vectors are moved into the report).
MonitorReport build_report(const std::string& nf, std::uint64_t packets,
                           std::size_t partitions, bool cycles_checked,
                           std::uint64_t epoch_ns_option,
                           const std::vector<std::string>& entry_names,
                           std::vector<ClassAccum>&& merged,
                           const RunTotals& totals);

/// Renders one delta window from per-entry accumulations (parallel to
/// `entry_names`) and feeds the drift detector exactly the stream the
/// operator sees: one p99 point per (class, metric) per window, classes in
/// sorted order. Raised alerts land in the returned window *and* in
/// `alerts_out` (when non-null). Call in ascending window order — the
/// detector is stateful.
obs::DeltaWindow build_delta_window(std::uint64_t window,
                                    std::uint64_t window_ns,
                                    const std::vector<std::string>& entry_names,
                                    const std::vector<DeltaEntryAccum>& accums,
                                    obs::DriftDetector& detector,
                                    std::vector<obs::DriftAlert>* alerts_out);

}  // namespace bolt::monitor
