#include "monitor/attribute.h"

namespace bolt::monitor {

void ClassResolver::bind(const core::NfTarget& target) {
  // Method id -> name, resolved once instead of per call site per packet.
  method_names_.clear();
  for (const auto& [id, spec] : target.methods()) {
    method_names_.emplace(id, spec.name);
  }
  path_entry_.clear();  // path ids are scoped to one runner's labels
}

std::uint32_t ClassResolver::resolve(const ir::RunResult& run,
                                     ir::RunLabels& labels,
                                     std::uint32_t unattributed,
                                     std::uint64_t* memo_hits) {
  const std::uint32_t path = labels.path_of(run);
  if (path < path_entry_.size() && path_entry_[path] != kUnresolvedPath) {
    if (memo_hits != nullptr) ++*memo_hits;
    return path_entry_[path];
  }
  std::string& key = key_buf_;
  key.clear();
  for (const std::uint32_t tag : run.class_tags) {
    if (!key.empty()) key += '/';
    key += labels.tag_name(tag);
  }
  if (key.empty()) key = "(untagged)";
  bool first_call = true;
  for (const ir::CallRec& call : run.calls) {
    key += first_call ? " | " : ",";
    first_call = false;
    const auto it = method_names_.find(call.method);
    if (it != method_names_.end()) {
      key += it->second;
    } else {
      key += 'm';
      key += std::to_string(call.method);
    }
    key += '=';
    key += labels.case_name(call.method, call.case_id);
  }
  const auto entry_it = entry_index_->find(key);
  const std::uint32_t entry =
      entry_it == entry_index_->end()
          ? unattributed
          : static_cast<std::uint32_t>(entry_it->second);
  if (path >= path_entry_.size()) path_entry_.resize(path + 1, kUnresolvedPath);
  path_entry_[path] = entry;
  return entry;
}

}  // namespace bolt::monitor
