// Streaming (daemon-mode) contract monitor — the long-lived service shape
// of the batch MonitorEngine.
//
// Where MonitorEngine::run() consumes a finished trace, StreamMonitor is
// fed one packet at a time (from a tailed pcap, a ring, or a live source),
// closes delta windows as packet timestamps advance, and surfaces each
// closed window through a callback the moment it closes — delta JSONL
// lines, drift alerts and fleet partials all flow incrementally instead of
// at end-of-run. finish() renders the final report through the exact same
// build_report path as the batch engine, so a daemon drained by SIGTERM
// emits byte-for-byte the report a batch run over the same packets would
// have produced (tests/test_fleet.cpp pins this).
//
// Fleet mode: N instances each feed the FULL traffic stream but own a
// disjoint subset of the flow-affine partitions (default: partition p
// belongs to instance p % instances). Ownership is partition-aligned, so
// each instance's per-flow state, epoch sweeps and occupancy marks evolve
// exactly as they would inside a single monitor — which is what makes the
// merged fleet report byte-identical to the single-instance one
// (obs/fleet.h folds the per-window partials back together).
//
// Memory is bounded for unbounded runs: one open window of accumulators,
// closed windows fold into running totals and are dropped, per-flow state
// ages out through the same deterministic epoch clock as the batch engine,
// and the drift detector's per-series rings are fixed-size. The stream is
// expected to be window-monotone (timestamps may jitter within a window; a
// packet older than the open window is clamped into it and counted in
// WindowStats::late_packets — pcap tails and NIC streams satisfy this).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "monitor/accum.h"
#include "monitor/monitor.h"
#include "net/packet.h"
#include "obs/telemetry.h"
#include "perf/expr_vm.h"

namespace bolt::monitor {

/// Fleet placement for one streaming instance.
struct FleetOptions {
  /// This instance's id, in [0, instances).
  std::uint32_t instance = 0;
  /// Total instances the partition space is split across. 1 = the whole
  /// monitor in one process (every partition owned).
  std::uint32_t instances = 1;
  /// Optional explicit partition -> owning instance map (size must equal
  /// MonitorOptions::partitions). Empty = partition p belongs to
  /// instance p % instances.
  std::vector<std::uint32_t> owners;
};

/// Per-window run bookkeeping outside the per-class statistics. Sums,
/// minima and maxima only — fleet partials carry one per closed window and
/// the merger folds them in any order.
struct WindowStats {
  std::uint64_t packets = 0;        ///< owned packets landed in this window
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed = 0;
  bool any_unattributed = false;
  std::uint64_t epoch_sweeps = 0;
  std::uint64_t expired_idle = 0;
  std::uint64_t high_water = 0;
  /// Owned packets whose timestamp fell before the open window (clamped
  /// into it). Diagnostic only — a healthy monotone stream has zero.
  std::uint64_t late_packets = 0;
};

/// A window handed to the on-window callback at close (or idle flush). The
/// accumulator and stats pointers are valid only for the callback's
/// duration.
struct ClosedWindow {
  std::uint64_t window = 0;
  std::uint64_t window_ns = 0;
  /// True for an idle-flush emission: the window is still open and will be
  /// emitted again (authoritatively, with drift detection) when it closes.
  bool provisional = false;
  /// True when the window holds attributed traffic: `delta` is then the
  /// rendered window, exactly what the batch delta stream would contain.
  bool has_delta = false;
  obs::DeltaWindow delta;
  const std::vector<ClassAccum>* accums = nullptr;  ///< per contract entry
  const WindowStats* stats = nullptr;
};

struct StreamResult {
  MonitorReport report;
  obs::RunObservations observations;  ///< alerts + telemetry (deltas were
                                      ///< streamed through the callback)
};

class StreamMonitor {
 public:
  using WindowFn = std::function<void(const ClosedWindow&)>;

  /// `contract` and `reg` must outlive the monitor (same contract-side
  /// artifacts as MonitorEngine). Windows close on packet timestamps when
  /// options.delta_every > 0 and options.epoch_ns > 0; otherwise the whole
  /// run accumulates as one unemitted window and only finish() reports.
  StreamMonitor(const perf::Contract& contract, const perf::PcvRegistry& reg,
                const MonitorEngine::TargetFactory& factory,
                MonitorOptions options, FleetOptions fleet = {},
                WindowFn on_window = nullptr);
  ~StreamMonitor();
  StreamMonitor(const StreamMonitor&) = delete;
  StreamMonitor& operator=(const StreamMonitor&) = delete;

  /// Feeds the next packet of the global stream (every instance of a fleet
  /// feeds the same stream; non-owned packets advance the window clock and
  /// the global index, nothing else).
  void feed(const net::Packet& packet);

  /// Idle-flush hook: emits the open window provisionally (no drift
  /// detection, `provisional = true`) so a quiet input does not hold the
  /// last window hostage. Repeated calls without new data are no-ops.
  void idle_flush();

  /// Closes the open window and renders the final report + observations.
  /// Call exactly once; feed() must not be called afterwards.
  StreamResult finish();

  std::uint64_t packets_fed() const { return next_index_; }

  /// Point-in-time telemetry for the daemon's live --metrics-out refresh:
  /// the running counters plus current merge-time facts (closed-window
  /// state only — the open window is not folded in yet). Telemetry is
  /// execution-shaped and never byte-pinned, so a mid-run snapshot is fine.
  obs::MonitorTelemetry telemetry_snapshot() const;

  const std::vector<std::string>& entry_names() const { return entry_names_; }
  const MonitorOptions& options() const { return options_; }
  const FleetOptions& fleet() const { return fleet_; }
  std::uint64_t delta_window_ns() const { return delta_window_ns_; }

 private:
  struct Partition;   ///< lazily built per-partition NF instance + clock
  struct WindowData;  ///< the open window's accumulators + stats

  bool owned(std::size_t partition) const;
  void close_open(bool provisional);
  void validate_row(std::uint64_t index, std::uint64_t window_hint,
                    std::uint32_t entry, const std::uint64_t* row,
                    const std::array<std::uint64_t, 3>& measured);

  const perf::Contract& contract_;
  const perf::PcvRegistry& reg_;
  MonitorEngine::TargetFactory factory_;
  MonitorOptions options_;
  FleetOptions fleet_;
  WindowFn on_window_;

  std::vector<std::array<perf::CompiledExpr, 3>> vms_;
  std::unordered_map<std::string, std::size_t> entry_index_;
  std::vector<std::string> entry_names_;
  std::size_t slot_stride_ = 0;
  std::uint64_t delta_window_ns_ = 0;
  bool track_state_ = false;

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::unique_ptr<WindowData> open_;
  bool have_open_ = false;
  std::uint64_t open_window_ = 0;
  bool open_dirty_ = false;  ///< data since the last (provisional) emit

  std::vector<ClassAccum> total_accums_;  ///< merged closed windows
  RunTotals totals_;
  obs::DriftDetector detector_;
  std::vector<obs::DriftAlert> alerts_;
  std::uint64_t windows_emitted_ = 0;
  obs::MonitorTelemetry tel_;

  std::uint64_t next_index_ = 0;  ///< global packet index (all instances
                                  ///< agree: every instance feeds the full
                                  ///< stream)
  std::vector<std::uint64_t> row_buf_;  ///< reused dense PCV row
  perf::BatchScratch scratch_;          ///< reused expression-eval scratch
  bool finished_ = false;
};

}  // namespace bolt::monitor
