#include "monitor/report.h"

#include <cstdio>

#include "support/strings.h"

namespace bolt::monitor {

namespace {

using support::json_quote_into;

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

}  // namespace

double MetricReport::max_utilization() const {
  if (worst_predicted <= 0) return worst_measured > 0 ? 1.0 : 0.0;
  return static_cast<double>(worst_measured) /
         static_cast<double>(worst_predicted);
}

std::string MonitorReport::str() const {
  std::string out;
  out += "monitor: " + nf + " — " + support::with_commas(
             static_cast<std::int64_t>(packets)) + " packets, " +
         std::to_string(shards) + " shards\n";
  out += "violations: " + support::with_commas(
             static_cast<std::int64_t>(violations));
  if (unattributed > 0) {
    out += "   UNATTRIBUTED: " + support::with_commas(
               static_cast<std::int64_t>(unattributed)) +
           " (first at packet " +
           std::to_string(first_unattributed_packet) + ")";
  }
  out += "\n\n";

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", "Packets", "Viol", "IC worst", "MA worst",
                  cycles_checked ? "Cyc worst" : "Cyc (off)"});
  for (const ClassReport& c : classes) {
    std::uint64_t viol = 0;
    for (const auto& m : c.metrics) viol += m.violations;
    std::array<std::string, 3> worst;
    for (const perf::Metric m : perf::kAllMetrics) {
      const MetricReport& mr = c.metrics[perf::metric_index(m)];
      worst[perf::metric_index(m)] =
          m == perf::Metric::kCycles && !cycles_checked
              ? "-"
              : pct(mr.max_utilization());
    }
    rows.push_back({c.input_class,
                    support::with_commas(static_cast<std::int64_t>(c.packets)),
                    std::to_string(viol), worst[0], worst[1], worst[2]});
  }
  out += support::render_table(rows);

  // Worst offenders of classes that violated (reproducer pointers).
  for (const ClassReport& c : classes) {
    for (const Offender& o : c.offenders) {
      if (static_cast<std::int64_t>(o.measured) <= o.predicted) continue;
      out += "VIOLATION " + c.input_class + ": packet " +
             std::to_string(o.packet_index) + " " +
             std::string(perf::metric_name(o.metric)) + " measured " +
             support::with_commas(static_cast<std::int64_t>(o.measured)) +
             " > predicted " + support::with_commas(o.predicted) + "\n";
    }
  }
  return out;
}

std::string report_to_json(const MonitorReport& report) {
  std::string out = "{\"version\":1,\"nf\":";
  json_quote_into(out, report.nf);
  out += ",\"packets\":" + std::to_string(report.packets);
  out += ",\"attributed\":" + std::to_string(report.attributed);
  out += ",\"unattributed\":" + std::to_string(report.unattributed);
  if (report.unattributed > 0) {
    out += ",\"first_unattributed_packet\":" +
           std::to_string(report.first_unattributed_packet);
  }
  out += ",\"violations\":" + std::to_string(report.violations);
  out += ",\"shards\":" + std::to_string(report.shards);
  out += ",\"cycles_checked\":";
  out += report.cycles_checked ? "true" : "false";
  out += ",\"classes\":[";
  bool first_class = true;
  for (const ClassReport& c : report.classes) {
    if (!first_class) out += ',';
    first_class = false;
    out += "{\"input_class\":";
    json_quote_into(out, c.input_class);
    out += ",\"packets\":" + std::to_string(c.packets);
    out += ",\"metrics\":{";
    bool first_metric = true;
    for (const perf::Metric m : perf::kAllMetrics) {
      const MetricReport& mr = c.metrics[perf::metric_index(m)];
      if (!first_metric) out += ',';
      first_metric = false;
      json_quote_into(out, std::string(perf::metric_name(m)));
      out += ":{\"violations\":" + std::to_string(mr.violations);
      out += ",\"worst_packet\":" + std::to_string(mr.worst_packet);
      out += ",\"worst_predicted\":" + std::to_string(mr.worst_predicted);
      out += ",\"worst_measured\":" + std::to_string(mr.worst_measured);
      out += ",\"histogram\":[";
      for (std::size_t b = 0; b < kUtilizationBuckets; ++b) {
        if (b != 0) out += ',';
        out += std::to_string(mr.histogram[b]);
      }
      out += "]}";
    }
    out += "},\"offenders\":[";
    bool first_off = true;
    for (const Offender& o : c.offenders) {
      if (!first_off) out += ',';
      first_off = false;
      out += "{\"packet\":" + std::to_string(o.packet_index);
      out += ",\"metric\":";
      json_quote_into(out, std::string(perf::metric_name(o.metric)));
      out += ",\"predicted\":" + std::to_string(o.predicted);
      out += ",\"measured\":" + std::to_string(o.measured);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace bolt::monitor
