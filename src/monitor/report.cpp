#include "monitor/report.h"

#include <cstdio>

#include "support/strings.h"

namespace bolt::monitor {

namespace {

using support::json_quote_into;

std::string pct(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

std::string pm(std::uint64_t per_mille) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                static_cast<double>(per_mille) / 10.0);
  return buf;
}

using perf::summary_to_json;

}  // namespace

double MetricReport::max_utilization() const {
  if (worst_predicted <= 0) return worst_measured > 0 ? 1.0 : 0.0;
  return static_cast<double>(worst_measured) /
         static_cast<double>(worst_predicted);
}

std::string MonitorReport::str() const {
  std::string out;
  out += "monitor: " + nf + " — " + support::with_commas(
             static_cast<std::int64_t>(packets)) + " packets, " +
         std::to_string(partitions) + " partitions\n";
  out += "violations: " + support::with_commas(
             static_cast<std::int64_t>(violations));
  if (unattributed > 0) {
    out += "   UNATTRIBUTED: " + support::with_commas(
               static_cast<std::int64_t>(unattributed)) +
           " (first at packet " +
           std::to_string(first_unattributed_packet) + ")";
  }
  out += '\n';
  if (state_tracked) {
    out += "state: high-water " + support::with_commas(
               static_cast<std::int64_t>(state_high_water)) +
           " entries/partition, " + support::with_commas(
               static_cast<std::int64_t>(state_residents)) +
           " resident, " + support::with_commas(
               static_cast<std::int64_t>(state_expired_idle)) +
           " idle-expired over " + support::with_commas(
               static_cast<std::int64_t>(epoch_sweeps)) +
           " epoch sweeps\n";
  }
  out += '\n';

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", "Packets", "Viol", "IC worst", "IC p99",
                  "MA worst", cycles_checked ? "Cyc worst" : "Cyc (off)"});
  for (const ClassReport& c : classes) {
    std::uint64_t viol = 0;
    for (const auto& m : c.metrics) viol += m.violations;
    std::array<std::string, 3> worst;
    for (const perf::Metric m : perf::kAllMetrics) {
      const MetricReport& mr = c.metrics[perf::metric_index(m)];
      worst[perf::metric_index(m)] =
          m == perf::Metric::kCycles && !cycles_checked
              ? "-"
              : pct(mr.max_utilization());
    }
    const MetricReport& ic =
        c.metrics[perf::metric_index(perf::Metric::kInstructions)];
    rows.push_back({c.input_class,
                    support::with_commas(static_cast<std::int64_t>(c.packets)),
                    std::to_string(viol), worst[0],
                    c.packets > 0 ? pm(ic.headroom_pm.p99) : "-", worst[1],
                    worst[2]});
  }
  out += support::render_table(rows);

  // Worst offenders of classes that violated (reproducer pointers).
  for (const ClassReport& c : classes) {
    for (const Offender& o : c.offenders) {
      if (static_cast<std::int64_t>(o.measured) <= o.predicted) continue;
      out += "VIOLATION " + c.input_class + ": packet " +
             std::to_string(o.packet_index) + " " +
             std::string(perf::metric_name(o.metric)) + " measured " +
             support::with_commas(static_cast<std::int64_t>(o.measured)) +
             " > predicted " + support::with_commas(o.predicted) + "\n";
    }
  }
  return out;
}

std::string report_to_json(const MonitorReport& report) {
  std::string out =
      "{\"version\":" + std::to_string(kReportSchemaVersion) + ",\"nf\":";
  json_quote_into(out, report.nf);
  out += ",\"packets\":" + std::to_string(report.packets);
  out += ",\"attributed\":" + std::to_string(report.attributed);
  out += ",\"unattributed\":" + std::to_string(report.unattributed);
  if (report.unattributed > 0) {
    out += ",\"first_unattributed_packet\":" +
           std::to_string(report.first_unattributed_packet);
  }
  out += ",\"violations\":" + std::to_string(report.violations);
  out += ",\"partitions\":" + std::to_string(report.partitions);
  out += ",\"cycles_checked\":";
  out += report.cycles_checked ? "true" : "false";
  out += ",\"state_tracked\":";
  out += report.state_tracked ? "true" : "false";
  out += ",\"epoch_ns\":" + std::to_string(report.epoch_ns);
  out += ",\"epoch_sweeps\":" + std::to_string(report.epoch_sweeps);
  out += ",\"state_expired_idle\":" + std::to_string(report.state_expired_idle);
  out += ",\"state_high_water\":" + std::to_string(report.state_high_water);
  out += ",\"state_residents\":" + std::to_string(report.state_residents);
  out += ",\"classes\":[";
  bool first_class = true;
  for (const ClassReport& c : report.classes) {
    if (!first_class) out += ',';
    first_class = false;
    out += "{\"input_class\":";
    json_quote_into(out, c.input_class);
    out += ",\"packets\":" + std::to_string(c.packets);
    out += ",\"metrics\":{";
    bool first_metric = true;
    for (const perf::Metric m : perf::kAllMetrics) {
      const MetricReport& mr = c.metrics[perf::metric_index(m)];
      if (!first_metric) out += ',';
      first_metric = false;
      json_quote_into(out, std::string(perf::metric_name(m)));
      out += ":{\"violations\":" + std::to_string(mr.violations);
      out += ",\"worst_packet\":" + std::to_string(mr.worst_packet);
      out += ",\"worst_predicted\":" + std::to_string(mr.worst_predicted);
      out += ",\"worst_measured\":" + std::to_string(mr.worst_measured);
      out += ",\"histogram\":[";
      for (std::size_t b = 0; b < kUtilizationBuckets; ++b) {
        if (b != 0) out += ',';
        out += std::to_string(mr.histogram[b]);
      }
      out += "],\"headroom_pm\":";
      summary_to_json(out, mr.headroom_pm);
      out += '}';
    }
    out += "},\"violation_margin_pm\":";
    summary_to_json(out, c.violation_margin_pm);
    out += ",\"offenders\":[";
    bool first_off = true;
    for (const Offender& o : c.offenders) {
      if (!first_off) out += ',';
      first_off = false;
      out += "{\"packet\":" + std::to_string(o.packet_index);
      out += ",\"metric\":";
      json_quote_into(out, std::string(perf::metric_name(o.metric)));
      out += ",\"predicted\":" + std::to_string(o.predicted);
      out += ",\"measured\":" + std::to_string(o.measured);
      out += '}';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace bolt::monitor
