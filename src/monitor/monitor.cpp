#include "monitor/monitor.h"

#include <algorithm>
#include <map>
#include <memory>
#include <thread>

#include "core/classkey.h"
#include "monitor/accum.h"
#include "monitor/attribute.h"
#include "net/flow.h"
#include "net/headers.h"
#include "obs/delta.h"
#include "obs/drift.h"
#include "perf/expr_vm.h"
#include "perf/quantile_sketch.h"
#include "support/assert.h"
#include "support/spsc_ring.h"
#include "support/thread_pool.h"

namespace bolt::monitor {

// The accumulators (MetricAccum/ClassAccum/DeltaEntryAccum), the exact
// utilization arithmetic, and the report/delta-window rendering all live
// in monitor/accum.h — shared with the streaming monitor (follow.cpp) and
// the fleet merger (obs/fleet.cpp), which must produce byte-identical
// output to this engine.

namespace {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;

}  // namespace

struct MonitorEngine::EntryVm {
  std::array<perf::CompiledExpr, 3> exprs;
};

/// One batch of attributed packets for one contract entry, laid out
/// structure-of-arrays: a dense (rows x stride) PCV slot matrix plus one
/// column per measured metric and the global packet indices. This is both
/// the unit the validate stage amortises over and the message type on the
/// pipeline's SPSC rings.
struct MonitorEngine::SoaBatch {
  std::uint32_t entry = 0;  ///< contract entry all rows belong to
  std::uint32_t queue = 0;  ///< work queue that produced the rows
  std::size_t rows = 0;
  std::vector<std::uint64_t> slots;  ///< rows x slot_stride_ PCV values
  std::array<std::vector<std::uint64_t>, 3> measured;  ///< per metric_index
  std::vector<std::uint64_t> indices;  ///< global packet indices
  std::vector<std::uint64_t> windows;  ///< delta window ids (delta mode only)
};

/// Everything one work queue accumulates. The execute/attribute stage owns
/// the unattributed/state fields, the validate stage owns `classes`; in
/// pipelined execution the two stages run on different threads and the
/// field split is what keeps them race-free without locks.
struct MonitorEngine::QueueResult {
  std::vector<ClassAccum> classes;  // written by the validate stage
  /// Delta-report mode: window id -> per-entry accumulation. Written by the
  /// validate stage, like `classes`; std::map so the end-of-run merge walks
  /// windows in order (node-based, so cached vector pointers stay valid).
  std::map<std::uint64_t, std::vector<DeltaEntryAccum>> delta_windows;
  obs::MonitorTelemetry val_tel;   ///< validate-stage telemetry counters
  // -- written by the execute/attribute stage --
  obs::MonitorTelemetry exec_tel;  ///< execute-stage telemetry counters
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed = 0;
  bool any_unattributed = false;
  std::uint64_t epoch_sweeps = 0;
  std::uint64_t expired_idle = 0;
  std::uint64_t high_water = 0;
  std::uint64_t residents = 0;
  bool state_tracked = false;
};

/// The validate stage: evaluates a batch's compiled bounds and folds every
/// row into the owning queue's ClassAccum. Holds the reusable expression
/// scratch, so steady-state validation performs no allocations.
class MonitorEngine::Validator {
 public:
  Validator(const MonitorEngine& e, std::vector<QueueResult>& results)
      : e_(e), results_(results) {}

  void validate(const SoaBatch& b) {
    const std::size_t rows = b.rows;
    if (rows == 0) return;
    const std::size_t stride = e_.slot_stride_;
    ClassAccum& acc = results_[b.queue].classes[b.entry];
    obs::MonitorTelemetry* tel =
        e_.options_.telemetry ? &results_[b.queue].val_tel : nullptr;
    for (const Metric m : kAllMetrics) {
      const int mi = metric_index(m);
      if (m == Metric::kCycles && !e_.options_.check_cycles) continue;
      if (predicted_[mi].size() < rows) predicted_[mi].resize(rows);
      if (e_.options_.use_compiled_exprs) {
        e_.vms_[b.entry].exprs[mi].eval_batch(b.slots.data(), stride, rows,
                                              predicted_[mi].data(), scratch_);
        if (tel != nullptr) ++tel->vm_batch_evals;
      } else {
        // Tree-walk baseline: rebuild a binding per row.
        const perf::PerfExpr& expr =
            e_.contract_.entries()[b.entry].perf.get(m);
        for (std::size_t r = 0; r < rows; ++r) {
          perf::PcvBinding bind;
          const std::uint64_t* row = b.slots.data() + r * stride;
          for (std::size_t s = 0; s < stride; ++s) {
            if (row[s] != 0) bind.set(static_cast<perf::PcvId>(s), row[s]);
          }
          predicted_[mi][r] = expr.eval(bind);
        }
      }
    }
    if (tel != nullptr) tel->rows_validated += rows;
    acc.packets += rows;
    const bool delta_on = e_.delta_window_ns_ > 0;
    for (std::size_t r = 0; r < rows; ++r) {
      DeltaEntryAccum* da =
          delta_on ? delta_for(b.queue, b.windows[r], b.entry) : nullptr;
      if (da != nullptr) ++da->packets;
      Offender worst;
      bool has_offender = false;
      for (const Metric m : kAllMetrics) {
        const int mi = metric_index(m);
        if (m == Metric::kCycles && !e_.options_.check_cycles) continue;
        const std::uint64_t measured = b.measured[mi][r];
        const std::int64_t bound = predicted_[mi][r];
        acc.metrics[mi].record(b.indices[r], measured, bound);
        if (da != nullptr) {
          da->headroom_pm[mi].add(util_pm(measured, bound));
          if (static_cast<std::int64_t>(measured) > bound) {
            ++da->violations[mi];
          }
        }
        if (static_cast<std::int64_t>(measured) > bound) {
          // Violation margin in per-mille of the bound (how far past it).
          acc.violation_margin_pm.add(
              bound > 0 ? (measured - static_cast<std::uint64_t>(bound)) *
                              1000 / static_cast<std::uint64_t>(bound)
                        : kDegenerateUtilPm);
        }
        if (!has_offender ||
            util_cmp(measured, bound, worst.measured, worst.predicted) > 0) {
          has_offender = true;
          worst.packet_index = b.indices[r];
          worst.metric = m;
          worst.predicted = bound;
          worst.measured = measured;
        }
      }
      if (has_offender) acc.add_offender(worst, e_.options_.max_offenders);
    }
  }

 private:
  /// The (queue, window) -> per-entry delta accumulators lookup, memoised:
  /// consecutive batches overwhelmingly land in the same window, so the
  /// common case is two compares. Map nodes are stable, so the cached
  /// pointer survives later insertions.
  DeltaEntryAccum* delta_for(std::uint32_t queue, std::uint64_t window,
                             std::uint32_t entry) {
    if (cached_accums_ == nullptr || queue != cached_queue_ ||
        window != cached_window_) {
      auto [it, inserted] = results_[queue].delta_windows.try_emplace(window);
      if (inserted) it->second.resize(e_.contract_.entries().size());
      cached_accums_ = &it->second;
      cached_queue_ = queue;
      cached_window_ = window;
    }
    return &(*cached_accums_)[entry];
  }

  const MonitorEngine& e_;
  std::vector<QueueResult>& results_;
  perf::BatchScratch scratch_;
  std::array<std::vector<std::int64_t>, 3> predicted_;
  std::vector<DeltaEntryAccum>* cached_accums_ = nullptr;
  std::uint32_t cached_queue_ = 0;
  std::uint64_t cached_window_ = 0;
};

/// The execute + attribute stages for one or more work queues: streams
/// each partition's packets through a fresh NF instance, resolves every
/// run's class key to a contract entry (allocation-free — a reused key
/// buffer plus a last-key memo), and appends rows to per-entry SoaBatch
/// buffers. Full batches go to the inline Validator, or over the SPSC
/// ring to the validate thread (with emptied buffers recycled back).
class MonitorEngine::QueueTask {
 public:
  QueueTask(const MonitorEngine& e, const std::vector<net::Packet>& packets,
            const TargetFactory& factory,
            std::vector<std::uint32_t>* attribution,
            std::vector<QueueResult>& results, Validator* inline_validator,
            support::SpscRing<SoaBatch>* ring,
            support::SpscRing<SoaBatch>* recycle)
      : e_(e),
        packets_(packets),
        factory_(factory),
        attribution_(attribution),
        results_(results),
        validator_(inline_validator),
        ring_(ring),
        recycle_(recycle),
        capacity_(e.options_.batch) {
    pending_.resize(e_.contract_.entries().size());
    for (std::size_t entry = 0; entry < pending_.size(); ++entry) {
      pending_[entry].entry = static_cast<std::uint32_t>(entry);
    }
  }

  /// Processes every partition of work queue `queue` (partition ids in
  /// `members`, per-partition packet index lists in `work`), then flushes
  /// all pending batches — rows never cross a queue boundary.
  void run_queue(std::uint32_t queue, const std::vector<std::size_t>& members,
                 const std::vector<std::vector<std::uint64_t>>& work) {
    queue_ = queue;
    tel_ = e_.options_.telemetry ? &results_[queue].exec_tel : nullptr;
    for (SoaBatch& b : pending_) b.queue = queue;
    for (const std::size_t p : members) run_partition(work[p]);
    for (SoaBatch& b : pending_) {
      if (b.rows > 0) emit(b);
    }
  }

 private:
  void ensure_buffers(SoaBatch& b) {
    if (!b.slots.empty()) return;
    b.slots.resize(capacity_ * e_.slot_stride_);
    for (auto& col : b.measured) col.resize(capacity_);
    b.indices.resize(capacity_);
    b.windows.resize(capacity_);
  }

  /// Hands a full (or final partial) batch to the validate stage. In
  /// pipelined mode the batch buffer is replaced by a recycled one coming
  /// back over the return ring (or a fresh one when the return ring is
  /// momentarily empty); inline mode validates in place and reuses it.
  void emit(SoaBatch& b) {
    if (tel_ != nullptr) {
      ++tel_->batches_emitted;
      tel_->batch_rows += b.rows;
      tel_->batch_fill.add(b.rows);
    }
    if (ring_ != nullptr) {
      SoaBatch fresh;
      const bool recycled = recycle_->try_pop(fresh);
      if (tel_ != nullptr) {
        ++(recycled ? tel_->recycle_hits : tel_->recycle_misses);
      }
      fresh.entry = b.entry;
      fresh.queue = queue_;
      fresh.rows = 0;
      ring_->push(std::move(b));
      b = std::move(fresh);
    } else {
      validator_->validate(b);
      b.rows = 0;
    }
  }

  void run_partition(const std::vector<std::uint64_t>& indices) {
    QueueResult& out = results_[queue_];

    // Fresh per-partition state, described by a partition-local PCV
    // registry; map its ids onto the contract registry's by name once, up
    // front.
    perf::PcvRegistry local_reg;
    const core::NfTarget target = factory_(local_reg);
    constexpr std::uint32_t kUnmapped = ~0u;
    std::vector<std::uint32_t> pcv_slot(local_reg.size(), kUnmapped);
    for (const perf::PcvId id : local_reg.all()) {
      const std::string& name = local_reg.name(id);
      if (e_.reg_.contains(name)) pcv_slot[id] = e_.reg_.require(name);
    }
    resolver_.bind(target);

    hw::ConservativeModel cycles(e_.options_.cycle_costs);
    const bool check_cycles = e_.options_.check_cycles;
    const auto runner =
        target.make_runner(e_.options_.framework,
                           check_cycles ? &cycles : nullptr,
                           e_.options_.engine);
    ir::RunLabels& labels = runner->labels();

    // Loop-trip PCVs (linearised loop families): flat loop slot -> contract
    // slot of the PCV named after the loop (kUnmapped when the contract
    // does not price that loop).
    std::vector<std::uint32_t> loop_slot(labels.loop_count(), kUnmapped);
    for (std::size_t flat = 0; flat < labels.loop_count(); ++flat) {
      const std::string& name = labels.loop_name(flat);
      if (e_.reg_.contains(name)) loop_slot[flat] = e_.reg_.require(name);
    }

    // Deterministic epoch clock: driven purely by this partition's packet
    // timestamps (never wall-clock), so every crossing — and therefore
    // every idle-expiry sweep and occupancy sample — is a pure function of
    // the trace and the partition count. The per-packet check is a single
    // compare against the next boundary; the division only runs at
    // crossings.
    const bool track_state = target.has_state_observers();
    const bool epochs_on = e_.options_.epoch_ns > 0 && track_state;
    bool have_epoch = false;
    std::uint64_t next_boundary = 0;

    const std::size_t stride = e_.slot_stride_;
    const std::uint64_t delta_window_ns = e_.delta_window_ns_;
    for (const std::uint64_t index : indices) {
      std::uint64_t straddle_leak = 0;
      if (epochs_on) {
        const std::uint64_t ts = packets_[index].timestamp_ns();
        if (!have_epoch) {
          have_epoch = true;
          next_boundary = (ts / e_.options_.epoch_ns + 1) * e_.options_.epoch_ns;
        } else if (ts >= next_boundary) {
          // Sweep state stale as of the boundary the clock just crossed.
          const std::uint64_t epoch = ts / e_.options_.epoch_ns;
          out.expired_idle +=
              target.expire_state(epoch * e_.options_.epoch_ns);
          ++out.epoch_sweeps;
          next_boundary = (epoch + 1) * e_.options_.epoch_ns;
          // Test-only seeded bug (MonitorOptions::inject_straddle_bug):
          // leak one instruction of sweep cost into a packet sitting
          // exactly on the boundary it just triggered.
          if (e_.options_.inject_straddle_bug &&
              ts == epoch * e_.options_.epoch_ns) {
            straddle_leak = 1;
          }
        }
      }

      scratch_pkt_ = packets_[index];  // the NF mutates headers
      if (check_cycles) cycles.begin_packet();
      runner->process_into(scratch_pkt_, run_);
      if (track_state) {
        out.high_water = std::max<std::uint64_t>(out.high_water,
                                                 target.state_occupancy());
      }

      const std::uint32_t entry =
          resolver_.resolve(run_, labels, kUnattributedEntry,
                            tel_ != nullptr ? &tel_->attr_memo_hits : nullptr);
      if (attribution_ != nullptr) (*attribution_)[index] = entry;
      if (entry == kUnattributedEntry) {
        if (!out.any_unattributed || index < out.first_unattributed) {
          out.any_unattributed = true;
          out.first_unattributed = index;
        }
        ++out.unattributed;
        continue;
      }

      SoaBatch& b = pending_[entry];
      ensure_buffers(b);
      std::uint64_t* row = b.slots.data() + b.rows * stride;
      std::fill_n(row, stride, 0);
      for (const auto& [id, value] : run_.pcvs.values()) {
        if (id < pcv_slot.size() && pcv_slot[id] != kUnmapped) {
          row[pcv_slot[id]] = value;
        }
      }
      for (std::size_t flat = 0; flat < run_.loop_trips.size(); ++flat) {
        const std::uint64_t trips = run_.loop_trips[flat];
        if (trips != 0 && loop_slot[flat] != kUnmapped) {
          row[loop_slot[flat]] = trips;
        }
      }
      b.measured[0][b.rows] = run_.instructions + straddle_leak;
      b.measured[1][b.rows] = run_.mem_accesses;
      b.measured[2][b.rows] = check_cycles ? cycles.packet_cycles() : 0;
      b.indices[b.rows] = index;
      if (delta_window_ns > 0) {
        // Semantic window id — a pure function of the packet timestamp, so
        // the delta stream inherits the report's determinism.
        b.windows[b.rows] = packets_[index].timestamp_ns() / delta_window_ns;
      }
      if (++b.rows >= capacity_) emit(b);
    }
    if (tel_ != nullptr) tel_->packets_executed += indices.size();
    out.state_tracked = out.state_tracked || track_state;
    if (track_state) out.residents += target.state_occupancy();
  }

  const MonitorEngine& e_;
  const std::vector<net::Packet>& packets_;
  const TargetFactory& factory_;
  std::vector<std::uint32_t>* attribution_;
  std::vector<QueueResult>& results_;
  Validator* validator_;                 ///< inline mode
  support::SpscRing<SoaBatch>* ring_;    ///< pipelined mode: to validate
  support::SpscRing<SoaBatch>* recycle_; ///< pipelined mode: buffers back
  const std::size_t capacity_;           ///< rows per batch
  std::uint32_t queue_ = 0;
  obs::MonitorTelemetry* tel_ = nullptr; ///< current queue's exec telemetry
  std::vector<SoaBatch> pending_;        ///< one open batch per entry
  net::Packet scratch_pkt_;              ///< reused packet copy
  ir::RunResult run_;                    ///< reused run result
  ClassResolver resolver_{&e_.entry_index_};  ///< class-key attribution
};

std::size_t partition_of(const net::Packet& packet, std::size_t partitions) {
  if (partitions <= 1) return 0;
  std::uint64_t h = 0;
  if (const auto eth = net::parse_ethernet(packet.bytes())) {
    h = net::mix64(eth->src.to_u64() * 0x9E3779B97F4A7C15ULL ^
                   eth->dst.to_u64());
  }
  if (const auto tuple = net::extract_five_tuple(packet)) {
    h = net::mix64(h ^ tuple->key());
  }
  return static_cast<std::size_t>(h % partitions);
}

MonitorEngine::MonitorEngine(const perf::Contract& contract,
                             const perf::PcvRegistry& reg,
                             MonitorOptions options)
    : contract_(contract), reg_(reg), options_(options) {
  if (options_.partitions == 0) options_.partitions = 1;
  if (options_.batch == 0) options_.batch = 1;
  vms_.reserve(contract_.entries().size());
  slot_stride_ = std::max<std::size_t>(reg_.size(), 1);
  for (std::size_t i = 0; i < contract_.entries().size(); ++i) {
    const perf::ContractEntry& entry = contract_.entries()[i];
    EntryVm vm;
    for (const Metric m : kAllMetrics) {
      vm.exprs[metric_index(m)] = perf::CompiledExpr::compile(entry.perf.get(m));
      slot_stride_ =
          std::max(slot_stride_, vm.exprs[metric_index(m)].slot_count());
    }
    vms_.push_back(std::move(vm));
    entry_index_.emplace(entry.input_class, i);
  }
  if (options_.delta_every > 0 && options_.epoch_ns > 0) {
    delta_window_ns_ = options_.epoch_ns * options_.delta_every;
  }
}

MonitorEngine::~MonitorEngine() = default;

MonitorEngine::TargetFactory MonitorEngine::named_factory(std::string name) {
  return [name = std::move(name)](perf::PcvRegistry& reg) {
    core::NfTarget target;
    BOLT_CHECK(core::make_named_target(name, reg, target),
               "monitor: unknown target '" + name + "'");
    return target;
  };
}

MonitorReport MonitorEngine::run(const std::vector<net::Packet>& packets,
                                 const TargetFactory& factory,
                                 std::vector<std::uint32_t>* attribution,
                                 obs::RunObservations* observations) const {
  // Fixed flow-affine partition: membership depends only on packet
  // contents and the partition count, never on scheduling. Partitions
  // carry indices only — packets are copied one at a time as each is
  // processed, so monitoring never duplicates the whole trace.
  const std::size_t partitions = options_.partitions;
  std::vector<std::vector<std::uint64_t>> work(partitions);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    work[partition_of(packets[i], partitions)].push_back(i);
  }
  if (attribution != nullptr) {
    attribution->assign(packets.size(), kUnattributedEntry);
  }

  // Execution: partitions are grouped into `shards` work queues by the
  // configured policy and queues run concurrently. None of these knobs
  // can change report bytes — every partition computes the same rows
  // regardless of which queue or thread ran it, and all accumulation is
  // order-independent.
  const std::size_t shards =
      options_.shards == 0 ? partitions
                           : std::min(options_.shards, partitions);
  std::vector<std::vector<std::size_t>> queue(shards);
  if (options_.grouping == ShardGrouping::kLongestQueueFirst) {
    // LPT: heaviest partitions placed first, each on the lightest queue.
    std::vector<std::size_t> order(partitions);
    for (std::size_t p = 0; p < partitions; ++p) order[p] = p;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return work[a].size() > work[b].size();
                     });
    std::vector<std::size_t> load(shards, 0);
    for (const std::size_t p : order) {
      std::size_t lightest = 0;
      for (std::size_t s = 1; s < shards; ++s) {
        if (load[s] < load[lightest]) lightest = s;
      }
      queue[lightest].push_back(p);
      load[lightest] += work[p].size();
    }
  } else {
    for (std::size_t p = 0; p < partitions; ++p) {
      queue[p % shards].push_back(p);
    }
  }

  // Per-queue accumulation, merged exactly once at end of run.
  std::vector<QueueResult> queue_results(shards);
  for (QueueResult& qr : queue_results) {
    qr.classes.assign(contract_.entries().size(), ClassAccum{});
  }

  const std::size_t resolved = support::resolve_threads(options_.threads);
  const bool pipelined = options_.pipeline && resolved >= 2;
  std::vector<support::SpscRingStats> ring_stats;
  if (pipelined) {
    // Staged execution: worker pairs, each an execute/attribute producer
    // and a validate consumer connected by an SPSC ring (plus a return
    // ring recycling emptied batch buffers). Pair w owns queues w, w+P,
    // w+2P, ... — ownership is static, so every ring stays strictly
    // single-producer/single-consumer.
    const std::size_t pairs =
        std::min(shards, std::max<std::size_t>(1, resolved / 2));
    constexpr std::size_t kRingDepth = 8;
    std::vector<std::unique_ptr<support::SpscRing<SoaBatch>>> rings;
    std::vector<std::unique_ptr<support::SpscRing<SoaBatch>>> returns;
    for (std::size_t w = 0; w < pairs; ++w) {
      rings.push_back(std::make_unique<support::SpscRing<SoaBatch>>(kRingDepth));
      returns.push_back(
          std::make_unique<support::SpscRing<SoaBatch>>(kRingDepth));
    }
    if (options_.telemetry) {
      // Attach producer-owned ring stats before the producers start.
      ring_stats.resize(pairs);
      for (std::size_t w = 0; w < pairs; ++w) {
        rings[w]->set_stats(&ring_stats[w]);
      }
    }
    std::vector<std::thread> stage_threads;
    stage_threads.reserve(pairs * 2);
    for (std::size_t w = 0; w < pairs; ++w) {
      stage_threads.emplace_back([&, w] {
        QueueTask task(*this, packets, factory, attribution, queue_results,
                       nullptr, rings[w].get(), returns[w].get());
        for (std::size_t s = w; s < shards; s += pairs) {
          task.run_queue(static_cast<std::uint32_t>(s), queue[s], work);
        }
        rings[w]->close();
      });
      stage_threads.emplace_back([&, w] {
        Validator validator(*this, queue_results);
        SoaBatch b;
        while (rings[w]->pop(b)) {
          validator.validate(b);
          b.rows = 0;
          returns[w]->try_push(b);  // full return ring: drop, producer allocs
        }
      });
    }
    for (std::thread& t : stage_threads) t.join();
  } else {
    // Inline execution: each queue runs both stages on one pool thread.
    support::ThreadPool pool(std::min(resolved, shards));
    pool.parallel_for(0, shards, [&](std::size_t s) {
      Validator validator(*this, queue_results);
      QueueTask task(*this, packets, factory, attribution, queue_results,
                     &validator, nullptr, nullptr);
      task.run_queue(static_cast<std::uint32_t>(s), queue[s], work);
    });
  }

  // Deterministic merge in queue order (order-independent accumulators, so
  // any queue composition yields the same bytes), rendered through the
  // shared build_report path (monitor/accum.h).
  std::vector<std::string> entry_names;
  entry_names.reserve(contract_.entries().size());
  for (const perf::ContractEntry& entry : contract_.entries()) {
    entry_names.push_back(entry.input_class);
  }
  std::vector<ClassAccum> merged(contract_.entries().size());
  RunTotals totals;
  for (const QueueResult& qr : queue_results) {
    for (std::size_t e = 0; e < merged.size(); ++e) {
      merged[e].merge(qr.classes[e], options_.max_offenders);
    }
    RunTotals qt;
    qt.unattributed = qr.unattributed;
    qt.first_unattributed = qr.first_unattributed;
    qt.any_unattributed = qr.any_unattributed;
    qt.epoch_sweeps = qr.epoch_sweeps;
    qt.expired_idle = qr.expired_idle;
    qt.high_water = qr.high_water;
    qt.residents = qr.residents;
    qt.state_tracked = qr.state_tracked;
    totals.merge(qt);
  }
  MonitorReport report =
      build_report(contract_.nf_name(), packets.size(), partitions,
                   options_.check_cycles, options_.epoch_ns, entry_names,
                   std::move(merged), totals);

  if (observations != nullptr) {
    *observations = obs::RunObservations{};
    if (delta_window_ns_ > 0) {
      // Merge the per-queue window maps in queue order. Window ids are
      // semantic and every accumulator is order-independent, so the merged
      // stream is byte-deterministic across the execution knobs.
      const std::size_t entries = contract_.entries().size();
      std::map<std::uint64_t, std::vector<DeltaEntryAccum>> windows;
      for (const QueueResult& qr : queue_results) {
        for (const auto& [w, accums] : qr.delta_windows) {
          auto [it, inserted] = windows.try_emplace(w);
          if (inserted) it->second.resize(entries);
          for (std::size_t e = 0; e < entries; ++e) {
            it->second[e].merge(accums[e]);
          }
        }
      }
      obs::DriftDetector detector(options_.drift);
      observations->deltas.reserve(windows.size());
      for (const auto& [w, accums] : windows) {
        observations->deltas.push_back(
            build_delta_window(w, delta_window_ns_, entry_names, accums,
                               detector, &observations->alerts));
      }
    }
    // Fold the per-queue telemetry halves, then mirror the merge-time
    // facts the report already computed.
    obs::MonitorTelemetry& tel = observations->telemetry;
    for (const QueueResult& qr : queue_results) {
      tel.merge(qr.exec_tel);
      tel.merge(qr.val_tel);
    }
    for (const support::SpscRingStats& rs : ring_stats) {
      tel.ring_pushes += rs.pushes;
      tel.ring_stalls += rs.stalls;
      tel.ring_occupancy_high_water =
          std::max(tel.ring_occupancy_high_water, rs.occupancy_high_water);
    }
    tel.epoch_sweeps = report.epoch_sweeps;
    tel.state_high_water = report.state_high_water;
    tel.delta_windows = observations->deltas.size();
    tel.drift_alerts = observations->alerts.size();
  }
  return report;
}

}  // namespace bolt::monitor
