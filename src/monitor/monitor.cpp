#include "monitor/monitor.h"

#include <algorithm>

#include "core/classkey.h"
#include "net/flow.h"
#include "net/headers.h"
#include "perf/expr_vm.h"
#include "perf/quantile_sketch.h"
#include "support/assert.h"
#include "support/thread_pool.h"

namespace bolt::monitor {

namespace {

using perf::Metric;
using perf::kAllMetrics;
using perf::metric_index;

/// Per-mille utilization recorded for a degenerate bound (predicted <= 0
/// with measured work): effectively infinite, clamped so the sketch stays
/// in integer range.
constexpr std::uint64_t kDegenerateUtilPm = 1'000'000'000ull;

/// Exact utilization comparison between two (measured, predicted) pairs
/// without floating point: u(m, p) = m/p for p > 0; 0 when m == 0; and
/// +inf when p <= 0 but work was measured (a degenerate bound is an
/// automatic violation). Returns <0, 0, >0 like strcmp.
int util_cmp(std::uint64_t ma, std::int64_t pa, std::uint64_t mb,
             std::int64_t pb) {
  const bool inf_a = pa <= 0 && ma > 0;
  const bool inf_b = pb <= 0 && mb > 0;
  if (inf_a || inf_b) {
    if (inf_a && inf_b) return ma < mb ? -1 : ma > mb ? 1 : 0;
    return inf_a ? 1 : -1;
  }
  // Both finite; p <= 0 implies m == 0 here, i.e. utilization 0.
  const std::uint64_t na = pa > 0 ? ma : 0;
  const std::uint64_t da = pa > 0 ? static_cast<std::uint64_t>(pa) : 1;
  const std::uint64_t nb = pb > 0 ? mb : 0;
  const std::uint64_t db = pb > 0 ? static_cast<std::uint64_t>(pb) : 1;
  const unsigned __int128 lhs = static_cast<unsigned __int128>(na) * db;
  const unsigned __int128 rhs = static_cast<unsigned __int128>(nb) * da;
  return lhs < rhs ? -1 : lhs > rhs ? 1 : 0;
}

/// Decile bucket for a compliant packet, kViolationBucket for a violation.
std::size_t util_bucket(std::uint64_t measured, std::int64_t predicted) {
  if (static_cast<std::int64_t>(measured) > predicted) return kViolationBucket;
  if (predicted <= 0 || measured == 0) return 0;
  const std::uint64_t b =
      measured * 10 / static_cast<std::uint64_t>(predicted);
  return std::min<std::uint64_t>(b, kViolationBucket - 1);
}

/// Utilization in per-mille of the bound (the sketch's unit).
std::uint64_t util_pm(std::uint64_t measured, std::int64_t predicted) {
  if (predicted <= 0) return measured > 0 ? kDegenerateUtilPm : 0;
  return measured * 1000 / static_cast<std::uint64_t>(predicted);
}

struct MetricAccum {
  std::uint64_t violations = 0;
  bool has_worst = false;
  std::uint64_t worst_packet = 0;
  std::int64_t worst_predicted = 0;
  std::uint64_t worst_measured = 0;
  std::array<std::uint64_t, kUtilizationBuckets> histogram{};
  perf::QuantileSketch headroom_pm;

  void record(std::uint64_t packet, std::uint64_t measured,
              std::int64_t predicted) {
    if (static_cast<std::int64_t>(measured) > predicted) ++violations;
    ++histogram[util_bucket(measured, predicted)];
    headroom_pm.add(util_pm(measured, predicted));
    const int cmp =
        util_cmp(measured, predicted, worst_measured, worst_predicted);
    if (!has_worst || cmp > 0 || (cmp == 0 && packet < worst_packet)) {
      has_worst = true;
      worst_packet = packet;
      worst_predicted = predicted;
      worst_measured = measured;
    }
  }

  void merge(const MetricAccum& other) {
    violations += other.violations;
    for (std::size_t b = 0; b < kUtilizationBuckets; ++b) {
      histogram[b] += other.histogram[b];
    }
    headroom_pm.merge(other.headroom_pm);
    if (!other.has_worst) return;
    const int cmp = util_cmp(other.worst_measured, other.worst_predicted,
                             worst_measured, worst_predicted);
    if (!has_worst || cmp > 0 ||
        (cmp == 0 && other.worst_packet < worst_packet)) {
      has_worst = true;
      worst_packet = other.worst_packet;
      worst_predicted = other.worst_predicted;
      worst_measured = other.worst_measured;
    }
  }
};

/// Strictly-higher-utilization-first ordering (ties: lower packet index).
bool offender_before(const Offender& a, const Offender& b) {
  const int cmp = util_cmp(a.measured, a.predicted, b.measured, b.predicted);
  if (cmp != 0) return cmp > 0;
  return a.packet_index < b.packet_index;
}

struct ClassAccum {
  std::uint64_t packets = 0;
  std::array<MetricAccum, 3> metrics;
  perf::QuantileSketch violation_margin_pm;
  std::vector<Offender> offenders;  // sorted by offender_before, bounded

  void add_offender(const Offender& o, std::size_t cap) {
    if (cap == 0) return;
    const auto pos =
        std::lower_bound(offenders.begin(), offenders.end(), o, offender_before);
    if (pos == offenders.end() && offenders.size() >= cap) return;
    offenders.insert(pos, o);
    if (offenders.size() > cap) offenders.pop_back();
  }

  void merge(const ClassAccum& other, std::size_t cap) {
    packets += other.packets;
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      metrics[m].merge(other.metrics[m]);
    }
    violation_margin_pm.merge(other.violation_margin_pm);
    for (const Offender& o : other.offenders) add_offender(o, cap);
  }
};

QuantileSummary summarize(const perf::QuantileSketch& sketch) {
  QuantileSummary out;
  out.count = sketch.count();
  out.p50 = sketch.quantile(0.50);
  out.p90 = sketch.quantile(0.90);
  out.p99 = sketch.quantile(0.99);
  out.p999 = sketch.quantile(0.999);
  out.max = sketch.max();
  return out;
}

}  // namespace

struct MonitorEngine::EntryVm {
  std::array<perf::CompiledExpr, 3> exprs;
};

struct MonitorEngine::PartitionResult {
  std::vector<ClassAccum> classes;
  std::uint64_t unattributed = 0;
  std::uint64_t first_unattributed = 0;
  // Long-running-operation observations (deterministic per partition).
  std::uint64_t epoch_sweeps = 0;
  std::uint64_t expired_idle = 0;
  std::uint64_t high_water = 0;
  std::uint64_t residents = 0;
  bool state_tracked = false;
};

std::size_t partition_of(const net::Packet& packet, std::size_t partitions) {
  if (partitions <= 1) return 0;
  std::uint64_t h = 0;
  if (const auto eth = net::parse_ethernet(packet.bytes())) {
    h = net::mix64(eth->src.to_u64() * 0x9E3779B97F4A7C15ULL ^
                   eth->dst.to_u64());
  }
  if (const auto tuple = net::extract_five_tuple(packet)) {
    h = net::mix64(h ^ tuple->key());
  }
  return static_cast<std::size_t>(h % partitions);
}

MonitorEngine::MonitorEngine(const perf::Contract& contract,
                             const perf::PcvRegistry& reg,
                             MonitorOptions options)
    : contract_(contract), reg_(reg), options_(options) {
  if (options_.partitions == 0) options_.partitions = 1;
  if (options_.batch == 0) options_.batch = 1;
  vms_.reserve(contract_.entries().size());
  slot_stride_ = std::max<std::size_t>(reg_.size(), 1);
  for (std::size_t i = 0; i < contract_.entries().size(); ++i) {
    const perf::ContractEntry& entry = contract_.entries()[i];
    EntryVm vm;
    for (const Metric m : kAllMetrics) {
      vm.exprs[metric_index(m)] = perf::CompiledExpr::compile(entry.perf.get(m));
      slot_stride_ =
          std::max(slot_stride_, vm.exprs[metric_index(m)].slot_count());
    }
    vms_.push_back(std::move(vm));
    entry_index_.emplace(entry.input_class, i);
  }
}

MonitorEngine::~MonitorEngine() = default;

MonitorEngine::TargetFactory MonitorEngine::named_factory(std::string name) {
  return [name = std::move(name)](perf::PcvRegistry& reg) {
    core::NfTarget target;
    BOLT_CHECK(core::make_named_target(name, reg, target),
               "monitor: unknown target '" + name + "'");
    return target;
  };
}

void MonitorEngine::run_partition(const std::vector<std::uint64_t>& indices,
                                  const std::vector<net::Packet>& packets,
                                  const TargetFactory& factory,
                                  PartitionResult& out,
                                  std::vector<std::uint32_t>* attribution) const {
  out.classes.assign(contract_.entries().size(), ClassAccum{});

  // Fresh per-partition state, described by a partition-local PCV
  // registry; map its ids onto the contract registry's by name once, up
  // front.
  perf::PcvRegistry local_reg;
  const core::NfTarget target = factory(local_reg);
  constexpr std::uint32_t kUnmapped = ~0u;
  std::vector<std::uint32_t> pcv_slot(local_reg.size(), kUnmapped);
  for (const perf::PcvId id : local_reg.all()) {
    const std::string& name = local_reg.name(id);
    if (reg_.contains(name)) pcv_slot[id] = reg_.require(name);
  }
  // Loop-trip PCVs (linearised loop families): chain-namespaced loop id ->
  // contract slot of the PCV named after the loop.
  std::unordered_map<std::int64_t, std::uint32_t> loop_slot;
  const auto programs = target.programs();
  for (std::size_t p = 0; p < programs.size(); ++p) {
    for (std::size_t l = 0; l < programs[p]->loops.size(); ++l) {
      const std::string& name = programs[p]->loops[l];
      if (reg_.contains(name)) {
        loop_slot.emplace(static_cast<std::int64_t>(p) * 1000 +
                              static_cast<std::int64_t>(l),
                          reg_.require(name));
      }
    }
  }

  hw::ConservativeModel cycles(options_.cycle_costs);
  const auto runner = target.make_runner(
      options_.framework, options_.check_cycles ? &cycles : nullptr);

  // Per-entry pending batches: dense PCV rows plus the measured triples
  // and global packet indices they belong to.
  struct Batch {
    std::vector<std::uint64_t> slots;               // batch x stride
    std::vector<std::array<std::uint64_t, 3>> measured;
    std::vector<std::uint64_t> indices;
  };
  std::vector<Batch> batches(contract_.entries().size());
  std::vector<std::int64_t> predicted[3];

  const auto flush = [&](std::size_t entry) {
    Batch& b = batches[entry];
    if (b.indices.empty()) return;
    const std::size_t rows = b.indices.size();
    ClassAccum& acc = out.classes[entry];
    for (const Metric m : kAllMetrics) {
      const int mi = metric_index(m);
      if (m == Metric::kCycles && !options_.check_cycles) continue;
      predicted[mi].resize(rows);
      if (options_.use_compiled_exprs) {
        vms_[entry].exprs[mi].eval_batch(b.slots.data(), slot_stride_, rows,
                                         predicted[mi].data());
      } else {
        // Tree-walk baseline: rebuild a binding per row.
        const perf::PerfExpr& expr =
            contract_.entries()[entry].perf.get(m);
        for (std::size_t r = 0; r < rows; ++r) {
          perf::PcvBinding bind;
          const std::uint64_t* row = b.slots.data() + r * slot_stride_;
          for (std::size_t s = 0; s < slot_stride_; ++s) {
            if (row[s] != 0) bind.set(static_cast<perf::PcvId>(s), row[s]);
          }
          predicted[mi][r] = expr.eval(bind);
        }
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      ++acc.packets;
      Offender worst;
      bool has_offender = false;
      for (const Metric m : kAllMetrics) {
        const int mi = metric_index(m);
        if (m == Metric::kCycles && !options_.check_cycles) continue;
        const std::uint64_t measured = b.measured[r][mi];
        const std::int64_t bound = predicted[mi][r];
        acc.metrics[mi].record(b.indices[r], measured, bound);
        if (static_cast<std::int64_t>(measured) > bound) {
          // Violation margin in per-mille of the bound (how far past it).
          acc.violation_margin_pm.add(
              bound > 0 ? (measured - static_cast<std::uint64_t>(bound)) *
                              1000 / static_cast<std::uint64_t>(bound)
                        : kDegenerateUtilPm);
        }
        if (!has_offender ||
            util_cmp(measured, bound, worst.measured, worst.predicted) > 0) {
          has_offender = true;
          worst.packet_index = b.indices[r];
          worst.metric = m;
          worst.predicted = bound;
          worst.measured = measured;
        }
      }
      if (has_offender) acc.add_offender(worst, options_.max_offenders);
    }
    b.slots.clear();
    b.measured.clear();
    b.indices.clear();
  };

  // Deterministic epoch clock: driven purely by this partition's packet
  // timestamps (never wall-clock), so every crossing — and therefore every
  // idle-expiry sweep and occupancy sample — is a pure function of the
  // trace and the partition count.
  const bool track_state = target.has_state_observers();
  const bool epochs_on = options_.epoch_ns > 0 && track_state;
  bool have_epoch = false;
  std::uint64_t current_epoch = 0;

  bool any_unattributed = false;
  std::vector<std::pair<std::string, std::string>> cases;
  for (const std::uint64_t index : indices) {
    if (epochs_on) {
      const std::uint64_t epoch =
          packets[index].timestamp_ns() / options_.epoch_ns;
      if (!have_epoch) {
        have_epoch = true;
        current_epoch = epoch;
      } else if (epoch > current_epoch) {
        // Sweep state stale as of the boundary the clock just crossed.
        out.expired_idle +=
            target.expire_state(epoch * options_.epoch_ns);
        ++out.epoch_sweeps;
        current_epoch = epoch;
      }
    }

    net::Packet packet = packets[index];  // the NF mutates headers
    if (options_.check_cycles) cycles.begin_packet();
    const ir::RunResult run = runner->process(packet);
    if (track_state) {
      out.high_water = std::max<std::uint64_t>(out.high_water,
                                               target.state_occupancy());
    }

    cases.clear();
    for (const ir::CallSite& call : run.calls) {
      auto it = target.methods().find(call.method);
      cases.emplace_back(it != target.methods().end()
                             ? it->second.name
                             : "m" + std::to_string(call.method),
                         call.case_label);
    }
    const std::string key = core::class_key(run.class_tags, cases);
    const auto entry_it = entry_index_.find(key);
    if (entry_it == entry_index_.end()) {
      if (attribution != nullptr) (*attribution)[index] = kUnattributedEntry;
      if (!any_unattributed) {
        any_unattributed = true;
        out.first_unattributed = index;
      }
      ++out.unattributed;
      continue;
    }
    const std::size_t entry = entry_it->second;
    if (attribution != nullptr) {
      (*attribution)[index] = static_cast<std::uint32_t>(entry);
    }

    Batch& b = batches[entry];
    const std::size_t row = b.indices.size();
    b.slots.resize((row + 1) * slot_stride_, 0);  // new row arrives zeroed
    std::uint64_t* slots = b.slots.data() + row * slot_stride_;
    for (const auto& [id, value] : run.pcvs.values()) {
      if (id < pcv_slot.size() && pcv_slot[id] != kUnmapped) {
        slots[pcv_slot[id]] = value;
      }
    }
    for (const auto& [loop, trips] : run.loop_trips) {
      const auto slot_it = loop_slot.find(loop);
      if (slot_it != loop_slot.end()) slots[slot_it->second] = trips;
    }
    b.measured.push_back({run.instructions, run.mem_accesses,
                          options_.check_cycles ? cycles.packet_cycles() : 0});
    b.indices.push_back(index);
    if (b.indices.size() >= options_.batch) flush(entry);
  }
  for (std::size_t e = 0; e < batches.size(); ++e) flush(e);
  out.state_tracked = track_state;
  if (track_state) out.residents = target.state_occupancy();
}

MonitorReport MonitorEngine::run(const std::vector<net::Packet>& packets,
                                 const TargetFactory& factory,
                                 std::vector<std::uint32_t>* attribution) const {
  // Fixed flow-affine partition: membership depends only on packet
  // contents and the partition count, never on scheduling. Partitions
  // carry indices only — packets are copied one at a time as each is
  // processed, so monitoring never duplicates the whole trace.
  const std::size_t partitions = options_.partitions;
  std::vector<std::vector<std::uint64_t>> work(partitions);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    work[partition_of(packets[i], partitions)].push_back(i);
  }
  if (attribution != nullptr) {
    attribution->assign(packets.size(), kUnattributedEntry);
  }

  // Execution: partitions are grouped into `shards` work queues by the
  // configured policy and queues run concurrently on the pool. None of
  // these knobs can change report bytes — every partition computes the
  // same result regardless of which queue or thread ran it.
  const std::size_t shards =
      options_.shards == 0 ? partitions
                           : std::min(options_.shards, partitions);
  std::vector<std::vector<std::size_t>> queue(shards);
  if (options_.grouping == ShardGrouping::kLongestQueueFirst) {
    // LPT: heaviest partitions placed first, each on the lightest queue.
    std::vector<std::size_t> order(partitions);
    for (std::size_t p = 0; p < partitions; ++p) order[p] = p;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return work[a].size() > work[b].size();
                     });
    std::vector<std::size_t> load(shards, 0);
    for (const std::size_t p : order) {
      std::size_t lightest = 0;
      for (std::size_t s = 1; s < shards; ++s) {
        if (load[s] < load[lightest]) lightest = s;
      }
      queue[lightest].push_back(p);
      load[lightest] += work[p].size();
    }
  } else {
    for (std::size_t p = 0; p < partitions; ++p) {
      queue[p % shards].push_back(p);
    }
  }
  std::vector<PartitionResult> partition_results(partitions);
  support::ThreadPool pool(
      std::min(support::resolve_threads(options_.threads), shards));
  pool.parallel_for(0, shards, [&](std::size_t s) {
    for (const std::size_t p : queue[s]) {
      run_partition(work[p], packets, factory, partition_results[p],
                    attribution);
    }
  });

  // Deterministic merge in partition order.
  std::vector<ClassAccum> merged(contract_.entries().size());
  std::uint64_t unattributed = 0, first_unattributed = 0;
  bool any_unattributed = false;
  MonitorReport report;
  for (const PartitionResult& pr : partition_results) {
    for (std::size_t e = 0; e < merged.size(); ++e) {
      merged[e].merge(pr.classes[e], options_.max_offenders);
    }
    if (pr.unattributed > 0) {
      unattributed += pr.unattributed;
      if (!any_unattributed || pr.first_unattributed < first_unattributed) {
        any_unattributed = true;
        first_unattributed = pr.first_unattributed;
      }
    }
    report.epoch_sweeps += pr.epoch_sweeps;
    report.state_expired_idle += pr.expired_idle;
    report.state_high_water =
        std::max(report.state_high_water, pr.high_water);
    report.state_residents += pr.residents;
    report.state_tracked = report.state_tracked || pr.state_tracked;
  }

  report.nf = contract_.nf_name();
  report.packets = packets.size();
  report.unattributed = unattributed;
  report.first_unattributed_packet = first_unattributed;
  report.attributed = packets.size() - unattributed;
  report.partitions = partitions;
  report.cycles_checked = options_.check_cycles;
  // A target with no state observers never runs epoch maintenance, no
  // matter what the option says — report the effective value.
  report.epoch_ns = report.state_tracked ? options_.epoch_ns : 0;
  report.classes.reserve(merged.size());
  for (std::size_t e = 0; e < merged.size(); ++e) {
    ClassReport cr;
    cr.input_class = contract_.entries()[e].input_class;
    cr.packets = merged[e].packets;
    for (std::size_t m = 0; m < 3; ++m) {
      const MetricAccum& acc = merged[e].metrics[m];
      MetricReport& mr = cr.metrics[m];
      mr.violations = acc.violations;
      mr.worst_packet = acc.worst_packet;
      mr.worst_predicted = acc.worst_predicted;
      mr.worst_measured = acc.worst_measured;
      mr.histogram = acc.histogram;
      mr.headroom_pm = summarize(acc.headroom_pm);
      report.violations += acc.violations;
    }
    cr.violation_margin_pm = summarize(merged[e].violation_margin_pm);
    cr.offenders = std::move(merged[e].offenders);
    report.classes.push_back(std::move(cr));
  }
  // Classes sorted by input class for stable human output (contract
  // entries already arrive sorted from the generator; enforce anyway for
  // hand-built contracts).
  std::stable_sort(report.classes.begin(), report.classes.end(),
                   [](const ClassReport& a, const ClassReport& b) {
                     return a.input_class < b.input_class;
                   });
  return report;
}

}  // namespace bolt::monitor
