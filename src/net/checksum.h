// Internet checksum (RFC 1071) over byte ranges.
#pragma once

#include <cstddef>
#include <cstdint>
#include "support/span.h"

namespace bolt::net {

/// One's-complement sum used by the internet checksum; returns the running
/// 32-bit accumulator so callers can checksum discontiguous regions.
std::uint32_t checksum_accumulate(support::Span<const std::uint8_t> data,
                                  std::uint32_t accumulator = 0);

/// Finalises an accumulator into the 16-bit checksum field value.
std::uint16_t checksum_finish(std::uint32_t accumulator);

/// Convenience: full internet checksum of one contiguous region.
std::uint16_t internet_checksum(support::Span<const std::uint8_t> data);

}  // namespace bolt::net
