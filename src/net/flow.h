// Five-tuple flow identity and hashing.
//
// The NAT and load balancer key their state on the five-tuple. The hash
// here is deliberately simple and *public* — the MAC bridge's rehash-defence
// experiment (paper §5.2) depends on an attacker being able to construct
// collisions against a known hash, which our adversarial workload generator
// does, and on the defence being a secret random key mixed into the hash.
#pragma once

#include <cstdint>
#include <optional>
#include <tuple>

#include "net/addresses.h"
#include "net/packet.h"

namespace bolt::net {

struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend bool operator==(const FiveTuple& a, const FiveTuple& b) {
    return a.tie() == b.tie();
  }
  friend bool operator!=(const FiveTuple& a, const FiveTuple& b) {
    return !(a == b);
  }
  friend bool operator<(const FiveTuple& a, const FiveTuple& b) {
    return a.tie() < b.tie();
  }

  /// Packs the tuple into a 64-bit key the dslib flow table uses:
  /// a 64-bit mix of the 104 tuple bits. Collisions of the *key* are
  /// astronomically unlikely for test workloads; collisions of the *bucket*
  /// are what the PCVs track.
  std::uint64_t key() const;

  /// Reversed tuple (for return traffic).
  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

 private:
  std::tuple<std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t,
             std::uint8_t>
  tie() const {
    return {src_ip.value, dst_ip.value, src_port, dst_port, protocol};
  }
};

/// Extracts the five-tuple of a TCP/UDP-over-IPv4 frame (no VLAN).
/// Returns nullopt for anything else (non-IPv4, other protocols, truncated).
std::optional<FiveTuple> extract_five_tuple(const Packet& packet);

/// The public 64 -> 64 bit mixing function used by dslib hash tables.
/// (splitmix64 finaliser; fast, invertible, and well distributed.)
std::uint64_t mix64(std::uint64_t x);

}  // namespace bolt::net
