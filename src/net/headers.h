// Protocol header layouts and parse/serialise helpers.
//
// Headers are parsed from / written to raw byte buffers in network byte
// order; the structs below hold host-order values. Offsets follow the wire
// layout exactly so that NF code written against the IR (which loads packet
// bytes by offset) and host-side helpers agree.
#pragma once

#include <cstdint>
#include <optional>
#include "support/span.h"
#include <vector>

#include "net/addresses.h"

namespace bolt::net {

// --- Well-known constants (wire values) ------------------------------------

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;
inline constexpr std::uint16_t kEtherTypeVlan = 0x8100;

inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

inline constexpr std::size_t kEthernetHeaderSize = 14;
inline constexpr std::size_t kIpv4MinHeaderSize = 20;
inline constexpr std::size_t kUdpHeaderSize = 8;
inline constexpr std::size_t kTcpMinHeaderSize = 20;

/// IPv4 option kinds used by the static router experiment (Table 5).
inline constexpr std::uint8_t kIpOptEnd = 0;
inline constexpr std::uint8_t kIpOptNop = 1;
inline constexpr std::uint8_t kIpOptTimestamp = 68;  // RFC 781

// --- Byte-order helpers -----------------------------------------------------

std::uint16_t load_be16(support::Span<const std::uint8_t> buf, std::size_t offset);
std::uint32_t load_be32(support::Span<const std::uint8_t> buf, std::size_t offset);
std::uint64_t load_be48(support::Span<const std::uint8_t> buf, std::size_t offset);
void store_be16(support::Span<std::uint8_t> buf, std::size_t offset, std::uint16_t v);
void store_be32(support::Span<std::uint8_t> buf, std::size_t offset, std::uint32_t v);
void store_be48(support::Span<std::uint8_t> buf, std::size_t offset, std::uint64_t v);

// --- Parsed header views ----------------------------------------------------

struct EthernetHeader {
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = 0;
};

struct Ipv4Header {
  std::uint8_t version = 4;
  std::uint8_t ihl = 5;  ///< header length in 32-bit words (5..15)
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;
  Ipv4Address src;
  Ipv4Address dst;
  std::vector<std::uint8_t> options;  ///< raw option bytes (padded to 4B)

  std::size_t header_size() const { return std::size_t(ihl) * 4; }
  bool has_options() const { return ihl > 5; }
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_offset = 5;  ///< in 32-bit words
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;
};

// --- Parsing ----------------------------------------------------------------

/// Parses the Ethernet header at offset 0; nullopt if the buffer is short.
std::optional<EthernetHeader> parse_ethernet(support::Span<const std::uint8_t> buf);

/// Parses an IPv4 header at `offset`; validates version/ihl/lengths.
std::optional<Ipv4Header> parse_ipv4(support::Span<const std::uint8_t> buf,
                                     std::size_t offset);

std::optional<UdpHeader> parse_udp(support::Span<const std::uint8_t> buf,
                                   std::size_t offset);
std::optional<TcpHeader> parse_tcp(support::Span<const std::uint8_t> buf,
                                   std::size_t offset);

// --- Serialisation (used by PacketBuilder) ----------------------------------

void write_ethernet(support::Span<std::uint8_t> buf, const EthernetHeader& h);
/// Writes the IPv4 header (including options) and computes its checksum.
void write_ipv4(support::Span<std::uint8_t> buf, std::size_t offset,
                const Ipv4Header& h);
void write_udp(support::Span<std::uint8_t> buf, std::size_t offset,
               const UdpHeader& h);
void write_tcp(support::Span<std::uint8_t> buf, std::size_t offset,
               const TcpHeader& h);

/// Counts IPv4 options in the raw option bytes (NOPs count; END terminates;
/// multi-byte options advance by their length byte). Returns nullopt for
/// malformed encodings. This mirrors the static router's option walk.
std::optional<int> count_ipv4_options(support::Span<const std::uint8_t> options);

}  // namespace bolt::net
