#include "net/packet.h"

// Packet is header-only today; this file anchors the translation unit so the
// library has a stable archive member for the type (and room to grow, e.g.
// reference-counted buffers for zero-copy chains).
namespace bolt::net {}
