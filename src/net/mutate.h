// Trace mutators — the hunter's move set over packet sequences.
//
// Each mutator is a small deterministic transformation of a packet vector,
// parameterised entirely by indices/amounts the caller picks (the caller
// owns the randomness; these functions own the invariants). All of them
// preserve the one property every replay consumer assumes: timestamps are
// globally non-decreasing (which implies per-partition monotonicity for
// any partitioning). Mutators that would break an invariant or get
// out-of-range indices return false and leave the vector untouched.
//
// The move set mirrors the bug classes the violation hunter targets:
//   * snap_to_boundary — epoch-boundary straddles: a packet lands exactly
//     on a sweep edge (ts == k * epoch_ns), the place where maintenance
//     cost attribution can leak.
//   * stretch_gap — idle gaps that force epoch crossings (and therefore
//     sweeps) where the seed trace had none.
//   * swap_contents / rotate_window — cross-class interleavings and
//     shard-grouping-sensitive orderings: packet contents move against a
//     fixed clock, so state histories interleave differently.
//   * duplicate_at — bursts: occupancy ramps that rekey/fill mid-burst.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/packet.h"

namespace bolt::net {

/// Snaps packet `i`'s timestamp forward to the next exact multiple of
/// `epoch_ns` (a sweep edge), then repairs monotonicity by clamping every
/// later timestamp up to at least the new value. A packet already sitting
/// on a boundary advances a full epoch (the mutation must move the clock,
/// or repeated applications are no-ops).
bool snap_to_boundary(std::vector<Packet>& packets, std::size_t i,
                      std::uint64_t epoch_ns);

/// Adds `delta_ns` to every timestamp from index `i` on — an idle gap that
/// can push the tail of the trace across one or more epoch boundaries.
bool stretch_gap(std::vector<Packet>& packets, std::size_t i,
                 std::uint64_t delta_ns);

/// Exchanges the *contents* (bytes + in_port) of packets `i` and `j` while
/// leaving both timestamps in place: the wire order and clock are
/// untouched, but the two flows' state histories interleave differently.
bool swap_contents(std::vector<Packet>& packets, std::size_t i,
                   std::size_t j);

/// Rotates the contents of the window [i, i+len) by one position
/// (timestamps fixed, like swap_contents) — a localised reordering storm.
bool rotate_window(std::vector<Packet>& packets, std::size_t i,
                   std::size_t len);

/// Inserts a copy of packet `i` immediately after it, same timestamp — a
/// burst doubling that accelerates occupancy ramps.
bool duplicate_at(std::vector<Packet>& packets, std::size_t i);

}  // namespace bolt::net
