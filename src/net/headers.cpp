#include "net/headers.h"

#include <cstdio>

#include "net/checksum.h"
#include "support/assert.h"

namespace bolt::net {

MacAddress MacAddress::from_u64(std::uint64_t value) {
  MacAddress m;
  for (int i = 5; i >= 0; --i) {
    m.bytes[i] = static_cast<std::uint8_t>(value & 0xff);
    value >>= 8;
  }
  return m;
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t v = 0;
  for (std::uint8_t b : bytes) v = (v << 8) | b;
  return v;
}

std::string MacAddress::str() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::string Ipv4Address::str() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::uint16_t load_be16(support::Span<const std::uint8_t> buf, std::size_t offset) {
  BOLT_CHECK(offset + 2 <= buf.size(), "load_be16 out of range");
  return static_cast<std::uint16_t>((buf[offset] << 8) | buf[offset + 1]);
}

std::uint32_t load_be32(support::Span<const std::uint8_t> buf, std::size_t offset) {
  BOLT_CHECK(offset + 4 <= buf.size(), "load_be32 out of range");
  return (std::uint32_t(buf[offset]) << 24) |
         (std::uint32_t(buf[offset + 1]) << 16) |
         (std::uint32_t(buf[offset + 2]) << 8) | buf[offset + 3];
}

std::uint64_t load_be48(support::Span<const std::uint8_t> buf, std::size_t offset) {
  BOLT_CHECK(offset + 6 <= buf.size(), "load_be48 out of range");
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 6; ++i) v = (v << 8) | buf[offset + i];
  return v;
}

void store_be16(support::Span<std::uint8_t> buf, std::size_t offset, std::uint16_t v) {
  BOLT_CHECK(offset + 2 <= buf.size(), "store_be16 out of range");
  buf[offset] = static_cast<std::uint8_t>(v >> 8);
  buf[offset + 1] = static_cast<std::uint8_t>(v & 0xff);
}

void store_be32(support::Span<std::uint8_t> buf, std::size_t offset, std::uint32_t v) {
  BOLT_CHECK(offset + 4 <= buf.size(), "store_be32 out of range");
  for (int i = 3; i >= 0; --i) {
    buf[offset + std::size_t(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

void store_be48(support::Span<std::uint8_t> buf, std::size_t offset, std::uint64_t v) {
  BOLT_CHECK(offset + 6 <= buf.size(), "store_be48 out of range");
  for (int i = 5; i >= 0; --i) {
    buf[offset + std::size_t(i)] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}

std::optional<EthernetHeader> parse_ethernet(support::Span<const std::uint8_t> buf) {
  if (buf.size() < kEthernetHeaderSize) return std::nullopt;
  EthernetHeader h;
  for (std::size_t i = 0; i < 6; ++i) h.dst.bytes[i] = buf[i];
  for (std::size_t i = 0; i < 6; ++i) h.src.bytes[i] = buf[6 + i];
  h.ether_type = load_be16(buf, 12);
  return h;
}

std::optional<Ipv4Header> parse_ipv4(support::Span<const std::uint8_t> buf,
                                     std::size_t offset) {
  if (offset + kIpv4MinHeaderSize > buf.size()) return std::nullopt;
  Ipv4Header h;
  const std::uint8_t vihl = buf[offset];
  h.version = vihl >> 4;
  h.ihl = vihl & 0x0f;
  if (h.version != 4 || h.ihl < 5) return std::nullopt;
  if (offset + h.header_size() > buf.size()) return std::nullopt;
  h.dscp_ecn = buf[offset + 1];
  h.total_length = load_be16(buf, offset + 2);
  h.identification = load_be16(buf, offset + 4);
  h.flags_fragment = load_be16(buf, offset + 6);
  h.ttl = buf[offset + 8];
  h.protocol = buf[offset + 9];
  h.checksum = load_be16(buf, offset + 10);
  h.src.value = load_be32(buf, offset + 12);
  h.dst.value = load_be32(buf, offset + 16);
  if (h.has_options()) {
    const std::size_t opt_len = h.header_size() - kIpv4MinHeaderSize;
    h.options.assign(buf.begin() + std::ptrdiff_t(offset + kIpv4MinHeaderSize),
                     buf.begin() + std::ptrdiff_t(offset + kIpv4MinHeaderSize + opt_len));
  }
  return h;
}

std::optional<UdpHeader> parse_udp(support::Span<const std::uint8_t> buf,
                                   std::size_t offset) {
  if (offset + kUdpHeaderSize > buf.size()) return std::nullopt;
  UdpHeader h;
  h.src_port = load_be16(buf, offset);
  h.dst_port = load_be16(buf, offset + 2);
  h.length = load_be16(buf, offset + 4);
  h.checksum = load_be16(buf, offset + 6);
  return h;
}

std::optional<TcpHeader> parse_tcp(support::Span<const std::uint8_t> buf,
                                   std::size_t offset) {
  if (offset + kTcpMinHeaderSize > buf.size()) return std::nullopt;
  TcpHeader h;
  h.src_port = load_be16(buf, offset);
  h.dst_port = load_be16(buf, offset + 2);
  h.seq = load_be32(buf, offset + 4);
  h.ack = load_be32(buf, offset + 8);
  h.data_offset = buf[offset + 12] >> 4;
  h.flags = buf[offset + 13];
  h.window = load_be16(buf, offset + 14);
  h.checksum = load_be16(buf, offset + 16);
  h.urgent = load_be16(buf, offset + 18);
  return h;
}

void write_ethernet(support::Span<std::uint8_t> buf, const EthernetHeader& h) {
  BOLT_CHECK(buf.size() >= kEthernetHeaderSize, "buffer too small for ethernet");
  for (std::size_t i = 0; i < 6; ++i) buf[i] = h.dst.bytes[i];
  for (std::size_t i = 0; i < 6; ++i) buf[6 + i] = h.src.bytes[i];
  store_be16(buf, 12, h.ether_type);
}

void write_ipv4(support::Span<std::uint8_t> buf, std::size_t offset,
                const Ipv4Header& h) {
  BOLT_CHECK(h.options.size() % 4 == 0, "IPv4 options must be padded to 4B");
  const std::uint8_t ihl =
      static_cast<std::uint8_t>(5 + h.options.size() / 4);
  BOLT_CHECK(ihl <= 15, "IPv4 options too long");
  BOLT_CHECK(offset + std::size_t(ihl) * 4 <= buf.size(),
             "buffer too small for IPv4 header");
  buf[offset] = static_cast<std::uint8_t>((4 << 4) | ihl);
  buf[offset + 1] = h.dscp_ecn;
  store_be16(buf, offset + 2, h.total_length);
  store_be16(buf, offset + 4, h.identification);
  store_be16(buf, offset + 6, h.flags_fragment);
  buf[offset + 8] = h.ttl;
  buf[offset + 9] = h.protocol;
  store_be16(buf, offset + 10, 0);  // checksum placeholder
  store_be32(buf, offset + 12, h.src.value);
  store_be32(buf, offset + 16, h.dst.value);
  for (std::size_t i = 0; i < h.options.size(); ++i) {
    buf[offset + kIpv4MinHeaderSize + i] = h.options[i];
  }
  const std::uint16_t csum = internet_checksum(
      support::Span<const std::uint8_t>(buf.data() + offset, std::size_t(ihl) * 4));
  store_be16(buf, offset + 10, csum);
}

void write_udp(support::Span<std::uint8_t> buf, std::size_t offset,
               const UdpHeader& h) {
  BOLT_CHECK(offset + kUdpHeaderSize <= buf.size(), "buffer too small for UDP");
  store_be16(buf, offset, h.src_port);
  store_be16(buf, offset + 2, h.dst_port);
  store_be16(buf, offset + 4, h.length);
  store_be16(buf, offset + 6, h.checksum);
}

void write_tcp(support::Span<std::uint8_t> buf, std::size_t offset,
               const TcpHeader& h) {
  BOLT_CHECK(offset + kTcpMinHeaderSize <= buf.size(), "buffer too small for TCP");
  store_be16(buf, offset, h.src_port);
  store_be16(buf, offset + 2, h.dst_port);
  store_be32(buf, offset + 4, h.seq);
  store_be32(buf, offset + 8, h.ack);
  buf[offset + 12] = static_cast<std::uint8_t>(h.data_offset << 4);
  buf[offset + 13] = h.flags;
  store_be16(buf, offset + 14, h.window);
  store_be16(buf, offset + 16, h.checksum);
  store_be16(buf, offset + 18, h.urgent);
}

std::optional<int> count_ipv4_options(support::Span<const std::uint8_t> options) {
  int count = 0;
  std::size_t i = 0;
  while (i < options.size()) {
    const std::uint8_t kind = options[i];
    if (kind == kIpOptEnd) break;
    if (kind == kIpOptNop) {
      ++count;
      ++i;
      continue;
    }
    if (i + 1 >= options.size()) return std::nullopt;
    const std::uint8_t len = options[i + 1];
    if (len < 2 || i + len > options.size()) return std::nullopt;
    ++count;
    i += len;
  }
  return count;
}

}  // namespace bolt::net
