// Packet — an owned byte buffer plus receive metadata.
//
// This is the unit of work for every NF in the repository: workload
// generators produce packets, PCAP files store them, and the IR interpreter
// exposes their bytes to NF programs via packet-load instructions.
#pragma once

#include <cstdint>
#include "support/span.h"
#include <vector>

namespace bolt::net {

/// Nanosecond timestamps; NF time (flow expiry etc.) is driven by these.
using TimestampNs = std::uint64_t;

inline constexpr std::size_t kMinFrameSize = 60;    // without FCS
inline constexpr std::size_t kMaxFrameSize = 1514;  // standard MTU frame

class Packet {
 public:
  Packet() = default;
  Packet(std::vector<std::uint8_t> data, TimestampNs timestamp_ns,
         std::uint16_t in_port = 0)
      : data_(std::move(data)), timestamp_ns_(timestamp_ns), in_port_(in_port) {}

  support::Span<const std::uint8_t> bytes() const { return data_; }
  support::Span<std::uint8_t> mutable_bytes() { return data_; }
  std::size_t size() const { return data_.size(); }

  TimestampNs timestamp_ns() const { return timestamp_ns_; }
  void set_timestamp_ns(TimestampNs t) { timestamp_ns_ = t; }

  std::uint16_t in_port() const { return in_port_; }
  void set_in_port(std::uint16_t p) { in_port_ = p; }

 private:
  std::vector<std::uint8_t> data_;
  TimestampNs timestamp_ns_ = 0;
  std::uint16_t in_port_ = 0;
};

/// What an NF did with a packet.
enum class NfVerdict : std::uint8_t { kDrop = 0, kForward = 1, kFlood = 2 };

}  // namespace bolt::net
