#include "net/pcap.h"

#include <cstdio>
#include <cstring>

#include "support/assert.h"

namespace bolt::net {
namespace {

constexpr std::uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr std::uint32_t kMagicNano = 0xa1b23c4d;
constexpr std::uint32_t kMagicMicroSwapped = 0xd4c3b2a1;
constexpr std::uint32_t kMagicNanoSwapped = 0x4d3cb2a1;
constexpr std::uint32_t kLinkTypeEthernet = 1;

std::uint32_t bswap32(std::uint32_t v) {
  return ((v & 0xff) << 24) | ((v & 0xff00) << 8) | ((v >> 8) & 0xff00) |
         (v >> 24);
}

struct Cursor {
  const std::uint8_t* data;
  std::size_t size;
  std::size_t pos = 0;
  bool swapped = false;

  bool done() const { return pos >= size; }

  std::uint32_t u32() {
    BOLT_CHECK(pos + 4 <= size, "pcap: truncated file");
    std::uint32_t v;
    std::memcpy(&v, data + pos, 4);
    pos += 4;
    return swapped ? bswap32(v) : v;
  }

  std::uint16_t u16() {
    BOLT_CHECK(pos + 2 <= size, "pcap: truncated file");
    std::uint16_t v;
    std::memcpy(&v, data + pos, 2);
    pos += 2;
    return swapped ? static_cast<std::uint16_t>((v << 8) | (v >> 8)) : v;
  }
};

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

}  // namespace

std::vector<Packet> parse_pcap(const std::vector<std::uint8_t>& bytes) {
  Cursor cur{bytes.data(), bytes.size()};
  BOLT_CHECK(bytes.size() >= 24, "pcap: file shorter than global header");

  std::uint32_t magic;
  std::memcpy(&magic, bytes.data(), 4);
  bool nano = false;
  switch (magic) {
    case kMagicMicro: break;
    case kMagicNano: nano = true; break;
    case kMagicMicroSwapped: cur.swapped = true; break;
    case kMagicNanoSwapped:
      cur.swapped = true;
      nano = true;
      break;
    default: BOLT_UNREACHABLE("pcap: bad magic number");
  }
  cur.pos = 4;
  cur.u16();  // version major
  cur.u16();  // version minor
  cur.u32();  // thiszone
  cur.u32();  // sigfigs
  cur.u32();  // snaplen
  const std::uint32_t link_type = cur.u32();
  BOLT_CHECK(link_type == kLinkTypeEthernet, "pcap: only EN10MB supported");

  std::vector<Packet> packets;
  while (!cur.done()) {
    const std::uint64_t ts_sec = cur.u32();
    const std::uint64_t ts_frac = cur.u32();
    const std::uint32_t incl_len = cur.u32();
    const std::uint32_t orig_len = cur.u32();
    (void)orig_len;
    BOLT_CHECK(cur.pos + incl_len <= cur.size, "pcap: truncated record");
    std::vector<std::uint8_t> data(bytes.begin() + std::ptrdiff_t(cur.pos),
                                   bytes.begin() + std::ptrdiff_t(cur.pos + incl_len));
    cur.pos += incl_len;
    const TimestampNs ts =
        ts_sec * 1'000'000'000ULL + (nano ? ts_frac : ts_frac * 1'000ULL);
    packets.emplace_back(std::move(data), ts);
  }
  return packets;
}

std::vector<std::uint8_t> serialize_pcap(const std::vector<Packet>& packets) {
  std::vector<std::uint8_t> out;
  put_u32(out, kMagicNano);
  put_u16(out, 2);   // version 2.4
  put_u16(out, 4);
  put_u32(out, 0);   // thiszone
  put_u32(out, 0);   // sigfigs
  put_u32(out, 65535);  // snaplen
  put_u32(out, kLinkTypeEthernet);
  for (const Packet& p : packets) {
    put_u32(out, static_cast<std::uint32_t>(p.timestamp_ns() / 1'000'000'000ULL));
    put_u32(out, static_cast<std::uint32_t>(p.timestamp_ns() % 1'000'000'000ULL));
    put_u32(out, static_cast<std::uint32_t>(p.size()));
    put_u32(out, static_cast<std::uint32_t>(p.size()));
    out.insert(out.end(), p.bytes().begin(), p.bytes().end());
  }
  return out;
}

std::vector<Packet> read_pcap(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  BOLT_CHECK(f != nullptr, "pcap: cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long len = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(len));
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  BOLT_CHECK(got == bytes.size(), "pcap: short read on " + path);
  return parse_pcap(bytes);
}

PcapTail::PcapTail(std::string path) : path_(std::move(path)) {}

PcapTail::~PcapTail() {
  if (f_ != nullptr) std::fclose(f_);
}

std::vector<Packet> PcapTail::poll() {
  std::vector<Packet> out;
  if (f_ == nullptr) {
    f_ = std::fopen(path_.c_str(), "rb");
    if (f_ == nullptr) return out;  // not created yet
  }
  // Append everything currently readable to the carry-over buffer. The
  // writer may be mid-record; whatever does not parse as complete records
  // stays buffered for the next poll.
  char chunk[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(chunk, 1, sizeof chunk, f_);
    if (got > 0) {
      buf_.insert(buf_.end(), chunk, chunk + got);
    }
    if (got < sizeof chunk) {
      std::clearerr(f_);  // clear EOF so the next poll sees appended bytes
      break;
    }
  }

  std::size_t pos = 0;
  if (!header_done_) {
    if (buf_.size() < 24) return out;
    std::uint32_t magic;
    std::memcpy(&magic, buf_.data(), 4);
    switch (magic) {
      case kMagicMicro: break;
      case kMagicNano: nano_ = true; break;
      case kMagicMicroSwapped: swapped_ = true; break;
      case kMagicNanoSwapped:
        swapped_ = true;
        nano_ = true;
        break;
      default: BOLT_UNREACHABLE("pcap tail: bad magic number");
    }
    Cursor cur{buf_.data(), buf_.size(), 20, swapped_};
    const std::uint32_t link_type = cur.u32();
    BOLT_CHECK(link_type == kLinkTypeEthernet,
               "pcap tail: only EN10MB supported");
    header_done_ = true;
    pos = 24;
  }

  while (buf_.size() - pos >= 16) {
    Cursor cur{buf_.data(), buf_.size(), pos, swapped_};
    const std::uint64_t ts_sec = cur.u32();
    const std::uint64_t ts_frac = cur.u32();
    const std::uint32_t incl_len = cur.u32();
    cur.u32();  // orig_len
    if (buf_.size() - cur.pos < incl_len) break;  // partial record: retry
    std::vector<std::uint8_t> data(
        buf_.begin() + std::ptrdiff_t(cur.pos),
        buf_.begin() + std::ptrdiff_t(cur.pos + incl_len));
    const TimestampNs ts =
        ts_sec * 1'000'000'000ULL + (nano_ ? ts_frac : ts_frac * 1'000ULL);
    out.emplace_back(std::move(data), ts);
    pos = cur.pos + incl_len;
  }
  buf_.erase(buf_.begin(), buf_.begin() + std::ptrdiff_t(pos));
  return out;
}

void write_pcap(const std::string& path, const std::vector<Packet>& packets) {
  const std::vector<std::uint8_t> bytes = serialize_pcap(packets);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  BOLT_CHECK(f != nullptr, "pcap: cannot open " + path + " for writing");
  const std::size_t put = std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  BOLT_CHECK(put == bytes.size(), "pcap: short write on " + path);
}

}  // namespace bolt::net
