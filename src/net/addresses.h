// MAC and IPv4 address value types.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace bolt::net {

/// 48-bit Ethernet MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  static MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  /// Builds a MAC from the low 48 bits of `value` (big-endian layout).
  static MacAddress from_u64(std::uint64_t value);
  /// The MAC as an integer (low 48 bits used).
  std::uint64_t to_u64() const;

  bool is_broadcast() const { return *this == broadcast(); }
  /// Multicast bit: LSB of the first byte.
  bool is_multicast() const { return (bytes[0] & 1) != 0; }

  std::string str() const;

  friend bool operator==(const MacAddress& a, const MacAddress& b) {
    return a.bytes == b.bytes;
  }
  friend bool operator!=(const MacAddress& a, const MacAddress& b) {
    return !(a == b);
  }
  friend bool operator<(const MacAddress& a, const MacAddress& b) {
    return a.bytes < b.bytes;
  }
};

/// IPv4 address stored in host order for arithmetic convenience.
struct Ipv4Address {
  std::uint32_t value = 0;  // host order

  static Ipv4Address from_octets(std::uint8_t a, std::uint8_t b,
                                 std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                       (std::uint32_t(c) << 8) | d};
  }

  std::string str() const;

  friend bool operator==(const Ipv4Address& a, const Ipv4Address& b) {
    return a.value == b.value;
  }
  friend bool operator!=(const Ipv4Address& a, const Ipv4Address& b) {
    return !(a == b);
  }
  friend bool operator<(const Ipv4Address& a, const Ipv4Address& b) {
    return a.value < b.value;
  }
};

}  // namespace bolt::net
