// PCAP file reading and writing (implemented from scratch — no libpcap).
//
// The Distiller (paper §4) consumes traffic samples as PCAP files, and our
// workload generators can persist their traces the same way. We support the
// classic libpcap format, both microsecond (0xa1b2c3d4) and nanosecond
// (0xa1b23c4d) variants, in either byte order.
#pragma once

#include <string>
#include <vector>

#include "net/packet.h"

namespace bolt::net {

/// Reads all packets from a PCAP file. Aborts on malformed files (analysis
/// inputs are trusted, truncation is a usage error we surface loudly).
std::vector<Packet> read_pcap(const std::string& path);

/// Writes packets as a nanosecond-resolution PCAP file (link type EN10MB).
void write_pcap(const std::string& path, const std::vector<Packet>& packets);

/// In-memory variants used by tests.
std::vector<Packet> parse_pcap(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> serialize_pcap(const std::vector<Packet>& packets);

}  // namespace bolt::net
