// PCAP file reading and writing (implemented from scratch — no libpcap).
//
// The Distiller (paper §4) consumes traffic samples as PCAP files, and our
// workload generators can persist their traces the same way. We support the
// classic libpcap format, both microsecond (0xa1b2c3d4) and nanosecond
// (0xa1b23c4d) variants, in either byte order.
#pragma once

#include <string>
#include <vector>

#include "net/packet.h"

namespace bolt::net {

/// Reads all packets from a PCAP file. Aborts on malformed files (analysis
/// inputs are trusted, truncation is a usage error we surface loudly).
std::vector<Packet> read_pcap(const std::string& path);

/// Writes packets as a nanosecond-resolution PCAP file (link type EN10MB).
void write_pcap(const std::string& path, const std::vector<Packet>& packets);

/// In-memory variants used by tests.
std::vector<Packet> parse_pcap(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> serialize_pcap(const std::vector<Packet>& packets);

/// Incremental reader for a pcap file that is still being written — the
/// daemon-mode (`bolt_cli monitor --follow`) input path. Each poll() reads
/// whatever complete records have been appended since the last poll and
/// returns them; a partially-written trailing record (or a file that does
/// not exist yet, or one shorter than its global header) is simply "no
/// data yet" and is retried on the next poll. Both timestamp resolutions
/// and byte orders are accepted; a *malformed* header (bad magic, non-
/// Ethernet link type) still aborts loudly, exactly like read_pcap — a
/// tailed file must be a pcap, it is only allowed to be unfinished.
class PcapTail {
 public:
  explicit PcapTail(std::string path);
  ~PcapTail();
  PcapTail(const PcapTail&) = delete;
  PcapTail& operator=(const PcapTail&) = delete;

  /// Drains newly completed records. Returns an empty vector when nothing
  /// new is available (not yet created / no new complete records).
  std::vector<Packet> poll();

  /// True once the global header has been read and validated.
  bool header_seen() const { return header_done_; }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  bool header_done_ = false;
  bool swapped_ = false;
  bool nano_ = false;
  std::vector<std::uint8_t> buf_;  ///< carried-over partial record bytes
};

}  // namespace bolt::net
