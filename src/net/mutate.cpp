#include "net/mutate.h"

#include <algorithm>
#include <utility>

namespace bolt::net {

bool snap_to_boundary(std::vector<Packet>& packets, std::size_t i,
                      std::uint64_t epoch_ns) {
  if (i >= packets.size() || epoch_ns == 0) return false;
  const TimestampNs ts = packets[i].timestamp_ns();
  // Next boundary strictly after ts, except an off-boundary packet snaps
  // to the boundary it is approaching (ceil); an on-boundary one advances.
  const TimestampNs snapped = ts % epoch_ns == 0
                                  ? ts + epoch_ns
                                  : (ts / epoch_ns + 1) * epoch_ns;
  if (snapped < ts) return false;  // wrapped
  packets[i].set_timestamp_ns(snapped);
  for (std::size_t j = i + 1; j < packets.size(); ++j) {
    if (packets[j].timestamp_ns() >= snapped) break;  // already monotone
    packets[j].set_timestamp_ns(snapped);
  }
  return true;
}

bool stretch_gap(std::vector<Packet>& packets, std::size_t i,
                 std::uint64_t delta_ns) {
  if (i >= packets.size() || delta_ns == 0) return false;
  if (packets.back().timestamp_ns() + delta_ns < delta_ns) return false;
  for (std::size_t j = i; j < packets.size(); ++j) {
    packets[j].set_timestamp_ns(packets[j].timestamp_ns() + delta_ns);
  }
  return true;
}

namespace {

/// Contents-only exchange: Packet owns {bytes, timestamp, in_port}; swap
/// the whole objects, then hand the timestamps back to their positions.
void exchange_contents(Packet& a, Packet& b) {
  const TimestampNs ta = a.timestamp_ns();
  const TimestampNs tb = b.timestamp_ns();
  std::swap(a, b);
  a.set_timestamp_ns(ta);
  b.set_timestamp_ns(tb);
}

}  // namespace

bool swap_contents(std::vector<Packet>& packets, std::size_t i,
                   std::size_t j) {
  if (i >= packets.size() || j >= packets.size() || i == j) return false;
  exchange_contents(packets[i], packets[j]);
  return true;
}

bool rotate_window(std::vector<Packet>& packets, std::size_t i,
                   std::size_t len) {
  if (len < 2 || i >= packets.size() || len > packets.size() - i) return false;
  for (std::size_t k = 0; k + 1 < len; ++k) {
    exchange_contents(packets[i + k], packets[i + k + 1]);
  }
  return true;
}

bool duplicate_at(std::vector<Packet>& packets, std::size_t i) {
  if (i >= packets.size()) return false;
  packets.insert(packets.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                 packets[i]);
  return true;
}

}  // namespace bolt::net
