// Workload generation — the reproduction's stand-in for MoonGen + CASTAN.
//
// Every evaluation scenario in the paper is driven by a packet class
// (paper §5.1): unconstrained/adversarial traffic, broadcast/unicast MAC
// traffic, new vs established flows, heartbeats, LPM prefixes of specific
// lengths. The generators here synthesise PCAP-able packet vectors for each
// of those classes deterministically from a seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/addresses.h"
#include "net/flow.h"
#include "net/packet.h"

namespace bolt::net {

/// Timing knobs shared by all generators.
struct TrafficTiming {
  TimestampNs start_ns = 1'000'000'000;  ///< first packet timestamp
  TimestampNs gap_ns = 10'000;           ///< inter-arrival (100kpps default)
};

/// UDP packets drawn uniformly from a fixed pool of five-tuple flows.
struct UniformSpec {
  std::uint64_t seed = 1;
  std::size_t flow_pool = 1024;   ///< number of distinct flows
  std::size_t packet_count = 10'000;
  TrafficTiming timing;
  std::uint16_t in_port = 0;
  bool internal_side = true;  ///< NAT direction (internal -> external)
};
std::vector<Packet> uniform_random_traffic(const UniformSpec& spec);

/// Heavy-tailed flow-popularity traffic: flow ranks are drawn from a Zipf
/// distribution (P(rank r) ~ 1/r^skew), the regime where per-class hit
/// rates, chain lengths, and therefore violation rates diverge most from
/// uniform traffic. Rank 1 is the most popular flow; `skew` ~ 1.0 matches
/// the classic Internet mix, higher values concentrate harder. Ranks are
/// mapped to five-tuples through a seed-keyed permutation so the popular
/// flows do not cluster in tuple space (and therefore spread across
/// monitor partitions and hash buckets).
struct ZipfSpec {
  std::uint64_t seed = 1;
  std::size_t flow_pool = 4096;  ///< number of distinct flows (ranks)
  double skew = 1.0;             ///< Zipf exponent; 0 degenerates to uniform
  std::size_t packet_count = 10'000;
  TrafficTiming timing;
  std::uint16_t in_port = 0;
  bool internal_side = true;
};
std::vector<Packet> zipf_traffic(const ZipfSpec& spec);

/// Long-running operator traffic: a simulated multi-day trace compressed
/// into a bounded packet count. Traffic arrives in `bursts` evenly spaced
/// bursts across `duration_ns` (the paper's operator reality: diurnal /
/// periodic load, not a constant firehose). Within a burst, packets are
/// `burst_gap_ns` apart and flows are drawn Zipf from a working set that
/// rotates every `rotation_bursts` bursts — so the distinct-flow count
/// over the whole run vastly exceeds any flow table's capacity, and
/// between bursts every cached entry goes stale (TTLs are seconds, burst
/// spacing is hours). Each burst therefore opens with a mass-expiry event
/// — the paper's §5.3 pathological scenario — making this the canonical
/// input for the monitor's state-expiry and bounded-memory guarantees.
/// Deterministic in `seed`; a prefix of the trace is itself a valid
/// shorter run.
struct LongRunSpec {
  std::uint64_t seed = 1;
  std::size_t flow_pool = 1024;  ///< active working set (Zipf ranks)
  double skew = 1.1;
  std::size_t packet_count = 100'000;
  TimestampNs start_ns = 1'000'000'000;
  std::uint64_t duration_ns = 7ull * 24 * 3600 * 1'000'000'000ull;  ///< a week
  std::size_t bursts = 168;          ///< one per simulated hour by default
  std::uint64_t burst_gap_ns = 10'000;  ///< 100kpps within a burst
  std::size_t rotation_bursts = 4;   ///< working set rotates this often
  std::uint16_t in_port = 0;
  bool internal_side = true;
};
std::vector<Packet> long_run_traffic(const LongRunSpec& spec);

/// Flow-churn traffic: a working set of `active_flows` flows; with
/// probability `churn` a packet retires the oldest flow and starts a fresh
/// one. High churn exercises allocation; low churn exercises lookups.
struct ChurnSpec {
  std::uint64_t seed = 1;
  std::size_t active_flows = 512;
  double churn = 0.05;  ///< probability a packet begins a brand-new flow
  std::size_t packet_count = 20'000;
  TrafficTiming timing;
  std::uint16_t in_port = 0;
};
std::vector<Packet> churn_traffic(const ChurnSpec& spec);

/// Ethernet traffic for the MAC bridge: a pool of source stations sending
/// to known stations (unicast) or to ff:ff:ff:ff:ff:ff (broadcast).
struct BridgeSpec {
  std::uint64_t seed = 1;
  std::size_t stations = 256;
  double broadcast_fraction = 0.0;
  std::size_t packet_count = 10'000;
  TrafficTiming timing;
};
std::vector<Packet> bridge_traffic(const BridgeSpec& spec);

/// Adversarial bridge traffic (CASTAN-like): source MACs chosen so that
/// *every* station hashes to the same bucket of a `table_buckets`-bucket
/// table under the public mix64 hash (secret key assumed zero / leaked).
struct BridgeAttackSpec {
  std::uint64_t seed = 1;
  std::size_t stations = 64;
  std::size_t table_buckets = 1024;  ///< must be a power of two
  std::size_t packet_count = 2'000;
  TrafficTiming timing;
};
std::vector<Packet> bridge_collision_attack(const BridgeAttackSpec& spec);

/// Brute-force search for `count` distinct keys whose hash lands in bucket
/// `bucket` of a power-of-two table (under mix64 ^ key0). Exposed separately
/// so tests and state-synthesis can reuse it.
std::vector<std::uint64_t> colliding_keys(std::size_t count, std::size_t bucket,
                                          std::size_t table_buckets,
                                          std::uint64_t hash_key = 0,
                                          std::uint64_t start = 1);

/// The five-tuple flavour of colliding_keys: walks tuple_for_index() from
/// `start` and keeps tuples whose FiveTuple::key() lands in `bucket` of a
/// power-of-two flow table under `hash_key`. This is how an attacker with
/// the (public or leaked) table key builds bucket-chain traffic against the
/// NAT's and LB's flow tables — the adversarial synthesiser's raw material.
std::vector<FiveTuple> colliding_tuples(std::size_t count, std::size_t bucket,
                                        std::size_t table_buckets,
                                        std::uint64_t hash_key = 0,
                                        bool internal = true,
                                        std::uint64_t start = 0);

/// IPv4 traffic whose destination addresses match LPM prefixes with lengths
/// drawn from [min_prefix_len, max_prefix_len]. Used for LPM1 (>24) and
/// LPM2 (<=24).
struct LpmSpec {
  std::uint64_t seed = 1;
  int min_prefix_len = 8;
  int max_prefix_len = 24;
  std::size_t packet_count = 10'000;
  TrafficTiming timing;
  /// Route set generator callback: receives (prefix, length, index).
  /// The same routes must be installed in the router under test; see
  /// `lpm_route_plan` below.
  std::size_t routes_per_length = 16;
};
struct LpmRoute {
  std::uint32_t prefix = 0;  ///< host-order, low bits zero
  int length = 0;
  std::uint16_t port = 0;
};
struct LpmWorkload {
  std::vector<LpmRoute> routes;
  std::vector<Packet> packets;
  std::vector<int> matched_length;  ///< per packet, expected LPM match length
};
LpmWorkload lpm_traffic(const LpmSpec& spec);

/// Headroom-eroding traffic for the contract-drift detector (obs/drift.h):
/// IPv4-options packets for the static router whose options walk stays a
/// fixed `option_words` words long (so the contract's loop bound — and
/// therefore the predicted cost — is constant) while the *mix* of words
/// shifts over time: window by window, cheap NOP words are replaced by
/// RFC 781 timestamp words, the loop body's expensive branch. Measured
/// cost rises linearly toward the per-word worst case the bound charges,
/// so p99 utilization ramps monotonically toward — but never past — the
/// bound: zero violations, unambiguous drift. One erosion step per
/// `window_ns` window (align window_ns with epoch_ns * delta_every so
/// each delta window sees one step). Deterministic in `seed`.
struct DriftSpec {
  std::uint64_t seed = 1;
  std::size_t flow_pool = 256;
  std::size_t windows = 11;  ///< erosion steps (cheap-only -> expensive-only)
  std::uint64_t window_ns = 1'000'000'000;
  std::size_t packets_per_window = 1'000;
  TimestampNs start_ns = 1'000'000'000;
  std::size_t option_words = 10;  ///< fixed walk length (10 => maximal ihl 15)
  std::uint16_t in_port = 0;
};
std::vector<Packet> drift_traffic(const DriftSpec& spec);

/// Maglev heartbeat datagrams from backend servers (LB5 class).
struct HeartbeatSpec {
  std::uint64_t seed = 1;
  std::size_t backends = 16;
  std::size_t packet_count = 1'000;
  TrafficTiming timing;
  std::uint16_t heartbeat_port = 7000;  ///< UDP dst port the LB recognises
};
std::vector<Packet> heartbeat_traffic(const HeartbeatSpec& spec);

/// A single minimal non-IPv4 frame (the "invalid packet" class).
Packet invalid_packet(TimestampNs ts = 1'000'000'000);

/// Builds the canonical UDP packet for a five-tuple (convenience used by
/// generators, tests, and state synthesis).
Packet packet_for_tuple(const FiveTuple& t, TimestampNs ts,
                        std::uint16_t in_port = 0);

/// Deterministic five-tuple for an index (distinct tuples for distinct
/// indices). `internal` picks 10.0.0.0/8 sources (NAT inside) vs
/// 198.18.0.0/15 sources (outside).
FiveTuple tuple_for_index(std::uint64_t index, bool internal = true);

}  // namespace bolt::net
