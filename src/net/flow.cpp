#include "net/flow.h"

#include "net/headers.h"

namespace bolt::net {

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t FiveTuple::key() const {
  std::uint64_t a = (std::uint64_t(src_ip.value) << 32) | dst_ip.value;
  std::uint64_t b = (std::uint64_t(src_port) << 24) |
                    (std::uint64_t(dst_port) << 8) | protocol;
  return mix64(a) ^ mix64(b + 0x9e3779b97f4a7c15ULL);
}

std::optional<FiveTuple> extract_five_tuple(const Packet& packet) {
  const auto buf = packet.bytes();
  const auto eth = parse_ethernet(buf);
  if (!eth || eth->ether_type != kEtherTypeIpv4) return std::nullopt;
  const auto ip = parse_ipv4(buf, kEthernetHeaderSize);
  if (!ip) return std::nullopt;
  if (ip->protocol != kIpProtoTcp && ip->protocol != kIpProtoUdp) {
    return std::nullopt;
  }
  const std::size_t l4_off = kEthernetHeaderSize + ip->header_size();
  FiveTuple t;
  t.src_ip = ip->src;
  t.dst_ip = ip->dst;
  t.protocol = ip->protocol;
  if (ip->protocol == kIpProtoTcp) {
    const auto tcp = parse_tcp(buf, l4_off);
    if (!tcp) return std::nullopt;
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else {
    const auto udp = parse_udp(buf, l4_off);
    if (!udp) return std::nullopt;
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

}  // namespace bolt::net
