#include "net/checksum.h"

namespace bolt::net {

std::uint32_t checksum_accumulate(support::Span<const std::uint8_t> data,
                                  std::uint32_t accumulator) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    accumulator += (std::uint32_t(data[i]) << 8) | data[i + 1];
  }
  if (i < data.size()) {
    accumulator += std::uint32_t(data[i]) << 8;  // odd trailing byte
  }
  return accumulator;
}

std::uint16_t checksum_finish(std::uint32_t accumulator) {
  while (accumulator >> 16) {
    accumulator = (accumulator & 0xffff) + (accumulator >> 16);
  }
  return static_cast<std::uint16_t>(~accumulator & 0xffff);
}

std::uint16_t internet_checksum(support::Span<const std::uint8_t> data) {
  return checksum_finish(checksum_accumulate(data));
}

}  // namespace bolt::net
