#include "net/packet_builder.h"

#include "support/assert.h"

namespace bolt::net {

PacketBuilder::PacketBuilder() {
  eth_.src = MacAddress::from_u64(0x020000000001);
  eth_.dst = MacAddress::from_u64(0x020000000002);
  eth_.ether_type = kEtherTypeIpv4;
}

PacketBuilder& PacketBuilder::eth(const MacAddress& src, const MacAddress& dst,
                                  std::uint16_t ether_type) {
  eth_.src = src;
  eth_.dst = dst;
  eth_.ether_type = ether_type;
  return *this;
}

PacketBuilder& PacketBuilder::ether_type(std::uint16_t ether_type) {
  eth_.ether_type = ether_type;
  return *this;
}

PacketBuilder& PacketBuilder::ipv4(Ipv4Address src, Ipv4Address dst,
                                   std::uint8_t protocol, std::uint8_t ttl) {
  has_ip_ = true;
  ip_.src = src;
  ip_.dst = dst;
  ip_.protocol = protocol;
  ip_.ttl = ttl;
  eth_.ether_type = kEtherTypeIpv4;
  return *this;
}

PacketBuilder& PacketBuilder::ip_option(std::uint8_t kind,
                                        const std::vector<std::uint8_t>& payload) {
  if (kind == kIpOptNop || kind == kIpOptEnd) {
    ip_options_.push_back(kind);
  } else {
    ip_options_.push_back(kind);
    ip_options_.push_back(static_cast<std::uint8_t>(2 + payload.size()));
    ip_options_.insert(ip_options_.end(), payload.begin(), payload.end());
  }
  return *this;
}

PacketBuilder& PacketBuilder::ip_nop_options(int n) {
  for (int i = 0; i < n; ++i) ip_option(kIpOptNop);
  return *this;
}

PacketBuilder& PacketBuilder::ip_timestamp_option(int slots) {
  // RFC 781 layout: kind, length, pointer, overflow/flags, then 4B slots.
  std::vector<std::uint8_t> payload;
  payload.push_back(5);  // pointer: first free slot
  payload.push_back(0);  // flags: timestamps only
  payload.resize(2 + std::size_t(slots) * 4, 0);
  return ip_option(kIpOptTimestamp, payload);
}

PacketBuilder& PacketBuilder::udp(std::uint16_t src_port, std::uint16_t dst_port) {
  l4_ = L4::kUdp;
  sport_ = src_port;
  dport_ = dst_port;
  if (has_ip_) ip_.protocol = kIpProtoUdp;
  return *this;
}

PacketBuilder& PacketBuilder::tcp(std::uint16_t src_port, std::uint16_t dst_port) {
  l4_ = L4::kTcp;
  sport_ = src_port;
  dport_ = dst_port;
  if (has_ip_) ip_.protocol = kIpProtoTcp;
  return *this;
}

PacketBuilder& PacketBuilder::payload(std::vector<std::uint8_t> bytes) {
  payload_ = std::move(bytes);
  return *this;
}

PacketBuilder& PacketBuilder::frame_size(std::size_t size) {
  BOLT_CHECK(size >= kMinFrameSize && size <= kMaxFrameSize,
             "frame size out of range");
  frame_size_ = size;
  return *this;
}

PacketBuilder& PacketBuilder::timestamp_ns(TimestampNs t) {
  timestamp_ns_ = t;
  return *this;
}

PacketBuilder& PacketBuilder::in_port(std::uint16_t port) {
  in_port_ = port;
  return *this;
}

Packet PacketBuilder::build() const {
  std::vector<std::uint8_t> options = ip_options_;
  while (options.size() % 4 != 0) options.push_back(kIpOptEnd);
  BOLT_CHECK(options.size() <= 40, "IPv4 options exceed 40 bytes");

  const std::size_t ip_header = has_ip_ ? kIpv4MinHeaderSize + options.size() : 0;
  std::size_t l4_header = 0;
  if (l4_ == L4::kUdp) l4_header = kUdpHeaderSize;
  if (l4_ == L4::kTcp) l4_header = kTcpMinHeaderSize;

  std::size_t natural =
      kEthernetHeaderSize + ip_header + l4_header + payload_.size();
  std::size_t total = std::max(natural, kMinFrameSize);
  if (frame_size_ != 0) {
    BOLT_CHECK(frame_size_ >= natural, "frame_size smaller than headers+payload");
    total = frame_size_;
  }

  std::vector<std::uint8_t> data(total, 0);
  write_ethernet(data, eth_);

  if (has_ip_) {
    Ipv4Header ip = ip_;
    ip.options = options;
    ip.total_length = static_cast<std::uint16_t>(total - kEthernetHeaderSize);
    write_ipv4(data, kEthernetHeaderSize, ip);

    const std::size_t l4_off = kEthernetHeaderSize + ip_header;
    if (l4_ == L4::kUdp) {
      UdpHeader u;
      u.src_port = sport_;
      u.dst_port = dport_;
      u.length = static_cast<std::uint16_t>(total - l4_off);
      write_udp(data, l4_off, u);
    } else if (l4_ == L4::kTcp) {
      TcpHeader t;
      t.src_port = sport_;
      t.dst_port = dport_;
      t.flags = 0x18;  // PSH|ACK, an established-connection segment
      t.window = 0xffff;
      write_tcp(data, l4_off, t);
    }
    const std::size_t payload_off = l4_off + l4_header;
    for (std::size_t i = 0; i < payload_.size(); ++i) {
      data[payload_off + i] = payload_[i];
    }
  } else {
    // Non-IP frame: payload goes right after the Ethernet header.
    for (std::size_t i = 0; i < payload_.size() &&
                            kEthernetHeaderSize + i < data.size();
         ++i) {
      data[kEthernetHeaderSize + i] = payload_[i];
    }
  }

  Packet pkt(std::move(data), timestamp_ns_, in_port_);
  return pkt;
}

}  // namespace bolt::net
