// Fluent construction of well-formed test packets.
//
// Workload generators and tests use this to assemble Ethernet/IPv4/TCP/UDP
// frames (optionally with IPv4 options) without hand-computing offsets,
// lengths, or checksums.
#pragma once

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/packet.h"

namespace bolt::net {

class PacketBuilder {
 public:
  PacketBuilder();

  PacketBuilder& eth(const MacAddress& src, const MacAddress& dst,
                     std::uint16_t ether_type = kEtherTypeIpv4);
  /// Sets a non-IPv4 ethertype (for "invalid packet" classes).
  PacketBuilder& ether_type(std::uint16_t ether_type);

  PacketBuilder& ipv4(Ipv4Address src, Ipv4Address dst,
                      std::uint8_t protocol = kIpProtoUdp,
                      std::uint8_t ttl = 64);
  /// Appends raw IPv4 option bytes (will be padded to a 4-byte boundary
  /// with END bytes at build time).
  PacketBuilder& ip_option(std::uint8_t kind,
                           const std::vector<std::uint8_t>& payload = {});
  /// Appends `n` one-byte NOP options (the cheap way to get "n options").
  PacketBuilder& ip_nop_options(int n);
  /// Appends an RFC 781 timestamp option with room for `slots` timestamps.
  PacketBuilder& ip_timestamp_option(int slots);

  PacketBuilder& udp(std::uint16_t src_port, std::uint16_t dst_port);
  PacketBuilder& tcp(std::uint16_t src_port, std::uint16_t dst_port);

  PacketBuilder& payload(std::vector<std::uint8_t> bytes);
  /// Pads the payload so the final frame is exactly `size` bytes.
  PacketBuilder& frame_size(std::size_t size);

  PacketBuilder& timestamp_ns(TimestampNs t);
  PacketBuilder& in_port(std::uint16_t port);

  /// Assembles the frame: computes lengths and checksums, applies padding.
  Packet build() const;

 private:
  enum class L4 { kNone, kUdp, kTcp };

  EthernetHeader eth_{};
  bool has_ip_ = false;
  Ipv4Header ip_{};
  std::vector<std::uint8_t> ip_options_;
  L4 l4_ = L4::kNone;
  std::uint16_t sport_ = 0, dport_ = 0;
  std::vector<std::uint8_t> payload_;
  std::size_t frame_size_ = 0;  // 0 = natural size (>= kMinFrameSize)
  TimestampNs timestamp_ns_ = 0;
  std::uint16_t in_port_ = 0;
};

}  // namespace bolt::net
