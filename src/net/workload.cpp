#include "net/workload.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "net/packet_builder.h"
#include "support/assert.h"
#include "support/random.h"

namespace bolt::net {

FiveTuple tuple_for_index(std::uint64_t index, bool internal) {
  FiveTuple t;
  if (internal) {
    t.src_ip = Ipv4Address{0x0a000000u | static_cast<std::uint32_t>(index % (1u << 24))};
    t.dst_ip = Ipv4Address{0xc6120000u | static_cast<std::uint32_t>((index / 7) % 65536)};
  } else {
    t.src_ip = Ipv4Address{0xc6120000u | static_cast<std::uint32_t>(index % 65536)};
    t.dst_ip = Ipv4Address{0x0a000000u | static_cast<std::uint32_t>((index / 3) % (1u << 24))};
  }
  t.src_port = static_cast<std::uint16_t>(1024 + (index % 60000));
  t.dst_port = static_cast<std::uint16_t>(80 + (index % 8));
  t.protocol = kIpProtoUdp;
  return t;
}

Packet packet_for_tuple(const FiveTuple& t, TimestampNs ts,
                        std::uint16_t in_port) {
  PacketBuilder b;
  b.eth(MacAddress::from_u64(0x020000000000ULL | (t.src_ip.value & 0xffffff)),
        MacAddress::from_u64(0x020000001000ULL | (t.dst_ip.value & 0xffffff)));
  b.ipv4(t.src_ip, t.dst_ip, t.protocol);
  if (t.protocol == kIpProtoTcp) {
    b.tcp(t.src_port, t.dst_port);
  } else {
    b.udp(t.src_port, t.dst_port);
  }
  b.timestamp_ns(ts).in_port(in_port);
  return b.build();
}

Packet invalid_packet(TimestampNs ts) {
  PacketBuilder b;
  b.ether_type(kEtherTypeArp).timestamp_ns(ts);
  return b.build();
}

std::vector<Packet> uniform_random_traffic(const UniformSpec& spec) {
  support::Rng rng(spec.seed);
  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    const std::uint64_t flow = rng.below(spec.flow_pool);
    out.push_back(packet_for_tuple(tuple_for_index(flow, spec.internal_side),
                                   ts, spec.in_port));
    ts += spec.timing.gap_ns;
  }
  return out;
}

std::vector<Packet> zipf_traffic(const ZipfSpec& spec) {
  BOLT_CHECK(spec.flow_pool > 0, "zipf_traffic needs a non-empty flow pool");
  support::Rng rng(spec.seed);

  // Cumulative mass of 1/r^skew for r = 1..flow_pool; sampling is a binary
  // search over the prefix sums (exact inverse-CDF, no rejection).
  std::vector<double> cumulative(spec.flow_pool);
  double total = 0.0;
  for (std::size_t r = 0; r < spec.flow_pool; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), spec.skew);
    cumulative[r] = total;
  }

  // Seed-keyed permutation of rank -> flow index: popular flows land in
  // unrelated parts of the tuple space instead of the low indices.
  std::vector<std::uint64_t> flow_of_rank(spec.flow_pool);
  for (std::size_t r = 0; r < spec.flow_pool; ++r) flow_of_rank[r] = r;
  for (std::size_t r = spec.flow_pool; r > 1; --r) {
    std::swap(flow_of_rank[r - 1], flow_of_rank[rng.below(r)]);
  }

  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    const double u = rng.uniform() * total;
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::uint64_t flow = flow_of_rank[std::min(rank, spec.flow_pool - 1)];
    out.push_back(packet_for_tuple(tuple_for_index(flow, spec.internal_side),
                                   ts, spec.in_port));
    ts += spec.timing.gap_ns;
  }
  return out;
}

std::vector<Packet> long_run_traffic(const LongRunSpec& spec) {
  BOLT_CHECK(spec.flow_pool > 0, "long_run_traffic needs a non-empty pool");
  BOLT_CHECK(spec.bursts > 0, "long_run_traffic needs at least one burst");
  BOLT_CHECK(spec.rotation_bursts > 0,
             "long_run_traffic needs a non-zero rotation period");
  const std::uint64_t burst_spacing = spec.duration_ns / spec.bursts;
  const std::size_t per_burst =
      (spec.packet_count + spec.bursts - 1) / spec.bursts;
  BOLT_CHECK(static_cast<std::uint64_t>(per_burst) * spec.burst_gap_ns <
                 burst_spacing,
             "long_run_traffic: bursts overlap (raise duration_ns or bursts)");
  support::Rng rng(spec.seed);

  // Zipf mass over the working-set ranks (same inverse-CDF sampling as
  // zipf_traffic).
  std::vector<double> cumulative(spec.flow_pool);
  double total = 0.0;
  for (std::size_t r = 0; r < spec.flow_pool; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), spec.skew);
    cumulative[r] = total;
  }

  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    const std::size_t burst = i / per_burst;
    const std::size_t in_burst = i % per_burst;
    const TimestampNs ts = spec.start_ns + burst * burst_spacing +
                           in_burst * spec.burst_gap_ns;
    const double u = rng.uniform() * total;
    const std::size_t rank = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    // The working set rotates wholesale every rotation_bursts bursts:
    // rank r of generation g is a globally fresh flow, scattered through
    // tuple space by the mix (so generations do not cluster in buckets or
    // monitor partitions).
    const std::uint64_t generation = burst / spec.rotation_bursts;
    const std::uint64_t flow = mix64(
        (generation << 32) ^ std::min<std::uint64_t>(rank, spec.flow_pool - 1) ^
        (spec.seed * 0x9E3779B97F4A7C15ULL));
    out.push_back(packet_for_tuple(tuple_for_index(flow, spec.internal_side),
                                   ts, spec.in_port));
  }
  return out;
}

std::vector<Packet> churn_traffic(const ChurnSpec& spec) {
  support::Rng rng(spec.seed);
  std::deque<std::uint64_t> active;
  std::uint64_t next_flow = 0;
  for (std::size_t i = 0; i < spec.active_flows; ++i) active.push_back(next_flow++);

  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    std::uint64_t flow;
    if (rng.chance(spec.churn)) {
      // Retire a *random* active flow (real flow lifetimes are not FIFO)
      // and admit a brand-new one, sending its first packet.
      flow = next_flow++;
      active[rng.below(active.size())] = flow;
    } else {
      flow = active[rng.below(active.size())];
    }
    out.push_back(packet_for_tuple(tuple_for_index(flow), ts, spec.in_port));
    ts += spec.timing.gap_ns;
  }
  return out;
}

std::vector<Packet> bridge_traffic(const BridgeSpec& spec) {
  support::Rng rng(spec.seed);
  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    const std::uint64_t src_station = rng.below(spec.stations);
    const MacAddress src = MacAddress::from_u64(0x020000100000ULL + src_station);
    MacAddress dst;
    if (rng.chance(spec.broadcast_fraction)) {
      dst = MacAddress::broadcast();
    } else {
      std::uint64_t dst_station = rng.below(spec.stations);
      if (dst_station == src_station) {
        dst_station = (dst_station + 1) % spec.stations;
      }
      dst = MacAddress::from_u64(0x020000100000ULL + dst_station);
    }
    PacketBuilder b;
    b.eth(src, dst)
        .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
              Ipv4Address::from_octets(10, 0, 0, 2))
        .udp(4000, 4001)
        .timestamp_ns(ts)
        .in_port(static_cast<std::uint16_t>(src_station % 8));
    out.push_back(b.build());
    ts += spec.timing.gap_ns;
  }
  return out;
}

std::vector<std::uint64_t> colliding_keys(std::size_t count, std::size_t bucket,
                                          std::size_t table_buckets,
                                          std::uint64_t hash_key,
                                          std::uint64_t start) {
  BOLT_CHECK(table_buckets != 0 && (table_buckets & (table_buckets - 1)) == 0,
             "table_buckets must be a power of two");
  std::vector<std::uint64_t> keys;
  keys.reserve(count);
  const std::uint64_t mask = table_buckets - 1;
  for (std::uint64_t candidate = start; keys.size() < count; ++candidate) {
    if ((mix64(candidate ^ hash_key) & mask) == bucket) {
      keys.push_back(candidate);
    }
  }
  return keys;
}

std::vector<FiveTuple> colliding_tuples(std::size_t count, std::size_t bucket,
                                        std::size_t table_buckets,
                                        std::uint64_t hash_key, bool internal,
                                        std::uint64_t start) {
  BOLT_CHECK(table_buckets != 0 && (table_buckets & (table_buckets - 1)) == 0,
             "table_buckets must be a power of two");
  std::vector<FiveTuple> tuples;
  tuples.reserve(count);
  const std::uint64_t mask = table_buckets - 1;
  for (std::uint64_t index = start; tuples.size() < count; ++index) {
    const FiveTuple t = tuple_for_index(index, internal);
    if ((mix64(t.key() ^ hash_key) & mask) == bucket) tuples.push_back(t);
  }
  return tuples;
}

std::vector<Packet> bridge_collision_attack(const BridgeAttackSpec& spec) {
  support::Rng rng(spec.seed);
  // MAC-table keys are the 48-bit MAC as an integer; pick MACs in the
  // locally-administered range whose hash collides in bucket 0.
  const std::vector<std::uint64_t> macs = colliding_keys(
      spec.stations, /*bucket=*/0, spec.table_buckets, /*hash_key=*/0,
      /*start=*/0x020000200000ULL);
  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    const std::uint64_t src = macs[rng.below(macs.size())];
    std::uint64_t dst = macs[rng.below(macs.size())];
    if (dst == src) dst = macs[(i + 1) % macs.size()];
    PacketBuilder b;
    b.eth(MacAddress::from_u64(src), MacAddress::from_u64(dst))
        .ipv4(Ipv4Address::from_octets(10, 0, 0, 1),
              Ipv4Address::from_octets(10, 0, 0, 2))
        .udp(4000, 4001)
        .timestamp_ns(ts);
    out.push_back(b.build());
    ts += spec.timing.gap_ns;
  }
  return out;
}

LpmWorkload lpm_traffic(const LpmSpec& spec) {
  BOLT_CHECK(spec.min_prefix_len >= 1 && spec.max_prefix_len <= 32 &&
                 spec.min_prefix_len <= spec.max_prefix_len,
             "bad LPM prefix length range");
  support::Rng rng(spec.seed);
  LpmWorkload out;

  // Install routes: for each length in range, `routes_per_length` prefixes
  // spread across the address space. Longer routes nest inside shorter ones
  // only by accident; matched length is computed against the final set.
  for (int len = spec.min_prefix_len; len <= spec.max_prefix_len; ++len) {
    for (std::size_t r = 0; r < spec.routes_per_length; ++r) {
      const std::uint32_t mask =
          len == 32 ? 0xffffffffu : ~((1u << (32 - len)) - 1);
      LpmRoute route;
      route.prefix = static_cast<std::uint32_t>(rng.next()) & mask;
      route.length = len;
      route.port = static_cast<std::uint16_t>(1 + (rng.next() % 14));
      out.routes.push_back(route);
    }
  }

  auto matched = [&](std::uint32_t addr) {
    int best = 0;
    for (const LpmRoute& r : out.routes) {
      const std::uint32_t mask =
          r.length == 32 ? 0xffffffffu : ~((1u << (32 - r.length)) - 1);
      if ((addr & mask) == r.prefix && r.length > best) best = r.length;
    }
    return best;
  };

  out.packets.reserve(spec.packet_count);
  out.matched_length.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    // Aim at a random installed route; add host bits below its length.
    const LpmRoute& target = out.routes[rng.below(out.routes.size())];
    const std::uint32_t host_bits =
        target.length == 32
            ? 0
            : static_cast<std::uint32_t>(rng.next()) &
                  ((1u << (32 - target.length)) - 1);
    const Ipv4Address dst{target.prefix | host_bits};
    PacketBuilder b;
    b.ipv4(Ipv4Address::from_octets(192, 0, 2, 1), dst).udp(5000, 5001)
        .timestamp_ns(ts);
    out.packets.push_back(b.build());
    out.matched_length.push_back(matched(dst.value));
    ts += spec.timing.gap_ns;
  }
  return out;
}

std::vector<Packet> drift_traffic(const DriftSpec& spec) {
  BOLT_CHECK(spec.option_words <= 10,
             "drift_traffic: at most 10 option words fit an IPv4 header");
  support::Rng rng(spec.seed);
  std::vector<Packet> out;
  out.reserve(spec.windows * spec.packets_per_window);
  // Packets spread evenly inside each window, strictly before its end.
  const std::uint64_t gap = spec.window_ns / (spec.packets_per_window + 1);
  for (std::size_t w = 0; w < spec.windows; ++w) {
    // Expensive (timestamp) words this window: 0 at w=0 ramping linearly
    // to all of them in the last window. Total word count never changes.
    const std::size_t expensive =
        spec.windows > 1
            ? w * spec.option_words / (spec.windows - 1)
            : spec.option_words;
    for (std::size_t i = 0; i < spec.packets_per_window; ++i) {
      const FiveTuple t = tuple_for_index(rng.below(spec.flow_pool), true);
      PacketBuilder b;
      b.eth(MacAddress::from_u64(0x020000000000ULL |
                                 (t.src_ip.value & 0xffffff)),
            MacAddress::from_u64(0x020000001000ULL |
                                 (t.dst_ip.value & 0xffffff)));
      b.ipv4(t.src_ip, t.dst_ip);
      // A zero-slot RFC 781 timestamp option is exactly one 4-byte word
      // starting with kind 68 — one expensive loop trip; 4 NOPs are one
      // cheap word.
      for (std::size_t o = 0; o < expensive; ++o) b.ip_timestamp_option(0);
      b.ip_nop_options(static_cast<int>(4 * (spec.option_words - expensive)));
      b.udp(t.src_port, t.dst_port);
      b.timestamp_ns(spec.start_ns + w * spec.window_ns + (i + 1) * gap);
      b.in_port(spec.in_port);
      out.push_back(b.build());
    }
  }
  return out;
}

std::vector<Packet> heartbeat_traffic(const HeartbeatSpec& spec) {
  support::Rng rng(spec.seed);
  std::vector<Packet> out;
  out.reserve(spec.packet_count);
  TimestampNs ts = spec.timing.start_ns;
  for (std::size_t i = 0; i < spec.packet_count; ++i) {
    const std::uint32_t backend =
        static_cast<std::uint32_t>(rng.below(spec.backends));
    PacketBuilder b;
    // Backends live in 172.16.0.0/16; heartbeat = UDP to the magic port.
    b.ipv4(Ipv4Address{0xac100000u | (backend + 1)},
           Ipv4Address::from_octets(10, 0, 0, 100))
        .udp(static_cast<std::uint16_t>(30000 + backend), spec.heartbeat_port)
        .timestamp_ns(ts)
        .in_port(1);
    out.push_back(b.build());
    ts += spec.timing.gap_ns;
  }
  return out;
}

}  // namespace bolt::net
