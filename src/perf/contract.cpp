#include "perf/contract.h"

#include <algorithm>

#include "support/assert.h"
#include "support/strings.h"

namespace bolt::perf {

MetricExprs MetricExprs::operator+(const MetricExprs& other) const {
  MetricExprs out;
  for (Metric m : kAllMetrics) out.set(m, get(m) + other.get(m));
  return out;
}

MetricExprs MetricExprs::upper_max(const MetricExprs& a, const MetricExprs& b) {
  MetricExprs out;
  for (Metric m : kAllMetrics) {
    out.set(m, PerfExpr::upper_max(a.get(m), b.get(m)));
  }
  return out;
}

void Contract::add(ContractEntry entry) { entries_.push_back(std::move(entry)); }

const ContractEntry* Contract::find(const std::string& label) const {
  for (const auto& e : entries_) {
    if (e.input_class == label) return &e;
  }
  return nullptr;
}

const ContractEntry& Contract::require(const std::string& label) const {
  const ContractEntry* e = find(label);
  BOLT_CHECK(e != nullptr,
             "contract for " + nf_name_ + " has no input class '" + label + "'");
  return *e;
}

std::int64_t Contract::worst_case(Metric metric, const PcvBinding& binding) const {
  std::int64_t worst = 0;
  for (const auto& e : entries_) {
    worst = std::max(worst, e.perf.get(metric).eval(binding));
  }
  return worst;
}

std::int64_t Contract::worst_case_matching(Metric metric,
                                           const PcvBinding& binding,
                                           const std::string& substr) const {
  std::int64_t worst = 0;
  for (const auto& e : entries_) {
    if (e.input_class.find(substr) == std::string::npos) continue;
    worst = std::max(worst, e.perf.get(metric).eval(binding));
  }
  return worst;
}

std::string Contract::str(const PcvRegistry& reg, Metric metric) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", std::string(metric_name(metric)), "Paths"});
  for (const auto& e : entries_) {
    rows.push_back({e.input_class, e.perf.get(metric).str(reg),
                    std::to_string(e.paths_coalesced)});
  }
  return "Performance contract for " + nf_name_ + " [" +
         std::string(metric_name(metric)) + "]\n" +
         support::render_table(rows);
}

std::string Contract::str_all(const PcvRegistry& reg) const {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", "Instructions", "Memory Accesses", "Cycles"});
  for (const auto& e : entries_) {
    rows.push_back({e.input_class,
                    e.perf.get(Metric::kInstructions).str(reg),
                    e.perf.get(Metric::kMemoryAccesses).str(reg),
                    e.perf.get(Metric::kCycles).str(reg)});
  }
  return "Performance contract for " + nf_name_ + "\n" +
         support::render_table(rows);
}

void MethodContract::add_case(const std::string& case_label, MetricExprs exprs) {
  BOLT_CHECK(cases_.find(case_label) == cases_.end(),
             "duplicate case '" + case_label + "' in contract for " + method_name_);
  cases_.emplace(case_label, std::move(exprs));
}

bool MethodContract::has_case(const std::string& case_label) const {
  return cases_.find(case_label) != cases_.end();
}

const MetricExprs& MethodContract::for_case(const std::string& case_label) const {
  auto it = cases_.find(case_label);
  BOLT_CHECK(it != cases_.end(), "method contract for " + method_name_ +
                                     " has no case '" + case_label + "'");
  return it->second;
}

void MethodContract::set_unique_lines(const std::string& case_label,
                                      PerfExpr expr) {
  BOLT_CHECK(cases_.find(case_label) != cases_.end(),
             "set_unique_lines for unknown case '" + case_label + "'");
  unique_lines_[case_label] = std::move(expr);
}

const PerfExpr& MethodContract::unique_lines(const std::string& case_label) const {
  auto it = unique_lines_.find(case_label);
  if (it != unique_lines_.end()) return it->second;
  return for_case(case_label).get(Metric::kMemoryAccesses);
}

std::vector<std::string> MethodContract::case_labels() const {
  std::vector<std::string> out;
  out.reserve(cases_.size());
  for (const auto& [label, exprs] : cases_) out.push_back(label);
  return out;
}

}  // namespace bolt::perf
