// Performance contracts (paper §2.2).
//
// A contract C^U_N maps *input classes* to *performance expressions*:
// for every class of inputs (e.g. "valid IPv4 packets"), the contract gives
// a closed-form expression over PCVs that upper-bounds the chosen metric for
// any input in that class. A `Contract` here carries expressions for all
// three metrics side by side, the way the paper's tables present them.
//
// Contracts exist at two granularities:
//  * `MethodContract` — the manually derived, per-case contract of one
//    stateful data-structure method (paper §3.2, the "base case").
//  * `Contract` — the automatically generated contract of a whole NF
//    (or NF chain), one entry per input class.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "perf/metric.h"
#include "perf/pcv.h"
#include "perf/perf_expr.h"

namespace bolt::perf {

/// Per-metric bundle of expressions. Missing metrics read as zero.
class MetricExprs {
 public:
  MetricExprs() = default;

  void set(Metric m, PerfExpr e) { exprs_[metric_index(m)] = std::move(e); }
  const PerfExpr& get(Metric m) const { return exprs_[metric_index(m)]; }

  MetricExprs operator+(const MetricExprs& other) const;
  static MetricExprs upper_max(const MetricExprs& a, const MetricExprs& b);

 private:
  std::array<PerfExpr, 3> exprs_;
};

/// One entry of an NF contract: an input class plus its expressions.
struct ContractEntry {
  std::string input_class;    ///< short label, e.g. "Unknown Source MAC; Rehashing"
  std::string description;    ///< human-readable constraint summary
  MetricExprs perf;
  std::size_t paths_coalesced = 1;  ///< how many symbex paths were folded in
};

/// Contract of a whole NF: input class -> per-metric expressions.
class Contract {
 public:
  explicit Contract(std::string nf_name = "") : nf_name_(std::move(nf_name)) {}

  const std::string& nf_name() const { return nf_name_; }

  void add(ContractEntry entry);
  /// Pre-sizes the entry vector (the generator knows the class count).
  void reserve(std::size_t n) { entries_.reserve(n); }
  const std::vector<ContractEntry>& entries() const { return entries_; }

  /// Entry whose input_class matches `label` exactly, or nullptr.
  const ContractEntry* find(const std::string& label) const;
  /// Like find(), but aborts when missing (for experiment harnesses).
  const ContractEntry& require(const std::string& label) const;

  /// Worst-case value of `metric` across all entries at the given binding —
  /// this is what "unconstrained traffic" queries return (paper §5.1).
  std::int64_t worst_case(Metric metric, const PcvBinding& binding) const;

  /// Worst-case restricted to entries whose label contains `substr`.
  std::int64_t worst_case_matching(Metric metric, const PcvBinding& binding,
                                   const std::string& substr) const;

  /// Renders the contract as an aligned text table in the paper's style.
  std::string str(const PcvRegistry& reg, Metric metric) const;
  /// All metrics side by side.
  std::string str_all(const PcvRegistry& reg) const;

 private:
  std::string nf_name_;
  std::vector<ContractEntry> entries_;
};

/// Manually derived contract for one stateful data-structure method.
///
/// A method can behave differently depending on the *abstract state* it finds
/// (e.g. flow present vs absent); each such case has its own expressions. The
/// symbolic model of the method emits a case label per forked outcome, and
/// Algorithm 2 (line 11) selects the matching case here.
class MethodContract {
 public:
  MethodContract() = default;
  explicit MethodContract(std::string method_name)
      : method_name_(std::move(method_name)) {}

  const std::string& method_name() const { return method_name_; }

  void add_case(const std::string& case_label, MetricExprs exprs);
  bool has_case(const std::string& case_label) const;
  /// Expressions for a case; aborts if the case is unknown (a model/contract
  /// mismatch is a library bug we want to fail loudly on).
  const MetricExprs& for_case(const std::string& case_label) const;

  /// Unique-cache-line accesses of a case: the subset of memory accesses
  /// that touch a line the *same call* has not provably touched before.
  /// The conservative cycle model charges these main-memory latency and the
  /// remainder L1 latency (spatial/temporal locality the expert can prove
  /// from the structure's layout — paper §3.5). Defaults to the full MA
  /// expression (maximally conservative) when unset.
  void set_unique_lines(const std::string& case_label, PerfExpr expr);
  const PerfExpr& unique_lines(const std::string& case_label) const;

  std::vector<std::string> case_labels() const;

 private:
  std::string method_name_;
  std::map<std::string, MetricExprs> cases_;
  std::map<std::string, PerfExpr> unique_lines_;
};

}  // namespace bolt::perf
