// JSON serialisation for contracts — the interchange format a network
// operator's tooling would consume (the paper argues operators use
// contracts *without* access to the NF implementation; this is the
// artifact they would actually be handed).
//
// Schema (stable, versioned):
// {
//   "version": 1,
//   "nf": "bridge",
//   "pcvs": [{"name": "e", "description": "..."}, ...],
//   "entries": [
//     {
//       "input_class": "...",
//       "paths_coalesced": 3,
//       "metrics": {
//         "instructions": [{"coeff": 245, "pcvs": ["e"]},
//                          {"coeff": 82, "pcvs": ["e", "c"]},
//                          {"coeff": 882, "pcvs": []}],
//         ...
//       }
//     }, ...
//   ]
// }
//
// The writer/parser are self-contained (no external JSON dependency).
#pragma once

#include <string>

#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::perf {

/// Serialises a contract (and the PCVs it references) to JSON.
std::string contract_to_json(const Contract& contract, const PcvRegistry& reg);

/// Parses a contract back. PCVs are interned into `reg`. Aborts on
/// malformed input (contracts are trusted build artifacts).
Contract contract_from_json(const std::string& json, PcvRegistry& reg);

}  // namespace bolt::perf
