// JSON serialisation for contracts — the interchange format a network
// operator's tooling would consume (the paper argues operators use
// contracts *without* access to the NF implementation; this is the
// artifact they would actually be handed).
//
// Schema (stable, versioned):
// {
//   "version": 1,
//   "nf": "bridge",
//   "pcvs": [{"name": "e", "description": "..."}, ...],
//   "entries": [
//     {
//       "input_class": "...",
//       "paths_coalesced": 3,
//       "metrics": {
//         "instructions": [{"coeff": 245, "pcvs": ["e"]},
//                          {"coeff": 82, "pcvs": ["e", "c"]},
//                          {"coeff": 882, "pcvs": []}],
//         ...
//       }
//     }, ...
//   ]
// }
//
// The writer/parser are self-contained (no external JSON dependency).
#pragma once

#include <string>

#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::perf {

/// The contract artifact schema version. Bump it when the JSON layout
/// changes in any way — tests/test_contract_golden.cpp pins the committed
/// golden artifacts byte-for-byte, so unversioned drift fails loudly.
inline constexpr std::int64_t kContractSchemaVersion = 1;

/// Serialises a contract (and the PCVs it references) to JSON.
std::string contract_to_json(const Contract& contract, const PcvRegistry& reg);

/// Parses a contract back. PCVs are interned into `reg`. Aborts on
/// malformed input (contracts are trusted build artifacts).
Contract contract_from_json(const std::string& json, PcvRegistry& reg);

/// Writes the contract artifact to `path` (the operator's "store" step).
/// Returns false on I/O failure.
bool save_contract(const std::string& path, const Contract& contract,
                   const PcvRegistry& reg);

/// Loads a stored contract artifact. PCVs are interned into `reg` in file
/// order (so a freshly loaded registry reproduces the generation-side
/// name->id mapping). Aborts on a missing file, malformed JSON, or a
/// schema-version mismatch.
Contract load_contract(const std::string& path, PcvRegistry& reg);

}  // namespace bolt::perf
