#include "perf/perf_expr.h"

#include <algorithm>

#include "support/assert.h"

namespace bolt::perf {

Monomial Monomial::pcv(PcvId id) {
  Monomial m;
  m.factors_.emplace_back(id, 1);
  return m;
}

Monomial Monomial::operator*(const Monomial& other) const {
  Monomial out;
  auto a = factors_.begin();
  auto b = other.factors_.begin();
  while (a != factors_.end() || b != other.factors_.end()) {
    if (b == other.factors_.end() || (a != factors_.end() && a->first < b->first)) {
      out.factors_.push_back(*a++);
    } else if (a == factors_.end() || b->first < a->first) {
      out.factors_.push_back(*b++);
    } else {
      out.factors_.emplace_back(a->first, a->second + b->second);
      ++a;
      ++b;
    }
  }
  return out;
}

int Monomial::degree() const {
  int d = 0;
  for (const auto& [id, exp] : factors_) d += exp;
  return d;
}

std::uint64_t Monomial::eval(const PcvBinding& binding) const {
  std::uint64_t out = 1;
  for (const auto& [id, exp] : factors_) {
    const std::uint64_t v = binding.get(id);
    for (int i = 0; i < exp; ++i) out *= v;
  }
  return out;
}

std::string Monomial::str(const PcvRegistry& reg) const {
  std::string out;
  for (const auto& [id, exp] : factors_) {
    for (int i = 0; i < exp; ++i) {
      if (!out.empty()) out += "*";
      out += reg.name(id);
    }
  }
  return out;
}

PerfExpr PerfExpr::constant(std::int64_t value) {
  PerfExpr e;
  e.add_term(Monomial{}, value);
  return e;
}

PerfExpr PerfExpr::pcv(PcvId id) {
  PerfExpr e;
  e.add_term(Monomial::pcv(id), 1);
  return e;
}

PerfExpr PerfExpr::term(std::int64_t coefficient, const Monomial& monomial) {
  PerfExpr e;
  e.add_term(monomial, coefficient);
  return e;
}

void PerfExpr::add_term(const Monomial& m, std::int64_t coefficient) {
  if (coefficient == 0) return;
  auto [it, inserted] = terms_.emplace(m, coefficient);
  if (!inserted) {
    it->second += coefficient;
    if (it->second == 0) terms_.erase(it);
  }
}

PerfExpr PerfExpr::operator+(const PerfExpr& other) const {
  PerfExpr out = *this;
  out += other;
  return out;
}

PerfExpr& PerfExpr::operator+=(const PerfExpr& other) {
  for (const auto& [m, c] : other.terms_) add_term(m, c);
  return *this;
}

PerfExpr PerfExpr::operator*(const PerfExpr& other) const {
  PerfExpr out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : other.terms_) {
      out.add_term(ma * mb, ca * cb);
    }
  }
  return out;
}

PerfExpr PerfExpr::scaled(std::int64_t factor) const {
  PerfExpr out;
  for (const auto& [m, c] : terms_) out.add_term(m, c * factor);
  return out;
}

PerfExpr PerfExpr::upper_max(const PerfExpr& a, const PerfExpr& b) {
  PerfExpr out = a;
  for (const auto& [m, c] : b.terms_) {
    auto it = out.terms_.find(m);
    if (it == out.terms_.end()) {
      out.terms_.emplace(m, c);
    } else {
      it->second = std::max(it->second, c);
    }
  }
  return out;
}

std::int64_t PerfExpr::eval(const PcvBinding& binding) const {
  std::int64_t total = 0;
  for (const auto& [m, c] : terms_) {
    total += c * static_cast<std::int64_t>(m.eval(binding));
  }
  return total;
}

bool PerfExpr::is_constant() const {
  if (terms_.empty()) return true;
  return terms_.size() == 1 && terms_.begin()->first.is_constant();
}

std::int64_t PerfExpr::constant_term() const {
  auto it = terms_.find(Monomial{});
  return it == terms_.end() ? 0 : it->second;
}

std::int64_t PerfExpr::coefficient(const Monomial& m) const {
  auto it = terms_.find(m);
  return it == terms_.end() ? 0 : it->second;
}

int PerfExpr::degree() const {
  int d = 0;
  for (const auto& [m, c] : terms_) d = std::max(d, m.degree());
  return d;
}

std::vector<PcvId> PerfExpr::pcvs() const {
  std::vector<PcvId> out;
  for (const auto& [m, c] : terms_) {
    for (const auto& [id, exp] : m.factors()) {
      if (std::find(out.begin(), out.end(), id) == out.end()) out.push_back(id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string PerfExpr::str(const PcvRegistry& reg) const {
  if (terms_.empty()) return "0";
  // Paper style: non-constant terms first (by degree descending is not what
  // the paper does; it lists linear terms, then cross terms, then the
  // constant). We order: degree 1 terms, then higher degrees, then constant.
  std::vector<const std::pair<const Monomial, std::int64_t>*> ordered;
  for (const auto& t : terms_) ordered.push_back(&t);
  std::sort(ordered.begin(), ordered.end(), [](const auto* a, const auto* b) {
    const int da = a->first.degree();
    const int db = b->first.degree();
    // Constants (degree 0) last; otherwise ascending degree, then monomial.
    if ((da == 0) != (db == 0)) return db == 0;
    if (da != db) return da < db;
    return a->first < b->first;
  });
  std::string out;
  for (const auto* t : ordered) {
    const auto& [m, c] = *t;
    if (!out.empty()) out += c < 0 ? " - " : " + ";
    const std::int64_t mag = c < 0 && !out.empty() ? -c : c;
    if (m.is_constant()) {
      out += std::to_string(mag);
    } else if (mag == 1) {
      out += m.str(reg);
    } else {
      out += std::to_string(mag) + "*" + m.str(reg);
    }
  }
  return out;
}

}  // namespace bolt::perf
