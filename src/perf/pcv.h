// Performance-critical variables (PCVs).
//
// A PCV (paper §2) summarises the impact of everything *other than the
// current input packet* — state, configuration, history — on the NF's
// performance. Examples from the paper: hash collisions `c`, bucket
// traversals `t`, expired entries `e`, table occupancy `o`, matched prefix
// length `l`, number of IP options `n`.
//
// PCVs are interned in a registry so expressions can refer to them by a
// small integer id; the registry carries the human-readable name and a
// one-line description used when rendering contracts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bolt::perf {

using PcvId = std::uint32_t;

/// Interning registry for performance-critical variables.
///
/// One registry is shared per analysis so data-structure contracts and
/// NF contracts agree on ids. Interning the same name twice returns the
/// same id (the description of the first interning wins).
class PcvRegistry {
 public:
  /// Returns the id for `name`, creating it if needed.
  PcvId intern(const std::string& name, const std::string& description = "");

  /// Returns the id for an existing PCV; aborts if it does not exist.
  PcvId require(const std::string& name) const;

  /// True if a PCV with this name has been interned.
  bool contains(const std::string& name) const;

  const std::string& name(PcvId id) const;
  const std::string& description(PcvId id) const;
  std::size_t size() const { return names_.size(); }

  /// All interned ids, in interning order.
  std::vector<PcvId> all() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::string> descriptions_;
  std::map<std::string, PcvId> by_name_;
};

/// A concrete assignment of values to PCVs, used to evaluate expressions.
/// PCVs are counts and are therefore non-negative.
class PcvBinding {
 public:
  PcvBinding() = default;

  void set(PcvId id, std::uint64_t value);
  /// Value of `id`, or 0 if unbound (an unbound PCV means "did not occur").
  std::uint64_t get(PcvId id) const;
  bool has(PcvId id) const;

  const std::map<PcvId, std::uint64_t>& values() const { return values_; }

  /// Merge: entries in `other` overwrite entries here.
  void merge(const PcvBinding& other);

 private:
  std::map<PcvId, std::uint64_t> values_;
};

}  // namespace bolt::perf
