// Performance-critical variables (PCVs).
//
// A PCV (paper §2) summarises the impact of everything *other than the
// current input packet* — state, configuration, history — on the NF's
// performance. Examples from the paper: hash collisions `c`, bucket
// traversals `t`, expired entries `e`, table occupancy `o`, matched prefix
// length `l`, number of IP options `n`.
//
// PCVs are interned in a registry so expressions can refer to them by a
// small integer id; the registry carries the human-readable name and a
// one-line description used when rendering contracts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace bolt::perf {

using PcvId = std::uint32_t;

/// Interning registry for performance-critical variables.
///
/// One registry is shared per analysis so data-structure contracts and
/// NF contracts agree on ids. Interning the same name twice returns the
/// same id (the description of the first interning wins).
class PcvRegistry {
 public:
  /// Returns the id for `name`, creating it if needed.
  PcvId intern(const std::string& name, const std::string& description = "");

  /// Returns the id for an existing PCV; aborts if it does not exist.
  PcvId require(const std::string& name) const;

  /// True if a PCV with this name has been interned.
  bool contains(const std::string& name) const;

  const std::string& name(PcvId id) const;
  const std::string& description(PcvId id) const;
  std::size_t size() const { return names_.size(); }

  /// All interned ids, in interning order.
  std::vector<PcvId> all() const;

 private:
  std::vector<std::string> names_;
  std::vector<std::string> descriptions_;
  std::map<std::string, PcvId> by_name_;
};

/// A concrete assignment of values to PCVs, used to evaluate expressions.
/// PCVs are counts and are therefore non-negative.
///
/// Stored as a flat array sorted by id — bindings are tiny (an NF induces a
/// handful of PCVs per packet), so linear scans beat tree lookups and the
/// whole structure fits in one or two cache lines. The first few entries
/// live inline; per-packet bindings on the monitor's hot path therefore
/// never touch the heap (the old std::map paid a node allocation per PCV
/// per call). Iteration order (ascending id) matches the previous map, so
/// every consumer that renders or accumulates in iteration order is
/// byte-identical.
class PcvBinding {
 public:
  using value_type = std::pair<PcvId, std::uint64_t>;

  PcvBinding() = default;

  void set(PcvId id, std::uint64_t value);
  /// Value of `id`, or 0 if unbound (an unbound PCV means "did not occur").
  std::uint64_t get(PcvId id) const;
  bool has(PcvId id) const;

  /// Iterable view over (id, value) pairs in ascending id order. Returns
  /// the binding itself so existing `for (auto& [id, v] : b.values())`
  /// call sites keep working unchanged.
  const PcvBinding& values() const { return *this; }

  const value_type* begin() const { return spilled() ? spill_.data() : inline_; }
  const value_type* end() const { return begin() + size_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Forgets all entries but keeps any spill capacity, so a reused
  /// per-packet binding stays allocation-free.
  void clear() { size_ = 0; }

  /// Merge: entries in `other` overwrite entries here.
  void merge(const PcvBinding& other);

 private:
  static constexpr std::size_t kInline = 6;
  bool spilled() const { return size_ > kInline; }
  value_type* slots() { return spilled() ? spill_.data() : inline_; }

  value_type inline_[kInline] = {};
  std::uint32_t size_ = 0;
  /// Overflow storage: once a binding exceeds kInline entries, all of them
  /// live here (rare — only contract-side worst-case bindings get big).
  std::vector<value_type> spill_;
};

}  // namespace bolt::perf
