#include "perf/quantile_sketch.h"

#include <algorithm>
#include <cmath>

#include "support/assert.h"

namespace bolt::perf {

namespace {

constexpr unsigned kSub = QuantileSketch::kSubBits;
constexpr std::uint64_t kLinearMax = 1ull << (kSub + 1);  // exact below this
constexpr std::uint32_t kSubCount = 1u << kSub;

unsigned floor_log2(std::uint64_t v) {
  unsigned e = 0;
  while (v >>= 1) ++e;
  return e;
}

}  // namespace

std::uint32_t QuantileSketch::bucket_of(std::uint64_t value) {
  if (value < kLinearMax) return static_cast<std::uint32_t>(value);
  const unsigned e = floor_log2(value);  // >= kSub + 1
  const std::uint32_t m =
      static_cast<std::uint32_t>((value >> (e - kSub)) & (kSubCount - 1));
  return static_cast<std::uint32_t>(kLinearMax) +
         (e - (kSub + 1)) * kSubCount + m;
}

std::uint64_t QuantileSketch::bucket_lo(std::uint32_t bucket) {
  if (bucket < kLinearMax) return bucket;
  const std::uint32_t off = bucket - static_cast<std::uint32_t>(kLinearMax);
  const unsigned e = kSub + 1 + off / kSubCount;
  const std::uint64_t m = off % kSubCount;
  return (1ull << e) + m * (1ull << (e - kSub));
}

std::uint64_t QuantileSketch::bucket_hi(std::uint32_t bucket) {
  if (bucket < kLinearMax) return bucket;
  const std::uint32_t off = bucket - static_cast<std::uint32_t>(kLinearMax);
  const unsigned e = kSub + 1 + off / kSubCount;
  return bucket_lo(bucket) + (1ull << (e - kSub)) - 1;
}

void QuantileSketch::add(std::uint64_t value) {
  const std::uint32_t b = bucket_of(value);
  const auto pos = std::lower_bound(
      buckets_.begin(), buckets_.end(), b,
      [](const auto& entry, std::uint32_t key) { return entry.first < key; });
  if (pos != buckets_.end() && pos->first == b) {
    ++pos->second;
  } else {
    buckets_.insert(pos, {b, 1});
  }
  ++count_;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> merged;
  merged.reserve(buckets_.size() + other.buckets_.size());
  auto a = buckets_.begin();
  auto b = other.buckets_.begin();
  while (a != buckets_.end() || b != other.buckets_.end()) {
    if (b == other.buckets_.end() ||
        (a != buckets_.end() && a->first < b->first)) {
      merged.push_back(*a++);
    } else if (a == buckets_.end() || b->first < a->first) {
      merged.push_back(*b++);
    } else {
      merged.push_back({a->first, a->second + b->second});
      ++a;
      ++b;
    }
  }
  buckets_ = std::move(merged);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

std::uint64_t QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Nearest-rank: the smallest element whose rank reaches ceil(q * N).
  std::uint64_t target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (target == 0) target = 1;
  if (target > count_) target = count_;
  std::uint64_t cumulative = 0;
  for (const auto& [bucket, n] : buckets_) {
    cumulative += n;
    if (cumulative >= target) return std::min(bucket_hi(bucket), max_);
  }
  BOLT_UNREACHABLE("quantile sketch bucket counts disagree with total");
}

std::uint64_t QuantileSketch::rank_upper_bound(std::uint64_t value) const {
  const std::uint32_t b = bucket_of(value);
  std::uint64_t rank = 0;
  for (const auto& [bucket, n] : buckets_) {
    if (bucket > b) break;
    rank += n;
  }
  return rank;
}

std::string QuantileSketch::serialize() const {
  std::string out = "n=" + std::to_string(count_) +
                    " min=" + std::to_string(min()) +
                    " max=" + std::to_string(max()) + " [";
  bool first = true;
  for (const auto& [bucket, n] : buckets_) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(bucket) + ":" + std::to_string(n);
  }
  out += ']';
  return out;
}

QuantileSketch QuantileSketch::restore(
    std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets,
    std::uint64_t count, std::uint64_t min, std::uint64_t max) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    BOLT_CHECK(buckets[i].second > 0, "sketch restore: zero bucket count");
    BOLT_CHECK(i == 0 || buckets[i - 1].first < buckets[i].first,
               "sketch restore: unsorted or duplicate buckets");
    total += buckets[i].second;
  }
  BOLT_CHECK(total == count, "sketch restore: bucket counts disagree with n");
  QuantileSketch out;
  if (count == 0) {
    BOLT_CHECK(min == 0 && max == 0, "sketch restore: empty with bounds");
    return out;
  }
  BOLT_CHECK(min <= max, "sketch restore: min > max");
  BOLT_CHECK(bucket_of(min) == buckets.front().first &&
                 bucket_of(max) == buckets.back().first,
             "sketch restore: min/max outside recorded buckets");
  out.buckets_ = std::move(buckets);
  out.count_ = count;
  out.min_ = min;
  out.max_ = max;
  return out;
}

bool QuantileSketch::operator==(const QuantileSketch& other) const {
  return count_ == other.count_ && min() == other.min() &&
         max() == other.max() && buckets_ == other.buckets_;
}

QuantileSummary summarize(const QuantileSketch& sketch) {
  QuantileSummary out;
  out.count = sketch.count();
  out.p50 = sketch.quantile(0.50);
  out.p90 = sketch.quantile(0.90);
  out.p99 = sketch.quantile(0.99);
  out.p999 = sketch.quantile(0.999);
  out.max = sketch.max();
  return out;
}

void summary_to_json(std::string& out, const QuantileSummary& s) {
  out += "{\"count\":" + std::to_string(s.count);
  out += ",\"p50\":" + std::to_string(s.p50);
  out += ",\"p90\":" + std::to_string(s.p90);
  out += ",\"p99\":" + std::to_string(s.p99);
  out += ",\"p999\":" + std::to_string(s.p999);
  out += ",\"max\":" + std::to_string(s.max);
  out += '}';
}

}  // namespace bolt::perf
