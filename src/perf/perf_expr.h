// PerfExpr — the closed-form performance expressions that appear in
// performance contracts.
//
// Contracts in the paper have shapes like
//     245·e + 144·c + 36·t + 82·e·c + 19·e·t + 882          (Table 4)
// i.e. multivariate polynomials over PCVs with non-negative integer
// coefficients. PerfExpr represents exactly that: a sum of monomials
// (products of PCV powers) with int64 coefficients.
//
// The key non-arithmetic operation is `upper_max`, the *conservative
// coalescing* the paper performs when folding several execution paths into
// one contract entry (§3.2, §6): because every PCV is a non-negative count,
// the term-wise maximum of two polynomials dominates both of them point-wise,
// so the coalesced expression is a sound upper bound.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "perf/pcv.h"

namespace bolt::perf {

/// A product of PCV powers, e.g. e·c or t². The empty monomial is the
/// constant term. Kept sorted by PCV id; exponents are >= 1.
class Monomial {
 public:
  Monomial() = default;
  static Monomial pcv(PcvId id);

  /// Product of two monomials (adds exponents).
  Monomial operator*(const Monomial& other) const;

  bool is_constant() const { return factors_.empty(); }
  /// Total degree (sum of exponents).
  int degree() const;

  std::uint64_t eval(const PcvBinding& binding) const;
  std::string str(const PcvRegistry& reg) const;

  bool operator<(const Monomial& other) const { return factors_ < other.factors_; }
  bool operator==(const Monomial& other) const { return factors_ == other.factors_; }

  const std::vector<std::pair<PcvId, int>>& factors() const { return factors_; }

 private:
  std::vector<std::pair<PcvId, int>> factors_;  // sorted by PcvId
};

/// Multivariate polynomial over PCVs.
class PerfExpr {
 public:
  PerfExpr() = default;  // the zero expression

  static PerfExpr constant(std::int64_t value);
  static PerfExpr pcv(PcvId id);
  /// coefficient * monomial convenience: term(82, e*c).
  static PerfExpr term(std::int64_t coefficient, const Monomial& monomial);

  PerfExpr operator+(const PerfExpr& other) const;
  PerfExpr& operator+=(const PerfExpr& other);
  PerfExpr operator*(const PerfExpr& other) const;
  PerfExpr scaled(std::int64_t factor) const;

  /// Conservative coalescing: term-wise max over the union of monomials.
  /// Sound upper bound for both inputs when all PCVs are >= 0 and all
  /// coefficients are >= 0 (which BOLT guarantees for generated contracts).
  static PerfExpr upper_max(const PerfExpr& a, const PerfExpr& b);

  /// Evaluates at a concrete PCV binding (unbound PCVs read as 0).
  std::int64_t eval(const PcvBinding& binding) const;

  bool is_zero() const { return terms_.empty(); }
  bool is_constant() const;
  /// Constant term (0 if absent).
  std::int64_t constant_term() const;
  /// Coefficient of the given monomial (0 if absent).
  std::int64_t coefficient(const Monomial& m) const;
  /// Highest total degree among terms (0 for constants / zero).
  int degree() const;
  /// All PCVs mentioned by this expression.
  std::vector<PcvId> pcvs() const;
  std::size_t term_count() const { return terms_.size(); }

  /// Human-readable rendering in the paper's style:
  /// "245*e + 82*e*c + 882". Terms are ordered by decreasing degree then
  /// by monomial, constants last, matching the paper's tables.
  std::string str(const PcvRegistry& reg) const;

  bool operator==(const PerfExpr& other) const { return terms_ == other.terms_; }

  const std::map<Monomial, std::int64_t>& terms() const { return terms_; }

 private:
  void add_term(const Monomial& m, std::int64_t coefficient);

  std::map<Monomial, std::int64_t> terms_;  // monomial -> coefficient, no zeros
};

}  // namespace bolt::perf
