// QuantileSketch — a deterministic, mergeable quantile summary for online
// PCV distributions (the monitor's "show me the p99 headroom" view).
//
// The sketch is a sparse log-bucketed histogram (HDR-style): values below
// 2^(kSubBits+1) get exact buckets; larger values share one bucket per
// 1/2^kSubBits relative slice of their octave. That buys three properties
// the monitor's determinism contract needs and that randomized sketches
// (KLL, sampling) cannot give:
//
//  * The sketch is a pure function of the recorded *multiset* — no
//    randomness, no insertion-order dependence.
//  * Merge is bucket-wise addition: commutative, associative, and
//    byte-identical no matter how per-partition sketches are combined
//    (tests/test_quantile_sketch.cpp proves merge-order independence).
//  * quantile(q) is conservative: it returns the upper edge of the bucket
//    holding the nearest-rank element, so the estimate never understates
//    the true quantile and overstates it by at most one part in
//    2^kSubBits (~3% at the default) — the right bias for headroom
//    reporting (an operator sees "at most this close to the bound").
//
// Storage is a sorted sparse vector of (bucket, count): contract classes
// concentrate on a handful of buckets, so a sketch is tens of entries, not
// the ~2k of a dense layout — cheap enough for one sketch per class per
// metric per monitor partition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bolt::perf {

class QuantileSketch {
 public:
  /// Sub-bucket resolution: 2^kSubBits buckets per octave, i.e. a relative
  /// value error of at most 1/2^kSubBits (~3.1%). Values below
  /// 2^(kSubBits+1) are exact.
  static constexpr unsigned kSubBits = 5;

  /// Records one value.
  void add(std::uint64_t value);

  /// Bucket-wise addition; the result is identical for any merge order or
  /// partitioning of the same underlying multiset.
  void merge(const QuantileSketch& other);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// Smallest / largest recorded value (0 when empty).
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }

  /// Nearest-rank quantile estimate for q in [0, 1]: the upper edge of the
  /// bucket containing the ceil(q*count)-th smallest value, clamped to the
  /// recorded max. Guarantees (see tests):
  ///   exact <= quantile(q) <= exact + exact/2^kSubBits + 1
  /// Returns 0 on an empty sketch.
  std::uint64_t quantile(double q) const;

  /// Number of recorded values whose bucket upper edge is <= `value`'s
  /// bucket upper edge (a rank lower bound usable for CDF-style checks).
  std::uint64_t rank_upper_bound(std::uint64_t value) const;

  /// Canonical serialisation (used by tests to assert merge-order
  /// independence byte-for-byte, and by debug dumps).
  std::string serialize() const;

  bool operator==(const QuantileSketch& other) const;
  bool operator!=(const QuantileSketch& other) const { return !(*this == other); }

  /// Bucket mapping, exposed for the property tests.
  static std::uint32_t bucket_of(std::uint64_t value);
  static std::uint64_t bucket_lo(std::uint32_t bucket);
  static std::uint64_t bucket_hi(std::uint32_t bucket);

  /// The raw sparse state, exposed for external serialisation (the fleet
  /// partial format in obs/fleet.cpp). Sorted by bucket index; counts are
  /// strictly positive.
  const std::vector<std::pair<std::uint32_t, std::uint64_t>>& buckets() const {
    return buckets_;
  }

  /// Rebuilds a sketch from externally serialised state (the inverse of
  /// buckets()/count()/min()/max()). Aborts if the state is inconsistent:
  /// unsorted or duplicate buckets, zero counts, a count mismatch, or
  /// min/max outside the recorded buckets' range — a fleet partial that
  /// fails this was corrupted in transit.
  static QuantileSketch restore(
      std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets,
      std::uint64_t count, std::uint64_t min, std::uint64_t max);

 private:
  /// Sorted by bucket index; counts are strictly positive.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

/// Selected quantiles of a sketch, extracted once at reporting time. All
/// fields are integers, so every rendering that consumes a summary is
/// byte-deterministic. Shared by the monitor's end-of-run report and the
/// telemetry layer's per-window delta stream (src/obs/) — one extraction,
/// one JSON shape.
struct QuantileSummary {
  std::uint64_t count = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t max = 0;
};

/// Extracts the canonical summary quantiles from a merged sketch.
QuantileSummary summarize(const QuantileSketch& sketch);

/// Appends the summary as a JSON object ({"count":..,"p50":..,...}) — the
/// shape both the monitor report and the delta stream embed.
void summary_to_json(std::string& out, const QuantileSummary& s);

}  // namespace bolt::perf
