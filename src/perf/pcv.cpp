#include "perf/pcv.h"

#include "support/assert.h"

namespace bolt::perf {

PcvId PcvRegistry::intern(const std::string& name,
                          const std::string& description) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (!description.empty() && descriptions_[it->second].empty()) {
      descriptions_[it->second] = description;
    }
    return it->second;
  }
  const PcvId id = static_cast<PcvId>(names_.size());
  names_.push_back(name);
  descriptions_.push_back(description);
  by_name_.emplace(name, id);
  return id;
}

PcvId PcvRegistry::require(const std::string& name) const {
  auto it = by_name_.find(name);
  BOLT_CHECK(it != by_name_.end(), "unknown PCV: " + name);
  return it->second;
}

bool PcvRegistry::contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

const std::string& PcvRegistry::name(PcvId id) const {
  BOLT_CHECK(id < names_.size(), "PCV id out of range");
  return names_[id];
}

const std::string& PcvRegistry::description(PcvId id) const {
  BOLT_CHECK(id < descriptions_.size(), "PCV id out of range");
  return descriptions_[id];
}

std::vector<PcvId> PcvRegistry::all() const {
  std::vector<PcvId> ids(names_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PcvId>(i);
  return ids;
}

void PcvBinding::set(PcvId id, std::uint64_t value) { values_[id] = value; }

std::uint64_t PcvBinding::get(PcvId id) const {
  auto it = values_.find(id);
  return it == values_.end() ? 0 : it->second;
}

bool PcvBinding::has(PcvId id) const {
  return values_.find(id) != values_.end();
}

void PcvBinding::merge(const PcvBinding& other) {
  for (const auto& [id, v] : other.values_) values_[id] = v;
}

}  // namespace bolt::perf
