#include "perf/pcv.h"

#include "support/assert.h"

namespace bolt::perf {

PcvId PcvRegistry::intern(const std::string& name,
                          const std::string& description) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    if (!description.empty() && descriptions_[it->second].empty()) {
      descriptions_[it->second] = description;
    }
    return it->second;
  }
  const PcvId id = static_cast<PcvId>(names_.size());
  names_.push_back(name);
  descriptions_.push_back(description);
  by_name_.emplace(name, id);
  return id;
}

PcvId PcvRegistry::require(const std::string& name) const {
  auto it = by_name_.find(name);
  BOLT_CHECK(it != by_name_.end(), "unknown PCV: " + name);
  return it->second;
}

bool PcvRegistry::contains(const std::string& name) const {
  return by_name_.find(name) != by_name_.end();
}

const std::string& PcvRegistry::name(PcvId id) const {
  BOLT_CHECK(id < names_.size(), "PCV id out of range");
  return names_[id];
}

const std::string& PcvRegistry::description(PcvId id) const {
  BOLT_CHECK(id < descriptions_.size(), "PCV id out of range");
  return descriptions_[id];
}

std::vector<PcvId> PcvRegistry::all() const {
  std::vector<PcvId> ids(names_.size());
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PcvId>(i);
  return ids;
}

void PcvBinding::set(PcvId id, std::uint64_t value) {
  value_type* s = slots();
  // Sorted insert by id; existing entries update in place. Bindings hold a
  // handful of entries, so the scan is cheaper than any index structure.
  std::size_t pos = 0;
  while (pos < size_ && s[pos].first < id) ++pos;
  if (pos < size_ && s[pos].first == id) {
    s[pos].second = value;
    return;
  }
  if (size_ < kInline) {
    for (std::size_t i = size_; i > pos; --i) s[i] = s[i - 1];
    s[pos] = {id, value};
    ++size_;
    return;
  }
  // Crossing (or already past) the inline capacity: everything lives in
  // the spill vector from here on.
  if (size_ == kInline) {
    spill_.assign(inline_, inline_ + kInline);
  }
  spill_.insert(spill_.begin() + static_cast<std::ptrdiff_t>(pos),
                {id, value});
  ++size_;
}

std::uint64_t PcvBinding::get(PcvId id) const {
  for (const value_type& e : *this) {
    if (e.first == id) return e.second;
    if (e.first > id) break;
  }
  return 0;
}

bool PcvBinding::has(PcvId id) const {
  for (const value_type& e : *this) {
    if (e.first == id) return true;
    if (e.first > id) break;
  }
  return false;
}

void PcvBinding::merge(const PcvBinding& other) {
  for (const auto& [id, v] : other) set(id, v);
}

}  // namespace bolt::perf
