#include "perf/contract_io.h"

#include <cstdio>
#include <set>

#include "support/assert.h"
#include "support/io.h"
#include "support/json.h"
#include "support/strings.h"

namespace bolt::perf {
namespace {

using support::json_quote_into;
using support::JsonReader;

void expr_to_json(std::string& out, const PerfExpr& expr,
                  const PcvRegistry& reg) {
  out += '[';
  bool first_term = true;
  for (const auto& [monomial, coeff] : expr.terms()) {
    if (!first_term) out += ',';
    first_term = false;
    out += "{\"coeff\":" + std::to_string(coeff) + ",\"pcvs\":[";
    bool first_pcv = true;
    for (const auto& [id, exponent] : monomial.factors()) {
      for (int i = 0; i < exponent; ++i) {
        if (!first_pcv) out += ',';
        first_pcv = false;
        json_quote_into(out, reg.name(id));
      }
    }
    out += "]}";
  }
  out += ']';
}

PerfExpr expr_from_json(JsonReader& r, PcvRegistry& reg) {
  PerfExpr expr;
  r.expect('[');
  if (r.try_consume(']')) return expr;
  do {
    r.expect('{');
    r.key("coeff");
    const std::int64_t coeff = r.integer();
    r.expect(',');
    r.key("pcvs");
    Monomial monomial;
    r.expect('[');
    if (!r.try_consume(']')) {
      do {
        monomial = monomial * Monomial::pcv(reg.intern(r.string()));
      } while (r.try_consume(','));
      r.expect(']');
    }
    r.expect('}');
    expr += PerfExpr::term(coeff, monomial);
  } while (r.try_consume(','));
  r.expect(']');
  return expr;
}

}  // namespace

std::string contract_to_json(const Contract& contract, const PcvRegistry& reg) {
  std::string out =
      "{\"version\":" + std::to_string(kContractSchemaVersion) + ",\"nf\":";
  json_quote_into(out, contract.nf_name());
  out += ",\"pcvs\":[";
  bool first = true;
  for (const PcvId id : reg.all()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json_quote_into(out, reg.name(id));
    out += ",\"description\":";
    json_quote_into(out, reg.description(id));
    out += '}';
  }
  out += "],\"entries\":[";
  first = true;
  for (const ContractEntry& entry : contract.entries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"input_class\":";
    json_quote_into(out, entry.input_class);
    out += ",\"paths_coalesced\":" + std::to_string(entry.paths_coalesced);
    out += ",\"metrics\":{";
    bool first_metric = true;
    for (const Metric m : kAllMetrics) {
      if (!first_metric) out += ',';
      first_metric = false;
      json_quote_into(out, std::string(metric_name(m)));
      out += ':';
      expr_to_json(out, entry.perf.get(m), reg);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Contract contract_from_json(const std::string& json, PcvRegistry& reg) {
  JsonReader r(json, "contract json");
  r.expect('{');
  r.key("version");
  BOLT_CHECK(r.integer() == kContractSchemaVersion,
             "contract json: unsupported version");
  r.expect(',');
  r.key("nf");
  Contract contract(r.string());
  r.expect(',');
  r.key("pcvs");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      r.key("name");
      const std::string name = r.string();
      r.expect(',');
      r.key("description");
      const std::string description = r.string();
      r.expect('}');
      reg.intern(name, description);
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect(',');
  r.key("entries");
  r.expect('[');
  // Input classes are the lookup key for everything downstream (monitor
  // attribution, gap reports); a duplicate means two conflicting bounds for
  // the same traffic and must never be half-loaded.
  std::set<std::string> seen_classes;
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      ContractEntry entry;
      r.key("input_class");
      entry.input_class = r.string();
      if (!seen_classes.insert(entry.input_class).second) {
        r.fail("duplicate input class '" + entry.input_class + "'");
      }
      r.expect(',');
      r.key("paths_coalesced");
      entry.paths_coalesced = static_cast<std::size_t>(r.integer());
      r.expect(',');
      r.key("metrics");
      r.expect('{');
      do {
        const std::string metric = r.string();
        r.expect(':');
        const PerfExpr expr = expr_from_json(r, reg);
        for (const Metric m : kAllMetrics) {
          if (metric == metric_name(m)) entry.perf.set(m, expr);
        }
      } while (r.try_consume(','));
      r.expect('}');
      r.expect('}');
      contract.add(std::move(entry));
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect('}');
  r.end();
  return contract;
}

bool save_contract(const std::string& path, const Contract& contract,
                   const PcvRegistry& reg) {
  return support::write_file(path, contract_to_json(contract, reg) + "\n");
}

Contract load_contract(const std::string& path, PcvRegistry& reg) {
  return contract_from_json(
      support::read_file_or_die(path, "contract artifact"), reg);
}

}  // namespace bolt::perf
