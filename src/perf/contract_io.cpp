#include "perf/contract_io.h"

#include <cctype>
#include <cstdio>

#include "support/assert.h"
#include "support/strings.h"

namespace bolt::perf {
namespace {

using support::json_quote_into;

void expr_to_json(std::string& out, const PerfExpr& expr,
                  const PcvRegistry& reg) {
  out += '[';
  bool first_term = true;
  for (const auto& [monomial, coeff] : expr.terms()) {
    if (!first_term) out += ',';
    first_term = false;
    out += "{\"coeff\":" + std::to_string(coeff) + ",\"pcvs\":[";
    bool first_pcv = true;
    for (const auto& [id, exponent] : monomial.factors()) {
      for (int i = 0; i < exponent; ++i) {
        if (!first_pcv) out += ',';
        first_pcv = false;
        json_quote_into(out, reg.name(id));
      }
    }
    out += "]}";
  }
  out += ']';
}

/// Minimal recursive-descent JSON reader, sufficient for the schema above.
class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : text_(text) {}

  void expect(char c) {
    skip_ws();
    BOLT_CHECK(pos_ < text_.size() && text_[pos_] == c,
               std::string("contract json: expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char esc = text_[pos_++];
        switch (esc) {
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          default: c = esc; break;
        }
      }
      out += c;
    }
    BOLT_CHECK(pos_ < text_.size(), "contract json: unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  std::int64_t integer() {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    BOLT_CHECK(pos_ > start, "contract json: expected integer");
    return std::stoll(text_.substr(start, pos_ - start));
  }

  /// Reads `"key":` and checks the key name.
  void key(const char* name) {
    const std::string k = string();
    BOLT_CHECK(k == name, "contract json: expected key '" + std::string(name) +
                              "', got '" + k + "'");
    expect(':');
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

PerfExpr expr_from_json(JsonReader& r, PcvRegistry& reg) {
  PerfExpr expr;
  r.expect('[');
  if (r.try_consume(']')) return expr;
  do {
    r.expect('{');
    r.key("coeff");
    const std::int64_t coeff = r.integer();
    r.expect(',');
    r.key("pcvs");
    Monomial monomial;
    r.expect('[');
    if (!r.try_consume(']')) {
      do {
        monomial = monomial * Monomial::pcv(reg.intern(r.string()));
      } while (r.try_consume(','));
      r.expect(']');
    }
    r.expect('}');
    expr += PerfExpr::term(coeff, monomial);
  } while (r.try_consume(','));
  r.expect(']');
  return expr;
}

}  // namespace

std::string contract_to_json(const Contract& contract, const PcvRegistry& reg) {
  std::string out =
      "{\"version\":" + std::to_string(kContractSchemaVersion) + ",\"nf\":";
  json_quote_into(out, contract.nf_name());
  out += ",\"pcvs\":[";
  bool first = true;
  for (const PcvId id : reg.all()) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    json_quote_into(out, reg.name(id));
    out += ",\"description\":";
    json_quote_into(out, reg.description(id));
    out += '}';
  }
  out += "],\"entries\":[";
  first = true;
  for (const ContractEntry& entry : contract.entries()) {
    if (!first) out += ',';
    first = false;
    out += "{\"input_class\":";
    json_quote_into(out, entry.input_class);
    out += ",\"paths_coalesced\":" + std::to_string(entry.paths_coalesced);
    out += ",\"metrics\":{";
    bool first_metric = true;
    for (const Metric m : kAllMetrics) {
      if (!first_metric) out += ',';
      first_metric = false;
      json_quote_into(out, std::string(metric_name(m)));
      out += ':';
      expr_to_json(out, entry.perf.get(m), reg);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

Contract contract_from_json(const std::string& json, PcvRegistry& reg) {
  JsonReader r(json);
  r.expect('{');
  r.key("version");
  BOLT_CHECK(r.integer() == kContractSchemaVersion,
             "contract json: unsupported version");
  r.expect(',');
  r.key("nf");
  Contract contract(r.string());
  r.expect(',');
  r.key("pcvs");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      r.key("name");
      const std::string name = r.string();
      r.expect(',');
      r.key("description");
      const std::string description = r.string();
      r.expect('}');
      reg.intern(name, description);
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect(',');
  r.key("entries");
  r.expect('[');
  if (!r.try_consume(']')) {
    do {
      r.expect('{');
      ContractEntry entry;
      r.key("input_class");
      entry.input_class = r.string();
      r.expect(',');
      r.key("paths_coalesced");
      entry.paths_coalesced = static_cast<std::size_t>(r.integer());
      r.expect(',');
      r.key("metrics");
      r.expect('{');
      do {
        const std::string metric = r.string();
        r.expect(':');
        const PerfExpr expr = expr_from_json(r, reg);
        for (const Metric m : kAllMetrics) {
          if (metric == metric_name(m)) entry.perf.set(m, expr);
        }
      } while (r.try_consume(','));
      r.expect('}');
      r.expect('}');
      contract.add(std::move(entry));
    } while (r.try_consume(','));
    r.expect(']');
  }
  r.expect('}');
  return contract;
}

bool save_contract(const std::string& path, const Contract& contract,
                   const PcvRegistry& reg) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string json = contract_to_json(contract, reg) + "\n";
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !ok) {
    // Never leave a truncated artifact behind for a later deploy to trip
    // over.
    std::remove(path.c_str());
    return false;
  }
  return true;
}

Contract load_contract(const std::string& path, PcvRegistry& reg) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  BOLT_CHECK(f != nullptr, "cannot open contract artifact '" + path + "'");
  std::string json;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) json.append(buf, n);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  BOLT_CHECK(!read_error, "I/O error reading contract artifact '" + path + "'");
  return contract_from_json(json, reg);
}

}  // namespace bolt::perf
