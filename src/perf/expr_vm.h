// Compiled PerfExpr evaluation — the monitor's hot path.
//
// `PerfExpr::eval` walks a std::map of monomials and re-multiplies PCV
// powers per call; fine for rendering a contract table, far too slow for
// validating millions of packets against it. `CompiledExpr` flattens the
// polynomial once into a compact register-based bytecode:
//
//   * constant folding — pure-constant subexpressions collapse at compile
//     time (an all-constant contract entry compiles to a single kConst);
//   * Horner factoring — the PCV appearing in the most terms is factored
//     out recursively, so `245*e + 82*e*c + 882` compiles to
//     `e*(245 + 82*c) + 882` (one multiply fewer per extra term);
//   * common-subexpression elimination — repeated slot loads and identical
//     (op, a, b) triples share one register.
//
// Evaluation reads PCV values from a dense *slot* array indexed by PcvId
// (registry ids are interned densely, so slot i == PcvId i). The batch API
// evaluates one expression over many packets' bindings instruction-major,
// which keeps the dispatch overhead per packet near zero and lets the
// compiler vectorize the per-lane inner loops.
//
// Arithmetic is performed in wrapping uint64 (two's complement), matching
// the bit pattern the tree-walk eval produces for any input, including
// overflow-adjacent coefficients.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "perf/pcv.h"
#include "perf/perf_expr.h"

namespace bolt::perf {

/// Reusable register matrix for CompiledExpr::eval_batch. One instance per
/// monitor worker makes steady-state batch evaluation allocation-free: the
/// matrix grows to the largest (program x lane-block) it has seen and is
/// reused for every subsequent batch.
class BatchScratch {
 public:
  BatchScratch() = default;

 private:
  friend class CompiledExpr;
  std::vector<std::uint64_t> regs_;
};

class CompiledExpr {
 public:
  /// Compiles a polynomial. The resulting program reads PCV values from
  /// slots indexed by PcvId; `slot_count()` is 1 + the highest slot read
  /// (0 for constant expressions).
  static CompiledExpr compile(const PerfExpr& expr);

  /// Evaluates at one binding (convenience; tree-walk-compatible).
  std::int64_t eval(const PcvBinding& binding) const;

  /// Evaluates at one dense slot row. `slots` must hold at least
  /// `slot_count()` values.
  std::int64_t eval_slots(const std::uint64_t* slots) const;

  /// Evaluates over `count` bindings laid out row-major (`stride` slots per
  /// row, stride >= slot_count()), writing one result per row. This is the
  /// monitor's per-batch entry point.
  void eval_batch(const std::uint64_t* slots, std::size_t stride,
                  std::size_t count, std::int64_t* out) const;

  /// Same, but with a caller-owned register matrix: zero allocations once
  /// `scratch` has warmed up. The batched monitor pipeline evaluates every
  /// same-class batch through one scratch per validate worker.
  void eval_batch(const std::uint64_t* slots, std::size_t stride,
                  std::size_t count, std::int64_t* out,
                  BatchScratch& scratch) const;

  std::size_t slot_count() const { return slot_count_; }
  std::size_t instruction_count() const { return code_.size(); }

  /// One-line disassembly, e.g. "r0=slot[2]; r1=82*r0; ..." (tests/debug).
  std::string str() const;

 private:
  enum class Op : std::uint8_t {
    kConst,  ///< r = imm
    kSlot,   ///< r = slots[a]
    kAdd,    ///< r = r[a] + r[b]
    kMul,    ///< r = r[a] * r[b]
  };
  struct Instr {
    Op op;
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    std::uint64_t imm = 0;
  };

  struct Builder;  // compile-time state (CSE memo), in expr_vm.cpp

  std::vector<Instr> code_;   ///< SSA: instruction i defines register i
  std::size_t slot_count_ = 0;
};

}  // namespace bolt::perf
