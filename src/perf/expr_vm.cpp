#include "perf/expr_vm.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/assert.h"

namespace bolt::perf {

namespace {

/// A polynomial in compile-time form: monomial -> coefficient, the same
/// shape PerfExpr keeps, but copied so Horner factoring can divide terms.
using Terms = std::map<Monomial, std::int64_t>;

/// Divides a monomial by one power of `id` (the caller guarantees the
/// factor is present).
Monomial divide_once(const Monomial& m, PcvId id) {
  Monomial out;
  // Rebuild via products of single-PCV powers; Monomial's public surface
  // has no mutation, so reconstruct from factors.
  for (const auto& [pid, exp] : m.factors()) {
    int keep = pid == id ? exp - 1 : exp;
    for (int i = 0; i < keep; ++i) out = out * Monomial::pcv(pid);
  }
  return out;
}

bool contains_pcv(const Monomial& m, PcvId id) {
  for (const auto& [pid, exp] : m.factors()) {
    if (pid == id) return exp >= 1;
  }
  return false;
}

}  // namespace

struct CompiledExpr::Builder {
  std::vector<Instr> code;
  std::size_t slot_count = 0;
  // CSE memos.
  std::map<std::uint64_t, std::uint32_t> const_memo;
  std::map<std::uint32_t, std::uint32_t> slot_memo;
  std::map<std::tuple<std::uint8_t, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      bin_memo;

  std::uint32_t emit_const(std::uint64_t v) {
    auto it = const_memo.find(v);
    if (it != const_memo.end()) return it->second;
    const auto r = static_cast<std::uint32_t>(code.size());
    code.push_back({Op::kConst, 0, 0, v});
    const_memo.emplace(v, r);
    return r;
  }

  std::uint32_t emit_slot(PcvId id) {
    auto it = slot_memo.find(id);
    if (it != slot_memo.end()) return it->second;
    const auto r = static_cast<std::uint32_t>(code.size());
    code.push_back({Op::kSlot, id, 0, 0});
    slot_memo.emplace(id, r);
    slot_count = std::max(slot_count, static_cast<std::size_t>(id) + 1);
    return r;
  }

  std::uint32_t emit_bin(Op op, std::uint32_t a, std::uint32_t b) {
    // Constant folding.
    if (code[a].op == Op::kConst && code[b].op == Op::kConst) {
      const std::uint64_t va = code[a].imm, vb = code[b].imm;
      return emit_const(op == Op::kAdd ? va + vb : va * vb);
    }
    // Identities: x+0, x*1 vanish; x*0 is 0.
    if (op == Op::kAdd) {
      if (code[a].op == Op::kConst && code[a].imm == 0) return b;
      if (code[b].op == Op::kConst && code[b].imm == 0) return a;
    } else {
      if (code[a].op == Op::kConst && code[a].imm == 1) return b;
      if (code[b].op == Op::kConst && code[b].imm == 1) return a;
      if (code[a].op == Op::kConst && code[a].imm == 0) return emit_const(0);
      if (code[b].op == Op::kConst && code[b].imm == 0) return emit_const(0);
    }
    // Commutative: canonical operand order widens CSE hits.
    if (a > b) std::swap(a, b);
    const auto key = std::make_tuple(static_cast<std::uint8_t>(op), a, b);
    auto it = bin_memo.find(key);
    if (it != bin_memo.end()) return it->second;
    const auto r = static_cast<std::uint32_t>(code.size());
    code.push_back({op, a, b, 0});
    bin_memo.emplace(key, r);
    return r;
  }

  /// Horner-factored compilation of a polynomial; returns the register
  /// holding its value.
  std::uint32_t compile_terms(const Terms& terms) {
    if (terms.empty()) return emit_const(0);
    // Pure constant?
    if (terms.size() == 1 && terms.begin()->first.is_constant()) {
      return emit_const(static_cast<std::uint64_t>(terms.begin()->second));
    }
    // Pick the PCV occurring in the most terms (ties: smallest id, so the
    // generated code is independent of registry interning history).
    std::map<PcvId, std::size_t> occurrences;
    for (const auto& [m, c] : terms) {
      for (const auto& [id, exp] : m.factors()) ++occurrences[id];
    }
    PcvId best = 0;
    std::size_t best_count = 0;
    for (const auto& [id, n] : occurrences) {
      if (n > best_count) {
        best = id;
        best_count = n;
      }
    }
    BOLT_CHECK(best_count > 0, "expr_vm: non-constant polynomial without PCVs");

    Terms inner;  // terms containing `best`, divided by one power of it
    Terms rest;   // the remainder
    for (const auto& [m, c] : terms) {
      if (contains_pcv(m, best)) {
        inner[divide_once(m, best)] += c;
      } else {
        rest[m] += c;
      }
    }
    std::uint32_t r = emit_bin(Op::kMul, compile_terms(inner), emit_slot(best));
    if (!rest.empty()) r = emit_bin(Op::kAdd, r, compile_terms(rest));
    return r;
  }
};

CompiledExpr CompiledExpr::compile(const PerfExpr& expr) {
  Builder b;
  Terms terms;
  for (const auto& [m, c] : expr.terms()) terms.emplace(m, c);
  const std::uint32_t result = b.compile_terms(terms);
  CompiledExpr out;
  out.code_ = std::move(b.code);
  out.slot_count_ = b.slot_count;
  // Evaluation reads the result from the *last* register; identity folding
  // and CSE can leave it elsewhere, so pin it with an explicit `+ 0` (raw
  // instructions, bypassing the folding that would erase them again).
  if (result + 1 != out.code_.size()) {
    const auto zero = static_cast<std::uint32_t>(out.code_.size());
    out.code_.push_back({Op::kConst, 0, 0, 0});
    out.code_.push_back({Op::kAdd, result, zero, 0});
  }
  return out;
}

std::int64_t CompiledExpr::eval(const PcvBinding& binding) const {
  std::vector<std::uint64_t> slots(slot_count_, 0);
  for (const auto& [id, v] : binding.values()) {
    if (id < slot_count_) slots[id] = v;
  }
  return eval_slots(slots.data());
}

std::int64_t CompiledExpr::eval_slots(const std::uint64_t* slots) const {
  // Small fixed buffer covers every contract expression we generate;
  // fall back to the heap for adversarial tests.
  constexpr std::size_t kStack = 64;
  std::uint64_t stack_regs[kStack] = {};
  std::vector<std::uint64_t> heap_regs;
  std::uint64_t* regs = stack_regs;
  if (code_.size() > kStack) {
    heap_regs.resize(code_.size());
    regs = heap_regs.data();
  }
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& ins = code_[i];
    switch (ins.op) {
      case Op::kConst:
        regs[i] = ins.imm;
        break;
      case Op::kSlot:
        regs[i] = slots[ins.a];
        break;
      case Op::kAdd:
        regs[i] = regs[ins.a] + regs[ins.b];
        break;
      case Op::kMul:
        regs[i] = regs[ins.a] * regs[ins.b];
        break;
    }
  }
  return static_cast<std::int64_t>(regs[code_.size() - 1]);
}

void CompiledExpr::eval_batch(const std::uint64_t* slots, std::size_t stride,
                              std::size_t count, std::int64_t* out) const {
  BatchScratch scratch;
  eval_batch(slots, stride, count, out, scratch);
}

void CompiledExpr::eval_batch(const std::uint64_t* slots, std::size_t stride,
                              std::size_t count, std::int64_t* out,
                              BatchScratch& scratch) const {
  BOLT_CHECK(stride >= slot_count_, "expr_vm: batch stride below slot count");
  // Instruction-major evaluation over lane blocks: each instruction's
  // per-lane loop is a tight, branchless sweep the compiler can vectorize,
  // and the register matrix for one block stays cache-resident.
  constexpr std::size_t kLanes = 64;
  if (scratch.regs_.size() < code_.size() * kLanes) {
    scratch.regs_.resize(code_.size() * kLanes);
  }
  std::vector<std::uint64_t>& regs = scratch.regs_;
  for (std::size_t base = 0; base < count; base += kLanes) {
    const std::size_t lanes = std::min(kLanes, count - base);
    for (std::size_t i = 0; i < code_.size(); ++i) {
      const Instr& ins = code_[i];
      std::uint64_t* r = &regs[i * kLanes];
      switch (ins.op) {
        case Op::kConst:
          for (std::size_t l = 0; l < lanes; ++l) r[l] = ins.imm;
          break;
        case Op::kSlot: {
          const std::uint64_t* in = slots + base * stride + ins.a;
          for (std::size_t l = 0; l < lanes; ++l) r[l] = in[l * stride];
          break;
        }
        case Op::kAdd: {
          const std::uint64_t* ra = &regs[ins.a * kLanes];
          const std::uint64_t* rb = &regs[ins.b * kLanes];
          for (std::size_t l = 0; l < lanes; ++l) r[l] = ra[l] + rb[l];
          break;
        }
        case Op::kMul: {
          const std::uint64_t* ra = &regs[ins.a * kLanes];
          const std::uint64_t* rb = &regs[ins.b * kLanes];
          for (std::size_t l = 0; l < lanes; ++l) r[l] = ra[l] * rb[l];
          break;
        }
      }
    }
    const std::uint64_t* result = &regs[(code_.size() - 1) * kLanes];
    for (std::size_t l = 0; l < lanes; ++l) {
      out[base + l] = static_cast<std::int64_t>(result[l]);
    }
  }
}

std::string CompiledExpr::str() const {
  std::string out;
  for (std::size_t i = 0; i < code_.size(); ++i) {
    const Instr& ins = code_[i];
    if (!out.empty()) out += "; ";
    out += "r" + std::to_string(i) + "=";
    switch (ins.op) {
      case Op::kConst:
        out += std::to_string(ins.imm);
        break;
      case Op::kSlot:
        out += "slot[" + std::to_string(ins.a) + "]";
        break;
      case Op::kAdd:
        out += "r" + std::to_string(ins.a) + "+r" + std::to_string(ins.b);
        break;
      case Op::kMul:
        out += "r" + std::to_string(ins.a) + "*r" + std::to_string(ins.b);
        break;
    }
  }
  return out;
}

}  // namespace bolt::perf
