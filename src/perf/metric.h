// Performance metrics supported by the contract machinery.
//
// The paper's BOLT prototype supports exactly these three (§3): dynamic
// instruction count, number of memory accesses, and execution cycles.
#pragma once

#include <array>
#include <string_view>

namespace bolt::perf {

enum class Metric : int {
  kInstructions = 0,   ///< dynamic instruction count ("IC" in the paper)
  kMemoryAccesses = 1, ///< loads + stores ("MA" in the paper)
  kCycles = 2,         ///< execution cycles under a hardware model
};

inline constexpr std::array<Metric, 3> kAllMetrics = {
    Metric::kInstructions, Metric::kMemoryAccesses, Metric::kCycles};

constexpr std::string_view metric_name(Metric m) {
  switch (m) {
    case Metric::kInstructions: return "instructions";
    case Metric::kMemoryAccesses: return "memory accesses";
    case Metric::kCycles: return "cycles";
  }
  return "?";
}

constexpr int metric_index(Metric m) { return static_cast<int>(m); }

}  // namespace bolt::perf
