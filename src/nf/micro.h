// The P1/P2/P3 microbenchmark programs of paper §5.1 ("Results for our
// hardware-dependent metric"): three traversals with identical instruction
// mixes but very different memory behaviour, used to validate how much of
// the cycle over-estimation comes from the conservative hardware model.
//
//  * P1 — linked list scattered across a >L3 footprint: dependent random
//    misses; neither prefetching nor MLP helps, so the conservative model
//    is nearly exact.
//  * P2 — linked list allocated contiguously: dependent sequential misses;
//    the prefetcher helps, MLP does not.
//  * P3 — array walk: independent sequential misses; both help.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/program.h"

namespace bolt::nf {

struct MicroTraversal {
  /// Pointer-chase program: node = scratch[node], `nodes` times.
  /// Used for P1 and P2 (the layout differs, the program does not).
  static ir::Program chase_program(std::size_t nodes, std::size_t scratch_slots);

  /// Array-walk program: reads scratch[i * stride_slots] for i in [0, nodes).
  static ir::Program array_program(std::size_t nodes, std::size_t stride_slots,
                                   std::size_t scratch_slots);

  /// Scratch image for P1: a random-permutation cycle over `nodes` nodes
  /// placed `spread_slots` apart (footprint = nodes * spread_slots * 8 B).
  static std::vector<std::uint64_t> scattered_list(std::size_t nodes,
                                                   std::size_t spread_slots,
                                                   std::uint64_t seed);

  /// Scratch image for P2: nodes laid out back to back, one per cache line.
  static std::vector<std::uint64_t> contiguous_list(std::size_t nodes);
};

}  // namespace bolt::nf
