// Stateless firewall + static IP router (paper §5.2, Table 5, Figure 3).
//
// The firewall drops any IPv4 packet carrying IP options (and non-IPv4
// frames), then applies a small stateless allowlist. The static router
// forwards everything on a fixed next hop but *processes IP options*
// (notably RFC 781 timestamps), which is expensive: 32-bit option words are
// walked one by one, so the router's contract is linear in the option count
// n. Chaining the firewall in front masks that worst case — the paper's
// composition experiment.
#pragma once

#include "ir/program.h"

namespace bolt::nf {

struct Firewall {
  /// Class tags: invalid / ip_options (dropped) / no_options (forwarded).
  static ir::Program program();
};

struct StaticRouter {
  /// Class tags: invalid / no_options / ip_options.
  /// Loop "options" counts 32-bit option words -> PCV n via linearisation.
  static ir::Program program();
};

}  // namespace bolt::nf
