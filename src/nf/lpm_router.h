// The two LPM routers.
//
// * SimpleLpmRouter — the paper's running example (§2.1, Algorithm 1,
//   Tables 1/2): classify IPv4 vs not, Patricia-trie lookup, forward.
// * DirLpmRouter — the evaluation's router (LPM1/LPM2) on the DPDK-style
//   DIR-24-8 table: <=24-bit matches take one lookup, longer two.
#pragma once

#include "dslib/lpm_state.h"
#include "ir/program.h"
#include "perf/pcv.h"

namespace bolt::nf {

struct SimpleLpmRouter {
  /// Class tags: invalid / valid.
  static ir::Program program();
  static dslib::MethodTable methods(perf::PcvRegistry& reg) {
    return dslib::LpmTrieState::method_table(reg);
  }
};

struct DirLpmRouter {
  /// Class tags: invalid / ipv4 (tier split comes from the call case).
  static ir::Program program();
  static dslib::MethodTable methods(perf::PcvRegistry& reg) {
    return dslib::LpmDirState::method_table(reg);
  }
};

}  // namespace bolt::nf
