// The VigNAT-style NAT (paper NF "NAT", §5.3's debugging subject).
//
// Internal traffic (ingress port 0) is translated to the NAT's external
// address with an allocated port; external traffic (ingress port 1) is
// translated back if a mapping exists and dropped otherwise. Packets that
// are not plain TCP/UDP-over-IPv4 are dropped. Stateful methods live in
// dslib::NatState.
#pragma once

#include "dslib/nat_state.h"
#include "ir/program.h"
#include "perf/pcv.h"

namespace bolt::nf {

struct Nat {
  static constexpr std::uint64_t kInternalPort = 0;
  static constexpr std::uint64_t kExternalPort = 1;

  /// Class tags: invalid / internal_known / internal_new /
  /// internal_table_full / external_known / external_drop.
  static ir::Program program(std::uint32_t external_ip);

  static dslib::MethodTable methods(perf::PcvRegistry& reg,
                                    const dslib::NatState::Config& config) {
    return dslib::NatState::method_table(reg, config);
  }
};

}  // namespace bolt::nf
