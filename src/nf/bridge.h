// The MAC learning bridge (paper NF "Br").
//
// Per packet: expire stale MAC entries, learn the source MAC, then either
// flood (broadcast destination or unknown destination) or forward to the
// learned port. Stateful methods live in dslib::BridgeState.
#pragma once

#include "dslib/bridge_state.h"
#include "dslib/mac_table.h"
#include "ir/program.h"
#include "perf/pcv.h"

namespace bolt::nf {

struct Bridge {
  /// Stateless IR program (class tags: broadcast / unicast / unicast_miss).
  static ir::Program program();

  static dslib::MethodTable methods(perf::PcvRegistry& reg,
                                    const dslib::MacTable::Config& config) {
    return dslib::BridgeState::method_table(reg, config);
  }
};

}  // namespace bolt::nf
