#include "nf/bridge.h"

#include "ir/builder.h"
#include "nf/framework.h"

namespace bolt::nf {

ir::Program Bridge::program() {
  ir::IrBuilder b("bridge");

  // Expire stale MAC entries (time comes from the packet timestamp).
  b.call(dslib::BridgeState::kExpire, ir::kNoReg, ir::kNoReg, "expire MACs");

  // Learn the source MAC on the ingress port.
  const ir::Reg src_mac = b.load_pkt_at(kOffEthSrc, 6, "source MAC");
  const ir::Reg in_port = b.pkt_port();
  b.call(dslib::BridgeState::kLearn, src_mac, in_port, "learn source");

  // Broadcast destination -> flood.
  const ir::Reg dst_mac = b.load_pkt_at(kOffEthDst, 6, "destination MAC");
  const ir::Reg is_bcast = b.eq_imm(dst_mac, 0xffffffffffffULL);
  ir::Label bcast = b.make_label();
  b.br_true(is_bcast, bcast);

  // Unicast: look up the destination.
  const auto [found, out_port] =
      b.call(dslib::BridgeState::kLookup, dst_mac, ir::kNoReg, "lookup dst");
  ir::Label miss = b.make_label();
  b.br_false(found, miss);
  b.class_tag("unicast");
  b.forward(out_port);

  b.bind(miss);
  b.class_tag("unicast_miss");
  b.forward_imm(kFloodPort);

  b.bind(bcast);
  b.class_tag("broadcast");
  b.forward_imm(kFloodPort);

  return b.finish();
}

}  // namespace bolt::nf
