#include "nf/nat.h"

#include "ir/builder.h"
#include "nf/framework.h"

namespace bolt::nf {

ir::Program Nat::program(std::uint32_t external_ip) {
  ir::IrBuilder b("nat");

  ir::Label invalid = b.make_label();

  // --- validation: Ethernet/IPv4/{TCP,UDP}, no IP options ---
  const ir::Reg ether_type = b.load_pkt_at(kOffEtherType, 2, "ethertype");
  b.br_false(b.eq_imm(ether_type, 0x0800), invalid);

  const ir::Reg ver_ihl = b.load_pkt_at(kOffIpVerIhl, 1, "version/ihl");
  b.br_false(b.eq_imm(b.shr_imm(ver_ihl, 4), 4), invalid);
  b.br_false(b.eq_imm(b.and_imm(ver_ihl, 0xf), 5), invalid);

  const ir::Reg proto = b.load_pkt_at(kOffIpProto, 1, "protocol");
  const ir::Reg is_tcp = b.eq_imm(proto, 6);
  const ir::Reg is_udp = b.eq_imm(proto, 17);
  b.br_false(b.bor(is_tcp, is_udp), invalid);

  // --- expiry (paper §5.3: the batching bug lives in the stamp config) ---
  b.call(dslib::NatState::kExpire, ir::kNoReg, ir::kNoReg, "expire flows");

  // --- direction ---
  const ir::Reg in_port = b.pkt_port();
  ir::Label external = b.make_label();
  b.br_false(b.eq_imm(in_port, kInternalPort), external);

  {  // internal -> external
    const auto [found, ext_port] = b.call(dslib::NatState::kLookupInt,
                                          ir::kNoReg, ir::kNoReg, "int lookup");
    ir::Label miss = b.make_label();
    b.br_false(found, miss);
    b.class_tag("internal_known");
    b.store_pkt_at(kOffIpSrc, b.imm(external_ip, "NAT external IP"), 4);
    b.store_pkt_at(kOffL4Src, ext_port, 2);
    b.forward_imm(kExternalPort);

    b.bind(miss);
    const auto [ok, new_port] = b.call(dslib::NatState::kAddFlow, ir::kNoReg,
                                       ir::kNoReg, "allocate mapping");
    ir::Label full = b.make_label();
    b.br_false(ok, full);
    b.class_tag("internal_new");
    b.store_pkt_at(kOffIpSrc, b.imm(external_ip), 4);
    b.store_pkt_at(kOffL4Src, new_port, 2);
    b.forward_imm(kExternalPort);

    b.bind(full);
    b.class_tag("internal_table_full");
    b.drop();
  }

  b.bind(external);
  {  // external -> internal
    const auto [found, endpoint] = b.call(dslib::NatState::kLookupExt,
                                          ir::kNoReg, ir::kNoReg, "ext lookup");
    ir::Label miss = b.make_label();
    b.br_false(found, miss);
    b.class_tag("external_known");
    const ir::Reg int_ip = b.shr_imm(endpoint, 16);
    const ir::Reg int_port = b.and_imm(endpoint, 0xffff);
    b.store_pkt_at(kOffIpDst, int_ip, 4);
    b.store_pkt_at(kOffL4Dst, int_port, 2);
    b.forward_imm(kInternalPort);

    b.bind(miss);
    b.class_tag("external_drop");
    b.drop();
  }

  b.bind(invalid);
  b.class_tag("invalid");
  b.drop();

  return b.finish();
}

}  // namespace bolt::nf
