#include "nf/lb.h"

#include "ir/builder.h"
#include "nf/framework.h"

namespace bolt::nf {

ir::Program Lb::program(std::uint16_t heartbeat_port) {
  ir::IrBuilder b("lb");

  ir::Label invalid = b.make_label();

  const ir::Reg ether_type = b.load_pkt_at(kOffEtherType, 2, "ethertype");
  b.br_false(b.eq_imm(ether_type, 0x0800), invalid);
  const ir::Reg ver_ihl = b.load_pkt_at(kOffIpVerIhl, 1, "version/ihl");
  b.br_false(b.eq_imm(b.shr_imm(ver_ihl, 4), 4), invalid);
  b.br_false(b.eq_imm(b.and_imm(ver_ihl, 0xf), 5), invalid);
  const ir::Reg proto = b.load_pkt_at(kOffIpProto, 1, "protocol");
  const ir::Reg is_tcp = b.eq_imm(proto, 6);
  const ir::Reg is_udp = b.eq_imm(proto, 17);
  b.br_false(b.bor(is_tcp, is_udp), invalid);

  // Heartbeats: UDP datagrams to the health port from the backend subnet
  // (172.16.0.0/16).
  ir::Label not_heartbeat = b.make_label();
  b.br_false(is_udp, not_heartbeat);
  const ir::Reg dst_port = b.load_pkt_at(kOffL4Dst, 2, "L4 dst port");
  b.br_false(b.eq_imm(dst_port, heartbeat_port), not_heartbeat);
  const ir::Reg src_ip = b.load_pkt_at(kOffIpSrc, 4, "src IP");
  b.br_false(b.eq_imm(b.shr_imm(src_ip, 16), 0xac10), not_heartbeat);
  b.class_tag("heartbeat");
  b.call(dslib::LbState::kHeartbeat, ir::kNoReg, ir::kNoReg, "heartbeat");
  b.drop();

  b.bind(not_heartbeat);
  b.call(dslib::LbState::kExpire, ir::kNoReg, ir::kNoReg, "expire flows");

  const auto [found, backend] = b.call(dslib::LbState::kFlowLookup, ir::kNoReg,
                                       ir::kNoReg, "flow lookup");
  ir::Label new_flow = b.make_label();
  b.br_false(found, new_flow);

  const auto [alive, unused] = b.call(dslib::LbState::kBackendAlive, backend,
                                      ir::kNoReg, "health check");
  (void)unused;
  ir::Label dead = b.make_label();
  b.br_false(alive, dead);
  b.class_tag("existing_live");
  b.forward(backend);

  b.bind(dead);
  const auto [new_backend, u2] = b.call(dslib::LbState::kReselect, ir::kNoReg,
                                        ir::kNoReg, "reselect backend");
  (void)u2;
  b.class_tag("existing_unresponsive");
  b.forward(new_backend);

  b.bind(new_flow);
  const auto [selected, u3] = b.call(dslib::LbState::kRingSelect, ir::kNoReg,
                                     ir::kNoReg, "ring select");
  (void)u3;
  b.class_tag("new_flow");
  b.forward(selected);

  b.bind(invalid);
  b.class_tag("invalid");
  b.drop();

  return b.finish();
}

}  // namespace bolt::nf
