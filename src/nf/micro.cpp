#include "nf/micro.h"

#include <algorithm>

#include "ir/builder.h"
#include "support/assert.h"
#include "support/random.h"

namespace bolt::nf {

ir::Program MicroTraversal::chase_program(std::size_t nodes,
                                          std::size_t scratch_slots) {
  // Loop state lives in registers (as a compiled traversal's would), so the
  // per-node cost is the load plus minimal loop overhead.
  ir::IrBuilder b("micro_chase");
  b.set_scratch_slots(scratch_slots);
  const ir::Reg node = b.imm(0, "list head");
  const ir::Reg count = b.imm(0);
  const ir::Reg one = b.imm(1);
  const ir::Reg limit = b.imm(nodes);

  ir::Label loop = b.make_label();
  ir::Label done = b.make_label();
  b.bind(loop);
  b.loop_head("chase");
  b.br_false(b.ltu(count, limit), done);
  b.assign(node, b.load_mem(node));  // node = scratch[node]
  b.assign(count, b.add(count, one));
  b.jmp(loop);

  b.bind(done);
  b.class_tag("traversal");
  b.drop();
  return b.finish();
}

ir::Program MicroTraversal::array_program(std::size_t nodes,
                                          std::size_t stride_slots,
                                          std::size_t scratch_slots) {
  ir::IrBuilder b("micro_array");
  b.set_scratch_slots(scratch_slots);
  const ir::Reg slot = b.imm(0);
  const ir::Reg acc = b.imm(0);
  const ir::Reg count = b.imm(0);
  const ir::Reg one = b.imm(1);
  const ir::Reg stride = b.imm(stride_slots);
  const ir::Reg limit = b.imm(nodes);

  ir::Label loop = b.make_label();
  ir::Label done = b.make_label();
  b.bind(loop);
  b.loop_head("walk");
  b.br_false(b.ltu(count, limit), done);
  // Address from the induction variable: independent loads -> MLP applies.
  const ir::Reg v = b.load_mem(slot);
  b.assign(acc, b.add(acc, v));
  b.assign(slot, b.add(slot, stride));
  b.assign(count, b.add(count, one));
  b.jmp(loop);

  b.bind(done);
  b.class_tag("traversal");
  b.drop();
  return b.finish();
}

std::vector<std::uint64_t> MicroTraversal::scattered_list(
    std::size_t nodes, std::size_t spread_slots, std::uint64_t seed) {
  BOLT_CHECK(nodes >= 2, "need at least two nodes");
  // Random cycle over node positions i*spread_slots (Sattolo's algorithm
  // produces a single cycle, so the chase visits every node).
  support::Rng rng(seed);
  std::vector<std::size_t> order(nodes);
  for (std::size_t i = 0; i < nodes; ++i) order[i] = i;
  for (std::size_t i = nodes - 1; i > 0; --i) {
    const std::size_t j = rng.below(i);
    std::swap(order[i], order[j]);
  }
  std::vector<std::uint64_t> scratch(nodes * spread_slots, 0);
  // Link positions in `order` into a cycle, anchored so slot 0 is on it.
  // order[k] -> order[k+1]; finally order[last] -> order[0].
  std::vector<std::uint64_t> slot_of(nodes);
  for (std::size_t i = 0; i < nodes; ++i) slot_of[i] = i * spread_slots;
  // Make sure the chain starts at slot 0 (node order[0] may not be 0):
  // rotate the order so order[0] == 0.
  std::size_t zero_pos = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    if (order[i] == 0) { zero_pos = i; break; }
  }
  std::rotate(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(zero_pos),
              order.end());
  for (std::size_t k = 0; k < nodes; ++k) {
    const std::size_t from = slot_of[order[k]];
    const std::size_t to = slot_of[order[(k + 1) % nodes]];
    scratch[from] = to;
  }
  return scratch;
}

std::vector<std::uint64_t> MicroTraversal::contiguous_list(std::size_t nodes) {
  // One node per cache line (8 slots of 8 B): node i at slot 8*i points to
  // slot 8*(i+1); the tail closes the cycle.
  std::vector<std::uint64_t> scratch(nodes * 8, 0);
  for (std::size_t i = 0; i < nodes; ++i) {
    scratch[8 * i] = 8 * ((i + 1) % nodes);
  }
  return scratch;
}

}  // namespace bolt::nf
