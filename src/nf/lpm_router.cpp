#include "nf/lpm_router.h"

#include "ir/builder.h"
#include "nf/framework.h"

namespace bolt::nf {

ir::Program SimpleLpmRouter::program() {
  // Algorithm 1: if etherType == IPv4 { forward(lpmGet(dst)) } else drop.
  ir::IrBuilder b("lpm_simple");
  ir::Label invalid = b.make_label();
  const ir::Reg ether_type = b.load_pkt_at(kOffEtherType, 2, "ethertype");
  b.br_false(b.eq_imm(ether_type, 0x0800), invalid);
  const ir::Reg dst = b.load_pkt_at(kOffIpDst, 4, "dst address");
  const auto [port, unused] =
      b.call(dslib::LpmTrieState::kLookup, dst, ir::kNoReg, "lpmGet");
  (void)unused;
  b.class_tag("valid");
  b.forward(port);
  b.bind(invalid);
  b.class_tag("invalid");
  b.drop();
  return b.finish();
}

ir::Program DirLpmRouter::program() {
  ir::IrBuilder b("lpm_dir24_8");
  ir::Label invalid = b.make_label();
  const ir::Reg ether_type = b.load_pkt_at(kOffEtherType, 2, "ethertype");
  b.br_false(b.eq_imm(ether_type, 0x0800), invalid);
  const ir::Reg ver_ihl = b.load_pkt_at(kOffIpVerIhl, 1, "version/ihl");
  b.br_false(b.eq_imm(b.shr_imm(ver_ihl, 4), 4), invalid);
  // TTL check + decrement (routers do this; adds a store to the trace).
  const ir::Reg ttl = b.load_pkt_at(22, 1, "TTL");
  b.br_false(b.gtu(ttl, b.imm(1)), invalid);
  b.store_pkt_at(22, b.sub(ttl, b.imm(1)), 1);
  const ir::Reg dst = b.load_pkt_at(kOffIpDst, 4, "dst address");
  const auto [port, unused] =
      b.call(dslib::LpmDirState::kLookup, dst, ir::kNoReg, "LPM lookup");
  (void)unused;
  b.class_tag("ipv4");
  b.forward(port);
  b.bind(invalid);
  b.class_tag("invalid");
  b.drop();
  return b.finish();
}

}  // namespace bolt::nf
