// The Maglev-like load balancer (paper NF "LB").
//
// Heartbeats from backends refresh health state; external flows are pinned
// to backends via the flow table, falling back to the Maglev ring for new
// flows and for flows whose backend stopped responding.
#pragma once

#include "dslib/lb_state.h"
#include "ir/program.h"
#include "perf/pcv.h"

namespace bolt::nf {

struct Lb {
  /// Class tags: invalid / heartbeat / new_flow / existing_live /
  /// existing_unresponsive.
  static ir::Program program(std::uint16_t heartbeat_port = 7000);

  static dslib::MethodTable methods(perf::PcvRegistry& reg,
                                    const dslib::LbState::Config& config) {
    return dslib::LbState::method_table(reg, config);
  }
};

}  // namespace bolt::nf
