#include "nf/firewall.h"

#include "ir/builder.h"
#include "nf/framework.h"

namespace bolt::nf {

ir::Program Firewall::program() {
  ir::IrBuilder b("firewall");
  ir::Label invalid = b.make_label();
  ir::Label denied = b.make_label();

  const ir::Reg ether_type = b.load_pkt_at(kOffEtherType, 2, "ethertype");
  b.br_false(b.eq_imm(ether_type, 0x0800), invalid);
  const ir::Reg ver_ihl = b.load_pkt_at(kOffIpVerIhl, 1, "version/ihl");
  b.br_false(b.eq_imm(b.shr_imm(ver_ihl, 4), 4), invalid);

  // Policy 1: drop anything with IP options.
  const ir::Reg ihl = b.and_imm(ver_ihl, 0xf);
  ir::Label options = b.make_label();
  b.br_false(b.eq_imm(ihl, 5), options);

  // Policy 2: stateless allowlist — small match chain over proto and dst
  // port ranges (this is the firewall's "477 instructions" of real work).
  const ir::Reg proto = b.load_pkt_at(kOffIpProto, 1, "protocol");
  const ir::Reg is_tcp = b.eq_imm(proto, 6);
  const ir::Reg is_udp = b.eq_imm(proto, 17);
  b.br_false(b.bor(is_tcp, is_udp), denied);

  const ir::Reg dst_port = b.load_pkt_at(kOffL4Dst, 2, "dst port");
  // Allowed: well-known services (<1024), the 5000-5999 block, and 7000.
  const ir::Reg wk = b.ltu(dst_port, b.imm(1024));
  const ir::Reg blk_lo = b.geu(dst_port, b.imm(5000));
  const ir::Reg blk_hi = b.ltu(dst_port, b.imm(6000));
  const ir::Reg blk = b.band(blk_lo, blk_hi);
  const ir::Reg hb = b.eq_imm(dst_port, 7000);
  const ir::Reg allowed = b.bor(b.bor(wk, blk), hb);
  b.br_false(allowed, denied);

  // Bogon source check (two prefixes).
  const ir::Reg src_ip = b.load_pkt_at(kOffIpSrc, 4, "src IP");
  const ir::Reg bogon1 = b.eq_imm(b.shr_imm(src_ip, 24), 127);   // 127/8
  const ir::Reg bogon2 = b.eq_imm(b.shr_imm(src_ip, 28), 0xe);   // 224/4
  b.br_true(b.bor(bogon1, bogon2), denied);

  b.class_tag("no_options");
  b.forward_imm(0);

  b.bind(options);
  b.class_tag("ip_options");
  b.drop();

  b.bind(denied);
  b.class_tag("denied");
  b.drop();

  b.bind(invalid);
  b.class_tag("invalid");
  b.drop();

  return b.finish();
}

ir::Program StaticRouter::program() {
  ir::IrBuilder b("static_router");
  ir::Label invalid = b.make_label();

  const ir::Reg ether_type = b.load_pkt_at(kOffEtherType, 2, "ethertype");
  b.br_false(b.eq_imm(ether_type, 0x0800), invalid);
  const ir::Reg ver_ihl = b.load_pkt_at(kOffIpVerIhl, 1, "version/ihl");
  b.br_false(b.eq_imm(b.shr_imm(ver_ihl, 4), 4), invalid);

  // TTL handling (fixed cost on every forwarded packet).
  const ir::Reg ttl = b.load_pkt_at(22, 1, "TTL");
  b.br_false(b.gtu(ttl, b.imm(1)), invalid);
  b.store_pkt_at(22, b.sub(ttl, b.imm(1)), 1);

  const ir::Reg ihl = b.and_imm(ver_ihl, 0xf);
  ir::Label has_options = b.make_label();
  b.br_false(b.eq_imm(ihl, 5), has_options);
  b.class_tag("no_options");
  b.forward_imm(1);

  // --- IP options walk: one 32-bit option word at a time ---
  b.bind(has_options);
  b.class_tag("ip_options");
  const std::int32_t off_slot = b.local("option offset");
  const std::int32_t end_slot = b.local("options end");
  b.store_local(off_slot, b.imm(34, "first option word"));
  const ir::Reg hdr_bytes = b.shl_imm(ihl, 2);
  b.store_local(end_slot, b.add(b.imm(14), hdr_bytes));

  ir::Label loop = b.make_label();
  ir::Label done = b.make_label();
  b.bind(loop);
  b.loop_head("n");
  const ir::Reg off = b.load_local(off_slot);
  const ir::Reg end = b.load_local(end_slot);
  b.br_false(b.ltu(off, end), done);

  const ir::Reg kind = b.load_pkt(off, 1, "option kind");
  // RFC 781 timestamp option: record a timestamp into the option data
  // (an expensive read-modify-write); anything else is skipped cheaply.
  ir::Label next = b.make_label();
  const ir::Reg is_ts = b.eq_imm(kind, 68);
  ir::Label not_ts = b.make_label();
  b.br_false(is_ts, not_ts);
  {
    const ir::Reg now = b.pkt_time();
    // Millisecond timestamp per RFC 781 (ns / 2^20 approximates ms cheaply;
    // the router trades precision for speed, like real fast paths do).
    const ir::Reg ms = b.shr_imm(now, 20);
    const ir::Reg data_off = b.add_imm(off, 2);
    const ir::Reg old = b.load_pkt(data_off, 2, "ts slot state");
    const ir::Reg merged = b.bxor(b.and_imm(ms, 0xffff), b.and_imm(old, 0));
    b.store_pkt(data_off, merged, 2);
    b.jmp(next);
  }
  b.bind(not_ts);
  {
    // Non-timestamp option: validate the kind byte range (cheap).
    const ir::Reg upper = b.leu(kind, b.imm(148));
    (void)upper;
    b.jmp(next);
  }
  b.bind(next);
  b.store_local(off_slot, b.add_imm(off, 4));
  b.jmp(loop);

  b.bind(done);
  b.forward_imm(1);

  b.bind(invalid);
  b.class_tag("invalid");
  b.drop();

  return b.finish();
}

}  // namespace bolt::nf
