// Per-packet framing costs of the packet-I/O framework — the reproduction's
// stand-in for DPDK + the ixgbe driver (paper §3.5, "Including DPDK and NIC
// driver code"). BOLT can analyse either just the NF (zero framing) or the
// full stack (these constants folded into every path).
#pragma once

#include <cstdint>

#include "ir/interp.h"

namespace bolt::nf {

struct FrameworkCosts {
  std::uint64_t rx_instructions = 120;
  std::uint64_t rx_accesses = 12;
  std::uint64_t tx_instructions = 90;
  std::uint64_t tx_accesses = 8;
  std::uint64_t drop_instructions = 40;
  std::uint64_t drop_accesses = 3;
};

/// NF-only analysis: the framework contributes nothing (paper's level 1).
inline FrameworkCosts framework_none() { return FrameworkCosts{0, 0, 0, 0, 0, 0}; }
/// Full-stack analysis (paper's level 2).
inline FrameworkCosts framework_full() { return FrameworkCosts{}; }

/// Applies framework costs to interpreter options.
inline void apply_framework(ir::InterpreterOptions& options,
                            const FrameworkCosts& fw) {
  options.rx_instructions = fw.rx_instructions;
  options.rx_accesses = fw.rx_accesses;
  options.tx_instructions = fw.tx_instructions;
  options.tx_accesses = fw.tx_accesses;
  options.drop_instructions = fw.drop_instructions;
  options.drop_accesses = fw.drop_accesses;
}

// Wire offsets shared by the NF programs (Ethernet + IPv4, ihl=5).
inline constexpr std::uint64_t kOffEthDst = 0;
inline constexpr std::uint64_t kOffEthSrc = 6;
inline constexpr std::uint64_t kOffEtherType = 12;
inline constexpr std::uint64_t kOffIpVerIhl = 14;
inline constexpr std::uint64_t kOffIpProto = 23;
inline constexpr std::uint64_t kOffIpSrc = 26;
inline constexpr std::uint64_t kOffIpDst = 30;
inline constexpr std::uint64_t kOffL4Src = 34;  ///< when ihl == 5
inline constexpr std::uint64_t kOffL4Dst = 36;

/// The port id NFs use to mean "flood to every port".
inline constexpr std::uint64_t kFloodPort = 0xffff;

}  // namespace bolt::nf
