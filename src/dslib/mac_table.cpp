#include "dslib/mac_table.h"

#include "dslib/costs.h"
#include "net/flow.h"

namespace bolt::dslib {

MacTable::MacTable(const Config& config)
    : config_(config),
      table_(FlowTable::Config{config.capacity, config.ttl_ns,
                               config.stamp_granularity_ns,
                               config.initial_hash_key}),
      rekey_state_(config.rekey_seed) {}

MacTable::LearnResult MacTable::learn(std::uint64_t mac, std::uint16_t port,
                                      std::uint64_t now_ns,
                                      ir::CostMeter& meter) {
  LearnResult result;
  const FlowTable::PutResult put = table_.put(mac, port, now_ns, meter);
  result.stats = put.stats;
  result.occupancy = table_.occupancy();
  switch (put.outcome) {
    case FlowTable::PutCase::kUpdate:
      result.outcome = LearnCase::kKnown;
      return result;
    case FlowTable::PutCase::kFull:
      result.outcome = LearnCase::kFull;
      return result;
    case FlowTable::PutCase::kNew:
      break;
  }
  if (put.stats.traversals > config_.rehash_threshold) {
    rehash(meter);
    result.outcome = LearnCase::kRehash;
    return result;
  }
  result.outcome = LearnCase::kNew;
  return result;
}

void MacTable::rehash(ir::CostMeter& meter) {
  ++rehash_count_;
  // New secret key (splitmix64 step over the rekey state).
  rekey_state_ += 0x9e3779b97f4a7c15ULL;
  const std::uint64_t new_key = net::mix64(rekey_state_);

  // Fixed cost: allocate/zero the new bucket array.
  meter.metered_instructions(cost::kRehashFixed);
  for (std::size_t b = 0; b < table_.bucket_count(); ++b) {
    meter.mem_write(ir::kScratchBase /*rebuild staging*/ + 8 * b, 8);
  }
  // Per-entry cost: read the entry, relink under the new key.
  const std::size_t occupancy = table_.occupancy();
  for (std::size_t i = 0; i < occupancy; ++i) {
    meter.metered_instructions(cost::kReinsertPer + cost::kReinsertStep);
    meter.mem_read(ir::kScratchBase + 8 * i, 8);
    meter.mem_write(ir::kScratchBase + 8 * i, 8);
    meter.mem_write(ir::kScratchBase + 8 * (i % table_.bucket_count()), 8);
  }
  table_.rekey(new_key);
}

MacTable::LookupResult MacTable::lookup(std::uint64_t mac,
                                        ir::CostMeter& meter) {
  LookupResult result;
  const FlowTable::GetResult got = table_.get(mac, meter);
  result.found = got.found;
  result.port = static_cast<std::uint16_t>(got.value);
  result.stats = got.stats;
  return result;
}

FlowTable::ExpireResult MacTable::expire(std::uint64_t now_ns,
                                         ir::CostMeter& meter) {
  return table_.expire(now_ns, meter);
}

}  // namespace bolt::dslib
