// Longest-prefix-match structures.
//
// Two implementations, mirroring the paper:
//  * LpmTrie — the Patricia/bit-trie of the running example (§2.1). Lookup
//    cost is linear in the matched prefix length l: the contract is the
//    paper's Table 2 (4·l + 2 instructions, l + 1 memory accesses), with
//    the per-bit cost actually varying (3 or 4) under the hood — the
//    coalescing example of §3.2.
//  * LpmDir24_8 — DPDK-style two-tier table (§5.1): prefixes <= 24 bits
//    resolve with exactly one lookup, longer ones with exactly two.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/cost.h"

namespace bolt::dslib {

/// Bit-trie LPM (the paper's running example).
class LpmTrie {
 public:
  LpmTrie();

  void insert(std::uint32_t prefix, int length, std::uint16_t port);

  struct LookupResult {
    std::uint16_t port = 0;
    std::uint64_t matched_length = 0;  ///< PCV l: trie depth walked
  };
  LookupResult lookup(std::uint32_t addr, ir::CostMeter& meter) const;

  std::size_t node_count() const { return nodes_.size(); }

 private:
  static constexpr std::int32_t kNil = -1;
  struct Node {
    std::int32_t child[2] = {kNil, kNil};
    std::uint16_t port = 0;
    bool has_route = false;  ///< a prefix ends exactly here
  };
  std::uint64_t arena_base_;
  std::vector<Node> nodes_;  // node 0 is the root (default route port 0)
};

/// DPDK-style DIR-24-8 LPM: tbl24 (2^24 entries) + tbl8 groups.
class LpmDir24_8 {
 public:
  LpmDir24_8();

  void insert(std::uint32_t prefix, int length, std::uint16_t port);

  enum class LookupCase { kOneLookup, kTwoLookups };
  struct LookupResult {
    std::uint16_t port = 0;
    LookupCase tier = LookupCase::kOneLookup;
  };
  LookupResult lookup(std::uint32_t addr, ir::CostMeter& meter) const;

  std::size_t tbl8_groups() const { return tbl8_.size() / 256; }

 private:
  // tbl24 entry encoding: bit 15 set -> bits 0..14 index a tbl8 group;
  // otherwise the entry is the egress port itself.
  static constexpr std::uint16_t kIndirect = 0x8000;
  struct Tbl24Meta {
    std::uint8_t depth = 0;  ///< prefix length that wrote this entry
  };
  std::uint16_t allocate_tbl8(std::uint16_t fill_port, std::uint8_t fill_depth);

  std::uint64_t arena_base_;
  std::vector<std::uint16_t> tbl24_;
  std::vector<std::uint8_t> depth24_;
  std::vector<std::uint16_t> tbl8_;
  std::vector<std::uint8_t> depth8_;
};

}  // namespace bolt::dslib
