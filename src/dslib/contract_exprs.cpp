#include "dslib/contract_exprs.h"

#include "dslib/costs.h"
#include "dslib/method.h"

namespace bolt::dslib {

using perf::Metric;
using perf::MetricExprs;
using perf::Monomial;
using perf::PerfExpr;

namespace {

CostShape make(PerfExpr instr, PerfExpr ma, PerfExpr unique) {
  CostShape out;
  out.exprs.set(Metric::kInstructions, std::move(instr));
  out.exprs.set(Metric::kMemoryAccesses, std::move(ma));
  out.unique_lines = std::move(unique);
  return out;
}

PerfExpr k(std::int64_t v) { return PerfExpr::constant(v); }
PerfExpr v(perf::PcvId id) { return PerfExpr::pcv(id); }

}  // namespace

void add_case(perf::MethodContract& contract, const std::string& label,
              const CostShape& shape) {
  contract.add_case(label, shape.exprs);
  contract.set_unique_lines(label, shape.unique_lines);
}

FlowPcvs FlowPcvs::standard(perf::PcvRegistry& reg) {
  intern_standard_pcvs(reg);
  return FlowPcvs{reg.require(pcv::kCollisions), reg.require(pcv::kTraversals),
                  reg.require(pcv::kExpired), reg.require(pcv::kOccupancy)};
}

// Accounting notes (see flow_table.cpp):
//   walk: 1 bucket read, t entry-tag reads (each a fresh entry line),
//   c full-key reads (same line as the tag that matched), plus per-outcome
//   finishes. Unique lines of a walk: bucket + t entries.

CostShape ft_get_hit(const FlowPcvs& p) {
  return make(
      k(cost::kHash + cost::kBucketHead + cost::kHitFinish) +
          v(p.t).scaled(cost::kTraverseHi) + v(p.c).scaled(cost::kCollisionHi),
      v(p.t) + v(p.c) + k(3),
      v(p.t) + k(1));
}

CostShape ft_touch_hit(const FlowPcvs& p) {
  // get-hit plus the stamp refresh (a write to the already-fetched entry
  // line, hence no extra unique line).
  CostShape shape = ft_get_hit(p);
  shape.exprs.set(Metric::kInstructions,
                  shape.exprs.get(Metric::kInstructions) + k(cost::kRefresh));
  shape.exprs.set(Metric::kMemoryAccesses,
                  shape.exprs.get(Metric::kMemoryAccesses) + k(1));
  return shape;
}

CostShape ft_get_miss(const FlowPcvs& p) {
  return make(
      k(cost::kHash + cost::kBucketHead + cost::kMissFinish) +
          v(p.t).scaled(cost::kTraverseHi) + v(p.c).scaled(cost::kCollisionHi),
      v(p.t) + v(p.c) + k(1),
      v(p.t) + k(1));
}

CostShape ft_put_update(const FlowPcvs& p) {
  return make(
      k(cost::kHash + cost::kBucketHead + cost::kRefresh) +
          v(p.t).scaled(cost::kTraverseHi) + v(p.c).scaled(cost::kCollisionHi),
      v(p.t) + v(p.c) + k(4),
      v(p.t) + k(1));
}

CostShape ft_put_new(const FlowPcvs& p) {
  // The inserted entry occupies a fresh line (key write), the value write
  // shares it, and the bucket-head write re-touches the bucket line.
  return make(
      k(cost::kHash + cost::kBucketHead + cost::kInsert) +
          v(p.t).scaled(cost::kTraverseHi) + v(p.c).scaled(cost::kCollisionHi),
      v(p.t) + v(p.c) + k(4),
      v(p.t) + k(2));
}

CostShape ft_put_full(const FlowPcvs& p) {
  return make(
      k(cost::kHash + cost::kBucketHead + cost::kFullFinish) +
          v(p.t).scaled(cost::kTraverseHi) + v(p.c).scaled(cost::kCollisionHi),
      v(p.t) + v(p.c) + k(1),
      v(p.t) + k(1));
}

CostShape ft_expire(const FlowPcvs& p, const CostShape* per_evict_extra) {
  const Monomial et = Monomial::pcv(p.e) * Monomial::pcv(p.t);
  const Monomial ec = Monomial::pcv(p.e) * Monomial::pcv(p.c);
  // Per expired entry: one loop check + fixed erase/unlink cost, plus the
  // amortised chain walk (e·t) and collision compares (e·c).
  PerfExpr instr = k(cost::kExpireCheck) +
                   v(p.e).scaled(cost::kExpireCheck + cost::kExpirePer) +
                   PerfExpr::term(cost::kEraseStepHi, et) +
                   PerfExpr::term(cost::kCollisionHi, ec);
  // Accesses: loop stamp reads (e+1), per-entry bucket+tag walk+key walk+
  // unlink+stamp (t+c+5 amortised — see flow_table.cpp accounting).
  PerfExpr ma = k(1) + v(p.e).scaled(5) + PerfExpr::term(1, et) +
                PerfExpr::term(1, ec);
  // Unique lines: the walk's tag reads are fresh entry lines (e·t); the
  // collision key reads, the unlink write and the stamp write re-touch
  // lines the same erase already fetched. The LRU-head stamp read and the
  // bucket re-read are counted unique per erase (the L1 cannot be assumed
  // to retain them across a long sweep).
  PerfExpr unique = k(1) + v(p.e).scaled(2) + PerfExpr::term(1, et);
  if (per_evict_extra != nullptr) {
    instr += v(p.e) * per_evict_extra->exprs.get(Metric::kInstructions);
    ma += v(p.e) * per_evict_extra->exprs.get(Metric::kMemoryAccesses);
    unique += v(p.e) * per_evict_extra->unique_lines;
  }
  return make(std::move(instr), std::move(ma), std::move(unique));
}

CostShape mac_rehash_extra(const FlowPcvs& p, std::size_t capacity) {
  const Monomial to = Monomial::pcv(p.t) * Monomial::pcv(p.o);
  PerfExpr instr = k(cost::kRehashFixed) +
                   v(p.o).scaled(cost::kReinsertPer) +
                   PerfExpr::term(cost::kReinsertStep, to);
  PerfExpr ma = k(static_cast<std::int64_t>(capacity)) + v(p.o).scaled(3);
  // Bucket-array clear streams capacity/8 lines; each reinserted entry
  // touches its own line plus a bucket line.
  PerfExpr unique =
      k(static_cast<std::int64_t>(capacity / 8 + 1)) + v(p.o).scaled(2);
  return make(std::move(instr), std::move(ma), std::move(unique));
}

CostShape alloc_a_cost() {
  // alloc: head read + node read + head write + (maybe) new-head write;
  // the head writes re-touch the head line.
  return make(k(cost::kAllocA), k(4), k(2));
}

CostShape free_a_cost() {
  return make(k(cost::kFreeA), k(3), k(2));
}

CostShape alloc_b_cost(perf::PcvId s) {
  // The bitmap scan reads consecutive bytes; a fresh line only every 64
  // probes, but the expert prices each probe's line conservatively.
  return make(k(cost::kAllocBBase) + v(s).scaled(cost::kAllocBProbe),
              v(s) + k(1), v(s) + k(1));
}

CostShape free_b_cost() {
  return make(k(cost::kFreeB), k(1), k(1));
}

CostShape parse_flow_cost() {
  // Six header reads spanning at most two packet lines.
  return make(k(cost::kParseFlow), k(cost::kParseAccesses), k(2));
}

}  // namespace bolt::dslib
