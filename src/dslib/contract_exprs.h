// Shared builders for the manually derived method-contract expressions.
//
// Every coefficient here is read directly off the metered implementations
// in flow_table.cpp / mac_table.cpp / port_allocator.cpp, with conservative
// coalescing applied where the implementation's cost varies below the
// coefficient (kTraverseHi vs kTraverseLo etc.). This is the "expert
// pre-analysis" of the paper's §3.2 — done once per data structure, reused
// by every NF.
//
// Each shape carries, besides the instruction/memory-access expressions,
// the *unique-cache-line* expression: the accesses that touch a line the
// call has not provably touched before. Entry records occupy one 64-byte
// line each (tag/key/value/stamp/next), so e.g. a collision's full-key
// compare re-reads the line its tag compare just fetched — the expert can
// prove that L1 hit, and the conservative cycle model prices it as such
// (paper §3.5's spatial/temporal locality tracking).
#pragma once

#include "perf/contract.h"
#include "perf/pcv.h"

namespace bolt::dslib {

/// PCV ids a flow-table contract speaks about.
struct FlowPcvs {
  perf::PcvId c, t, e, o;
  static FlowPcvs standard(perf::PcvRegistry& reg);
};

/// One method-case cost shape: metric expressions + unique-line accesses.
struct CostShape {
  perf::MetricExprs exprs;
  perf::PerfExpr unique_lines;

  CostShape operator+(const CostShape& other) const {
    return CostShape{exprs + other.exprs, unique_lines + other.unique_lines};
  }
};

/// Registers a case (expressions + unique lines) on a method contract.
void add_case(perf::MethodContract& contract, const std::string& label,
              const CostShape& shape);

// FlowTable method shapes:
CostShape ft_get_hit(const FlowPcvs& p);
CostShape ft_get_miss(const FlowPcvs& p);
/// get + timestamp refresh on hit (FlowTable::touch).
CostShape ft_touch_hit(const FlowPcvs& p);
CostShape ft_put_update(const FlowPcvs& p);
CostShape ft_put_new(const FlowPcvs& p);
CostShape ft_put_full(const FlowPcvs& p);
/// expire() including the e·t / e·c cross terms; `per_evict_extra` adds a
/// composite's per-eviction cost (e.g. NAT reverse-mapping erase + port
/// free), expressed per expired entry.
CostShape ft_expire(const FlowPcvs& p, const CostShape* per_evict_extra = nullptr);

/// MacTable rehash addendum (added on top of ft_put_new for the rehash
/// case): fixed rebuild + per-entry reinsertion, with the conservative
/// t·o cross term. `capacity` prices the bucket-array clear.
CostShape mac_rehash_extra(const FlowPcvs& p, std::size_t capacity);

/// Port allocator costs.
CostShape alloc_a_cost();
CostShape free_a_cost();
CostShape alloc_b_cost(perf::PcvId s);
CostShape free_b_cost();

/// Five-tuple parse performed inside composite stateful methods.
CostShape parse_flow_cost();

}  // namespace bolt::dslib
