// The two NAT port allocators compared in the paper's §5.3 (Figures 5–7).
//
// Both allocate ports from a fixed range and are O(1) in the big-O sense,
// but with different constants in different regimes:
//
//  * Allocator A — doubly-linked free list. alloc() unlinks the head,
//    free() relinks anywhere: flat cost regardless of occupancy or churn,
//    with somewhat heavy constants (two-way pointer maintenance).
//
//  * Allocator B — occupancy bitmap + rotating scan cursor. free() flips a
//    bit (cheap). alloc() scans the bitmap from the cursor until a free
//    slot is found: nearly free at low occupancy, increasingly expensive as
//    the range fills up (the probe count `s` is the contract's PCV).
//
// Both implement PortAllocator so NatState can be instantiated with either.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "ir/cost.h"

namespace bolt::dslib {

class PortAllocator {
 public:
  virtual ~PortAllocator() = default;

  struct AllocResult {
    bool ok = false;
    std::uint16_t port = 0;
    std::uint64_t probes = 0;  ///< PCV s (allocator B; 0 for A)
  };

  virtual AllocResult alloc(ir::CostMeter& meter) = 0;
  virtual void free(std::uint16_t port, ir::CostMeter& meter) = 0;
  virtual std::size_t in_use() const = 0;
  virtual std::size_t range_size() const = 0;
  virtual const char* name() const = 0;
};

/// Allocator A: doubly-linked free list over the port range.
class PortAllocatorA final : public PortAllocator {
 public:
  PortAllocatorA(std::uint16_t first_port, std::size_t count);

  AllocResult alloc(ir::CostMeter& meter) override;
  void free(std::uint16_t port, ir::CostMeter& meter) override;
  std::size_t in_use() const override { return in_use_; }
  std::size_t range_size() const override { return count_; }
  const char* name() const override { return "allocator-A(dlist)"; }

 private:
  static constexpr std::int32_t kNil = -1;
  std::uint16_t first_port_;
  std::size_t count_;
  std::uint64_t arena_base_;
  std::vector<std::int32_t> prev_, next_;
  std::int32_t free_head_ = kNil;
  std::size_t in_use_ = 0;
};

/// Allocator B: occupancy bitmap with a rotating scan cursor.
class PortAllocatorB final : public PortAllocator {
 public:
  PortAllocatorB(std::uint16_t first_port, std::size_t count);

  AllocResult alloc(ir::CostMeter& meter) override;
  void free(std::uint16_t port, ir::CostMeter& meter) override;
  std::size_t in_use() const override { return in_use_; }
  std::size_t range_size() const override { return count_; }
  const char* name() const override { return "allocator-B(bitmap)"; }

 private:
  std::uint16_t first_port_;
  std::size_t count_;
  std::uint64_t arena_base_;
  std::vector<std::uint8_t> used_;
  std::size_t cursor_ = 0;
  std::size_t in_use_ = 0;
};

}  // namespace bolt::dslib
