#include "dslib/maglev.h"

#include "dslib/costs.h"
#include "net/flow.h"
#include "support/assert.h"

namespace bolt::dslib {

MaglevRing::MaglevRing(const Config& config)
    : config_(config), arena_base_(ir::ArenaAllocator::next_base()) {
  BOLT_CHECK(config_.backend_count >= 1, "need at least one backend");
  BOLT_CHECK(config_.table_size > config_.backend_count,
             "table must exceed backend count");
  last_heartbeat_.assign(config_.backend_count, 0);
  populate();
}

void MaglevRing::populate() {
  // Maglev population: backend i has offset/skip derived from two hashes;
  // backends take turns claiming their next preferred empty slot.
  const std::size_t m = config_.table_size;
  const std::size_t n = config_.backend_count;
  table_.assign(m, 0);
  std::vector<bool> taken(m, false);
  std::vector<std::size_t> offset(n), skip(n), index(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    offset[i] = net::mix64(0x0ff5e7'0000ULL + i) % m;
    skip[i] = net::mix64(0x5417'0000ULL + i) % (m - 1) + 1;
  }
  std::size_t filled = 0;
  while (filled < m) {
    for (std::size_t i = 0; i < n && filled < m; ++i) {
      // Next preference of backend i that is still free.
      std::size_t slot;
      do {
        slot = (offset[i] + index[i] * skip[i]) % m;
        ++index[i];
      } while (taken[slot]);
      taken[slot] = true;
      table_[slot] = static_cast<std::uint32_t>(i);
      ++filled;
    }
  }
}

MaglevRing::SelectResult MaglevRing::lookup(std::uint64_t key,
                                            ir::CostMeter& meter) const {
  SelectResult result;
  meter.metered_instructions(cost::kRingLookup);
  const std::size_t slot = net::mix64(key) % table_.size();
  meter.mem_read(arena_base_ + 4ULL * slot, 4);
  result.backend = table_[slot];
  return result;
}

bool MaglevRing::alive(std::uint32_t backend, std::uint64_t now_ns,
                       ir::CostMeter& meter) const {
  BOLT_CHECK(backend < config_.backend_count, "backend out of range");
  meter.metered_instructions(cost::kHealthCheck);
  meter.mem_read(heartbeat_base() + 8ULL * backend, 8);
  const std::uint64_t hb = last_heartbeat_[backend];
  return hb != 0 && hb + config_.heartbeat_timeout_ns > now_ns;
}

MaglevRing::SelectResult MaglevRing::select_alive(std::uint64_t key,
                                                  std::uint64_t now_ns,
                                                  ir::CostMeter& meter) const {
  SelectResult result = lookup(key, meter);
  const std::size_t home = net::mix64(key) % table_.size();
  std::size_t slot = home;
  for (std::size_t walked = 0; walked < table_.size(); ++walked) {
    const std::uint32_t candidate = table_[slot];
    if (alive(candidate, now_ns, meter)) {
      result.backend = candidate;
      return result;
    }
    ++result.ring_steps;
    meter.metered_instructions(cost::kRingStep);
    slot = slot + 1 == table_.size() ? 0 : slot + 1;
    meter.mem_read(arena_base_ + 4ULL * slot, 4);
  }
  // Every backend is dead; hand back the home backend (the LB will fail the
  // connection upstream). Steps reflect the full scan.
  result.backend = table_[home];
  return result;
}

void MaglevRing::heartbeat(std::uint32_t backend, std::uint64_t now_ns,
                           ir::CostMeter& meter) {
  BOLT_CHECK(backend < config_.backend_count, "backend out of range");
  meter.metered_instructions(cost::kHealthUpdate);
  meter.mem_write(heartbeat_base() + 8ULL * backend, 8);
  last_heartbeat_[backend] = now_ns;
}

void MaglevRing::all_alive(std::uint64_t now_ns) {
  for (auto& hb : last_heartbeat_) hb = now_ns;
}

}  // namespace bolt::dslib
