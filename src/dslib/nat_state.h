// NatState — the VigNAT-style NAT's stateful side: paired flow tables
// (internal five-tuple -> external port, external port -> internal
// endpoint), a pluggable port allocator, and coupled expiry that releases
// ports and reverse mappings.
#pragma once

#include <cstdint>
#include <memory>

#include "dslib/flow_table.h"
#include "dslib/method.h"
#include "dslib/port_allocator.h"
#include "perf/pcv.h"

namespace bolt::dslib {

class NatState {
 public:
  enum Method : std::int64_t {
    kExpire = 0,
    kLookupInt = 1,  ///< v0 = found, v1 = external port
    kLookupExt = 2,  ///< v0 = found, v1 = (internal ip << 16) | internal port
    kAddFlow = 3,    ///< v0 = ok, v1 = external port
  };

  enum class AllocatorKind { kA, kB };

  struct Config {
    FlowTable::Config flow;  ///< applies to both direction tables
    std::uint16_t first_external_port = 1024;
    AllocatorKind allocator = AllocatorKind::kA;
    std::uint32_t external_ip = 0xc6336401;  ///< 198.51.100.1
  };

  NatState(const Config& config, perf::PcvRegistry& reg);

  void bind(DispatchEnv& env);
  static MethodTable method_table(perf::PcvRegistry& reg, const Config& config);

  /// Coupled expiry sweep as of `now_ns`: every stale internal mapping is
  /// erased together with its reverse mapping, and its external port is
  /// released. Shared by the NF's own kExpire method (metered, feeds the
  /// e/t/c PCVs) and by the monitor's idle-epoch sweeps (silent meter).
  struct SweepResult {
    FlowTable::ExpireResult flow;
    std::uint64_t ext_walk = 0;        ///< reverse-map erase traversals
    std::uint64_t ext_collisions = 0;  ///< reverse-map erase collisions
  };
  SweepResult sweep_expired(std::uint64_t now_ns, ir::CostMeter& meter);

  FlowTable& internal_table() { return int_table_; }
  FlowTable& external_table() { return ext_table_; }
  PortAllocator& allocator() { return *allocator_; }
  const Config& config() const { return config_; }

  /// Paper §5.1 NAT1: full, fully colliding, fully stale state reachable by
  /// the probe flow key. Also marks the matching ports allocated so expiry
  /// frees them exactly as a real history would have left them.
  void synthesize_pathological(std::uint64_t probe_key, std::size_t count,
                               std::uint64_t stamp_ns);

 private:
  Config config_;
  FlowTable int_table_;
  FlowTable ext_table_;
  std::unique_ptr<PortAllocator> allocator_;
  perf::PcvId c_, t_, e_, o_, s_;
};

}  // namespace bolt::dslib
