// Maglev consistent-hashing ring with backend health tracking.
//
// Implements the lookup-table population algorithm from the Maglev paper
// (Eisenbud et al., NSDI 2016) that the paper's load balancer is modelled
// on: each backend fills the ring according to its own permutation of the
// table, giving near-equal shares and minimal disruption when the backend
// set changes.
//
// Health: backends are alive while their last heartbeat is fresh. When a
// flow's cached backend is unresponsive the LB walks the ring from the
// flow's home slot until it finds an alive backend; the number of steps is
// the PCV `b` of the LB contract.
#pragma once

#include <cstdint>
#include <vector>

#include "ir/cost.h"

namespace bolt::dslib {

class MaglevRing {
 public:
  struct Config {
    std::size_t backend_count = 16;
    std::size_t table_size = 4099;  ///< prime, per the Maglev construction
    std::uint64_t heartbeat_timeout_ns = 5'000'000'000;
  };

  explicit MaglevRing(const Config& config);

  /// (Re)builds the lookup table from the current backend set.
  void populate();

  struct SelectResult {
    std::uint32_t backend = 0;
    std::uint64_t ring_steps = 0;  ///< PCV b: slots walked past dead backends
  };

  /// Home backend of a key (one table read).
  SelectResult lookup(std::uint64_t key, ir::CostMeter& meter) const;

  /// Like lookup, but walks the ring past unresponsive backends. `now_ns`
  /// decides liveness. If every backend is dead, falls back to the home
  /// backend after a full walk (steps == table entries scanned).
  SelectResult select_alive(std::uint64_t key, std::uint64_t now_ns,
                            ir::CostMeter& meter) const;

  /// True if the backend's heartbeat is fresh.
  bool alive(std::uint32_t backend, std::uint64_t now_ns,
             ir::CostMeter& meter) const;

  /// Records a heartbeat from `backend`.
  void heartbeat(std::uint32_t backend, std::uint64_t now_ns,
                 ir::CostMeter& meter);

  /// Forces a backend silent (tests / scenario setup).
  void kill_backend(std::uint32_t backend) { last_heartbeat_[backend] = 0; }
  /// Marks all backends alive as of `now_ns` (scenario setup).
  void all_alive(std::uint64_t now_ns);

  std::size_t backend_count() const { return config_.backend_count; }
  std::size_t table_size() const { return table_.size(); }
  std::uint32_t table_entry(std::size_t i) const { return table_[i]; }

 private:
  /// Simulated address of the heartbeat-stamp array. It starts at the next
  /// cache-line boundary after the ring table: with an odd table_size the
  /// raw end address is only 4-aligned, and an 8-byte stamp straddling two
  /// lines costs an extra line fill the method contract does not price
  /// (the contract monitor caught exactly that as a 4-cycle violation).
  std::uint64_t heartbeat_base() const {
    return arena_base_ + ((4ULL * table_.size() + 63ULL) & ~63ULL);
  }

  Config config_;
  std::uint64_t arena_base_;
  std::vector<std::uint32_t> table_;           ///< slot -> backend
  std::vector<std::uint64_t> last_heartbeat_;  ///< backend -> stamp (0 = dead)
};

}  // namespace bolt::dslib
