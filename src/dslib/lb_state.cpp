#include "dslib/lb_state.h"

#include "dslib/contract_exprs.h"
#include "dslib/costs.h"
#include "net/flow.h"
#include "net/headers.h"
#include "support/assert.h"

namespace bolt::dslib {

using perf::Metric;
using perf::MetricExprs;
using perf::PerfExpr;

namespace {

net::FiveTuple parse_tuple(const net::Packet& packet, ir::CostMeter& meter) {
  meter.metered_instructions(cost::kParseFlow);
  for (std::uint64_t i = 0; i < cost::kParseAccesses; ++i) {
    meter.mem_read(ir::kPacketBase + 14 + 4 * i, 4);
  }
  const auto tuple = net::extract_five_tuple(packet);
  BOLT_CHECK(tuple.has_value(), "LB stateful method on non-flow packet");
  return *tuple;
}

CostShape make_const(std::int64_t instr, std::int64_t ma, std::int64_t unique) {
  CostShape out;
  out.exprs.set(Metric::kInstructions, PerfExpr::constant(instr));
  out.exprs.set(Metric::kMemoryAccesses, PerfExpr::constant(ma));
  out.unique_lines = PerfExpr::constant(unique);
  return out;
}

}  // namespace

LbState::LbState(const Config& config, perf::PcvRegistry& reg)
    : config_(config), flow_(config.flow), ring_(config.ring) {
  intern_standard_pcvs(reg);
  c_ = reg.require(pcv::kCollisions);
  t_ = reg.require(pcv::kTraversals);
  e_ = reg.require(pcv::kExpired);
  b_ = reg.require(pcv::kRingSteps);
}

void LbState::bind(DispatchEnv& env) {
  env.register_method(kExpire, [this](std::uint64_t, std::uint64_t,
                                      const net::Packet& pkt,
                                      ir::CostMeter& meter) {
    const auto r = flow_.expire(pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    out.v0 = r.expired;
    out.case_label = "expire";
    out.pcvs.set(e_, r.expired);
    out.pcvs.set(t_, r.amortised_walk);
    out.pcvs.set(c_, r.amortised_collisions);
    return out;
  });

  env.register_method(kFlowLookup, [this](std::uint64_t, std::uint64_t,
                                          const net::Packet& pkt,
                                          ir::CostMeter& meter) {
    const net::FiveTuple tuple = parse_tuple(pkt, meter);
    // touch: traffic keeps the flow pinned (stamp refresh on hit).
    const auto r = flow_.touch(tuple.key(), pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    out.v0 = r.found ? 1 : 0;
    out.v1 = r.value;
    out.case_label = r.found ? "hit" : "miss";
    out.pcvs.set(c_, r.stats.collisions);
    out.pcvs.set(t_, r.stats.traversals);
    return out;
  });

  env.register_method(kBackendAlive, [this](std::uint64_t backend,
                                            std::uint64_t,
                                            const net::Packet& pkt,
                                            ir::CostMeter& meter) {
    const bool alive = ring_.alive(static_cast<std::uint32_t>(backend),
                                   pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    out.v0 = alive ? 1 : 0;
    out.case_label = alive ? "alive" : "dead";
    return out;
  });

  auto select_handler = [this](bool is_reselect) {
    return [this, is_reselect](std::uint64_t, std::uint64_t,
                               const net::Packet& pkt, ir::CostMeter& meter) {
      const net::FiveTuple tuple = parse_tuple(pkt, meter);
      const auto sel =
          ring_.select_alive(tuple.key(), pkt.timestamp_ns(), meter);
      ir::CallOutcome out;
      out.v0 = sel.backend;
      out.pcvs.set(b_, sel.ring_steps);
      const auto put =
          flow_.put(tuple.key(), sel.backend, pkt.timestamp_ns(), meter);
      out.pcvs.set(c_, put.stats.collisions);
      out.pcvs.set(t_, put.stats.traversals);
      if (is_reselect) {
        BOLT_CHECK(put.outcome == FlowTable::PutCase::kUpdate,
                   "reselect must update an existing flow entry");
        out.case_label = "ok";
      } else {
        out.case_label =
            put.outcome == FlowTable::PutCase::kFull ? "full" : "ok";
      }
      return out;
    };
  };
  env.register_method(kRingSelect, select_handler(false));
  env.register_method(kReselect, select_handler(true));

  env.register_method(kHeartbeat, [this](std::uint64_t, std::uint64_t,
                                         const net::Packet& pkt,
                                         ir::CostMeter& meter) {
    // Backend identity: low bits of the source IP (172.16.0.0/16 pool).
    meter.metered_instructions(6);
    meter.mem_read(ir::kPacketBase + 26, 4);
    const auto ip = net::parse_ipv4(pkt.bytes(), net::kEthernetHeaderSize);
    BOLT_CHECK(ip.has_value(), "heartbeat on non-IPv4 packet");
    const std::uint32_t backend =
        (ip->src.value & 0xffff) == 0
            ? 0
            : (ip->src.value & 0xffff) - 1;  // .1 -> backend 0
    ring_.heartbeat(backend % static_cast<std::uint32_t>(ring_.backend_count()),
                    pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    out.case_label = "ok";
    return out;
  });
}

MethodTable LbState::method_table(perf::PcvRegistry& reg,
                                  const Config& /*config*/) {
  const FlowPcvs p = FlowPcvs::standard(reg);
  const perf::PcvId b = reg.require(pcv::kRingSteps);

  MethodTable table;

  {  // expire
    MethodSpec spec;
    spec.name = "lb.expire";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      return std::vector<symbex::ModelOutcome>{
          symbex::fresh_value_outcome(symbols, "expire", "lb.expired", 32)};
    };
    spec.contract = perf::MethodContract("lb.expire");
    add_case(spec.contract, "expire", ft_expire(p));
    table.emplace(kExpire, std::move(spec));
  }

  {  // flow_lookup
    MethodSpec spec;
    spec.name = "lb.flow_lookup";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs;
      symbex::ModelOutcome hit;
      hit.case_label = "hit";
      hit.ret0 = symbex::Expr::constant(1);
      hit.ret1 = symbex::Expr::symbol(symbols.fresh("lb.backend", 16));
      outs.push_back(std::move(hit));
      symbex::ModelOutcome miss;
      miss.case_label = "miss";
      miss.ret0 = symbex::Expr::constant(0);
      outs.push_back(std::move(miss));
      return outs;
    };
    spec.contract = perf::MethodContract("lb.flow_lookup");
    add_case(spec.contract, "hit", parse_flow_cost() + ft_touch_hit(p));
    add_case(spec.contract, "miss", parse_flow_cost() + ft_get_miss(p));
    table.emplace(kFlowLookup, std::move(spec));
  }

  {  // backend_alive
    MethodSpec spec;
    spec.name = "lb.backend_alive";
    spec.model = [](symbex::SymbolTable&, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs(2);
      outs[0].case_label = "alive";
      outs[0].ret0 = symbex::Expr::constant(1);
      outs[1].case_label = "dead";
      outs[1].ret0 = symbex::Expr::constant(0);
      return outs;
    };
    spec.contract = perf::MethodContract("lb.backend_alive");
    add_case(spec.contract, "alive", make_const(cost::kHealthCheck, 1, 1));
    add_case(spec.contract, "dead", make_const(cost::kHealthCheck, 1, 1));
    table.emplace(kBackendAlive, std::move(spec));
  }

  // ring_select / reselect: ring lookup + (b+1) health checks + b ring
  // steps (each with a table read) + flow-table put.
  auto select_exprs = [&](const CostShape& put_shape) {
    CostShape ring;
    ring.exprs.set(
        Metric::kInstructions,
        PerfExpr::constant(cost::kRingLookup + cost::kHealthCheck) +
            PerfExpr::pcv(b).scaled(cost::kRingStep + cost::kHealthCheck));
    ring.exprs.set(Metric::kMemoryAccesses,
                   PerfExpr::constant(2) + PerfExpr::pcv(b).scaled(2));
    // Ring-table reads stream consecutive 4-byte slots; health reads hit a
    // handful of backend lines that repeat quickly.
    ring.unique_lines = PerfExpr::constant(2) + PerfExpr::pcv(b);
    return parse_flow_cost() + ring + put_shape;
  };

  {
    MethodSpec spec;
    spec.name = "lb.ring_select";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs;
      symbex::ModelOutcome ok;
      ok.case_label = "ok";
      ok.ret0 = symbex::Expr::symbol(symbols.fresh("lb.new_backend", 16));
      outs.push_back(std::move(ok));
      symbex::ModelOutcome full;
      full.case_label = "full";
      full.ret0 = symbex::Expr::symbol(symbols.fresh("lb.uncached_backend", 16));
      outs.push_back(std::move(full));
      return outs;
    };
    spec.contract = perf::MethodContract("lb.ring_select");
    add_case(spec.contract, "ok", select_exprs(ft_put_new(p)));
    add_case(spec.contract, "full", select_exprs(ft_put_full(p)));
    table.emplace(kRingSelect, std::move(spec));
  }

  {
    MethodSpec spec;
    spec.name = "lb.reselect";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      return std::vector<symbex::ModelOutcome>{symbex::fresh_value_outcome(
          symbols, "ok", "lb.reselected_backend", 16)};
    };
    spec.contract = perf::MethodContract("lb.reselect");
    add_case(spec.contract, "ok", select_exprs(ft_put_update(p)));
    table.emplace(kReselect, std::move(spec));
  }

  {  // heartbeat
    MethodSpec spec;
    spec.name = "lb.heartbeat";
    spec.model = [](symbex::SymbolTable&, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs(1);
      outs[0].case_label = "ok";
      return outs;
    };
    spec.contract = perf::MethodContract("lb.heartbeat");
    add_case(spec.contract, "ok", make_const(6 + cost::kHealthUpdate, 2, 2));
    table.emplace(kHeartbeat, std::move(spec));
  }

  return table;
}

void LbState::synthesize_pathological(std::uint64_t probe_key,
                                      std::size_t count,
                                      std::uint64_t stamp_ns) {
  flow_.synthesize_colliding_state(count, probe_key, stamp_ns);
}

}  // namespace bolt::dslib
