// MAC-learning table with the randomised-key rehash defence (paper §5.2).
//
// Thin composition over FlowTable: keys are 48-bit MACs, values are switch
// ports. The hash mixes in a secret random key; if a learn operation's
// bucket walk exceeds `rehash_threshold` traversals (suspected collision
// attack), the table renews the key and rebuilds every chain — expensive,
// which is exactly the performance cliff Table 4's third row prices.
#pragma once

#include <cstdint>

#include "dslib/flow_table.h"
#include "ir/cost.h"

namespace bolt::dslib {

class MacTable {
 public:
  struct Config {
    std::size_t capacity = 4096;
    std::uint64_t ttl_ns = 30'000'000'000;  ///< MAC entry lifetime
    std::uint64_t stamp_granularity_ns = 1'000'000;
    std::uint64_t rehash_threshold = 6;  ///< traversals that trigger rehash
    std::uint64_t initial_hash_key = 0;  ///< 0 = "leaked key" attack setup
    std::uint64_t rekey_seed = 0xdefea7;
  };

  explicit MacTable(const Config& config);

  enum class LearnCase { kKnown, kNew, kRehash, kFull };
  struct LearnResult {
    LearnCase outcome = LearnCase::kKnown;
    FlowTable::OpStats stats;      ///< c, t of the learn walk
    std::uint64_t occupancy = 0;   ///< o (bound on rehash)
  };
  LearnResult learn(std::uint64_t mac, std::uint16_t port, std::uint64_t now_ns,
                    ir::CostMeter& meter);

  struct LookupResult {
    bool found = false;
    std::uint16_t port = 0;
    FlowTable::OpStats stats;
  };
  LookupResult lookup(std::uint64_t mac, ir::CostMeter& meter);

  FlowTable::ExpireResult expire(std::uint64_t now_ns, ir::CostMeter& meter);

  std::size_t occupancy() const { return table_.occupancy(); }
  std::size_t capacity() const { return table_.capacity(); }
  std::uint64_t rehash_count() const { return rehash_count_; }
  std::uint64_t hash_key() const { return table_.hash_key(); }
  const Config& config() const { return config_; }
  FlowTable& raw_table() { return table_; }

 private:
  void rehash(ir::CostMeter& meter);

  Config config_;
  FlowTable table_;
  std::uint64_t rekey_state_;
  std::uint64_t rehash_count_ = 0;
};

}  // namespace bolt::dslib
