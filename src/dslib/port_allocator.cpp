#include "dslib/port_allocator.h"

#include "dslib/costs.h"
#include "support/assert.h"

namespace bolt::dslib {

PortAllocatorA::PortAllocatorA(std::uint16_t first_port, std::size_t count)
    : first_port_(first_port),
      count_(count),
      arena_base_(ir::ArenaAllocator::next_base()) {
  BOLT_CHECK(count >= 1 && first_port + count - 1 <= 65535,
             "bad port range for allocator A");
  prev_.resize(count);
  next_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    prev_[i] = static_cast<std::int32_t>(i) - 1;
    next_[i] = i + 1 < count ? static_cast<std::int32_t>(i) + 1 : kNil;
  }
  free_head_ = 0;
}

PortAllocator::AllocResult PortAllocatorA::alloc(ir::CostMeter& meter) {
  AllocResult result;
  meter.metered_instructions(cost::kAllocA);
  meter.mem_read(arena_base_, 8);  // free-list head
  if (free_head_ == kNil) return result;
  const std::int32_t idx = free_head_;
  meter.mem_read(arena_base_ + 16ULL * idx, 8);
  meter.mem_write(arena_base_, 8);
  free_head_ = next_[idx];
  if (free_head_ != kNil) {
    prev_[free_head_] = kNil;
    meter.mem_write(arena_base_ + 16ULL * free_head_, 8);
  }
  next_[idx] = prev_[idx] = kNil;
  ++in_use_;
  result.ok = true;
  result.port = static_cast<std::uint16_t>(first_port_ + idx);
  return result;
}

void PortAllocatorA::free(std::uint16_t port, ir::CostMeter& meter) {
  meter.metered_instructions(cost::kFreeA);
  const std::size_t idx = static_cast<std::size_t>(port - first_port_);
  BOLT_CHECK(idx < count_, "allocator A: port out of range");
  // Push at head of the doubly-linked free list.
  next_[idx] = free_head_;
  prev_[idx] = kNil;
  meter.mem_write(arena_base_ + 16ULL * idx, 8);
  if (free_head_ != kNil) {
    prev_[free_head_] = static_cast<std::int32_t>(idx);
    meter.mem_write(arena_base_ + 16ULL * free_head_, 8);
  }
  free_head_ = static_cast<std::int32_t>(idx);
  meter.mem_write(arena_base_, 8);
  BOLT_CHECK(in_use_ > 0, "allocator A: double free");
  --in_use_;
}

PortAllocatorB::PortAllocatorB(std::uint16_t first_port, std::size_t count)
    : first_port_(first_port),
      count_(count),
      arena_base_(ir::ArenaAllocator::next_base()) {
  BOLT_CHECK(count >= 1 && first_port + count - 1 <= 65535,
             "bad port range for allocator B");
  used_.assign(count, 0);
}

PortAllocator::AllocResult PortAllocatorB::alloc(ir::CostMeter& meter) {
  AllocResult result;
  meter.metered_instructions(cost::kAllocBBase);
  if (in_use_ == count_) {
    meter.mem_read(arena_base_, 8);
    return result;
  }
  // Scan the bitmap from the cursor; each probe is metered.
  std::size_t probes = 0;
  while (true) {
    ++probes;
    meter.metered_instructions(cost::kAllocBProbe);
    meter.mem_read(arena_base_ + cursor_, 1);
    if (used_[cursor_] == 0) break;
    cursor_ = cursor_ + 1 == count_ ? 0 : cursor_ + 1;
  }
  used_[cursor_] = 1;
  meter.mem_write(arena_base_ + cursor_, 1);
  ++in_use_;
  result.ok = true;
  result.port = static_cast<std::uint16_t>(first_port_ + cursor_);
  result.probes = probes;
  cursor_ = cursor_ + 1 == count_ ? 0 : cursor_ + 1;
  return result;
}

void PortAllocatorB::free(std::uint16_t port, ir::CostMeter& meter) {
  meter.metered_instructions(cost::kFreeB);
  const std::size_t idx = static_cast<std::size_t>(port - first_port_);
  BOLT_CHECK(idx < count_, "allocator B: port out of range");
  BOLT_CHECK(used_[idx] == 1, "allocator B: double free");
  used_[idx] = 0;
  meter.mem_write(arena_base_ + idx, 1);
  --in_use_;
}

}  // namespace bolt::dslib
