// BridgeState — the MAC bridge's stateful side: a MacTable with expiry,
// packaged as dispatchable methods with symbolic models and contracts.
#pragma once

#include <cstdint>

#include "dslib/mac_table.h"
#include "dslib/method.h"
#include "perf/pcv.h"

namespace bolt::dslib {

class BridgeState {
 public:
  enum Method : std::int64_t {
    kExpire = 0,
    kLearn = 1,   ///< arg0 = source MAC, arg1 = ingress port
    kLookup = 2,  ///< arg0 = destination MAC; v0 = found, v1 = port
  };

  BridgeState(const MacTable::Config& config, perf::PcvRegistry& reg);

  /// Registers this instance's handlers on a dispatcher.
  void bind(DispatchEnv& env);

  /// Models + manual contracts for the three methods.
  static MethodTable method_table(perf::PcvRegistry& reg,
                                  const MacTable::Config& config);

  MacTable& mac_table() { return mac_; }

  /// Paper §5.1 Br1: full table, all entries colliding with `probe_mac`'s
  /// bucket and tag, all stale as of `stamp_ns`.
  void synthesize_pathological(std::uint64_t probe_mac, std::size_t count,
                               std::uint64_t stamp_ns);

 private:
  MacTable mac_;
  perf::PcvId c_, t_, e_, o_;
};

}  // namespace bolt::dslib
