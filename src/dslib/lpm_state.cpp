#include "dslib/lpm_state.h"

#include "dslib/costs.h"

namespace bolt::dslib {

using perf::Metric;
using perf::MetricExprs;
using perf::PerfExpr;

LpmTrieState::LpmTrieState(perf::PcvRegistry& reg) {
  intern_standard_pcvs(reg);
  l_ = reg.require(pcv::kPrefixLen);
}

void LpmTrieState::bind(DispatchEnv& env) {
  env.register_method(kLookup, [this](std::uint64_t addr, std::uint64_t,
                                      const net::Packet&,
                                      ir::CostMeter& meter) {
    const auto r = trie_.lookup(static_cast<std::uint32_t>(addr), meter);
    ir::CallOutcome out;
    out.v0 = r.port;
    out.case_label = "lookup";
    out.pcvs.set(l_, r.matched_length);
    return out;
  });
}

MethodTable LpmTrieState::method_table(perf::PcvRegistry& reg) {
  intern_standard_pcvs(reg);
  const perf::PcvId l = reg.require(pcv::kPrefixLen);

  MethodTable table;
  MethodSpec spec;
  spec.name = "lpm.get";
  spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                  const symbex::ExprPtr&) {
    // Algorithm 3: lpmGet returns <new symbol>. One abstract case.
    return std::vector<symbex::ModelOutcome>{
        symbex::fresh_value_outcome(symbols, "lookup", "lpm.port", 16)};
  };
  // Table 2: 4*l + 2 instructions, l + 1 memory accesses.
  MetricExprs exprs;
  exprs.set(Metric::kInstructions,
            PerfExpr::pcv(l).scaled(cost::kTrieStepHi) +
                PerfExpr::constant(cost::kTrieFixed));
  exprs.set(Metric::kMemoryAccesses,
            PerfExpr::pcv(l) + PerfExpr::constant(1));
  spec.contract = perf::MethodContract("lpm.get");
  spec.contract.add_case("lookup", exprs);
  // Every trie node sits on its own line: all accesses are unique.
  spec.contract.set_unique_lines("lookup",
                                 PerfExpr::pcv(l) + PerfExpr::constant(1));
  table.emplace(kLookup, std::move(spec));
  return table;
}

LpmDirState::LpmDirState(perf::PcvRegistry& reg) { intern_standard_pcvs(reg); }

void LpmDirState::bind(DispatchEnv& env) {
  env.register_method(kLookup, [this](std::uint64_t addr, std::uint64_t,
                                      const net::Packet&,
                                      ir::CostMeter& meter) {
    const auto r = table_.lookup(static_cast<std::uint32_t>(addr), meter);
    ir::CallOutcome out;
    out.v0 = r.port;
    out.case_label = r.tier == LpmDir24_8::LookupCase::kOneLookup
                         ? "one_lookup"
                         : "two_lookups";
    return out;
  });
}

MethodTable LpmDirState::method_table(perf::PcvRegistry& reg) {
  intern_standard_pcvs(reg);
  MethodTable table;
  MethodSpec spec;
  spec.name = "lpm_dir.get";
  spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                  const symbex::ExprPtr&) {
    std::vector<symbex::ModelOutcome> outs;
    outs.push_back(symbex::fresh_value_outcome(symbols, "one_lookup",
                                               "lpm_dir.port", 16));
    outs.push_back(symbex::fresh_value_outcome(symbols, "two_lookups",
                                               "lpm_dir.port2", 16));
    return outs;
  };
  auto exprs = [](std::int64_t instr, std::int64_t ma) {
    MetricExprs out;
    out.set(Metric::kInstructions, PerfExpr::constant(instr));
    out.set(Metric::kMemoryAccesses, PerfExpr::constant(ma));
    return out;
  };
  spec.contract = perf::MethodContract("lpm_dir.get");
  spec.contract.add_case("one_lookup", exprs(cost::kDir24Lookup, 1));
  spec.contract.add_case(
      "two_lookups", exprs(cost::kDir24Lookup + cost::kDir8Lookup, 2));
  spec.contract.set_unique_lines("one_lookup", PerfExpr::constant(1));
  spec.contract.set_unique_lines("two_lookups", PerfExpr::constant(2));
  table.emplace(kLookup, std::move(spec));
  return table;
}

}  // namespace bolt::dslib
