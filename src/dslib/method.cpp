#include "dslib/method.h"

#include "support/assert.h"

namespace bolt::dslib {

void DispatchEnv::register_method(std::int64_t id, Handler handler) {
  BOLT_CHECK(handlers_.find(id) == handlers_.end(), "duplicate method id");
  handlers_.emplace(id, std::move(handler));
}

ir::CallOutcome DispatchEnv::call(std::int64_t method, std::uint64_t arg0,
                                  std::uint64_t arg1,
                                  const net::Packet& packet,
                                  ir::CostMeter& meter) {
  auto it = handlers_.find(method);
  BOLT_CHECK(it != handlers_.end(),
             "no handler for stateful method " + std::to_string(method));
  return it->second(arg0, arg1, packet, meter);
}

void intern_standard_pcvs(perf::PcvRegistry& reg) {
  reg.intern(pcv::kCollisions, "hash collisions encountered");
  reg.intern(pcv::kTraversals, "hash bucket traversals");
  reg.intern(pcv::kExpired, "entries expired by this packet");
  reg.intern(pcv::kOccupancy, "table occupancy");
  reg.intern(pcv::kPrefixLen, "matched LPM prefix length");
  reg.intern(pcv::kIpOptions, "IP options in the packet");
  reg.intern(pcv::kAllocProbes, "port-allocator scan probes");
  reg.intern(pcv::kRingSteps, "Maglev ring walk steps");
}

}  // namespace bolt::dslib
