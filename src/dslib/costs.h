// Central table of metering constants for the stateful library.
//
// These constants play the role of the data structures' machine code: every
// dslib operation meters its work as multiples of these constants, and the
// manually derived method contracts (the paper's §3.2 "base case") are
// written against the *same* constants. The deliberate exceptions — places
// where the implementation's real cost varies below the contract's
// conservative coefficient (bit-dependent branches, §3.2's lpmGet example)
// — are what produce the paper's small IC/MA over-estimation gap.
#pragma once

#include <cstdint>

namespace bolt::dslib::cost {

// --- hash table (flow table / MAC table) ------------------------------------
inline constexpr std::uint64_t kHash = 12;          ///< hash computation, instr
inline constexpr std::uint64_t kBucketHead = 5;     ///< bucket head load path
/// Per-chain-node traversal. The implementation spends kTraverseLo or
/// kTraverseHi instructions per node depending on a key bit (pointer
/// arithmetic unfolding); contracts use kTraverseHi — conservative coalescing.
inline constexpr std::uint64_t kTraverseLo = 16;
inline constexpr std::uint64_t kTraverseHi = 18;
/// Per mismatching full-key comparison (a hash collision). A 64-bit
/// compare-and-branch: cheap and fixed, so the quadratic pathological
/// terms stay memory-bound (and exactly priced).
inline constexpr std::uint64_t kCollisionLo = 4;
inline constexpr std::uint64_t kCollisionHi = 4;
inline constexpr std::uint64_t kHitFinish = 22;     ///< found-entry bookkeeping
inline constexpr std::uint64_t kMissFinish = 9;
inline constexpr std::uint64_t kInsert = 34;        ///< link new entry + LRU
inline constexpr std::uint64_t kRefresh = 15;       ///< timestamp + LRU move
inline constexpr std::uint64_t kFullFinish = 11;    ///< table-full bail-out

// --- expiry (LRU sweep) ------------------------------------------------------
inline constexpr std::uint64_t kExpireCheck = 7;    ///< look at LRU head
inline constexpr std::uint64_t kExpirePer = 41;     ///< per expired entry, fixed
/// Per chain-walk step during an erase (the source of the e*t cross term).
/// Fixed cost: load next pointer + tag compare + branch.
inline constexpr std::uint64_t kEraseStepLo = 3;
inline constexpr std::uint64_t kEraseStepHi = 3;

// --- MAC table rehash defence -------------------------------------------------
inline constexpr std::uint64_t kRehashFixed = 98'406;  ///< alloc+zero new arrays
inline constexpr std::uint64_t kReinsertPer = 52;      ///< per entry re-insert
inline constexpr std::uint64_t kReinsertStep = 14;     ///< per reinsert chain step

// --- LPM: Patricia trie (running example) ------------------------------------
/// Per-bit step: the implementation spends kTrieStepLo or kTrieStepHi
/// depending on the prefix bit (paper §3.2); contracts use the high value.
/// One memory access per step. Fixed part: 2 instructions + 1 access.
inline constexpr std::uint64_t kTrieStepLo = 3;
inline constexpr std::uint64_t kTrieStepHi = 4;
inline constexpr std::uint64_t kTrieFixed = 2;

// --- LPM: DIR-24-8 two-tier table ---------------------------------------------
inline constexpr std::uint64_t kDir24Lookup = 21;    ///< tbl24 path, 1 access
inline constexpr std::uint64_t kDir8Lookup = 17;     ///< tbl8 second hop, 1 access

// --- Maglev ring ---------------------------------------------------------------
inline constexpr std::uint64_t kRingLookup = 26;     ///< hash + table index
inline constexpr std::uint64_t kHealthCheck = 8;     ///< backend health load
inline constexpr std::uint64_t kHealthUpdate = 12;   ///< heartbeat bookkeeping
/// Per step when walking the ring away from an unhealthy backend.
inline constexpr std::uint64_t kRingStep = 9;

// --- port allocators ------------------------------------------------------------
// Allocator A: doubly-linked free list. Flat costs.
inline constexpr std::uint64_t kAllocA = 44;
inline constexpr std::uint64_t kFreeA = 38;
// Allocator B: bitmap scan + singly-linked free push. Cheap when the scan
// hits immediately, occupancy-dependent otherwise.
inline constexpr std::uint64_t kAllocBBase = 23;
inline constexpr std::uint64_t kAllocBProbe = 11;  ///< per scanned slot
inline constexpr std::uint64_t kFreeB = 20;

// --- composite glue --------------------------------------------------------------
inline constexpr std::uint64_t kOccupancyCheck = 3;  ///< table-full pre-check

// --- packet parsing inside composite stateful objects ---------------------------
inline constexpr std::uint64_t kParseFlow = 35;   ///< five-tuple extraction
inline constexpr std::uint64_t kParseAccesses = 6;
inline constexpr std::uint64_t kRewrite = 29;     ///< NAT header rewrite
inline constexpr std::uint64_t kRewriteAccesses = 5;

}  // namespace bolt::dslib::cost
