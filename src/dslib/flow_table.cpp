#include "dslib/flow_table.h"

#include "dslib/costs.h"
#include "net/flow.h"
#include "support/assert.h"

namespace bolt::dslib {

namespace {
// Entry record layout within the synthetic arena (one 64B line per entry).
constexpr std::uint32_t kFieldTag = 0;
constexpr std::uint32_t kFieldKey = 8;
constexpr std::uint32_t kFieldValue = 16;
constexpr std::uint32_t kFieldStamp = 24;
constexpr std::uint32_t kFieldNext = 32;
}  // namespace

FlowTable::FlowTable(const Config& config)
    : config_(config), arena_base_(ir::ArenaAllocator::next_base()) {
  BOLT_CHECK(config_.capacity >= 2 &&
                 (config_.capacity & (config_.capacity - 1)) == 0,
             "FlowTable capacity must be a power of two");
  BOLT_CHECK(config_.stamp_granularity_ns >= 1, "granularity must be >= 1");
  buckets_.assign(config_.capacity, kNil);
  keys_.resize(config_.capacity);
  values_.resize(config_.capacity);
  stamps_.resize(config_.capacity);
  tags_.resize(config_.capacity);
  entry_bucket_.resize(config_.capacity);
  next_.resize(config_.capacity);
  lru_prev_.resize(config_.capacity);
  lru_next_.resize(config_.capacity);
  clear();
}

void FlowTable::clear() {
  buckets_.assign(config_.capacity, kNil);
  free_head_ = kNil;
  for (std::size_t i = config_.capacity; i-- > 0;) {
    next_[i] = free_head_;
    free_head_ = static_cast<std::int32_t>(i);
  }
  lru_head_ = lru_tail_ = kNil;
  occupancy_ = 0;
}

std::uint64_t FlowTable::quantise(std::uint64_t now_ns) const {
  return now_ns - (now_ns % config_.stamp_granularity_ns);
}

std::size_t FlowTable::bucket_of(std::uint64_t key) const {
  return net::mix64(key ^ config_.hash_key) & (buckets_.size() - 1);
}

std::uint16_t FlowTable::tag_of(std::uint64_t key) const {
  return static_cast<std::uint16_t>(net::mix64(key ^ config_.hash_key) >> 48);
}

std::uint64_t FlowTable::bucket_addr(std::size_t bucket) const {
  return arena_base_ + 8 * bucket;
}

std::uint64_t FlowTable::entry_addr(std::int32_t idx,
                                    std::uint32_t field_offset) const {
  return arena_base_ + 8 * buckets_.size() +
         64ULL * static_cast<std::uint64_t>(idx) + field_offset;
}

FlowTable::GetResult FlowTable::get(std::uint64_t key, ir::CostMeter& meter) {
  GetResult result;
  meter.metered_instructions(cost::kHash);
  meter.metered_instructions(cost::kBucketHead);
  const std::size_t bucket = bucket_of(key);
  const std::uint16_t tag = tag_of(key);
  meter.mem_read(bucket_addr(bucket), 8);

  for (std::int32_t idx = buckets_[bucket]; idx != kNil; idx = next_[idx]) {
    ++result.stats.traversals;
    // Traversal cost varies with a key bit (pointer-arithmetic unfolding);
    // the contract coalesces to kTraverseHi.
    meter.metered_instructions((keys_[idx] & 1) != 0 ? cost::kTraverseHi
                                                     : cost::kTraverseLo);
    meter.mem_read(entry_addr(idx, kFieldTag), 8, true);
    if (tags_[idx] == tag) {
      meter.mem_read(entry_addr(idx, kFieldKey), 8, true);
      if (keys_[idx] == key) {
        meter.metered_instructions(cost::kHitFinish);
        meter.mem_read(entry_addr(idx, kFieldValue), 8, true);
        result.found = true;
        result.value = values_[idx];
        return result;
      }
      ++result.stats.collisions;
      meter.metered_instructions((keys_[idx] & 2) != 0 ? cost::kCollisionHi
                                                       : cost::kCollisionLo);
    }
  }
  meter.metered_instructions(cost::kMissFinish);
  return result;
}

FlowTable::GetResult FlowTable::touch(std::uint64_t key, std::uint64_t now_ns,
                                      ir::CostMeter& meter) {
  GetResult result = get(key, meter);
  if (result.found) {
    // Refresh stamp + LRU position. The entry index is re-derived with an
    // unmetered walk (the metered get above already walked the chain; a
    // fused implementation would keep the index in a register).
    const std::size_t bucket = bucket_of(key);
    for (std::int32_t idx = buckets_[bucket]; idx != kNil; idx = next_[idx]) {
      if (keys_[idx] == key && tags_[idx] == tag_of(key)) {
        stamps_[idx] = quantise(now_ns);
        lru_unlink(idx);
        lru_append(idx);
        meter.metered_instructions(cost::kRefresh);
        meter.mem_write(entry_addr(idx, kFieldStamp), 8);
        break;
      }
    }
  }
  return result;
}

FlowTable::PutResult FlowTable::put(std::uint64_t key, std::uint64_t value,
                                    std::uint64_t now_ns, ir::CostMeter& meter) {
  PutResult result;
  meter.metered_instructions(cost::kHash);
  meter.metered_instructions(cost::kBucketHead);
  const std::size_t bucket = bucket_of(key);
  const std::uint16_t tag = tag_of(key);
  meter.mem_read(bucket_addr(bucket), 8);

  for (std::int32_t idx = buckets_[bucket]; idx != kNil; idx = next_[idx]) {
    ++result.stats.traversals;
    meter.metered_instructions((keys_[idx] & 1) != 0 ? cost::kTraverseHi
                                                     : cost::kTraverseLo);
    meter.mem_read(entry_addr(idx, kFieldTag), 8, true);
    if (tags_[idx] == tag) {
      meter.mem_read(entry_addr(idx, kFieldKey), 8, true);
      if (keys_[idx] == key) {
        // Refresh: new value + timestamp, move to LRU tail.
        meter.metered_instructions(cost::kRefresh);
        meter.mem_write(entry_addr(idx, kFieldValue), 8);
        meter.mem_write(entry_addr(idx, kFieldStamp), 8);
        values_[idx] = value;
        stamps_[idx] = quantise(now_ns);
        lru_unlink(idx);
        lru_append(idx);
        result.outcome = PutCase::kUpdate;
        return result;
      }
      ++result.stats.collisions;
      meter.metered_instructions((keys_[idx] & 2) != 0 ? cost::kCollisionHi
                                                       : cost::kCollisionLo);
    }
  }

  if (occupancy_ == config_.capacity) {
    meter.metered_instructions(cost::kFullFinish);
    result.outcome = PutCase::kFull;
    return result;
  }

  const std::int32_t idx = allocate_slot();
  keys_[idx] = key;
  values_[idx] = value;
  stamps_[idx] = quantise(now_ns);
  tags_[idx] = tag;
  entry_bucket_[idx] = static_cast<std::uint32_t>(bucket);
  next_[idx] = buckets_[bucket];
  buckets_[bucket] = idx;
  lru_append(idx);
  ++occupancy_;
  meter.metered_instructions(cost::kInsert);
  meter.mem_write(entry_addr(idx, kFieldKey), 8);
  meter.mem_write(entry_addr(idx, kFieldValue), 8);
  meter.mem_write(bucket_addr(bucket), 8);
  result.outcome = PutCase::kNew;
  return result;
}

FlowTable::OpStats FlowTable::erase_entry(std::int32_t idx,
                                          ir::CostMeter& meter) {
  OpStats stats;
  // Use the entry's *stored* bucket and tag: synthesised pathological state
  // places entries in a forced bucket, not the one their key hashes to.
  const std::size_t bucket = entry_bucket_[idx];
  const std::uint16_t tag = tags_[idx];
  meter.mem_read(bucket_addr(bucket), 8);

  std::int32_t* link = &buckets_[bucket];
  std::int32_t cur = *link;
  while (cur != kNil) {
    ++stats.traversals;
    meter.metered_instructions((keys_[cur] & 1) != 0 ? cost::kEraseStepHi
                                                     : cost::kEraseStepLo);
    meter.mem_read(entry_addr(cur, kFieldTag), 8, true);
    if (tags_[cur] == tag) {
      meter.mem_read(entry_addr(cur, kFieldKey), 8, true);
      if (cur == idx) break;
      ++stats.collisions;
      meter.metered_instructions((keys_[cur] & 2) != 0 ? cost::kCollisionHi
                                                       : cost::kCollisionLo);
    }
    link = &next_[cur];
    cur = *link;
  }
  BOLT_CHECK(cur == idx, "FlowTable: entry missing from its chain");
  *link = next_[idx];
  meter.mem_write(entry_addr(idx, kFieldNext), 8);
  return stats;
}

FlowTable::EraseResult FlowTable::erase(std::uint64_t key,
                                        ir::CostMeter& meter) {
  EraseResult result;
  meter.metered_instructions(cost::kHash);
  meter.metered_instructions(cost::kBucketHead);
  const std::size_t bucket = bucket_of(key);
  const std::uint16_t tag = tag_of(key);
  meter.mem_read(bucket_addr(bucket), 8);

  std::int32_t* link = &buckets_[bucket];
  std::int32_t cur = *link;
  while (cur != kNil) {
    ++result.stats.traversals;
    meter.metered_instructions((keys_[cur] & 1) != 0 ? cost::kEraseStepHi
                                                     : cost::kEraseStepLo);
    meter.mem_read(entry_addr(cur, kFieldTag), 8, true);
    if (tags_[cur] == tag) {
      meter.mem_read(entry_addr(cur, kFieldKey), 8, true);
      if (keys_[cur] == key) {
        *link = next_[cur];
        meter.mem_write(entry_addr(cur, kFieldNext), 8);
        lru_unlink(cur);
        next_[cur] = free_head_;
        free_head_ = cur;
        --occupancy_;
        meter.metered_instructions(cost::kExpirePer);
        meter.mem_write(entry_addr(cur, kFieldStamp), 8);
        result.erased = true;
        return result;
      }
      ++result.stats.collisions;
      meter.metered_instructions((keys_[cur] & 2) != 0 ? cost::kCollisionHi
                                                       : cost::kCollisionLo);
    }
    link = &next_[cur];
    cur = *link;
  }
  meter.metered_instructions(cost::kMissFinish);
  return result;
}

FlowTable::ExpireResult FlowTable::expire(std::uint64_t now_ns,
                                          ir::CostMeter& meter,
                                          const EvictCallback& on_evict) {
  ExpireResult result;
  std::uint64_t total_walk = 0;
  std::uint64_t total_collisions = 0;
  while (true) {
    meter.metered_instructions(cost::kExpireCheck);
    if (lru_head_ == kNil) break;
    meter.mem_read(entry_addr(lru_head_, kFieldStamp), 8, true);
    if (stamps_[lru_head_] + config_.ttl_ns > now_ns) break;

    const std::int32_t idx = lru_head_;
    const std::uint64_t key = keys_[idx];
    const std::uint64_t value = values_[idx];
    const OpStats walk = erase_entry(idx, meter);
    total_walk += walk.traversals;
    total_collisions += walk.collisions;
    lru_unlink(idx);
    next_[idx] = free_head_;
    free_head_ = idx;
    --occupancy_;
    ++result.expired;
    meter.metered_instructions(cost::kExpirePer);
    meter.mem_write(entry_addr(idx, kFieldStamp), 8);
    if (on_evict) on_evict(key, value, meter);
  }
  result.total_walk = total_walk;
  result.total_collisions = total_collisions;
  if (result.expired > 0) {
    result.amortised_walk =
        (total_walk + result.expired - 1) / result.expired;
    result.amortised_collisions =
        (total_collisions + result.expired - 1) / result.expired;
  }
  return result;
}

void FlowTable::lru_unlink(std::int32_t idx) {
  const std::int32_t prev = lru_prev_[idx];
  const std::int32_t next = lru_next_[idx];
  if (prev != kNil) lru_next_[prev] = next; else lru_head_ = next;
  if (next != kNil) lru_prev_[next] = prev; else lru_tail_ = prev;
  lru_prev_[idx] = lru_next_[idx] = kNil;
}

void FlowTable::lru_append(std::int32_t idx) {
  lru_prev_[idx] = lru_tail_;
  lru_next_[idx] = kNil;
  if (lru_tail_ != kNil) lru_next_[lru_tail_] = idx; else lru_head_ = idx;
  lru_tail_ = idx;
}

std::int32_t FlowTable::allocate_slot() {
  BOLT_CHECK(free_head_ != kNil, "FlowTable: no free slots");
  const std::int32_t idx = free_head_;
  free_head_ = next_[idx];
  return idx;
}

void FlowTable::rekey(std::uint64_t new_hash_key) {
  config_.hash_key = new_hash_key;
  // Rebuild every chain under the new key (cost metered by the caller —
  // the MAC table's rehash contract covers this).
  buckets_.assign(buckets_.size(), kNil);
  for (std::int32_t idx = lru_head_; idx != kNil; idx = lru_next_[idx]) {
    const std::size_t bucket = bucket_of(keys_[idx]);
    tags_[idx] = tag_of(keys_[idx]);
    entry_bucket_[idx] = static_cast<std::uint32_t>(bucket);
    next_[idx] = buckets_[bucket];
    buckets_[bucket] = idx;
  }
}

void FlowTable::for_each(const std::function<void(std::uint64_t, std::uint64_t,
                                                  std::uint64_t)>& fn) const {
  for (std::int32_t idx = lru_head_; idx != kNil; idx = lru_next_[idx]) {
    fn(keys_[idx], values_[idx], stamps_[idx]);
  }
}

void FlowTable::synthesize_colliding_state(std::size_t count,
                                           std::uint64_t probe_key,
                                           std::uint64_t stamp_ns,
                                           std::uint64_t value_base) {
  BOLT_CHECK(count <= config_.capacity, "synthesis exceeds capacity");
  clear();
  const std::size_t bucket = bucket_of(probe_key);
  const std::uint16_t tag = tag_of(probe_key);
  for (std::size_t i = 0; i < count; ++i) {
    const std::int32_t idx = allocate_slot();
    // Fabricated keys: distinct from probe_key and from each other. Their
    // *stored* placement (bucket/tag) is forced — this mirrors the paper
    // synthesising NF state it could not reach via a packet trace.
    keys_[idx] = probe_key ^ (0x1'0000'0000ULL + i);
    values_[idx] = value_base + i;
    stamps_[idx] = quantise(stamp_ns);
    tags_[idx] = tag;
    entry_bucket_[idx] = static_cast<std::uint32_t>(bucket);
    next_[idx] = buckets_[bucket];
    buckets_[bucket] = idx;
    lru_append(idx);
    ++occupancy_;
  }
}

}  // namespace bolt::dslib
