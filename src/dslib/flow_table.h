// FlowTable — the library's central stateful structure (Vigor-style map).
//
// A fixed-capacity hash table with chained buckets, entry timestamps, and
// an LRU index used for expiry. It is the substrate for the NAT flow table,
// the load balancer's connection table, and (via MacTable) the bridge's
// MAC-learning table.
//
// Performance anatomy (all metered through CostMeter, matching the manual
// contracts in flow_table_spec.cpp):
//   * get/put walk the bucket chain: t = nodes visited ("bucket
//     traversals"); each node whose 16-bit hash tag matches but whose full
//     key mismatches costs a full comparison: c = such "hash collisions".
//   * expire() sweeps the LRU oldest-first; erasing an entry walks its
//     bucket chain from the head (entries insert at the head, so the oldest
//     entry sits deepest — a mass-expiry event is quadratic, the paper's
//     pathological NAT1/Br1/LB1 scenario). expire reports e plus the
//     *amortised per-entry* walk/collision counts, which bind the e*t and
//     e*c cross terms of the contracts.
//   * entry timestamps are quantised to `stamp_granularity_ns` — the knob
//     behind the paper's VigNAT expiry-batching bug (§5.3, Figure 4).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ir/cost.h"

namespace bolt::dslib {

class FlowTable {
 public:
  struct Config {
    std::size_t capacity = 4096;          ///< max entries; power of two
    std::uint64_t ttl_ns = 1'000'000'000; ///< entry time-to-live
    std::uint64_t stamp_granularity_ns = 1;  ///< timestamp quantisation
    std::uint64_t hash_key = 0;           ///< secret key mixed into the hash
  };

  explicit FlowTable(const Config& config);

  /// Per-operation PCV observations.
  struct OpStats {
    std::uint64_t traversals = 0;  ///< t: chain nodes visited
    std::uint64_t collisions = 0;  ///< c: tag-matching full-key mismatches
  };

  struct GetResult {
    bool found = false;
    std::uint64_t value = 0;
    OpStats stats;
  };
  GetResult get(std::uint64_t key, ir::CostMeter& meter);

  /// Like get(), but refreshes the entry's timestamp and LRU position on a
  /// hit — the flow-cache semantics the NAT and LB need (traffic keeps a
  /// mapping alive).
  GetResult touch(std::uint64_t key, std::uint64_t now_ns, ir::CostMeter& meter);

  enum class PutCase { kNew, kUpdate, kFull };
  struct PutResult {
    PutCase outcome = PutCase::kNew;
    OpStats stats;
  };
  PutResult put(std::uint64_t key, std::uint64_t value, std::uint64_t now_ns,
                ir::CostMeter& meter);

  /// Called for each entry evicted by expire() so composites can release
  /// dependent resources (e.g. NAT ports).
  using EvictCallback =
      std::function<void(std::uint64_t key, std::uint64_t value, ir::CostMeter&)>;

  struct ExpireResult {
    std::uint64_t expired = 0;            ///< e
    std::uint64_t amortised_walk = 0;     ///< ceil(total erase steps / e)
    std::uint64_t amortised_collisions = 0;
    std::uint64_t total_walk = 0;         ///< raw totals for composites that
    std::uint64_t total_collisions = 0;   ///< recompute combined amortisation
  };
  ExpireResult expire(std::uint64_t now_ns, ir::CostMeter& meter,
                      const EvictCallback& on_evict = nullptr);

  /// Removes `key` if present (chain walk + unlink). Used by composites
  /// that maintain paired tables (e.g. the NAT's reverse mapping).
  struct EraseResult {
    bool erased = false;
    OpStats stats;
  };
  EraseResult erase(std::uint64_t key, ir::CostMeter& meter);

  std::size_t occupancy() const { return occupancy_; }
  std::size_t capacity() const { return config_.capacity; }
  std::size_t bucket_count() const { return buckets_.size(); }
  std::uint64_t hash_key() const { return config_.hash_key; }

  std::size_t bucket_of(std::uint64_t key) const;
  std::uint16_t tag_of(std::uint64_t key) const;

  /// Replaces the hash key and rebuilds all chains (used by the MAC table's
  /// rehash defence). Metering is the caller's job (MacTable contracts it).
  void rekey(std::uint64_t new_hash_key);

  /// Iterates all live entries (key, value, stamp).
  void for_each(const std::function<void(std::uint64_t, std::uint64_t,
                                         std::uint64_t)>& fn) const;

  void clear();

  /// State synthesis for the pathological scenarios (paper §5.1): fills the
  /// table with `count` fabricated entries that all live in `probe_key`'s
  /// bucket and share its hash tag, stamped at `stamp_ns` (old enough to
  /// mass-expire). The fabricated keys are distinct from `probe_key`;
  /// entry i gets value `value_base + i` (composites use this to pair the
  /// state with allocated resources such as NAT ports).
  void synthesize_colliding_state(std::size_t count, std::uint64_t probe_key,
                                  std::uint64_t stamp_ns,
                                  std::uint64_t value_base = 0);

 private:
  static constexpr std::int32_t kNil = -1;

  std::uint64_t quantise(std::uint64_t now_ns) const;
  /// Unlinks entry `idx` from its bucket chain by key search, metering the
  /// walk; returns (steps, collisions).
  OpStats erase_entry(std::int32_t idx, ir::CostMeter& meter);
  void lru_unlink(std::int32_t idx);
  void lru_append(std::int32_t idx);
  std::int32_t allocate_slot();

  // Synthetic addresses for the cache models.
  std::uint64_t bucket_addr(std::size_t bucket) const;
  std::uint64_t entry_addr(std::int32_t idx, std::uint32_t field_offset) const;

  Config config_;
  std::uint64_t arena_base_;
  std::vector<std::int32_t> buckets_;  ///< chain heads
  // Entry storage (structure of arrays).
  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> stamps_;
  std::vector<std::uint16_t> tags_;
  std::vector<std::uint32_t> entry_bucket_;  ///< bucket each entry lives in
  std::vector<std::int32_t> next_;      ///< chain links / free list
  std::vector<std::int32_t> lru_prev_;
  std::vector<std::int32_t> lru_next_;
  std::int32_t free_head_ = kNil;
  std::int32_t lru_head_ = kNil;  ///< oldest
  std::int32_t lru_tail_ = kNil;  ///< newest
  std::size_t occupancy_ = 0;
};

}  // namespace bolt::dslib
