#include "dslib/bridge_state.h"

#include "dslib/contract_exprs.h"
#include "support/assert.h"

namespace bolt::dslib {

using perf::MetricExprs;

BridgeState::BridgeState(const MacTable::Config& config,
                         perf::PcvRegistry& reg)
    : mac_(config) {
  intern_standard_pcvs(reg);
  c_ = reg.require(pcv::kCollisions);
  t_ = reg.require(pcv::kTraversals);
  e_ = reg.require(pcv::kExpired);
  o_ = reg.require(pcv::kOccupancy);
}

void BridgeState::bind(DispatchEnv& env) {
  env.register_method(kExpire, [this](std::uint64_t, std::uint64_t,
                                      const net::Packet& pkt,
                                      ir::CostMeter& meter) {
    const auto r = mac_.expire(pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    out.v0 = r.expired;
    out.case_label = "expire";
    out.pcvs.set(e_, r.expired);
    out.pcvs.set(t_, r.amortised_walk);
    out.pcvs.set(c_, r.amortised_collisions);
    return out;
  });

  env.register_method(kLearn, [this](std::uint64_t mac, std::uint64_t port,
                                     const net::Packet& pkt,
                                     ir::CostMeter& meter) {
    const auto r = mac_.learn(mac, static_cast<std::uint16_t>(port),
                              pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    switch (r.outcome) {
      case MacTable::LearnCase::kKnown: out.case_label = "known"; break;
      case MacTable::LearnCase::kNew: out.case_label = "new"; break;
      case MacTable::LearnCase::kRehash: out.case_label = "rehash"; break;
      case MacTable::LearnCase::kFull: out.case_label = "full"; break;
    }
    out.pcvs.set(c_, r.stats.collisions);
    out.pcvs.set(t_, r.stats.traversals);
    if (r.outcome == MacTable::LearnCase::kRehash) {
      out.pcvs.set(o_, r.occupancy);
    }
    return out;
  });

  env.register_method(kLookup, [this](std::uint64_t mac, std::uint64_t,
                                      const net::Packet&,
                                      ir::CostMeter& meter) {
    const auto r = mac_.lookup(mac, meter);
    ir::CallOutcome out;
    out.v0 = r.found ? 1 : 0;
    out.v1 = r.port;
    out.case_label = r.found ? "hit" : "miss";
    out.pcvs.set(c_, r.stats.collisions);
    out.pcvs.set(t_, r.stats.traversals);
    return out;
  });
}

MethodTable BridgeState::method_table(perf::PcvRegistry& reg,
                                      const MacTable::Config& config) {
  const FlowPcvs p = FlowPcvs::standard(reg);
  MethodTable table;

  {  // expire
    MethodSpec spec;
    spec.name = "bridge.expire";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      return std::vector<symbex::ModelOutcome>{
          symbex::fresh_value_outcome(symbols, "expire", "bridge.expired", 32)};
    };
    spec.contract = perf::MethodContract("bridge.expire");
    add_case(spec.contract, "expire", ft_expire(p));
    table.emplace(kExpire, std::move(spec));
  }

  {  // learn
    MethodSpec spec;
    spec.name = "bridge.learn";
    spec.model = [](symbex::SymbolTable&, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs(4);
      outs[0].case_label = "known";
      outs[1].case_label = "new";
      outs[2].case_label = "rehash";
      outs[3].case_label = "full";
      return outs;
    };
    spec.contract = perf::MethodContract("bridge.learn");
    add_case(spec.contract, "known", ft_put_update(p));
    add_case(spec.contract, "new", ft_put_new(p));
    add_case(spec.contract, "rehash",
             ft_put_new(p) + mac_rehash_extra(p, config.capacity));
    add_case(spec.contract, "full", ft_put_full(p));
    table.emplace(kLearn, std::move(spec));
  }

  {  // lookup
    MethodSpec spec;
    spec.name = "bridge.lookup";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs;
      symbex::ModelOutcome hit;
      hit.case_label = "hit";
      hit.ret0 = symbex::Expr::constant(1);
      hit.ret1 = symbex::Expr::symbol(symbols.fresh("bridge.out_port", 16));
      outs.push_back(std::move(hit));
      symbex::ModelOutcome miss;
      miss.case_label = "miss";
      miss.ret0 = symbex::Expr::constant(0);
      outs.push_back(std::move(miss));
      return outs;
    };
    spec.contract = perf::MethodContract("bridge.lookup");
    add_case(spec.contract, "hit", ft_get_hit(p));
    add_case(spec.contract, "miss", ft_get_miss(p));
    table.emplace(kLookup, std::move(spec));
  }

  return table;
}

void BridgeState::synthesize_pathological(std::uint64_t probe_mac,
                                          std::size_t count,
                                          std::uint64_t stamp_ns) {
  mac_.raw_table().synthesize_colliding_state(count, probe_mac, stamp_ns);
}

}  // namespace bolt::dslib
