#include "dslib/nat_state.h"

#include "dslib/contract_exprs.h"
#include "dslib/costs.h"
#include "net/flow.h"
#include "support/assert.h"

namespace bolt::dslib {

using perf::Metric;
using perf::MetricExprs;
using perf::PerfExpr;

namespace {

/// Parses the five-tuple inside a stateful method, metering the fixed
/// parse cost (the composite's equivalent of VigNAT's flow extraction).
net::FiveTuple parse_tuple(const net::Packet& packet, ir::CostMeter& meter) {
  meter.metered_instructions(cost::kParseFlow);
  for (std::uint64_t i = 0; i < cost::kParseAccesses; ++i) {
    meter.mem_read(ir::kPacketBase + 14 + 4 * i, 4);
  }
  const auto tuple = net::extract_five_tuple(packet);
  BOLT_CHECK(tuple.has_value(),
             "NAT stateful method called on a non-flow packet (the stateless "
             "code must validate first)");
  return *tuple;
}

}  // namespace

NatState::NatState(const Config& config, perf::PcvRegistry& reg)
    : config_(config), int_table_(config.flow), ext_table_(config.flow) {
  if (config.allocator == AllocatorKind::kA) {
    allocator_ = std::make_unique<PortAllocatorA>(config.first_external_port,
                                                  config.flow.capacity);
  } else {
    allocator_ = std::make_unique<PortAllocatorB>(config.first_external_port,
                                                  config.flow.capacity);
  }
  intern_standard_pcvs(reg);
  c_ = reg.require(pcv::kCollisions);
  t_ = reg.require(pcv::kTraversals);
  e_ = reg.require(pcv::kExpired);
  o_ = reg.require(pcv::kOccupancy);
  s_ = reg.require(pcv::kAllocProbes);
}

NatState::SweepResult NatState::sweep_expired(std::uint64_t now_ns,
                                              ir::CostMeter& meter) {
  SweepResult result;
  result.flow = int_table_.expire(
      now_ns, meter,
      [&](std::uint64_t /*key*/, std::uint64_t ext_port, ir::CostMeter& m) {
        const auto erased = ext_table_.erase(ext_port, m);
        result.ext_walk += erased.stats.traversals;
        result.ext_collisions += erased.stats.collisions;
        allocator_->free(static_cast<std::uint16_t>(ext_port), m);
      });
  return result;
}

void NatState::bind(DispatchEnv& env) {
  env.register_method(kExpire, [this](std::uint64_t, std::uint64_t,
                                      const net::Packet& pkt,
                                      ir::CostMeter& meter) {
    const SweepResult sweep = sweep_expired(pkt.timestamp_ns(), meter);
    const auto& r = sweep.flow;
    ir::CallOutcome out;
    out.v0 = r.expired;
    out.case_label = "expire";
    out.pcvs.set(e_, r.expired);
    if (r.expired > 0) {
      // Combined amortisation across both tables' erase walks, so the
      // contract's single e*t / e*c cross terms stay tight (see
      // contract_exprs.cpp).
      out.pcvs.set(t_, (r.total_walk + sweep.ext_walk + r.expired - 1) /
                           r.expired);
      out.pcvs.set(c_, (r.total_collisions + sweep.ext_collisions +
                        r.expired - 1) /
                           r.expired);
    } else {
      out.pcvs.set(t_, 0);
      out.pcvs.set(c_, 0);
    }
    return out;
  });

  env.register_method(kLookupInt, [this](std::uint64_t, std::uint64_t,
                                         const net::Packet& pkt,
                                         ir::CostMeter& meter) {
    const net::FiveTuple tuple = parse_tuple(pkt, meter);
    // touch: traffic keeps the mapping alive (stamp refresh on hit).
    const auto r = int_table_.touch(tuple.key(), pkt.timestamp_ns(), meter);
    ir::CallOutcome out;
    out.v0 = r.found ? 1 : 0;
    out.v1 = r.value;
    out.case_label = r.found ? "hit" : "miss";
    out.pcvs.set(c_, r.stats.collisions);
    out.pcvs.set(t_, r.stats.traversals);
    return out;
  });

  env.register_method(kLookupExt, [this](std::uint64_t, std::uint64_t,
                                         const net::Packet& pkt,
                                         ir::CostMeter& meter) {
    const net::FiveTuple tuple = parse_tuple(pkt, meter);
    const auto r = ext_table_.get(tuple.dst_port, meter);
    ir::CallOutcome out;
    out.v0 = r.found ? 1 : 0;
    out.v1 = r.value;  // (internal ip << 16) | internal port
    out.case_label = r.found ? "hit" : "miss";
    out.pcvs.set(c_, r.stats.collisions);
    out.pcvs.set(t_, r.stats.traversals);
    return out;
  });

  env.register_method(kAddFlow, [this](std::uint64_t, std::uint64_t,
                                       const net::Packet& pkt,
                                       ir::CostMeter& meter) {
    const net::FiveTuple tuple = parse_tuple(pkt, meter);
    ir::CallOutcome out;
    meter.metered_instructions(cost::kOccupancyCheck);
    meter.mem_read(ir::kArenaBase, 8);
    if (int_table_.occupancy() == int_table_.capacity()) {
      out.v0 = 0;
      out.case_label = "full";
      out.pcvs.set(c_, 0);
      out.pcvs.set(t_, 0);
      return out;
    }
    const auto alloc = allocator_->alloc(meter);
    BOLT_CHECK(alloc.ok, "allocator exhausted before table filled");
    const std::uint64_t now = pkt.timestamp_ns();
    const auto put_int =
        int_table_.put(tuple.key(), alloc.port, now, meter);
    const std::uint64_t reverse_value =
        (std::uint64_t(tuple.src_ip.value) << 16) | tuple.src_port;
    const auto put_ext = ext_table_.put(alloc.port, reverse_value, now, meter);
    BOLT_CHECK(put_int.outcome == FlowTable::PutCase::kNew &&
                   put_ext.outcome == FlowTable::PutCase::kNew,
               "NAT add_flow raced with existing mapping");
    out.v0 = 1;
    out.v1 = alloc.port;
    out.case_label = "ok";
    out.pcvs.set(c_, std::max(put_int.stats.collisions,
                              put_ext.stats.collisions));
    out.pcvs.set(t_, std::max(put_int.stats.traversals,
                              put_ext.stats.traversals));
    out.pcvs.set(s_, alloc.probes);
    return out;
  });
}

MethodTable NatState::method_table(perf::PcvRegistry& reg,
                                   const Config& config) {
  const FlowPcvs p = FlowPcvs::standard(reg);
  const perf::PcvId s = reg.require(pcv::kAllocProbes);
  const bool use_b = config.allocator == AllocatorKind::kB;

  auto make = [](std::int64_t instr, std::int64_t ma, std::int64_t unique) {
    CostShape out;
    out.exprs.set(Metric::kInstructions, PerfExpr::constant(instr));
    out.exprs.set(Metric::kMemoryAccesses, PerfExpr::constant(ma));
    out.unique_lines = PerfExpr::constant(unique);
    return out;
  };

  MethodTable table;

  {  // expire: per-eviction extra = reverse-map erase fixed part + port free
    MethodSpec spec;
    spec.name = "nat.expire";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      return std::vector<symbex::ModelOutcome>{
          symbex::fresh_value_outcome(symbols, "expire", "nat.expired", 32)};
    };
    const CostShape free_cost = use_b ? free_b_cost() : free_a_cost();
    // Reverse-map erase fixed part: bucket read + final key read + unlink +
    // stamp write; the walk itself folds into the combined e*t / e*c terms.
    const CostShape evict_extra =
        make(static_cast<std::int64_t>(cost::kHash + cost::kBucketHead +
                                       cost::kExpirePer),
             4, 2) +
        free_cost;
    spec.contract = perf::MethodContract("nat.expire");
    add_case(spec.contract, "expire", ft_expire(p, &evict_extra));
    table.emplace(kExpire, std::move(spec));
  }

  auto lookup_spec = [&](const char* name, const char* ret_name,
                         bool refreshes) {
    MethodSpec spec;
    spec.name = name;
    std::string ret = ret_name;
    spec.model = [ret](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                       const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs;
      symbex::ModelOutcome hit;
      hit.case_label = "hit";
      hit.ret0 = symbex::Expr::constant(1);
      hit.ret1 = symbex::Expr::symbol(symbols.fresh(ret, 48));
      outs.push_back(std::move(hit));
      symbex::ModelOutcome miss;
      miss.case_label = "miss";
      miss.ret0 = symbex::Expr::constant(0);
      outs.push_back(std::move(miss));
      return outs;
    };
    spec.contract = perf::MethodContract(name);
    add_case(spec.contract, "hit",
             parse_flow_cost() + (refreshes ? ft_touch_hit(p) : ft_get_hit(p)));
    add_case(spec.contract, "miss", parse_flow_cost() + ft_get_miss(p));
    return spec;
  };
  table.emplace(kLookupInt, lookup_spec("nat.lookup_int", "nat.ext_port", true));
  table.emplace(kLookupExt,
                lookup_spec("nat.lookup_ext", "nat.int_endpoint", false));

  {  // add_flow
    MethodSpec spec;
    spec.name = "nat.add_flow";
    spec.model = [](symbex::SymbolTable& symbols, const symbex::ExprPtr&,
                    const symbex::ExprPtr&) {
      std::vector<symbex::ModelOutcome> outs;
      symbex::ModelOutcome ok;
      ok.case_label = "ok";
      ok.ret0 = symbex::Expr::constant(1);
      ok.ret1 = symbex::Expr::symbol(symbols.fresh("nat.new_ext_port", 16));
      outs.push_back(std::move(ok));
      symbex::ModelOutcome full;
      full.case_label = "full";
      full.ret0 = symbex::Expr::constant(0);
      outs.push_back(std::move(full));
      return outs;
    };
    const CostShape alloc_cost = use_b ? alloc_b_cost(s) : alloc_a_cost();
    // Two put-new walks share the t/c PCVs (bound to the max of the two
    // walks by the implementation), so each contributes a full term.
    spec.contract = perf::MethodContract("nat.add_flow");
    add_case(spec.contract, "ok",
             parse_flow_cost() +
                 make(static_cast<std::int64_t>(cost::kOccupancyCheck), 1, 1) +
                 alloc_cost + ft_put_new(p) + ft_put_new(p));
    add_case(spec.contract, "full",
             parse_flow_cost() +
                 make(static_cast<std::int64_t>(cost::kOccupancyCheck), 1, 1));
    table.emplace(kAddFlow, std::move(spec));
  }

  return table;
}

void NatState::synthesize_pathological(std::uint64_t probe_key,
                                       std::size_t count,
                                       std::uint64_t stamp_ns) {
  // Entry i maps to external port (first_external_port + i); pair each with
  // a reverse mapping and an actually-allocated port so eviction behaves
  // exactly as after a real packet history.
  int_table_.synthesize_colliding_state(count, probe_key, stamp_ns,
                                        config_.first_external_port);
  ext_table_.clear();
  ir::CostMeter silent;
  for (std::size_t idx = 0; idx < count; ++idx) {
    const auto alloc = allocator_->alloc(silent);
    BOLT_CHECK(alloc.ok && alloc.port == config_.first_external_port + idx,
               "synthesis: allocator state not fresh");
    ext_table_.put(alloc.port, /*reverse=*/idx, stamp_ns, silent);
  }
}

}  // namespace bolt::dslib
