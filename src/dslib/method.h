// MethodSpec — everything BOLT needs to know about one stateful method:
// its symbolic model (used during symbolic execution) and its manually
// derived performance contract (folded in during replay, paper Alg. 2
// line 11). The concrete implementation lives in the composite state
// objects, which implement ir::StatefulEnv via DispatchEnv.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "ir/stateful.h"
#include "perf/contract.h"
#include "symbex/model.h"

namespace bolt::dslib {

struct MethodSpec {
  std::string name;
  symbex::SymbolicModel model;
  perf::MethodContract contract;
};

/// Method id -> spec; shared between the symbolic executor (models) and the
/// contract generator (contracts).
using MethodTable = std::map<std::int64_t, MethodSpec>;

/// Concrete dispatcher: method id -> handler over the real structures.
class DispatchEnv final : public ir::StatefulEnv {
 public:
  using Handler = std::function<ir::CallOutcome(
      std::uint64_t arg0, std::uint64_t arg1, const net::Packet& packet,
      ir::CostMeter& meter)>;

  void register_method(std::int64_t id, Handler handler);

  ir::CallOutcome call(std::int64_t method, std::uint64_t arg0,
                       std::uint64_t arg1, const net::Packet& packet,
                       ir::CostMeter& meter) override;

 private:
  std::map<std::int64_t, Handler> handlers_;
};

/// Shared PCV names used across the library, matching the paper's notation.
namespace pcv {
inline constexpr const char* kCollisions = "c";   ///< hash collisions
inline constexpr const char* kTraversals = "t";   ///< bucket traversals
inline constexpr const char* kExpired = "e";      ///< expired entries
inline constexpr const char* kOccupancy = "o";    ///< table occupancy
inline constexpr const char* kPrefixLen = "l";    ///< matched prefix length
inline constexpr const char* kIpOptions = "n";    ///< IP options in packet
inline constexpr const char* kAllocProbes = "s";  ///< allocator B scan probes
inline constexpr const char* kRingSteps = "b";    ///< Maglev ring walk steps
}  // namespace pcv

/// Interns the standard PCVs (idempotent) and returns nothing; callers use
/// reg.require(...) afterwards.
void intern_standard_pcvs(perf::PcvRegistry& reg);

}  // namespace bolt::dslib
