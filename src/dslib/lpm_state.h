// Router state wrappers: the Patricia-trie LPM (running example) and the
// DPDK-style DIR-24-8 LPM, as dispatchable stateful methods.
#pragma once

#include <cstdint>

#include "dslib/lpm.h"
#include "dslib/method.h"
#include "perf/pcv.h"

namespace bolt::dslib {

/// The paper's running-example router substrate (Tables 1 and 2).
class LpmTrieState {
 public:
  enum Method : std::int64_t {
    kLookup = 0,  ///< arg0 = dst IPv4 address; v0 = port
  };

  explicit LpmTrieState(perf::PcvRegistry& reg);

  void bind(DispatchEnv& env);
  static MethodTable method_table(perf::PcvRegistry& reg);

  LpmTrie& trie() { return trie_; }

 private:
  LpmTrie trie_;
  perf::PcvId l_;
};

/// The DPDK-style LPM of the paper's evaluation (LPM1/LPM2 classes).
class LpmDirState {
 public:
  enum Method : std::int64_t {
    kLookup = 0,  ///< arg0 = dst IPv4 address; v0 = port
  };

  explicit LpmDirState(perf::PcvRegistry& reg);

  void bind(DispatchEnv& env);
  static MethodTable method_table(perf::PcvRegistry& reg);

  LpmDir24_8& table() { return table_; }

 private:
  LpmDir24_8 table_;
};

}  // namespace bolt::dslib
