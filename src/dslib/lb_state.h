// LbState — the Maglev-like load balancer's stateful side: a flow table
// caching flow -> backend decisions, the Maglev ring, and backend health.
#pragma once

#include <cstdint>

#include "dslib/flow_table.h"
#include "dslib/maglev.h"
#include "dslib/method.h"
#include "perf/pcv.h"

namespace bolt::dslib {

class LbState {
 public:
  enum Method : std::int64_t {
    kExpire = 0,
    kFlowLookup = 1,    ///< v0 = found, v1 = backend
    kBackendAlive = 2,  ///< arg0 = backend; v0 = alive
    kRingSelect = 3,    ///< new flow: ring walk + cache; v0 = backend
    kReselect = 4,      ///< cached backend died: ring walk + recache; v0 = backend
    kHeartbeat = 5,     ///< backend heartbeat datagram
  };

  struct Config {
    FlowTable::Config flow;
    MaglevRing::Config ring;
    std::uint16_t heartbeat_port = 7000;
  };

  LbState(const Config& config, perf::PcvRegistry& reg);

  void bind(DispatchEnv& env);
  static MethodTable method_table(perf::PcvRegistry& reg, const Config& config);

  FlowTable& flow_table() { return flow_; }
  MaglevRing& ring() { return ring_; }
  const Config& config() const { return config_; }

  /// Paper §5.1 LB1: pathological flow-table state.
  void synthesize_pathological(std::uint64_t probe_key, std::size_t count,
                               std::uint64_t stamp_ns);

 private:
  Config config_;
  FlowTable flow_;
  MaglevRing ring_;
  perf::PcvId c_, t_, e_, b_;
};

}  // namespace bolt::dslib
