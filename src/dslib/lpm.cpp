#include "dslib/lpm.h"

#include "dslib/costs.h"
#include "support/assert.h"

namespace bolt::dslib {

LpmTrie::LpmTrie() : arena_base_(ir::ArenaAllocator::next_base()) {
  Node root;
  root.has_route = true;  // default route, port 0
  nodes_.push_back(root);
}

void LpmTrie::insert(std::uint32_t prefix, int length, std::uint16_t port) {
  BOLT_CHECK(length >= 0 && length <= 32, "bad prefix length");
  std::int32_t node = 0;
  for (int i = 0; i < length; ++i) {
    const int bit = (prefix >> (31 - i)) & 1;
    if (nodes_[node].child[bit] == kNil) {
      nodes_[node].child[bit] = static_cast<std::int32_t>(nodes_.size());
      nodes_.push_back(Node{});
    }
    node = nodes_[node].child[bit];
  }
  nodes_[node].port = port;
  nodes_[node].has_route = true;
}

LpmTrie::LookupResult LpmTrie::lookup(std::uint32_t addr,
                                      ir::CostMeter& meter) const {
  LookupResult result;
  std::int32_t node = 0;
  std::uint16_t best_port = nodes_[0].port;
  meter.metered_instructions(cost::kTrieFixed);
  meter.mem_read(arena_base_, 16);  // root node
  for (int i = 0; i < 32; ++i) {
    const int bit = (addr >> (31 - i)) & 1;
    if (nodes_[node].child[bit] == kNil) break;
    node = nodes_[node].child[bit];
    ++result.matched_length;
    // The per-bit cost depends on the bit value (the compiler unfolds the
    // pointer arithmetic into different jump sequences — §3.2). The
    // contract coalesces to kTrieStepHi.
    meter.metered_instructions(bit != 0 ? cost::kTrieStepHi : cost::kTrieStepLo);
    meter.mem_read(arena_base_ + 16ULL * node, 16, true);
    if (nodes_[node].has_route) best_port = nodes_[node].port;
  }
  result.port = best_port;
  return result;
}

LpmDir24_8::LpmDir24_8() : arena_base_(ir::ArenaAllocator::next_base()) {
  tbl24_.assign(1u << 24, 0);
  depth24_.assign(1u << 24, 0);
}

std::uint16_t LpmDir24_8::allocate_tbl8(std::uint16_t fill_port,
                                        std::uint8_t fill_depth) {
  const std::size_t group = tbl8_.size() / 256;
  BOLT_CHECK(group < 0x8000, "tbl8 pool exhausted");
  tbl8_.resize(tbl8_.size() + 256, fill_port);
  depth8_.resize(depth8_.size() + 256, fill_depth);
  return static_cast<std::uint16_t>(group);
}

void LpmDir24_8::insert(std::uint32_t prefix, int length, std::uint16_t port) {
  BOLT_CHECK(length >= 1 && length <= 32, "bad prefix length");
  BOLT_CHECK((port & kIndirect) == 0, "port value too large");
  if (length <= 24) {
    const std::uint32_t first = prefix >> 8;
    const std::uint32_t span = 1u << (24 - length);
    for (std::uint32_t i = 0; i < span; ++i) {
      const std::uint32_t slot = first + i;
      if ((tbl24_[slot] & kIndirect) != 0) {
        // Refine the existing tbl8 group where this shorter prefix loses.
        const std::uint16_t group = tbl24_[slot] & 0x7fff;
        for (std::uint32_t j = 0; j < 256; ++j) {
          const std::size_t t8 = std::size_t(group) * 256 + j;
          if (depth8_[t8] <= length) {
            tbl8_[t8] = port;
            depth8_[t8] = static_cast<std::uint8_t>(length);
          }
        }
      } else if (depth24_[slot] <= length) {
        tbl24_[slot] = port;
        depth24_[slot] = static_cast<std::uint8_t>(length);
      }
    }
    return;
  }
  // length > 24: one tbl24 slot, expanded into a tbl8 group.
  const std::uint32_t slot = prefix >> 8;
  std::uint16_t group;
  if ((tbl24_[slot] & kIndirect) != 0) {
    group = tbl24_[slot] & 0x7fff;
  } else {
    group = allocate_tbl8(tbl24_[slot], depth24_[slot]);
    tbl24_[slot] = static_cast<std::uint16_t>(kIndirect | group);
  }
  const std::uint32_t first = prefix & 0xff;
  const std::uint32_t span = 1u << (32 - length);
  for (std::uint32_t i = 0; i < span; ++i) {
    const std::size_t t8 = std::size_t(group) * 256 + first + i;
    if (depth8_[t8] <= length) {
      tbl8_[t8] = port;
      depth8_[t8] = static_cast<std::uint8_t>(length);
    }
  }
}

LpmDir24_8::LookupResult LpmDir24_8::lookup(std::uint32_t addr,
                                            ir::CostMeter& meter) const {
  LookupResult result;
  meter.metered_instructions(cost::kDir24Lookup);
  const std::uint32_t slot = addr >> 8;
  meter.mem_read(arena_base_ + 2ULL * slot, 2);
  const std::uint16_t entry = tbl24_[slot];
  if ((entry & kIndirect) == 0) {
    result.port = entry;
    result.tier = LookupCase::kOneLookup;
    return result;
  }
  meter.metered_instructions(cost::kDir8Lookup);
  const std::size_t t8 = std::size_t(entry & 0x7fff) * 256 + (addr & 0xff);
  meter.mem_read(arena_base_ + 2ULL * (1u << 24) + 2ULL * t8, 2);
  result.port = tbl8_[t8];
  result.tier = LookupCase::kTwoLookups;
  return result;
}

}  // namespace bolt::dslib
