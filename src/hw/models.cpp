#include "hw/models.h"

namespace bolt::hw {

ConservativeModel::ConservativeModel(const CycleCosts& costs)
    : costs_(costs),
      meter_(ir::ConservativeCycleMeter::Costs{costs.cons_alu, 5,
                                               costs.cons_l1,
                                               costs.cons_dram}) {}

std::uint64_t ConservativeModel::op_cycles(ir::Op op, const CycleCosts& costs) {
  switch (op) {
    case ir::Op::kMul:
      return 5;  // imul worst case
    case ir::Op::kShl:
    case ir::Op::kShr:
      return costs.cons_alu;
    default:
      return costs.cons_alu;
  }
}

RealisticSim::RealisticSim(const CycleCosts& costs)
    : costs_(costs),
      l1_(32 * 1024, 8),
      l2_(256 * 1024, 8),
      l3_(8 * 1024 * 1024, 16) {}

void RealisticSim::begin_packet() { packet_start_ = cycles_; }

void RealisticSim::on_instruction(ir::Op /*op*/) {
  instr_carry_ += costs_.real_ipc_num;
  cycles_ += instr_carry_ / costs_.real_ipc_den;
  instr_carry_ %= costs_.real_ipc_den;
}

void RealisticSim::on_metered_instructions(std::uint64_t n) {
  instr_carry_ += n * costs_.real_ipc_num;
  cycles_ += instr_carry_ / costs_.real_ipc_den;
  instr_carry_ %= costs_.real_ipc_den;
}

void RealisticSim::on_access(std::uint64_t addr, std::uint32_t size,
                             bool /*is_write*/, bool dependent) {
  const std::uint64_t first = line_of(addr);
  const std::uint64_t last = line_of(addr + (size == 0 ? 0 : size - 1));
  for (std::uint64_t line = first; line <= last; ++line) {
    if (l1_.access(line)) {
      ++stats_.l1_hits;
      cycles_ += costs_.real_l1;
      continue;
    }
    // L1 miss. Track ascending/descending line streams: the hardware
    // prefetcher covers established streams; independent streamed misses
    // additionally overlap via memory-level parallelism.
    const std::int64_t delta =
        static_cast<std::int64_t>(line) - static_cast<std::int64_t>(last_miss_line_);
    const bool adjacent = delta == 1 || delta == -1;
    if (adjacent && delta == stream_delta_) {
      ++stream_run_;
    } else if (adjacent) {
      stream_delta_ = delta;
      stream_run_ = 1;
    } else {
      stream_delta_ = 0;
      stream_run_ = 0;
    }
    last_miss_line_ = line;
    const bool streamed = stream_run_ >= 2;

    // Where does the line come from, and does stream prefetch / MLP cap
    // the effective latency?
    std::uint64_t cost;
    std::uint64_t* counter;
    if (l2_.access(line)) {
      cost = costs_.real_l2;
      counter = &stats_.l2_hits;
    } else if (l3_.access(line)) {
      cost = costs_.real_l3;
      counter = &stats_.l3_hits;
    } else {
      cost = costs_.real_dram;
      counter = &stats_.dram;
    }
    if (streamed) {
      const std::uint64_t cap = dependent ? costs_.real_stream_dependent
                                          : costs_.real_stream_independent;
      if (cost > cap) {
        cost = cap;
        counter = dependent ? &stats_.prefetch_hits : &stats_.mlp_hits;
      }
    }
    ++*counter;
    cycles_ += cost;
    l1_.insert(line);
  }
}

}  // namespace bolt::hw
