// Set-associative cache model with LRU replacement, used by both hardware
// models (the conservative model's L1D must-hit analysis and the realistic
// simulator's L1/L2/L3 hierarchy).
#pragma once

#include <cstdint>
#include <vector>

namespace bolt::hw {

inline constexpr std::uint32_t kCacheLineBytes = 64;

inline std::uint64_t line_of(std::uint64_t addr) {
  return addr / kCacheLineBytes;
}

class Cache {
 public:
  /// `size_bytes` total capacity; `ways` associativity; LRU within sets.
  Cache(std::size_t size_bytes, std::size_t ways);

  /// Looks up (and on miss inserts) the line; returns true on hit.
  bool access(std::uint64_t line);

  /// Inserts without counting as a demand access (prefetch fills).
  void insert(std::uint64_t line);

  /// True if the line is currently resident (no LRU update).
  bool contains(std::uint64_t line) const;

  void clear();

  std::size_t sets() const { return sets_; }
  std::size_t ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t line = ~0ULL;
    std::uint64_t lru = 0;  // higher = more recently used
  };

  std::size_t set_of(std::uint64_t line) const { return line & (sets_ - 1); }

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t tick_ = 0;
  std::vector<Way> slots_;  // sets_ * ways_
};

}  // namespace bolt::hw
