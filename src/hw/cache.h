// Set-associative cache model with LRU replacement, used by both hardware
// models (the conservative model's L1D must-hit analysis and the realistic
// simulator's L1/L2/L3 hierarchy).
//
// The implementation moved to support/cache.h (header-only) so the decoded
// interpreter's inline cycle meter can share it without depending on hw/;
// these aliases keep the hw:: spelling every existing consumer uses.
#pragma once

#include "support/cache.h"

namespace bolt::hw {

inline constexpr std::uint32_t kCacheLineBytes = support::kCacheLineBytes;

using support::line_of;

using Cache = support::Cache;

}  // namespace bolt::hw
