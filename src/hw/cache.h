// Set-associative cache model with LRU replacement, used by both hardware
// models (the conservative model's L1D must-hit analysis and the realistic
// simulator's L1/L2/L3 hierarchy).
#pragma once

#include <cstdint>
#include <vector>

namespace bolt::hw {

inline constexpr std::uint32_t kCacheLineBytes = 64;

inline std::uint64_t line_of(std::uint64_t addr) {
  return addr / kCacheLineBytes;
}

class Cache {
 public:
  /// `size_bytes` total capacity; `ways` associativity; LRU within sets.
  Cache(std::size_t size_bytes, std::size_t ways);

  /// Looks up (and on miss inserts) the line; returns true on hit.
  bool access(std::uint64_t line);

  /// Inserts without counting as a demand access (prefetch fills).
  void insert(std::uint64_t line);

  /// True if the line is currently resident (no LRU update).
  bool contains(std::uint64_t line) const;

  void clear();

  std::size_t sets() const { return sets_; }
  std::size_t ways() const { return ways_; }

 private:
  struct Way {
    std::uint64_t line = ~0ULL;
    std::uint64_t lru = 0;    // higher = more recently used
    std::uint64_t epoch = 0;  // valid only when == cache epoch (0 = never)
  };

  std::size_t set_of(std::uint64_t line) const { return line & (sets_ - 1); }
  /// LRU rank with stale (pre-clear) entries reading as empty.
  std::uint64_t lru_of(const Way& w) const { return w.epoch == epoch_ ? w.lru : 0; }

  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t tick_ = 0;
  std::uint64_t epoch_ = 1;  // bumped by clear(); way.epoch 0 is pre-first-use
  std::vector<Way> slots_;  // sets_ * ways_
};

}  // namespace bolt::hw
