#include "hw/cache.h"

#include "support/assert.h"

namespace bolt::hw {

Cache::Cache(std::size_t size_bytes, std::size_t ways) : ways_(ways) {
  BOLT_CHECK(ways >= 1, "cache needs at least one way");
  const std::size_t lines = size_bytes / kCacheLineBytes;
  BOLT_CHECK(lines >= ways, "cache too small for its associativity");
  sets_ = lines / ways;
  BOLT_CHECK((sets_ & (sets_ - 1)) == 0, "cache set count must be a power of 2");
  slots_.resize(sets_ * ways_);
}

bool Cache::access(std::uint64_t line) {
  const std::size_t base = set_of(line) * ways_;
  ++tick_;
  std::size_t victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = slots_[base + w];
    if (way.line == line) {
      way.lru = tick_;
      return true;
    }
    if (way.lru < slots_[victim].lru) victim = base + w;
  }
  slots_[victim].line = line;
  slots_[victim].lru = tick_;
  return false;
}

void Cache::insert(std::uint64_t line) {
  const std::size_t base = set_of(line) * ways_;
  ++tick_;
  std::size_t victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = slots_[base + w];
    if (way.line == line) {
      return;  // already resident; prefetch is a no-op
    }
    if (way.lru < slots_[victim].lru) victim = base + w;
  }
  slots_[victim].line = line;
  slots_[victim].lru = tick_;
}

bool Cache::contains(std::uint64_t line) const {
  const std::size_t base = set_of(line) * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (slots_[base + w].line == line) return true;
  }
  return false;
}

void Cache::clear() {
  for (auto& way : slots_) {
    way.line = ~0ULL;
    way.lru = 0;
  }
  tick_ = 0;
}

}  // namespace bolt::hw
