#include "hw/cache.h"

#include "support/assert.h"

namespace bolt::hw {

Cache::Cache(std::size_t size_bytes, std::size_t ways) : ways_(ways) {
  BOLT_CHECK(ways >= 1, "cache needs at least one way");
  const std::size_t lines = size_bytes / kCacheLineBytes;
  BOLT_CHECK(lines >= ways, "cache too small for its associativity");
  sets_ = lines / ways;
  BOLT_CHECK((sets_ & (sets_ - 1)) == 0, "cache set count must be a power of 2");
  slots_.resize(sets_ * ways_);
}

bool Cache::access(std::uint64_t line) {
  const std::size_t base = set_of(line) * ways_;
  ++tick_;
  std::size_t victim = base;
  std::uint64_t victim_lru = lru_of(slots_[base]);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = slots_[base + w];
    if (way.epoch == epoch_ && way.line == line) {
      way.lru = tick_;
      return true;
    }
    const std::uint64_t lru = lru_of(way);
    if (lru < victim_lru) {
      victim = base + w;
      victim_lru = lru;
    }
  }
  slots_[victim] = Way{line, tick_, epoch_};
  return false;
}

void Cache::insert(std::uint64_t line) {
  const std::size_t base = set_of(line) * ways_;
  ++tick_;
  std::size_t victim = base;
  std::uint64_t victim_lru = lru_of(slots_[base]);
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = slots_[base + w];
    if (way.epoch == epoch_ && way.line == line) {
      return;  // already resident; prefetch is a no-op
    }
    const std::uint64_t lru = lru_of(way);
    if (lru < victim_lru) {
      victim = base + w;
      victim_lru = lru;
    }
  }
  slots_[victim] = Way{line, tick_, epoch_};
}

bool Cache::contains(std::uint64_t line) const {
  const std::size_t base = set_of(line) * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    const Way& way = slots_[base + w];
    if (way.epoch == epoch_ && way.line == line) return true;
  }
  return false;
}

void Cache::clear() {
  // O(1) epoch invalidation: entries stamped with an older epoch read as
  // empty (line ~0, LRU 0), exactly as if the array had been rewritten.
  // The conservative model clears per packet/path, so the eager rewrite
  // of sets*ways slots was a real cost on the contract-generation path.
  ++epoch_;
  tick_ = 0;
}

}  // namespace bolt::hw
