// The two hardware models (paper §3.5 and §5.1).
//
// * ConservativeModel — what BOLT's cycle contracts assume. Per-instruction
//   worst-case costs ("Intel manual" style), and every memory access is
//   charged main-memory latency unless a *must-hit* L1D analysis proves the
//   line resident from this same packet's earlier accesses. No cross-packet
//   state, no prefetching, no memory-level parallelism, no overlap: this is
//   deliberately pessimistic, which is exactly why the paper observes
//   2–4x over-estimation on typical traffic and ~9x on pathological
//   streaming workloads.
//
// * RealisticSim — the reproduction's stand-in for the Xeon E5-2667v2
//   testbed ("measured" numbers). Persistent L1/L2/L3 caches across
//   packets, a next-line streaming prefetcher, and pipelined instruction
//   issue. Both models consume the identical execution trace via
//   ir::TraceSink, so predicted-vs-measured gaps arise for the same reasons
//   they do on hardware.
#pragma once

#include <cstdint>

#include "hw/cache.h"
#include "ir/cost.h"
#include "ir/cycle_meter.h"

namespace bolt::hw {

/// Calibration constants shared by contracts and models.
struct CycleCosts {
  // Conservative model.
  std::uint64_t cons_alu = 2;    ///< worst-case cycles per instruction
  std::uint64_t cons_l1 = 4;     ///< proven-L1 access
  std::uint64_t cons_dram = 200; ///< any unproven access
  // Realistic simulator.
  std::uint64_t real_ipc_num = 3;   ///< instr cost = num/den cycles
  std::uint64_t real_ipc_den = 2;   ///< (3/2 = dependent-chain IPC 0.67)
  std::uint64_t real_l1 = 4;
  std::uint64_t real_l2 = 10;
  std::uint64_t real_l3 = 25;
  std::uint64_t real_dram = 190;
  /// Effective cost cap for misses inside an established line stream:
  /// the prefetcher hides most of the latency of a *dependent* chase
  /// (it stays one line ahead), and memory-level parallelism overlaps
  /// *independent* streamed misses almost fully.
  std::uint64_t real_stream_dependent = 25;
  std::uint64_t real_stream_independent = 10;

  bool operator==(const CycleCosts& o) const {
    return cons_alu == o.cons_alu && cons_l1 == o.cons_l1 &&
           cons_dram == o.cons_dram && real_ipc_num == o.real_ipc_num &&
           real_ipc_den == o.real_ipc_den && real_l1 == o.real_l1 &&
           real_l2 == o.real_l2 && real_l3 == o.real_l3 &&
           real_dram == o.real_dram &&
           real_stream_dependent == o.real_stream_dependent &&
           real_stream_independent == o.real_stream_independent;
  }
};

inline const CycleCosts& default_cycle_costs() {
  static const CycleCosts costs;
  return costs;
}

/// Base interface: a trace sink that also tracks per-packet cycle totals.
class CycleModel : public ir::TraceSink {
 public:
  /// Marks a packet boundary. The conservative model resets its must-hit
  /// analysis here (it may assume nothing about prior packets); the
  /// realistic simulator keeps its caches warm.
  virtual void begin_packet() = 0;
  virtual std::uint64_t total_cycles() const = 0;
  virtual std::uint64_t packet_cycles() const = 0;  ///< since begin_packet
};

/// Conservative, contract-grade model (per-packet must-hit L1D only).
///
/// A thin TraceSink adapter over ir::ConservativeCycleMeter: the meter owns
/// all the arithmetic (per-op worst-case sums + the must-hit L1 stream), so
/// the virtual event-stream path used by the reference interpreter and the
/// inline path used by the decoded interpreter (via fast_meter()) cannot
/// diverge — they are the same object.
class ConservativeModel final : public CycleModel {
 public:
  explicit ConservativeModel(const CycleCosts& costs = default_cycle_costs());

  void begin_packet() override { meter_.begin_packet(); }
  std::uint64_t total_cycles() const override { return meter_.total_cycles(); }
  std::uint64_t packet_cycles() const override {
    return meter_.packet_cycles();
  }

  void on_instruction(ir::Op op) override {
    meter_.add_cycles(op_cycles(op, costs_));
  }
  void on_metered_instructions(std::uint64_t n) override {
    meter_.add_cycles(n * costs_.cons_alu);
  }
  void on_access(std::uint64_t addr, std::uint32_t size, bool /*is_write*/,
                 bool /*dependent*/) override {
    meter_.access(addr, size);
  }
  ir::ConservativeCycleMeter* fast_meter() override { return &meter_; }

  /// Worst-case cycles for one stateless IR instruction.
  static std::uint64_t op_cycles(ir::Op op, const CycleCosts& costs);

 private:
  CycleCosts costs_;
  ir::ConservativeCycleMeter meter_;
};

/// Realistic testbed simulator (persistent hierarchy + prefetch).
class RealisticSim final : public CycleModel {
 public:
  explicit RealisticSim(const CycleCosts& costs = default_cycle_costs());

  void begin_packet() override;
  std::uint64_t total_cycles() const override { return cycles_; }
  std::uint64_t packet_cycles() const override {
    return cycles_ - packet_start_;
  }

  void on_instruction(ir::Op op) override;
  void on_metered_instructions(std::uint64_t n) override;
  void on_access(std::uint64_t addr, std::uint32_t size, bool is_write,
                 bool dependent) override;

  /// Hit distribution counters (exposed for experiments/tests).
  struct Stats {
    std::uint64_t l1_hits = 0, l2_hits = 0, l3_hits = 0;
    std::uint64_t prefetch_hits = 0, mlp_hits = 0, dram = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  CycleCosts costs_;
  Cache l1_, l2_, l3_;
  std::uint64_t last_miss_line_ = ~0ULL - 8;
  std::int64_t stream_delta_ = 0;  ///< direction of the current miss stream
  std::uint64_t stream_run_ = 0;   ///< consecutive same-direction line misses
  std::uint64_t cycles_ = 0;
  std::uint64_t packet_start_ = 0;
  std::uint64_t instr_carry_ = 0;  ///< fractional instruction cycles
  Stats stats_;
};

}  // namespace bolt::hw
