#!/usr/bin/env bash
# Runs the Bolt bench suite and archives machine-readable results.
#
# Usage: tools/bench_runner.sh [build-dir] [output-dir]
#   build-dir   where the bench_* binaries live (default: build)
#   output-dir  where BENCH_*.json land (default: bench-results)
#
# Plain benches (fig*/table*/p123*, monitor_throughput) emit
# BENCH_<name>.json through the BOLT_BENCH_JSON env var; Google-Benchmark
# micro benches emit their native JSON via --benchmark_format. CI uploads
# the output directory per commit, so perf trajectories accumulate
# alongside the code — BENCH_monitor_throughput.json tracks monitor
# packets/sec and the compiled-expression speedup per commit.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"
OUT_DIR="$(cd "$OUT_DIR" && pwd)"
export BOLT_BENCH_JSON="$OUT_DIR"

status=0
for bench in "$BUILD_DIR"/bench_*; do
  [[ -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  case "$name" in
    bench_micro_*)
      if ! "$bench" --benchmark_format=json \
          --benchmark_out="$OUT_DIR/BENCH_${name#bench_}.json" \
          --benchmark_out_format=json >/dev/null; then
        echo "FAILED: $name" >&2
        status=1
      fi
      ;;
    *)
      if ! "$bench" > "$OUT_DIR/${name#bench_}.txt"; then
        echo "FAILED: $name" >&2
        status=1
      fi
      ;;
  esac
done

echo
echo "Archived bench output in $OUT_DIR:"
ls -l "$OUT_DIR"
exit "$status"
