#!/usr/bin/env bash
# Runs the Bolt bench suite and archives machine-readable results.
#
# Usage: tools/bench_runner.sh [build-dir] [output-dir]
#   build-dir   where the bench_* binaries live (default: build)
#   output-dir  where BENCH_*.json land (default: bench-results)
#
# Plain benches (fig*/table*/p123*, monitor_throughput) emit
# BENCH_<name>.json through the BOLT_BENCH_JSON env var; Google-Benchmark
# micro benches emit their native JSON via --benchmark_format. CI uploads
# the output directory per commit, so perf trajectories accumulate
# alongside the code — BENCH_monitor_throughput.json tracks monitor
# packets/sec and the compiled-expression speedup per commit, and
# BENCH_micro_symbex.json tracks contract-generation latency (including
# the chain benchmark's contract_gen_speedup counter).
#
# After running, results are diffed against the committed baselines in
# bench/baselines/ (tools/bench_diff.py): a >25% regression in any gated
# metric — contract generation real_time/speedup, monitor packets/sec —
# fails the job. Refresh baselines deliberately with:
#   python3 tools/bench_diff.py bench/baselines bench-results --update
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: build dir '$BUILD_DIR' not found (run cmake first)" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"
OUT_DIR="$(cd "$OUT_DIR" && pwd)"
export BOLT_BENCH_JSON="$OUT_DIR"

status=0
for bench in "$BUILD_DIR"/bench_*; do
  [[ -x "$bench" ]] || continue
  name="$(basename "$bench")"
  echo "=== $name ==="
  case "$name" in
    bench_micro_*)
      # min_time well above the default 0.5s iteration budget: short
      # samples on small shared VMs flap past the gate tolerance from
      # scheduler noise alone, longer sampling averages it out.
      if ! "$bench" --benchmark_format=json \
          --benchmark_min_time="${BOLT_BENCH_MIN_TIME:-2}" \
          --benchmark_out="$OUT_DIR/BENCH_${name#bench_}.json" \
          --benchmark_out_format=json >/dev/null; then
        echo "FAILED: $name" >&2
        status=1
      fi
      ;;
    *)
      if ! "$bench" > "$OUT_DIR/${name#bench_}.txt"; then
        echo "FAILED: $name" >&2
        status=1
      fi
      ;;
  esac
done

echo
echo "Archived bench output in $OUT_DIR:"
ls -l "$OUT_DIR"

# Gate on the committed perf baselines (first consumer of the bench
# trajectory). Skipped when the baselines directory or python3 is absent.
BASELINES="$REPO_ROOT/bench/baselines"
if [[ -d "$BASELINES" ]] && command -v python3 >/dev/null 2>&1; then
  echo
  echo "=== baseline diff (tolerance ${BOLT_BENCH_TOLERANCE:-0.25}) ==="
  if ! python3 "$REPO_ROOT/tools/bench_diff.py" "$BASELINES" "$OUT_DIR"; then
    echo "bench_runner: perf regression against bench/baselines" >&2
    status=1
  fi
fi
exit "$status"
