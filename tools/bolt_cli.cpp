// bolt — command-line front end to the contract generator, the Distiller,
// and the contract monitor.
//
//   bolt contract <nf> [--json] [--out F]  generate + print (or store) an
//                                    NF's contract artifact
//   bolt paths <nf>                  per-path report (no coalescing)
//   bolt distill <nf> <pcap>         run a PCAP through the NF, report PCVs
//   bolt predict <nf> k=v [k=v...]   evaluate the contract at a PCV binding
//   bolt monitor <nf> [...]          stream traffic through the NF and
//                                    validate every packet against the
//                                    contract (violations, headroom,
//                                    quantile sketches, worst offenders).
//                                    With --contract FILE.json the stored
//                                    artifact is validated instead — the
//                                    operator workflow, no symbex at all.
//                                    --follow tails a growing pcap as a
//                                    daemon; --fleet I/N + --spool DIR
//                                    run one instance of a fleet.
//   bolt merge <nf> --spool DIR      fold a fleet's spooled partials into
//                                    the fleet-wide delta stream + report
//                                    (byte-identical to a single monitor
//                                    over the combined traffic)
//   bolt hunt <nf> [...]             feedback-directed search for contract
//                                    violations past the synthesised edge;
//                                    a find is delta-debugged to a minimal
//                                    witness trace and fails the gate
//   bolt gen <kind> <out.pcap> [n]   write a workload PCAP
//                                    (kind: uniform | churn | zipf | bridge
//                                     | attack | heartbeat | longrun)
//   bolt scenarios                   run the Figure-1 scenario sweep
//
// <nf> is one of: bridge, nat, nat-b (allocator B), lb, lpm, lpm-simple,
// firewall, router, fw+router (the chain).
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "adversary/adversary.h"
#include "adversary/hunter.h"
#include "adversary/minimize.h"
#include "adversary/report.h"
#include "adversary/trace.h"
#include "core/bolt.h"
#include "core/cli_usage.h"
#include "core/distiller.h"
#include "core/experiments.h"
#include "core/targets.h"
#include "monitor/follow.h"
#include "monitor/monitor.h"
#include "net/pcap.h"
#include "net/workload.h"
#include "obs/delta.h"
#include "obs/fleet.h"
#include "obs/telemetry.h"
#include "perf/contract_io.h"
#include "support/bench.h"
#include "support/io.h"
#include "support/strings.h"

using namespace bolt;

namespace {

int usage() {
  std::fputs(core::cli_usage_text(), stderr);
  return 2;
}

int cmd_contract(const std::string& nf, bool per_path, bool as_json,
                 std::size_t threads, const std::string& out_file) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  if (!core::make_named_target(nf, reg, target)) return usage();
  core::BoltOptions options;
  options.coalesce = !per_path;
  options.threads = threads;
  core::ContractGenerator generator(reg, options);
  const auto result = generator.generate(target.analysis());
  if (!out_file.empty()) {
    if (!perf::save_contract(out_file, result.contract, reg)) {
      std::fprintf(stderr, "error: cannot write contract to '%s'\n",
                   out_file.c_str());
      return 1;
    }
    // Status goes to stderr: with --json, stdout is a machine-read stream.
    std::fprintf(stderr,
                 "stored contract for %s (%zu entries, schema v%lld) in %s\n",
                 nf.c_str(), result.contract.entries().size(),
                 static_cast<long long>(perf::kContractSchemaVersion),
                 out_file.c_str());
    if (!as_json) return 0;
  }
  if (as_json) {
    std::printf("%s\n", perf::contract_to_json(result.contract, reg).c_str());
    return 0;
  }
  std::printf("%s", result.contract.str_all(reg).c_str());
  std::printf("\npaths: %zu   entries: %zu   unsolved: %zu   pruned: %zu\n",
              result.total_paths, result.contract.entries().size(),
              result.unsolved_paths, result.executor_stats.pruned_branches);
  std::printf("solver: %zu feasibility probes (%zu cache hits, %zu misses)"
              "   steals: %zu\n",
              result.executor_stats.solver_calls,
              result.executor_stats.feas_cache_hits,
              result.executor_stats.feas_cache_misses,
              result.executor_stats.steal_count);
  if (result.executor_stats.truncated_paths > 0) {
    std::printf("truncated: %zu (canonical prefix kept; raise max_paths to"
                " see all)\n",
                result.executor_stats.truncated_paths);
  }
  if (!reg.all().empty()) {
    std::printf("\nPCV glossary:\n");
    for (const perf::PcvId id : reg.all()) {
      if (!reg.description(id).empty()) {
        std::printf("  %-4s %s\n", reg.name(id).c_str(),
                    reg.description(id).c_str());
      }
    }
  }
  return 0;
}

int cmd_distill(const std::string& nf, const std::string& pcap) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  if (!core::make_named_target(nf, reg, target)) return usage();
  std::vector<net::Packet> packets = net::read_pcap(pcap);
  std::printf("loaded %zu packets from %s\n\n", packets.size(), pcap.c_str());

  hw::RealisticSim testbed;
  const auto runner = target.make_runner(nf::framework_full(), &testbed);
  core::Distiller distiller(*runner, &testbed,
                            target.is_stateless ? nullptr : &target.methods());
  const auto report = distiller.run(packets);

  std::map<std::string, std::size_t> classes;
  for (const auto& rec : report.records) ++classes[rec.class_key];
  std::printf("input classes observed:\n");
  for (const auto& [key, count] : classes) {
    std::printf("  %8zu  %s\n", count, key.c_str());
  }
  std::printf("\nworst measured: %s instructions, %s accesses, %s cycles\n",
              support::with_commas(static_cast<std::int64_t>(
                                       report.worst_measured("instructions")))
                  .c_str(),
              support::with_commas(static_cast<std::int64_t>(
                                       report.worst_measured("mem_accesses")))
                  .c_str(),
              support::with_commas(static_cast<std::int64_t>(
                                       report.worst_measured("cycles")))
                  .c_str());
  std::printf("\nworst PCV binding:\n");
  // Keep the binding alive: values() returns a reference into it, and
  // iterating a temporary's internals is a use-after-scope.
  const perf::PcvBinding worst_binding = report.worst_binding();
  for (const auto& [id, v] : worst_binding.values()) {
    std::printf("  %-4s = %llu\n", reg.name(id).c_str(),
                static_cast<unsigned long long>(v));
  }
  return 0;
}

int cmd_predict(const std::string& nf, int argc, char** argv, int first) {
  perf::PcvRegistry reg;
  core::NfTarget target;
  if (!core::make_named_target(nf, reg, target)) return usage();
  core::ContractGenerator generator(reg);
  const auto result = generator.generate(target.analysis());

  perf::PcvBinding bind;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || !reg.contains(arg.substr(0, eq))) {
      std::fprintf(stderr, "bad PCV binding '%s'\n", arg.c_str());
      return 2;
    }
    bind.set(reg.require(arg.substr(0, eq)),
             std::strtoull(arg.c_str() + eq + 1, nullptr, 10));
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", "Instructions", "Mem Accesses", "Cycles"});
  for (const auto& entry : result.contract.entries()) {
    rows.push_back(
        {entry.input_class,
         support::with_commas(
             entry.perf.get(perf::Metric::kInstructions).eval(bind)),
         support::with_commas(
             entry.perf.get(perf::Metric::kMemoryAccesses).eval(bind)),
         support::with_commas(
             entry.perf.get(perf::Metric::kCycles).eval(bind))});
  }
  std::printf("%s", support::render_table(rows).c_str());
  return 0;
}

/// Workload for a monitor run: explicit kind, or a default that suits the
/// target (bridge traffic for the bridge, heavy-tailed flows otherwise).
std::vector<net::Packet> monitor_workload(const std::string& nf,
                                          std::string kind,
                                          std::size_t count) {
  if (kind.empty()) kind = nf == "bridge" ? "bridge" : "zipf";
  if (kind == "uniform") {
    net::UniformSpec spec;
    spec.packet_count = count;
    return net::uniform_random_traffic(spec);
  }
  if (kind == "churn") {
    net::ChurnSpec spec;
    spec.packet_count = count;
    spec.churn = 0.05;
    return net::churn_traffic(spec);
  }
  if (kind == "zipf") {
    net::ZipfSpec spec;
    spec.packet_count = count;
    spec.flow_pool = 2048;
    spec.skew = 1.1;
    return net::zipf_traffic(spec);
  }
  if (kind == "bridge") {
    net::BridgeSpec spec;
    spec.packet_count = count;
    spec.stations = 1000;
    spec.broadcast_fraction = 0.05;
    return net::bridge_traffic(spec);
  }
  if (kind == "attack") {
    net::BridgeAttackSpec spec;
    spec.packet_count = count;
    return net::bridge_collision_attack(spec);
  }
  if (kind == "heartbeat") {
    net::HeartbeatSpec spec;
    spec.packet_count = count;
    return net::heartbeat_traffic(spec);
  }
  if (kind == "longrun") {
    net::LongRunSpec spec;
    spec.packet_count = count;
    return net::long_run_traffic(spec);
  }
  if (kind == "drift") {
    net::DriftSpec spec;
    // The erosion schedule (windows, ramp) is the spec's; --packets only
    // scales the per-window density.
    if (count > 0) {
      spec.packets_per_window =
          std::max<std::size_t>(std::size_t{1}, count / spec.windows);
    }
    return net::drift_traffic(spec);
  }
  return {};
}

struct MonitorCliArgs {
  std::string workload;  // empty = target default
  std::string pcap;      // overrides workload when set
  std::string contract;  // stored artifact; empty = regenerate in-process
  std::string report;    // also write the report JSON here
  std::size_t packets = 100'000;
  std::size_t partitions = 8;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t epoch_ns = 1'000'000'000;
  std::uint64_t violation_threshold = 0;
  std::uint64_t inflate_pct = 0;
  std::size_t batch = 64;
  monitor::ShardGrouping grouping = monitor::ShardGrouping::kRoundRobin;
  bool pipeline = true;
  bool cycles = true;
  bool json = false;
  // Telemetry layer (src/obs/).
  std::size_t delta_every = 0;   // delta window width in epochs (0 = off)
  std::string delta_out;         // write the delta JSONL stream here
  std::string metrics_out;       // write the telemetry snapshot here
  std::string metrics_format = "json";  // json | prom
  bool watch = false;            // stream delta windows to stdout
  // Fleet mode (monitor/follow.h + obs/fleet.h).
  bool follow = false;           // daemon: tail --pcap as it grows
  std::string spool;             // write fleet partials here (also: merge)
  std::uint64_t idle_flush_ns = 0;   // follow: provisional flush after quiet
  std::uint64_t idle_exit_ms = 0;    // follow: clean exit after quiet (0=run)
  std::uint32_t fleet_instance = 0;  // --fleet I/N
  std::uint32_t fleet_instances = 1;
};

/// SIGINT/SIGTERM drain flag for --follow (sig_atomic_t: all a handler may
/// touch). The loop finishes the current poll, then drains and reports.
volatile std::sig_atomic_t g_stop = 0;
void handle_stop(int) { g_stop = 1; }

bool write_metrics_file(const MonitorCliArgs& args,
                        const obs::MonitorTelemetry& tel,
                        const std::string& nf) {
  const std::string metrics =
      args.metrics_format == "prom"
          ? obs::telemetry_to_prometheus(tel, nf)
          : obs::telemetry_to_json(tel, nf) + "\n";
  if (!support::write_file(args.metrics_out, metrics)) {
    std::fprintf(stderr, "error: cannot write metrics to '%s'\n",
                 args.metrics_out.c_str());
    return false;
  }
  return true;
}

/// Shared gate tail for 'monitor' (batch + streaming) and 'merge': exit 1
/// on unattributed packets or over-threshold violations, 3 on drift alerts
/// ("about to violate"), 0 clean.
int monitor_exit_code(const monitor::MonitorReport& report,
                      std::uint64_t violation_threshold, std::size_t alerts) {
  if (report.unattributed > 0) {
    std::fprintf(stderr,
                 "error: %llu packets not attributable to any contract "
                 "entry (first at %llu)\n",
                 static_cast<unsigned long long>(report.unattributed),
                 static_cast<unsigned long long>(
                     report.first_unattributed_packet));
    return 1;
  }
  if (report.violations > violation_threshold) {
    std::fprintf(stderr, "error: %llu violations (threshold %llu)\n",
                 static_cast<unsigned long long>(report.violations),
                 static_cast<unsigned long long>(violation_threshold));
    return 1;
  }
  if (alerts > 0) {
    std::fprintf(stderr,
                 "warning: %zu contract-drift alert(s) raised (no violation "
                 "yet; details in the delta stream)\n",
                 alerts);
    return 3;
  }
  return 0;
}

/// Streaming/fleet monitor path: one StreamMonitor fed packet-by-packet
/// (from the preloaded trace, or by tailing --pcap in --follow mode),
/// emitting delta lines, spool partials and metrics refreshes as windows
/// close. The final report goes through the same gates as the batch path.
int run_stream_monitor(const std::string& nf, const perf::Contract& contract,
                       const perf::PcvRegistry& reg,
                       monitor::MonitorOptions options,
                       const MonitorCliArgs& args,
                       const std::vector<net::Packet>& packets) {
  monitor::FleetOptions fleet;
  fleet.instance = args.fleet_instance;
  fleet.instances = args.fleet_instances;

  if (!args.spool.empty()) {
    // One level of mkdir (EEXIST is fine): a fleet's instances race to
    // create the shared spool, and either winning is correct.
    if (::mkdir(args.spool.c_str(), 0777) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "error: cannot create spool directory '%s'\n",
                   args.spool.c_str());
      return 1;
    }
  }

  std::FILE* delta_file = nullptr;
  if (!args.delta_out.empty()) {
    delta_file = std::fopen(args.delta_out.c_str(), "wb");
    if (delta_file == nullptr) {
      std::fprintf(stderr, "error: cannot write delta stream to '%s'\n",
                   args.delta_out.c_str());
      return 1;
    }
  }

  // Contract entry names in contract order — same layout entry_names()
  // reports, available before the monitor exists (the callback needs them).
  std::vector<std::string> entry_names;
  for (const auto& entry : contract.entries()) {
    entry_names.push_back(entry.input_class);
  }

  bool spool_write_failed = false;
  auto on_window = [&](const monitor::ClosedWindow& cw) {
    // Delta lines are authoritative-only (a provisional flush has no drift
    // pass and would duplicate the window); each line is flushed whole so
    // a tail -f never sees a torn JSON object.
    if (cw.has_delta && !cw.provisional) {
      const std::string line = obs::delta_window_to_json(cw.delta) + "\n";
      if (args.watch) {
        std::fputs(line.c_str(), stdout);
        std::fflush(stdout);
      }
      if (delta_file != nullptr) {
        std::fputs(line.c_str(), delta_file);
        std::fflush(delta_file);
      }
    }
    // Spool partials upsert by filename: a provisional emission is
    // overwritten by the authoritative close of the same window.
    if (!args.spool.empty() && cw.stats->packets > 0) {
      obs::WindowPartial wp;
      wp.nf = contract.nf_name();
      wp.instance = fleet.instance;
      wp.instances = fleet.instances;
      wp.window = cw.window;
      wp.window_ns = cw.window_ns;
      for (std::size_t e = 0; e < cw.accums->size(); ++e) {
        const monitor::ClassAccum& acc = (*cw.accums)[e];
        if (acc.packets == 0) continue;
        wp.classes.push_back(entry_names[e]);
        wp.accums.push_back(acc);
      }
      wp.packets = cw.stats->packets;
      wp.unattributed = cw.stats->unattributed;
      wp.first_unattributed = cw.stats->first_unattributed;
      wp.any_unattributed = cw.stats->any_unattributed;
      wp.epoch_sweeps = cw.stats->epoch_sweeps;
      wp.expired_idle = cw.stats->expired_idle;
      wp.high_water = cw.stats->high_water;
      wp.late_packets = cw.stats->late_packets;
      const std::string path =
          obs::spool_window_path(args.spool, nf, fleet.instance, cw.window);
      if (!support::write_file(path, obs::window_partial_to_json(wp) + "\n")) {
        std::fprintf(stderr, "error: cannot write spool partial '%s'\n",
                     path.c_str());
        spool_write_failed = true;
      }
    }
  };

  monitor::StreamMonitor sm(contract, reg, monitor::MonitorEngine::named_factory(nf),
                            options, fleet, on_window);

  auto refresh_metrics = [&]() {
    // Mid-run refreshes are best-effort; the final write is the gated one.
    if (options.telemetry && !args.metrics_out.empty()) {
      write_metrics_file(args, sm.telemetry_snapshot(), contract.nf_name());
    }
  };

  support::BenchTimer timer;
  if (args.follow) {
    // Daemon: tail the pcap as it grows; SIGINT/SIGTERM drains cleanly.
    std::signal(SIGINT, handle_stop);
    std::signal(SIGTERM, handle_stop);
    net::PcapTail tail(args.pcap);
    constexpr std::uint64_t kPollNs = 20'000'000;  // 20 ms
    std::uint64_t idle_ns = 0;
    bool flushed_idle = false;
    while (g_stop == 0) {
      const std::vector<net::Packet> chunk = tail.poll();
      if (chunk.empty()) {
        if (args.idle_exit_ms > 0 &&
            idle_ns >= args.idle_exit_ms * 1'000'000) {
          break;
        }
        if (args.idle_flush_ns > 0 && idle_ns >= args.idle_flush_ns &&
            !flushed_idle) {
          sm.idle_flush();
          refresh_metrics();
          flushed_idle = true;  // once per quiet spell; new data re-arms
        }
        std::this_thread::sleep_for(std::chrono::nanoseconds(kPollNs));
        idle_ns += kPollNs;
        continue;
      }
      idle_ns = 0;
      flushed_idle = false;
      for (const net::Packet& p : chunk) sm.feed(p);
      refresh_metrics();
    }
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  } else {
    for (const net::Packet& p : packets) sm.feed(p);
  }

  monitor::StreamResult result = sm.finish();
  const double elapsed_ms = timer.elapsed_ms();
  const std::uint64_t fed = sm.packets_fed();

  if (delta_file != nullptr && std::fclose(delta_file) != 0) {
    std::fprintf(stderr, "error: cannot write delta stream to '%s'\n",
                 args.delta_out.c_str());
    return 1;
  }
  if (!args.spool.empty()) {
    obs::FinalPartial fp;
    fp.nf = contract.nf_name();
    fp.instance = fleet.instance;
    fp.instances = fleet.instances;
    fp.stream_packets = fed;
    fp.partitions = std::max<std::size_t>(std::size_t{1}, options.partitions);
    fp.cycles_checked = options.check_cycles;
    fp.epoch_ns = options.epoch_ns;
    fp.max_offenders = options.max_offenders;
    fp.entries = entry_names;
    fp.residents = result.report.state_residents;
    fp.state_tracked = result.report.state_tracked;
    fp.has_telemetry = options.telemetry;
    fp.telemetry = result.observations.telemetry;
    const std::string path = obs::spool_final_path(args.spool, nf, fleet.instance);
    if (!support::write_file(path, obs::final_partial_to_json(fp) + "\n")) {
      std::fprintf(stderr, "error: cannot write spool partial '%s'\n",
                   path.c_str());
      spool_write_failed = true;
    }
  }
  if (!args.metrics_out.empty() &&
      !write_metrics_file(args, result.observations.telemetry,
                          result.report.nf)) {
    return 1;
  }
  if (!args.report.empty() &&
      !support::write_file(args.report,
                           monitor::report_to_json(result.report) + "\n")) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 args.report.c_str());
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", monitor::report_to_json(result.report).c_str());
  } else if (!args.watch) {
    std::printf("%s", result.report.str().c_str());
    const double pps = elapsed_ms > 0.0
                           ? static_cast<double>(fed) / (elapsed_ms / 1000.0)
                           : 0.0;
    std::printf("\nprocessed %llu packets in %.1f ms (%.2f Mpps)\n",
                static_cast<unsigned long long>(fed), elapsed_ms, pps / 1e6);
  }
  if (spool_write_failed) return 1;
  return monitor_exit_code(result.report, args.violation_threshold,
                           result.observations.alerts.size());
}

int cmd_monitor(const std::string& nf, const MonitorCliArgs& args) {
  perf::PcvRegistry reg;
  perf::Contract contract("");

  if (!args.contract.empty()) {
    // Operator mode: validate against the stored artifact. No generation,
    // no symbolic execution — the target is only instantiated per
    // partition for concrete measurement. Sanity-check that the artifact
    // was generated for the target we're about to run.
    core::NfTarget probe;
    perf::PcvRegistry probe_reg;
    if (!core::make_named_target(nf, probe_reg, probe)) return usage();
    contract = perf::load_contract(args.contract, reg);
    if (contract.nf_name() != probe.contract_name()) {
      std::fprintf(stderr,
                   "error: contract '%s' was generated for nf '%s', not "
                   "'%s'\n",
                   args.contract.c_str(), contract.nf_name().c_str(),
                   probe.contract_name().c_str());
      return 2;
    }
  } else {
    // Developer mode: regenerate the artifact in-process.
    core::NfTarget target;
    if (!core::make_named_target(nf, reg, target)) return usage();
    core::ContractGenerator generator(reg);
    contract = generator.generate(target.analysis()).contract;
  }

  if (args.follow && args.pcap.empty()) {
    std::fprintf(stderr, "error: --follow requires --pcap FILE to tail\n");
    return 2;
  }

  // Traffic side. --follow tails the pcap itself (the file may not even
  // exist yet), so nothing is preloaded.
  std::vector<net::Packet> packets;
  if (!args.follow) {
    if (!args.pcap.empty()) {
      packets = net::read_pcap(args.pcap);
    } else {
      packets = monitor_workload(nf, args.workload, args.packets);
    }
    if (packets.empty()) {
      std::fprintf(stderr, "error: no packets to monitor\n");
      return usage();
    }
  }

  monitor::MonitorOptions options;
  options.partitions = args.partitions;
  options.shards = args.shards;
  options.grouping = args.grouping;
  options.threads = args.threads;
  options.batch = args.batch;
  options.pipeline = args.pipeline;
  options.epoch_ns = args.epoch_ns;
  options.check_cycles = args.cycles;
  // Telemetry layer: --watch and --delta-out imply delta mode at the
  // finest granularity unless --delta-every chose one.
  options.delta_every = args.delta_every;
  if ((args.watch || !args.delta_out.empty()) && options.delta_every == 0) {
    options.delta_every = 1;
  }
  options.telemetry = !args.metrics_out.empty();
  if (args.inflate_pct > 0) {
    options.framework.rx_instructions +=
        options.framework.rx_instructions * args.inflate_pct / 100;
    options.framework.rx_accesses +=
        options.framework.rx_accesses * args.inflate_pct / 100;
    options.framework.tx_instructions +=
        options.framework.tx_instructions * args.inflate_pct / 100;
    options.framework.tx_accesses +=
        options.framework.tx_accesses * args.inflate_pct / 100;
  }
  // Daemon / fleet runs go through the streaming monitor: it feeds one
  // packet at a time, closes windows on packet timestamps and emits delta
  // lines / spool partials as it goes, then drains through the same
  // build_report path as the batch engine (byte-identical final report).
  const bool streaming =
      args.follow || !args.spool.empty() || args.fleet_instances > 1;
  if (streaming) {
    return run_stream_monitor(nf, contract, reg, options, args, packets);
  }

  monitor::MonitorEngine engine(contract, reg, options);

  obs::RunObservations observations;
  const bool want_obs = options.delta_every > 0 || options.telemetry;
  support::BenchTimer timer;
  const monitor::MonitorReport report =
      engine.run(packets, monitor::MonitorEngine::named_factory(nf), nullptr,
                 want_obs ? &observations : nullptr);
  const double elapsed_ms = timer.elapsed_ms();

  // Delta stream: one JSON line per window, written and flushed per line —
  // stdout in watch mode (the tail-able operator view), a file via
  // --delta-out, or both. A reader tailing either stream only ever sees
  // complete JSON lines, exactly as in --follow mode.
  std::FILE* delta_file = nullptr;
  if (!args.delta_out.empty()) {
    delta_file = std::fopen(args.delta_out.c_str(), "wb");
    if (delta_file == nullptr) {
      std::fprintf(stderr, "error: cannot write delta stream to '%s'\n",
                   args.delta_out.c_str());
      return 1;
    }
  }
  for (const obs::DeltaWindow& w : observations.deltas) {
    const std::string line = obs::delta_window_to_json(w) + "\n";
    if (args.watch) {
      std::fputs(line.c_str(), stdout);
      std::fflush(stdout);
    }
    if (delta_file != nullptr) {
      std::fputs(line.c_str(), delta_file);
      std::fflush(delta_file);
    }
  }
  if (delta_file != nullptr && std::fclose(delta_file) != 0) {
    std::fprintf(stderr, "error: cannot write delta stream to '%s'\n",
                 args.delta_out.c_str());
    return 1;
  }
  if (!args.metrics_out.empty() &&
      !write_metrics_file(args, observations.telemetry, report.nf)) {
    return 1;
  }

  // Never leave a truncated report behind for CI to archive as valid
  // (support::write_file removes the file on a failed or short write).
  if (!args.report.empty() &&
      !support::write_file(args.report,
                           monitor::report_to_json(report) + "\n")) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 args.report.c_str());
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", monitor::report_to_json(report).c_str());
  } else if (!args.watch) {
    // Watch mode keeps stdout a pure JSONL stream (the deltas above);
    // --json appends the report as one more JSON line.
    std::printf("%s", report.str().c_str());
    const double pps = elapsed_ms > 0.0
                           ? static_cast<double>(packets.size()) /
                                 (elapsed_ms / 1000.0)
                           : 0.0;
    std::printf("\nprocessed %zu packets in %.1f ms (%.2f Mpps)\n",
                packets.size(), elapsed_ms, pps / 1e6);
  }
  // Drift alerts get their own exit code so CI can distinguish "about to
  // violate" (3) from "violating" (1) and "clean" (0).
  return monitor_exit_code(report, args.violation_threshold,
                           observations.alerts.size());
}

/// 'bolt merge <nf> --spool DIR': fold a fleet's spooled partials into the
/// fleet-wide delta stream and final report. Same output surfaces and exit
/// codes as 'monitor'; the result is byte-identical to a single monitor
/// over the combined traffic, regardless of how many instances spooled or
/// in what order their files land.
int cmd_merge(const std::string& nf, const MonitorCliArgs& args) {
  if (args.spool.empty()) {
    std::fprintf(stderr, "error: 'merge' requires --spool DIR\n");
    return 2;
  }
  std::vector<obs::WindowPartial> windows;
  std::vector<obs::FinalPartial> finals;
  obs::read_spool(args.spool, nf, &windows, &finals);
  if (finals.empty()) {
    std::fprintf(stderr,
                 "error: no fleet partials for '%s' under '%s' (need at "
                 "least one final partial)\n",
                 nf.c_str(), args.spool.c_str());
    return 2;
  }
  // Instances run with the default drift tuning (the monitor CLI exposes
  // no drift knobs), so the replayed detector matches their alerts.
  const obs::FleetMergeResult merged =
      obs::merge_partials(windows, finals, obs::DriftOptions{});

  std::FILE* delta_file = nullptr;
  if (!args.delta_out.empty()) {
    delta_file = std::fopen(args.delta_out.c_str(), "wb");
    if (delta_file == nullptr) {
      std::fprintf(stderr, "error: cannot write delta stream to '%s'\n",
                   args.delta_out.c_str());
      return 1;
    }
  }
  for (const obs::DeltaWindow& w : merged.observations.deltas) {
    const std::string line = obs::delta_window_to_json(w) + "\n";
    if (args.watch) {
      std::fputs(line.c_str(), stdout);
      std::fflush(stdout);
    }
    if (delta_file != nullptr) {
      std::fputs(line.c_str(), delta_file);
      std::fflush(delta_file);
    }
  }
  if (delta_file != nullptr && std::fclose(delta_file) != 0) {
    std::fprintf(stderr, "error: cannot write delta stream to '%s'\n",
                 args.delta_out.c_str());
    return 1;
  }
  if (!args.metrics_out.empty() &&
      !write_metrics_file(args, merged.observations.telemetry,
                          merged.report.nf)) {
    return 1;
  }
  if (!args.report.empty() &&
      !support::write_file(args.report,
                           monitor::report_to_json(merged.report) + "\n")) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 args.report.c_str());
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", monitor::report_to_json(merged.report).c_str());
  } else if (!args.watch) {
    std::printf("%s", merged.report.str().c_str());
  }
  std::fprintf(stderr, "merged %zu window partial(s) from %zu file(s) across "
               "the fleet\n",
               merged.observations.deltas.size(), windows.size() + finals.size());
  return monitor_exit_code(merged.report, args.violation_threshold,
                           merged.observations.alerts.size());
}

struct AdversaryCliArgs {
  std::string contract;   // stored artifact; empty = generate in-process
  std::string out;        // trace pair prefix
  std::string report;     // gap-report JSON file
  std::uint64_t seed = 1;
  std::size_t probes = 12;
  std::size_t partitions = 8;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t epoch_ns = 1'000'000'000;
  std::uint64_t min_reached_pct = 1;
  bool json = false;
};

int cmd_adversary(const std::string& nf, const AdversaryCliArgs& args) {
  perf::PcvRegistry reg;
  perf::Contract contract("");
  core::NfTarget probe;
  {
    perf::PcvRegistry probe_reg;
    if (!core::make_named_target(nf, probe_reg, probe)) return usage();
  }
  // In-process mode runs the generator once; its path reports double as
  // the synthesiser's witnesses. Stored mode leaves witness generation to
  // adversarial_traffic (bounds come from the artifact, witnesses can't).
  core::GenerationResult generated;
  const std::vector<core::PathReport>* witnesses = nullptr;
  if (!args.contract.empty()) {
    contract = perf::load_contract(args.contract, reg);
    if (contract.nf_name() != probe.contract_name()) {
      std::fprintf(stderr,
                   "error: contract '%s' was generated for nf '%s', not "
                   "'%s'\n",
                   args.contract.c_str(), contract.nf_name().c_str(),
                   probe.contract_name().c_str());
      return 2;
    }
  } else {
    core::NfTarget target;
    if (!core::make_named_target(nf, reg, target)) return usage();
    core::BoltOptions options;
    options.threads = args.threads;
    core::ContractGenerator generator(reg, options);
    generated = generator.generate(target.analysis());
    contract = generated.contract;
    witnesses = &generated.path_reports;
  }

  adversary::AdversaryOptions opts;
  opts.seed = args.seed;
  opts.partitions = args.partitions;
  opts.epoch_ns = args.epoch_ns;
  opts.probes_per_class = args.probes;
  opts.threads = args.threads;
  const adversary::AdversarialTrace trace =
      adversary::adversarial_traffic(nf, contract, reg, opts, witnesses);
  if (!args.out.empty()) {
    if (!adversary::save_trace(args.out, trace)) {
      std::fprintf(stderr, "error: cannot write trace pair '%s.{pcap,json}'\n",
                   args.out.c_str());
      return 1;
    }
    std::fprintf(stderr, "stored adversarial trace (%zu packets) in %s.pcap "
                 "+ %s.json\n",
                 trace.packets.size(), args.out.c_str(), args.out.c_str());
  }

  monitor::MonitorOptions mopts;
  mopts.shards = args.shards;
  mopts.threads = args.threads;
  const adversary::GapReport gap =
      adversary::replay(trace, contract, reg, mopts);

  if (!args.report.empty() &&
      !support::write_file(args.report,
                           adversary::gap_report_to_json(gap) + "\n")) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 args.report.c_str());
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", adversary::gap_report_to_json(gap).c_str());
  } else {
    std::printf("%s", gap.str().c_str());
  }

  // CI gates: the closed loop must actually close (plan == observation)
  // and cover the demanded share of the contract's classes.
  if (gap.mismatched > 0) {
    std::fprintf(stderr,
                 "error: %llu packets attributed differently than planned "
                 "(first at %llu)\n",
                 static_cast<unsigned long long>(gap.mismatched),
                 static_cast<unsigned long long>(gap.first_mismatch));
    return 1;
  }
  const std::uint64_t reached_pct =
      gap.classes_total == 0
          ? 100
          : gap.classes_reached * 100 / gap.classes_total;
  if (reached_pct < args.min_reached_pct) {
    std::fprintf(stderr, "error: only %llu%% of classes reached (need %llu%%)\n",
                 static_cast<unsigned long long>(reached_pct),
                 static_cast<unsigned long long>(args.min_reached_pct));
    return 1;
  }
  return 0;
}

struct HuntCliArgs {
  std::string contract;   // stored artifact; empty = generate in-process
  std::string out;        // minimised-trace pair prefix (written on a find)
  std::string report;     // hunt-report JSON file
  std::uint64_t seed = 1;
  std::size_t generations = 6;
  std::size_t population = 4;
  std::size_t budget = 0;       // 0 = generations * population + 1
  std::size_t max_replays = 0;  // minimiser replay cap (0 = uncapped)
  std::size_t probes = 12;
  std::size_t partitions = 8;
  std::size_t shards = 0;
  std::size_t threads = 0;
  std::uint64_t epoch_ns = 1'000'000'000;
  bool inject_straddle_bug = false;  // test-only measurement fault
  bool json = false;
};

std::string hunt_to_json(const std::string& nf, const HuntCliArgs& args,
                         const adversary::HunterResult& hunt,
                         const adversary::MinimizeResult* minimized) {
  using support::json_quote_into;
  std::string out = "{\"version\":1,\"nf\":";
  json_quote_into(out, nf);
  out += ",\"seed\":" + std::to_string(args.seed);
  out += ",\"violation_found\":" +
         std::string(hunt.violation_found ? "true" : "false");
  out += ",\"divergence_found\":" +
         std::string(hunt.divergence_found ? "true" : "false");
  out += ",\"violation_generation\":" +
         std::to_string(hunt.violation_generation);
  out += ",\"replays\":" + std::to_string(hunt.replays);
  out += ",\"fitness\":{\"violations\":" +
         std::to_string(hunt.fitness.violations);
  out += ",\"margin_p99_pm\":" + std::to_string(hunt.fitness.margin_p99_pm);
  out += ",\"worst_util_pm\":" + std::to_string(hunt.fitness.worst_util_pm);
  out += ",\"total_util_pm\":" + std::to_string(hunt.fitness.total_util_pm);
  out += "},\"packets\":" + std::to_string(hunt.best.packets.size());
  out += ",\"history\":[";
  bool first = true;
  for (const std::string& line : hunt.history) {
    if (!first) out += ',';
    first = false;
    json_quote_into(out, line);
  }
  out += "],\"minimized\":";
  if (minimized == nullptr) {
    out += "null";
  } else {
    out += "{\"reproduced\":" +
           std::string(minimized->reproduced ? "true" : "false");
    out += ",\"one_minimal\":" +
           std::string(minimized->one_minimal ? "true" : "false");
    out += ",\"original_packets\":" +
           std::to_string(minimized->original_packets);
    out += ",\"packets\":" + std::to_string(minimized->minimized_packets);
    out += ",\"replays\":" + std::to_string(minimized->replays);
    out += '}';
  }
  out += '}';
  return out;
}

int cmd_hunt(const std::string& nf, const HuntCliArgs& args) {
  perf::PcvRegistry reg;
  perf::Contract contract("");
  core::NfTarget probe;
  {
    perf::PcvRegistry probe_reg;
    if (!core::make_named_target(nf, probe_reg, probe)) return usage();
  }
  // Same contract conventions as 'adversary': stored artifact or in-process
  // generation, whose path reports double as seed-trace witnesses.
  core::GenerationResult generated;
  const std::vector<core::PathReport>* witnesses = nullptr;
  if (!args.contract.empty()) {
    contract = perf::load_contract(args.contract, reg);
    if (contract.nf_name() != probe.contract_name()) {
      std::fprintf(stderr,
                   "error: contract '%s' was generated for nf '%s', not "
                   "'%s'\n",
                   args.contract.c_str(), contract.nf_name().c_str(),
                   probe.contract_name().c_str());
      return 2;
    }
  } else {
    core::NfTarget target;
    if (!core::make_named_target(nf, reg, target)) return usage();
    core::BoltOptions options;
    options.threads = args.threads;
    core::ContractGenerator generator(reg, options);
    generated = generator.generate(target.analysis());
    contract = generated.contract;
    witnesses = &generated.path_reports;
  }

  adversary::HunterOptions opts;
  opts.seed = args.seed;
  opts.generations = args.generations;
  opts.population = args.population;
  opts.budget = args.budget;
  opts.adversary.seed = args.seed;
  opts.adversary.partitions = args.partitions;
  opts.adversary.epoch_ns = args.epoch_ns;
  opts.adversary.probes_per_class = args.probes;
  opts.adversary.threads = args.threads;
  opts.monitor.shards = args.shards;
  opts.monitor.threads = args.threads;
  opts.monitor.inject_straddle_bug = args.inject_straddle_bug;

  const adversary::HunterResult hunt =
      adversary::hunt(nf, contract, reg, opts, witnesses);
  const bool found = hunt.violation_found || hunt.divergence_found;

  // A find is only actionable minimised: shrink it through the same oracle
  // (bug injection included) and persist the witness pair for regression
  // check-in.
  adversary::MinimizeResult minimized;
  if (found) {
    adversary::MinimizeOptions mopts;
    mopts.adversary = opts.adversary;
    mopts.monitor = opts.monitor;
    mopts.max_replays = args.max_replays;
    minimized =
        adversary::minimize(nf, contract, reg, hunt.best.packets, mopts);
    if (!args.out.empty()) {
      if (!adversary::save_trace(args.out, minimized.trace)) {
        std::fprintf(stderr,
                     "error: cannot write trace pair '%s.{pcap,json}'\n",
                     args.out.c_str());
        return 1;
      }
      std::fprintf(stderr,
                   "stored minimised violating trace (%zu packets, from %zu)"
                   " in %s.pcap + %s.json\n",
                   minimized.minimized_packets, minimized.original_packets,
                   args.out.c_str(), args.out.c_str());
    }
  }

  const std::string hunt_json =
      hunt_to_json(nf, args, hunt, found ? &minimized : nullptr);
  if (!args.report.empty() &&
      !support::write_file(args.report, hunt_json + "\n")) {
    std::fprintf(stderr, "error: cannot write report to '%s'\n",
                 args.report.c_str());
    return 1;
  }
  if (args.json) {
    std::printf("%s\n", hunt_json.c_str());
  } else {
    for (const std::string& line : hunt.history) {
      std::printf("%s\n", line.c_str());
    }
    if (found) {
      std::printf("%s: %s in generation %zu (%llu replays)\n", nf.c_str(),
                  hunt.violation_found ? "VIOLATION" : "PLAN DIVERGENCE",
                  hunt.violation_generation,
                  static_cast<unsigned long long>(hunt.replays));
      std::printf("minimised %zu -> %zu packets (%s, %llu oracle replays)\n",
                  minimized.original_packets, minimized.minimized_packets,
                  minimized.one_minimal ? "1-minimal"
                                        : "replay budget spent",
                  static_cast<unsigned long long>(minimized.replays));
      std::printf("%s", minimized.report.str().c_str());
    } else {
      std::printf("%s: no violation in %llu replays (best fitness "
                  "%llu/%llu/%llu/%llu)\n",
                  nf.c_str(), static_cast<unsigned long long>(hunt.replays),
                  static_cast<unsigned long long>(hunt.fitness.violations),
                  static_cast<unsigned long long>(hunt.fitness.margin_p99_pm),
                  static_cast<unsigned long long>(hunt.fitness.worst_util_pm),
                  static_cast<unsigned long long>(hunt.fitness.total_util_pm));
    }
  }

  // The gate: a hunt that finds a violation (or a shadow/monitor
  // divergence) fails the build — the minimised witness is the repro.
  if (found) {
    std::fprintf(stderr, "error: contract %s found\n",
                 hunt.violation_found ? "violation" : "plan divergence");
    return 1;
  }
  return 0;
}

int cmd_scenarios(std::size_t threads) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Scenario", "Pred IC", "Meas IC", "Pred cycles",
                  "Meas cycles", "Ratio"});
  for (const core::ScenarioResult& r : core::run_all_scenarios({}, threads)) {
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2f", r.cycles_ratio());
    rows.push_back(
        {r.id, support::with_commas(r.predicted_ic),
         support::with_commas(static_cast<std::int64_t>(r.measured_ic)),
         support::with_commas(r.predicted_cycles),
         support::with_commas(static_cast<std::int64_t>(r.measured_cycles)),
         ratio});
  }
  std::printf("%s", support::render_table(rows).c_str());
  return 0;
}

int cmd_gen(const std::string& kind, const std::string& out,
            std::size_t count) {
  std::vector<net::Packet> packets;
  if (kind == "uniform") {
    net::UniformSpec spec;
    spec.packet_count = count;
    packets = net::uniform_random_traffic(spec);
  } else if (kind == "churn") {
    net::ChurnSpec spec;
    spec.packet_count = count;
    spec.churn = 0.1;
    packets = net::churn_traffic(spec);
  } else if (kind == "zipf") {
    net::ZipfSpec spec;
    spec.packet_count = count;
    packets = net::zipf_traffic(spec);
  } else if (kind == "bridge") {
    net::BridgeSpec spec;
    spec.packet_count = count;
    spec.broadcast_fraction = 0.1;
    packets = net::bridge_traffic(spec);
  } else if (kind == "attack") {
    net::BridgeAttackSpec spec;
    spec.packet_count = count;
    packets = net::bridge_collision_attack(spec);
  } else if (kind == "heartbeat") {
    net::HeartbeatSpec spec;
    spec.packet_count = count;
    packets = net::heartbeat_traffic(spec);
  } else if (kind == "longrun") {
    net::LongRunSpec spec;
    spec.packet_count = count;
    packets = net::long_run_traffic(spec);
  } else if (kind == "drift") {
    net::DriftSpec spec;
    if (count > 0) {
      spec.packets_per_window =
          std::max<std::size_t>(std::size_t{1}, count / spec.windows);
    }
    packets = net::drift_traffic(spec);
  } else {
    return usage();
  }
  net::write_pcap(out, packets);
  std::printf("wrote %zu packets to %s\n", packets.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // --help anywhere on the line: help is the requested output, so it goes
  // to stdout and exits 0 (usage-on-error keeps going to stderr, exit 2).
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fputs(core::cli_usage_text(), stdout);
      return 0;
    }
  }
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Shared trailing flags: --json, --threads N (0 = hardware concurrency),
  // plus the monitor's own knobs.
  bool json = false;
  MonitorCliArgs margs;
  std::string out_file;
  std::size_t threads = 0;
  auto numeric = [&](int& i, const char* flag) -> std::uint64_t {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "error: %s requires a value\n", flag);
      std::exit(2);
    }
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(argv[++i], &end, 10);
    if (end == argv[i] || *end != '\0') {
      std::fprintf(stderr, "error: bad %s value '%s'\n", flag, argv[i]);
      std::exit(2);
    }
    return v;
  };
  AdversaryCliArgs aargs;
  HuntCliArgs hargs;
  // Positionals (nf names, paths, counts, k=v bindings) pass through; a
  // flag that is unknown — or known but inapplicable to this subcommand —
  // must not be silently ignored: the monitor exit code is a CI gate, and
  // a typo'd or misplaced flag would change what it gates on.
  const bool is_monitor = cmd == "monitor";
  const bool is_merge = cmd == "merge";
  const bool is_adversary = cmd == "adversary";
  const bool is_hunt = cmd == "hunt";
  auto only_for = [&](bool applies, const char* flag) {
    if (applies) return;
    std::fprintf(stderr, "error: flag '%s' does not apply to '%s'\n", flag,
                 cmd.c_str());
    std::exit(2);
  };
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      only_for(cmd == "contract" || cmd == "paths" || is_monitor ||
                   is_merge || is_adversary || is_hunt,
               "--json");
      json = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      only_for(cmd == "contract" || cmd == "paths" || cmd == "scenarios" ||
                   is_monitor || is_adversary || is_hunt,
               "--threads");
      threads = numeric(i, "--threads");
    } else if (std::strcmp(argv[i], "--packets") == 0) {
      only_for(is_monitor, "--packets");
      margs.packets = numeric(i, "--packets");
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      only_for(is_monitor || is_adversary || is_hunt, "--shards");
      margs.shards = aargs.shards = hargs.shards = numeric(i, "--shards");
    } else if (std::strcmp(argv[i], "--partitions") == 0) {
      only_for(is_monitor || is_adversary || is_hunt, "--partitions");
      margs.partitions = aargs.partitions = hargs.partitions =
          numeric(i, "--partitions");
    } else if (std::strcmp(argv[i], "--epoch-ns") == 0) {
      only_for(is_monitor || is_adversary || is_hunt, "--epoch-ns");
      margs.epoch_ns = aargs.epoch_ns = hargs.epoch_ns =
          numeric(i, "--epoch-ns");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      only_for(is_adversary || is_hunt, "--seed");
      aargs.seed = hargs.seed = numeric(i, "--seed");
    } else if (std::strcmp(argv[i], "--probes") == 0) {
      only_for(is_adversary || is_hunt, "--probes");
      aargs.probes = hargs.probes = numeric(i, "--probes");
    } else if (std::strcmp(argv[i], "--min-reached-pct") == 0) {
      only_for(is_adversary, "--min-reached-pct");
      aargs.min_reached_pct = numeric(i, "--min-reached-pct");
    } else if (std::strcmp(argv[i], "--generations") == 0) {
      only_for(is_hunt, "--generations");
      hargs.generations = numeric(i, "--generations");
    } else if (std::strcmp(argv[i], "--population") == 0) {
      only_for(is_hunt, "--population");
      hargs.population = numeric(i, "--population");
    } else if (std::strcmp(argv[i], "--budget") == 0) {
      only_for(is_hunt, "--budget");
      hargs.budget = numeric(i, "--budget");
    } else if (std::strcmp(argv[i], "--max-replays") == 0) {
      only_for(is_hunt, "--max-replays");
      hargs.max_replays = numeric(i, "--max-replays");
    } else if (std::strcmp(argv[i], "--inject-straddle-bug") == 0) {
      only_for(is_hunt, "--inject-straddle-bug");
      hargs.inject_straddle_bug = true;
    } else if (std::strcmp(argv[i], "--contract") == 0) {
      only_for(is_monitor || is_adversary || is_hunt, "--contract");
      if (i + 1 >= argc) return usage();
      margs.contract = aargs.contract = hargs.contract = argv[++i];
    } else if (std::strcmp(argv[i], "--report") == 0) {
      only_for(is_monitor || is_merge || is_adversary || is_hunt, "--report");
      if (i + 1 >= argc) return usage();
      margs.report = aargs.report = hargs.report = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0) {
      only_for(cmd == "contract" || is_adversary || is_hunt, "--out");
      if (i + 1 >= argc) return usage();
      out_file = aargs.out = hargs.out = argv[++i];
    } else if (std::strcmp(argv[i], "--violation-threshold") == 0) {
      only_for(is_monitor || is_merge, "--violation-threshold");
      margs.violation_threshold = numeric(i, "--violation-threshold");
    } else if (std::strcmp(argv[i], "--inflate") == 0) {
      only_for(is_monitor, "--inflate");
      margs.inflate_pct = numeric(i, "--inflate");
    } else if (std::strcmp(argv[i], "--grouping") == 0) {
      only_for(is_monitor, "--grouping");
      if (i + 1 >= argc) return usage();
      const std::string policy = argv[++i];
      if (policy == "roundrobin") {
        margs.grouping = monitor::ShardGrouping::kRoundRobin;
      } else if (policy == "lqf") {
        margs.grouping = monitor::ShardGrouping::kLongestQueueFirst;
      } else {
        std::fprintf(stderr, "error: bad --grouping value '%s' (roundrobin"
                     " | lqf)\n", policy.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      only_for(is_monitor, "--batch");
      margs.batch = numeric(i, "--batch");
    } else if (std::strcmp(argv[i], "--no-pipeline") == 0) {
      only_for(is_monitor, "--no-pipeline");
      margs.pipeline = false;
    } else if (std::strcmp(argv[i], "--no-cycles") == 0) {
      only_for(is_monitor, "--no-cycles");
      margs.cycles = false;
    } else if (std::strcmp(argv[i], "--delta-every") == 0) {
      only_for(is_monitor, "--delta-every");
      margs.delta_every = numeric(i, "--delta-every");
    } else if (std::strcmp(argv[i], "--delta-out") == 0) {
      only_for(is_monitor || is_merge, "--delta-out");
      if (i + 1 >= argc) return usage();
      margs.delta_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0) {
      only_for(is_monitor || is_merge, "--metrics-out");
      if (i + 1 >= argc) return usage();
      margs.metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-format") == 0) {
      only_for(is_monitor || is_merge, "--metrics-format");
      if (i + 1 >= argc) return usage();
      const std::string fmt = argv[++i];
      if (fmt != "json" && fmt != "prom") {
        std::fprintf(stderr,
                     "error: bad --metrics-format value '%s' (json | prom)\n",
                     fmt.c_str());
        return 2;
      }
      margs.metrics_format = fmt;
    } else if (std::strcmp(argv[i], "--watch") == 0) {
      only_for(is_monitor || is_merge, "--watch");
      margs.watch = true;
    } else if (std::strcmp(argv[i], "--follow") == 0) {
      only_for(is_monitor, "--follow");
      margs.follow = true;
    } else if (std::strcmp(argv[i], "--spool") == 0) {
      only_for(is_monitor || is_merge, "--spool");
      if (i + 1 >= argc) return usage();
      margs.spool = argv[++i];
    } else if (std::strcmp(argv[i], "--idle-flush-ns") == 0) {
      only_for(is_monitor, "--idle-flush-ns");
      margs.idle_flush_ns = numeric(i, "--idle-flush-ns");
    } else if (std::strcmp(argv[i], "--idle-exit-ms") == 0) {
      only_for(is_monitor, "--idle-exit-ms");
      margs.idle_exit_ms = numeric(i, "--idle-exit-ms");
    } else if (std::strcmp(argv[i], "--fleet") == 0) {
      only_for(is_monitor, "--fleet");
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --fleet requires a value\n");
        return 2;
      }
      const std::string spec = argv[++i];
      const auto slash = spec.find('/');
      bool ok = slash != std::string::npos && slash > 0 &&
                slash + 1 < spec.size();
      if (ok) {
        char* end = nullptr;
        margs.fleet_instance = static_cast<std::uint32_t>(
            std::strtoul(spec.c_str(), &end, 10));
        ok = end == spec.c_str() + slash;
        if (ok) {
          margs.fleet_instances = static_cast<std::uint32_t>(
              std::strtoul(spec.c_str() + slash + 1, &end, 10));
          ok = *end == '\0';
        }
      }
      if (!ok || margs.fleet_instances == 0 ||
          margs.fleet_instance >= margs.fleet_instances) {
        std::fprintf(stderr,
                     "error: bad --fleet value '%s' (want I/N with I < N)\n",
                     spec.c_str());
        return 2;
      }
    } else if (std::strcmp(argv[i], "--workload") == 0) {
      only_for(is_monitor, "--workload");
      if (i + 1 >= argc) return usage();
      margs.workload = argv[++i];
    } else if (std::strcmp(argv[i], "--pcap") == 0) {
      only_for(is_monitor, "--pcap");
      if (i + 1 >= argc) return usage();
      margs.pcap = argv[++i];
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "error: unknown flag '%s'\n", argv[i]);
      return usage();
    }
  }
  margs.threads = threads;
  margs.json = json;
  aargs.threads = threads;
  aargs.json = json;
  hargs.threads = threads;
  hargs.json = json;
  if (cmd == "contract" && argc >= 3) {
    return cmd_contract(argv[2], false, json, threads, out_file);
  }
  if (cmd == "paths" && argc >= 3) {
    return cmd_contract(argv[2], true, json, threads, "");
  }
  if (cmd == "distill" && argc >= 4) return cmd_distill(argv[2], argv[3]);
  if (cmd == "predict" && argc >= 3) return cmd_predict(argv[2], argc, argv, 3);
  if (cmd == "monitor" && argc >= 3) return cmd_monitor(argv[2], margs);
  if (cmd == "merge" && argc >= 3) return cmd_merge(argv[2], margs);
  if (cmd == "adversary" && argc >= 3) return cmd_adversary(argv[2], aargs);
  if (cmd == "hunt" && argc >= 3) return cmd_hunt(argv[2], hargs);
  if (cmd == "gen" && argc >= 4) {
    // The count is positional; don't mistake a trailing flag for it.
    std::size_t count = 10'000;
    if (argc >= 5 && argv[4][0] != '-') {
      count = std::strtoull(argv[4], nullptr, 10);
    }
    return cmd_gen(argv[2], argv[3], count);
  }
  if (cmd == "scenarios") return cmd_scenarios(threads);
  return usage();
}
