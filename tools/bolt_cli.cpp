// bolt — command-line front end to the contract generator and Distiller.
//
//   bolt contract <nf> [--json]      generate + print an NF's contract
//   bolt paths <nf>                  per-path report (no coalescing)
//   bolt distill <nf> <pcap>         run a PCAP through the NF, report PCVs
//   bolt predict <nf> k=v [k=v...]   evaluate the contract at a PCV binding
//   bolt gen <kind> <out.pcap> [n]   write a workload PCAP
//                                    (kind: uniform | churn | bridge | attack
//                                     | heartbeat)
//   bolt scenarios                   run the Figure-1 scenario sweep
//
// <nf> is one of: bridge, nat, nat-b (allocator B), lb, lpm, lpm-simple,
// firewall, router, fw+router (the chain).
#include <cstdio>
#include <cstring>
#include <string>

#include "core/bolt.h"
#include "core/distiller.h"
#include "core/experiments.h"
#include "core/scenarios.h"
#include "net/pcap.h"
#include "net/workload.h"
#include "nf/firewall.h"
#include "perf/contract_io.h"
#include "support/strings.h"

using namespace bolt;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: bolt contract <nf> [--json] [--threads N]\n"
               "       bolt paths <nf> [--json] [--threads N]\n"
               "       bolt distill <nf> <pcap>\n"
               "       bolt predict <nf> pcv=value [pcv=value ...]\n"
               "       bolt gen <kind> <out.pcap> [count]\n"
               "       bolt scenarios [--threads N]\n"
               "nf: bridge | nat | nat-b | lb | lpm | lpm-simple | firewall |"
               " router | fw+router\n"
               "--threads N: pipeline worker threads (default: one per"
               " hardware thread; contracts are identical at any N)\n");
  return 2;
}

/// Holder for an analysable NF (instance-backed or stateless program(s)).
struct Target {
  core::NfInstance instance;     // when stateful
  std::vector<ir::Program> stateless;  // when purely stateless
  dslib::MethodTable no_methods;
  bool is_stateless = false;

  core::NfAnalysis analysis() {
    if (!is_stateless) return instance.analysis();
    core::NfAnalysis a;
    a.name = stateless.size() > 1 ? "fw+router" : stateless.front().name;
    for (const auto& p : stateless) a.programs.push_back(&p);
    a.methods = &no_methods;
    return a;
  }
};

bool make_target(const std::string& name, perf::PcvRegistry& reg, Target& out) {
  if (name == "bridge") {
    out.instance = core::make_bridge(reg, core::default_bridge_config());
  } else if (name == "nat" || name == "nat-b") {
    auto cfg = core::default_nat_config();
    if (name == "nat-b") cfg.allocator = dslib::NatState::AllocatorKind::kB;
    out.instance = core::make_nat(reg, cfg);
  } else if (name == "lb") {
    out.instance = core::make_lb(reg, core::default_lb_config());
  } else if (name == "lpm") {
    out.instance = core::make_dir_lpm(reg);
  } else if (name == "lpm-simple") {
    out.instance = core::make_simple_lpm(reg);
  } else if (name == "firewall") {
    out.stateless.push_back(nf::Firewall::program());
    out.is_stateless = true;
  } else if (name == "router") {
    out.stateless.push_back(nf::StaticRouter::program());
    out.is_stateless = true;
  } else if (name == "fw+router") {
    out.stateless.push_back(nf::Firewall::program());
    out.stateless.push_back(nf::StaticRouter::program());
    out.is_stateless = true;
  } else {
    return false;
  }
  return true;
}

int cmd_contract(const std::string& nf, bool per_path, bool as_json,
                 std::size_t threads) {
  perf::PcvRegistry reg;
  Target target;
  if (!make_target(nf, reg, target)) return usage();
  core::BoltOptions options;
  options.coalesce = !per_path;
  options.threads = threads;
  core::ContractGenerator generator(reg, options);
  const auto result = generator.generate(target.analysis());
  if (as_json) {
    std::printf("%s\n", perf::contract_to_json(result.contract, reg).c_str());
    return 0;
  }
  std::printf("%s", result.contract.str_all(reg).c_str());
  std::printf("\npaths: %zu   entries: %zu   unsolved: %zu   pruned: %zu\n",
              result.total_paths, result.contract.entries().size(),
              result.unsolved_paths, result.executor_stats.pruned_branches);
  if (!reg.all().empty()) {
    std::printf("\nPCV glossary:\n");
    for (const perf::PcvId id : reg.all()) {
      if (!reg.description(id).empty()) {
        std::printf("  %-4s %s\n", reg.name(id).c_str(),
                    reg.description(id).c_str());
      }
    }
  }
  return 0;
}

int cmd_distill(const std::string& nf, const std::string& pcap) {
  perf::PcvRegistry reg;
  Target target;
  if (!make_target(nf, reg, target)) return usage();
  std::vector<net::Packet> packets = net::read_pcap(pcap);
  std::printf("loaded %zu packets from %s\n\n", packets.size(), pcap.c_str());

  hw::RealisticSim testbed;
  std::unique_ptr<core::NfRunner> runner;
  if (target.is_stateless) {
    ir::InterpreterOptions iopts;
    nf::apply_framework(iopts, nf::framework_full());
    iopts.sink = &testbed;
    std::vector<const ir::Program*> programs;
    for (const auto& p : target.stateless) programs.push_back(&p);
    runner = std::make_unique<core::NfRunner>(programs, nullptr, iopts);
  } else {
    runner = target.instance.make_runner(nf::framework_full(), &testbed);
  }
  core::Distiller distiller(
      *runner, &testbed,
      target.is_stateless ? nullptr : &target.instance.methods);
  const auto report = distiller.run(packets);

  std::map<std::string, std::size_t> classes;
  for (const auto& rec : report.records) ++classes[rec.class_key];
  std::printf("input classes observed:\n");
  for (const auto& [key, count] : classes) {
    std::printf("  %8zu  %s\n", count, key.c_str());
  }
  std::printf("\nworst measured: %s instructions, %s accesses, %s cycles\n",
              support::with_commas(static_cast<std::int64_t>(
                                       report.worst_measured("instructions")))
                  .c_str(),
              support::with_commas(static_cast<std::int64_t>(
                                       report.worst_measured("mem_accesses")))
                  .c_str(),
              support::with_commas(static_cast<std::int64_t>(
                                       report.worst_measured("cycles")))
                  .c_str());
  std::printf("\nworst PCV binding:\n");
  // Keep the binding alive: values() returns a reference into it, and
  // iterating a temporary's internals is a use-after-scope.
  const perf::PcvBinding worst_binding = report.worst_binding();
  for (const auto& [id, v] : worst_binding.values()) {
    std::printf("  %-4s = %llu\n", reg.name(id).c_str(),
                static_cast<unsigned long long>(v));
  }
  return 0;
}

int cmd_predict(const std::string& nf, int argc, char** argv, int first) {
  perf::PcvRegistry reg;
  Target target;
  if (!make_target(nf, reg, target)) return usage();
  core::ContractGenerator generator(reg);
  const auto result = generator.generate(target.analysis());

  perf::PcvBinding bind;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos || !reg.contains(arg.substr(0, eq))) {
      std::fprintf(stderr, "bad PCV binding '%s'\n", arg.c_str());
      return 2;
    }
    bind.set(reg.require(arg.substr(0, eq)),
             std::strtoull(arg.c_str() + eq + 1, nullptr, 10));
  }

  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Input Class", "Instructions", "Mem Accesses", "Cycles"});
  for (const auto& entry : result.contract.entries()) {
    rows.push_back(
        {entry.input_class,
         support::with_commas(
             entry.perf.get(perf::Metric::kInstructions).eval(bind)),
         support::with_commas(
             entry.perf.get(perf::Metric::kMemoryAccesses).eval(bind)),
         support::with_commas(
             entry.perf.get(perf::Metric::kCycles).eval(bind))});
  }
  std::printf("%s", support::render_table(rows).c_str());
  return 0;
}

int cmd_scenarios(std::size_t threads) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Scenario", "Pred IC", "Meas IC", "Pred cycles",
                  "Meas cycles", "Ratio"});
  for (const core::ScenarioResult& r : core::run_all_scenarios({}, threads)) {
    char ratio[16];
    std::snprintf(ratio, sizeof ratio, "%.2f", r.cycles_ratio());
    rows.push_back(
        {r.id, support::with_commas(r.predicted_ic),
         support::with_commas(static_cast<std::int64_t>(r.measured_ic)),
         support::with_commas(r.predicted_cycles),
         support::with_commas(static_cast<std::int64_t>(r.measured_cycles)),
         ratio});
  }
  std::printf("%s", support::render_table(rows).c_str());
  return 0;
}

int cmd_gen(const std::string& kind, const std::string& out,
            std::size_t count) {
  std::vector<net::Packet> packets;
  if (kind == "uniform") {
    net::UniformSpec spec;
    spec.packet_count = count;
    packets = net::uniform_random_traffic(spec);
  } else if (kind == "churn") {
    net::ChurnSpec spec;
    spec.packet_count = count;
    spec.churn = 0.1;
    packets = net::churn_traffic(spec);
  } else if (kind == "bridge") {
    net::BridgeSpec spec;
    spec.packet_count = count;
    spec.broadcast_fraction = 0.1;
    packets = net::bridge_traffic(spec);
  } else if (kind == "attack") {
    net::BridgeAttackSpec spec;
    spec.packet_count = count;
    packets = net::bridge_collision_attack(spec);
  } else if (kind == "heartbeat") {
    net::HeartbeatSpec spec;
    spec.packet_count = count;
    packets = net::heartbeat_traffic(spec);
  } else {
    return usage();
  }
  net::write_pcap(out, packets);
  std::printf("wrote %zu packets to %s\n", packets.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  // Shared trailing flags: --json, --threads N (0 = hardware concurrency).
  bool json = false;
  std::size_t threads = 0;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --threads requires a value\n");
        return 2;
      }
      char* end = nullptr;
      threads = std::strtoull(argv[++i], &end, 10);
      if (end == argv[i] || *end != '\0') {
        std::fprintf(stderr, "error: bad --threads value '%s'\n", argv[i]);
        return 2;
      }
    }
  }
  if (cmd == "contract" && argc >= 3) {
    return cmd_contract(argv[2], false, json, threads);
  }
  if (cmd == "paths" && argc >= 3) {
    return cmd_contract(argv[2], true, json, threads);
  }
  if (cmd == "distill" && argc >= 4) return cmd_distill(argv[2], argv[3]);
  if (cmd == "predict" && argc >= 3) return cmd_predict(argv[2], argc, argv, 3);
  if (cmd == "gen" && argc >= 4) {
    // The count is positional; don't mistake a trailing flag for it.
    std::size_t count = 10'000;
    if (argc >= 5 && argv[4][0] != '-') {
      count = std::strtoull(argv[4], nullptr, 10);
    }
    return cmd_gen(argv[2], argv[3], count);
  }
  if (cmd == "scenarios") return cmd_scenarios(threads);
  return usage();
}
