#!/usr/bin/env python3
"""Diff freshly produced BENCH_*.json files against committed baselines.

Usage: tools/bench_diff.py <baseline-dir> <new-dir> [--update]

For every BENCH_*.json present in BOTH directories, compares the metrics
the file format exposes:

  * Google-Benchmark JSON ("benchmarks" array): per-benchmark `real_time`
    (lower is better; aggregate rows are skipped) plus any counters whose
    name marks them higher-is-better (…speedup, …per_sec, …pps, …ratio).
  * support::BenchReport JSON ("metrics" array of {name, value, unit}):
    direction inferred from the unit/name — rates and speedups are
    higher-is-better, durations (ms/ns/us) lower-is-better; anything
    undecidable is reported but not gated.

A metric regresses when it is worse than the committed baseline by more
than BOLT_BENCH_TOLERANCE (default 0.25 = 25%). Any regression fails the
run (exit 1) — this is the CI gate for contract-generation latency and
monitor throughput trajectories. Baselines live in bench/baselines/ and
are refreshed deliberately with --update after a justified perf change.

Absolute timings only transfer between comparable machines, so both JSON
formats record the CPU count (google-benchmark's `context.num_cpus`, the
BenchReport `num_cpus` field). When it differs between baseline and fresh
run, timing metrics are reported but NOT gated (the run still prints the
deltas; refresh the baselines from an artifact produced on the gating
hardware to arm the gate). BOLT_BENCH_STRICT=1 gates regardless.
"""

import json
import os
import sys

TOLERANCE = float(os.environ.get("BOLT_BENCH_TOLERANCE", "0.25"))

HIGHER_HINTS = ("speedup", "per_sec", "pps", "ratio", "throughput")
LOWER_UNIT_HINTS = ("ns", "ms", "us", "s")
LOWER_NAME_HINTS = ("_ns", "_ms", "_us", "latency", "time")

# Reported but never gated: metrics defined against a fixed reference
# machine (contract_gen_speedup divides by a recorded pre-optimization
# wall time, so it is machine-proportional and redundant with the
# real_time gate on the same benchmark).
NEVER_GATED = ("contract_gen_speedup", "contract_gen_ns")


def classify(name, unit=""):
    """Returns +1 (higher better), -1 (lower better), or 0 (don't gate)."""
    lname = name.lower()
    lunit = (unit or "").lower()
    if any(h in lname for h in NEVER_GATED):
        return 0
    if any(h in lname for h in HIGHER_HINTS) or "/s" in lunit:
        return +1
    if lunit in LOWER_UNIT_HINTS or any(h in lname for h in LOWER_NAME_HINTS):
        return -1
    return 0


def num_cpus_of(path):
    """CPU count recorded in the file, or None when absent."""
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and "context" in doc:
        return doc["context"].get("num_cpus")
    if isinstance(doc, dict):
        return doc.get("num_cpus")
    return None


def metrics_of(path):
    """Yields (metric_key, value, direction) triples for either format."""
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, dict) and "benchmarks" in doc:
        for row in doc["benchmarks"]:
            if row.get("run_type") == "aggregate" or "aggregate_name" in row:
                continue
            name = row.get("name")
            if name is None:
                continue
            if "real_time" in row:
                yield f"{name}:real_time", float(row["real_time"]), -1
            bookkeeping = {"iterations", "repetitions", "repetition_index",
                           "family_index", "per_family_instance_index",
                           "threads", "real_time", "cpu_time"}
            for key, value in row.items():
                if key in bookkeeping:
                    continue
                if isinstance(value, (int, float)) and classify(key) == +1:
                    yield f"{name}:{key}", float(value), +1
        return
    if isinstance(doc, dict) and "metrics" in doc:
        for m in doc["metrics"]:
            name = m.get("name")
            if name is None or "value" not in m:
                continue
            # The bench can mark a metric informational ("gate": false) when
            # its value depends on host properties only the run can detect
            # (e.g. thread counts above the machine's core count).
            direction = 0 if m.get("gate", True) is False \
                else classify(name, m.get("unit", ""))
            yield name, float(m["value"]), direction


def main(argv):
    if len(argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    baseline_dir, new_dir = argv[1], argv[2]
    update = "--update" in argv[3:]

    if not os.path.isdir(baseline_dir):
        print(f"bench_diff: no baseline dir '{baseline_dir}' — nothing to gate")
        return 0

    regressions = []
    compared = 0
    for fname in sorted(os.listdir(baseline_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        base_path = os.path.join(baseline_dir, fname)
        new_path = os.path.join(new_dir, fname)
        if not os.path.isfile(new_path):
            print(f"  [skip] {fname}: not produced by this run")
            continue
        base = dict((k, (v, d)) for k, v, d in metrics_of(base_path))
        new = dict((k, (v, d)) for k, v, d in metrics_of(new_path))
        strict = os.environ.get("BOLT_BENCH_STRICT") == "1"
        same_machine = num_cpus_of(base_path) == num_cpus_of(new_path)
        if not same_machine and not strict:
            print(f"  [note] {fname}: baseline recorded on different hardware "
                  f"(num_cpus {num_cpus_of(base_path)} vs "
                  f"{num_cpus_of(new_path)}) — timings reported, not gated")
        for key, (bval, direction) in sorted(base.items()):
            if not same_machine and not strict:
                direction = 0
            if key not in new:
                print(f"  [gone] {fname}:{key} (was {bval:g})")
                continue
            nval = new[key][0]
            compared += 1
            if direction == 0 or bval == 0:
                print(f"  [info] {fname}:{key} {bval:g} -> {nval:g}")
                continue
            if direction > 0:
                change = (nval - bval) / bval  # positive = improvement
            else:
                change = (bval - nval) / bval  # positive = improvement
            status = "ok"
            if change < -TOLERANCE:
                status = "REGRESSION"
                regressions.append((fname, key, bval, nval))
            print(f"  [{status:>10}] {fname}:{key} {bval:g} -> {nval:g} "
                  f"({change * 100:+.1f}%)")
        if update:
            with open(new_path) as src, open(base_path, "w") as dst:
                dst.write(src.read())
            print(f"  [updated] baseline {fname}")

    print(f"bench_diff: {compared} metrics compared, "
          f"{len(regressions)} regression(s), tolerance {TOLERANCE * 100:.0f}%")
    if regressions and not update:
        for fname, key, bval, nval in regressions:
            print(f"  FAILED {fname}:{key}: {bval:g} -> {nval:g}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
