#!/usr/bin/env python3
"""Render a BENCH_*.json archive into a markdown trend table.

Usage: tools/bench_trend.py <result-dir> [<result-dir> ...] [-o trend.md]
       tools/bench_trend.py --archive <archive-dir> [-o trend.md]

Each <result-dir> is one column of the trend — a directory of BENCH_*.json
files as produced by tools/bench_runner.sh (CI uploads one such directory
per commit as bench-results-<sha>; bench/baselines holds the committed
reference point). Directories are rendered in the order given, so a local
archive accumulated as bench-archive/<n>-<sha>/ renders oldest-to-newest
with a shell glob.

--archive DIR is the downloaded-CI-artifacts convenience: DIR's immediate
subdirectories each become one column, ordered oldest-to-newest by
(mtime, name) — so an archive of unpacked bench-results-<sha> artifact
directories renders chronologically without the caller having to know the
shas, and prepending bench/baselines still works by listing it before
--archive. Extra positional directories compose with --archive: positionals
render first, then the archive expansion.

Both bench JSON flavours are understood:
  * support::BenchReport ({"bench": ..., "metrics": [{name, value, unit}]})
  * Google-Benchmark ({"benchmarks": [...]}) — per-benchmark real_time plus
    any user counters (aggregate rows are skipped)

The final column is the relative change of the last column vs the first,
signed so that "+" is always *better* for metrics whose direction is
inferable from the name/unit (rates, speedups: higher is better;
durations: lower is better), matching tools/bench_diff.py's rules.
"""

import argparse
import json
import os
import sys

HIGHER_MARKERS = ("speedup", "per_sec", "per_s", "pps", "ratio", "scaling")
LOWER_UNITS = ("ms", "ns", "us", "s")


def direction(name, unit):
    """+1 if higher is better, -1 if lower is better, 0 if unknown."""
    label = f"{name} {unit}".lower()
    if any(m in label for m in HIGHER_MARKERS) or "packets/s" in label:
        return 1
    if unit in LOWER_UNITS or name.endswith("_ms") or "time" in name:
        return -1
    return 0


def load_metrics(path):
    """BENCH json file -> ordered {metric_name: (value, unit)}."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    if "metrics" in data:  # support::BenchReport
        for m in data["metrics"]:
            out[m["name"]] = (float(m["value"]), m.get("unit", ""))
    elif "benchmarks" in data:  # google-benchmark
        for row in data["benchmarks"]:
            if row.get("run_type") == "aggregate":
                continue
            name = row.get("name", "?")
            if "real_time" in row:
                out[f"{name}/real_time"] = (
                    float(row["real_time"]), row.get("time_unit", "ns"))
            for key, value in row.items():
                if key in ("name", "run_name", "run_type", "repetitions",
                           "repetition_index", "threads", "iterations",
                           "real_time", "cpu_time", "time_unit",
                           "family_index", "per_family_instance_index"):
                    continue
                if isinstance(value, (int, float)):
                    out[f"{name}/{key}"] = (float(value), "")
    return out


def fmt(value):
    if value == 0:
        return "0"
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    if abs(value) >= 10:
        return f"{value:.1f}"
    return f"{value:.3f}"


def render(dirs, labels):
    # bench file name -> list of per-dir metric maps (None when absent).
    files = []
    for d in dirs:
        names = sorted(n for n in os.listdir(d)
                       if n.startswith("BENCH_") and n.endswith(".json"))
        files.append(names)
    all_files = sorted({n for names in files for n in names})

    lines = ["# Bench trend", ""]
    lines.append("Columns: " + " → ".join(labels))
    lines.append("")
    for bench_file in all_files:
        columns = []
        for d in dirs:
            path = os.path.join(d, bench_file)
            columns.append(load_metrics(path) if os.path.exists(path) else None)
        metric_names = []
        for col in columns:
            if col:
                for name in col:
                    if name not in metric_names:
                        metric_names.append(name)
        lines.append(f"## {bench_file}")
        lines.append("")
        header = ["metric"] + labels + ["Δ last vs first"]
        lines.append("| " + " | ".join(header) + " |")
        lines.append("|" + "---|" * len(header))
        for name in metric_names:
            row = [f"`{name}`"]
            series = []
            unit = ""
            for col in columns:
                if col and name in col:
                    value, unit = col[name]
                    series.append(value)
                    row.append(fmt(value) + (f" {unit}" if unit else ""))
                else:
                    series.append(None)
                    row.append("—")
            # Strictly the named endpoints: a metric absent from the first
            # or last column renders "—" rather than silently comparing
            # against some other commit.
            delta = "—"
            if (series[0] is not None and series[-1] is not None and
                    len(series) >= 2 and series[0] != 0):
                change = (series[-1] - series[0]) / abs(series[0])
                sign = direction(name, unit)
                if sign != 0:
                    goodness = change * sign
                    arrow = "▲" if goodness > 0.005 else (
                        "▼" if goodness < -0.005 else "·")
                    delta = f"{change * 100:+.1f}% {arrow}"
                else:
                    delta = f"{change * 100:+.1f}%"
            row.append(delta)
            lines.append("| " + " | ".join(row) + " |")
        lines.append("")
    return "\n".join(lines) + "\n"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("dirs", nargs="*",
                        help="bench result directories, oldest first")
    parser.add_argument("--archive", default=None, metavar="DIR",
                        help="expand DIR's subdirectories into columns, "
                             "ordered by (mtime, name)")
    parser.add_argument("-o", "--output", default="-",
                        help="output markdown file (default: stdout)")
    parser.add_argument("--labels", default=None,
                        help="comma-separated column labels "
                             "(default: directory basenames)")
    args = parser.parse_args()

    if args.archive is not None:
        if not os.path.isdir(args.archive):
            print(f"error: '{args.archive}' is not a directory",
                  file=sys.stderr)
            return 2
        entries = [os.path.join(args.archive, n)
                   for n in os.listdir(args.archive)]
        entries = [p for p in entries if os.path.isdir(p)]
        entries.sort(key=lambda p: (os.path.getmtime(p), p))
        if not entries:
            print(f"error: '{args.archive}' has no subdirectories",
                  file=sys.stderr)
            return 2
        args.dirs = args.dirs + entries
    if not args.dirs:
        parser.error("no result directories (positional or --archive)")

    for d in args.dirs:
        if not os.path.isdir(d):
            print(f"error: '{d}' is not a directory", file=sys.stderr)
            return 2
    labels = (args.labels.split(",") if args.labels
              else [os.path.basename(os.path.normpath(d)) for d in args.dirs])
    if len(labels) != len(args.dirs):
        print("error: label count != directory count", file=sys.stderr)
        return 2

    text = render(args.dirs, labels)
    if args.output == "-":
        sys.stdout.write(text)
    else:
        with open(args.output, "w") as f:
            f.write(text)
    return 0


if __name__ == "__main__":
    sys.exit(main())
