#!/usr/bin/env bash
# Regenerates the golden contract artifacts pinned by
# tests/test_contract_golden.cpp. Run this ONLY when a contract change is
# intentional (new cost model, schema bump, ...), and say why in the
# commit message — the goldens are the shipped operator artifacts.
#
# Usage: tools/regen_goldens.sh [build-dir]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-build}"
CLI="$BUILD_DIR/bolt_cli"

if [[ ! -x "$CLI" ]]; then
  echo "error: $CLI not found (build first)" >&2
  exit 1
fi

for nf in bridge nat lb lpm; do
  "$CLI" contract "$nf" --out "$REPO_ROOT/tests/data/contract_${nf}.json"
done

# CLI help golden (tests/test_cli_help.cpp).
"$CLI" --help > "$REPO_ROOT/tests/data/cli_usage.txt"
