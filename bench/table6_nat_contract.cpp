// Reproduces Table 6: the VigNAT performance contract, five traffic
// classes, instructions as a function of e (expired flows), c (hash
// collisions) and t (bucket traversals).
#include <cstdio>

#include "core/bolt.h"
#include "core/scenarios.h"
#include "support/strings.h"

using namespace bolt;

int main() {
  perf::PcvRegistry reg;
  auto cfg = core::default_nat_config();
  const core::NfInstance nat = core::make_nat(reg, cfg);
  core::ContractGenerator generator(reg);
  const core::GenerationResult result = generator.generate(nat.analysis());

  std::printf("Table 6 — VigNAT performance contract (instructions)\n\n");

  struct Row {
    const char* paper_label;
    const char* class_key;
  };
  const Row rows[] = {
      {"Invalid packets (dropped)", "invalid"},
      {"Known flows (forwarded)",
       "internal_known | nat.expire=expire,nat.lookup_int=hit"},
      {"New external flows (dropped)",
       "external_drop | nat.expire=expire,nat.lookup_ext=miss"},
      {"New internal flows; table full (dropped)",
       "internal_table_full | "
       "nat.expire=expire,nat.lookup_int=miss,nat.add_flow=full"},
      {"New internal flows; table not full (forwarded)",
       "internal_new | nat.expire=expire,nat.lookup_int=miss,nat.add_flow=ok"},
  };

  std::vector<std::vector<std::string>> table;
  table.push_back({"Traffic Type", "Instructions"});
  for (const Row& row : rows) {
    const perf::ContractEntry& entry = result.contract.require(row.class_key);
    table.push_back({row.paper_label,
                     entry.perf.get(perf::Metric::kInstructions).str(reg)});
  }
  std::printf("%s\n", support::render_table(table).c_str());

  std::printf("Paper's Table 6 for comparison:\n");
  std::printf("  Invalid packets    359*e + 80*e*c + 38*e*t + 425\n");
  std::printf("  Known flows        359*e + 30*c + 18*t + 80*e*c + 38*e*t + 1030\n");
  std::printf("  New external       359*e + 30*c + 18*t + 80*e*c + 38*e*t + 528\n");
  std::printf("  New int., full     359*e + 30*c + 18*t + 80*e*c + 38*e*t + 639\n");
  std::printf("  New int., ok       359*e + 30*c + 44*t + 80*e*c + 38*e*t + 1316\n\n");
  std::printf(
      "Same structure: the e / e*c / e*t terms are identical across classes\n"
      "(they come from the shared expiry sweep); forwarded classes carry the\n"
      "larger constants; the new-flow class pays the extra insertion work.\n"
      "One deviation: our invalid-packet path drops *before* touching state,\n"
      "so its row is a pure constant (the paper's NAT expired flows even on\n"
      "invalid packets).\n\n");

  std::printf("Full generated contract (%zu input classes):\n\n",
              result.contract.entries().size());
  std::printf("%s", result.contract.str(reg, perf::Metric::kInstructions).c_str());
  return 0;
}
