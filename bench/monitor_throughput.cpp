// Monitor throughput + compiled-expression speedup.
//
// Two measurements, both archived in BENCH_monitor_throughput.json when
// BOLT_BENCH_JSON is set (tools/bench_runner.sh / CI):
//
//  1. End-to-end monitor packets/sec on the NAT under heavy-tailed
//     traffic, single-threaded and with one thread per core, with the
//     compiled-expression VM and with the per-packet tree-walk baseline.
//
//  2. Expression-evaluation only: every contract entry's three bounds
//     evaluated over a large batch of PCV rows, tree-walk vs compiled VM
//     (`expr_vm_speedup` is the headline number — the VM exists because
//     the tree walk would otherwise dominate the monitor's hot loop).
//
//  3. Operator mode: stored-contract load latency (serialise + reload
//     through contract_io — the zero-symbex path an operator's deploy
//     takes) and a compressed simulated week of long-run traffic with the
//     epoch clock on — packets/sec, flow-state high-water mark, and the
//     p99 headroom sketch quantile, all archived per commit.
//
//  4. Telemetry overhead: monitor_pps_1thread with the obs layer's
//     hot-path counters on vs off, measured as the median of interleaved
//     off/on pairs. Archived as monitor_telemetry_overhead_pct and
//     hard-gated at 5% in-binary.
//
//  5. Engine speedup: the same single-threaded monitor run on the
//     reference interpreter vs the pre-decoded direct-threaded engine
//     (`interp_decoded_speedup`, gated — the fast path must stay fast).
#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/bolt.h"
#include "core/targets.h"
#include "monitor/monitor.h"
#include "net/workload.h"
#include "perf/contract_io.h"
#include "perf/expr_vm.h"
#include "support/bench.h"
#include "support/random.h"

using namespace bolt;

namespace {

// Every timing below is a best-of-N (minimum elapsed over N identical
// repetitions). The *work* is deterministic either way; min-of-reps is the
// standard estimator that strips scheduler jitter and host noise, which on
// small shared VMs routinely exceeds the 25% regression-gate tolerance for
// one-shot timings.
constexpr int kReps = 3;

template <typename F>
double best_seconds(int reps, F&& body) {
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    support::BenchTimer timer;
    body();
    best = std::min(best, timer.elapsed_ms() / 1000.0);
  }
  return best;
}

double monitor_pps(const perf::Contract& contract,
                   const perf::PcvRegistry& reg,
                   const std::vector<net::Packet>& packets,
                   std::size_t threads, bool compiled,
                   std::size_t shards = 0,
                   monitor::ShardGrouping grouping =
                       monitor::ShardGrouping::kRoundRobin,
                   bool telemetry = false, int reps = kReps,
                   ir::EngineKind engine = ir::EngineKind::kDecoded) {
  double best_pps = 0;
  for (int rep = 0; rep < reps; ++rep) {
    monitor::MonitorOptions opts;
    opts.threads = threads;
    opts.use_compiled_exprs = compiled;
    opts.shards = shards;
    opts.grouping = grouping;
    opts.telemetry = telemetry;
    opts.engine = engine;
    monitor::MonitorEngine engine(contract, reg, opts);
    obs::RunObservations observations;
    support::BenchTimer timer;
    const monitor::MonitorReport report =
        engine.run(packets, monitor::MonitorEngine::named_factory("nat"),
                   nullptr, telemetry ? &observations : nullptr);
    const double seconds = timer.elapsed_ms() / 1000.0;
    if (report.violations != 0 || report.unattributed != 0) {
      std::fprintf(stderr, "bench: unexpected violations/unattributed!\n");
    }
    best_pps = std::max(best_pps,
                        static_cast<double>(packets.size()) / seconds);
  }
  return best_pps;
}

}  // namespace

int main() {
  support::BenchReport bench("monitor_throughput");

  perf::PcvRegistry reg;
  core::NfTarget target;
  core::make_named_target("nat", reg, target);
  core::ContractGenerator gen(reg);
  const core::GenerationResult result = gen.generate(target.analysis());

  net::ZipfSpec spec;
  spec.flow_pool = 2048;
  spec.skew = 1.1;
  spec.packet_count = 200'000;
  const std::vector<net::Packet> packets = net::zipf_traffic(spec);

  // --- end-to-end monitor throughput + thread-scaling sweep --------------
  // Fixed 1/2/4/8-thread sweep of the staged pipeline (docs/PERFORMANCE.md
  // explains how to read the curve; it saturates at the machine's core
  // count — `num_cpus` is archived alongside for exactly that reason).
  const std::size_t sweep[] = {1, 2, 4, 8};
  double pps_at[9] = {};
  // Thread counts above the core count measure the scheduler, not the
  // code: those sweep points are archived but marked informational so the
  // regression gate only arms on genuinely comparable measurements.
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  std::printf("monitor (NAT, %zu packets, 8 partitions):\n", packets.size());
  for (const std::size_t t : sweep) {
    pps_at[t] = monitor_pps(result.contract, reg, packets, t, true);
    std::printf("  %zu thread%s compiled exprs: %10.0f pps  (%.2fx)\n", t,
                t == 1 ? ",  " : "s, ", pps_at[t], pps_at[t] / pps_at[1]);
    bench.metric("monitor_pps_" + std::to_string(t) + "thread", pps_at[t],
                 "packets/s", /*gate=*/t <= cores);
    if (t > 1) {
      bench.metric("monitor_scaling_" + std::to_string(t) + "thread",
                   pps_at[t] / pps_at[1], "x", /*gate=*/false);
    }
  }
  const double pps_1t = pps_at[1];
  const double pps_nt = monitor_pps(result.contract, reg, packets, 0, true);
  const double pps_1t_tw = monitor_pps(result.contract, reg, packets, 1, false);
  std::printf("  N threads, compiled exprs: %10.0f pps\n", pps_nt);
  std::printf("  1 thread,  tree-walk eval: %10.0f pps\n", pps_1t_tw);
  bench.metric("monitor_pps_all_threads", pps_nt, "packets/s");
  bench.metric("monitor_pps_1thread_treewalk", pps_1t_tw, "packets/s");
  bench.metric("monitor_thread_scaling", pps_nt / pps_1t, "x");

  // --- decoded-engine speedup over the reference interpreter -------------
  // Same monitor, same traffic, reference (undecoded per-instruction
  // switch) engine instead of the pre-decoded direct-threaded one. The
  // ratio is the execution fast path's headline number and is gated: the
  // decoded engine must stay decisively faster, not just not-slower.
  const double pps_1t_ref =
      monitor_pps(result.contract, reg, packets, 1, true, 0,
                  monitor::ShardGrouping::kRoundRobin, /*telemetry=*/false,
                  kReps, ir::EngineKind::kReference);
  std::printf("  1 thread,  reference engine:%9.0f pps  (decoded %.2fx)\n",
              pps_1t_ref, pps_1t / pps_1t_ref);
  bench.metric("monitor_pps_1thread_reference", pps_1t_ref, "packets/s",
               /*gate=*/false);
  bench.metric("interp_decoded_speedup", pps_1t / pps_1t_ref, "x");

  // --- telemetry overhead ------------------------------------------------
  // The obs layer's hot-path counters must be execution-only in cost as
  // well as in effect: the ISSUE gate is <= 5% off monitor_pps_1thread.
  //
  // Measured as the median of N *interleaved* off/on pairs (one run each,
  // alternating). The old estimator — best-of-3 off, then best-of-3 on —
  // put seconds of host drift squarely inside the difference and routinely
  // reported overheads of +-30% on shared VMs. Pairing adjacent runs
  // cancels slow drift; the median across pairs discards the occasional
  // descheduled outlier in either direction.
  constexpr int kTelemetryPairs = 7;
  double deltas[kTelemetryPairs];
  double pps_tel_on = 0;
  for (int i = 0; i < kTelemetryPairs; ++i) {
    const double off =
        monitor_pps(result.contract, reg, packets, 1, true, 0,
                    monitor::ShardGrouping::kRoundRobin, false, /*reps=*/1);
    const double on =
        monitor_pps(result.contract, reg, packets, 1, true, 0,
                    monitor::ShardGrouping::kRoundRobin, /*telemetry=*/true,
                    /*reps=*/1);
    pps_tel_on = std::max(pps_tel_on, on);
    deltas[i] = (off - on) / off * 100.0;
  }
  std::sort(deltas, deltas + kTelemetryPairs);
  const double telemetry_overhead = deltas[kTelemetryPairs / 2];
  std::printf("  1 thread,  telemetry on:   %10.0f pps  (%.2f%% overhead, "
              "median of %d interleaved pairs)\n",
              pps_tel_on, telemetry_overhead, kTelemetryPairs);
  // Informational in the baseline diff (it jitters around zero); the hard
  // <= 5% gate is enforced right here instead.
  bench.metric("monitor_telemetry_overhead_pct", telemetry_overhead, "%",
               /*gate=*/false);
  if (telemetry_overhead > 5.0) {
    std::fprintf(stderr,
                 "bench: telemetry overhead %.2f%% exceeds the 5%% budget\n",
                 telemetry_overhead);
    return 1;
  }

  // --- shard grouping under skewed traffic -------------------------------
  // Heavily skewed flow popularity concentrates packets on few partitions;
  // with fewer shards than partitions, round-robin grouping can lump the
  // hot partitions onto one queue while longest-queue-first (LPT) spreads
  // them. Reports are byte-identical either way (tests enforce it); only
  // the wall-clock may differ.
  net::ZipfSpec skewed_spec;
  skewed_spec.flow_pool = 64;
  skewed_spec.skew = 2.2;
  skewed_spec.packet_count = 200'000;
  const std::vector<net::Packet> skewed = net::zipf_traffic(skewed_spec);
  const double pps_skew_rr =
      monitor_pps(result.contract, reg, skewed, 4, true, 4,
                  monitor::ShardGrouping::kRoundRobin);
  const double pps_skew_lqf =
      monitor_pps(result.contract, reg, skewed, 4, true, 4,
                  monitor::ShardGrouping::kLongestQueueFirst);
  std::printf("\nskewed traffic (zipf 2.2, 8 partitions on 4 shards):\n");
  std::printf("  round-robin grouping:       %10.0f pps\n", pps_skew_rr);
  std::printf("  longest-queue-first (LPT):  %10.0f pps\n", pps_skew_lqf);
  bench.metric("monitor_pps_skewed_roundrobin", pps_skew_rr, "packets/s",
               /*gate=*/cores >= 4);
  bench.metric("monitor_pps_skewed_lqf", pps_skew_lqf, "packets/s",
               /*gate=*/cores >= 4);
  // Wall-clock LQF/RR ratio is informational only: on machines where the
  // four shard workers time-slice (or where per-queue setup dominates the
  // imbalance), the ratio of two noisy wall-clocks jitters around 1.0 and
  // once gated a 0.967 "regression" that was pure scheduler noise. The
  // gated number is the deterministic makespan model below.
  bench.metric("monitor_grouping_speedup", pps_skew_lqf / pps_skew_rr, "x",
               /*gate=*/false);

  // Deterministic grouping quality: the same per-partition packet counts
  // and the same placement policies the engine uses, evaluated on the load
  // model (packets on the fullest queue — the lower bound on any queue-
  // parallel schedule) instead of wall-clock. Pure arithmetic on the
  // workload, so it is identical on every host and safely gateable; LPT is
  // never worse than round-robin on this model, so the ratio is >= 1 by
  // construction and any drop means the placement policy itself regressed.
  {
    constexpr std::size_t kParts = 8, kShards = 4;
    std::vector<std::size_t> load(kParts, 0);
    for (const net::Packet& p : skewed) {
      ++load[monitor::partition_of(p, kParts)];
    }
    std::size_t rr[kShards] = {}, lpt[kShards] = {};
    for (std::size_t p = 0; p < kParts; ++p) rr[p % kShards] += load[p];
    std::vector<std::size_t> order(kParts);
    for (std::size_t p = 0; p < kParts; ++p) order[p] = p;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a,
                                                     std::size_t b) {
      return load[a] > load[b];
    });
    for (const std::size_t p : order) {
      std::size_t lightest = 0;
      for (std::size_t s = 1; s < kShards; ++s) {
        if (lpt[s] < lpt[lightest]) lightest = s;
      }
      lpt[lightest] += load[p];
    }
    const double rr_makespan =
        static_cast<double>(*std::max_element(rr, rr + kShards));
    const double lpt_makespan =
        static_cast<double>(*std::max_element(lpt, lpt + kShards));
    std::printf("  modeled makespan rr/lpt:    %10.3fx  (%0.f vs %0.f pkts "
                "on the fullest shard)\n",
                rr_makespan / lpt_makespan, rr_makespan, lpt_makespan);
    bench.metric("monitor_grouping_makespan_ratio",
                 rr_makespan / lpt_makespan, "x");
  }

  // --- expression evaluation only ----------------------------------------
  // Evaluate every contract bound over a matrix of random PCV rows; this
  // isolates what the VM replaces.
  const std::size_t stride = std::max<std::size_t>(reg.size(), 1);
  const std::size_t rows = 200'000;
  std::vector<std::uint64_t> slots(rows * stride);
  support::Rng rng(42);
  for (auto& v : slots) v = rng.below(64);

  std::vector<perf::CompiledExpr> vms;
  std::vector<const perf::PerfExpr*> exprs;
  for (const auto& entry : result.contract.entries()) {
    for (const perf::Metric m : perf::kAllMetrics) {
      exprs.push_back(&entry.perf.get(m));
      vms.push_back(perf::CompiledExpr::compile(entry.perf.get(m)));
    }
  }

  std::vector<std::int64_t> out(rows);
  std::int64_t sink = 0;

  // The VM pass is ~50x faster than the tree walk, so a single sweep is
  // far too short to time stably; loop it inside the timed body and
  // divide back out.
  constexpr int kVmInnerLoops = 8;
  const double vm_s = best_seconds(3, [&] {
    for (int loop = 0; loop < kVmInnerLoops; ++loop) {
      for (std::size_t e = 0; e < vms.size(); ++e) {
        vms[e].eval_batch(slots.data(), stride, rows, out.data());
        sink += out[rows - 1];
      }
    }
  }) / kVmInnerLoops;

  const double tw_s = best_seconds(kReps, [&] {
    for (std::size_t e = 0; e < exprs.size(); ++e) {
      for (std::size_t r = 0; r < rows; ++r) {
        perf::PcvBinding bind;
        const std::uint64_t* row = slots.data() + r * stride;
        for (std::size_t s = 0; s < stride; ++s) {
          if (row[s] != 0) bind.set(static_cast<perf::PcvId>(s), row[s]);
        }
        out[r] = exprs[e]->eval(bind);
      }
      sink += out[rows - 1];
    }
  });

  const double evals =
      static_cast<double>(vms.size()) * static_cast<double>(rows);
  std::printf("\nexpression evaluation (%zu exprs x %zu rows):\n", vms.size(),
              rows);
  std::printf("  compiled VM (batch): %8.1f Meval/s\n", evals / vm_s / 1e6);
  std::printf("  tree walk:           %8.1f Meval/s\n", evals / tw_s / 1e6);
  std::printf("  speedup:             %8.1fx   (sink %lld)\n", tw_s / vm_s,
              static_cast<long long>(sink));
  bench.metric("expr_vm_meval_per_s", evals / vm_s / 1e6, "Meval/s");
  bench.metric("expr_treewalk_meval_per_s", evals / tw_s / 1e6, "Meval/s");
  bench.metric("expr_vm_speedup", tw_s / vm_s, "x");

  // --- operator mode: stored-contract load + long-run monitoring ---------
  const std::string artifact = perf::contract_to_json(result.contract, reg);
  perf::PcvRegistry op_reg;
  perf::Contract stored = perf::contract_from_json(artifact, op_reg);
  const double load_ms = 1000.0 * best_seconds(5, [&] {
    const std::string bytes = perf::contract_to_json(result.contract, reg);
    perf::PcvRegistry r2;
    const perf::Contract c2 = perf::contract_from_json(bytes, r2);
    sink += static_cast<std::int64_t>(bytes.size() + c2.entries().size());
  });
  std::printf("\nstored contract: %zu bytes, serialise+reload %.2f ms\n",
              artifact.size(), load_ms);
  bench.metric("contract_roundtrip_ms", load_ms, "ms");

  net::LongRunSpec week;
  week.flow_pool = 1024;
  week.packet_count = 100'000;
  const std::vector<net::Packet> week_packets = net::long_run_traffic(week);
  monitor::MonitorOptions lr_opts;
  lr_opts.threads = 0;
  monitor::MonitorEngine lr_engine(stored, op_reg, lr_opts);
  monitor::MonitorReport lr_report;
  const double lr_s = best_seconds(kReps, [&] {
    lr_report = lr_engine.run(
        week_packets, monitor::MonitorEngine::named_factory("nat"));
  });
  std::uint64_t p99 = 0;
  for (const auto& cls : lr_report.classes) {
    for (const auto& mr : cls.metrics) {
      p99 = std::max(p99, mr.headroom_pm.p99);
    }
  }
  std::printf("long-run monitor (simulated week, %zu packets): %10.0f pps, "
              "high-water %llu entries/partition, %llu idle-expired, "
              "p99 headroom %llu pm\n",
              week_packets.size(),
              static_cast<double>(week_packets.size()) / lr_s,
              static_cast<unsigned long long>(lr_report.state_high_water),
              static_cast<unsigned long long>(lr_report.state_expired_idle),
              static_cast<unsigned long long>(p99));
  if (lr_report.violations != 0 || lr_report.unattributed != 0) {
    std::fprintf(stderr, "bench: long-run violations/unattributed!\n");
  }
  bench.metric("monitor_longrun_pps",
               static_cast<double>(week_packets.size()) / lr_s, "packets/s");
  bench.metric("monitor_longrun_high_water",
               static_cast<double>(lr_report.state_high_water), "entries");
  bench.metric("monitor_longrun_p99_headroom_pm", static_cast<double>(p99),
               "pm");
  return 0;
}
